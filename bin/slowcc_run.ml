(* Command-line driver for the paper's experiments.

   slowcc_run list                 enumerate experiment ids
   slowcc_run run fig7 [--quick]   reproduce one figure
   slowcc_run all [--quick]        reproduce everything
   slowcc_run all --backend proc --workers 4 --cache-dir D
                                   same sweep over worker processes
   slowcc_run worker QUEUE_DIR     join an existing sweep as a worker
   slowcc_run compete ...          ad-hoc two-protocol fairness run *)

open Cmdliner

let fmt = Format.std_formatter

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink sweeps and durations.")

let jobs_arg =
  Arg.(
    value
    & opt int (Engine.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parameter sweeps (default: this machine's \
           recommended domain count; 1 = serial).  Results are identical \
           for any N.")

let sched_conv =
  let parse s =
    match Engine.Scheduler.of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown scheduler %S (heap|calendar)" s))
  in
  let print fmt k = Format.pp_print_string fmt (Engine.Scheduler.to_string k) in
  Arg.conv (parse, print)

let sched_arg =
  Arg.(
    value
    & opt (some sched_conv) None
    & info [ "sched" ] ~docv:"S"
        ~doc:
          "Event-queue implementation: $(b,heap) or $(b,calendar) (default \
           calendar, or $(b,SLOWCC_SCHED)).  Simulation results are \
           byte-identical under either; this selects the engine data \
           structure only.")

let apply_sched = Option.iter Engine.Scheduler.set_default

let ff_conv =
  let parse s =
    match Engine.Fastforward.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown fast-forward mode %S (on|off)" s))
  in
  let print fmt m = Format.pp_print_string fmt (Engine.Fastforward.to_string m) in
  Arg.conv (parse, print)

let ff_arg =
  Arg.(
    value
    & opt (some ff_conv) None
    & info [ "ff" ] ~docv:"MODE"
        ~doc:
          "Hybrid fluid/packet fast-forward: $(b,on) or $(b,off) (default \
           off, or $(b,SLOWCC_FF)).  When on, transient scenarios freeze \
           packet-level simulation during detected steady state and advance \
           flows analytically; results are approximate, so manifests record \
           the mode and digests are only comparable within a mode.")

let apply_ff = Option.iter Engine.Fastforward.set_default

let out_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-dir" ] ~docv:"DIR"
        ~doc:
          "Write results under $(docv): per-table CSV and/or JSONL plus a \
           manifest.json recording parameters and content digests.  The \
           digested portion of the manifest is byte-identical for any \
           --jobs value.")

let emit_conv =
  let parse s =
    match Slowcc.Manifest.emit_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown format %S (csv|jsonl|both)" s))
  in
  let print fmt e =
    Format.pp_print_string fmt (Slowcc.Manifest.emit_to_string e)
  in
  Arg.conv (parse, print)

let emit_arg =
  Arg.(
    value
    & opt emit_conv Slowcc.Manifest.Both
    & info [ "emit" ] ~docv:"FMT"
        ~doc:
          "Table format(s) written under --out-dir: $(b,csv), $(b,jsonl) or \
           $(b,both) (default).  Ignored without --out-dir.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ]
        ~env:(Cmd.Env.info "SLOWCC_CACHE_DIR")
        ~docv:"DIR"
        ~doc:
          "Content-addressed result cache: re-running an experiment with \
           the same binary, id, --quick flag and parameters replays the \
           stored (digest-verified) tables instead of re-simulating.  \
           Scheduler and --jobs are not part of the key — results are \
           byte-identical either way.  The directory also persists per-job \
           timings that order parallel sweeps longest-first.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Ignore --cache-dir / $(b,SLOWCC_CACHE_DIR): neither read nor \
           write cache entries for this invocation.")

(* The cache handle for one invocation, or [None] when caching is off. *)
let open_cache ~cache_dir ~no_cache =
  match cache_dir with
  | Some dir when not no_cache -> Some (Slowcc.Result_cache.create ~dir ())
  | _ -> None

let report_cache =
  Option.iter (fun cache ->
      Format.eprintf "cache: %d hit(s), %d miss(es) under %s@."
        (Slowcc.Result_cache.hits cache)
        (Slowcc.Result_cache.misses cache)
        (Slowcc.Result_cache.dir cache))

(* ------------------------------------------------------------------ *)
(* Process backend: coordinator and worker                             *)
(* ------------------------------------------------------------------ *)

let backend_conv =
  let parse s =
    match Engine.Pool.backend_of_string s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown backend %S (domain|proc)" s))
  in
  let print fmt b = Format.pp_print_string fmt (Engine.Pool.backend_to_string b) in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(
    value
    & opt backend_conv Engine.Pool.Domains
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Sweep execution backend: $(b,domain) (worker domains in this \
           process, default) or $(b,proc) (worker processes coordinating \
           through a work queue inside --cache-dir, which is required).  \
           Output bytes are identical under either backend at any worker \
           count.")

let workers_arg =
  Arg.(
    value
    & opt int (Engine.Pool.default_jobs ())
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker processes for $(b,--backend proc) (default: this \
           machine's recommended domain count).  $(b,0) spawns none: the \
           coordinator seeds the queue, prints its path and waits for \
           external 'slowcc_run worker' processes — the multi-machine \
           mode.")

let lease_arg =
  Arg.(
    value & opt float 3600.
    & info [ "lease-s" ] ~docv:"SECONDS"
        ~doc:
          "Claim lease for the process backend.  A worker that dies \
           mid-job has its claim requeued once the lease expires, so the \
           lease must exceed the longest single unit; an expired-but-alive \
           worker merely duplicates idempotent work.")

let poll_arg =
  Arg.(
    value & opt float 0.5
    & info [ "poll-s" ] ~docv:"SECONDS"
        ~doc:"Idle polling interval for process-backend workers and the \
              coordinator's completion tail.")

(* Seed a queue over [units], run workers until it drains, then hand
   control back to [assemble] — which replays every unit through the now-
   populated cache (byte-identical to a serial run by construction) and
   recomputes any unit whose worker failed.  The queue is deleted after a
   successful assembly. *)
let with_proc_backend ~quick ~jobs ~workers ~lease_s ~poll_s ~cache ~units
    assemble =
  let now () = Unix.gettimeofday () in
  let qdir =
    Filename.concat
      (Slowcc.Result_cache.dir cache)
      (Printf.sprintf "queue-%d-%06x" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF))
  in
  let q =
    Slowcc.Workqueue.seed ~dir:qdir
      ~fingerprint:(Slowcc.Result_cache.fingerprint cache)
      ~quick
      ~jobs:
        (List.map
           (fun u -> (u, Slowcc.Experiments.unit_cost ~cache ~quick u))
           units)
  in
  Format.eprintf "queue: %s (%d unit(s))@." qdir (List.length units);
  let requeue () = ignore (Slowcc.Workqueue.requeue_expired q ~now:(now ())) in
  let nap () = Unix.sleepf (Float.max 0.05 poll_s) in
  (if workers = 0 then begin
     Format.eprintf
       "no local workers; run 'slowcc_run worker %s' on any machine sharing \
        this filesystem@."
       qdir;
     while not (Slowcc.Workqueue.drained q) do
       requeue ();
       nap ()
     done
   end
   else begin
     (* Split this machine's domain budget across the worker processes;
        each worker still parallelizes within a unit on its own pool. *)
     let worker_jobs = max 1 (jobs / max 1 workers) in
     let args =
       [
         Sys.executable_name; "worker"; qdir; "--jobs";
         string_of_int worker_jobs; "--lease-s"; string_of_float lease_s;
         "--poll-s"; string_of_float poll_s;
       ]
       @ (match Engine.Fastforward.get_default () with
         | Engine.Fastforward.On -> [ "--ff"; "on" ]
         | Engine.Fastforward.Off -> [])
     in
     let spawn () =
       Unix.create_process Sys.executable_name (Array.of_list args) Unix.stdin
         Unix.stdout Unix.stderr
     in
     let pids = List.init workers (fun _ -> spawn ()) in
     let rec tail alive =
       if Slowcc.Workqueue.drained q then alive
       else begin
         let alive =
           List.filter
             (fun pid ->
               match Unix.waitpid [ Unix.WNOHANG ] pid with
               | 0, _ -> true
               | _ -> false
               | exception Unix.Unix_error _ -> false)
             alive
         in
         requeue ();
         if alive = [] then begin
           (* Workers exit on drain, so an early empty list means crashes;
              assembly below recomputes whatever is missing. *)
           if not (Slowcc.Workqueue.drained q) then
             Format.eprintf
               "warning: all workers exited with work outstanding; finishing \
                locally@.";
           alive
         end
         else begin
           nap ();
           tail alive
         end
       end
     in
     let alive = tail pids in
     List.iter
       (fun pid ->
         try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
       alive
   end);
  (match Slowcc.Workqueue.failed_units q with
  | [] -> ()
  | failed ->
    Format.eprintf "warning: worker-side failure(s) in %s; recomputing \
                    locally@."
      (String.concat ", " failed));
  let result = assemble () in
  Slowcc.Workqueue.delete q;
  result

let worker_cmd =
  let queue_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUEUE_DIR"
          ~doc:
            "Queue directory printed by a '--backend proc' coordinator \
             (lives inside the shared cache directory).")
  in
  let run verbose jobs sched ff lease_s poll_s queue_dir =
    setup_logs verbose;
    apply_sched sched;
    apply_ff ff;
    match Slowcc.Workqueue.load ~dir:queue_dir with
    | Error msg ->
      Format.eprintf "cannot open queue %s: %s@." queue_dir msg;
      2
    | Ok q ->
      let self = Slowcc.Result_cache.self_fingerprint () in
      if not (String.equal self (Slowcc.Workqueue.fingerprint q)) then begin
        (* A mismatched binary would publish cache entries under keys the
           coordinator will never look up — wasted work at best, so
           refuse loudly. *)
        Format.eprintf
          "fingerprint mismatch: queue was seeded by %s but this binary is \
           %s; use the same build on every machine@."
          (Slowcc.Workqueue.fingerprint q)
          self;
        3
      end
      else begin
        let cache_dir = Filename.dirname (Slowcc.Workqueue.dir q) in
        let cache = Slowcc.Result_cache.create ~dir:cache_dir () in
        let quick = Slowcc.Workqueue.quick q in
        let worker =
          Slowcc.Workqueue.sanitize_worker
            (Printf.sprintf "%s-%d" (Unix.gethostname ()) (Unix.getpid ()))
        in
        Engine.Pool.with_pool ~jobs (fun pool ->
            let completed =
              Slowcc.Workqueue.worker_loop q ~worker ~now:Unix.gettimeofday
                ~sleep:Unix.sleepf ~lease_s ~poll_s
                ~run:(fun (job : Slowcc.Workqueue.job) ->
                  match
                    Slowcc.Experiments.run_cached ~quick ~pool ~cache
                      ~now:Unix.gettimeofday job.Slowcc.Workqueue.name
                  with
                  | Some _ -> ()
                  | None ->
                    failwith
                      ("unknown experiment " ^ job.Slowcc.Workqueue.name))
            in
            Format.eprintf "worker %s: %d job(s) completed@." worker completed;
            0)
      end
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Join a '--backend proc' sweep: claim queued experiment units, \
          run them and publish the results into the shared cache.  Exits \
          when the queue drains; exit code 3 means this binary does not \
          match the one that seeded the queue.")
    Term.(
      const run $ verbose_arg $ jobs_arg $ sched_arg $ ff_arg $ lease_arg
      $ poll_arg $ queue_arg)

let list_cmd =
  let run () =
    List.iter print_endline Slowcc.Experiments.names;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment identifiers")
    Term.(const run $ const ())

let run_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id, e.g. fig7.")
  in
  let run verbose quick jobs sched ff out_dir emit cache_dir no_cache backend
      workers lease_s poll_s name =
    setup_logs verbose;
    apply_sched sched;
    apply_ff ff;
    let cache = open_cache ~cache_dir ~no_cache in
    let finish ~backend pool =
      let result =
        match out_dir with
        | None ->
          Slowcc.Experiments.run_cached ~quick ~pool ?cache
            ~now:Unix.gettimeofday name
        | Some dir ->
          Slowcc.Experiments.run_to_dir ~quick ~pool ?cache ?backend ~emit
            ~now:Unix.gettimeofday ~dir ~jobs name
          |> Option.map (fun (manifest_path, tables) ->
                 Format.eprintf "wrote %s@." manifest_path;
                 tables)
      in
      match result with
      | Some tables ->
        List.iter (Slowcc.Table.print fmt) tables;
        report_cache cache;
        0
      | None ->
        Format.eprintf "unknown experiment %s; try 'slowcc_run list'@." name;
        1
    in
    match (backend, cache) with
    | Engine.Pool.Domains, _ ->
      Engine.Pool.with_pool ~jobs (fun pool -> finish ~backend:None pool)
    | Engine.Pool.Procs, None ->
      Format.eprintf "--backend proc needs --cache-dir (the queue and the \
                      results live there)@.";
      2
    | Engine.Pool.Procs, Some cache ->
      if not (List.mem name Slowcc.Experiments.names) then begin
        Format.eprintf "unknown experiment %s; try 'slowcc_run list'@." name;
        1
      end
      else
        with_proc_backend ~quick ~jobs ~workers ~lease_s ~poll_s ~cache
          ~units:[ name ] (fun () ->
            Engine.Pool.with_pool ~jobs (fun pool ->
                finish ~backend:(Some "proc") pool))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment and print its table")
    Term.(
      const run $ verbose_arg $ quick_arg $ jobs_arg $ sched_arg $ ff_arg
      $ out_dir_arg $ emit_arg $ cache_dir_arg $ no_cache_arg $ backend_arg
      $ workers_arg $ lease_arg $ poll_arg $ name_arg)

let all_cmd =
  let run quick jobs sched ff out_dir emit cache_dir no_cache backend workers
      lease_s poll_s =
    apply_sched sched;
    apply_ff ff;
    let cache = open_cache ~cache_dir ~no_cache in
    let finish ~backend pool =
      (match out_dir with
      | None ->
        List.iter (Slowcc.Table.print fmt)
          (Slowcc.Experiments.all ~quick ~pool ?cache ~now:Unix.gettimeofday
             ())
      | Some dir ->
        let manifest_path, _tables =
          Slowcc.Experiments.all_to_dir
            ~stream:(Slowcc.Table.print fmt)
            ~quick ~pool ?cache ?backend ~emit ~now:Unix.gettimeofday ~dir
            ~jobs ()
        in
        Format.eprintf "wrote %s@." manifest_path);
      report_cache cache;
      0
    in
    match (backend, cache) with
    | Engine.Pool.Domains, _ ->
      Engine.Pool.with_pool ~jobs (fun pool -> finish ~backend:None pool)
    | Engine.Pool.Procs, None ->
      Format.eprintf "--backend proc needs --cache-dir (the queue and the \
                      results live there)@.";
      2
    | Engine.Pool.Procs, Some cache ->
      with_proc_backend ~quick ~jobs ~workers ~lease_s ~poll_s ~cache
        ~units:Slowcc.Experiments.all_units (fun () ->
          Engine.Pool.with_pool ~jobs (fun pool ->
              finish ~backend:(Some "proc") pool))
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in figure order")
    Term.(
      const run $ quick_arg $ jobs_arg $ sched_arg $ ff_arg $ out_dir_arg
      $ emit_arg $ cache_dir_arg $ no_cache_arg $ backend_arg $ workers_arg
      $ lease_arg $ poll_arg)

(* [cache stats]/[cache clear] operate on the directory directly (no
   cache handle): they must work for caches written by other binaries. *)
let cache_dir_required =
  Arg.(
    required
    & opt (some string) None
    & info [ "cache-dir" ]
        ~env:(Cmd.Env.info "SLOWCC_CACHE_DIR")
        ~docv:"DIR" ~doc:"Cache directory to inspect or clear.")

let cache_stats_cmd =
  let run dir =
    let fp = Slowcc.Result_cache.self_fingerprint () in
    let s = Slowcc.Result_cache.stats ~fingerprint:fp ~dir () in
    Format.printf "dir:         %s@." dir;
    Format.printf "entries:     %d (%d bytes)@." s.Slowcc.Result_cache.entries
      s.Slowcc.Result_cache.entry_bytes;
    Format.printf "timings:     %d job(s), %d usable by this binary@."
      s.Slowcc.Result_cache.timing_entries
      s.Slowcc.Result_cache.timing_entries_self;
    Format.printf "fingerprint: %s (this binary)@." fp;
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Show entry count, total size and timing coverage (how many \
          recorded job timings this binary's LPT scheduling can use)")
    Term.(const run $ cache_dir_required)

let age_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
          (Printf.sprintf "cannot parse duration %S (e.g. 90s, 30m, 12h, 7d)" s))
    in
    let len = String.length s in
    if len = 0 then fail ()
    else
      let num, mult =
        match s.[len - 1] with
        | 's' -> (String.sub s 0 (len - 1), 1.)
        | 'm' -> (String.sub s 0 (len - 1), 60.)
        | 'h' -> (String.sub s 0 (len - 1), 3600.)
        | 'd' -> (String.sub s 0 (len - 1), 86400.)
        | _ -> (s, 1.)
      in
      match float_of_string_opt num with
      | Some v when Float.is_finite v && v >= 0. -> Ok (v *. mult)
      | Some _ | None -> fail ()
  in
  Arg.conv (parse, fun fmt v -> Format.fprintf fmt "%gs" v)

let cache_prune_cmd =
  let older_arg =
    Arg.(
      required
      & opt (some age_conv) None
      & info [ "older-than" ] ~docv:"AGE"
          ~doc:
            "Delete entries not modified in the last $(docv): plain \
             seconds or a number suffixed with $(b,s), $(b,m), $(b,h) or \
             $(b,d).")
  in
  let run dir older_than_s =
    let mtime path =
      match Unix.stat path with
      | st -> Some st.Unix.st_mtime
      | exception Unix.Unix_error _ -> None
    in
    let s =
      Slowcc.Result_cache.prune ~dir ~older_than_s ~now:(Unix.time ()) ~mtime
    in
    Format.printf "pruned %d entr(ies) (%d bytes), kept %d under %s@."
      s.Slowcc.Result_cache.pruned s.Slowcc.Result_cache.pruned_bytes
      s.Slowcc.Result_cache.kept dir;
    0
  in
  Cmd.v
    (Cmd.info "prune"
       ~doc:
         "Delete cache entries older than a cutoff (by file modification \
          time); the timing store is kept")
    Term.(const run $ cache_dir_required $ older_arg)

let cache_clear_cmd =
  let run dir =
    let s = Slowcc.Result_cache.stats ~dir () in
    Slowcc.Result_cache.clear ~dir;
    Format.printf "cleared %d entr(ies) and the timing store under %s@."
      s.Slowcc.Result_cache.entries dir;
    0
  in
  Cmd.v
    (Cmd.info "clear" ~doc:"Delete every cache entry and the timing store")
    Term.(const run $ cache_dir_required)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect, prune or clear a result cache directory (see \
          --cache-dir on run/all)")
    [ cache_stats_cmd; cache_prune_cmd; cache_clear_cmd ]

let protocol_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
          (Printf.sprintf
             "cannot parse protocol %S (try tcp:2, tcp-sack:2, rap:8, sqrt:2, \
              iiad:2, tfrc:6, tfrc+sc:256, tear:8, bbr, vegas, \
              vegas:1-3)"
             s))
    in
    match String.split_on_char ':' s with
    | [ "tcp"; g ] -> (
      match float_of_string_opt g with
      | Some g -> Ok (Slowcc.Protocol.tcp ~gamma:g)
      | None -> fail ())
    | [ "tcp-sack"; g ] -> (
      match float_of_string_opt g with
      | Some g -> Ok (Slowcc.Protocol.tcp_sack ~gamma:g)
      | None -> fail ())
    | [ "tear"; n ] -> (
      match int_of_string_opt n with
      | Some rounds -> Ok (Slowcc.Protocol.tear ~rounds)
      | None -> fail ())
    | [ "rap"; g ] -> (
      match float_of_string_opt g with
      | Some g -> Ok (Slowcc.Protocol.rap ~gamma:g)
      | None -> fail ())
    | [ "sqrt"; g ] -> (
      match float_of_string_opt g with
      | Some g -> Ok (Slowcc.Protocol.sqrt_ ~gamma:g)
      | None -> fail ())
    | [ "iiad"; g ] -> (
      match float_of_string_opt g with
      | Some g -> Ok (Slowcc.Protocol.iiad ~gamma:g)
      | None -> fail ())
    | [ "tfrc"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (Slowcc.Protocol.tfrc ~k ())
      | None -> fail ())
    | [ "tfrc+sc"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (Slowcc.Protocol.tfrc ~conservative:true ~k ())
      | None -> fail ())
    | [ "bbr" ] -> Ok Slowcc.Protocol.bbr
    | [ "vegas" ] -> Ok (Slowcc.Protocol.vegas ())
    | [ "vegas"; ab ] -> (
      match String.split_on_char '-' ab with
      | [ a; b ] -> (
        match (float_of_string_opt a, float_of_string_opt b) with
        | Some alpha, Some beta -> Ok (Slowcc.Protocol.vegas ~alpha ~beta ())
        | _ -> fail ())
      | _ -> fail ())
    | _ -> fail ()
  in
  let print fmt p = Format.pp_print_string fmt (Slowcc.Protocol.name p) in
  Arg.conv (parse, print)

let compete_cmd =
  let proto_a =
    Arg.(
      value
      & opt protocol_conv (Slowcc.Protocol.tcp ~gamma:2.)
      & info [ "a" ] ~docv:"PROTO" ~doc:"First protocol group.")
  in
  let proto_b =
    Arg.(
      value
      & opt protocol_conv (Slowcc.Protocol.tfrc ~k:6 ())
      & info [ "b" ] ~docv:"PROTO" ~doc:"Second protocol group.")
  in
  let n_arg =
    Arg.(value & opt int 5 & info [ "n" ] ~doc:"Flows per group.")
  in
  let bw_arg =
    Arg.(value & opt float 15e6 & info [ "bandwidth" ] ~doc:"Bottleneck bits/s.")
  in
  let period_arg =
    Arg.(
      value & opt float 4.
      & info [ "period" ] ~doc:"CBR square-wave period in seconds.")
  in
  let run verbose ff a b n bandwidth period =
    setup_logs verbose;
    apply_ff ff;
    let r =
      Slowcc.Scenarios.square_wave
        ~flows:[ (a, n); (b, n) ]
        ~bandwidth ~cbr_fraction:(2. /. 3.) ~period ()
    in
    Format.printf "%-14s normalized throughput %.3f@." (Slowcc.Protocol.name a)
      (r.Slowcc.Scenarios.group_mean (Slowcc.Protocol.name a));
    Format.printf "%-14s normalized throughput %.3f@." (Slowcc.Protocol.name b)
      (r.Slowcc.Scenarios.group_mean (Slowcc.Protocol.name b));
    Format.printf "link utilization %.3f, drop rate %.2f%%@."
      r.Slowcc.Scenarios.utilization
      (100. *. r.Slowcc.Scenarios.drop_rate);
    0
  in
  Cmd.v
    (Cmd.info "compete"
       ~doc:"Run two protocol groups against a square-wave CBR and compare")
    Term.(
      const run $ verbose_arg $ ff_arg $ proto_a $ proto_b $ n_arg $ bw_arg
      $ period_arg)

let fuzz_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 100
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Number of random scenarios (seeds 0..N-1).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run a saved reproducer instead of generating scenarios.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write shrunk reproducers of failing scenarios under $(docv).")
  in
  let run verbose quick jobs ff seeds replay out_dir =
    setup_logs verbose;
    apply_ff ff;
    let with_opt_pool f =
      if jobs > 1 then Engine.Pool.with_pool ~jobs (fun p -> f (Some p))
      else f None
    in
    with_opt_pool (fun pool ->
        match replay with
        | Some path -> (
          match Slowcc.Fuzz.load_repro path with
          | Error msg ->
            Printf.eprintf "cannot load %s: %s\n" path msg;
            2
          | Ok sc -> (
            Printf.printf "replaying %s\n%!" (Slowcc.Fuzz.describe sc);
            match Slowcc.Fuzz.check ?pool sc with
            | None ->
              print_endline "scenario passes: no violation, all legs agree";
              0
            | Some failure ->
              Printf.printf "still fails: %s\n" failure;
              1))
        | None ->
          let report =
            Slowcc.Fuzz.run_seeds ?pool ~quick ?out_dir ~log:print_endline
              ~seeds ()
          in
          if
            report.Slowcc.Fuzz.failures = []
            && report.Slowcc.Fuzz.soa_failures = []
          then (
            Printf.printf "fuzz: %d seeds, no violations, no divergences\n"
              report.Slowcc.Fuzz.seeds_run;
            0)
          else (
            Printf.printf "fuzz: %d seeds, %d FAILURE(S), %d SoA FAILURE(S)\n"
              report.Slowcc.Fuzz.seeds_run
              (List.length report.Slowcc.Fuzz.failures)
              (List.length report.Slowcc.Fuzz.soa_failures);
            List.iter
              (fun f ->
                Printf.printf "  seed %d: %s\n    shrunk: %s\n    %s\n"
                  f.Slowcc.Fuzz.scenario.Slowcc.Fuzz.seed
                  f.Slowcc.Fuzz.first_failure
                  (Slowcc.Fuzz.describe f.Slowcc.Fuzz.shrunk)
                  f.Slowcc.Fuzz.shrunk_failure)
              report.Slowcc.Fuzz.failures;
            List.iter
              (fun (seed, msg) -> Printf.printf "  seed %d (SoA): %s\n" seed msg)
              report.Slowcc.Fuzz.soa_failures;
            1))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random scenarios cross-checked across \
          scheduler, allocation and worker-domain axes under the audit \
          layer; failures are shrunk to minimal replayable reproducers")
    Term.(
      const run $ verbose_arg $ quick_arg $ jobs_arg $ ff_arg $ seeds_arg
      $ replay_arg $ out_arg)

let manyflow_cmd =
  let n_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "flows" ] ~docv:"N"
          ~doc:
            "Flow count.  Without $(b,--check): run a single N instead of \
             the sweep.  With $(b,--check): equivalence flow count \
             (default 64).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Differential mode: run the struct-of-arrays engine and the \
             per-object engine on the same scenario and compare end-state \
             digests; non-zero exit on mismatch.")
  in
  let batching_arg =
    Arg.(
      value & flag
      & info [ "batching" ]
          ~doc:
            "Enable same-instant ack batching at the sink (single-N runs \
             only; changes ack timing, so digests are not comparable to \
             the per-object engine).")
  in
  let print_result (r : Slowcc.Manyflow.result) =
    Printf.printf
      "flows=%d events=%d mean=%.4f cov=%.4f cov_sampled=%.4f jain=%.4f \
       p10=%.3f p50=%.3f p90=%.3f util=%.4f drop_rate=%.4f\n"
      r.Slowcc.Manyflow.rn r.Slowcc.Manyflow.events r.Slowcc.Manyflow.mean_norm
      r.Slowcc.Manyflow.cov r.Slowcc.Manyflow.cov_sampled r.Slowcc.Manyflow.jain
      r.Slowcc.Manyflow.p10 r.Slowcc.Manyflow.p50 r.Slowcc.Manyflow.p90
      r.Slowcc.Manyflow.utilization r.Slowcc.Manyflow.drop_rate;
    Array.iteri
      (fun k frac ->
        Printf.printf "  %-10s %6.2f%%\n"
          (Slowcc.Manyflow.bucket_label k)
          (100. *. frac))
      r.Slowcc.Manyflow.hist
  in
  let run verbose quick jobs sched n check batching =
    setup_logs verbose;
    apply_sched sched;
    if check then begin
      let n = Option.value n ~default:64 in
      let p = Slowcc.Manyflow.default_params ~n in
      let p =
        if quick then { p with Slowcc.Manyflow.duration = 5. } else p
      in
      let soa = Slowcc.Manyflow.digest_soa p in
      let obj = Slowcc.Manyflow.digest_object p in
      Printf.printf "soa    %s\nobject %s\n" soa obj;
      if String.equal soa obj then (
        Printf.printf "manyflow check: engines identical at n=%d\n" n;
        0)
      else (
        Printf.printf "manyflow check: DIVERGENCE at n=%d\n" n;
        1)
    end
    else
      match n with
      | Some n ->
        let p = Slowcc.Manyflow.experiment_params ~quick n in
        let p = { p with Slowcc.Manyflow.ack_batching = batching } in
        print_result (Slowcc.Manyflow.run p);
        0
      | None ->
        Engine.Pool.with_pool ~jobs (fun pool ->
            match Slowcc.Experiments.run_by_name ~quick ~pool "manyflow" with
            | Some tables ->
              List.iter (Slowcc.Table.print fmt) tables;
              0
            | None -> 1)
  in
  Cmd.v
    (Cmd.info "manyflow"
       ~doc:
         "Many-flow weak-convergence distributions on the struct-of-arrays \
          engine (sweep, single N, or SoA-vs-object differential check)")
    Term.(
      const run $ verbose_arg $ quick_arg $ jobs_arg $ sched_arg $ n_arg
      $ check_arg $ batching_arg)

let main =
  Cmd.group
    (Cmd.info "slowcc_run" ~version:"1.0.0"
       ~doc:
         "Reproduction driver for 'Dynamic Behavior of Slowly-Responsive \
          Congestion Control Algorithms' (SIGCOMM 2001)")
    [
      list_cmd; run_cmd; all_cmd; worker_cmd; compete_cmd; cache_cmd; fuzz_cmd;
      manyflow_cmd;
    ]

let () = exit (Cmd.eval' main)
