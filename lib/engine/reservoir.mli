(** Deterministic reservoir sampling (Algorithm R).

    A reservoir keeps a uniform sample of size [k] over a stream of
    unknown length: after [n >= k] offers, every offered item is present
    with probability exactly [k / n].  Randomness comes from the caller's
    {!Rng.t}, so a fixed seed gives a fixed sample — snapshots built from
    a reservoir are reproducible across runs and across [--jobs] widths
    (each sampler owns its stream; no shared global state). *)

type 'a t

(** [create ~rng ~k] makes an empty reservoir holding at most [k]
    elements.  Raises [Invalid_argument] if [k < 1]. *)
val create : rng:Rng.t -> k:int -> 'a t

(** Offer the next stream element. *)
val offer : 'a t -> 'a -> unit

(** Elements offered so far. *)
val seen : 'a t -> int

(** Elements currently held, [min k (seen t)]. *)
val size : 'a t -> int

(** Snapshot of the current sample in slot order (an implementation
    order, not the stream order). *)
val to_list : 'a t -> 'a list

(** Iterate over the current sample in slot order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [indices ~rng ~k n] samples [min k n] distinct indices uniformly from
    [0 .. n-1] by streaming them through a reservoir, returned sorted
    ascending.  Deterministic for a fixed [rng] state. *)
val indices : rng:Rng.t -> k:int -> int -> int array
