(** Minimal hand-rolled JSON emitter (no external dependencies).

    Serialization is fully deterministic: field order is the order given,
    floats render with a fixed format, and NaN/infinity (absent from JSON)
    degrade to [null].  That determinism is load-bearing — run manifests
    are digested byte-for-byte across worker counts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Backslash-escape a string for embedding in a JSON string literal
    (quotes, backslashes, control characters). *)
val escape : string -> string

(** Render; pretty-printed with two-space indentation by default,
    single-line when [minify] is set. *)
val to_string : ?minify:bool -> t -> string

(** [to_channel oc v] writes [to_string v] plus a trailing newline. *)
val to_channel : ?minify:bool -> out_channel -> t -> unit

(** Parse one JSON document.  Numbers with a fraction or exponent become
    [Float], plain integers become [Int] (falling back to [Float] beyond
    native int range); [\uXXXX] escapes decode to UTF-8.  Trailing
    non-whitespace after the document is an error.  Errors carry the
    byte offset of the problem. *)
val of_string : string -> (t, string) result

(** [member key doc] is the value of field [key] when [doc] is an
    [Obj] containing it, else [None]. *)
val member : string -> t -> t option
