(** Lightweight registry of named counters, gauges and sampled series.

    No external dependencies; a {!snapshot} serializes the whole registry
    to {!Json.t} with names sorted, so two registries fed the same values
    in any registration order produce identical bytes.

    Entries are get-or-create by name: asking twice for the same counter
    returns the same cell.  Asking for an existing name under a different
    kind raises [Invalid_argument]. *)

type t

val create : unit -> t

(** {2 Counters} — monotonically increasing integers. *)

type counter

val counter : t -> string -> counter

(** Add [by] (default 1, must be non-negative).  Saturates at [max_int]
    instead of wrapping to a negative value. *)
val incr : ?by:int -> counter -> unit

val value : counter -> int

(** {2 Gauges} — last-written float levels.  A gauge that was never [set]
    is omitted from snapshots. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val level : gauge -> float

(** {2 Series} — online summary statistics over observed samples
    ({!Stats.t} underneath).  [keep] > 0 additionally retains the last
    [keep] raw samples for the snapshot. *)

type series

val series : ?keep:int -> t -> string -> series
val observe : series -> float -> unit
val series_stats : series -> Stats.t

(** {2 Snapshot} *)

(** Registered names, sorted. *)
val names : t -> string list

(** [{"counters": {...}, "gauges": {...}, "series": {...}}] with names
    sorted; series report count/mean/stddev/min/max/sum (plus [recent]
    when raw samples are kept), empty series and unset gauges are
    omitted. *)
val snapshot : t -> Json.t
