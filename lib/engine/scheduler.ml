type kind = Heap | Calendar

let to_string = function Heap -> "heap" | Calendar -> "calendar"

let of_string s =
  match String.lowercase_ascii s with
  | "heap" -> Some Heap
  | "calendar" | "cal" -> Some Calendar
  | _ -> None

(* Calendar is the default now that the equivalence suite
   (test_calendar_queue) pins identical pop order against Event_heap. *)
let builtin_default = Calendar

let default =
  let init =
    match Sys.getenv_opt "SLOWCC_SCHED" with
    | None -> builtin_default
    | Some s -> (
        match of_string s with
        | Some k -> k
        | None ->
            Printf.eprintf
              "slowcc: ignoring invalid SLOWCC_SCHED=%S (want heap|calendar)\n%!"
              s;
            builtin_default)
  in
  Atomic.make init

let get_default () = Atomic.get default
let set_default k = Atomic.set default k
