(** Deterministic pseudo-random generator (SplitMix64).

    Every stochastic choice in the simulator flows from one of these, so a
    seed fully determines a run. *)

type t

val create : seed:int -> t

(** Independent stream derived from [t]; advancing one does not perturb the
    other. *)
val split : t -> t

(** Uniform in [\[0, 1)]. *)
val float : t -> float

(** Uniform in [\[0, bound)]; [bound > 0].  Uses rejection sampling, so
    every residue is exactly equally likely (no modulo bias). *)
val int : t -> int -> int

(** Uniform in [\[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** Exponential with the given [mean]. *)
val exponential : t -> mean:float -> float

(** Bernoulli trial with success probability [p]. *)
val bernoulli : t -> p:float -> bool
