(* Hybrid fluid/packet fast-forward: the process-wide mode gate (mirrors
   Scheduler) plus the pure steady-state detector.  The detector is
   deliberately engine-level — it sees only abstract per-link samples
   (loss rate, queue occupancy) and knows nothing about flows or
   protocols; the fluid controller that feeds it and acts on [stable]
   lives in lib/core (Slowcc.Fluid), which can see both. *)

type mode = Off | On

let to_string = function Off -> "off" | On -> "on"

let of_string s =
  match String.lowercase_ascii s with
  | "off" | "0" | "false" -> Some Off
  | "on" | "1" | "true" | "ff" -> Some On
  | _ -> None

(* Off is the builtin default: hybrid results are approximate, so the
   exact packet-level engine must be what you get unless you ask. *)
let builtin_default = Off

let default =
  let init =
    match Sys.getenv_opt "SLOWCC_FF" with
    | None -> builtin_default
    | Some s -> (
        match of_string s with
        | Some m -> m
        | None ->
            Printf.eprintf
              "slowcc: ignoring invalid SLOWCC_FF=%S (want on|off)\n%!" s;
            builtin_default)
  in
  Atomic.make init

let get_default () = Atomic.get default
let set_default m = Atomic.set default m

(* Process-wide fast-forward accounting, aggregated across every fluid
   controller in the process.  Saturating adds, like Metrics counters;
   the per-run Metrics registry carries the same numbers per scenario,
   these atomics exist so A/B harnesses (bench --perf) can read deltas
   without threading a registry through. *)
let entries_total = Atomic.make 0
let exits_total = Atomic.make 0
let skipped_ns_total = Atomic.make 0 (* integer nanoseconds of sim time *)

let note_entry () = Atomic.incr entries_total

let note_exit ~skipped_s =
  Atomic.incr exits_total;
  if skipped_s > 0. then begin
    let ns = int_of_float (skipped_s *. 1e9) in
    let rec add () =
      let cur = Atomic.get skipped_ns_total in
      let nxt = if cur > max_int - ns then max_int else cur + ns in
      if not (Atomic.compare_and_set skipped_ns_total cur nxt) then add ()
    in
    add ()
  end

let entries () = Atomic.get entries_total
let exits () = Atomic.get exits_total
let skipped_sim_seconds () = float_of_int (Atomic.get skipped_ns_total) *. 1e-9

module Detector = struct
  (* Sliding-window stability test over per-link samples.  A sample is
     (loss rate over the last interval, queue occupancy in packets,
     delivered rate in bytes/s).  The window is stable when it holds
     [window] samples and every series stays inside a relative band
     around its window mean:

       max - min <= rel_tol * max(mean, floor)

     The floor keeps the relative test meaningful near zero (a loss rate
     oscillating between 0 and 0.002 is steady for our purposes; between
     0 and 0.2 it is not).  Queue occupancy uses an absolute-or-relative
     band for the same reason: an empty-to-two-packets flutter on a
     200-packet queue is noise.

     The delivered-rate series is what separates "steady congestion"
     from "pre-congestion growth": during slow-start, loss and
     occupancy both sit flat at zero (trivially in band) while the
     sending rate doubles every RTT — only the rate band refuses to
     arm there. *)
  type config = {
    window : int;  (* samples required before [stable] can be true *)
    loss_rel_tol : float;
    loss_floor : float;  (* loss-rate band floor *)
    queue_rel_tol : float;
    queue_floor : float;  (* occupancy band floor, packets *)
    rate_rel_tol : float;
    rate_floor : float;  (* delivered-rate band floor, bytes/s *)
  }

  let default_config =
    {
      window = 6;
      loss_rel_tol = 0.75;
      loss_floor = 0.01;
      queue_rel_tol = 0.75;
      queue_floor = 4.;
      rate_rel_tol = 0.5;
      rate_floor = 1000.;
    }

  type t = {
    config : config;
    loss : float array;
    occ : float array;
    rate : float array;
    mutable len : int;  (* valid samples, <= window *)
    mutable head : int;  (* next write position *)
  }

  let create ?(config = default_config) () =
    if config.window < 2 then
      invalid_arg "Fastforward.Detector.create: window >= 2";
    {
      config;
      loss = Array.make config.window 0.;
      occ = Array.make config.window 0.;
      rate = Array.make config.window 0.;
      len = 0;
      head = 0;
    }

  let reset t =
    t.len <- 0;
    t.head <- 0

  let observe t ~loss ~occupancy ~rate =
    t.loss.(t.head) <- loss;
    t.occ.(t.head) <- occupancy;
    t.rate.(t.head) <- rate;
    t.head <- (t.head + 1) mod t.config.window;
    if t.len < t.config.window then t.len <- t.len + 1

  let samples t = t.len

  let band_ok a len ~rel_tol ~floor =
    let mn = ref a.(0) and mx = ref a.(0) and sum = ref 0. in
    for i = 0 to len - 1 do
      let v = a.(i) in
      if v < !mn then mn := v;
      if v > !mx then mx := v;
      sum := !sum +. v
    done;
    let mean = !sum /. float_of_int len in
    !mx -. !mn <= rel_tol *. Float.max mean floor

  (* Window mean of the loss-rate series: the fluid model's [p]. *)
  let mean_loss t =
    if t.len = 0 then 0.
    else begin
      let sum = ref 0. in
      for i = 0 to t.len - 1 do
        sum := !sum +. t.loss.(i)
      done;
      !sum /. float_of_int t.len
    end

  let mean_occupancy t =
    if t.len = 0 then 0.
    else begin
      let sum = ref 0. in
      for i = 0 to t.len - 1 do
        sum := !sum +. t.occ.(i)
      done;
      !sum /. float_of_int t.len
    end

  let stable t =
    t.len = t.config.window
    && band_ok t.loss t.len ~rel_tol:t.config.loss_rel_tol
         ~floor:t.config.loss_floor
    && band_ok t.occ t.len ~rel_tol:t.config.queue_rel_tol
         ~floor:t.config.queue_floor
    && band_ok t.rate t.len ~rel_tol:t.config.rate_rel_tol
         ~floor:t.config.rate_floor
end
