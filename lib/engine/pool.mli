(** Fixed-size pool of worker domains with a shared job queue.

    Built directly on [Domain]/[Mutex]/[Condition] (no external
    dependency).  The pool executes batches of independent jobs and
    reassembles results in submission order, so a caller that seeds each
    job deterministically gets bit-identical results regardless of the
    worker count.

    Semantics:
    - [jobs = 1] is the degenerate case: no domains are spawned and every
      job runs inline in the submitting domain.
    - Batches submitted from inside a worker (nested use) run inline in
      that worker, which makes reentrant use deadlock-free.
    - If a job raises, the remaining jobs of the batch still run; the
      batch call then re-raises the exception of the lowest-indexed
      failed job with its original backtrace. *)

type t

(** {2 Execution backends}

    The pool type below is the {e domain} backend: shared-memory worker
    domains inside one process.  Sweeps can also run on the {e process}
    backend — a pool of worker processes (possibly on several machines
    sharing a filesystem) coordinating through a persisted work queue and
    the content-addressed result cache.  Both backends execute the same
    closed, independently-seeded jobs and reassemble in submission order,
    so output bytes are identical under either; which one wins is purely
    a hardware question (domains share one minor-GC clock, processes do
    not).  The process backend itself lives above the engine (it needs
    the result cache and an executable to spawn — see [Slowcc.Workqueue]
    and the [slowcc_run worker] subcommand); this enum only names the
    choice for CLIs and benchmarks. *)
type backend =
  | Domains  (** worker domains in-process, selected with [--jobs] *)
  | Procs
      (** worker processes over a shared cache dir, selected with
          [--workers] *)

val backend_of_string : string -> backend option
val backend_to_string : backend -> string

(** Sensible default worker count for this machine:
    [Domain.recommended_domain_count ()], at least 1. *)
val default_jobs : unit -> int

(** [clamp_jobs n] is [n] clamped to the range [create] accepts
    (1 to 128). *)
val clamp_jobs : int -> int

(** Apply the engine GC policy to the calling domain: a 1M-word minor
    heap (vs the 256k default) so the steady trickle of event closures
    triggers fewer minor collections.  Overridden by the [SLOWCC_GC]
    environment variable: ["off"] keeps the runtime defaults, otherwise a
    comma-separated list of [minor=<words>] and [overhead=<percent>]
    (malformed values warn on stderr and fall back to the default
    policy).  [create] applies it to the submitting domain and every
    worker applies it on spawn; call it directly for domains the pool
    does not manage. *)
val tune_gc : unit -> unit

(** [create ~jobs] makes a pool that will use at most [clamp_jobs jobs]
    worker domains.  Workers are spawned lazily at submission time and
    clamped to the batch size, so a pool sized for the machine never runs
    more domains than it has jobs in flight; the submitting domain itself
    only waits on batches. *)
val create : jobs:int -> t

(** Worker count the pool was created with (>= 1). *)
val jobs : t -> int

(** [map_list t f xs] applies [f] to every element of [xs] on the pool and
    returns the results in the order of [xs]. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [run_jobs t ?cost jobs] runs a keyed batch of thunks and returns
    [(key, result)] pairs in submission order.

    [cost] is an optional per-key wall-time estimate (seconds, any
    consistent unit works).  When given, the batch is {e executed}
    longest-processing-time-first so one long job cannot tail-block the
    batch at [jobs = N]; results are still reassembled in submission
    order, so output is byte-identical with or without estimates, at any
    worker count.  [None], NaN and infinite estimates schedule as
    zero-cost; ties (and the all-[None] case) fall back to submission
    order via a stable sort. *)
val run_jobs :
  t -> ?cost:('k -> float option) -> ('k * (unit -> 'r)) list -> ('k * 'r) list

(** Signal workers to finish and join them.  Idempotent.  Submitting new
    batches after [shutdown] raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] creates a pool, passes it to [f] and shuts the
    pool down afterwards, also on exception. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
