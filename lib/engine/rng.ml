type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let float t =
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over a 63-bit draw: plain [Int64.rem] makes the
     low residues appear once more than the high ones whenever the bound
     does not divide 2^63.  Redraw in the final partial interval instead;
     with range = 2^63, (range mod b) = ((max_int mod b) + 1) mod b. *)
  let b = Int64.of_int bound in
  let leftover = Int64.rem (Int64.add (Int64.rem Int64.max_int b) 1L) b in
  let cutoff = Int64.sub Int64.max_int leftover in
  let rec draw () =
    let v = Int64.shift_right_logical (next_int64 t) 1 in
    if v <= cutoff then Int64.to_int (Int64.rem v b) else draw ()
  in
  draw ()

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  let u = float t in
  (* Guard against log 0. *)
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let bernoulli t ~p = float t < p
