type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Deterministic float rendering: integers without a fractional part,
   everything else with enough digits to be stable across runs.  JSON has
   no NaN/infinity, so those degrade to null. *)
let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let add_indent buf n = Buffer.add_string buf (String.make n ' ')

let rec emit buf ~minify ~level v =
  let nl () = if not minify then Buffer.add_char buf '\n' in
  let pad n = if not minify then add_indent buf n in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v when not (Float.is_finite v) -> Buffer.add_string buf "null"
  | Float v -> Buffer.add_string buf (float_repr v)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 2);
        emit buf ~minify ~level:(level + 2) item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (key, value) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 2);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape key);
        Buffer.add_string buf (if minify then "\":" else "\": ");
        emit buf ~minify ~level:(level + 2) value)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(minify = false) v =
  let buf = Buffer.create 256 in
  emit buf ~minify ~level:0 v;
  Buffer.contents buf

let to_channel ?minify oc v =
  output_string oc (to_string ?minify v);
  output_char oc '\n'

(* Recursive-descent parser over a string with an explicit cursor.  Covers
   the JSON actually produced by [to_string] plus standard escapes, so the
   bench harness can validate its own BENCH_engine.json round-trip. *)

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = c then incr pos
    else fail !pos (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    (* Only the BMP: surrogate pairs degrade to two 3-byte sequences, which
       is fine for the ASCII-dominated documents this engine emits. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (if !pos >= n then fail !pos "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; incr pos
         | '\\' -> Buffer.add_char buf '\\'; incr pos
         | '/' -> Buffer.add_char buf '/'; incr pos
         | 'n' -> Buffer.add_char buf '\n'; incr pos
         | 'r' -> Buffer.add_char buf '\r'; incr pos
         | 't' -> Buffer.add_char buf '\t'; incr pos
         | 'b' -> Buffer.add_char buf '\b'; incr pos
         | 'f' -> Buffer.add_char buf '\012'; incr pos
         | 'u' ->
           if !pos + 4 >= n then fail !pos "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           (match int_of_string_opt ("0x" ^ hex) with
           | Some code -> add_utf8 buf code
           | None -> fail !pos (Printf.sprintf "bad \\u escape %S" hex));
           pos := !pos + 5
         | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
        loop ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then incr pos;
    let is_float = ref false in
    let rec scan () =
      match peek () with
      | '0' .. '9' ->
        incr pos;
        scan ()
      | '.' | 'e' | 'E' | '+' | '-' ->
        is_float := true;
        incr pos;
        scan ()
      | _ -> ()
    in
    scan ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some v -> Float v
      | None -> fail start (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> (
        (* Integer syntax but beyond native int range. *)
        match float_of_string_opt text with
        | Some v -> Float v
        | None -> fail start (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> String (parse_string ())
    | '-' | '0' .. '9' -> parse_number ()
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = ',' do
          incr pos;
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (key, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = ',' do
          incr pos;
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | '\255' -> fail !pos "unexpected end of input"
    | c -> fail !pos (Printf.sprintf "unexpected character %C" c)
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos < n then Error (Printf.sprintf "trailing data at offset %d" !pos)
    else Ok v
  | exception Parse_error (p, msg) ->
    Error (Printf.sprintf "at offset %d: %s" p msg)

(* Lookup helpers for validating parsed documents. *)
let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
