type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Deterministic float rendering: integers without a fractional part,
   everything else with enough digits to be stable across runs.  JSON has
   no NaN/infinity, so those degrade to null. *)
let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let add_indent buf n = Buffer.add_string buf (String.make n ' ')

let rec emit buf ~minify ~level v =
  let nl () = if not minify then Buffer.add_char buf '\n' in
  let pad n = if not minify then add_indent buf n in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v when not (Float.is_finite v) -> Buffer.add_string buf "null"
  | Float v -> Buffer.add_string buf (float_repr v)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 2);
        emit buf ~minify ~level:(level + 2) item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (key, value) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 2);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape key);
        Buffer.add_string buf (if minify then "\":" else "\": ");
        emit buf ~minify ~level:(level + 2) value)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(minify = false) v =
  let buf = Buffer.create 256 in
  emit buf ~minify ~level:0 v;
  Buffer.contents buf

let to_channel ?minify oc v =
  output_string oc (to_string ?minify v);
  output_char oc '\n'
