(* ns-2-style calendar queue: a bucketed timer ring with automatic resize.

   Events live in pooled nodes held in parallel arrays ([times]/[seqs]/
   [vals]/[nexts]) and linked into per-bucket sorted lists by index, so
   steady-state add/take touches no allocator at all — the same
   zero-allocation discipline as [Event_heap].  Each bucket covers a
   [width]-second window of the virtual clock; bucket [n land mask] holds
   events with [floor (time / width) = n].  Dequeue scans one calendar
   "year" (every bucket once) from the cursor; if nothing lies inside its
   own window the minimum is found by direct search, exactly as ns-2's
   scheduler does for sparse horizons.

   Ordering is identical to [Event_heap]: lexicographic on (time, seq)
   where [seq] is the global insertion counter, so FIFO within equal
   timestamps.  Equal times always hash to the same bucket, and bucket
   lists are kept sorted by (time, seq), which makes the tie-break exact
   rather than approximate.

   The structure assumes the simulator's contract: times are finite,
   non-negative, and never earlier than the last dequeued time.  Earlier
   inserts are still handled correctly (the cursor moves back), they are
   just slower. *)

type 'a t = {
  (* node pool *)
  mutable times : float array;
  mutable seqs : int array;
  mutable vals : Obj.t array;
  mutable nexts : int array;
  mutable free : int;  (* free-list head, -1 when the pool is full *)
  (* calendar *)
  mutable buckets : int array;  (* per-bucket list head, -1 when empty *)
  mutable mask : int;  (* nbuckets - 1; nbuckets is a power of two *)
  mutable width : float;  (* seconds covered by one bucket *)
  mutable cur : int;  (* absolute bucket number of the search cursor *)
  mutable size : int;
  mutable next_seq : int;
  staging : floatarray;  (* unboxed hand-off slot for [add] *)
  (* Last (time, seq) handed out by [take]; only read/written under
     [Audit.invariants_on] to assert (time, insertion-order) pop order. *)
  mutable last_pop_time : float;
  mutable last_pop_seq : int;
}

let dummy : Obj.t = Obj.repr ()
let initial_nodes = 256
let initial_buckets = 8
let min_buckets = 8

let create () =
  {
    times = [||];
    seqs = [||];
    vals = [||];
    nexts = [||];
    free = -1;
    buckets = Array.make initial_buckets (-1);
    mask = initial_buckets - 1;
    width = 0.01;
    cur = 0;
    size = 0;
    next_seq = 0;
    staging = Float.Array.create 1;
    last_pop_time = Float.neg_infinity;
    last_pop_seq = -1;
  }

let is_empty t = t.size = 0
let size t = t.size

(* Number of buckets currently in the ring (introspection / tests). *)
let buckets t = t.mask + 1
let width t = t.width

let grow_pool t =
  let cap = Array.length t.times in
  let new_cap = if cap = 0 then initial_nodes else cap * 2 in
  let times = Array.make new_cap 0. in
  let seqs = Array.make new_cap 0 in
  let vals = Array.make new_cap dummy in
  let nexts = Array.make new_cap (-1) in
  Array.blit t.times 0 times 0 cap;
  Array.blit t.seqs 0 seqs 0 cap;
  Array.blit t.vals 0 vals 0 cap;
  Array.blit t.nexts 0 nexts 0 cap;
  (* Chain the new slots into the free list. *)
  for i = cap to new_cap - 2 do
    nexts.(i) <- i + 1
  done;
  nexts.(new_cap - 1) <- t.free;
  t.free <- cap;
  t.times <- times;
  t.seqs <- seqs;
  t.vals <- vals;
  t.nexts <- nexts

(* Absolute bucket number of [time] under the current width. *)
let[@inline] bucket_number t time = int_of_float (time /. t.width)

(* Insert node [n] (fields already set) into its bucket's sorted list. *)
let insert_node t n =
  let time = Array.unsafe_get t.times n in
  let seq = Array.unsafe_get t.seqs n in
  let bn = bucket_number t time in
  if bn < t.cur then t.cur <- bn;
  let b = bn land t.mask in
  let head = Array.unsafe_get t.buckets b in
  if
    head < 0
    || time < Array.unsafe_get t.times head
    || (time = Array.unsafe_get t.times head
        && seq < Array.unsafe_get t.seqs head)
  then begin
    Array.unsafe_set t.nexts n head;
    Array.unsafe_set t.buckets b n
  end
  else begin
    (* Walk to the last node that precedes [n]. *)
    let prev = ref head in
    let continue_ = ref true in
    while !continue_ do
      let nx = Array.unsafe_get t.nexts !prev in
      if nx < 0 then continue_ := false
      else begin
        let tx = Array.unsafe_get t.times nx in
        if tx < time || (tx = time && Array.unsafe_get t.seqs nx < seq) then
          prev := nx
        else continue_ := false
      end
    done;
    Array.unsafe_set t.nexts n (Array.unsafe_get t.nexts !prev);
    Array.unsafe_set t.nexts !prev n
  end

(* Estimate a bucket width from the event-time distribution: three times
   the average separation of the ~32 earliest events (ns-2 samples near
   the head of the queue for the same reason — far-future stragglers must
   not stretch the buckets that the dense near-term traffic lives in). *)
let estimate_width t live =
  let n = Array.length live in
  if n < 2 then t.width
  else begin
    Array.sort Float.compare live;
    let k = min n 32 in
    let front = live.(k - 1) -. live.(0) in
    let gap =
      if front > 0. then front /. float_of_int (k - 1)
      else begin
        (* The earliest events are all simultaneous; fall back to the
           full range. *)
        let range = live.(n - 1) -. live.(0) in
        if range > 0. then range /. float_of_int n else 0.
      end
    in
    if gap > 0. then Float.max 1e-12 (3. *. gap) else t.width
  end

(* Rebuild the ring with [nb] buckets and a freshly estimated width.
   O(size); called when the event count crosses 2x or 0.5x the bucket
   count, so the amortized cost per operation is O(1). *)
let resize t nb =
  let live = Array.make t.size 0. in
  let nodes = Array.make t.size 0 in
  let j = ref 0 in
  Array.iter
    (fun head ->
      let n = ref head in
      while !n >= 0 do
        live.(!j) <- Array.unsafe_get t.times !n;
        nodes.(!j) <- !n;
        incr j;
        n := Array.unsafe_get t.nexts !n
      done)
    t.buckets;
  t.width <- estimate_width t live;
  t.buckets <- Array.make nb (-1);
  t.mask <- nb - 1;
  (* live is now sorted (estimate_width sorts it); reposition the cursor
     at the earliest event so the scan invariant [cur <= min bucket]
     holds. *)
  t.cur <- (if t.size = 0 then 0 else bucket_number t live.(0));
  Array.iter (fun n -> insert_node t n) nodes

let add_staged t v =
  let time = Float.Array.unsafe_get t.staging 0 in
  if t.free < 0 then grow_pool t;
  let n = t.free in
  t.free <- Array.unsafe_get t.nexts n;
  Array.unsafe_set t.times n time;
  Array.unsafe_set t.seqs n t.next_seq;
  t.next_seq <- t.next_seq + 1;
  Array.unsafe_set t.vals n v;
  insert_node t n;
  t.size <- t.size + 1;
  if t.size > 2 * (t.mask + 1) then resize t (2 * (t.mask + 1))

(* The staging slot lets an inlined caller hand the (unboxed) time to the
   out-of-line body without boxing it at the call boundary. *)
let[@inline] add t ~time value =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Calendar_queue.add: time must be finite and non-negative";
  Float.Array.unsafe_set t.staging 0 time;
  add_staged t (Obj.repr value)

let alloc_seq t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

(* Unlike [Event_heap.add_with_seq], no [seq < next_seq] guard: the
   consolidated RTO wheel is itself a calendar queue whose entries carry
   seqs allocated from the *simulator's* queue, so its own counter never
   advances. *)
let add_with_seq t ~time ~seq value =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg
      "Calendar_queue.add_with_seq: time must be finite and non-negative";
  if seq < 0 then invalid_arg "Calendar_queue.add_with_seq: negative seq";
  if t.free < 0 then grow_pool t;
  let n = t.free in
  t.free <- Array.unsafe_get t.nexts n;
  Array.unsafe_set t.times n time;
  Array.unsafe_set t.seqs n seq;
  Array.unsafe_set t.vals n (Obj.repr value);
  insert_node t n;
  t.size <- t.size + 1;
  if t.size > 2 * (t.mask + 1) then resize t (2 * (t.mask + 1))

(* Nothing inside its own window for a whole year: direct search over
   the bucket heads (each head is its bucket's minimum).  Rare — only
   sparse horizons reach it.  Compares by node index so only int refs
   are live (no boxed float accumulator). *)
let direct_search t =
  let nb = t.mask + 1 in
  let best_b = ref (-1) in
  let best_n = ref (-1) in
  for b = 0 to nb - 1 do
    let h = Array.unsafe_get t.buckets b in
    if
      h >= 0
      && (!best_n < 0
         || Array.unsafe_get t.times h < Array.unsafe_get t.times !best_n
         || (Array.unsafe_get t.times h = Array.unsafe_get t.times !best_n
             && Array.unsafe_get t.seqs h < Array.unsafe_get t.seqs !best_n))
    then begin
      best_b := b;
      best_n := h
    end
  done;
  t.cur <- bucket_number t (Array.unsafe_get t.times !best_n);
  !best_b

(* Find the node to dequeue: the bucket (relative index) holding the
   earliest event, positioning [t.cur] on its year.  Assumes size > 0.
   A while loop over int refs, not a local recursive function — a [let
   rec] closure here would be allocated on every [min_time]/[take]. *)
let find_min_bucket t =
  let nb = t.mask + 1 in
  let c = ref t.cur in
  let k = ref 0 in
  let found = ref (-1) in
  while !found < 0 && !k < nb do
    let b = !c land t.mask in
    let h = Array.unsafe_get t.buckets b in
    (* The window check divides exactly like [bucket_number] does —
       mixing a multiplication here would disagree with placement at
       bucket boundaries (different rounding) and skip the true minimum
       in favor of a later year's event. *)
    if h >= 0 && Array.unsafe_get t.times h /. t.width < float_of_int (!c + 1)
    then begin
      t.cur <- !c;
      found := b
    end
    else begin
      incr c;
      incr k
    end
  done;
  if !found >= 0 then !found else direct_search t

let remove_head t b =
  let n = Array.unsafe_get t.buckets b in
  Array.unsafe_set t.buckets b (Array.unsafe_get t.nexts n);
  Array.unsafe_set t.nexts n t.free;
  t.free <- n;
  t.size <- t.size - 1;
  let v = Array.unsafe_get t.vals n in
  Array.unsafe_set t.vals n dummy;
  let nb = t.mask + 1 in
  (* Shrink at size < nb/4, not ns-2's nb/2: paired with growth at
     2*nb this leaves an 8x hysteresis band, so a pending-event count
     that breathes with the congestion window (2-4x over an RTT) never
     thrashes the ring through rebuild storms. *)
  if nb > min_buckets && t.size < nb / 4 then resize t (nb / 2);
  v

let take t =
  if t.size = 0 then invalid_arg "Calendar_queue.take: empty queue";
  let b = find_min_bucket t in
  if Audit.invariants_on () then begin
    let n = Array.unsafe_get t.buckets b in
    let time = Array.unsafe_get t.times n
    and seq = Array.unsafe_get t.seqs n in
    if
      time < t.last_pop_time
      || (time = t.last_pop_time && seq < t.last_pop_seq)
    then
      Audit.fail
        "Calendar_queue.take: popped (t=%.17g, seq=%d) after (t=%.17g, \
         seq=%d) — FIFO order at equal timestamps broken"
        time seq t.last_pop_time t.last_pop_seq;
    t.last_pop_time <- time;
    t.last_pop_seq <- seq
  end;
  Obj.obj (remove_head t b)

(* Earliest time; NaN if empty — callers check [is_empty] first.  Marked
   [@inline] so the float result stays unboxed in the drain loop. *)
let[@inline] min_time t =
  if t.size = 0 then Float.nan
  else begin
    let b = find_min_bucket t in
    Array.unsafe_get t.times (Array.unsafe_get t.buckets b)
  end

let peek_time t = if t.size = 0 then None else Some (min_time t)

(* Insertion seq of the earliest event; [Invalid_argument] when empty. *)
let min_seq t =
  if t.size = 0 then invalid_arg "Calendar_queue.min_seq: empty queue"
  else begin
    let b = find_min_bucket t in
    Array.unsafe_get t.seqs (Array.unsafe_get t.buckets b)
  end

let pop t =
  if t.size = 0 then None
  else begin
    let b = find_min_bucket t in
    let n = Array.unsafe_get t.buckets b in
    let time = Array.unsafe_get t.times n in
    let v = remove_head t b in
    Some (time, Obj.obj v)
  end

let clear t =
  Array.fill t.vals 0 (Array.length t.vals) dummy;
  let cap = Array.length t.nexts in
  for i = 0 to cap - 2 do
    t.nexts.(i) <- i + 1
  done;
  if cap > 0 then t.nexts.(cap - 1) <- -1;
  t.free <- (if cap > 0 then 0 else -1);
  Array.fill t.buckets 0 (Array.length t.buckets) (-1);
  t.size <- 0;
  t.cur <- 0;
  t.last_pop_time <- Float.neg_infinity;
  t.last_pop_seq <- -1
