type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; sum = 0. }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max
let sum t = t.sum
(* Coefficient of variation is a relative dispersion: use |mean| so a
   negative-mean series does not report a negative CoV. *)
let cov t =
  let m = Float.abs (mean t) in
  if m = 0. then 0. else stddev t /. m

let jain_index xs =
  match xs with
  | [] -> 1.
  | _ ->
    let n = float_of_int (List.length xs) in
    let s = List.fold_left ( +. ) 0. xs in
    let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if s2 = 0. then 1. else s *. s /. (n *. s2)

let percentile q xs =
  if q < 0. || q > 1. then invalid_arg "Stats.percentile: q outside [0,1]";
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | sorted ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let pos = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = pos -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
    end
