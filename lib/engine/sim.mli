(** Discrete-event simulation clock and scheduler.

    A [Sim.t] owns the virtual clock and a queue of timed thunks.  All
    simulated components schedule closures through it; [run] drains events
    in time order until the queue is empty or a stop condition fires.

    The event queue is either a binary heap or an ns-2-style calendar
    queue ({!Scheduler.kind}); both pop in (time, insertion-order) order,
    so every simulation is byte-identical under either. *)

type t

(** A handle to a scheduled event that can be cancelled. *)
type handle

(** [create ?sched ?fastforward ()] makes a fresh simulator.  [sched]
    defaults to {!Scheduler.get_default} (calendar queue unless
    overridden); [fastforward] to {!Fastforward.get_default} ([Off]
    unless overridden).  The simulator itself never fast-forwards — the
    mode is carried here so scenario builders attach (or skip) a fluid
    controller exactly like they pick an event queue. *)
val create : ?sched:Scheduler.kind -> ?fastforward:Fastforward.mode -> unit -> t

(** Which event queue this simulator runs on. *)
val scheduler : t -> Scheduler.kind

(** Whether hybrid fluid/packet fast-forward is enabled for this
    simulator ({!Fastforward.Off} by default). *)
val fastforward : t -> Fastforward.mode

(** Current virtual time in seconds. *)
val now : t -> float

(** [at t time f] runs [f] at absolute [time].  Scheduling in the past
    raises [Invalid_argument]. *)
val at : t -> float -> (unit -> unit) -> unit

(** [after t delay f] runs [f] at [now t +. delay]. *)
val after : t -> float -> (unit -> unit) -> unit

(** {2 Explicit sequence numbers}

    Events at equal timestamps pop in insertion order, tie-broken by a
    per-queue counter.  An aggregating scheduler (the struct-of-arrays
    RTO wheel) funnels many logical timers through few physical queue
    entries, yet must preserve the exact pop position each logical
    insertion would have had.  [alloc_seq] burns one counter value
    without inserting; [at_seq] schedules an event at a previously
    burned seq.  Misuse breaks FIFO-at-equal-times determinism — never
    insert a (time, seq) that sorts before an already dequeued event. *)

(** Advance the queue's insertion counter by one, returning the value. *)
val alloc_seq : t -> int

(** [at_seq t time ~seq f] runs [f] at absolute [time], tie-broken as
    the [seq]-th insertion.  Scheduling in the past raises
    [Invalid_argument]. *)
val at_seq : t -> float -> seq:int -> (unit -> unit) -> unit

(** Cancellable variants. *)
val at_cancellable : t -> float -> (unit -> unit) -> handle

val after_cancellable : t -> float -> (unit -> unit) -> handle

(** Cancel an event; a no-op if already fired or cancelled. *)
val cancel : handle -> unit

(** True if the handle has neither fired nor been cancelled. *)
val pending : handle -> bool

(** {2 Reusable timers}

    A [timer] is an arm/disarm-many-times alarm bound to one callback at
    creation.  Unlike {!after_cancellable} — which allocates a handle and
    a fresh guarded closure per scheduling — re-arming a timer allocates
    nothing, which matters for per-ack retransmit timers.  Arming while
    already armed simply replaces the deadline.  A timer keeps at most one
    live queue entry: re-arming LATER than the pending entry is O(1) (the
    entry chases the deadline when it pops), so the ack-path pattern
    "push the RTO out on every ack" costs one queue insert per RTO
    interval, not one per ack.  Firing times are unchanged. *)

type timer

(** [timer t f] makes a disarmed timer that runs [f] when it expires. *)
val timer : t -> (unit -> unit) -> timer

(** Arm (or re-arm) at absolute [time].  Scheduling in the past raises
    [Invalid_argument]. *)
val arm_at : timer -> float -> unit

(** Arm (or re-arm) at [now +. delay]. *)
val arm_after : timer -> float -> unit

(** Disarm; a no-op if not armed. *)
val disarm : timer -> unit

val timer_armed : timer -> bool

(** [every t ~interval ~stop f] runs [f] every [interval] seconds starting
    at [now +. interval] until [stop] (absolute time, default: forever).
    Tick [k] lands exactly on [now +. k *. interval] — the grid does not
    drift over long runs. *)
val every : ?stop:float -> t -> interval:float -> (unit -> unit) -> unit

(** Drain events until the queue is empty, [until] is reached (the clock
    is then left at [until]), or [stop] is called. *)
val run : ?until:float -> t -> unit

(** Stop [run] after the current event completes. *)
val stop : t -> unit

(** Number of events processed so far. *)
val events_processed : t -> int
