(** Event-queue selection for {!Sim}.

    Both implementations expose the same ordering contract (pop in
    (time, insertion-order) order), so simulations are byte-identical
    under either; the calendar queue is amortized O(1) and wins on the
    dense timer workloads the experiments generate, the heap has no
    resize pauses and wins on tiny or wildly non-uniform queues. *)

type kind = Heap | Calendar

val to_string : kind -> string

(** Case-insensitive; accepts ["heap"], ["calendar"], ["cal"]. *)
val of_string : string -> kind option

(** Process-wide default used by [Sim.create] when [?sched] is omitted.
    Initialized to [Calendar], overridable with the [SLOWCC_SCHED]
    environment variable (["heap"] or ["calendar"]). *)
val get_default : unit -> kind

val set_default : kind -> unit
