type handle = { mutable live : bool }

type queue =
  | Q_heap of (unit -> unit) Event_heap.t
  | Q_cal of (unit -> unit) Calendar_queue.t

type t = {
  q : queue;
  clock : floatarray;
      (* cell 0: virtual now.  A floatarray cell instead of a [mutable
         now : float] field — stores into a mixed record box the float on
         every event (no flambda); floatarray stores do not. *)
  mutable running : bool;
  mutable processed : int;
  fastforward : Fastforward.mode;
}

let create ?sched ?fastforward () =
  let kind =
    match sched with Some k -> k | None -> Scheduler.get_default ()
  in
  let ff =
    match fastforward with
    | Some m -> m
    | None -> Fastforward.get_default ()
  in
  let q =
    match kind with
    | Scheduler.Heap -> Q_heap (Event_heap.create ())
    | Scheduler.Calendar -> Q_cal (Calendar_queue.create ())
  in
  {
    q;
    clock = Float.Array.make 1 0.;
    running = false;
    processed = 0;
    fastforward = ff;
  }

let scheduler t =
  match t.q with Q_heap _ -> Scheduler.Heap | Q_cal _ -> Scheduler.Calendar

let fastforward t = t.fastforward

let[@inline] now t = Float.Array.unsafe_get t.clock 0
let[@inline] set_now t time = Float.Array.unsafe_set t.clock 0 time

let[@inline] q_add t ~time f =
  match t.q with
  | Q_heap h -> Event_heap.add h ~time f
  | Q_cal c -> Calendar_queue.add c ~time f

let[@inline] q_is_empty t =
  match t.q with
  | Q_heap h -> Event_heap.is_empty h
  | Q_cal c -> Calendar_queue.is_empty c

let[@inline] q_min_time t =
  match t.q with
  | Q_heap h -> Event_heap.min_time h
  | Q_cal c -> Calendar_queue.min_time c

let[@inline] q_take t =
  match t.q with
  | Q_heap h -> Event_heap.take h
  | Q_cal c -> Calendar_queue.take c

let at t time f =
  if time < now t then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is in the past (now %g)" time (now t));
  q_add t ~time f

(* Explicit-seq scheduling, for aggregating schedulers (the SoA RTO
   wheel): burn a tie-break seq now, insert the one physical entry at
   that logical position later.  See Event_heap/Calendar_queue. *)
let alloc_seq t =
  match t.q with
  | Q_heap h -> Event_heap.alloc_seq h
  | Q_cal c -> Calendar_queue.alloc_seq c

let at_seq t time ~seq f =
  if time < now t then
    invalid_arg
      (Printf.sprintf "Sim.at_seq: time %g is in the past (now %g)" time
         (now t));
  match t.q with
  | Q_heap h -> Event_heap.add_with_seq h ~time ~seq f
  | Q_cal c -> Calendar_queue.add_with_seq c ~time ~seq f

let[@inline] after t delay f = at t (now t +. delay) f

let at_cancellable t time f =
  let handle = { live = true } in
  let guarded () =
    if handle.live then begin
      handle.live <- false;
      f ()
    end
  in
  at t time guarded;
  handle

let after_cancellable t delay f = at_cancellable t (now t +. delay) f

let cancel handle = handle.live <- false
let pending handle = handle.live

(* Reusable timers: one guarded closure, zero allocation on re-arm, and —
   crucially for re-arm-heavy users like the TCP RTO, which pushes its
   deadline out on every ack — at most ONE live queue entry per timer.
   [queued] tracks the tracked entry's scheduled time (infinity when
   none).  Arming later than the tracked entry is O(1): the deadline cell
   moves but no event is inserted; when the tracked entry pops it notices
   the deadline is still in the future and re-pushes itself there.
   Arming earlier inserts a new entry and orphans the old one, which
   no-ops on pop ([queued] no longer matches its time).  Cancellation is
   lazy — [disarm] clears [armed] and the entry chain dies on first pop.
   Firing times are identical to eager insertion: the entry chain always
   reaches the live deadline exactly (the simulator sets the clock to the
   event's scheduled time, so [deadline = now] identifies arrival). *)
type timer = {
  tsim : t;
  mutable armed : bool;
  deadline : floatarray;
  queued : floatarray;
      (* cell 0: scheduled time of the tracked queue entry; infinity when
         no entry is live.  Invariant while armed: queued <= deadline. *)
  mutable fire : unit -> unit;
}

let timer t f =
  let tm =
    {
      tsim = t;
      armed = false;
      deadline = Float.Array.create 1;
      queued = Float.Array.make 1 Float.infinity;
      fire = ignore;
    }
  in
  tm.fire <-
    (fun () ->
      let tnow = now t in
      if Float.Array.unsafe_get tm.queued 0 = tnow then begin
        Float.Array.unsafe_set tm.queued 0 Float.infinity;
        if tm.armed then begin
          let d = Float.Array.unsafe_get tm.deadline 0 in
          if d = tnow then begin
            tm.armed <- false;
            f ()
          end
          else begin
            (* Re-armed later since this entry was queued: chase the live
               deadline with a fresh entry. *)
            Float.Array.unsafe_set tm.queued 0 d;
            q_add t ~time:d tm.fire
          end
        end
      end);
  tm

let arm_at tm time =
  let t = tm.tsim in
  if time < now t then
    invalid_arg
      (Printf.sprintf "Sim.arm_at: time %g is in the past (now %g)" time
         (now t));
  Float.Array.unsafe_set tm.deadline 0 time;
  tm.armed <- true;
  if Float.Array.unsafe_get tm.queued 0 > time then begin
    Float.Array.unsafe_set tm.queued 0 time;
    q_add t ~time tm.fire
  end

let[@inline] arm_after tm delay = arm_at tm (now tm.tsim +. delay)
let disarm tm = tm.armed <- false
let timer_armed tm = tm.armed

let every ?(stop = Float.infinity) t ~interval f =
  if interval <= 0. then invalid_arg "Sim.every: non-positive interval";
  (* One recursive closure per [every] call; each tick reschedules the
     same closure, so steady-state ticking allocates nothing.  Tick k is
     placed at [base +. k *. interval] — recomputed from the base each
     time rather than accumulated, so a long-running probe stays on the
     grid instead of drifting by the summed rounding error. *)
  let base = now t in
  let k = ref 1 in
  let rec tick () =
    let tnow = now t in
    if tnow <= stop then begin
      f ();
      k := !k + 1;
      let next = base +. (float_of_int !k *. interval) in
      let next =
        if next > tnow then next
        else begin
          (* Sub-ulp interval at this magnitude: step k until the grid
             actually advances so the tick chain cannot stall. *)
          let rec bump k' =
            let nx = base +. (float_of_int k' *. interval) in
            if nx > tnow then begin
              k := k';
              nx
            end
            else bump (k' + 1)
          in
          bump (!k + 1)
        end
      in
      if next <= stop then q_add t ~time:next tick
    end
  in
  let first = base +. interval in
  if first <= stop then at t first tick

let stop t = t.running <- false

let run ?(until = Float.infinity) t =
  t.running <- true;
  (* The drain loop uses [min_time]/[take] rather than [peek_time]/[pop]:
     no [Some]/tuple allocation per event. *)
  let rec loop () =
    if t.running then begin
      if q_is_empty t then t.running <- false
      else begin
        let time = q_min_time t in
        if time > until then begin
          (* Leave the event in the queue so the simulation can resume
             from this clock later; park the clock at the horizon. *)
          set_now t until;
          t.running <- false
        end
        else begin
          if Audit.invariants_on () && time < now t then
            Audit.fail
              "Sim.run: event queue returned time %.17g behind the clock \
               %.17g (non-monotone schedule)"
              time (now t);
          let f = q_take t in
          set_now t time;
          t.processed <- t.processed + 1;
          f ();
          loop ()
        end
      end
    end
  in
  loop ();
  if q_is_empty t && now t < until && Float.is_finite until then
    set_now t until

let events_processed t = t.processed
