type handle = { mutable live : bool }

type t = {
  heap : (unit -> unit) Event_heap.t;
  mutable now : float;
  mutable running : bool;
  mutable processed : int;
}

let create () =
  { heap = Event_heap.create (); now = 0.; running = false; processed = 0 }

let now t = t.now

let at t time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is in the past (now %g)" time t.now);
  Event_heap.add t.heap ~time f

let[@inline] after t delay f = at t (t.now +. delay) f

let at_cancellable t time f =
  let handle = { live = true } in
  let guarded () =
    if handle.live then begin
      handle.live <- false;
      f ()
    end
  in
  at t time guarded;
  handle

let after_cancellable t delay f = at_cancellable t (t.now +. delay) f

let cancel handle = handle.live <- false
let pending handle = handle.live

let every ?(stop = Float.infinity) t ~interval f =
  if interval <= 0. then invalid_arg "Sim.every: non-positive interval";
  (* One recursive closure per [every] call; each tick reschedules the
     same closure, so steady-state ticking allocates nothing. *)
  let rec tick () =
    if t.now <= stop then begin
      f ();
      let next = t.now +. interval in
      if next <= stop then Event_heap.add t.heap ~time:next tick
    end
  in
  let first = t.now +. interval in
  if first <= stop then at t first tick

let stop t = t.running <- false

let run ?(until = Float.infinity) t =
  t.running <- true;
  (* The drain loop uses [min_time]/[take] rather than [peek_time]/[pop]:
     no [Some]/tuple allocation per event. *)
  let rec loop () =
    if t.running then begin
      if Event_heap.is_empty t.heap then t.running <- false
      else begin
        let time = Event_heap.min_time t.heap in
        if time > until then begin
          (* Leave the event in the heap so the simulation can resume from
             this clock later; park the clock at the horizon. *)
          t.now <- until;
          t.running <- false
        end
        else begin
          let f = Event_heap.take t.heap in
          t.now <- time;
          t.processed <- t.processed + 1;
          f ();
          loop ()
        end
      end
    end
  in
  loop ();
  if Event_heap.is_empty t.heap && t.now < until && Float.is_finite until then
    t.now <- until

let events_processed t = t.processed
