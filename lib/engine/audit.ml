(* Opt-in invariant checking.  Two independent switches:

   - [invariants]: structural conservation laws checked at per-packet
     checkpoints (link counters, queue occupancy, monotone event times,
     FIFO order at equal timestamps).
   - [lifetime]: pooled packet-shell lifecycle (use-after-release,
     double-release, dirty reuse of recycled shells).

   Both are compiled in unconditionally but gated on one mutable record
   read, so the cost when off is a single load-and-branch per checkpoint
   — no closures, no allocation.  Checks themselves never mutate
   simulation state, schedule events or draw random numbers, so enabling
   them cannot perturb results: a run with auditing on is byte-identical
   to the same run with auditing off (CI asserts this on fig7).

   The switches are plain (non-atomic) bools: they are set before a run
   starts and only read afterwards, including by pool worker domains
   that are spawned after the write. *)

type flags = { mutable lifetime : bool; mutable invariants : bool }

let flags = { lifetime = false; invariants = false }

exception Violation of string

(* Cumulative count of violations raised, for harnesses that catch
   [Violation] and keep going (the fuzzer).  Atomic: worker domains
   running audited simulations may fail concurrently. *)
let violations = Atomic.make 0

let violation_count () = Atomic.get violations
let reset_violations () = Atomic.set violations 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Atomic.incr violations;
      raise (Violation msg))
    fmt

let[@inline] lifetime_on () = flags.lifetime
let[@inline] invariants_on () = flags.invariants
let set_lifetime b = flags.lifetime <- b
let set_invariants b = flags.invariants <- b

let enable_all () =
  flags.lifetime <- true;
  flags.invariants <- true

let disable_all () =
  flags.lifetime <- false;
  flags.invariants <- false

(* "off"/"0"/"" → nothing; "1"/"on"/"all" → both; otherwise a
   comma-separated subset of {lifetime, invariants}.  Unknown tokens
   warn rather than raise: a typo in an env var must not abort a run. *)
let apply_spec spec =
  match String.lowercase_ascii (String.trim spec) with
  | "" | "0" | "off" | "none" -> disable_all ()
  | "1" | "on" | "all" -> enable_all ()
  | s ->
    String.split_on_char ',' s
    |> List.iter (fun tok ->
           match String.trim tok with
           | "lifetime" -> flags.lifetime <- true
           | "invariants" -> flags.invariants <- true
           | "" -> ()
           | tok ->
             Printf.eprintf
               "slowcc: ignoring unknown SLOWCC_AUDIT token %S \
                (expected off|all|lifetime|invariants)\n%!"
               tok)

let () =
  match Sys.getenv_opt "SLOWCC_AUDIT" with
  | Some spec -> apply_spec spec
  | None -> ()

let with_flags ~lifetime ~invariants (f : unit -> 'a) : 'a =
  let saved_l = flags.lifetime and saved_i = flags.invariants in
  flags.lifetime <- lifetime;
  flags.invariants <- invariants;
  Fun.protect
    ~finally:(fun () ->
      flags.lifetime <- saved_l;
      flags.invariants <- saved_i)
    f
