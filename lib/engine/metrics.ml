type counter = { mutable count : int }
type gauge = { mutable level : float; mutable g_set : bool }

type series = {
  stats : Stats.t;
  mutable recent : float list;  (* newest first, capped at [keep] *)
  keep : int;
}

type entry = Counter of counter | Gauge of gauge | Series of series

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable order : string list;  (* registration order, newest first *)
}

let create () = { entries = Hashtbl.create 32; order = [] }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Series _ -> "series"

(* Get-or-create by name; re-registering under a different kind is a
   programming error, not a silent shadow. *)
let register t name make cast =
  match Hashtbl.find_opt t.entries name with
  | Some entry -> (
    match cast entry with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name
           (kind_name entry)))
  | None ->
    let v, entry = make () in
    Hashtbl.replace t.entries name entry;
    t.order <- name :: t.order;
    v

let counter t name =
  register t name
    (fun () ->
      let c = { count = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () ->
      let g = { level = 0.; g_set = false } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let series ?(keep = 0) t name =
  register t name
    (fun () ->
      let s = { stats = Stats.create (); recent = []; keep } in
      (s, Series s))
    (function Series s -> Some s | _ -> None)

(* Saturating increment: counters never wrap to negative on overflow. *)
let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  c.count <- (if c.count > max_int - by then max_int else c.count + by)

let value c = c.count

let set g v =
  g.level <- v;
  g.g_set <- true

let level g = g.level

let observe s v =
  Stats.add s.stats v;
  if s.keep > 0 then
    s.recent <- v :: List.filteri (fun i _ -> i < s.keep - 1) s.recent

let series_stats s = s.stats

let names t = List.sort String.compare (List.rev t.order)

let snapshot t =
  let pick f =
    List.filter_map
      (fun name -> Option.bind (Hashtbl.find_opt t.entries name) (f name))
      (names t)
  in
  let counters =
    pick (fun name -> function
      | Counter c -> Some (name, Json.Int c.count)
      | _ -> None)
  in
  let gauges =
    pick (fun name -> function
      | Gauge g when g.g_set -> Some (name, Json.Float g.level)
      | _ -> None)
  in
  let series_fields =
    pick (fun name -> function
      | Series s when Stats.count s.stats > 0 ->
        let fields =
          [
            ("count", Json.Int (Stats.count s.stats));
            ("mean", Json.Float (Stats.mean s.stats));
            ("stddev", Json.Float (Stats.stddev s.stats));
            ("min", Json.Float (Stats.min s.stats));
            ("max", Json.Float (Stats.max s.stats));
            ("sum", Json.Float (Stats.sum s.stats));
          ]
        in
        let fields =
          if s.recent = [] then fields
          else
            fields
            @ [
                ( "recent",
                  Json.List (List.rev_map (fun v -> Json.Float v) s.recent) );
              ]
        in
        Some (name, Json.Obj fields)
      | _ -> None)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("series", Json.Obj series_fields);
    ]
