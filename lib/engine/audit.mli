(** Opt-in simulation auditing.

    Two independent, flag-gated check families, compiled in but costing
    one load-and-branch per checkpoint when off:

    - {e invariants}: packet-conservation laws at per-packet checkpoints
      (link arrivals = drops + departures + queued + serializing,
      departures − delivered = in flight, non-negative queue occupancy,
      monotone event times, FIFO pop order at equal timestamps);
    - {e lifetime}: pooled packet-shell lifecycle — use-after-release,
      double-release and dirty reuse detection via per-shell generation
      counters and poisoned fields.

    Checks never mutate simulation state, add events or consume random
    numbers, so audited runs are byte-identical to unaudited ones.

    The [SLOWCC_AUDIT] environment variable sets the initial state:
    [off]/[0] (default), [all]/[1]/[on], or a comma-separated subset of
    [lifetime],[invariants]. *)

(** Raised by a failed check.  Also counted in {!violation_count} for
    harnesses that catch it and continue (the fuzzer). *)
exception Violation of string

(** Raise {!Violation} with a formatted message and bump the counter. *)
val fail : ('a, unit, string, 'b) format4 -> 'a

val violation_count : unit -> int
val reset_violations : unit -> unit

val lifetime_on : unit -> bool
val invariants_on : unit -> bool
val set_lifetime : bool -> unit
val set_invariants : bool -> unit
val enable_all : unit -> unit
val disable_all : unit -> unit

(** Parse and apply a [SLOWCC_AUDIT]-style spec string. *)
val apply_spec : string -> unit

(** Run [f] with the switches forced to the given values, restoring the
    previous state afterwards (exception-safe). *)
val with_flags : lifetime:bool -> invariants:bool -> (unit -> 'a) -> 'a
