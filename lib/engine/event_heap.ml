(* Binary min-heap on parallel arrays.

   Entries used to be an [{ time; seq; value }] record, which cost one
   mixed record plus one boxed float per scheduled event.  The hot path
   (one add + one pop per simulator event) now touches three parallel
   arrays instead: a flat [float array] for times, an [int array] for the
   FIFO tie-break sequence and a uniform [Obj.t array] for the payloads —
   no per-event allocation at all once the arrays are warm.

   [vals] is created from an immediate dummy, so it is a uniform (pointer)
   array even when ['a] is [float]; payloads are boxed on the way in by
   [Obj.repr] exactly as any ['a] would be.  Vacated slots ([pop]/[clear])
   are overwritten with the dummy so completed events (closures, packets)
   become unreachable immediately instead of leaking through the array. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable vals : Obj.t array;
  mutable len : int;
  mutable next_seq : int;
  staging : floatarray;  (* unboxed hand-off slot for [add] *)
  (* Last (time, seq) handed out by [take]; only read/written under
     [Audit.invariants_on] to assert (time, insertion-order) pop order. *)
  mutable last_pop_time : float;
  mutable last_pop_seq : int;
}

let initial_capacity = 256
let dummy : Obj.t = Obj.repr ()

let create () =
  {
    times = [||];
    seqs = [||];
    vals = [||];
    len = 0;
    next_seq = 0;
    staging = Float.Array.create 1;
    last_pop_time = Float.neg_infinity;
    last_pop_seq = -1;
  }

let grow t =
  let cap = Array.length t.times in
  let new_cap = if cap = 0 then initial_capacity else cap * 2 in
  let times = Array.make new_cap 0. in
  let seqs = Array.make new_cap 0 in
  let vals = Array.make new_cap dummy in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.vals 0 vals 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.vals <- vals

(* [i] precedes [j]: earlier time, or same time and inserted earlier.
   Indices are always < len, so unsafe accesses are in bounds. *)
let[@inline] lt t i j =
  let ti = Array.unsafe_get t.times i and tj = Array.unsafe_get t.times j in
  ti < tj
  || (ti = tj && Array.unsafe_get t.seqs i < Array.unsafe_get t.seqs j)

let[@inline] move t ~src ~dst =
  Array.unsafe_set t.times dst (Array.unsafe_get t.times src);
  Array.unsafe_set t.seqs dst (Array.unsafe_get t.seqs src);
  Array.unsafe_set t.vals dst (Array.unsafe_get t.vals src)

let[@inline] set t i ~time ~seq v =
  Array.unsafe_set t.times i time;
  Array.unsafe_set t.seqs i seq;
  Array.unsafe_set t.vals i v

(* Hole-based sift: carry the displaced element in locals and write it
   once at its final slot, halving the array writes of swap-based sifts. *)
let sift_up t i ~time ~seq v =
  let i = ref i in
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    let tp = Array.unsafe_get t.times parent in
    if time < tp || (time = tp && seq < Array.unsafe_get t.seqs parent) then begin
      move t ~src:parent ~dst:!i;
      i := parent
    end
    else continue_ := false
  done;
  set t !i ~time ~seq v

let sift_down t ~time ~seq v =
  let len = t.len in
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let left = (2 * !i) + 1 in
    if left >= len then continue_ := false
    else begin
      let right = left + 1 in
      let child =
        if right < len && lt t right left then right else left
      in
      let tc = Array.unsafe_get t.times child in
      if tc < time || (tc = time && Array.unsafe_get t.seqs child < seq) then begin
        move t ~src:child ~dst:!i;
        i := child
      end
      else continue_ := false
    end
  done;
  set t !i ~time ~seq v

let add_staged t v =
  let time = Float.Array.unsafe_get t.staging 0 in
  if t.len = Array.length t.times then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.len <- t.len + 1;
  sift_up t (t.len - 1) ~time ~seq v

(* The staging slot lets an inlined caller hand the (unboxed) time to the
   out-of-line body without boxing it at the call boundary (no flambda, so
   a float crossing a plain call gets boxed; a floatarray store does not). *)
let[@inline] add t ~time value =
  if not (Float.is_finite time) then
    invalid_arg "Event_heap.add: non-finite time";
  Float.Array.unsafe_set t.staging 0 time;
  add_staged t (Obj.repr value)

let alloc_seq t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

let add_with_seq t ~time ~seq value =
  if not (Float.is_finite time) then
    invalid_arg "Event_heap.add_with_seq: non-finite time";
  if seq < 0 || seq >= t.next_seq then
    invalid_arg "Event_heap.add_with_seq: seq was not allocated";
  if t.len = Array.length t.times then grow t;
  t.len <- t.len + 1;
  sift_up t (t.len - 1) ~time ~seq (Obj.repr value)

let is_empty t = t.len = 0
let size t = t.len

(* Earliest time; NaN if empty — callers check [is_empty] first. *)
let[@inline] min_time t =
  if t.len = 0 then Float.nan else Array.unsafe_get t.times 0

let peek_time t = if t.len = 0 then None else Some t.times.(0)

(* Insertion seq of the earliest event; callers check [is_empty] first. *)
let[@inline] min_seq t =
  if t.len = 0 then invalid_arg "Event_heap.min_seq: empty heap"
  else Array.unsafe_get t.seqs 0

let remove_top t =
  let last = t.len - 1 in
  t.len <- last;
  if last > 0 then begin
    let time = Array.unsafe_get t.times last in
    let seq = Array.unsafe_get t.seqs last in
    let v = Array.unsafe_get t.vals last in
    Array.unsafe_set t.vals last dummy;
    sift_down t ~time ~seq v
  end
  else Array.unsafe_set t.vals 0 dummy

let take t =
  if t.len = 0 then invalid_arg "Event_heap.take: empty heap";
  if Audit.invariants_on () then begin
    let time = Array.unsafe_get t.times 0
    and seq = Array.unsafe_get t.seqs 0 in
    if
      time < t.last_pop_time
      || (time = t.last_pop_time && seq < t.last_pop_seq)
    then
      Audit.fail
        "Event_heap.take: popped (t=%.17g, seq=%d) after (t=%.17g, seq=%d) \
         — FIFO order at equal timestamps broken"
        time seq t.last_pop_time t.last_pop_seq;
    t.last_pop_time <- time;
    t.last_pop_seq <- seq
  end;
  let v : 'a = Obj.obj (Array.unsafe_get t.vals 0) in
  remove_top t;
  v

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    let v : 'a = Obj.obj t.vals.(0) in
    remove_top t;
    Some (time, v)
  end

let clear t =
  Array.fill t.vals 0 t.len dummy;
  t.len <- 0;
  t.last_pop_time <- Float.neg_infinity;
  t.last_pop_seq <- -1
