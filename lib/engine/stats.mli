(** Online summary statistics (Welford) plus small helpers on lists. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

(** Sample variance; 0 for fewer than two observations. *)
val variance : t -> float

val stddev : t -> float
val min : t -> float
val max : t -> float
val sum : t -> float

(** Coefficient of variation (stddev / |mean|); 0 when the mean is 0.
    Always non-negative, also for negative-mean series. *)
val cov : t -> float

(** Jain's fairness index of a list of allocations:
    [(sum x)^2 / (n * sum x^2)].  1 for perfectly equal shares. *)
val jain_index : float list -> float

(** [percentile q xs] with [q] in [\[0, 1\]], linear interpolation.
    Sorts with [Float.compare], so float/NaN ordering is well-defined. *)
val percentile : float -> float list -> float
