type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  pending : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

(* Set in every worker domain so that nested batch submissions (a job that
   itself calls [map_list]) run inline instead of deadlocking the pool. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_jobs () = max 1 (Domain.recommended_domain_count ())
let clamp_jobs jobs = min 128 (max 1 jobs)

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.pending && not t.closing do
    Condition.wait t.has_work t.mutex
  done;
  if Queue.is_empty t.pending then Mutex.unlock t.mutex
  else begin
    let job = Queue.pop t.pending in
    Mutex.unlock t.mutex;
    job ();
    worker_loop t
  end

let create ~jobs =
  let jobs = clamp_jobs jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      pending = Queue.create ();
      closing = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <-
      List.init jobs (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set in_worker true;
              worker_loop t));
  t

let jobs t = t.jobs

type 'r cell = Pending | Done of 'r | Failed of exn * Printexc.raw_backtrace

(* Run an array of thunks, returning results in index order.  Results land
   in distinct array slots; the batch mutex both counts completions and
   publishes the slot writes to the waiting submitter. *)
let run_array t thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else if t.jobs <= 1 || Domain.DLS.get in_worker then
    Array.map (fun f -> f ()) thunks
  else begin
    let results = Array.make n Pending in
    let remaining = ref n in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    Mutex.lock t.mutex;
    if t.closing then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: submission after shutdown"
    end;
    Array.iteri
      (fun i f ->
        Queue.add
          (fun () ->
            let r =
              try Done (f ())
              with e -> Failed (e, Printexc.get_raw_backtrace ())
            in
            results.(i) <- r;
            Mutex.lock batch_mutex;
            decr remaining;
            if !remaining = 0 then Condition.signal batch_done;
            Mutex.unlock batch_mutex)
          t.pending)
      thunks;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    Mutex.lock batch_mutex;
    while !remaining > 0 do
      Condition.wait batch_done batch_mutex
    done;
    Mutex.unlock batch_mutex;
    Array.map
      (function
        | Done v -> v
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false)
      results
  end

let map_list t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
    let arr = Array.of_list xs in
    Array.to_list (run_array t (Array.map (fun x () -> f x) arr))

let run_jobs t kjobs =
  let results = run_array t (Array.of_list (List.map snd kjobs)) in
  List.mapi (fun i (k, _) -> (k, results.(i))) kjobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
