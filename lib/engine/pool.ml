type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  pending : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable spawned : int;
  mutable workers : unit Domain.t list;
}

(* Set in every worker domain so that nested batch submissions (a job that
   itself calls [map_list]) run inline instead of deadlocking the pool. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type backend = Domains | Procs

let backend_of_string = function
  | "domain" | "domains" -> Some Domains
  | "proc" | "procs" | "process" | "processes" -> Some Procs
  | _ -> None

let backend_to_string = function Domains -> "domain" | Procs -> "proc"

let default_jobs () = max 1 (Domain.recommended_domain_count ())
let clamp_jobs jobs = min 128 (max 1 jobs)

(* GC policy for simulation domains.  The engine hot path allocates little
   but steadily; a larger minor heap cuts minor-collection frequency (and
   with it promotion of short-lived event closures).  [SLOWCC_GC] overrides:
   "off" leaves the runtime defaults, otherwise a comma-separated list of
   [minor=<words>] and [overhead=<percent>]. *)
type gc_policy = Gc_off | Gc_set of { minor : int; overhead : int }

let parse_gc_policy () =
  let default = Gc_set { minor = 1_048_576; overhead = 120 } in
  match Sys.getenv_opt "SLOWCC_GC" with
  | None | Some "" -> default
  | Some s when String.lowercase_ascii s = "off" -> Gc_off
  | Some s -> (
    let minor = ref 1_048_576 and overhead = ref 120 and ok = ref true in
    String.split_on_char ',' s
    |> List.iter (fun kv ->
           match String.index_opt kv '=' with
           | Some i -> (
             let k = String.sub kv 0 i in
             let v = String.sub kv (i + 1) (String.length kv - i - 1) in
             match (k, int_of_string_opt v) with
             | "minor", Some n when n > 0 -> minor := n
             | "overhead", Some n when n > 0 -> overhead := n
             | _ -> ok := false)
           | None -> ok := false);
    if !ok then Gc_set { minor = !minor; overhead = !overhead }
    else begin
      Printf.eprintf
        "warning: SLOWCC_GC=%S not understood (want \"off\" or \
         \"minor=<words>,overhead=<pct>\"); using defaults\n\
         %!"
        s;
      default
    end)

let gc_policy = lazy (parse_gc_policy ())

let tune_gc () =
  match Lazy.force gc_policy with
  | Gc_off -> ()
  | Gc_set { minor; overhead } ->
    let g = Gc.get () in
    Gc.set { g with Gc.minor_heap_size = minor; space_overhead = overhead }

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.pending && not t.closing do
    Condition.wait t.has_work t.mutex
  done;
  if Queue.is_empty t.pending then Mutex.unlock t.mutex
  else begin
    let job = Queue.pop t.pending in
    Mutex.unlock t.mutex;
    job ();
    worker_loop t
  end

let create ~jobs =
  let jobs = clamp_jobs jobs in
  tune_gc ();
  {
    jobs;
    mutex = Mutex.create ();
    has_work = Condition.create ();
    pending = Queue.create ();
    closing = false;
    spawned = 0;
    workers = [];
  }

let jobs t = t.jobs

(* Spawn workers on demand, never more than the batch at hand can keep
   busy: a pool created with [jobs = 8] that only ever sees 2-job batches
   runs 2 domains.  Called with [t.mutex] held. *)
let ensure_workers t batch_size =
  let wanted = min t.jobs batch_size in
  while t.spawned < wanted do
    t.spawned <- t.spawned + 1;
    t.workers <-
      Domain.spawn (fun () ->
          Domain.DLS.set in_worker true;
          tune_gc ();
          worker_loop t)
      :: t.workers
  done

type 'r cell = Pending | Done of 'r | Failed of exn * Printexc.raw_backtrace

(* Execution order for a batch given per-job cost estimates: indices
   sorted longest-first (LPT list scheduling), which minimizes the chance
   that the longest job starts last and tail-blocks the batch at jobs=N.
   The sort is stable, so ties — and the all-zero case of absent
   estimates — degrade to plain submission order.  Estimates only decide
   the dequeue order; results are still reassembled by original index, so
   output bytes cannot depend on them. *)
let lpt_order costs =
  let n = Array.length costs in
  let idx = List.init n Fun.id in
  let cost i =
    match costs.(i) with
    | Some c when Float.is_finite c -> c
    | Some _ | None -> 0. (* missing/NaN/inf estimates schedule as free *)
  in
  let ordered = List.stable_sort (fun a b -> Float.compare (cost b) (cost a)) idx in
  Array.of_list ordered

(* Run an array of thunks, returning results in index order.  [order], if
   given, is the permutation in which the jobs are enqueued (LPT); result
   slots stay keyed by the original index.  Results land in distinct array
   slots; the batch mutex both counts completions and publishes the slot
   writes to the waiting submitter. *)
let run_array ?order t thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else if t.jobs <= 1 || n = 1 || Domain.DLS.get in_worker then
    (* Degenerate/inline path: always submission order, which is what the
       determinism contract is checked against. *)
    Array.map (fun f -> f ()) thunks
  else begin
    let results = Array.make n Pending in
    let remaining = ref n in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    Mutex.lock t.mutex;
    if t.closing then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: submission after shutdown"
    end;
    ensure_workers t n;
    let enqueue i =
      let f = thunks.(i) in
      Queue.add
        (fun () ->
          let r =
            try Done (f ())
            with e -> Failed (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- r;
          Mutex.lock batch_mutex;
          decr remaining;
          if !remaining = 0 then Condition.signal batch_done;
          Mutex.unlock batch_mutex)
        t.pending
    in
    (match order with
    | None -> for i = 0 to n - 1 do enqueue i done
    | Some order -> Array.iter enqueue order);
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    Mutex.lock batch_mutex;
    while !remaining > 0 do
      Condition.wait batch_done batch_mutex
    done;
    Mutex.unlock batch_mutex;
    Array.map
      (function
        | Done v -> v
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false)
      results
  end

let map_list t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
    let arr = Array.of_list xs in
    Array.to_list (run_array t (Array.map (fun x () -> f x) arr))

let run_jobs t ?cost kjobs =
  let keys = Array.of_list (List.map fst kjobs) in
  let order =
    match cost with
    | None -> None
    | Some est -> Some (lpt_order (Array.map est keys))
  in
  let results = run_array ?order t (Array.of_list (List.map snd kjobs)) in
  List.mapi (fun i (k, _) -> (k, results.(i))) kjobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- [];
  t.spawned <- 0

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
