(** Binary min-heap of timed events with FIFO tie-breaking.

    Events scheduled for the same time are popped in insertion order, which
    matters for deterministic simulation of ack-clocked protocols. *)

type 'a t

val create : unit -> 'a t

(** [add t ~time v] schedules [v] at [time].  [time] must be finite. *)
val add : 'a t -> time:float -> 'a -> unit

(** {2 Explicit sequence numbers}

    [add] tie-breaks equal timestamps by a global insertion counter.
    Aggregating schedulers (the consolidated RTO wheel) need to place one
    physical entry at the logical position an individual insertion {e
    would} have had: [alloc_seq] burns one counter value without
    inserting, and [add_with_seq] inserts at a previously allocated seq.
    The caller must preserve pop-order: never insert a (time, seq) pair
    that sorts before an event already dequeued. *)

(** Advance the insertion counter by one and return the burned value. *)
val alloc_seq : 'a t -> int

(** [add_with_seq t ~time ~seq v] schedules [v] at [time] with the
    explicit tie-break [seq] (from {!alloc_seq}).  Raises
    [Invalid_argument] if [seq] was never allocated. *)
val add_with_seq : 'a t -> time:float -> seq:int -> 'a -> unit

(** Insertion seq of the earliest event.  Raises [Invalid_argument] on an
    empty heap. *)
val min_seq : 'a t -> int

(** Remove and return the earliest event, or [None] if empty. *)
val pop : 'a t -> (float * 'a) option

(** Allocation-free variant of {!pop}: remove and return the earliest
    event's value.  Raises [Invalid_argument] on an empty heap; read
    {!min_time} first for the timestamp. *)
val take : 'a t -> 'a

(** Earliest event time without removing it, [Float.nan] if empty.  The
    allocation-free counterpart of {!peek_time}. *)
val min_time : 'a t -> float

(** Earliest event time without removing it. *)
val peek_time : 'a t -> float option

val size : 'a t -> int
val is_empty : 'a t -> bool

(** Drop all events.  Vacated slots are overwritten so the GC can reclaim
    the dropped payloads immediately. *)
val clear : 'a t -> unit
