type 'a t = {
  rng : Rng.t;
  k : int;
  mutable items : 'a array;  (* length k once the first element arrives *)
  mutable size : int;
  mutable seen : int;
}

let create ~rng ~k =
  if k < 1 then invalid_arg "Reservoir.create: k >= 1 required";
  { rng; k; items = [||]; size = 0; seen = 0 }

(* Algorithm R (Vitter): element number n (1-based) replaces a uniformly
   chosen slot with probability k/n.  Inclusion probability of every
   element after n offers is exactly k/n. *)
let offer t x =
  t.seen <- t.seen + 1;
  if t.size < t.k then begin
    if Array.length t.items = 0 then t.items <- Array.make t.k x;
    t.items.(t.size) <- x;
    t.size <- t.size + 1
  end
  else begin
    let j = Rng.int t.rng t.seen in
    if j < t.k then t.items.(j) <- x
  end

let seen t = t.seen
let size t = t.size

let to_list t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    acc := t.items.(i) :: !acc
  done;
  !acc

let iter f t =
  for i = 0 to t.size - 1 do
    f t.items.(i)
  done

let indices ~rng ~k n =
  let r = create ~rng ~k in
  for i = 0 to n - 1 do
    offer r i
  done;
  let a = Array.sub r.items 0 r.size in
  Array.sort compare a;
  a
