(** ns-2-style calendar queue: amortized O(1) timed-event scheduling.

    A bucketed timer ring with automatic resize of bucket count and width,
    matching {!Event_heap}'s API and ordering contract exactly: events pop
    in lexicographic (time, insertion-order) order, so FIFO within equal
    timestamps.  Steady-state add/take allocates nothing — nodes live in
    pooled parallel arrays and are linked into buckets by index. *)

type 'a t

val create : unit -> 'a t

(** [add t ~time v] schedules [v] at [time].  [time] must be finite and
    non-negative.  Adding behind the last dequeued time is permitted but
    slow; the simulator never does it. *)
val add : 'a t -> time:float -> 'a -> unit

(** {2 Explicit sequence numbers}

    Same contract as {!Event_heap.alloc_seq}/{!Event_heap.add_with_seq}:
    burn a tie-break counter value without inserting, then insert at an
    explicitly chosen seq.  Used by the consolidated RTO wheel to place
    its single simulator entry at the exact logical position a per-flow
    insertion would have had.  The caller must preserve pop-order: never
    insert a (time, seq) pair sorting before an already dequeued event. *)

(** Advance the insertion counter by one and return the burned value. *)
val alloc_seq : 'a t -> int

(** [add_with_seq t ~time ~seq v] schedules [v] at [time] with the
    explicit tie-break [seq].  [seq] may come from another queue's
    counter (the wheel stores simulator seqs); it only has to be
    non-negative and respect pop-order. *)
val add_with_seq : 'a t -> time:float -> seq:int -> 'a -> unit

(** Insertion seq of the earliest event.  Raises [Invalid_argument] on an
    empty queue. *)
val min_seq : 'a t -> int

(** Remove and return the earliest event, or [None] if empty. *)
val pop : 'a t -> (float * 'a) option

(** Allocation-free variant of {!pop}: remove and return the earliest
    event's value.  Raises [Invalid_argument] on an empty queue; read
    {!min_time} first for the timestamp. *)
val take : 'a t -> 'a

(** Earliest event time without removing it, [Float.nan] if empty.  The
    allocation-free counterpart of {!peek_time}. *)
val min_time : 'a t -> float

(** Earliest event time without removing it. *)
val peek_time : 'a t -> float option

val size : 'a t -> int
val is_empty : 'a t -> bool

(** Drop all events.  Vacated slots are overwritten so the GC can reclaim
    the dropped payloads immediately. *)
val clear : 'a t -> unit

(** {2 Introspection} — exposed for tests and the resize-policy bench. *)

(** Current number of buckets in the ring (a power of two). *)
val buckets : 'a t -> int

(** Current bucket width in seconds. *)
val width : 'a t -> float
