(** Hybrid fluid/packet fast-forward: mode gate + steady-state detector.

    [On] lets a fluid controller (lib/core [Slowcc.Fluid]) freeze
    packet-level simulation on links whose loss rate and queue occupancy
    have been stable for a sliding window, advance the attached flows
    analytically, and resume exact packet simulation before the next
    scheduled transient.  Hybrid results are approximate, so [Off] is the
    builtin default and disabled fast-forward is inert: no events, no
    state, byte-identical digests. *)

type mode = Off | On

val to_string : mode -> string

(** Case-insensitive; accepts on/off, 1/0, true/false, "ff". *)
val of_string : string -> mode option

(** Process-wide default used by [Sim.create] when [?fastforward] is
    omitted.  Initialized to [Off], overridable with the [SLOWCC_FF]
    environment variable. *)
val get_default : unit -> mode

val set_default : mode -> unit

(** {2 Process-wide accounting}

    Saturating totals across every fluid controller in the process, for
    A/B harnesses that cannot thread a {!Metrics} registry through.  The
    per-run registry carries the same counters per scenario. *)

val note_entry : unit -> unit
val note_exit : skipped_s:float -> unit
val entries : unit -> int
val exits : unit -> int
val skipped_sim_seconds : unit -> float

(** Sliding-window steady-state test over per-link (loss rate, queue
    occupancy, delivered rate) samples.  Pure bookkeeping: the caller
    samples at its own cadence and acts on {!Detector.stable}. *)
module Detector : sig
  type config = {
    window : int;  (** samples required before [stable] can hold *)
    loss_rel_tol : float;
    loss_floor : float;
    queue_rel_tol : float;
    queue_floor : float;
    rate_rel_tol : float;
    rate_floor : float;
        (** delivered-rate band floor, bytes/s; the rate series is what
            keeps the detector from arming during loss-free growth
            (slow-start), where loss and occupancy are trivially flat *)
  }

  val default_config : config

  type t

  val create : ?config:config -> unit -> t

  (** Drop all samples (called on thaw and after transients). *)
  val reset : t -> unit

  (** Push one sample: loss rate over the last interval, queue
      occupancy in packets, and delivered rate in bytes/s. *)
  val observe : t -> loss:float -> occupancy:float -> rate:float -> unit

  val samples : t -> int

  (** True iff the window is full and every series sits inside the
      configured relative band around its mean. *)
  val stable : t -> bool

  (** Window means, the fluid model's inputs ([p] in particular). *)
  val mean_loss : t -> float

  val mean_occupancy : t -> float
end
