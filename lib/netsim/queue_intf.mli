(** Common interface for bottleneck queue disciplines.

    A queue decides, per arriving packet, whether to enqueue, enqueue with
    an ECN mark, or drop.  The owning {!Link} drives dequeues and reports
    arrivals/drops to its monitor. *)

type action =
  | Enqueued
  | Marked  (** enqueued with the ECN congestion-experienced bit set *)
  | Dropped

type t = {
  name : string;
  enqueue : Packet.t -> action;
  dequeue : unit -> Packet.t option;
  pkts : unit -> int;  (** current queue length in packets *)
  bytes : unit -> int;  (** current queue length in bytes *)
  counters : unit -> (string * int) list;
      (** cumulative discipline counters (enqueued/dropped/marked/peak
          occupancy, ...) for the observability layer; names are unique
          and stable within one queue *)
}
