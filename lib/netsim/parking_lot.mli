(** Multi-bottleneck "parking lot" topology (extension beyond the paper).

    A chain of [n] routers joined by bottleneck links; hosts can attach at
    any router.  A flow from a host at router [i] to a host at router [j]
    crosses bottlenecks [i..j-1], so long paths compete with cross traffic
    on every hop — the classic setup for studying multi-hop fairness of
    congestion control.

    {v
      R0 ──b0── R1 ──b1── R2 ──b2── R3
      │         │          │         │
     hosts     hosts      hosts    hosts
    v} *)

type config = {
  hops : int;  (** number of bottleneck links (>= 1) *)
  bandwidth : float;  (** per-bottleneck, bits/s *)
  hop_rtt : float;  (** contribution of one hop to the RTT, seconds *)
  pkt_size : int;
  queue : Dumbbell.queue_kind;
}

val default_config : hops:int -> bandwidth:float -> config

type t

val create : sim:Engine.Sim.t -> rng:Engine.Rng.t -> config -> t
val sim : t -> Engine.Sim.t
val hops : t -> int

(** The forward bottleneck link leaving router [i] (towards router i+1). *)
val bottleneck : t -> int -> Link.t

(** Every link of the topology (all bottleneck directions plus host edge
    links), in creation order — for audit sweeps and per-flow drop
    accounting. *)
val links : t -> Link.t list

(** Attach a new host at router [site] (0-based, [<= hops]). *)
val add_host : t -> site:int -> Node.t

val fresh_flow : t -> int
