(** Single-bottleneck dumbbell topology, the paper's only topology.

    Host pairs hang off two routers joined by a bottleneck link (one
    {!Link.t} per direction).  Edge links are fast enough never to queue.
    Default dimensioning follows the paper: queue capacity 2.5 x BDP, RED
    [min_th] 0.25 x BDP and [max_th] 1.25 x BDP, round-trip time 50 ms. *)

type queue_kind =
  | Red  (** RED, paper dimensioning *)
  | Red_ecn  (** RED that marks instead of dropping *)
  | Droptail  (** FIFO with capacity 2.5 x BDP *)
  | Custom of (unit -> Queue_intf.t)

type config = {
  bandwidth : float;  (** bottleneck, bits/s *)
  rtt : float;  (** base two-way propagation RTT, seconds *)
  pkt_size : int;  (** nominal packet size for dimensioning, bytes *)
  queue : queue_kind;
}

(** 50 ms RTT, 1000-byte packets, RED queue. *)
val default_config : bandwidth:float -> config

(** Bandwidth-delay product in packets for this config. *)
val bdp_packets : config -> float

type t

val create : sim:Engine.Sim.t -> rng:Engine.Rng.t -> config -> t
val sim : t -> Engine.Sim.t
val config : t -> config

(** Left-to-right bottleneck (the congested direction in all scenarios). *)
val bottleneck : t -> Link.t

val bottleneck_rev : t -> Link.t

(** Every link of the topology (both bottleneck directions plus all edge
    links), in creation order — for audit sweeps and per-flow drop
    accounting. *)
val links : t -> Link.t list

(** Create a new host on each side, fully routed.  Data can flow either
    way between them.  [extra_delay] adds one-way propagation on each edge
    link, raising this pair's RTT by [4 x extra_delay] over the base. *)
val add_host_pair : ?extra_delay:float -> t -> Node.t * Node.t

(** Fresh flow identifier, unique within this dumbbell. *)
val fresh_flow : t -> int
