type config = {
  hops : int;
  bandwidth : float;
  hop_rtt : float;
  pkt_size : int;
  queue : Dumbbell.queue_kind;
}

let default_config ~hops ~bandwidth =
  { hops; bandwidth; hop_rtt = 0.02; pkt_size = 1000; queue = Dumbbell.Red }

type t = {
  sim : Engine.Sim.t;
  config : config;
  routers : Node.t array;  (* hops + 1 routers *)
  forward : Link.t array;  (* forward.(i): routers.(i) -> routers.(i+1) *)
  backward : Link.t array;  (* backward.(i): routers.(i+1) -> routers.(i) *)
  mutable next_node_id : int;
  mutable next_flow_id : int;
  mutable all_links : Link.t list;  (* every link, newest first *)
}

let make_queue ~sim ~rng c =
  (* Dimension each hop like the dumbbell: the BDP of one hop's RTT. *)
  let bdp =
    Float.max 4. (c.bandwidth *. c.hop_rtt /. (8. *. float_of_int c.pkt_size))
  in
  let capacity = int_of_float (Float.max 8. (2.5 *. bdp)) in
  match c.queue with
  | Dumbbell.Droptail -> Droptail.make ~capacity
  | Dumbbell.Custom f -> f ()
  | Dumbbell.Red | Dumbbell.Red_ecn ->
    Red.make ~sim ~rng:(Engine.Rng.split rng)
      {
        Red.default_params with
        Red.min_th = 0.25 *. bdp;
        max_th = 1.25 *. bdp;
        capacity;
        ecn = (c.queue = Dumbbell.Red_ecn);
        mean_pkt_tx_time = float_of_int (c.pkt_size * 8) /. c.bandwidth;
      }

let create ~sim ~rng config =
  if config.hops < 1 then invalid_arg "Parking_lot.create: hops >= 1";
  if config.bandwidth <= 0. then invalid_arg "Parking_lot.create: bandwidth";
  let n = config.hops + 1 in
  let routers = Array.init n (fun i -> Node.create ~id:i) in
  let prop = config.hop_rtt /. 2. in
  let mk_link () =
    Link.make ~sim ~bandwidth:config.bandwidth ~delay:prop
      ~queue:(make_queue ~sim ~rng config)
  in
  let forward = Array.init config.hops (fun _ -> mk_link ()) in
  let backward = Array.init config.hops (fun _ -> mk_link ()) in
  for i = 0 to config.hops - 1 do
    Link.connect forward.(i) (Node.receive routers.(i + 1));
    Link.connect backward.(i) (Node.receive routers.(i))
  done;
  {
    sim;
    config;
    routers;
    forward;
    backward;
    next_node_id = n;
    next_flow_id = 0;
    all_links =
      List.rev (Array.to_list forward @ Array.to_list backward);
  }

let sim t = t.sim
let hops t = t.config.hops
let links t = List.rev t.all_links

let bottleneck t i =
  if i < 0 || i >= t.config.hops then invalid_arg "Parking_lot.bottleneck";
  t.forward.(i)

let fresh_flow t =
  let id = t.next_flow_id in
  t.next_flow_id <- id + 1;
  id

let add_host t ~site =
  if site < 0 || site > t.config.hops then
    invalid_arg "Parking_lot.add_host: site out of range";
  let host = Node.create ~id:t.next_node_id in
  t.next_node_id <- t.next_node_id + 1;
  let edge_bw = Float.max 1e8 (100. *. t.config.bandwidth) in
  let edge_delay = t.config.hop_rtt /. 20. in
  let up =
    Link.make ~sim:t.sim ~bandwidth:edge_bw ~delay:edge_delay
      ~queue:(Droptail.make ~capacity:100000)
  in
  let down =
    Link.make ~sim:t.sim ~bandwidth:edge_bw ~delay:edge_delay
      ~queue:(Droptail.make ~capacity:100000)
  in
  Link.connect up (Node.receive t.routers.(site));
  Link.connect down (Node.receive host);
  t.all_links <- down :: up :: t.all_links;
  Node.set_default_route host up;
  (* Every router learns the direction of this host along the chain. *)
  Array.iteri
    (fun i router ->
      if i = site then Node.add_route router ~dst:(Node.id host) down
      else if i < site then
        Node.add_route router ~dst:(Node.id host) t.forward.(i)
      else Node.add_route router ~dst:(Node.id host) t.backward.(i - 1))
    t.routers;
  host
