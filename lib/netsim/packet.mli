(** Simulated packets.

    Fields are mutable so the pooled allocators ({!alloc_ack},
    {!alloc_tfrc_fb}) can reuse released shells in place, but outside the
    pool machinery a packet must be treated as immutable apart from ECN
    marking; transport-specific control information rides in [payload]. *)

type tfrc_feedback = {
  loss_event_rate : float;  (** receiver's current loss-event rate estimate *)
  recv_rate : float;  (** bytes/s received over the last RTT *)
  timestamp_echo : float;  (** sender timestamp being echoed, for RTT *)
  delay_echo : float;  (** receiver-side hold time to subtract *)
  new_loss : bool;  (** a new loss event occurred since the last feedback *)
}

type payload =
  | Plain
  | Ack of {
      mutable cum_seq : int;
          (** cumulative: all seq < cum_seq received *)
      mutable sack : (int * int) list;
          (** selective-ack blocks [lo, hi), newest first, at most 3 *)
    }
  | Rap_ack of { cum_seq : int; recv_rate : float }
  | Tfrc_data of { timestamp : float; rtt_estimate : float }
  | Tfrc_fb of tfrc_feedback
  | Tear_fb of {
      rate_pps : float;  (** receiver-computed TCP-fair rate *)
      timestamp_echo : float;
      delay_echo : float;
    }

type t = {
  mutable uid : int;  (** globally unique *)
  mutable flow : int;  (** flow identifier; sinks dispatch on this *)
  mutable src : int;  (** source node id *)
  mutable dst : int;  (** destination node id *)
  mutable size : int;  (** bytes on the wire *)
  mutable seq : int;  (** data sequence number, in packets *)
  mutable sent_at : float;  (** transport send time (for RTT sampling) *)
  mutable payload : payload;
  mutable ecn : bool;  (** congestion-experienced mark *)
  mutable pooled : bool;
      (** freelist bookkeeping: true while a pooled packet is live; do
          not touch outside {!release} *)
  mutable gen : int;
      (** lifetime-audit generation counter: bumped on each release when
          {!Engine.Audit.lifetime_on}; 0 on fresh shells.  Do not touch. *)
}

(** A zero/placeholder packet for preallocated slots (never transmitted). *)
val dummy : t

(** [make ()] allocates a fresh uid.  Defaults: [size = 1000] bytes,
    [payload = Plain], [seq = 0]. *)
val make :
  ?size:int ->
  ?seq:int ->
  ?payload:payload ->
  flow:int ->
  src:int ->
  dst:int ->
  sent_at:float ->
  unit ->
  t

(** {2 Pooled allocation}

    Receivers emit one ack (or feedback) per data packet; these
    constructors draw the packet shell from a per-domain freelist and —
    for acks — mutate the payload in place, so the steady-state re-emit
    path allocates nothing.  The consumer that finishes with a pooled
    packet calls {!release} to return it; a missed release is harmless
    (the GC reclaims it), a double release is a guarded no-op. *)

val alloc_ack :
  size:int ->
  flow:int ->
  src:int ->
  dst:int ->
  sent_at:float ->
  cum_seq:int ->
  sack:(int * int) list ->
  t

val alloc_tfrc_fb :
  size:int -> flow:int -> src:int -> dst:int -> sent_at:float ->
  tfrc_feedback -> t

(** Return a pooled packet to the freelist.  No-op on packets not made by
    the pooled allocators or already released — except under
    {!Engine.Audit.lifetime_on}, where releasing an already-released
    shell raises [Engine.Audit.Violation] (double release), and released
    shells get their mutable fields poisoned so stale reuse is caught by
    {!check_live}. *)
val release : t -> unit

(** Lifetime-audit probe: raises [Engine.Audit.Violation] if the packet
    is a released shell re-entering the network (use-after-release) or
    still carries release-time poison in [seq] or an [Ack] payload (dirty
    reuse).  Call sites gate on {!Engine.Audit.lifetime_on}. *)
val check_live : t -> unit

(** Global pooled-allocation switch (default on).  When off, the pooled
    allocators return fresh unpooled shells and {!release} returns
    nothing to the freelist — the differential fuzzer uses this to check
    pooled and fresh allocation produce byte-identical runs.  Toggle only
    between simulations, never during one. *)
val set_pooling : bool -> unit

val pooling : unit -> bool

val is_ack : t -> bool
val pp : Format.formatter -> t -> unit

(** Reset the uid counter (tests only). *)
val reset_uids : unit -> unit
