(** Network node: routes packets by destination and dispatches packets
    addressed to itself to per-flow agent handlers. *)

type t

val create : id:int -> t
val id : t -> int

(** Route packets destined to node [dst] over [link]. *)
val add_route : t -> dst:int -> Link.t -> unit

(** Route for any destination without an explicit entry. *)
val set_default_route : t -> Link.t -> unit

(** Register the handler for packets of [flow] terminating here.  Small
    non-negative flow ids go into a dense dispatch array (delivery is a
    bounds-checked load); negative or very large ids fall back to a
    hash table. *)
val attach : t -> flow:int -> (Packet.t -> unit) -> unit

val detach : t -> flow:int -> unit

(** [reserve t ~flows:n] pre-sizes the dense dispatch table for flow ids
    [0 .. n-1] in one allocation, avoiding doubling-growth overshoot.
    Many-flow engines call this once up front; attaching without a
    reservation still works (the table grows amortized). *)
val reserve : t -> flows:int -> unit

(** Deliver a packet to this node: dispatch locally if [pkt.dst] is this
    node, otherwise forward along the route.  Packets for unknown flows or
    destinations are silently discarded (counted). *)
val receive : t -> Packet.t -> unit

(** Entry point for locally generated packets (agents call this). *)
val inject : t -> Packet.t -> unit

(** Packets discarded for lack of a route or local handler. *)
val discarded : t -> int

(** Hook invoked for every discarded packet, before pooled shells are
    released (monitoring / per-flow accounting in the fuzzer). *)
val on_discard : t -> (Packet.t -> unit) -> unit
