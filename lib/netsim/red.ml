type params = {
  min_th : float;
  max_th : float;
  w_q : float;
  max_p : float;
  capacity : int;
  gentle : bool;
  ecn : bool;
  mean_pkt_tx_time : float;
}

let default_params =
  {
    min_th = 5.;
    max_th = 15.;
    w_q = 0.002;
    max_p = 0.1;
    capacity = 60;
    gentle = true;
    ecn = false;
    mean_pkt_tx_time = 0.001;
  }

(* [avg] and [idle_since] live in a floatarray cell: a mutable float field
   in this mixed record would box on every store, and [avg] is updated once
   per arrival.  [idle_since] uses nan as "not idle". *)
type state = {
  q : Pktq.t;
  mutable bytes : int;
  avg : floatarray;
  mutable count : int;
  idle_since : floatarray;  (** nan when busy, else the time the queue emptied *)
  (* cumulative counters for the observability layer *)
  mutable n_enqueued : int;
  mutable n_early_drop : int;  (** probabilistic (RED) drops *)
  mutable n_forced_drop : int;  (** buffer overflow / beyond-ceiling drops *)
  mutable n_marked : int;
  mutable peak_pkts : int;
}

let make_with_introspection ~sim ~rng p =
  if p.min_th <= 0. || p.max_th <= p.min_th then
    invalid_arg "Red.make: need 0 < min_th < max_th";
  let s =
    {
      q = Pktq.create ();
      bytes = 0;
      avg = Float.Array.make 1 0.;
      count = -1;
      idle_since = Float.Array.make 1 0.;
      n_enqueued = 0;
      n_early_drop = 0;
      n_forced_drop = 0;
      n_marked = 0;
      peak_pkts = 0;
    }
  in
  let get_avg () = Float.Array.unsafe_get s.avg 0 in
  let set_avg v = Float.Array.unsafe_set s.avg 0 v in
  let update_avg () =
    let t0 = Float.Array.unsafe_get s.idle_since 0 in
    if Float.is_nan t0 then
      set_avg
        (get_avg () +. (p.w_q *. (float_of_int (Pktq.length s.q) -. get_avg ())))
    else begin
      (* Decay the average as if the queue had been draining small packets
         during the idle period. *)
      let m = (Engine.Sim.now sim -. t0) /. p.mean_pkt_tx_time in
      set_avg (get_avg () *. ((1. -. p.w_q) ** m));
      Float.Array.unsafe_set s.idle_since 0 Float.nan
    end
  in
  (* Decide the fate of an arrival once the average is up to date.  Returns
     the probabilistic verdict; the caller still enforces buffer overflow. *)
  let early_verdict () : Queue_intf.action =
    let avg = get_avg () in
    if avg < p.min_th then begin
      s.count <- -1;
      Queue_intf.Enqueued
    end
    else begin
      let congested = Queue_intf.(if p.ecn then Marked else Dropped) in
      let uniformized p_b =
        s.count <- s.count + 1;
        let denom = 1. -. (float_of_int s.count *. p_b) in
        let p_a = if denom <= 0. then 1. else Float.min 1. (p_b /. denom) in
        if Engine.Rng.bernoulli rng ~p:p_a then begin
          s.count <- 0;
          congested
        end
        else Queue_intf.Enqueued
      in
      if avg < p.max_th then
        uniformized (p.max_p *. (avg -. p.min_th) /. (p.max_th -. p.min_th))
      else if p.gentle && avg < 2. *. p.max_th then
        uniformized (p.max_p +. ((1. -. p.max_p) *. (avg -. p.max_th) /. p.max_th))
      else begin
        (* Average beyond the (gentle) ceiling: forced drop even with ECN. *)
        s.count <- 0;
        Queue_intf.Dropped
      end
    end
  in
  let admit pkt =
    Pktq.add s.q pkt;
    s.bytes <- s.bytes + pkt.Packet.size;
    s.n_enqueued <- s.n_enqueued + 1;
    if Pktq.length s.q > s.peak_pkts then s.peak_pkts <- Pktq.length s.q
  in
  let enqueue (pkt : Packet.t) : Queue_intf.action =
    update_avg ();
    if Pktq.length s.q >= p.capacity then begin
      s.count <- 0;
      s.n_forced_drop <- s.n_forced_drop + 1;
      Queue_intf.Dropped
    end
    else begin
      match early_verdict () with
      | Queue_intf.Dropped ->
        s.n_early_drop <- s.n_early_drop + 1;
        Queue_intf.Dropped
      | Queue_intf.Marked ->
        pkt.Packet.ecn <- true;
        admit pkt;
        s.n_marked <- s.n_marked + 1;
        Queue_intf.Marked
      | Queue_intf.Enqueued ->
        admit pkt;
        Queue_intf.Enqueued
    end
  in
  let dequeue () =
    match Pktq.take_opt s.q with
    | None -> None
    | Some pkt ->
      s.bytes <- s.bytes - pkt.Packet.size;
      if Engine.Audit.invariants_on () && s.bytes < 0 then
        Engine.Audit.fail
          "Red: byte occupancy went negative (%d) after dequeueing pkt of \
           %d bytes"
          s.bytes pkt.Packet.size;
      if Pktq.is_empty s.q then
        Float.Array.unsafe_set s.idle_since 0 (Engine.Sim.now sim);
      Some pkt
  in
  let queue =
    {
      Queue_intf.name = "red";
      enqueue;
      dequeue;
      pkts = (fun () -> Pktq.length s.q);
      bytes = (fun () -> s.bytes);
      counters =
        (fun () ->
          [
            ("enqueued", s.n_enqueued);
            ("early_drop", s.n_early_drop);
            ("forced_drop", s.n_forced_drop);
            ("marked", s.n_marked);
            ("peak_pkts", s.peak_pkts);
          ]);
    }
  in
  (queue, fun () -> Float.Array.get s.avg 0)

let make ~sim ~rng p = fst (make_with_introspection ~sim ~rng p)
