type params = {
  min_th : float;
  max_th : float;
  w_q : float;
  max_p : float;
  capacity : int;
  gentle : bool;
  ecn : bool;
  mean_pkt_tx_time : float;
}

let default_params =
  {
    min_th = 5.;
    max_th = 15.;
    w_q = 0.002;
    max_p = 0.1;
    capacity = 60;
    gentle = true;
    ecn = false;
    mean_pkt_tx_time = 0.001;
  }

type state = {
  q : Packet.t Queue.t;
  mutable bytes : int;
  mutable avg : float;
  mutable count : int;
  mutable idle_since : float option;  (** Some t when the queue is empty *)
  (* cumulative counters for the observability layer *)
  mutable n_enqueued : int;
  mutable n_early_drop : int;  (** probabilistic (RED) drops *)
  mutable n_forced_drop : int;  (** buffer overflow / beyond-ceiling drops *)
  mutable n_marked : int;
  mutable peak_pkts : int;
}

let make_with_introspection ~sim ~rng p =
  if p.min_th <= 0. || p.max_th <= p.min_th then
    invalid_arg "Red.make: need 0 < min_th < max_th";
  let s =
    {
      q = Queue.create ();
      bytes = 0;
      avg = 0.;
      count = -1;
      idle_since = Some 0.;
      n_enqueued = 0;
      n_early_drop = 0;
      n_forced_drop = 0;
      n_marked = 0;
      peak_pkts = 0;
    }
  in
  let update_avg () =
    match s.idle_since with
    | Some t0 ->
      (* Decay the average as if the queue had been draining small packets
         during the idle period. *)
      let m = (Engine.Sim.now sim -. t0) /. p.mean_pkt_tx_time in
      s.avg <- s.avg *. ((1. -. p.w_q) ** m);
      s.idle_since <- None
    | None ->
      s.avg <- s.avg +. (p.w_q *. (float_of_int (Queue.length s.q) -. s.avg))
  in
  (* Decide the fate of an arrival once the average is up to date.  Returns
     the probabilistic verdict; the caller still enforces buffer overflow. *)
  let early_verdict () : Queue_intf.action =
    if s.avg < p.min_th then begin
      s.count <- -1;
      Queue_intf.Enqueued
    end
    else begin
      let congested = Queue_intf.(if p.ecn then Marked else Dropped) in
      let uniformized p_b =
        s.count <- s.count + 1;
        let denom = 1. -. (float_of_int s.count *. p_b) in
        let p_a = if denom <= 0. then 1. else Float.min 1. (p_b /. denom) in
        if Engine.Rng.bernoulli rng ~p:p_a then begin
          s.count <- 0;
          congested
        end
        else Queue_intf.Enqueued
      in
      if s.avg < p.max_th then
        uniformized (p.max_p *. (s.avg -. p.min_th) /. (p.max_th -. p.min_th))
      else if p.gentle && s.avg < 2. *. p.max_th then
        uniformized
          (p.max_p +. ((1. -. p.max_p) *. (s.avg -. p.max_th) /. p.max_th))
      else begin
        (* Average beyond the (gentle) ceiling: forced drop even with ECN. *)
        s.count <- 0;
        Queue_intf.Dropped
      end
    end
  in
  let admit pkt =
    Queue.add pkt s.q;
    s.bytes <- s.bytes + pkt.Packet.size;
    s.n_enqueued <- s.n_enqueued + 1;
    if Queue.length s.q > s.peak_pkts then s.peak_pkts <- Queue.length s.q
  in
  let enqueue (pkt : Packet.t) : Queue_intf.action =
    update_avg ();
    if Queue.length s.q >= p.capacity then begin
      s.count <- 0;
      s.n_forced_drop <- s.n_forced_drop + 1;
      Queue_intf.Dropped
    end
    else begin
      match early_verdict () with
      | Queue_intf.Dropped ->
        s.n_early_drop <- s.n_early_drop + 1;
        Queue_intf.Dropped
      | Queue_intf.Marked ->
        pkt.Packet.ecn <- true;
        admit pkt;
        s.n_marked <- s.n_marked + 1;
        Queue_intf.Marked
      | Queue_intf.Enqueued ->
        admit pkt;
        Queue_intf.Enqueued
    end
  in
  let dequeue () =
    match Queue.take_opt s.q with
    | None -> None
    | Some pkt ->
      s.bytes <- s.bytes - pkt.Packet.size;
      if Queue.is_empty s.q then s.idle_since <- Some (Engine.Sim.now sim);
      Some pkt
  in
  let queue =
    {
      Queue_intf.name = "red";
      enqueue;
      dequeue;
      pkts = (fun () -> Queue.length s.q);
      bytes = (fun () -> s.bytes);
      counters =
        (fun () ->
          [
            ("enqueued", s.n_enqueued);
            ("early_drop", s.n_early_drop);
            ("forced_drop", s.n_forced_drop);
            ("marked", s.n_marked);
            ("peak_pkts", s.peak_pkts);
          ]);
    }
  in
  (queue, fun () -> s.avg)

let make ~sim ~rng p = fst (make_with_introspection ~sim ~rng p)
