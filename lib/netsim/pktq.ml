(* FIFO of packets on a growable ring: [Stdlib.Queue] conses a cell per
   [add], and the queue disciplines enqueue once per packet per hop.
   Vacated slots are overwritten with [Packet.dummy] so dequeued packets
   don't leak through the array. *)

type t = {
  mutable items : Packet.t array;
  mutable head : int;
  mutable len : int;
}

let create () = { items = Array.make 16 Packet.dummy; head = 0; len = 0 }
let length q = q.len
let is_empty q = q.len = 0

let add q pkt =
  let cap = Array.length q.items in
  if q.len = cap then begin
    let a = Array.make (cap * 2) Packet.dummy in
    for i = 0 to q.len - 1 do
      a.(i) <- q.items.((q.head + i) land (cap - 1))
    done;
    q.items <- a;
    q.head <- 0
  end;
  let mask = Array.length q.items - 1 in
  q.items.((q.head + q.len) land mask) <- pkt;
  q.len <- q.len + 1

let take_opt q =
  if q.len = 0 then None
  else begin
    let pkt = q.items.(q.head) in
    if Engine.Audit.invariants_on () && pkt == Packet.dummy then
      Engine.Audit.fail
        "Pktq: occupied slot holds the dummy packet (ring index corruption \
         at head=%d len=%d cap=%d)"
        q.head q.len (Array.length q.items);
    q.items.(q.head) <- Packet.dummy;
    q.head <- (q.head + 1) land (Array.length q.items - 1);
    q.len <- q.len - 1;
    Some pkt
  end
