type queue_kind =
  | Red
  | Red_ecn
  | Droptail
  | Custom of (unit -> Queue_intf.t)

type config = {
  bandwidth : float;
  rtt : float;
  pkt_size : int;
  queue : queue_kind;
}

let default_config ~bandwidth =
  { bandwidth; rtt = 0.05; pkt_size = 1000; queue = Red }

let bdp_packets c = c.bandwidth *. c.rtt /. (8. *. float_of_int c.pkt_size)

type t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  config : config;
  left_router : Node.t;
  right_router : Node.t;
  bottleneck : Link.t;
  bottleneck_rev : Link.t;
  mutable next_node_id : int;
  mutable next_flow_id : int;
  mutable all_links : Link.t list;  (* every link, newest first *)
}

let make_queue ~sim ~rng c =
  let bdp = Float.max 4. (bdp_packets c) in
  let capacity = int_of_float (Float.max 8. (2.5 *. bdp)) in
  match c.queue with
  | Droptail -> Droptail.make ~capacity
  | Custom f -> f ()
  | Red | Red_ecn ->
    let params =
      {
        Red.default_params with
        min_th = 0.25 *. bdp;
        max_th = 1.25 *. bdp;
        capacity;
        ecn = (c.queue = Red_ecn);
        mean_pkt_tx_time = float_of_int (c.pkt_size * 8) /. c.bandwidth;
      }
    in
    Red.make ~sim ~rng:(Engine.Rng.split rng) params

(* RTT budget: 2 x (bottleneck_prop + 2 x edge_prop) = rtt, with edge_prop
   set to rtt/20 so the bottleneck carries most of the delay. *)
let edge_prop c = c.rtt /. 20.
let bottleneck_prop c = (c.rtt /. 2.) -. (2. *. edge_prop c)

let edge_bandwidth c = Float.max 1e8 (100. *. c.bandwidth)

let create ~sim ~rng config =
  if config.bandwidth <= 0. then invalid_arg "Dumbbell.create: bandwidth";
  if config.rtt <= 0. then invalid_arg "Dumbbell.create: rtt";
  let left_router = Node.create ~id:0 and right_router = Node.create ~id:1 in
  let mk_bottleneck () =
    Link.make ~sim ~bandwidth:config.bandwidth ~delay:(bottleneck_prop config)
      ~queue:(make_queue ~sim ~rng config)
  in
  let bottleneck = mk_bottleneck () and bottleneck_rev = mk_bottleneck () in
  Link.connect bottleneck (Node.receive right_router);
  Link.connect bottleneck_rev (Node.receive left_router);
  Node.set_default_route left_router bottleneck;
  Node.set_default_route right_router bottleneck_rev;
  {
    sim;
    rng;
    config;
    left_router;
    right_router;
    bottleneck;
    bottleneck_rev;
    next_node_id = 2;
    next_flow_id = 0;
    all_links = [ bottleneck_rev; bottleneck ];
  }

let sim t = t.sim
let config t = t.config
let bottleneck t = t.bottleneck
let bottleneck_rev t = t.bottleneck_rev
let links t = List.rev t.all_links

let fresh_node_id t =
  let id = t.next_node_id in
  t.next_node_id <- id + 1;
  id

let fresh_flow t =
  let id = t.next_flow_id in
  t.next_flow_id <- id + 1;
  id

let edge_link t ~extra_delay =
  let l =
    Link.make ~sim:t.sim ~bandwidth:(edge_bandwidth t.config)
      ~delay:(edge_prop t.config +. extra_delay)
      ~queue:(Droptail.make ~capacity:100000)
  in
  t.all_links <- l :: t.all_links;
  l

let attach_host t router host ~extra_delay =
  let up = edge_link t ~extra_delay and down = edge_link t ~extra_delay in
  Link.connect up (Node.receive router);
  Link.connect down (Node.receive host);
  Node.set_default_route host up;
  Node.add_route router ~dst:(Node.id host) down

let add_host_pair ?(extra_delay = 0.) t =
  if extra_delay < 0. then invalid_arg "Dumbbell.add_host_pair: extra_delay";
  let left = Node.create ~id:(fresh_node_id t) in
  let right = Node.create ~id:(fresh_node_id t) in
  attach_host t t.left_router left ~extra_delay;
  attach_host t t.right_router right ~extra_delay;
  (left, right)
