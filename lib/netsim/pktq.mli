(** Growable ring-buffer FIFO of packets; enqueue/dequeue never cons
    (unlike [Stdlib.Queue]), apart from the [option] a [take_opt] returns
    to match [Queue_intf.dequeue]. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool
val add : t -> Packet.t -> unit
val take_opt : t -> Packet.t option
