let wrap ~name ~should_drop (inner : Queue_intf.t) =
  let pattern_drops = ref 0 in
  let enqueue pkt =
    if should_drop pkt then begin
      incr pattern_drops;
      Queue_intf.Dropped
    end
    else inner.Queue_intf.enqueue pkt
  in
  let counters () =
    ("pattern_drop", !pattern_drops) :: inner.Queue_intf.counters ()
  in
  { inner with Queue_intf.name; enqueue; counters }

let by_count ~pattern inner =
  if pattern = [] || List.exists (fun n -> n <= 0) pattern then
    invalid_arg "Loss_pattern.by_count: pattern must be positive counts";
  let arr = Array.of_list pattern in
  let idx = ref 0 in
  let remaining = ref arr.(0) in
  let should_drop (pkt : Packet.t) =
    (* Only data packets participate in the designed pattern; acks of the
       reverse flow share the link unharmed. *)
    if Packet.is_ack pkt then false
    else begin
      decr remaining;
      if !remaining = 0 then begin
        idx := (!idx + 1) mod Array.length arr;
        remaining := arr.(!idx);
        true
      end
      else false
    end
  in
  wrap ~name:"loss_pattern_count" ~should_drop inner

let by_phase ~sim ~phases inner =
  if phases = [] || List.exists (fun (d, _) -> d <= 0.) phases then
    invalid_arg "Loss_pattern.by_phase: durations must be positive";
  let arr = Array.of_list phases in
  let idx = ref 0 in
  let phase_end = ref (fst arr.(0)) in
  let since_drop = ref 0 in
  let should_drop (pkt : Packet.t) =
    if Packet.is_ack pkt then false
    else begin
      let now = Engine.Sim.now sim in
      while now >= !phase_end do
        idx := (!idx + 1) mod Array.length arr;
        phase_end := !phase_end +. fst arr.(!idx);
        since_drop := 0
      done;
      let every = snd arr.(!idx) in
      if every <= 0 then false
      else begin
        incr since_drop;
        if !since_drop >= every then begin
          since_drop := 0;
          true
        end
        else false
      end
    end
  in
  wrap ~name:"loss_pattern_phase" ~should_drop inner

let bernoulli ~rng ~p inner =
  if p < 0. || p >= 1. then
    invalid_arg "Loss_pattern.bernoulli: p in [0, 1)";
  let should_drop (pkt : Packet.t) =
    (not (Packet.is_ack pkt)) && Engine.Rng.bernoulli rng ~p
  in
  wrap ~name:"loss_pattern_bernoulli" ~should_drop inner

let one_per_interval ~sim ~interval ~start inner =
  if interval <= 0. then
    invalid_arg "Loss_pattern.one_per_interval: interval must be positive";
  let last_drop_window = ref (-1) in
  let should_drop (pkt : Packet.t) =
    if Packet.is_ack pkt then false
    else begin
      let now = Engine.Sim.now sim in
      if now < start then false
      else begin
        let window = int_of_float ((now -. start) /. interval) in
        if window > !last_drop_window then begin
          last_drop_window := window;
          true
        end
        else false
      end
    end
  in
  wrap ~name:"loss_pattern_one_per_interval" ~should_drop inner
