type action = Enqueued | Marked | Dropped

type t = {
  name : string;
  enqueue : Packet.t -> action;
  dequeue : unit -> Packet.t option;
  pkts : unit -> int;
  bytes : unit -> int;
  counters : unit -> (string * int) list;
}
