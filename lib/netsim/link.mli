(** Unidirectional link: a queue feeding a transmitter with finite
    bandwidth, followed by fixed propagation delay.

    Transmission and propagation are pipelined: the transmitter starts the
    next packet as soon as the previous one is on the wire. *)

type t

val make :
  sim:Engine.Sim.t ->
  bandwidth:float (** bits/s *) ->
  delay:float (** propagation, seconds *) ->
  queue:Queue_intf.t ->
  t

(** Set the receiver of packets at the far end (usually [Node.receive]). *)
val connect : t -> (Packet.t -> unit) -> unit

(** Offer a packet to the link's queue; may drop.  A dropped pooled
    packet is released back to the freelist after the drop hooks run —
    the link is its last owner at that point. *)
val send : t -> Packet.t -> unit

val bandwidth : t -> float
val delay : t -> float
val queue : t -> Queue_intf.t

(** Serialization time of a packet of [bytes] bytes. *)
val tx_time : t -> bytes:int -> float

(** Cumulative counters since creation. *)
val arrivals : t -> int

val drops : t -> int
val departures : t -> int

(** Packets handed to the far-end receiver (departures that completed
    propagation). *)
val delivered : t -> int

(** Packets currently in propagation (departed, not yet delivered). *)
val in_flight : t -> int

(** True while a packet is serializing onto the wire. *)
val busy : t -> bool

val bytes_out : t -> float

(** Audit checkpoint: verify this link's conservation laws now
    (arrivals = drops + departures + queued + serializing, and
    departures − delivered = in flight, non-negative queue occupancy).
    Raises [Engine.Audit.Violation] on failure.  Runs automatically after
    every [send]/transmission completion under
    [Engine.Audit.invariants_on]; exposed for end-of-run sweeps. *)
val check_conservation : t -> unit

(** [utilization t ~elapsed] is the fraction of capacity used over the
    last [elapsed] seconds of simulated time: [bytes_out * 8 / (bw * s)].
    0 when [elapsed <= 0]. *)
val utilization : t -> elapsed:float -> float

(** Link counters plus the queue discipline's own counters (prefixed with
    the discipline name), e.g. [("arrivals", _); ("red.early_drop", _)]. *)
val counters : t -> (string * int) list

(** [register_metrics t registry ~prefix] registers every counter of
    {!counters} plus a [<prefix>.utilization] gauge on [registry] and
    returns a refresh closure; call it whenever a snapshot is about to be
    taken (typically once, at the end of the run). *)
val register_metrics :
  t -> Engine.Metrics.t -> prefix:string -> unit -> unit

(** Fluid fast-forward credit: fold [delivered]/[dropped] packets and
    [bytes] output bytes carried by the fluid model (while packet-level
    simulation was frozen) into this link's counters, preserving the
    conservation laws of {!check_conservation}.  Creates no packets and
    schedules no events; never called when fast-forward is off. *)
val ff_credit : t -> delivered:int -> dropped:int -> bytes:int -> unit

(** Hook invoked for every dropped packet (monitoring / tests). *)
val on_drop : t -> (Packet.t -> unit) -> unit

(** Hook invoked when a packet finishes serialization onto the wire. *)
val on_departure : t -> (Packet.t -> unit) -> unit

(** [on_queue_delay t hook] invokes [hook pkt delay] when [pkt] starts
    serializing, where [delay] is the time the packet spent queued
    (enqueue to tx-start; 0 for a packet that arrived at an idle link).
    Packets already queued when the first hook is registered are skipped.
    Purely observational: with no hooks registered the link's behavior
    and cost are unchanged, and the hook itself must not mutate the
    simulation mid-event.  Exact because queues are strictly FIFO and
    drop only at enqueue. *)
val on_queue_delay : t -> (Packet.t -> float -> unit) -> unit
