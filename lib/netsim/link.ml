type t = {
  sim : Engine.Sim.t;
  bandwidth : float;
  delay : float;
  queue : Queue_intf.t;
  mutable busy : bool;
  mutable deliver : Packet.t -> unit;
  mutable arrivals : int;
  mutable drops : int;
  mutable departures : int;
  mutable bytes_out : float;
  mutable drop_hooks : (Packet.t -> unit) list;
  mutable departure_hooks : (Packet.t -> unit) list;
}

let make ~sim ~bandwidth ~delay ~queue =
  if bandwidth <= 0. then invalid_arg "Link.make: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.make: negative delay";
  {
    sim;
    bandwidth;
    delay;
    queue;
    busy = false;
    deliver = (fun _ -> ());
    arrivals = 0;
    drops = 0;
    departures = 0;
    bytes_out = 0.;
    drop_hooks = [];
    departure_hooks = [];
  }

let connect t deliver = t.deliver <- deliver
let bandwidth t = t.bandwidth
let delay t = t.delay
let queue t = t.queue
let tx_time t ~bytes = float_of_int (bytes * 8) /. t.bandwidth

let rec transmit_next t =
  match t.queue.Queue_intf.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    let tx = tx_time t ~bytes:pkt.Packet.size in
    Engine.Sim.after t.sim tx (fun () ->
        t.departures <- t.departures + 1;
        t.bytes_out <- t.bytes_out +. float_of_int pkt.Packet.size;
        List.iter (fun hook -> hook pkt) t.departure_hooks;
        let deliver () = t.deliver pkt in
        if t.delay > 0. then Engine.Sim.after t.sim t.delay deliver
        else deliver ();
        transmit_next t)

let send t pkt =
  t.arrivals <- t.arrivals + 1;
  match t.queue.Queue_intf.enqueue pkt with
  | Queue_intf.Dropped ->
    t.drops <- t.drops + 1;
    List.iter (fun hook -> hook pkt) t.drop_hooks
  | Queue_intf.Enqueued | Queue_intf.Marked ->
    if not t.busy then transmit_next t

let arrivals t = t.arrivals
let drops t = t.drops
let departures t = t.departures
let bytes_out t = t.bytes_out

(* Fraction of the link's capacity used over [elapsed] wall-sim seconds. *)
let utilization t ~elapsed =
  if elapsed <= 0. then 0. else t.bytes_out *. 8. /. (t.bandwidth *. elapsed)

(* Own counters plus the queue discipline's, for the observability layer.
   Queue counters are prefixed with the discipline name. *)
let counters t =
  [
    ("arrivals", t.arrivals);
    ("drops", t.drops);
    ("departures", t.departures);
    ("bytes_out", int_of_float t.bytes_out);
  ]
  @ List.map
      (fun (k, v) -> (t.queue.Queue_intf.name ^ "." ^ k, v))
      (t.queue.Queue_intf.counters ())

(* Register this link's counters and utilization on a metrics registry;
   call [snapshot] at the end of the run to freeze current values. *)
let register_metrics t registry ~prefix =
  let sampled = ref [] in
  List.iter
    (fun (k, _) ->
      let c = Engine.Metrics.counter registry (prefix ^ "." ^ k) in
      sampled := (c, k) :: !sampled)
    (counters t);
  let util = Engine.Metrics.gauge registry (prefix ^ ".utilization") in
  let t0 = Engine.Sim.now t.sim in
  fun () ->
    let current = counters t in
    List.iter
      (fun (c, k) ->
        match List.assoc_opt k current with
        | Some v ->
          let delta = v - Engine.Metrics.value c in
          if delta > 0 then Engine.Metrics.incr ~by:delta c
        | None -> ())
      !sampled;
    Engine.Metrics.set util
      (utilization t ~elapsed:(Engine.Sim.now t.sim -. t0))
let on_drop t hook = t.drop_hooks <- hook :: t.drop_hooks
let on_departure t hook = t.departure_hooks <- hook :: t.departure_hooks
