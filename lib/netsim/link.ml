(* The packet hot path used to allocate two closures per packet per hop
   (one serialization-done event, one delivery event).  Both are now
   preallocated once per link: [tx_done] reads the packet being
   serialized from [tx_pkt] (the link serializes one packet at a time, so
   a single slot suffices), and [deliver_front] pops a FIFO ring of
   packets in propagation (the delay is constant per link, so deliveries
   complete in the order they start — a ring is exact, not approximate).
   Steady-state forwarding allocates nothing. *)

type t = {
  sim : Engine.Sim.t;
  bandwidth : float;
  delay : float;
  queue : Queue_intf.t;
  mutable busy : bool;
  mutable deliver : Packet.t -> unit;
  mutable arrivals : int;
  mutable drops : int;
  mutable departures : int;
  mutable delivered : int;  (* handed to the far-end receiver *)
  mutable bytes_out : int;
  mutable drop_hooks : (Packet.t -> unit) list;
  mutable departure_hooks : (Packet.t -> unit) list;
  (* Per-packet queueing delay (enqueue -> tx-start), observed via a side
     ring of enqueue timestamps.  Valid because every discipline here is
     strictly FIFO and drops happen only at enqueue: the k-th timestamp
     pushed always belongs to the k-th packet dequeued.  Empty hook list
     means zero cost and no behavior change on the hot path. *)
  mutable qdelay_hooks : (Packet.t -> float -> unit) list;
  mutable enq_times : float array;
  mutable enq_head : int;
  mutable enq_len : int;
  mutable qd_skip : int; (* pkts already queued when the first hook landed *)
  (* hot-path event reuse *)
  mutable tx_pkt : Packet.t;  (* the packet currently serializing *)
  mutable tx_done : unit -> unit;
  mutable deliver_front : unit -> unit;
  (* ring of packets in propagation, FIFO *)
  mutable flight : Packet.t array;
  mutable flight_head : int;
  mutable flight_len : int;
}

(* Run hooks without the per-call closure a [List.iter (fun h -> h pkt)]
   would allocate. *)
let rec run_hooks hooks pkt =
  match hooks with
  | [] -> ()
  | h :: rest ->
    h pkt;
    run_hooks rest pkt

let rec run_qdelay_hooks hooks pkt delay =
  match hooks with
  | [] -> ()
  | h :: rest ->
    h pkt delay;
    run_qdelay_hooks rest pkt delay

let qd_push t time =
  let cap = Array.length t.enq_times in
  if t.enq_len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let a = Array.make ncap 0. in
    for i = 0 to t.enq_len - 1 do
      a.(i) <- t.enq_times.((t.enq_head + i) land (cap - 1))
    done;
    t.enq_times <- a;
    t.enq_head <- 0
  end;
  let mask = Array.length t.enq_times - 1 in
  t.enq_times.((t.enq_head + t.enq_len) land mask) <- time;
  t.enq_len <- t.enq_len + 1

let qd_pop t =
  let mask = Array.length t.enq_times - 1 in
  let v = t.enq_times.(t.enq_head) in
  t.enq_head <- (t.enq_head + 1) land mask;
  t.enq_len <- t.enq_len - 1;
  v

let flight_push t pkt =
  let cap = Array.length t.flight in
  if t.flight_len = cap then begin
    let ncap = cap * 2 in
    let a = Array.make ncap Packet.dummy in
    for i = 0 to t.flight_len - 1 do
      a.(i) <- t.flight.((t.flight_head + i) land (cap - 1))
    done;
    t.flight <- a;
    t.flight_head <- 0
  end;
  let mask = Array.length t.flight - 1 in
  t.flight.((t.flight_head + t.flight_len) land mask) <- pkt;
  t.flight_len <- t.flight_len + 1

let flight_pop t =
  let mask = Array.length t.flight - 1 in
  let pkt = t.flight.(t.flight_head) in
  t.flight.(t.flight_head) <- Packet.dummy;
  t.flight_head <- (t.flight_head + 1) land mask;
  t.flight_len <- t.flight_len - 1;
  pkt

let tx_time t ~bytes = float_of_int (bytes * 8) /. t.bandwidth

(* Conservation checkpoint, run after every [send] and [tx_done] under
   [Audit.invariants_on].  Every packet offered to the link must be
   accounted for exactly once: dropped at the queue, departed onto the
   wire, still queued, or the one currently serializing; and every
   departed packet is either delivered or in propagation.  Pure reads —
   cannot perturb the simulation. *)
let check_conservation t =
  let queued = t.queue.Queue_intf.pkts () in
  let qbytes = t.queue.Queue_intf.bytes () in
  if queued < 0 || qbytes < 0 then
    Engine.Audit.fail
      "Link(%s): negative queue occupancy — %d pkts, %d bytes"
      t.queue.Queue_intf.name queued qbytes;
  let serializing = if t.busy then 1 else 0 in
  let accounted = t.drops + t.departures + queued + serializing in
  if t.arrivals <> accounted then
    Engine.Audit.fail
      "Link(%s): packet conservation violated — arrivals=%d but drops=%d + \
       departures=%d + queued=%d + serializing=%d = %d"
      t.queue.Queue_intf.name t.arrivals t.drops t.departures queued
      serializing accounted;
  if t.departures - t.delivered <> t.flight_len then
    Engine.Audit.fail
      "Link(%s): flight accounting violated — departures=%d, delivered=%d, \
       but %d in propagation"
      t.queue.Queue_intf.name t.departures t.delivered t.flight_len

let transmit_next t =
  match t.queue.Queue_intf.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
    if t.qdelay_hooks != [] then begin
      if t.qd_skip > 0 then t.qd_skip <- t.qd_skip - 1
      else if t.enq_len > 0 then
        run_qdelay_hooks t.qdelay_hooks pkt
          (Engine.Sim.now t.sim -. qd_pop t)
    end;
    t.busy <- true;
    t.tx_pkt <- pkt;
    Engine.Sim.after t.sim (tx_time t ~bytes:pkt.Packet.size) t.tx_done

let make ~sim ~bandwidth ~delay ~queue =
  if bandwidth <= 0. then invalid_arg "Link.make: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.make: negative delay";
  let t =
    {
      sim;
      bandwidth;
      delay;
      queue;
      busy = false;
      deliver = (fun _ -> ());
      arrivals = 0;
      drops = 0;
      departures = 0;
      delivered = 0;
      bytes_out = 0;
      drop_hooks = [];
      departure_hooks = [];
      qdelay_hooks = [];
      enq_times = [||];
      enq_head = 0;
      enq_len = 0;
      qd_skip = 0;
      tx_pkt = Packet.dummy;
      tx_done = ignore;
      deliver_front = ignore;
      flight = Array.make 16 Packet.dummy;
      flight_head = 0;
      flight_len = 0;
    }
  in
  t.deliver_front <-
    (fun () ->
      let pkt = flight_pop t in
      if Engine.Audit.invariants_on () && pkt == Packet.dummy then
        Engine.Audit.fail
          "Link(%s): delivery popped the dummy packet (flight-ring \
           corruption)"
          t.queue.Queue_intf.name;
      t.delivered <- t.delivered + 1;
      t.deliver pkt);
  t.tx_done <-
    (fun () ->
      let pkt = t.tx_pkt in
      t.tx_pkt <- Packet.dummy;
      t.departures <- t.departures + 1;
      t.bytes_out <- t.bytes_out + pkt.Packet.size;
      run_hooks t.departure_hooks pkt;
      (* Delivery is scheduled before the next serialization starts, so
         if [delay] happens to equal a tx time the delivery event keeps
         its historical FIFO priority at the tie. *)
      if t.delay > 0. then begin
        flight_push t pkt;
        Engine.Sim.after t.sim t.delay t.deliver_front
      end
      else begin
        t.delivered <- t.delivered + 1;
        t.deliver pkt
      end;
      transmit_next t;
      if Engine.Audit.invariants_on () then check_conservation t);
  t

let connect t deliver = t.deliver <- deliver
let bandwidth t = t.bandwidth
let delay t = t.delay
let queue t = t.queue

let send t pkt =
  if Engine.Audit.lifetime_on () then Packet.check_live pkt;
  t.arrivals <- t.arrivals + 1;
  (match t.queue.Queue_intf.enqueue pkt with
  | Queue_intf.Dropped ->
    t.drops <- t.drops + 1;
    run_hooks t.drop_hooks pkt;
    (* The queue discipline refused the packet, so nothing downstream
       will ever see it again: this is the last reference, return pooled
       shells to the freelist here.  (Hooks run first — they only observe
       the packet.)  Without this, every dropped pooled ack leaked to the
       GC and quietly drained the freelist under reverse-path loss. *)
    Packet.release pkt
  | Queue_intf.Enqueued | Queue_intf.Marked ->
    if t.qdelay_hooks != [] then qd_push t (Engine.Sim.now t.sim);
    if not t.busy then transmit_next t);
  if Engine.Audit.invariants_on () then check_conservation t

let arrivals t = t.arrivals
let drops t = t.drops
let departures t = t.departures
let delivered t = t.delivered
let in_flight t = t.flight_len
let busy t = t.busy
let bytes_out t = float_of_int t.bytes_out

(* Fraction of the link's capacity used over [elapsed] wall-sim seconds. *)
let utilization t ~elapsed =
  if elapsed <= 0. then 0.
  else float_of_int t.bytes_out *. 8. /. (t.bandwidth *. elapsed)

(* Own counters plus the queue discipline's, for the observability layer.
   Queue counters are prefixed with the discipline name. *)
let counters t =
  [
    ("arrivals", t.arrivals);
    ("drops", t.drops);
    ("departures", t.departures);
    ("delivered", t.delivered);
    ("bytes_out", t.bytes_out);
  ]
  @ List.map
      (fun (k, v) -> (t.queue.Queue_intf.name ^ "." ^ k, v))
      (t.queue.Queue_intf.counters ())

(* Register this link's counters and utilization on a metrics registry;
   call [snapshot] at the end of the run to freeze current values. *)
let register_metrics t registry ~prefix =
  let sampled = ref [] in
  List.iter
    (fun (k, _) ->
      let c = Engine.Metrics.counter registry (prefix ^ "." ^ k) in
      sampled := (c, k) :: !sampled)
    (counters t);
  let util = Engine.Metrics.gauge registry (prefix ^ ".utilization") in
  let t0 = Engine.Sim.now t.sim in
  fun () ->
    let current = counters t in
    List.iter
      (fun (c, k) ->
        match List.assoc_opt k current with
        | Some v ->
          let delta = v - Engine.Metrics.value c in
          if delta > 0 then Engine.Metrics.incr ~by:delta c
        | None -> ())
      !sampled;
    Engine.Metrics.set util
      (utilization t ~elapsed:(Engine.Sim.now t.sim -. t0))

(* Fluid fast-forward credit: account for traffic that the fluid model
   carried across this link while packet-level simulation was frozen.
   Pure counter surgery that preserves both conservation laws checked by
   [check_conservation]: every credited packet is offered (arrivals) and
   either dropped or departed-and-delivered in the same instant, so
   [arrivals = drops + departures + queued + serializing] and
   [departures - delivered = flight_len] keep holding.  No packets exist
   and no events are scheduled — with fast-forward off this function is
   never called and the link is byte-identical to the pure engine. *)
let ff_credit t ~delivered ~dropped ~bytes =
  if delivered < 0 || dropped < 0 || bytes < 0 then
    invalid_arg "Link.ff_credit: negative credit";
  t.arrivals <- t.arrivals + delivered + dropped;
  t.drops <- t.drops + dropped;
  t.departures <- t.departures + delivered;
  t.delivered <- t.delivered + delivered;
  t.bytes_out <- t.bytes_out + bytes;
  if Engine.Audit.invariants_on () then check_conservation t

let on_drop t hook = t.drop_hooks <- hook :: t.drop_hooks
let on_departure t hook = t.departure_hooks <- hook :: t.departure_hooks

let on_queue_delay t hook =
  if t.qdelay_hooks = [] then
    (* Packets already sitting in the queue were enqueued before we
       started timestamping; skip exactly that many dequeues so the ring
       stays aligned with the FIFO order. *)
    t.qd_skip <- t.queue.Queue_intf.pkts ();
  t.qdelay_hooks <- hook :: t.qdelay_hooks
