type tfrc_feedback = {
  loss_event_rate : float;
  recv_rate : float;
  timestamp_echo : float;
  delay_echo : float;
  new_loss : bool;
}

type payload =
  | Plain
  | Ack of { mutable cum_seq : int; mutable sack : (int * int) list }
  | Rap_ack of { cum_seq : int; recv_rate : float }
  | Tfrc_data of { timestamp : float; rtt_estimate : float }
  | Tfrc_fb of tfrc_feedback
  | Tear_fb of {
      rate_pps : float;
      timestamp_echo : float;
      delay_echo : float;
    }

type t = {
  mutable uid : int;
  mutable flow : int;
  mutable src : int;
  mutable dst : int;
  mutable size : int;
  mutable seq : int;
  mutable sent_at : float;
  mutable payload : payload;
  mutable ecn : bool;
  mutable pooled : bool;
  mutable gen : int;
}

(* Atomic so that simulations running on parallel domains (Engine.Pool)
   still mint unique uids.  Uids only label packets for tracing/printing;
   no simulation logic depends on their values. *)
let uid_counter = Atomic.make 0

let dummy =
  {
    uid = 0;
    flow = -1;
    src = -1;
    dst = -1;
    size = 0;
    seq = 0;
    sent_at = 0.;
    payload = Plain;
    ecn = false;
    pooled = false;
    gen = 0;
  }

let make ?(size = 1000) ?(seq = 0) ?(payload = Plain) ~flow ~src ~dst ~sent_at
    () =
  let uid = 1 + Atomic.fetch_and_add uid_counter 1 in
  { uid; flow; src; dst; size; seq; sent_at; payload; ecn = false;
    pooled = false; gen = 0 }

(* ------------------------------------------------------------------ *)
(* Freelist                                                            *)
(* ------------------------------------------------------------------ *)

(* Per-domain (Domain.DLS) so parallel Engine.Pool workers never share a
   freelist; a packet is always allocated, consumed and released inside
   one simulation, hence one domain.  A fixed-capacity array stack, not a
   list: pushing must not cons. *)

type freelist = { items : t array; mutable len : int }

let freelist_capacity = 256

let freelist_key =
  Domain.DLS.new_key (fun () ->
      { items = Array.make freelist_capacity dummy; len = 0 })

(* Global pooling switch (differential fuzzing): when off, the pooled
   allocators degrade to [make] (fresh shell every call, [pooled] stays
   false so [release] is a no-op) and [release] returns nothing to the
   freelist.  Plain bool — toggled between runs, never mid-run. *)
let pooling_enabled = ref true

let set_pooling b = pooling_enabled := b
let pooling () = !pooling_enabled

(* Lifetime-mode poison values: written into a shell on release, always
   overwritten by a legitimate [recycle]/[alloc_ack], so any packet still
   carrying one was either used after release or recycled by a path that
   forgot to reset the field.  [min_int] can never be a real sequence
   number (sequences count sent packets from 0). *)
let poison_seq = min_int

let release p =
  if p.pooled then begin
    p.pooled <- false;
    if Engine.Audit.lifetime_on () then begin
      p.gen <- p.gen + 1;
      p.seq <- poison_seq;
      p.ecn <- true;
      match p.payload with
      | Ack a ->
        a.cum_seq <- poison_seq;
        a.sack <- [ (poison_seq, poison_seq) ]
      | Plain | Rap_ack _ | Tfrc_data _ | Tfrc_fb _ | Tear_fb _ -> ()
    end;
    if !pooling_enabled then begin
      let fl = Domain.DLS.get freelist_key in
      if fl.len < freelist_capacity then begin
        Array.unsafe_set fl.items fl.len p;
        fl.len <- fl.len + 1
      end
      (* Overflow: drop the packet; the GC reclaims it like any other. *)
    end
  end
  else if Engine.Audit.lifetime_on () && p.gen > 0 then
    (* A shell with a non-zero generation and [pooled = false] is either
       on the freelist or already dead; a second [release] means two
       owners both believed they were the last consumer. *)
    Engine.Audit.fail "Packet.release: double release of shell uid=%d gen=%d"
      p.uid p.gen

(* Detect a shell that re-entered the network after release, or one a
   recycler forgot to scrub.  Called from [Link.send] (the injection
   chokepoint every transmitted packet crosses) under [lifetime_on]. *)
let check_live p =
  if (not p.pooled) && p.gen > 0 then
    Engine.Audit.fail
      "Packet: use-after-release — released shell uid=%d gen=%d re-entered \
       the network"
      p.uid p.gen;
  if p.seq = poison_seq then
    Engine.Audit.fail
      "Packet: dirty reuse — shell uid=%d carries a poisoned seq (recycle \
       path failed to reset it)"
      p.uid;
  match p.payload with
  | Ack a ->
    if a.cum_seq = poison_seq then
      Engine.Audit.fail
        "Packet: dirty reuse — ack shell uid=%d carries a poisoned cum_seq \
         (alloc_ack failed to reset it)"
        p.uid;
    (match a.sack with
    | (lo, _) :: _ when lo = poison_seq ->
      Engine.Audit.fail
        "Packet: dirty reuse — ack shell uid=%d carries poisoned sack \
         blocks (alloc_ack failed to reset them)"
        p.uid
    | _ -> ())
  | Plain | Rap_ack _ | Tfrc_data _ | Tfrc_fb _ | Tear_fb _ -> ()

(* Take a packet shell from the freelist (or allocate one) and refill the
   common fields.  [payload] is left untouched for the caller to reuse or
   replace. *)
let recycle ~size ~flow ~src ~dst ~sent_at =
  let fl = Domain.DLS.get freelist_key in
  if !pooling_enabled && fl.len > 0 then begin
    fl.len <- fl.len - 1;
    let p = Array.unsafe_get fl.items fl.len in
    Array.unsafe_set fl.items fl.len dummy;
    p.uid <- 1 + Atomic.fetch_and_add uid_counter 1;
    p.flow <- flow;
    p.src <- src;
    p.dst <- dst;
    p.size <- size;
    p.seq <- 0;
    p.sent_at <- sent_at;
    p.ecn <- false;
    p.pooled <- true;
    p
  end
  else begin
    let p = make ~size ~flow ~src ~dst ~sent_at () in
    p.pooled <- !pooling_enabled;
    p
  end

let alloc_ack ~size ~flow ~src ~dst ~sent_at ~cum_seq ~sack =
  let p = recycle ~size ~flow ~src ~dst ~sent_at in
  (match p.payload with
  | Ack a ->
    a.cum_seq <- cum_seq;
    a.sack <- sack
  | Plain | Rap_ack _ | Tfrc_data _ | Tfrc_fb _ | Tear_fb _ ->
    p.payload <- Ack { cum_seq; sack });
  p

let alloc_tfrc_fb ~size ~flow ~src ~dst ~sent_at fb =
  let p = recycle ~size ~flow ~src ~dst ~sent_at in
  p.payload <- Tfrc_fb fb;
  p

let is_ack t =
  match t.payload with
  | Ack _ | Rap_ack _ | Tfrc_fb _ | Tear_fb _ -> true
  | Plain | Tfrc_data _ -> false

let pp fmt t =
  Format.fprintf fmt "pkt#%d flow=%d %d->%d seq=%d size=%d" t.uid t.flow t.src
    t.dst t.seq t.size

let reset_uids () = Atomic.set uid_counter 0
