type tfrc_feedback = {
  loss_event_rate : float;
  recv_rate : float;
  timestamp_echo : float;
  delay_echo : float;
  new_loss : bool;
}

type payload =
  | Plain
  | Ack of { cum_seq : int; sack : (int * int) list }
  | Rap_ack of { cum_seq : int; recv_rate : float }
  | Tfrc_data of { timestamp : float; rtt_estimate : float }
  | Tfrc_fb of tfrc_feedback
  | Tear_fb of {
      rate_pps : float;
      timestamp_echo : float;
      delay_echo : float;
    }

type t = {
  uid : int;
  flow : int;
  src : int;
  dst : int;
  size : int;
  seq : int;
  sent_at : float;
  payload : payload;
  mutable ecn : bool;
}

(* Atomic so that simulations running on parallel domains (Engine.Pool)
   still mint unique uids.  Uids only label packets for tracing/printing;
   no simulation logic depends on their values. *)
let uid_counter = Atomic.make 0

let make ?(size = 1000) ?(seq = 0) ?(payload = Plain) ~flow ~src ~dst ~sent_at
    () =
  let uid = 1 + Atomic.fetch_and_add uid_counter 1 in
  { uid; flow; src; dst; size; seq; sent_at; payload; ecn = false }

let is_ack t =
  match t.payload with
  | Ack _ | Rap_ack _ | Tfrc_fb _ | Tear_fb _ -> true
  | Plain | Tfrc_data _ -> false

let pp fmt t =
  Format.fprintf fmt "pkt#%d flow=%d %d->%d seq=%d size=%d" t.uid t.flow t.src
    t.dst t.seq t.size

let reset_uids () = Atomic.set uid_counter 0
