(* Physical-equality sentinel marking an empty dense slot; never called. *)
let no_agent : Packet.t -> unit = fun _ -> ()

(* Flow ids at or above this never enter the dense table on their own;
   [reserve] may still grow the table past it when a caller announces a
   larger id range up front. *)
let dense_limit = 1 lsl 20

type t = {
  id : int;
  routes : (int, Link.t) Hashtbl.t;
  mutable default_route : Link.t option;
  mutable agents_dense : (Packet.t -> unit) array;
      (* dense dispatch for small non-negative flow ids: delivery is a
         bounds-checked load instead of a hash probe *)
  agents : (int, Packet.t -> unit) Hashtbl.t;
      (* sparse fallback for negative or huge flow ids.  Invariant: a
         flow id inside the dense table's range lives only there, so the
         receive path needs a single range test. *)
  mutable discarded : int;
  mutable discard_hooks : (Packet.t -> unit) list;
}

let create ~id =
  {
    id;
    routes = Hashtbl.create 16;
    default_route = None;
    agents_dense = [||];
    agents = Hashtbl.create 16;
    discarded = 0;
    discard_hooks = [];
  }

let id t = t.id
let add_route t ~dst link = Hashtbl.replace t.routes dst link
let set_default_route t link = t.default_route <- Some link

let grow_dense t want =
  let cur = Array.length t.agents_dense in
  let target = max want (max 16 (2 * cur)) in
  let a = Array.make target no_agent in
  Array.blit t.agents_dense 0 a 0 cur;
  t.agents_dense <- a

let reserve t ~flows = if flows > Array.length t.agents_dense then grow_dense t flows

let[@inline] dense_id t flow =
  flow >= 0 && (flow < Array.length t.agents_dense || flow < dense_limit)

let attach t ~flow handler =
  if dense_id t flow then begin
    if flow >= Array.length t.agents_dense then grow_dense t (flow + 1);
    t.agents_dense.(flow) <- handler
  end
  else Hashtbl.replace t.agents flow handler

let detach t ~flow =
  if flow >= 0 && flow < Array.length t.agents_dense then
    t.agents_dense.(flow) <- no_agent
  else Hashtbl.remove t.agents flow

let on_discard t hook = t.discard_hooks <- hook :: t.discard_hooks

let rec run_hooks hooks pkt =
  match hooks with
  | [] -> ()
  | h :: rest ->
    h pkt;
    run_hooks rest pkt

(* The node is the last owner of a packet it discards; hooks observe it
   first, then pooled shells go back to the freelist (no-op otherwise). *)
let discard t pkt =
  t.discarded <- t.discarded + 1;
  run_hooks t.discard_hooks pkt;
  Packet.release pkt

(* Exception-style lookups on the sparse path: [Hashtbl.find_opt]
   allocates a [Some] per delivery, and this runs once per packet per
   hop.  The dense path is just a load and a physical-equality test. *)
let receive t (pkt : Packet.t) =
  if pkt.Packet.dst = t.id then begin
    let flow = pkt.Packet.flow in
    let dense = t.agents_dense in
    if flow >= 0 && flow < Array.length dense then begin
      let handler = Array.unsafe_get dense flow in
      if handler != no_agent then handler pkt else discard t pkt
    end
    else begin
      match Hashtbl.find t.agents flow with
      | handler -> handler pkt
      | exception Not_found -> discard t pkt
    end
  end
  else begin
    match Hashtbl.find t.routes pkt.Packet.dst with
    | l -> Link.send l pkt
    | exception Not_found -> (
      match t.default_route with
      | Some l -> Link.send l pkt
      | None -> discard t pkt)
  end

let inject = receive
let discarded t = t.discarded
