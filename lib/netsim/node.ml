type t = {
  id : int;
  routes : (int, Link.t) Hashtbl.t;
  mutable default_route : Link.t option;
  agents : (int, Packet.t -> unit) Hashtbl.t;
  mutable discarded : int;
  mutable discard_hooks : (Packet.t -> unit) list;
}

let create ~id =
  {
    id;
    routes = Hashtbl.create 16;
    default_route = None;
    agents = Hashtbl.create 16;
    discarded = 0;
    discard_hooks = [];
  }

let id t = t.id
let add_route t ~dst link = Hashtbl.replace t.routes dst link
let set_default_route t link = t.default_route <- Some link
let attach t ~flow handler = Hashtbl.replace t.agents flow handler
let detach t ~flow = Hashtbl.remove t.agents flow
let on_discard t hook = t.discard_hooks <- hook :: t.discard_hooks

let rec run_hooks hooks pkt =
  match hooks with
  | [] -> ()
  | h :: rest ->
    h pkt;
    run_hooks rest pkt

(* The node is the last owner of a packet it discards; hooks observe it
   first, then pooled shells go back to the freelist (no-op otherwise). *)
let discard t pkt =
  t.discarded <- t.discarded + 1;
  run_hooks t.discard_hooks pkt;
  Packet.release pkt

(* Exception-style lookups: [Hashtbl.find_opt] allocates a [Some] per
   delivery, and this runs once per packet per hop. *)
let receive t (pkt : Packet.t) =
  if pkt.Packet.dst = t.id then begin
    match Hashtbl.find t.agents pkt.Packet.flow with
    | handler -> handler pkt
    | exception Not_found -> discard t pkt
  end
  else begin
    match Hashtbl.find t.routes pkt.Packet.dst with
    | l -> Link.send l pkt
    | exception Not_found -> (
      match t.default_route with
      | Some l -> Link.send l pkt
      | None -> discard t pkt)
  end

let inject = receive
let discarded t = t.discarded
