type t = {
  id : int;
  routes : (int, Link.t) Hashtbl.t;
  mutable default_route : Link.t option;
  agents : (int, Packet.t -> unit) Hashtbl.t;
  mutable discarded : int;
}

let create ~id =
  {
    id;
    routes = Hashtbl.create 16;
    default_route = None;
    agents = Hashtbl.create 16;
    discarded = 0;
  }

let id t = t.id
let add_route t ~dst link = Hashtbl.replace t.routes dst link
let set_default_route t link = t.default_route <- Some link
let attach t ~flow handler = Hashtbl.replace t.agents flow handler
let detach t ~flow = Hashtbl.remove t.agents flow

(* Exception-style lookups: [Hashtbl.find_opt] allocates a [Some] per
   delivery, and this runs once per packet per hop. *)
let receive t (pkt : Packet.t) =
  if pkt.Packet.dst = t.id then begin
    match Hashtbl.find t.agents pkt.Packet.flow with
    | handler -> handler pkt
    | exception Not_found -> t.discarded <- t.discarded + 1
  end
  else begin
    match Hashtbl.find t.routes pkt.Packet.dst with
    | l -> Link.send l pkt
    | exception Not_found -> (
      match t.default_route with
      | Some l -> Link.send l pkt
      | None -> t.discarded <- t.discarded + 1)
  end

let inject = receive
let discarded t = t.discarded
