let make ~capacity =
  if capacity <= 0 then invalid_arg "Droptail.make: capacity must be positive";
  let q = Pktq.create () in
  let bytes = ref 0 in
  let enqueued = ref 0 in
  let dropped = ref 0 in
  let peak_pkts = ref 0 in
  let enqueue (pkt : Packet.t) : Queue_intf.action =
    if Pktq.length q >= capacity then begin
      incr dropped;
      Queue_intf.Dropped
    end
    else begin
      Pktq.add q pkt;
      bytes := !bytes + pkt.Packet.size;
      incr enqueued;
      if Pktq.length q > !peak_pkts then peak_pkts := Pktq.length q;
      Queue_intf.Enqueued
    end
  in
  let dequeue () =
    match Pktq.take_opt q with
    | None -> None
    | Some pkt ->
      bytes := !bytes - pkt.Packet.size;
      if Engine.Audit.invariants_on () && !bytes < 0 then
        Engine.Audit.fail
          "Droptail: byte occupancy went negative (%d) after dequeueing \
           pkt of %d bytes"
          !bytes pkt.Packet.size;
      Some pkt
  in
  {
    Queue_intf.name = "droptail";
    enqueue;
    dequeue;
    pkts = (fun () -> Pktq.length q);
    bytes = (fun () -> !bytes);
    counters =
      (fun () ->
        [
          ("enqueued", !enqueued);
          ("dropped", !dropped);
          ("peak_pkts", !peak_pkts);
        ]);
  }
