(** Hybrid fluid/packet fast-forward controller.

    The policy half of {!Engine.Fastforward}: a periodic sampler feeds
    the steady-state detector with the watched link's loss rate and
    queue occupancy; when the window is stable and no scheduled
    transient is near, every attached flow is frozen at the packet
    level and advanced analytically (AIMD sawtooth average, the TFRC
    equation, or the configured CBR rate — {!Cc.Flow.ff_ops}), with a
    thaw scheduled strictly [guard] seconds before the next transient
    or at the [max_span] re-check horizon.  On thaw each flow re-seeds
    exact packet state and packet-level simulation resumes (the re-seed
    contract in DESIGN §11).

    Analytic rates set only the flows' relative shares; the measured
    aggregate delivered rate over the detector window sets the total,
    and drops are credited so loss probes read a consistent loss rate
    across the freeze. *)

type config = {
  sample_dt : float;  (** detector sampling / credit-materialization period *)
  detector : Engine.Fastforward.Detector.config;
  guard : float;  (** thaw this many seconds before a transient *)
  min_span : float;  (** do not arm for freezes shorter than this *)
  max_span : float;  (** re-check horizon when no transient is scheduled *)
  model_tol : float;
      (** arm only when the measured aggregate rate is within this
          relative tolerance of the analytic models' prediction at the
          measured loss rate — the gate that keeps young flows
          (slow-start overshoot, sawtooths longer than the detector
          window) from being frozen at unrepresentative rates *)
}

(** 0.25 s sampling, default detector, 1 s guard, 3 s minimum span,
    120 s horizon, 25% model tolerance. *)
val default_config : config

type event = Arm | Thaw

type t

(** [create ~sim ~link ~flows ~transients ()] attaches a controller to
    [link]'s loss/occupancy signal.  [flows] traverse the link: their
    fluid packets are credited to it and their rates are scaled to the
    measured aggregate.  [aux] flows (e.g. reverse-path traffic) are
    frozen with the others but advance at their own analytic rate and
    touch only their own counters.  Flows without {!Cc.Flow.ff_ops}
    (short transfers, senders without analytic models) are ignored and
    keep running at packet level.  [transients] lists absolute times of
    scheduled disturbances (CBR edges, flash-crowd arrivals); the
    controller always thaws at least [guard] seconds before each.
    [metrics] registers [ff.entries]/[ff.exits] counters and an
    [ff.skipped_sim_s] gauge. *)
val create :
  ?config:config ->
  ?metrics:Engine.Metrics.t ->
  ?aux:Cc.Flow.t list ->
  sim:Engine.Sim.t ->
  link:Netsim.Link.t ->
  flows:Cc.Flow.t list ->
  transients:float list ->
  unit ->
  t

(** [maybe_attach] is {!create} gated on {!Engine.Sim.fastforward}:
    [None] (no controller, zero overhead) unless the simulator was
    created with fast-forward [On].  Scenario builders call this
    unconditionally. *)
val maybe_attach :
  ?config:config ->
  ?metrics:Engine.Metrics.t ->
  ?aux:Cc.Flow.t list ->
  sim:Engine.Sim.t ->
  link:Netsim.Link.t ->
  flows:Cc.Flow.t list ->
  transients:float list ->
  unit ->
  t option

(** {2 Introspection} (tests / instrumentation) *)

val armed : t -> bool

(** Freeze entries / exits of this controller. *)
val entries : t -> int

val exits : t -> int

(** Total simulated seconds spent frozen (fluid-advanced). *)
val skipped_sim_seconds : t -> float

(** Chronological (time, event) log of arms and thaws. *)
val events : t -> (float * event) list
