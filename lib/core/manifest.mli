(** Run manifests: a machine-readable record of what an experiment run
    produced.  Each run directory gets a [manifest.json] describing the
    experiment, its parameters and per-table content digests, plus the
    tables themselves as CSV and/or JSONL.

    The manifest separates the {e run} section (what was computed — must
    be byte-identical at any [--jobs N]) from the {e timing} section
    (wall-clock and worker count, which legitimately vary).  The
    top-level [digest] field is the MD5 of the serialized run section. *)

type emit = Csv | Jsonl | Both

val emit_of_string : string -> emit option
val emit_to_string : emit -> string

(** MD5 hex digest over a table's id, title, columns, rows and notes,
    with length-prefixed fields so distinct tables cannot collide by
    concatenation. *)
val table_digest : Table.t -> string

(** One minified JSON object per row:
    [{"row": i, "cells": {"<col>": "<raw cell>", ...}}].  Cells keep the
    exact strings of the table. *)
val jsonl_of_table : Table.t -> string

(** [save_jsonl ~dir t] writes [dir/<id>.jsonl] and returns its path. *)
val save_jsonl : dir:string -> Table.t -> string

(** [save_table ~dir ~emit t] writes the table in the requested
    format(s) and returns the paths written. *)
val save_table : dir:string -> emit:emit -> Table.t -> string list

(** The digested portion of the manifest.  Exposed so tests can compare
    the exact bytes across worker counts. *)
val run_section :
  experiment:string ->
  quick:bool ->
  params:(string * Engine.Json.t) list ->
  tables:Table.t list ->
  Engine.Json.t

(** Full manifest document as a string (trailing newline included).
    [cache], when a result cache served the run, is [(hits, misses,
    fingerprint)]; it is recorded in the (non-digested) timing section —
    a verified hit reproduces the exact bytes a fresh simulation would,
    so cache state is engine configuration, not experiment identity.
    [backend] likewise records which pool backend executed the sweep
    (["domain"] or ["proc"]) in the timing section; both backends produce
    identical table bytes, so it never enters the digest. *)
val render :
  ?cache:int * int * string ->
  ?backend:string ->
  experiment:string ->
  quick:bool ->
  params:(string * Engine.Json.t) list ->
  emit:emit ->
  jobs:int ->
  wall_s:float ->
  tables:Table.t list ->
  unit ->
  string

(** [write ~dir ... tables] saves every table (per [emit]) plus
    [dir/manifest.json]; returns the manifest path. *)
val write :
  ?cache:int * int * string ->
  ?backend:string ->
  dir:string ->
  experiment:string ->
  quick:bool ->
  params:(string * Engine.Json.t) list ->
  emit:emit ->
  jobs:int ->
  wall_s:float ->
  Table.t list ->
  string

(** Extract the top-level ["digest"] field from a manifest file without
    a JSON parser (first occurrence wins).  [None] when absent. *)
val digest_of_file : string -> string option
