(* Hybrid fluid/packet fast-forward controller (Engine.Fastforward's
   policy half).

   One controller watches one bottleneck link.  A periodic sampler feeds
   the steady-state detector with per-tick loss rate and queue
   occupancy; when the window is stable and no scheduled transient is
   near, the controller ARMS: every attached flow is frozen at the
   packet level ([Flow.ff_suspend]) and a thaw event is scheduled
   strictly [guard] seconds before the next transient (or at the
   re-check horizon [max_span]).  While armed, the only recurring work
   is the sampler tick itself, which folds fluid-model traffic into the
   flow and link counters at the flows' analytic steady-state rates —
   probes see smooth progress, and the simulator clock hops between
   sparse events instead of per-packet ones.  That hop IS the
   fast-forward: no clock surgery happens anywhere.

   Analytic rates come from each flow's own model ([Flow.ff_rate_pps]:
   AIMD sawtooth average for windowed senders, the TFRC equation for
   TFRC, the configured rate for CBR) and set only the SHARES; the
   measured aggregate delivered rate over the detector window sets the
   TOTAL.  Scaling the shares to the measured total keeps the fluid
   interval consistent with the bandwidth actually available on the
   link, whatever untracked traffic (reverse acks, short transfers)
   is also using it.  Sent = delivered / (1 - p) packets are credited,
   the difference dropped, so loss-ratio probes read the same p across
   the freeze.

   On thaw every flow re-seeds exact packet state for the detected
   steady state ([Flow.ff_resume], the re-seed contract of DESIGN §11)
   and packet-level simulation resumes; the queue refills within about
   one RTT, which is the approximation the digest policy accepts for
   ff-enabled runs. *)

type config = {
  sample_dt : float;
  detector : Engine.Fastforward.Detector.config;
  guard : float;
  min_span : float;
  max_span : float;
  model_tol : float;
}

let default_config =
  {
    sample_dt = 0.25;
    detector = Engine.Fastforward.Detector.default_config;
    guard = 1.0;
    min_span = 3.0;
    max_span = 120.0;
    model_tol = 0.25;
  }

type event = Arm | Thaw

(* One frozen flow.  [scaled] flows traverse the watched link: their
   delivered rate is a share of the measured aggregate and their fluid
   packets are credited to the link.  Unscaled (auxiliary) flows — e.g.
   reverse-path traffic — advance at their own analytic rate and touch
   only their own counters. *)
type slot = {
  ops : Cc.Flow.ff_ops;
  bytes_delivered : unit -> float;
  scaled : bool;
  mutable del_pps : float;  (* delivered rate while armed *)
  mutable drop_pps : float;
  mutable acc_del : float;  (* fractional-packet accumulators *)
  mutable acc_drop : float;
}

type t = {
  sim : Engine.Sim.t;
  link : Netsim.Link.t;
  cfg : config;
  det : Engine.Fastforward.Detector.t;
  slots : slot array;
  transients : float array;  (* sorted ascending *)
  (* per-tick deltas for the loss and rate samples *)
  mutable last_arrivals : int;
  mutable last_drops : int;
  mutable last_bytes : float;
  (* trailing rings of per-tick deltas, [window] long.  Detector samples
     are trailing aggregates over these, not raw per-tick values: a
     0.25 s tick carries only ~100 packets, so a raw per-tick loss rate
     is binomial noise that would keep the band test failing through a
     perfectly steady interval.  Aggregating over the window divides the
     noise by sqrt(window) and makes consecutive samples share most of
     their data, so the band closes quickly in steady state while a
     macro trend still walks the trailing values out of band. *)
  s_arr : int array;
  s_drop : int array;
  s_occ : float array;
  s_rate : float array;
  mutable s_n : int;
  mutable s_head : int;
  (* ring of (time, sum of tracked flows' delivered bytes) snapshots,
     aligned with detector samples, for the measured aggregate rate;
     [ring_s] additionally snapshots each slot's own delivered bytes so
     the model-agreement gate can check flows individually (aggregate
     agreement can hide one young flow's error cancelling another's) *)
  ring_t : float array;
  ring_b : float array;
  ring_s : float array array;  (* (window + 1) x slots *)
  mutable ring_n : int;  (* valid entries, <= window + 1 *)
  mutable ring_head : int;
  (* freeze state *)
  mutable armed : bool;
  mutable p : float;
  mutable armed_at : float;
  mutable thaw_at : float;
  mutable last_mat : float;  (* time fluid credit was last materialized *)
  (* accounting *)
  mutable entries : int;
  mutable exits : int;
  mutable skipped_s : float;
  mutable events : (float * event) list;  (* reverse chronological *)
  metrics : (Engine.Metrics.counter * Engine.Metrics.counter * Engine.Metrics.gauge) option;
}

let tracked_bytes t =
  let sum = ref 0. in
  Array.iter (fun s -> if s.scaled then sum := !sum +. s.bytes_delivered ()) t.slots;
  !sum

let ring_push t time bytes =
  let cap = Array.length t.ring_t in
  let i = (t.ring_head + t.ring_n) mod cap in
  if t.ring_n = cap then t.ring_head <- (t.ring_head + 1) mod cap
  else t.ring_n <- t.ring_n + 1;
  t.ring_t.(i) <- time;
  t.ring_b.(i) <- bytes;
  Array.iteri (fun j s -> t.ring_s.(i).(j) <- s.bytes_delivered ()) t.slots

let ring_reset t = t.ring_n <- 0

(* Push one tick's deltas and return the trailing (loss, occupancy,
   rate) aggregates over the ring. *)
let smooth_push t ~arr ~drop ~occ ~rate =
  let cap = Array.length t.s_arr in
  t.s_arr.(t.s_head) <- arr;
  t.s_drop.(t.s_head) <- drop;
  t.s_occ.(t.s_head) <- occ;
  t.s_rate.(t.s_head) <- rate;
  t.s_head <- (t.s_head + 1) mod cap;
  if t.s_n < cap then t.s_n <- t.s_n + 1;
  let arrs = ref 0 and drops = ref 0 and occs = ref 0. and rates = ref 0. in
  for i = 0 to t.s_n - 1 do
    arrs := !arrs + t.s_arr.(i);
    drops := !drops + t.s_drop.(i);
    occs := !occs +. t.s_occ.(i);
    rates := !rates +. t.s_rate.(i)
  done;
  let n = float_of_int t.s_n in
  let loss =
    if !arrs > 0 then float_of_int !drops /. float_of_int !arrs else 0.
  in
  (loss, !occs /. n, !rates /. n)

let smooth_reset t =
  t.s_n <- 0;
  t.s_head <- 0

(* Measured delivered rate (bytes/s) of the tracked flows across the
   ring; 0 until the ring is full. *)
let measured_bps t =
  let cap = Array.length t.ring_t in
  if t.ring_n < cap then 0.
  else begin
    let oldest = t.ring_head in
    let newest = (t.ring_head + t.ring_n - 1) mod cap in
    let dt = t.ring_t.(newest) -. t.ring_t.(oldest) in
    if dt <= 0. then 0. else (t.ring_b.(newest) -. t.ring_b.(oldest)) /. dt
  end

(* Measured delivered rate (bytes/s) of one slot across the ring. *)
let measured_slot_bps t j =
  let cap = Array.length t.ring_t in
  if t.ring_n < cap then 0.
  else begin
    let oldest = t.ring_head in
    let newest = (t.ring_head + t.ring_n - 1) mod cap in
    let dt = t.ring_t.(newest) -. t.ring_t.(oldest) in
    if dt <= 0. then 0.
    else (t.ring_s.(newest).(j) -. t.ring_s.(oldest).(j)) /. dt
  end

let next_transient t ~after =
  let n = Array.length t.transients in
  let rec find i =
    if i >= n then Float.infinity
    else if t.transients.(i) > after then t.transients.(i)
    else find (i + 1)
  in
  find 0

(* Fold [now - last_mat] seconds of fluid traffic into flow and link
   counters.  Integer packets only; fractional remainders carry over in
   per-slot accumulators so long freezes lose nothing to rounding. *)
let materialize t =
  let now = Engine.Sim.now t.sim in
  let dt = now -. t.last_mat in
  if dt > 0. then begin
    t.last_mat <- now;
    let link_del = ref 0 and link_drop = ref 0 and link_bytes = ref 0 in
    Array.iter
      (fun s ->
        s.acc_del <- s.acc_del +. (s.del_pps *. dt);
        s.acc_drop <- s.acc_drop +. (s.drop_pps *. dt);
        let d = int_of_float s.acc_del in
        let dr = int_of_float s.acc_drop in
        if d > 0 then s.acc_del <- s.acc_del -. float_of_int d;
        if dr > 0 then s.acc_drop <- s.acc_drop -. float_of_int dr;
        if d > 0 || dr > 0 then begin
          s.ops.Cc.Flow.ff_credit ~sent:(d + dr) ~delivered:d;
          if s.scaled then begin
            link_del := !link_del + d;
            link_drop := !link_drop + dr;
            link_bytes := !link_bytes + (d * s.ops.Cc.Flow.ff_pkt_size)
          end
        end)
      t.slots;
    if !link_del > 0 || !link_drop > 0 then
      Netsim.Link.ff_credit t.link ~delivered:!link_del ~dropped:!link_drop
        ~bytes:!link_bytes
  end

let thaw t =
  if t.armed then begin
    materialize t;
    let now = Engine.Sim.now t.sim in
    Array.iter
      (fun s -> s.ops.Cc.Flow.ff_resume ~p:(if s.scaled then t.p else 0.))
      t.slots;
    t.armed <- false;
    t.exits <- t.exits + 1;
    let skipped = now -. t.armed_at in
    t.skipped_s <- t.skipped_s +. skipped;
    Engine.Fastforward.note_exit ~skipped_s:skipped;
    (match t.metrics with
    | Some (_, exits, gauge) ->
      Engine.Metrics.incr exits;
      Engine.Metrics.set gauge t.skipped_s
    | None -> ());
    t.events <- (now, Thaw) :: t.events;
    Engine.Fastforward.Detector.reset t.det;
    ring_reset t;
    smooth_reset t;
    (* Re-baseline the per-tick deltas so the first post-thaw sample
       covers only real packet traffic, not the fluid credit. *)
    t.last_arrivals <- Netsim.Link.arrivals t.link;
    t.last_drops <- Netsim.Link.drops t.link;
    t.last_bytes <- tracked_bytes t
  end

let try_arm t =
  let now = Engine.Sim.now t.sim in
  let thaw_time =
    Float.min
      (next_transient t ~after:now -. t.cfg.guard)
      (now +. t.cfg.max_span)
  in
  if thaw_time -. now >= t.cfg.min_span then begin
    let p =
      Float.max 0. (Float.min 0.5 (Engine.Fastforward.Detector.mean_loss t.det))
    in
    let measured = measured_bps t in
    (* Analytic shares; the measured aggregate sets the total. *)
    let total_bps = ref 0. in
    Array.iter
      (fun s ->
        if s.scaled then begin
          s.del_pps <- s.ops.Cc.Flow.ff_rate_pps ~p;
          total_bps :=
            !total_bps +. (s.del_pps *. float_of_int s.ops.Cc.Flow.ff_pkt_size)
        end)
      t.slots;
    (* Model-agreement gate: the detector can only see that the link
       looks flat, not that the flows are in the steady state the
       analytic models describe.  Freezing a young flow (slow-start
       overshoot, droptail sawtooths longer than the window) at an
       unrepresentative rate is where hybrid error comes from, and in
       exactly those states the measured aggregate disagrees with the
       models' prediction at the measured loss rate.  Requiring the
       scale factor to sit near 1 bounds the approximation error by
       construction: we only advance when model ≈ measurement. *)
    let in_band ~tol a b =
      a > 0. && b > 0. && a /. b <= 1. +. tol && b /. a <= 1. +. tol
    in
    let model_ok measured total =
      in_band ~tol:t.cfg.model_tol measured total
      &&
      (* Per-flow agreement (at twice the aggregate tolerance — single
         flows are noisier) for every flow carrying a significant share;
         tiny flows can't move the aggregate and their ratios are mostly
         measurement noise.  Auxiliary flows are held to the same test
         against the p=0 analytic rate they would be frozen at: a
         reverse-path flow still ramping up is exactly as mis-frozen as
         a forward one, and it can't hide behind the aggregate check
         because it never contributes to the watched link. *)
      let ok = ref true in
      Array.iteri
        (fun j s ->
          let a =
            if s.scaled then
              s.del_pps *. float_of_int s.ops.Cc.Flow.ff_pkt_size
            else
              s.ops.Cc.Flow.ff_rate_pps ~p:0.
              *. float_of_int s.ops.Cc.Flow.ff_pkt_size
          in
          let m = measured_slot_bps t j in
          if
            Float.max m a > 0.05 *. measured
            && not (in_band ~tol:(2. *. t.cfg.model_tol) m a)
          then ok := false)
        t.slots;
      !ok
    in
    if model_ok measured !total_bps then begin
      let scale = measured /. !total_bps in
      Array.iter
        (fun s ->
          if s.scaled then begin
            s.del_pps <- s.del_pps *. scale;
            s.drop_pps <-
              (if p > 0. && p < 1. then s.del_pps *. p /. (1. -. p) else 0.)
          end
          else begin
            s.del_pps <- s.ops.Cc.Flow.ff_rate_pps ~p:0.;
            s.drop_pps <- 0.
          end;
          s.acc_del <- 0.;
          s.acc_drop <- 0.;
          s.ops.Cc.Flow.ff_suspend ())
        t.slots;
      t.armed <- true;
      t.p <- p;
      t.armed_at <- now;
      t.thaw_at <- thaw_time;
      t.last_mat <- now;
      t.entries <- t.entries + 1;
      Engine.Fastforward.note_entry ();
      (match t.metrics with
      | Some (entries, _, _) -> Engine.Metrics.incr entries
      | None -> ());
      t.events <- (now, Arm) :: t.events;
      Engine.Sim.at t.sim thaw_time (fun () -> thaw t)
    end
  end

let tick t =
  if t.armed then materialize t
  else begin
    let arrivals = Netsim.Link.arrivals t.link in
    let drops = Netsim.Link.drops t.link in
    let da = arrivals - t.last_arrivals and dd = drops - t.last_drops in
    t.last_arrivals <- arrivals;
    t.last_drops <- drops;
    let occ =
      float_of_int ((Netsim.Link.queue t.link).Netsim.Queue_intf.pkts ())
    in
    let bytes = tracked_bytes t in
    let tick_rate = (bytes -. t.last_bytes) /. t.cfg.sample_dt in
    t.last_bytes <- bytes;
    let loss, occupancy, rate =
      smooth_push t ~arr:da ~drop:dd ~occ ~rate:tick_rate
    in
    Engine.Fastforward.Detector.observe t.det ~loss ~occupancy ~rate;
    ring_push t (Engine.Sim.now t.sim) bytes;
    if Engine.Fastforward.Detector.stable t.det then try_arm t
  end

let create ?(config = default_config) ?metrics ?(aux = []) ~sim ~link
    ~flows ~transients () =
  if config.sample_dt <= 0. then invalid_arg "Fluid.create: sample_dt > 0";
  if config.guard < 0. || config.min_span <= 0. || config.max_span <= 0. then
    invalid_arg "Fluid.create: negative span/guard";
  let slot scaled (f : Cc.Flow.t) =
    match f.Cc.Flow.ff with
    | None -> None
    | Some ops ->
      Some
        {
          ops;
          bytes_delivered = f.Cc.Flow.bytes_delivered;
          scaled;
          del_pps = 0.;
          drop_pps = 0.;
          acc_del = 0.;
          acc_drop = 0.;
        }
  in
  let slots =
    List.filter_map (slot true) flows @ List.filter_map (slot false) aux
  in
  let det = Engine.Fastforward.Detector.create ~config:config.detector () in
  let window = config.detector.Engine.Fastforward.Detector.window in
  let t =
    {
      sim;
      link;
      cfg = config;
      det;
      slots = Array.of_list slots;
      transients =
        (let a = Array.of_list transients in
         Array.sort Float.compare a;
         a);
      last_arrivals = Netsim.Link.arrivals link;
      last_drops = Netsim.Link.drops link;
      last_bytes = 0.;
      ring_t = Array.make (window + 1) 0.;
      ring_b = Array.make (window + 1) 0.;
      ring_s =
        Array.init (window + 1) (fun _ ->
            Array.make (List.length slots) 0.);
      ring_n = 0;
      ring_head = 0;
      s_arr = Array.make window 0;
      s_drop = Array.make window 0;
      s_occ = Array.make window 0.;
      s_rate = Array.make window 0.;
      s_n = 0;
      s_head = 0;
      armed = false;
      p = 0.;
      armed_at = 0.;
      thaw_at = 0.;
      last_mat = 0.;
      entries = 0;
      exits = 0;
      skipped_s = 0.;
      events = [];
      metrics =
        (match metrics with
        | None -> None
        | Some reg ->
          Some
            ( Engine.Metrics.counter reg "ff.entries",
              Engine.Metrics.counter reg "ff.exits",
              Engine.Metrics.gauge reg "ff.skipped_sim_s" ));
    }
  in
  Engine.Sim.every sim ~interval:config.sample_dt (fun () -> tick t);
  t

(* Attach a controller iff the simulator was created with fast-forward
   on; scenario code calls this unconditionally. *)
let maybe_attach ?config ?metrics ?aux ~sim ~link ~flows ~transients () =
  match Engine.Sim.fastforward sim with
  | Engine.Fastforward.Off -> None
  | Engine.Fastforward.On ->
    Some (create ?config ?metrics ?aux ~sim ~link ~flows ~transients ())

let armed t = t.armed
let entries t = t.entries
let exits t = t.exits
let skipped_sim_seconds t = t.skipped_s
let events t = List.rev t.events
