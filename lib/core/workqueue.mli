(** Persistent work queue for distributed sweeps: the coordination layer
    of the process-pool backend.

    A queue is a directory (by convention created {e inside} a result
    cache directory) holding one file per job.  Workers are ordinary
    processes — [slowcc_run worker <queue-dir>] invocations, forked
    benchmark children, or processes on another machine sharing the
    filesystem — that claim jobs with an atomic [rename(2)], execute
    them through {!Experiments.run_cached} (publishing result bytes as
    content-addressed cache entries), and mark completion.  Because
    results flow through the cache, the coordinator reassembles output
    in submission order by cache lookup: bytes are identical to a serial
    run by construction, and a job executed twice (crash recovery)
    merely overwrites a cache entry with identical content.

    {2 File states}

    {v
    <dir>/queue.json                    schema, fingerprint, quick, job list
    <dir>/todo/NNN-<unit>               claimable (NNN = LPT rank)
    <dir>/claims/NNN-<unit>.claim.<worker>.<expiry-ms>   claimed, leased
    <dir>/done/NNN-<unit>               completion marker (ok or failed)
    v}

    A job moves [todo -> claims] by rename (exactly one winner), then
    [-> done] by an atomic marker write.  The claim filename carries the
    worker id and lease expiry, so a crashed worker's claim is visible
    to everyone without reading file contents or trusting mtimes; any
    process may requeue an expired claim ([claims -> todo], again one
    rename winner).  Jobs that {e fail} (the run function raises) write
    a [done] marker with [ok = false] and are not retried — the
    coordinator recomputes them locally at assembly time; jobs whose
    worker {e dies} leave their claim to expire and are retried.

    The module is wall-clock- and OS-agnostic: callers supply [now]
    (Unix epoch seconds) and [sleep], so the core library keeps its
    no-unix-dependency rule and tests can compress time. *)

type job = {
  index : int;  (** submission index — the assembly order *)
  name : string;  (** experiment unit id, e.g. ["fig7"] *)
  est_wall_s : float option;
      (** LPT estimate recorded at seed time, from the timing store *)
}

type t

val dir : t -> string
val fingerprint : t -> string
val quick : t -> bool

(** Jobs in submission order, as seeded. *)
val jobs : t -> job list

(** [seed ~dir ~fingerprint ~quick ~jobs] creates the queue directory
    and one claimable file per [(unit, estimate)] pair.  Claim files are
    named by longest-processing-time-first rank, so workers scanning the
    directory in sorted order pick expensive jobs first; ties and absent
    estimates keep submission order.  Raises [Sys_error] if [dir] already
    contains a queue. *)
val seed :
  dir:string ->
  fingerprint:string ->
  quick:bool ->
  jobs:(string * float option) list ->
  t

(** Open an existing queue (reads [queue.json]). *)
val load : dir:string -> (t, string) result

(** A successfully claimed job; pass it back to {!finish}. *)
type claimed

val claimed_job : claimed -> job

(** [try_claim t ~worker ~now ~lease_s] scans claimable jobs in rank
    order and atomically takes the first one, leasing it until
    [now + lease_s].  [None] when nothing is claimable (the queue may
    still hold outstanding claims — see {!drained}).  [worker] must be
    filename-safe ([A-Za-z0-9-]); {!sanitize_worker} enforces this. *)
val try_claim :
  t -> worker:string -> now:float -> lease_s:float -> claimed option

(** Write the completion marker ([Ok] or failed-with-message) and drop
    the claim.  Atomic (temp + rename); a duplicate completion from a
    recovered job overwrites with equivalent content. *)
val finish :
  t -> claimed -> wall_s:float -> result:(unit, string) result -> unit

(** Requeue every claim whose lease expired before [now]; returns how
    many moved.  Safe to call from any process at any time — each
    rename has one winner, and a zombie worker that later completes
    anyway just overwrites the same done marker. *)
val requeue_expired : t -> now:float -> int

type status = {
  todo : int;
  claimed : int;
  complete : int;  (** done markers, failed ones included *)
  total : int;  (** jobs at seed time *)
}

val status : t -> status

(** No claimable jobs and no outstanding claims: every job has reached
    a done marker (or the queue was seeded empty). *)
val drained : t -> bool

(** Units whose done marker records a worker-side failure; the
    coordinator recomputes these locally. *)
val failed_units : t -> string list

(** [worker_loop t ~worker ~now ~sleep ~lease_s ~poll_s ~run] claims and
    executes jobs until the queue drains, then returns the number of
    jobs this worker completed.  When nothing is claimable but claims
    are outstanding, it requeues expired leases and naps [poll_s] —
    picking up crashed peers' work.  Exceptions from [run] mark the job
    failed (not retried) and the loop continues. *)
val worker_loop :
  t ->
  worker:string ->
  now:(unit -> float) ->
  sleep:(float -> unit) ->
  lease_s:float ->
  poll_s:float ->
  run:(job -> unit) ->
  int

(** Map an arbitrary worker id (e.g. ["host.example.com:1234"]) to the
    filename-safe alphabet claims use. *)
val sanitize_worker : string -> string

(** Delete the queue directory and everything in it.  Foreign files in
    the directory are removed too — the directory is queue-owned by
    construction. *)
val delete : t -> unit
