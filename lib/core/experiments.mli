(** One runner per table/figure of the paper's evaluation.

    Each function runs the corresponding scenario(s) and renders a
    {!Table.t} whose series mirror what the figure plots.  [quick] shrinks
    parameter sweeps and durations for smoke testing; the shapes survive
    but absolute values get noisier.

    Figures 1 and 2 of the paper are illustrative diagrams with no data.
    Figure pairs sharing simulations are computed together (4+5, 14+15).

    Every sweep is a list of closed, independently-seeded simulation jobs;
    passing [pool] fans the jobs out across that pool's worker domains
    (see {!Engine.Pool}).  Results are reassembled in deterministic order,
    so each table is bit-identical for any worker count. *)

val fig3 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig4_fig5 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t * Table.t
val fig6 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig7 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig8 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig9 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig10 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig11 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig12 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig13 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig14_fig15 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t * Table.t
val fig16 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig17 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig18 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig19 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
val fig20 : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t

(** Ablations beyond the paper's figures. *)

(** Self-clocking on/off across gamma for TFRC — isolates the effect the
    paper attributes to packet conservation. *)
val ablation_self_clocking : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t

(** Sweep of the conservative option's C constant. *)
val ablation_conservative_c : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t

(** Droptail instead of RED for the Figure 4/5 scenario (the paper notes
    the self-clocking benefit holds under droptail too). *)
val ablation_droptail : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t

(** TCP-vs-TFRC fairness under square, sawtooth and reverse-sawtooth CBR
    shapes (Section 4.2.1's in-text claim). *)
val ablation_sawtooth : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t

(** Measured TCP throughput under random loss across the whole loss range,
    against the Figure 20 analytic bounds (Appendix A validation). *)
val ablation_response_sim : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t

(** Throughput bias between a 50 ms and a 150 ms flow of each protocol. *)
val ablation_rtt_fairness : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t

(** Smoothness/throughput sweep of the binomial family along k + l = 1. *)
val ablation_binomial_l : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t

(** Queue occupancy statistics per protocol under RED and droptail. *)
val ablation_queue_dynamics : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t

(** TCP/TFRC throughput ratio under 3:1 vs 10:1 oscillations. *)
val ablation_10to1_fairness : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t

(** The modern-CC protocol zoo (BBR-style, Vegas-style, TCP as yardstick)
    through the paper's four dynamic scenarios — CBR restart, oscillating
    bandwidth, flash crowd, designed loss pattern — one row per family,
    one closed sweep job per (family, scenario) pair. *)
val zoo_gauntlet : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t

(** All experiment tables in figure order (ablations included last).
    [emit] is called on each table as soon as it is computed, for
    streaming output during long runs.  [cache]/[now] are as in
    {!run_cached}: each unit (figure pair, ablation, ...) hits or misses
    the cache independently. *)
val all :
  ?emit:(Table.t -> unit) ->
  ?quick:bool ->
  ?pool:Engine.Pool.t ->
  ?cache:Result_cache.t ->
  ?now:(unit -> float) ->
  unit ->
  Table.t list

(** Names accepted by {!run_by_name}. *)
val names : string list

(** Units of computation for the full suite: {!names} minus the second
    member of each figure pair computed by one sweep (fig5, fig15).
    These are the jobs of the process backend — one work-queue entry, and
    one cache entry, per unit. *)
val all_units : string list

(** Run one experiment by id ("fig3" ... "fig20", "ablation-..."). *)
val run_by_name :
  ?quick:bool -> ?pool:Engine.Pool.t -> string -> Table.t list option

(** Scenario parameters recorded in a run manifest for the named
    experiment (empty for unknown names and parameter-free tables).  The
    record is part of the result-cache key, so any change to it forces a
    re-simulation.  For the combined id ["all"] the record embeds one
    object per experiment name, keeping provenance complete in combined
    manifests. *)
val params : ?quick:bool -> string -> (string * Engine.Json.t) list

(** {!run_by_name} through the result cache.  On a hit the tables come
    from disk (digest-verified); on a miss the experiment runs inside a
    timing scope — each sweep job's wall time (per [now], default
    [Sys.time]) is recorded into the cache's timing store and the
    previous run's measurements order the pool's execution longest-first.
    With [cache] absent this is exactly {!run_by_name}. *)
val run_cached :
  ?quick:bool ->
  ?pool:Engine.Pool.t ->
  ?cache:Result_cache.t ->
  ?now:(unit -> float) ->
  string ->
  Table.t list option

(** Total measured wall seconds of the named unit's jobs from the cache's
    timing store ({!Result_cache.timing_sum} under the unit's scope
    label) — the cost estimate the process backend seeds its work queue
    with.  [None] until the unit has been measured by this binary. *)
val unit_cost : cache:Result_cache.t -> quick:bool -> string -> float option

(** [run_to_dir ~dir ~jobs name] runs the experiment (through [cache]
    when given) and writes its tables (per [emit], default [Both]) plus
    [dir/manifest.json]; returns the manifest path and the tables, or
    [None] for an unknown name.  [jobs] is recorded in the manifest's
    timing section only — it does not create a pool; pass [pool] for
    parallel sweeps.  [now] supplies the wall clock for the timing
    section (defaults to [Sys.time]).  When [cache] is given the timing
    section also records this run's cache hits/misses and the code
    fingerprint.  [backend], when given, is recorded in the timing
    section as the pool backend that executed the sweep. *)
val run_to_dir :
  ?quick:bool ->
  ?pool:Engine.Pool.t ->
  ?cache:Result_cache.t ->
  ?backend:string ->
  ?emit:Manifest.emit ->
  ?now:(unit -> float) ->
  dir:string ->
  jobs:int ->
  string ->
  (string * Table.t list) option

(** Like {!run_to_dir} for the full suite under experiment id "all".
    [stream] is invoked on each table as soon as it is computed. *)
val all_to_dir :
  ?stream:(Table.t -> unit) ->
  ?quick:bool ->
  ?pool:Engine.Pool.t ->
  ?cache:Result_cache.t ->
  ?backend:string ->
  ?emit:Manifest.emit ->
  ?now:(unit -> float) ->
  dir:string ->
  jobs:int ->
  unit ->
  string * Table.t list
