type env = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  db : Netsim.Dumbbell.t;
}

let default_rtt = 0.05

let make_env ?(seed = 1) ?(rtt = default_rtt) ?(queue = Netsim.Dumbbell.Red)
    ~bandwidth () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let config =
    { (Netsim.Dumbbell.default_config ~bandwidth) with Netsim.Dumbbell.rtt; queue }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng:(Engine.Rng.split rng) config in
  { sim; rng; db }

let start_staggered env ?(over = 2.) flows =
  List.iter
    (fun (flow : Cc.Flow.t) ->
      let jitter = Engine.Rng.uniform env.rng ~lo:0. ~hi:over in
      Engine.Sim.at env.sim jitter flow.Cc.Flow.start)
    flows

let add_reverse_traffic env ~n =
  let flows =
    List.init n (fun _ ->
        Protocol.spawn ~reverse:true (Protocol.tcp ~gamma:2.) env.db)
  in
  start_staggered env flows;
  flows

(* Loss fraction at the forward bottleneck, binned at [bin] seconds. *)
let loss_probe env ~bin =
  let link = Netsim.Dumbbell.bottleneck env.db in
  Engine.Probe.sample_ratio env.sim ~every:bin
    ~num:(fun () -> float_of_int (Netsim.Link.drops link))
    ~den:(fun () -> float_of_int (Netsim.Link.arrivals link))

let aggregate_rate_probe env ~bin flows =
  let total () =
    List.fold_left
      (fun acc (f : Cc.Flow.t) -> acc +. f.Cc.Flow.bytes_delivered ())
      0. flows
  in
  Engine.Probe.sample_rate env.sim ~every:bin total

(* ------------------------------------------------------------------ *)
(* CBR restart (Figures 3-5)                                           *)
(* ------------------------------------------------------------------ *)

type cbr_restart_result = {
  loss_series : Engine.Timeseries.t;
  steady_loss : float;
  stab : Metrics.stabilization option;
  rtt : float;
  ff : Fluid.t option;
}

let make_cbr env ~rate =
  let left, right = Netsim.Dumbbell.add_host_pair env.db in
  let flow_id = Netsim.Dumbbell.fresh_flow env.db in
  Cc.Cbr.create ~sim:env.sim ~src:left ~dst:right ~flow:flow_id ~rate
    ~pkt_size:1000

let cbr_restart ?(seed = 1) ?(queue = Netsim.Dumbbell.Red) ?(n_flows = 20)
    ?(duration = 300.) ~protocol ~bandwidth () =
  let env = make_env ~seed ~queue ~bandwidth () in
  let rtt = (Netsim.Dumbbell.config env.db).Netsim.Dumbbell.rtt in
  let flows = List.init n_flows (fun _ -> Protocol.spawn protocol env.db) in
  start_staggered env flows;
  let reverse = add_reverse_traffic env ~n:2 in
  let cbr = make_cbr env ~rate:(bandwidth /. 2.) in
  let cbr_flow = Cc.Cbr.flow cbr in
  Engine.Sim.at env.sim 0. cbr_flow.Cc.Flow.start;
  Engine.Sim.at env.sim 150. cbr_flow.Cc.Flow.stop;
  Engine.Sim.at env.sim 180. cbr_flow.Cc.Flow.start;
  let ff =
    Fluid.maybe_attach ~sim:env.sim ~link:(Netsim.Dumbbell.bottleneck env.db)
      ~flows:(cbr_flow :: flows) ~aux:reverse
      ~transients:[ 0.; 150.; 180. ] ()
  in
  let loss_series = loss_probe env ~bin:(10. *. rtt) in
  Engine.Sim.run ~until:duration env.sim;
  let steady_loss = Metrics.mean_between loss_series ~lo:50. ~hi:150. in
  let stab =
    Metrics.stabilization ~loss_series ~t_event:180. ~steady_loss ~rtt
  in
  { loss_series; steady_loss; stab; rtt; ff }

(* ------------------------------------------------------------------ *)
(* Flash crowd (Figure 6)                                              *)
(* ------------------------------------------------------------------ *)

type flash_crowd_result = {
  bg_rate : Engine.Timeseries.t;
  crowd_rate : Engine.Timeseries.t;
  crowd_started : int;
  crowd_completed : int;
  mean_completion : float;
  fc_ff : Fluid.t option;
}

let flash_crowd ?(seed = 1) ?(n_bg = 10) ?(duration = 60.) ~protocol
    ~bandwidth () =
  let env = make_env ~seed ~bandwidth () in
  let flows = List.init n_bg (fun _ -> Protocol.spawn protocol env.db) in
  start_staggered env flows;
  let reverse = add_reverse_traffic env ~n:2 in
  let crowd =
    Cc.Flash_crowd.create ~sim:env.sim ~rng:(Engine.Rng.split env.rng)
      ~dumbbell:env.db ~start:25. Cc.Flash_crowd.default_config
  in
  let fc_ff =
    Fluid.maybe_attach ~sim:env.sim ~link:(Netsim.Dumbbell.bottleneck env.db)
      ~flows ~aux:reverse ~transients:[ 25. ] ()
  in
  let bg_rate = aggregate_rate_probe env ~bin:0.5 flows in
  let crowd_rate =
    Engine.Probe.sample_rate env.sim ~every:0.5 (fun () ->
        Cc.Flash_crowd.bytes_delivered crowd)
  in
  Engine.Sim.run ~until:duration env.sim;
  {
    bg_rate;
    crowd_rate;
    crowd_started = Cc.Flash_crowd.flows_started crowd;
    crowd_completed = Cc.Flash_crowd.flows_completed crowd;
    mean_completion = Cc.Flash_crowd.mean_completion_time crowd;
    fc_ff;
  }

(* ------------------------------------------------------------------ *)
(* Oscillating bandwidth (Figures 7-9, 14-16)                          *)
(* ------------------------------------------------------------------ *)

type wave_shape = Square | Sawtooth | Reverse_sawtooth

type square_wave_result = {
  per_flow : (string * float) list;
  group_mean : string -> float;
  utilization : float;
  drop_rate : float;
  sw_ff : Fluid.t option;
}

(* Drive the CBR source through one shape period starting at [t0].  The
   ON half occupies [period / 2]; sawtooth shapes step the rate in eight
   increments across the ON half. *)
let rec drive_cbr env cbr ~shape ~period ~peak ~t0 ~stop =
  if t0 < stop then begin
    let half = period /. 2. in
    let flow = Cc.Cbr.flow cbr in
    (match shape with
    | Square ->
      Engine.Sim.at env.sim t0 (fun () ->
          Cc.Cbr.set_rate cbr peak;
          flow.Cc.Flow.start ());
      Engine.Sim.at env.sim (t0 +. half) flow.Cc.Flow.stop
    | Sawtooth ->
      let steps = 8 in
      for i = 0 to steps - 1 do
        let rate = peak *. float_of_int (i + 1) /. float_of_int steps in
        let at = t0 +. (half *. float_of_int i /. float_of_int steps) in
        Engine.Sim.at env.sim at (fun () ->
            Cc.Cbr.set_rate cbr rate;
            flow.Cc.Flow.start ())
      done;
      Engine.Sim.at env.sim (t0 +. half) flow.Cc.Flow.stop
    | Reverse_sawtooth ->
      let steps = 8 in
      for i = 0 to steps - 1 do
        let rate = peak *. float_of_int (steps - i) /. float_of_int steps in
        let at = t0 +. (half *. float_of_int i /. float_of_int steps) in
        Engine.Sim.at env.sim at (fun () ->
            Cc.Cbr.set_rate cbr rate;
            flow.Cc.Flow.start ())
      done;
      Engine.Sim.at env.sim (t0 +. half) flow.Cc.Flow.stop);
    drive_cbr env cbr ~shape ~period ~peak ~t0:(t0 +. period) ~stop
  end

(* Times at which [drive_cbr] touches the CBR source: the fluid
   controller must be thawed before each of them. *)
let cbr_edges ~shape ~period ~t0 ~stop =
  let half = period /. 2. in
  let rec go t acc =
    if t >= stop then List.rev acc
    else
      let acc =
        match shape with
        | Square -> (t +. half) :: t :: acc
        | Sawtooth | Reverse_sawtooth ->
          let steps = 8 in
          let acc = ref ((t +. half) :: acc) in
          for i = 0 to steps - 1 do
            acc := (t +. (half *. float_of_int i /. float_of_int steps)) :: !acc
          done;
          !acc
      in
      go (t +. period) acc
  in
  go t0 []

let square_wave ?(seed = 1) ?(shape = Square) ?measure ~flows ~bandwidth
    ~cbr_fraction ~period () =
  if cbr_fraction <= 0. || cbr_fraction >= 1. then
    invalid_arg "square_wave: cbr_fraction in (0,1)";
  let env = make_env ~seed ~bandwidth () in
  let tagged =
    List.concat_map
      (fun (protocol, count) ->
        List.init count (fun _ ->
            (Protocol.name protocol, Protocol.spawn protocol env.db)))
      flows
  in
  start_staggered env (List.map snd tagged);
  let reverse = add_reverse_traffic env ~n:2 in
  let peak = cbr_fraction *. bandwidth in
  let cbr = make_cbr env ~rate:peak in
  let warmup = 20. in
  let t_measure =
    match measure with
    | Some m -> m
    | None -> Float.max 100. (8. *. period)
  in
  let t_end = warmup +. t_measure in
  drive_cbr env cbr ~shape ~period ~peak ~t0:warmup ~stop:t_end;
  let link = Netsim.Dumbbell.bottleneck env.db in
  let sw_ff =
    Fluid.maybe_attach ~sim:env.sim ~link
      ~flows:(Cc.Cbr.flow cbr :: List.map snd tagged)
      ~aux:reverse
      ~transients:(cbr_edges ~shape ~period ~t0:warmup ~stop:t_end)
      ()
  in
  (* Snapshot at the start of the measurement window. *)
  let snapshots = ref [] and link0 = ref (0., 0, 0) in
  Engine.Sim.at env.sim warmup (fun () ->
      snapshots :=
        List.map (fun (_, f) -> f.Cc.Flow.bytes_delivered ()) tagged;
      link0 :=
        ( Netsim.Link.bytes_out link,
          Netsim.Link.arrivals link,
          Netsim.Link.drops link ));
  Engine.Sim.run ~until:t_end env.sim;
  let n_flows = List.length tagged in
  (* Average bandwidth left for the flows: the CBR duty cycle is 1/2 over
     each period (also for the sawtooth shapes, whose mean rate across the
     ON half is about (steps+1)/2steps of the peak; we use the exact mean). *)
  let duty =
    match shape with
    | Square -> 0.5
    | Sawtooth | Reverse_sawtooth -> 0.5 *. (9. /. 16.)
  in
  let available = bandwidth -. (duty *. peak) in
  let fair_share = available /. float_of_int n_flows in
  let per_flow =
    List.map2
      (fun (name, f) snap0 ->
        let thr =
          (f.Cc.Flow.bytes_delivered () -. snap0) *. 8. /. t_measure
        in
        (name, thr /. fair_share))
      tagged !snapshots
  in
  let group_mean name =
    let matching = List.filter (fun (n, _) -> n = name) per_flow in
    match matching with
    | [] -> 0.
    | _ ->
      List.fold_left (fun acc (_, v) -> acc +. v) 0. matching
      /. float_of_int (List.length matching)
  in
  let bytes0, arr0, drop0 = !link0 in
  let cbr_bytes =
    (* CBR bytes traversed the same bottleneck; subtract them from the
       aggregate to get the flows' utilization of their available share. *)
    (Cc.Cbr.flow cbr).Cc.Flow.bytes_delivered ()
  in
  let total_bytes = Netsim.Link.bytes_out link -. bytes0 -. cbr_bytes in
  let utilization =
    Float.max 0. (total_bytes *. 8. /. (t_measure *. available))
  in
  let arr1 = Netsim.Link.arrivals link and drop1 = Netsim.Link.drops link in
  let drop_rate =
    if arr1 > arr0 then float_of_int (drop1 - drop0) /. float_of_int (arr1 - arr0)
    else 0.
  in
  { per_flow; group_mean; utilization; drop_rate; sw_ff }

(* ------------------------------------------------------------------ *)
(* Transient fairness (Figures 10, 12)                                 *)
(* ------------------------------------------------------------------ *)

let fair_convergence ?(seed = 1) ?pool ?(n_trials = 3) ?(cap = 600.)
    ?(delta = 0.1) ~protocol ~bandwidth () =
  let t_join = 40. in
  let one_trial seed =
    let env = make_env ~seed ~bandwidth () in
    let f1 = Protocol.spawn protocol env.db in
    (* The paper's premise is an (B - b0, b0) allocation between two
       *established* flows: the second starts at its initial window in
       congestion avoidance, not in slow-start. *)
    let f2 = Protocol.spawn ~ca_start:true protocol env.db in
    Engine.Sim.at env.sim 0. f1.Cc.Flow.start;
    Engine.Sim.at env.sim t_join f2.Cc.Flow.start;
    let bin = 0.5 in
    let rate f =
      Engine.Probe.sample_rate env.sim ~every:bin (fun () ->
          f.Cc.Flow.bytes_delivered ())
    in
    let r1 = rate f1 and r2 = rate f2 in
    Engine.Sim.run ~until:(t_join +. cap) env.sim;
    Metrics.fair_convergence ~rate1:r1 ~rate2:r2 ~t_start:t_join ~delta
  in
  (* Each trial is a closed job with its own seed; running them on a pool
     changes wall clock only, never the per-trial results. *)
  let trial_seeds = List.init n_trials (fun i -> seed + (1000 * i)) in
  let outcomes =
    match pool with
    | None -> List.map one_trial trial_seeds
    | Some pool -> Engine.Pool.map_list pool one_trial trial_seeds
  in
  let times = List.filter_map Fun.id outcomes in
  match times with
  | [] -> (cap, 0)
  | _ ->
    ( List.fold_left ( +. ) 0. times /. float_of_int (List.length times),
      List.length times )

(* ------------------------------------------------------------------ *)
(* Bandwidth doubling (Figure 13)                                      *)
(* ------------------------------------------------------------------ *)

type fk_result = { f20 : float; f200 : float }

let bandwidth_double ?(seed = 1) ?(t_stop = 300.) ~protocol ~bandwidth () =
  let env = make_env ~seed ~bandwidth () in
  let rtt = (Netsim.Dumbbell.config env.db).Netsim.Dumbbell.rtt in
  let flows = List.init 10 (fun _ -> Protocol.spawn protocol env.db) in
  start_staggered env flows;
  ignore (add_reverse_traffic env ~n:2);
  let stay, leave =
    List.filteri (fun i _ -> i < 5) flows,
    List.filteri (fun i _ -> i >= 5) flows
  in
  let sum_delivered fs =
    List.fold_left
      (fun acc (f : Cc.Flow.t) -> acc +. f.Cc.Flow.bytes_delivered ())
      0. fs
  in
  let bytes_at_event = ref 0. and bytes_20 = ref 0. and bytes_200 = ref 0. in
  Engine.Sim.at env.sim t_stop (fun () ->
      List.iter (fun (f : Cc.Flow.t) -> f.Cc.Flow.stop ()) leave;
      bytes_at_event := sum_delivered stay);
  Engine.Sim.at env.sim (t_stop +. (20. *. rtt)) (fun () ->
      bytes_20 := sum_delivered stay);
  Engine.Sim.at env.sim (t_stop +. (200. *. rtt)) (fun () ->
      bytes_200 := sum_delivered stay);
  Engine.Sim.run ~until:(t_stop +. (210. *. rtt)) env.sim;
  {
    f20 =
      Metrics.f_k ~bytes_at_event:!bytes_at_event ~bytes_after:!bytes_20 ~k:20
        ~rtt ~bandwidth;
    f200 =
      Metrics.f_k ~bytes_at_event:!bytes_at_event ~bytes_after:!bytes_200
        ~k:200 ~rtt ~bandwidth;
  }

(* ------------------------------------------------------------------ *)
(* Designed loss patterns (Figures 17-19)                              *)
(* ------------------------------------------------------------------ *)

type pattern =
  | Counts of int list
  | Phases of (float * int) list

type loss_pattern_result = {
  rate_02s : Engine.Timeseries.t;
  rate_1s : Engine.Timeseries.t;
  avg_throughput : float;
  smoothness : float;
}

let loss_pattern ?(seed = 1) ?(duration = 60.) ~protocol ~pattern ~bandwidth
    () =
  (* The queue thunk runs inside Dumbbell.create, which needs the sim that
     make_env creates; build the env in two steps instead. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let make_queue () =
    let inner = Netsim.Droptail.make ~capacity:1000 in
    match pattern with
    | Counts counts -> Netsim.Loss_pattern.by_count ~pattern:counts inner
    | Phases phases -> Netsim.Loss_pattern.by_phase ~sim ~phases inner
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng:(Engine.Rng.split rng) config in
  let env = { sim; rng; db } in
  let flow = Protocol.spawn protocol env.db in
  Engine.Sim.at env.sim 0. flow.Cc.Flow.start;
  let warmup = 10. in
  let rate_02s =
    Engine.Probe.sample_rate env.sim ~every:0.2 (fun () ->
        flow.Cc.Flow.bytes_sent ())
  in
  let rate_1s =
    Engine.Probe.sample_rate env.sim ~every:1.0 (fun () ->
        flow.Cc.Flow.bytes_sent ())
  in
  let bytes0 = ref 0. in
  Engine.Sim.at env.sim warmup (fun () ->
      bytes0 := flow.Cc.Flow.bytes_delivered ());
  Engine.Sim.run ~until:duration env.sim;
  let avg_throughput =
    (flow.Cc.Flow.bytes_delivered () -. !bytes0) /. (duration -. warmup)
  in
  let measured_rates = Engine.Timeseries.create () in
  List.iter (fun (time, v) ->
      if time >= warmup then Engine.Timeseries.add measured_rates ~time v)
    (Engine.Timeseries.to_list rate_02s);
  {
    rate_02s;
    rate_1s;
    avg_throughput;
    smoothness = Metrics.smoothness ~floor:100. measured_rates;
  }
