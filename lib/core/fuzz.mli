(** Differential scenario fuzzer.

    Generates random small dumbbell / parking-lot scenarios and runs each
    one four ways — audited baseline, the other event-queue
    implementation, pooling disabled (fresh shells), and inside a worker
    domain of a {!Engine.Pool} — checking that all legs produce
    byte-identical end-state traces and that no {!Engine.Audit} invariant
    fires.  Failing scenarios are greedily shrunk to a minimal reproducer
    and can be saved as replayable JSON manifests. *)

type topology = Dumbbell | Parking_lot of int  (** hops *)

type flow_spec = {
  proto : Protocol.t;
  rev : bool;  (** dumbbell only: right-to-left *)
  src_site : int;  (** parking lot only: attachment routers *)
  dst_site : int;
}

type scenario = {
  seed : int;  (** drives the in-run RNG (RED) and, xored, the generator *)
  topology : topology;
  queue : Netsim.Dumbbell.queue_kind;
  bandwidth : float;  (** bottleneck bits/s *)
  rtt : float;  (** end-to-end two-way propagation, seconds *)
  duration : float;  (** simulated seconds *)
  flows : flow_spec list;
}

(** Deterministic scenario from a seed.  [quick] bounds duration and flow
    count for CI smoke runs. *)
val generate : quick:bool -> int -> scenario

val describe : scenario -> string

(** [check ?pool sc] is [None] when all legs agree and no invariant
    fires, or [Some failure] describing the first violation or
    divergence (with the axis and both digests).  The jobs leg only runs
    when [pool] has more than one worker. *)
val check : ?pool:Engine.Pool.t -> scenario -> string option

(** Greedily simplify a failing scenario (drop flows, shorten, collapse
    hops, swap RED for droptail) while it keeps failing; returns the
    smallest scenario reached and its failure message. *)
val shrink :
  ?pool:Engine.Pool.t -> scenario -> string -> scenario * string

(** Round-trip for replayable reproducers (schema
    ["slowcc-fuzz-repro/1"]). *)
val scenario_to_json : scenario -> Engine.Json.t

val scenario_of_json : Engine.Json.t -> (scenario, string) result

(** Write [sc] (plus the failure message) under [dir] as
    [repro-seed<N>.json]; returns the path. *)
val save_repro : dir:string -> failure:string -> scenario -> string

val load_repro : string -> (scenario, string) result

type failure = {
  scenario : scenario;  (** as generated *)
  first_failure : string;
  shrunk : scenario;
  shrunk_failure : string;
  repro_path : string option;
}

type report = {
  seeds_run : int;
  failures : failure list;
  soa_failures : (int * string) list;
      (** seeds where {!Manyflow.fuzz_check} found the struct-of-arrays
          engine diverging from the per-object engine *)
}

(** Run seeds [0 .. seeds-1].  Each seed runs both the scenario
    differential legs and the SoA-vs-object equivalence leg.  [out_dir]
    enables reproducer dumps; [log] receives human-readable progress
    lines. *)
val run_seeds :
  ?pool:Engine.Pool.t ->
  ?quick:bool ->
  ?out_dir:string ->
  ?log:(string -> unit) ->
  seeds:int ->
  unit ->
  report
