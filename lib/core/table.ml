module Json = Engine.Json

type t = {
  id : string;
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~columns ?(notes = []) rows =
  { id; title; columns; rows; notes }

let fnum v =
  if Float.is_integer v && Float.abs v < 1e6 then
    Printf.sprintf "%.0f" v
  else if Float.abs v >= 100. then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1. then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4f" v

let fpct v = Printf.sprintf "%.2f%%" (100. *. v)

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

(* Strict CSV: header plus data rows only.  Notes are NOT embedded as
   "# ..." comment lines — they corrupt strict CSV consumers — but live in
   the run manifest and in the sidecar written by [save_csv]. *)
let to_csv t =
  let buf = Buffer.create 1024 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  line t.columns;
  List.iter line t.rows;
  Buffer.contents buf

let rec ensure_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      invalid_arg
        (Printf.sprintf "Table.ensure_dir: %s exists and is not a directory"
           dir)
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "" then ensure_dir parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
    (* lost a race with a concurrent creator: fine *)
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let save_csv ~dir t =
  ensure_dir dir;
  let path = Filename.concat dir (t.id ^ ".csv") in
  write_file path (to_csv t);
  if t.notes <> [] then
    write_file
      (Filename.concat dir (t.id ^ ".notes.txt"))
      (String.concat "\n" t.notes ^ "\n");
  path

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                    *)
(* ------------------------------------------------------------------ *)

(* One JSON object per row: {"row": i, "cells": {"col": "raw cell", ...}}.
   Cells stay the exact strings of the table so JSONL and CSV always agree
   byte-for-byte on content.  Ragged rows keep only cells that have a
   column; missing trailing cells are omitted. *)
let jsonl_row t i row =
  let cells =
    List.filter_map
      (fun (j, cell) ->
        match List.nth_opt t.columns j with
        | Some col -> Some (col, Json.String cell)
        | None -> None)
      (List.mapi (fun j cell -> (j, cell)) row)
  in
  Json.to_string ~minify:true
    (Json.Obj [ ("row", Json.Int i); ("cells", Json.Obj cells) ])

(* Rows-only rendering: exactly what [Manifest.save_jsonl] writes next to
   the CSV (one minified object per line, trailing newline). *)
let rows_to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i row ->
      Buffer.add_string buf (jsonl_row t i row);
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

(* Full-fidelity rendering: a header object carrying the metadata that the
   rows-only form keeps in sidecars (title, notes) or filenames (id),
   followed by the exact row lines of [rows_to_jsonl].  This is the result
   cache's storage format; [of_jsonl] inverts it. *)
let to_jsonl t =
  let strings xs = Json.List (List.map (fun s -> Json.String s) xs) in
  let header =
    Json.Obj
      [
        ("id", Json.String t.id);
        ("title", Json.String t.title);
        ("columns", strings t.columns);
        ("notes", strings t.notes);
      ]
  in
  Json.to_string ~minify:true header ^ "\n" ^ rows_to_jsonl t

(* Inverse of [to_jsonl].  The round-trip is exact — [Manifest.table_digest]
   is preserved byte-for-byte — for every table whose rows are at most as
   wide as its column list (wider rows are truncated at write time, a
   pre-existing property of the JSONL form).  Duplicate column names are
   handled by consuming cell fields in order. *)
let of_jsonl s =
  let ( let* ) = Result.bind in
  let lines =
    (* A trailing newline yields one empty trailing chunk; embedded
       newlines inside cells are escaped, so line = object. *)
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let parse_line l =
    match Json.of_string l with
    | Ok v -> Ok v
    | Error e -> Error (Printf.sprintf "bad jsonl line: %s" e)
  in
  let string_field obj name =
    match Json.member name obj with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "header field %S missing or not a string" name)
  in
  let strings_field obj name =
    match Json.member name obj with
    | Some (Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Json.String s -> Ok (s :: acc)
          | _ -> Error (Printf.sprintf "header field %S holds a non-string" name))
        (Ok []) items
      |> Result.map List.rev
    | _ -> Error (Printf.sprintf "header field %S missing or not a list" name)
  in
  match lines with
  | [] -> Error "empty jsonl document"
  | header :: row_lines ->
    let* header = parse_line header in
    let* id = string_field header "id" in
    let* title = string_field header "title" in
    let* columns = strings_field header "columns" in
    let* notes = strings_field header "notes" in
    let parse_row i line =
      let* obj = parse_line line in
      let* () =
        match Json.member "row" obj with
        | Some (Json.Int j) when j = i -> Ok ()
        | Some (Json.Int j) ->
          Error (Printf.sprintf "row index %d where %d expected" j i)
        | _ -> Error "row line without a row index"
      in
      let* fields =
        match Json.member "cells" obj with
        | Some (Json.Obj fields) -> Ok fields
        | _ -> Error "row line without a cells object"
      in
      (* Rebuild the row by walking the columns in order, consuming the
         first remaining field with that name each time (robust to
         duplicate column names).  Cells are omitted only from the tail,
         so the first absent column ends the row; leftover fields after
         that mean the line does not describe this table. *)
      let remaining = ref fields in
      let cells = ref [] in
      let stopped = ref false in
      List.iter
        (fun col ->
          if not !stopped then
            let rec take acc = function
              | [] -> None
              | (k, v) :: rest when String.equal k col ->
                Some (v, List.rev_append acc rest)
              | kv :: rest -> take (kv :: acc) rest
            in
            match take [] !remaining with
            | Some (Json.String cell, rest) ->
              remaining := rest;
              cells := cell :: !cells
            | Some _ -> stopped := true
            | None -> stopped := true)
        columns;
      if !remaining <> [] then
        Error (Printf.sprintf "row %d has cells for unknown columns" i)
      else Ok (List.rev !cells)
    in
    let* rows =
      List.fold_left
        (fun acc (i, line) ->
          let* acc = acc in
          let* row = parse_row i line in
          Ok (row :: acc))
        (Ok [])
        (List.mapi (fun i line -> (i, line)) row_lines)
      |> Result.map List.rev
    in
    Ok (make ~id ~title ~columns ~notes rows)

let print fmt t =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length col) t.rows)
      t.columns
  in
  let pad width s = s ^ String.make (max 0 (width - String.length s)) ' ' in
  let line cells =
    let padded = List.map2 pad widths cells in
    Format.fprintf fmt "  %s@." (String.concat "  " padded)
  in
  Format.fprintf fmt "@.== %s: %s ==@." (String.uppercase_ascii t.id) t.title;
  line t.columns;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter
    (fun row ->
      (* Ragged rows are padded with empties so print never raises. *)
      let n = List.length t.columns in
      let row =
        if List.length row >= n then List.filteri (fun i _ -> i < n) row
        else row @ List.init (n - List.length row) (fun _ -> "")
      in
      line row)
    t.rows;
  List.iter (fun note -> Format.fprintf fmt "  note: %s@." note) t.notes
