type t = {
  id : string;
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~columns ?(notes = []) rows =
  { id; title; columns; rows; notes }

let fnum v =
  if Float.is_integer v && Float.abs v < 1e6 then
    Printf.sprintf "%.0f" v
  else if Float.abs v >= 100. then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1. then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4f" v

let fpct v = Printf.sprintf "%.2f%%" (100. *. v)

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

(* Strict CSV: header plus data rows only.  Notes are NOT embedded as
   "# ..." comment lines — they corrupt strict CSV consumers — but live in
   the run manifest and in the sidecar written by [save_csv]. *)
let to_csv t =
  let buf = Buffer.create 1024 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  line t.columns;
  List.iter line t.rows;
  Buffer.contents buf

let rec ensure_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      invalid_arg
        (Printf.sprintf "Table.ensure_dir: %s exists and is not a directory"
           dir)
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "" then ensure_dir parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
    (* lost a race with a concurrent creator: fine *)
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let save_csv ~dir t =
  ensure_dir dir;
  let path = Filename.concat dir (t.id ^ ".csv") in
  write_file path (to_csv t);
  if t.notes <> [] then
    write_file
      (Filename.concat dir (t.id ^ ".notes.txt"))
      (String.concat "\n" t.notes ^ "\n");
  path

let print fmt t =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length col) t.rows)
      t.columns
  in
  let pad width s = s ^ String.make (max 0 (width - String.length s)) ' ' in
  let line cells =
    let padded = List.map2 pad widths cells in
    Format.fprintf fmt "  %s@." (String.concat "  " padded)
  in
  Format.fprintf fmt "@.== %s: %s ==@." (String.uppercase_ascii t.id) t.title;
  line t.columns;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter
    (fun row ->
      (* Ragged rows are padded with empties so print never raises. *)
      let n = List.length t.columns in
      let row =
        if List.length row >= n then List.filteri (fun i _ -> i < n) row
        else row @ List.init (n - List.length row) (fun _ -> "")
      in
      line row)
    t.rows;
  List.iter (fun note -> Format.fprintf fmt "  note: %s@." note) t.notes
