(** The paper's dynamic test scenarios (Section 3), one builder per family.

    All scenarios run on a RED dumbbell with a 50 ms round-trip time,
    queue capacity 2.5 x BDP and RED thresholds 0.25/1.25 x BDP, with a
    little TCP traffic flowing in the reverse direction so acks share a
    loaded path, as in the paper.  Loss rates are averaged over 10-RTT
    bins.  Every scenario is deterministic given its [seed].

    When the simulator is created with fast-forward enabled
    ({!Engine.Sim.fastforward}), the transient scenarios (CBR restart,
    flash crowd, oscillating bandwidth) attach a {!Fluid} controller to
    the bottleneck with their scheduled transient times; with it off
    (the default) nothing is attached and runs are byte-identical to a
    build without the feature. *)

type env = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  db : Netsim.Dumbbell.t;
}

val make_env :
  ?seed:int ->
  ?rtt:float ->
  ?queue:Netsim.Dumbbell.queue_kind ->
  bandwidth:float ->
  unit ->
  env

(** Start [n] reverse-direction TCP flows (right to left), staggered. *)
val add_reverse_traffic : env -> n:int -> Cc.Flow.t list

(** {1 Sudden congestion: CBR restart (Figures 3-5)} *)

type cbr_restart_result = {
  loss_series : Engine.Timeseries.t;  (** 10-RTT binned loss fraction *)
  steady_loss : float;  (** average over the initial CBR-on period *)
  stab : Metrics.stabilization option;  (** measured from the restart *)
  rtt : float;
  ff : Fluid.t option;  (** fast-forward controller, when enabled *)
}

(** Twenty long-lived flows of [protocol]; a CBR source using half the
    bottleneck is on during [(0, 150)], idle during [(150, 180)], and
    restarts at t = 180 s. *)
val cbr_restart :
  ?seed:int ->
  ?queue:Netsim.Dumbbell.queue_kind ->
  ?n_flows:int ->
  ?duration:float ->
  protocol:Protocol.t ->
  bandwidth:float ->
  unit ->
  cbr_restart_result

(** {1 Flash crowd (Figure 6)} *)

type flash_crowd_result = {
  bg_rate : Engine.Timeseries.t;  (** aggregate background bytes/s, 0.5 s bins *)
  crowd_rate : Engine.Timeseries.t;  (** aggregate crowd bytes/s *)
  crowd_started : int;
  crowd_completed : int;
  mean_completion : float;
  fc_ff : Fluid.t option;  (** fast-forward controller, when enabled *)
}

(** Long-lived background flows of [protocol] face a crowd of 10-packet
    TCP transfers arriving at 200 flows/s for 5 s starting at t = 25 s. *)
val flash_crowd :
  ?seed:int ->
  ?n_bg:int ->
  ?duration:float ->
  protocol:Protocol.t ->
  bandwidth:float ->
  unit ->
  flash_crowd_result

(** {1 Oscillating bandwidth (Figures 7-9, 14-16)} *)

type wave_shape = Square | Sawtooth | Reverse_sawtooth

type square_wave_result = {
  per_flow : (string * float) list;  (** protocol name, normalized thr *)
  group_mean : string -> float;  (** mean normalized thr of a protocol *)
  utilization : float;  (** aggregate thr / average available bandwidth *)
  drop_rate : float;  (** bottleneck drops / arrivals over measurement *)
  sw_ff : Fluid.t option;  (** fast-forward controller, when enabled *)
}

(** [flows] gives protocol groups and counts, e.g. 5 TCP + 5 TFRC.  An
    ON/OFF CBR with peak rate [cbr_fraction x bandwidth] and equal ON and
    OFF times of [period / 2] modulates the available bandwidth; per-flow
    throughput is normalized by the fair share of the average available
    bandwidth. *)
val square_wave :
  ?seed:int ->
  ?shape:wave_shape ->
  ?measure:float ->
  flows:(Protocol.t * int) list ->
  bandwidth:float ->
  cbr_fraction:float ->
  period:float ->
  unit ->
  square_wave_result

(** {1 Transient fairness (Figures 10, 12)} *)

(** Two flows of [protocol]: the first owns the link, the second starts at
    a running point; returns the delta-fair convergence time in seconds
    averaged over [n_trials] seeds, and the number of trials that
    converged within the cap.  Trials are independent, seeded jobs; when
    [pool] is given they run on its worker domains (results are identical
    either way). *)
val fair_convergence :
  ?seed:int ->
  ?pool:Engine.Pool.t ->
  ?n_trials:int ->
  ?cap:float ->
  ?delta:float ->
  protocol:Protocol.t ->
  bandwidth:float ->
  unit ->
  float * int

(** {1 Sudden bandwidth increase (Figure 13)} *)

type fk_result = { f20 : float; f200 : float }

(** Ten flows of [protocol] share the link; at a steady point five stop,
    doubling the bandwidth available to the rest; f(k) is the link
    utilization over the first k RTTs after the change. *)
val bandwidth_double :
  ?seed:int ->
  ?t_stop:float ->
  protocol:Protocol.t ->
  bandwidth:float ->
  unit ->
  fk_result

(** {1 Designed loss patterns (Figures 17-19)} *)

type pattern =
  | Counts of int list  (** drop one packet after each count, cycling *)
  | Phases of (float * int) list  (** (duration, drop every n-th), cycling *)

type loss_pattern_result = {
  rate_02s : Engine.Timeseries.t;  (** sending rate, 0.2 s bins (bytes/s) *)
  rate_1s : Engine.Timeseries.t;  (** sending rate, 1 s bins *)
  avg_throughput : float;  (** bytes/s over the measurement window *)
  smoothness : float;  (** max consecutive-bin ratio on the 0.2 s series *)
}

(** One flow of [protocol] subjected to a deterministic loss pattern on an
    otherwise uncongested path. *)
val loss_pattern :
  ?seed:int ->
  ?duration:float ->
  protocol:Protocol.t ->
  pattern:pattern ->
  bandwidth:float ->
  unit ->
  loss_pattern_result
