type t =
  | Tcp of float
  | Tcp_sack of float
  | Rap of float
  | Sqrt of float
  | Iiad of float
  | Tfrc of {
      k : int;
      conservative : bool;
      conservative_c : float;
      history_discounting : bool;
    }
  | Tear of int
  | Bbr
  | Vegas of { alpha : float; beta : float }

let check_gamma gamma =
  if gamma < 1.5 then
    invalid_arg "Protocol: gamma >= 1.5 required (gamma = 2 is standard TCP)"

let tcp ~gamma =
  check_gamma gamma;
  Tcp gamma

let tcp_sack ~gamma =
  check_gamma gamma;
  Tcp_sack gamma

let rap ~gamma =
  check_gamma gamma;
  Rap gamma

let sqrt_ ~gamma =
  check_gamma gamma;
  Sqrt gamma

let iiad ~gamma =
  check_gamma gamma;
  Iiad gamma

let tfrc ?(conservative = false) ?(conservative_c = 1.1)
    ?(history_discounting = false) ~k () =
  if k < 1 then invalid_arg "Protocol.tfrc: k >= 1";
  Tfrc { k; conservative; conservative_c; history_discounting }

let tear ~rounds =
  if rounds < 1 then invalid_arg "Protocol.tear: rounds >= 1";
  Tear rounds

let bbr = Bbr

let vegas ?(alpha = 2.) ?(beta = 4.) () =
  if alpha < 0. || beta < alpha then
    invalid_arg "Protocol.vegas: need 0 <= alpha <= beta";
  Vegas { alpha; beta }

let name = function
  | Tcp g -> Printf.sprintf "TCP(1/%g)" g
  | Tcp_sack g -> Printf.sprintf "TCP-SACK(1/%g)" g
  | Rap g -> Printf.sprintf "RAP(1/%g)" g
  | Sqrt g -> Printf.sprintf "SQRT(1/%g)" g
  | Iiad g -> Printf.sprintf "IIAD(1/%g)" g
  | Tfrc { k; conservative; _ } ->
    Printf.sprintf "TFRC(%d)%s" k (if conservative then "+SC" else "")
  | Tear rounds -> Printf.sprintf "TEAR(%d)" rounds
  | Bbr -> "BBR"
  | Vegas { alpha; beta } -> Printf.sprintf "VEGAS(%g,%g)" alpha beta

(* Binomial calibration is deterministic and pure; memoize per gamma.
   The caches are shared across domains when scenarios run on a worker
   pool, so guard them with a mutex — the cached value is a pure function
   of the key, hence any interleaving yields identical results. *)
let cache_mutex = Mutex.create ()
let sqrt_cache : (float, float * float) Hashtbl.t = Hashtbl.create 8
let iiad_cache : (float, float * float) Hashtbl.t = Hashtbl.create 8

let memo cache f gamma =
  Mutex.lock cache_mutex;
  match Hashtbl.find_opt cache gamma with
  | Some v ->
    Mutex.unlock cache_mutex;
    v
  | None ->
    Mutex.unlock cache_mutex;
    let v = f ~gamma () in
    Mutex.lock cache_mutex;
    Hashtbl.replace cache gamma v;
    Mutex.unlock cache_mutex;
    v

let window_rule = function
  | Tcp gamma | Tcp_sack gamma ->
    Cc.Window_cc.tcp_compatible_aimd ~b:(1. /. gamma)
  | Sqrt gamma ->
    let a, b = memo sqrt_cache (fun ~gamma () -> Analysis.Binomial_calibration.sqrt_params ~gamma ()) gamma in
    Cc.Window_cc.binomial ~k:0.5 ~l:0.5 ~a ~b
  | Iiad gamma ->
    let a, b = memo iiad_cache (fun ~gamma () -> Analysis.Binomial_calibration.iiad_params ~gamma ()) gamma in
    Cc.Window_cc.binomial ~k:1.0 ~l:0.0 ~a ~b
  | Rap _ | Tfrc _ | Tear _ | Bbr | Vegas _ ->
    invalid_arg "Protocol.window_rule: not window-based"

(* Build a flow of protocol [t] between two already-routed nodes; the
   dumbbell-specific [spawn] and the fuzzer's parking-lot wiring both end
   up here. *)
let spawn_between ?(pkt_size = 1000) ?total_pkts ?(ca_start = false) t ~sim
    ~src ~dst ~flow:flow_id =
  match t with
  | Tcp _ | Tcp_sack _ | Sqrt _ | Iiad _ ->
    let cfg =
      {
        (Cc.Window_cc.default_config (window_rule t)) with
        Cc.Window_cc.pkt_size;
        total_pkts;
        sack = (match t with Tcp_sack _ -> true | _ -> false);
        initial_ssthresh = (if ca_start then Some 2. else None);
      }
    in
    Cc.Window_cc.flow (Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg)
  | Rap gamma ->
    if total_pkts <> None then
      invalid_arg "Protocol.spawn: RAP flows are long-lived only";
    let cfg =
      { (Cc.Rap.tcp_compatible_config ~b:(1. /. gamma)) with Cc.Rap.pkt_size }
    in
    Cc.Rap.flow (Cc.Rap.create ~sim ~src ~dst ~flow:flow_id cfg)
  | Tfrc { k; conservative; conservative_c; history_discounting } ->
    if total_pkts <> None then
      invalid_arg "Protocol.spawn: TFRC flows are long-lived only";
    let cfg =
      {
        (Cc.Tfrc.default_config ~k) with
        Cc.Tfrc.pkt_size;
        conservative;
        conservative_c;
        history_discounting;
      }
    in
    Cc.Tfrc.flow (Cc.Tfrc.create ~sim ~src ~dst ~flow:flow_id cfg)
  | Tear rounds ->
    if total_pkts <> None then
      invalid_arg "Protocol.spawn: TEAR flows are long-lived only";
    let cfg =
      {
        Cc.Tear.default_config with
        Cc.Tear.pkt_size;
        smoothing_rounds = rounds;
      }
    in
    Cc.Tear.flow (Cc.Tear.create ~sim ~src ~dst ~flow:flow_id cfg)
  | Bbr ->
    if total_pkts <> None then
      invalid_arg "Protocol.spawn: BBR flows are long-lived only";
    let cfg = { Cc.Bbr.default_config with Cc.Bbr.pkt_size } in
    Cc.Bbr.flow (Cc.Bbr.create ~sim ~src ~dst ~flow:flow_id cfg)
  | Vegas { alpha; beta } ->
    if total_pkts <> None then
      invalid_arg "Protocol.spawn: Vegas flows are long-lived only";
    let cfg =
      { Cc.Vegas.default_config with Cc.Vegas.pkt_size; alpha; beta }
    in
    Cc.Vegas.flow (Cc.Vegas.create ~sim ~src ~dst ~flow:flow_id cfg)

let spawn ?(reverse = false) ?(extra_delay = 0.) ?pkt_size ?total_pkts
    ?ca_start t db =
  let sim = Netsim.Dumbbell.sim db in
  let left, right = Netsim.Dumbbell.add_host_pair ~extra_delay db in
  let src, dst = if reverse then (right, left) else (left, right) in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  spawn_between ?pkt_size ?total_pkts ?ca_start t ~sim ~src ~dst ~flow:flow_id
