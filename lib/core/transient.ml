let rtt = 0.05

let build_env ~seed ~bandwidth ~make_queue =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom (make_queue sim);
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  (sim, db)

let responsiveness ?(seed = 2) ?(bandwidth = 20e6) protocol =
  let t_congest = 40. in
  let make_queue sim () =
    (* Light steady loss keeps the flow at a defined operating point, then
       persistent congestion of one loss per RTT begins at [t_congest]. *)
    Netsim.Droptail.make ~capacity:10000
    |> Netsim.Loss_pattern.by_count ~pattern:[ 300 ]
    |> Netsim.Loss_pattern.one_per_interval ~sim ~interval:rtt ~start:t_congest
  in
  let sim, db = build_env ~seed ~bandwidth ~make_queue in
  let flow = Protocol.spawn protocol db in
  flow.Cc.Flow.start ();
  let rate =
    Engine.Probe.sample_rate sim ~every:rtt (fun () ->
        flow.Cc.Flow.bytes_sent ())
  in
  Engine.Sim.run ~until:(t_congest +. 100.) sim;
  let before =
    Metrics.mean_between rate ~lo:(t_congest -. (10. *. rtt)) ~hi:t_congest
  in
  if before <= 0. then None
  else begin
    let halved =
      List.find_opt
        (fun (_, v) -> v <= before /. 2.)
        (Engine.Timeseries.between rate ~lo:t_congest ~hi:Float.infinity)
    in
    match halved with
    | Some (t, _) -> Some ((t -. t_congest) /. rtt)
    | None -> None
  end

let aggressiveness ?(seed = 2) ?(bandwidth = 50e6) protocol =
  let t_clear = 40. in
  let make_queue sim () =
    (* Periodic loss pins the rate low; all losses stop at [t_clear]. *)
    Netsim.Droptail.make ~capacity:100000
    |> Netsim.Loss_pattern.by_phase ~sim
         ~phases:[ (t_clear, 150); (1000., 0) ]
  in
  let sim, db = build_env ~seed ~bandwidth ~make_queue in
  let flow = Protocol.spawn protocol db in
  flow.Cc.Flow.start ();
  let rate =
    Engine.Probe.sample_rate sim ~every:rtt (fun () ->
        flow.Cc.Flow.bytes_sent ())
  in
  Engine.Sim.run ~until:(t_clear +. 30.) sim;
  (* Slope of the loss-free ramp: averaged rate over two windows a known
     number of RTTs apart, in packets/RTT per RTT.  Averaging over several
     bins removes per-bin send quantization that would otherwise dominate. *)
  let window lo hi =
    Metrics.mean_between rate ~lo:(t_clear +. (lo *. rtt))
      ~hi:(t_clear +. (hi *. rtt))
    *. rtt /. 1000.
  in
  let r1 = window 4. 10. and r2 = window 14. 20. in
  Float.max 0. ((r2 -. r1) /. 10.)

let paper_protocols =
  [
    ("TCP", Protocol.tcp ~gamma:2.);
    ("TCP(1/8)", Protocol.tcp ~gamma:8.);
    ("SQRT(1/2)", Protocol.sqrt_ ~gamma:2.);
    ("IIAD", Protocol.iiad ~gamma:2.);
    ("RAP", Protocol.rap ~gamma:2.);
    ("TFRC(6)", Protocol.tfrc ~k:6 ());
    ("TFRC(256)", Protocol.tfrc ~k:256 ());
    ("TEAR(8)", Protocol.tear ~rounds:8);
  ]

let table ?(quick = false) ?pool () =
  let protocols =
    if quick then
      List.filter
        (fun (n, _) -> List.mem n [ "TCP"; "TFRC(6)" ])
        paper_protocols
    else paper_protocols
  in
  (* Both metrics of one protocol form one closed job; the sweep over
     protocols fans out on the pool. *)
  let row (name, p) =
    let resp =
      match responsiveness p with
      | Some r -> Table.fnum r
      | None -> ">2000"
    in
    let aggr = aggressiveness p in
    [ name; resp; Table.fnum aggr ]
  in
  let rows =
    match pool with
    | None -> List.map row protocols
    | Some pool -> Engine.Pool.map_list pool row protocols
  in
  Table.make ~id:"table-transient"
    ~title:"Responsiveness and aggressiveness (Section 3 definitions)"
    ~columns:[ "protocol"; "RTTs to halve rate"; "max incr (pkt/RTT/RTT)" ]
    ~notes:
      [
        "paper: TCP responsiveness 1, deployed TFRC 4-6";
        "aggressiveness of AIMD(a,b) is the constant a (1 for TCP)";
      ]
    rows
