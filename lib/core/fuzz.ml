module Json = Engine.Json

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

type topology = Dumbbell | Parking_lot of int

type flow_spec = {
  proto : Protocol.t;
  rev : bool;  (* dumbbell: right-to-left *)
  src_site : int;  (* parking lot: attachment routers *)
  dst_site : int;
}

type scenario = {
  seed : int;
  topology : topology;
  queue : Netsim.Dumbbell.queue_kind;
  bandwidth : float;
  rtt : float;
  duration : float;
  flows : flow_spec list;
}

let queue_to_string = function
  | Netsim.Dumbbell.Red -> "red"
  | Netsim.Dumbbell.Red_ecn -> "red_ecn"
  | Netsim.Dumbbell.Droptail -> "droptail"
  | Netsim.Dumbbell.Custom _ -> invalid_arg "Fuzz: Custom queue"

let queue_of_string = function
  | "red" -> Some Netsim.Dumbbell.Red
  | "red_ecn" -> Some Netsim.Dumbbell.Red_ecn
  | "droptail" -> Some Netsim.Dumbbell.Droptail
  | _ -> None

(* Same wire syntax as slowcc_run's --a/--b protocol arguments. *)
let proto_to_string = function
  | Protocol.Tcp g -> Printf.sprintf "tcp:%g" g
  | Protocol.Tcp_sack g -> Printf.sprintf "tcp-sack:%g" g
  | Protocol.Rap g -> Printf.sprintf "rap:%g" g
  | Protocol.Sqrt g -> Printf.sprintf "sqrt:%g" g
  | Protocol.Iiad g -> Printf.sprintf "iiad:%g" g
  | Protocol.Tfrc { k; conservative = true; _ } -> Printf.sprintf "tfrc+sc:%d" k
  | Protocol.Tfrc { k; _ } -> Printf.sprintf "tfrc:%d" k
  | Protocol.Tear rounds -> Printf.sprintf "tear:%d" rounds
  | Protocol.Bbr -> "bbr"
  | Protocol.Vegas { alpha; beta } -> Printf.sprintf "vegas:%g-%g" alpha beta

let proto_of_string s =
  match String.split_on_char ':' s with
  | [ "tcp"; g ] ->
    Option.map (fun g -> Protocol.tcp ~gamma:g) (float_of_string_opt g)
  | [ "tcp-sack"; g ] ->
    Option.map (fun g -> Protocol.tcp_sack ~gamma:g) (float_of_string_opt g)
  | [ "rap"; g ] ->
    Option.map (fun g -> Protocol.rap ~gamma:g) (float_of_string_opt g)
  | [ "sqrt"; g ] ->
    Option.map (fun g -> Protocol.sqrt_ ~gamma:g) (float_of_string_opt g)
  | [ "iiad"; g ] ->
    Option.map (fun g -> Protocol.iiad ~gamma:g) (float_of_string_opt g)
  | [ "tfrc"; k ] ->
    Option.map (fun k -> Protocol.tfrc ~k ()) (int_of_string_opt k)
  | [ "tfrc+sc"; k ] ->
    Option.map
      (fun k -> Protocol.tfrc ~conservative:true ~k ())
      (int_of_string_opt k)
  | [ "tear"; n ] ->
    Option.map (fun rounds -> Protocol.tear ~rounds) (int_of_string_opt n)
  | [ "bbr" ] -> Some Protocol.bbr
  | [ "vegas" ] -> Some (Protocol.vegas ())
  | [ "vegas"; ab ] -> (
    match String.split_on_char '-' ab with
    | [ a; b ] -> (
      match (float_of_string_opt a, float_of_string_opt b) with
      | Some alpha, Some beta -> Some (Protocol.vegas ~alpha ~beta ())
      | _ -> None)
    | _ -> None)
  | _ -> None

let describe sc =
  Printf.sprintf "seed=%d %s queue=%s bw=%g rtt=%g dur=%g flows=[%s]" sc.seed
    (match sc.topology with
    | Dumbbell -> "dumbbell"
    | Parking_lot h -> Printf.sprintf "parking_lot:%d" h)
    (queue_to_string sc.queue)
    sc.bandwidth sc.rtt sc.duration
    (String.concat "; "
       (List.map
          (fun fs ->
            match sc.topology with
            | Dumbbell ->
              Printf.sprintf "%s%s" (proto_to_string fs.proto)
                (if fs.rev then " rev" else "")
            | Parking_lot _ ->
              Printf.sprintf "%s %d->%d" (proto_to_string fs.proto)
                fs.src_site fs.dst_site)
          sc.flows))

(* ------------------------------------------------------------------ *)
(* JSON round trip (replayable reproducers)                            *)
(* ------------------------------------------------------------------ *)

let repro_schema = "slowcc-fuzz-repro/1"

let scenario_to_json sc =
  Json.Obj
    [
      ("schema", Json.String repro_schema);
      ("seed", Json.Int sc.seed);
      ( "topology",
        Json.String
          (match sc.topology with
          | Dumbbell -> "dumbbell"
          | Parking_lot _ -> "parking_lot") );
      ( "hops",
        Json.Int (match sc.topology with Dumbbell -> 0 | Parking_lot h -> h)
      );
      ("queue", Json.String (queue_to_string sc.queue));
      ("bandwidth", Json.Float sc.bandwidth);
      ("rtt", Json.Float sc.rtt);
      ("duration", Json.Float sc.duration);
      ( "flows",
        Json.List
          (List.map
             (fun fs ->
               Json.Obj
                 [
                   ("proto", Json.String (proto_to_string fs.proto));
                   ("rev", Json.Bool fs.rev);
                   ("src_site", Json.Int fs.src_site);
                   ("dst_site", Json.Int fs.dst_site);
                 ])
             sc.flows) );
    ]

let scenario_of_json doc =
  let ( let* ) = Result.bind in
  let str k =
    match Json.member k doc with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing or non-string %S" k)
  in
  let num k obj =
    match Json.member k obj with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "missing or non-number %S" k)
  in
  let int k obj =
    match Json.member k obj with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "missing or non-int %S" k)
  in
  let* schema = str "schema" in
  let* () =
    if schema = repro_schema then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  let* seed = int "seed" doc in
  let* topo_s = str "topology" in
  let* hops = int "hops" doc in
  let* topology =
    match topo_s with
    | "dumbbell" -> Ok Dumbbell
    | "parking_lot" when hops >= 1 -> Ok (Parking_lot hops)
    | _ -> Error "bad topology"
  in
  let* queue_s = str "queue" in
  let* queue =
    match queue_of_string queue_s with
    | Some q -> Ok q
    | None -> Error (Printf.sprintf "unknown queue %S" queue_s)
  in
  let* bandwidth = num "bandwidth" doc in
  let* rtt = num "rtt" doc in
  let* duration = num "duration" doc in
  let* flow_docs =
    match Json.member "flows" doc with
    | Some (Json.List l) when l <> [] -> Ok l
    | _ -> Error "missing or empty flows"
  in
  let* flows =
    List.fold_left
      (fun acc fd ->
        let* acc = acc in
        let* proto_s =
          match Json.member "proto" fd with
          | Some (Json.String s) -> Ok s
          | _ -> Error "flow without proto"
        in
        let* proto =
          match proto_of_string proto_s with
          | Some p -> Ok p
          | None -> Error (Printf.sprintf "unknown proto %S" proto_s)
        in
        let rev =
          match Json.member "rev" fd with
          | Some (Json.Bool b) -> b
          | _ -> false
        in
        let* src_site = int "src_site" fd in
        let* dst_site = int "dst_site" fd in
        Ok ({ proto; rev; src_site; dst_site } :: acc))
      (Ok []) flow_docs
    |> Result.map List.rev
  in
  Ok { seed; topology; queue; bandwidth; rtt; duration; flows }

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let gammas = [| 2.; 4.; 8. |]

let gen_proto rng =
  let gamma () = gammas.(Engine.Rng.int rng (Array.length gammas)) in
  match Engine.Rng.int rng 9 with
  | 0 -> Protocol.tcp ~gamma:(gamma ())
  | 1 -> Protocol.tcp_sack ~gamma:(gamma ())
  | 2 -> Protocol.sqrt_ ~gamma:(gamma ())
  | 3 -> Protocol.iiad ~gamma:(gamma ())
  | 4 -> Protocol.rap ~gamma:(gamma ())
  | 5 -> Protocol.tfrc ~k:(1 + Engine.Rng.int rng 8) ()
  | 6 -> Protocol.tear ~rounds:(1 + Engine.Rng.int rng 8)
  | 7 -> Protocol.bbr
  | _ -> Protocol.vegas ()

let generate ~quick seed =
  (* The generator's stream is distinct from the run-time stream seeded
     by [sc.seed], so scenario shape and in-run randomness (RED) are
     independent. *)
  let rng = Engine.Rng.create ~seed:(seed lxor 0x5eed5eed) in
  let topology =
    if Engine.Rng.bernoulli rng ~p:0.3 then
      Parking_lot (2 + Engine.Rng.int rng 2)
    else Dumbbell
  in
  let queue =
    match Engine.Rng.int rng 3 with
    | 0 -> Netsim.Dumbbell.Droptail
    | 1 -> Netsim.Dumbbell.Red_ecn
    | _ -> Netsim.Dumbbell.Red
  in
  let bandwidth = float_of_int (1 + Engine.Rng.int rng 4) *. 1e6 in
  let rtt = 0.02 +. (float_of_int (Engine.Rng.int rng 5) *. 0.02) in
  let duration =
    if quick then 2. +. float_of_int (Engine.Rng.int rng 4)
    else 5. +. float_of_int (Engine.Rng.int rng 15)
  in
  let nflows = 1 + Engine.Rng.int rng (if quick then 3 else 5) in
  let sites =
    match topology with Dumbbell -> 1 | Parking_lot h -> h + 1
  in
  let flows =
    List.init nflows (fun _ ->
        let proto = gen_proto rng in
        let rev = Engine.Rng.bernoulli rng ~p:0.3 in
        let src_site = Engine.Rng.int rng sites in
        let dst_site =
          if sites = 1 then 0
          else (src_site + 1 + Engine.Rng.int rng (sites - 1)) mod sites
        in
        { proto; rev; src_site; dst_site })
  in
  { seed; topology; queue; bandwidth; rtt; duration; flows }

(* ------------------------------------------------------------------ *)
(* Building and running one leg                                        *)
(* ------------------------------------------------------------------ *)

type built = {
  sim : Engine.Sim.t;
  flows : Cc.Flow.t list;
  links : Netsim.Link.t list;
}

let build ?sched ?(fastforward = Engine.Fastforward.Off) sc =
  let sim = Engine.Sim.create ?sched ~fastforward () in
  let rng = Engine.Rng.create ~seed:sc.seed in
  let b =
    match sc.topology with
    | Dumbbell ->
      let config =
        {
          (Netsim.Dumbbell.default_config ~bandwidth:sc.bandwidth) with
          Netsim.Dumbbell.rtt = sc.rtt;
          queue = sc.queue;
        }
      in
      let db = Netsim.Dumbbell.create ~sim ~rng:(Engine.Rng.split rng) config in
      let flows =
        List.map (fun fs -> Protocol.spawn ~reverse:fs.rev fs.proto db) sc.flows
      in
      (* Hybrid leg only: watch the forward bottleneck, scale the
         forward flows to it, freeze reverse flows as auxiliaries.  The
         attach is gated on the sim's mode (no-op for every pure leg)
         and on full coverage — if any flow lacks analytic ff hooks
         (RAP, TEAR) it would keep running packet-level through a link
         the controller believes frozen, so the scenario is left
         entirely packet-level instead. *)
      let all_tracked =
        List.for_all (fun (f : Cc.Flow.t) -> f.Cc.Flow.ff <> None) flows
      in
      if all_tracked then begin
        let fwd, rev =
          List.partition_map
            (fun (fs, f) -> if fs.rev then Either.Right f else Either.Left f)
            (List.combine sc.flows flows)
        in
        ignore
          (Fluid.maybe_attach ~sim
             ~link:(Netsim.Dumbbell.bottleneck db)
             ~flows:fwd ~aux:rev ~transients:[] ())
      end;
      { sim; flows; links = Netsim.Dumbbell.links db }
    | Parking_lot hops ->
      let config =
        {
          (Netsim.Parking_lot.default_config ~hops ~bandwidth:sc.bandwidth) with
          Netsim.Parking_lot.hop_rtt = sc.rtt /. float_of_int hops;
          queue = sc.queue;
        }
      in
      let pl =
        Netsim.Parking_lot.create ~sim ~rng:(Engine.Rng.split rng) config
      in
      let flows =
        List.map
          (fun fs ->
            let src = Netsim.Parking_lot.add_host pl ~site:fs.src_site in
            let dst = Netsim.Parking_lot.add_host pl ~site:fs.dst_site in
            Protocol.spawn_between fs.proto ~sim ~src ~dst
              ~flow:(Netsim.Parking_lot.fresh_flow pl))
          sc.flows
      in
      { sim; flows; links = Netsim.Parking_lot.links pl }
  in
  (* Deterministic staggered starts: no RNG involved, so every leg sees
     the same schedule. *)
  List.iteri
    (fun i (f : Cc.Flow.t) ->
      Engine.Sim.at sim (0.01 +. (0.25 *. float_of_int i)) f.Cc.Flow.start)
    b.flows;
  b

(* The whole observable end state, uid-free (uids come from a global
   atomic counter, so parallel legs interleave them differently):
   per-flow transport statistics, per-link counters in creation order,
   and the engine's event count and final clock. *)
let trace_of sc b =
  Engine.Sim.run ~until:sc.duration b.sim;
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i (f : Cc.Flow.t) ->
      let s = f.Cc.Flow.stats () in
      Printf.bprintf buf
        "flow %d %s sent=%d sbytes=%.17g dbytes=%.17g rtx=%d to=%d frtx=%d \
         srtt=%.17g\n"
        i f.Cc.Flow.protocol s.Cc.Flow.sent_pkts s.Cc.Flow.sent_bytes
        s.Cc.Flow.delivered_bytes s.Cc.Flow.rtx_pkts s.Cc.Flow.timeouts
        s.Cc.Flow.fast_rtx s.Cc.Flow.stat_srtt)
    b.flows;
  List.iteri
    (fun j l ->
      Printf.bprintf buf "link %d" j;
      List.iter
        (fun (k, v) -> Printf.bprintf buf " %s=%d" k v)
        (Netsim.Link.counters l);
      Buffer.add_char buf '\n')
    b.links;
  Printf.bprintf buf "events=%d now=%.17g\n"
    (Engine.Sim.events_processed b.sim)
    (Engine.Sim.now b.sim);
  Buffer.contents buf

let digest_of ?sched sc =
  Digest.to_hex (Digest.string (trace_of sc (build ?sched sc)))

(* Baseline leg: default scheduler, pooled shells, full auditing, plus
   end-of-run sweeps — per-link conservation and a per-flow data-packet
   balance (every data packet sent is delivered, dropped, or still in the
   network; a negative residue means a packet was double-counted). *)
let pkt_size = 1000.

let audited_digest sc =
  Engine.Audit.with_flags ~lifetime:true ~invariants:true (fun () ->
      match
        let b = build sc in
        let n = List.length b.flows in
        let drops = Array.make (max 1 n) 0 in
        List.iter
          (fun l ->
            Netsim.Link.on_drop l (fun pkt ->
                let fl = pkt.Netsim.Packet.flow in
                if (not (Netsim.Packet.is_ack pkt)) && fl >= 0 && fl < n then
                  drops.(fl) <- drops.(fl) + 1))
          b.links;
        let trace = trace_of sc b in
        List.iter Netsim.Link.check_conservation b.links;
        List.iteri
          (fun i (f : Cc.Flow.t) ->
            let s = f.Cc.Flow.stats () in
            let received =
              int_of_float ((s.Cc.Flow.delivered_bytes /. pkt_size) +. 0.5)
            in
            let residue = s.Cc.Flow.sent_pkts - received - drops.(i) in
            if residue < 0 then
              Engine.Audit.fail
                "flow %d (%s): data-packet conservation violated — sent=%d \
                 but delivered=%d + dropped=%d"
                i f.Cc.Flow.protocol s.Cc.Flow.sent_pkts received drops.(i))
          b.flows;
        let delivered =
          Array.of_list
            (List.map
               (fun (f : Cc.Flow.t) -> f.Cc.Flow.bytes_delivered ())
               b.flows)
        in
        (trace, delivered)
      with
      | trace, delivered -> Ok (Digest.to_hex (Digest.string trace), delivered)
      | exception Engine.Audit.Violation msg -> Error msg)

let with_pooling enabled f =
  let saved = Netsim.Packet.pooling () in
  Netsim.Packet.set_pooling enabled;
  Fun.protect
    ~finally:(fun () -> Netsim.Packet.set_pooling saved)
    f

(* ------------------------------------------------------------------ *)
(* Differential check                                                  *)
(* ------------------------------------------------------------------ *)

(* Hybrid fast-forward leg: the same scenario with the fluid controller
   enabled (dumbbell only — one watched link — and only when every flow
   carries analytic ff hooks; otherwise [build] attaches nothing and the
   leg is vacuous).  Fuzz scenarios are transient-free after the
   staggered starts, so the controller is free to freeze any steady
   span.  Hybrid results are approximate by design, so unlike the other
   legs this one is judged by a relative tolerance on per-flow and
   aggregate delivered bytes — plus exact link conservation, which the
   fluid credits must preserve to the packet. *)
let ff_rel_tol = 0.35
let ff_floor_bytes = 100. *. pkt_size

let ff_leg sc ~base_delivered =
  match sc.topology with
  | Parking_lot _ -> None
  | Dumbbell -> (
    match
      Engine.Audit.with_flags ~lifetime:false ~invariants:true (fun () ->
          match
            let b = build ~fastforward:Engine.Fastforward.On sc in
            Engine.Sim.run ~until:sc.duration b.sim;
            List.iter Netsim.Link.check_conservation b.links;
            List.map (fun (f : Cc.Flow.t) -> f.Cc.Flow.bytes_delivered ())
              b.flows
          with
          | delivered -> Ok delivered
          | exception Engine.Audit.Violation msg -> Error msg)
    with
    | Error msg ->
      Some (Printf.sprintf "fastforward leg invariant violation: %s" msg)
    | Ok delivered ->
      let total_base = Array.fold_left ( +. ) 0. base_delivered in
      let total_ff = List.fold_left ( +. ) 0. delivered in
      let out_of_band what base ff =
        if base > ff_floor_bytes && Float.abs (ff -. base) > ff_rel_tol *. base
        then
          Some
            (Printf.sprintf
               "divergence on fastforward: %s delivered %.0f B pure vs %.0f \
                B hybrid (tol %.0f%%)"
               what base ff (ff_rel_tol *. 100.))
        else None
      in
      let per_flow =
        List.fold_left
          (fun (i, acc) ff ->
            ( i + 1,
              match acc with
              | Some _ -> acc
              | None ->
                out_of_band (Printf.sprintf "flow %d" i) base_delivered.(i) ff
            ))
          (0, None) delivered
        |> snd
      in
      (match per_flow with
      | Some _ -> per_flow
      | None -> out_of_band "aggregate" total_base total_ff))

(* [check ?pool sc] returns [None] when every leg agrees and no invariant
   fires, otherwise a description of the first failure.  Legs:
   1. audited baseline (default scheduler, pooled, invariants+lifetime);
   2. the other scheduler;
   3. fresh allocation (pooling off);
   4. the same run inside a pool worker domain (when [pool] has > 1
      workers) — exercises the per-domain freelists and shared memo
      caches the parallel sweeps rely on;
   5. the hybrid fast-forward leg, tolerance-based (see [ff_leg]). *)
let check ?pool sc =
  match audited_digest sc with
  | Error msg -> Some (Printf.sprintf "invariant violation: %s" msg)
  | Ok (base, base_delivered) ->
    let differs axis digest =
      if digest <> base then
        Some
          (Printf.sprintf
             "divergence on %s: baseline digest %s, %s digest %s" axis base
             axis digest)
      else None
    in
    let other_sched =
      match Engine.Scheduler.get_default () with
      | Engine.Scheduler.Heap -> Engine.Scheduler.Calendar
      | Engine.Scheduler.Calendar -> Engine.Scheduler.Heap
    in
    let check_sched () =
      differs
        (Printf.sprintf "scheduler=%s"
           (Engine.Scheduler.to_string other_sched))
        (digest_of ~sched:other_sched sc)
    in
    let check_fresh () =
      differs "allocation=fresh" (with_pooling false (fun () -> digest_of sc))
    in
    let check_jobs () =
      match pool with
      | Some pool when Engine.Pool.jobs pool > 1 ->
        let digest =
          match Engine.Pool.map_list pool (fun sc -> digest_of sc) [ sc ] with
          | [ d ] -> d
          | _ -> assert false
        in
        differs "jobs=N" digest
      | _ -> None
    in
    let check_ff () = ff_leg sc ~base_delivered in
    let ( <|> ) a b = match a with Some _ -> a | None -> b () in
    check_sched () <|> check_fresh <|> check_jobs <|> check_ff

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Candidate simplifications of a failing scenario, in decreasing order
   of aggressiveness.  Purely structural — the seed is kept, so RED's
   random stream stays comparable across steps. *)
let shrink_candidates (sc : scenario) =
  let drop_flow i = { sc with flows = List.filteri (fun j _ -> j <> i) sc.flows } in
  let nflows = List.length sc.flows in
  List.concat
    [
      (match sc.topology with
      | Parking_lot h when h > 2 -> [ { sc with topology = Parking_lot (h - 1) } ]
      | Parking_lot _ ->
        [
          {
            sc with
            topology = Dumbbell;
            flows = List.map (fun fs -> { fs with src_site = 0; dst_site = 0 }) sc.flows;
          };
        ]
      | Dumbbell -> []);
      (if nflows > 1 then List.init nflows drop_flow else []);
      (if sc.duration > 1. then [ { sc with duration = sc.duration /. 2. } ]
       else []);
      (match sc.queue with
      | Netsim.Dumbbell.Droptail -> []
      | _ -> [ { sc with queue = Netsim.Dumbbell.Droptail } ]);
    ]

(* Greedy shrink: repeatedly take the first candidate that still fails
   (any failure counts, not necessarily the original one).  Bounded by
   the structure — every accepted step removes a flow, a hop, half the
   duration or the RED machinery — plus a hard iteration cap. *)
let shrink ?pool sc failure =
  let rec go sc failure budget =
    if budget = 0 then (sc, failure)
    else
      let rec first = function
        | [] -> None
        | cand :: rest -> (
          match check ?pool cand with
          | Some f -> Some (cand, f)
          | None -> first rest)
      in
      match first (shrink_candidates sc) with
      | Some (cand, f) -> go cand f (budget - 1)
      | None -> (sc, failure)
  in
  go sc failure 40

(* ------------------------------------------------------------------ *)
(* Reproducer files and replay                                         *)
(* ------------------------------------------------------------------ *)

let save_repro ~dir ~failure sc =
  Table.ensure_dir dir;
  let path = Filename.concat dir (Printf.sprintf "repro-seed%d.json" sc.seed) in
  let doc =
    match scenario_to_json sc with
    | Json.Obj fields -> Json.Obj (fields @ [ ("failure", Json.String failure) ])
    | other -> other
  in
  let oc = open_out_bin path in
  output_string oc (Json.to_string doc ^ "\n");
  close_out oc;
  path

let load_repro path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Result.bind (Json.of_string contents) scenario_of_json

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)
(* ------------------------------------------------------------------ *)

type failure = {
  scenario : scenario;  (** as generated *)
  first_failure : string;
  shrunk : scenario;
  shrunk_failure : string;
  repro_path : string option;
}

type report = {
  seeds_run : int;
  failures : failure list;
  soa_failures : (int * string) list;
}

let run_seeds ?pool ?(quick = false) ?out_dir ?(log = fun _ -> ())
    ~seeds () =
  if seeds < 1 then invalid_arg "Fuzz.run_seeds: seeds >= 1";
  let failures = ref [] in
  let soa_failures = ref [] in
  for seed = 0 to seeds - 1 do
    (* SoA leg: the struct-of-arrays many-flow engine must end
       byte-identical to per-object senders on a randomized instance. *)
    (match Manyflow.fuzz_check ~quick seed with
    | None -> ()
    | Some msg ->
      log (Printf.sprintf "seed %d SoA FAILED: %s" seed msg);
      soa_failures := (seed, msg) :: !soa_failures);
    let sc = generate ~quick seed in
    (match check ?pool sc with
    | None -> ()
    | Some first_failure ->
      log
        (Printf.sprintf "seed %d FAILED: %s\n  %s" seed first_failure
           (describe sc));
      let shrunk, shrunk_failure = shrink ?pool sc first_failure in
      let repro_path =
        Option.map
          (fun dir -> save_repro ~dir ~failure:shrunk_failure shrunk)
          out_dir
      in
      (match repro_path with
      | Some p -> log (Printf.sprintf "  reproducer: %s" p)
      | None -> ());
      failures :=
        { scenario = sc; first_failure; shrunk; shrunk_failure; repro_path }
        :: !failures);
    if (seed + 1) mod 25 = 0 then
      log
        (Printf.sprintf "%d/%d seeds, %d failure(s), %d SoA failure(s)"
           (seed + 1) seeds
           (List.length !failures)
           (List.length !soa_failures))
  done;
  {
    seeds_run = seeds;
    failures = List.rev !failures;
    soa_failures = List.rev !soa_failures;
  }
