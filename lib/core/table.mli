(** Plain-text result tables: every experiment renders one (or more) of
    these, mirroring a figure of the paper. *)

type t = {
  id : string;  (** e.g. "fig4" *)
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string ->
  title:string ->
  columns:string list ->
  ?notes:string list ->
  string list list ->
  t

val print : Format.formatter -> t -> unit

(** [ensure_dir dir] creates [dir] and any missing parents; raises
    [Invalid_argument] when a path component exists as a regular file. *)
val ensure_dir : string -> unit

(** Strict CSV rendering: header line and data rows only (notes are kept
    out of the body — see {!save_csv} and {!Manifest}).  Cells containing
    commas or quotes are quoted. *)
val to_csv : t -> string

(** [save_csv ~dir t] writes [dir/<id>.csv], creating [dir] (and parents)
    as needed; raises [Invalid_argument] when a path component exists as a
    regular file.  Non-empty notes go to a [dir/<id>.notes.txt] sidecar
    rather than into the CSV body. *)
val save_csv : dir:string -> t -> string

(** Rows-only JSONL: one minified JSON object per row,
    [{"row": i, "cells": {"<col>": "<raw cell>", ...}}], exactly the bytes
    {!Manifest.save_jsonl} writes next to the CSV.  Cells keep the exact
    strings of the table; ragged rows keep only cells that have a column. *)
val rows_to_jsonl : t -> string

(** Full-fidelity JSONL: a header object
    [{"id": ..., "title": ..., "columns": [...], "notes": [...]}] followed
    by the exact row lines of {!rows_to_jsonl}.  Storage format of
    {!Result_cache}; inverted by {!of_jsonl}. *)
val to_jsonl : t -> string

(** Inverse of {!to_jsonl}.  The round-trip is exact — it preserves
    {!Manifest.table_digest} byte-for-byte — for every table whose rows
    are at most as wide as the column list (wider rows are truncated at
    write time).  Errors on malformed lines, out-of-order row indices and
    cells that do not belong to the table. *)
val of_jsonl : string -> (t, string) result

(** Formatting helpers. *)
val fnum : float -> string

val fpct : float -> string
