module Json = Engine.Json

let schema = "slowcc-workqueue/1"

type job = { index : int; name : string; est_wall_s : float option }

type t = {
  dir : string;
  fingerprint : string;
  quick : bool;
  jobs : job list; (* submission order *)
}

let dir t = t.dir
let fingerprint t = t.fingerprint
let quick t = t.quick
let jobs t = t.jobs
let queue_file d = Filename.concat d "queue.json"
let todo_dir t = Filename.concat t.dir "todo"
let claims_dir t = Filename.concat t.dir "claims"
let done_dir t = Filename.concat t.dir "done"
let tmp_dir t = Filename.concat t.dir "tmp"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic publish: exclusive temp under the queue's own tmp/ then rename.
   Both marker writes (done) and queue.json go through here so no reader
   can observe a torn file. *)
let write_file_atomic t path contents =
  let tmp =
    Filename.temp_file ~temp_dir:(tmp_dir t) (Filename.basename path) ".tmp"
  in
  let oc = open_out_bin tmp in
  (try output_string oc contents
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let list_dir d = try Sys.readdir d with Sys_error _ -> [||]

(* ------------------------------------------------------------------ *)
(* Naming                                                              *)
(* ------------------------------------------------------------------ *)

(* The claimable file's base name is "NNN-<unit>" where NNN is the job's
   longest-processing-time-first rank: a sorted directory scan IS the LPT
   schedule, so workers need no shared state to agree on execution order.
   The base name survives the whole todo -> claims -> done lifecycle, so
   requeueing and completion always land back on the same identity. *)
let base_name ~rank name = Printf.sprintf "%03d-%s" rank name

let claim_marker = ".claim."

(* claims/<base>.claim.<worker>.<expiry-ms>: everything recovery needs is
   in the filename — readable from a single readdir, no content parsing,
   no mtime trust across machines (the worker stamps its own clock, which
   is the clock peers on the same filesystem compare against). *)
let claim_name ~base ~worker ~expiry_ms =
  Printf.sprintf "%s%s%s.%d" base claim_marker worker expiry_ms

let parse_claim_name s =
  match String.index_opt s '.' with
  | None -> None
  | Some _ -> (
    (* base is everything before ".claim."; worker and expiry follow. *)
    let marker_len = String.length claim_marker in
    let rec find i =
      if i + marker_len > String.length s then None
      else if String.sub s i marker_len = claim_marker then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some i -> (
      let base = String.sub s 0 i in
      let rest = String.sub s (i + marker_len) (String.length s - i - marker_len) in
      match String.rindex_opt rest '.' with
      | None -> None
      | Some j -> (
        let worker = String.sub rest 0 j in
        match int_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1)) with
        | Some expiry_ms -> Some (base, worker, expiry_ms)
        | None -> None)))

let sanitize_worker s =
  let s =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> c | _ -> '-')
      s
  in
  if s = "" then "worker" else s

let ms_of_s s = int_of_float (Float.round (s *. 1000.))

(* ------------------------------------------------------------------ *)
(* Seeding and loading                                                 *)
(* ------------------------------------------------------------------ *)

let job_json j =
  Json.Obj
    [
      ("index", Json.Int j.index);
      ("unit", Json.String j.name);
      ( "est_wall_s",
        match j.est_wall_s with Some e -> Json.Float e | None -> Json.Null );
    ]

let job_of_json doc =
  match (Json.member "index" doc, Json.member "unit" doc) with
  | Some (Json.Int index), Some (Json.String name) ->
    let est_wall_s =
      match Json.member "est_wall_s" doc with
      | Some (Json.Float e) -> Some e
      | Some (Json.Int e) -> Some (float_of_int e)
      | _ -> None
    in
    Ok { index; name; est_wall_s }
  | _ -> Error "malformed job record"

(* LPT rank: indices sorted longest-estimate-first; the sort is stable so
   ties and absent estimates keep submission order — mirroring the domain
   pool's [lpt_order], which this backend replaces at unit granularity. *)
let lpt_ranks jobs =
  let arr = Array.of_list jobs in
  let cost j =
    match j.est_wall_s with
    | Some c when Float.is_finite c -> c
    | Some _ | None -> 0.
  in
  List.stable_sort
    (fun a b -> Float.compare (cost arr.(b)) (cost arr.(a)))
    (List.init (Array.length arr) Fun.id)

let seed ~dir ~fingerprint ~quick ~jobs =
  if Sys.file_exists (queue_file dir) then
    raise (Sys_error (dir ^ ": already contains a work queue"));
  let jobs =
    List.mapi (fun index (name, est_wall_s) -> { index; name; est_wall_s }) jobs
  in
  let t = { dir; fingerprint; quick; jobs } in
  List.iter Table.ensure_dir [ dir; todo_dir t; claims_dir t; done_dir t; tmp_dir t ];
  let doc =
    Json.Obj
      [
        ("schema", Json.String schema);
        ("fingerprint", Json.String fingerprint);
        ("quick", Json.Bool quick);
        ("jobs", Json.List (List.map job_json jobs));
      ]
  in
  write_file_atomic t (queue_file dir) (Json.to_string doc ^ "\n");
  let arr = Array.of_list jobs in
  List.iteri
    (fun rank i ->
      let j = arr.(i) in
      write_file_atomic t
        (Filename.concat (todo_dir t) (base_name ~rank j.name))
        (Json.to_string ~minify:true (job_json j) ^ "\n"))
    (lpt_ranks jobs);
  t

let load ~dir =
  let ( let* ) = Result.bind in
  match read_file (queue_file dir) with
  | exception Sys_error e -> Error e
  | raw ->
    let* doc = Json.of_string raw in
    let* () =
      match Json.member "schema" doc with
      | Some (Json.String s) when s = schema -> Ok ()
      | _ -> Error "schema tag missing or unknown"
    in
    let* fingerprint =
      match Json.member "fingerprint" doc with
      | Some (Json.String f) -> Ok f
      | _ -> Error "fingerprint missing"
    in
    let* quick =
      match Json.member "quick" doc with
      | Some (Json.Bool q) -> Ok q
      | _ -> Error "quick flag missing"
    in
    let* jobs =
      match Json.member "jobs" doc with
      | Some (Json.List specs) ->
        List.fold_left
          (fun acc spec ->
            let* acc = acc in
            let* j = job_of_json spec in
            Ok (j :: acc))
          (Ok []) specs
        |> Result.map List.rev
      | _ -> Error "job list missing"
    in
    Ok { dir; fingerprint; quick; jobs }

(* ------------------------------------------------------------------ *)
(* Claim / finish / requeue                                            *)
(* ------------------------------------------------------------------ *)

type claimed = { job : job; base : string; claim_path : string }

let claimed_job c = c.job

(* Atomic-rename claim: exactly one process wins the rename of a given
   todo file; losers see [Sys_error] and move to the next candidate.  The
   job spec travels inside the file, so the winner re-reads it from its
   new home — no shared state beyond the filesystem. *)
let try_claim t ~worker ~now ~lease_s =
  let names = list_dir (todo_dir t) in
  Array.sort String.compare names;
  let expiry_ms = ms_of_s (now +. lease_s) in
  let rec go i =
    if i >= Array.length names then None
    else
      let base = names.(i) in
      let claim_path =
        Filename.concat (claims_dir t) (claim_name ~base ~worker ~expiry_ms)
      in
      match Sys.rename (Filename.concat (todo_dir t) base) claim_path with
      | exception Sys_error _ -> go (i + 1) (* lost the race; next *)
      | () -> (
        match
          Result.bind (Json.of_string (read_file claim_path)) job_of_json
        with
        | Ok job -> Some { job; base; claim_path }
        | Error _ | (exception Sys_error _) ->
          (* Unreadable claim (should not happen: seeded atomically).
             Treat as consumed so the queue cannot wedge on it. *)
          go (i + 1))
  in
  go 0

let finish t c ~wall_s ~result =
  let fields =
    [
      ("unit", Json.String c.job.name);
      ("index", Json.Int c.job.index);
      ("wall_s", Json.Float wall_s);
      ("ok", Json.Bool (Result.is_ok result));
    ]
    @ (match result with
      | Ok () -> []
      | Error msg -> [ ("error", Json.String msg) ])
  in
  write_file_atomic t
    (Filename.concat (done_dir t) c.base)
    (Json.to_string ~minify:true (Json.Obj fields) ^ "\n");
  (* The claim may already be gone: an expired lease requeued it while we
     were (slowly) finishing.  Harmless — the done marker above is what
     counts, and a re-execution hits the result cache. *)
  try Sys.remove c.claim_path with Sys_error _ -> ()

let requeue_expired t ~now =
  let now_ms = ms_of_s now in
  let moved = ref 0 in
  Array.iter
    (fun name ->
      match parse_claim_name name with
      | Some (base, _worker, expiry_ms) when expiry_ms < now_ms -> (
        match
          Sys.rename
            (Filename.concat (claims_dir t) name)
            (Filename.concat (todo_dir t) base)
        with
        | () -> incr moved
        | exception Sys_error _ -> () (* someone else got there first *))
      | Some _ | None -> ())
    (list_dir (claims_dir t));
  !moved

(* ------------------------------------------------------------------ *)
(* Status                                                              *)
(* ------------------------------------------------------------------ *)

type status = { todo : int; claimed : int; complete : int; total : int }

let status t =
  {
    todo = Array.length (list_dir (todo_dir t));
    claimed = Array.length (list_dir (claims_dir t));
    complete = Array.length (list_dir (done_dir t));
    total = List.length t.jobs;
  }

let drained t =
  let s = status t in
  s.todo = 0 && s.claimed = 0

let failed_units t =
  Array.to_list (list_dir (done_dir t))
  |> List.sort String.compare
  |> List.filter_map (fun name ->
         let path = Filename.concat (done_dir t) name in
         match Json.of_string (read_file path) with
         | Ok doc -> (
           match (Json.member "ok" doc, Json.member "unit" doc) with
           | Some (Json.Bool false), Some (Json.String u) -> Some u
           | _ -> None)
         | Error _ | (exception Sys_error _) -> None)

(* ------------------------------------------------------------------ *)
(* Worker loop                                                         *)
(* ------------------------------------------------------------------ *)

let worker_loop t ~worker ~now ~sleep ~lease_s ~poll_s ~run =
  let worker = sanitize_worker worker in
  let completed = ref 0 in
  let rec loop () =
    match try_claim t ~worker ~now:(now ()) ~lease_s with
    | Some c ->
      let t0 = now () in
      let result =
        match run c.job with
        | () -> Ok ()
        | exception e -> Error (Printexc.to_string e)
      in
      finish t c ~wall_s:(now () -. t0) ~result;
      incr completed;
      loop ()
    | None ->
      (* Nothing claimable.  A crashed peer's claim may be revivable —
         requeue expired leases and retry; otherwise nap until the
         outstanding claims resolve (their owners finish, or their
         leases expire into our hands). *)
      if requeue_expired t ~now:(now ()) > 0 then loop ()
      else if drained t then !completed
      else begin
        sleep poll_s;
        loop ()
      end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Cleanup                                                             *)
(* ------------------------------------------------------------------ *)

let delete t =
  let remove_all d =
    Array.iter
      (fun name -> try Sys.remove (Filename.concat d name) with Sys_error _ -> ())
      (list_dir d);
    try Sys.rmdir d with Sys_error _ -> ()
  in
  List.iter remove_all [ todo_dir t; claims_dir t; done_dir t; tmp_dir t ];
  (try Sys.remove (queue_file t.dir) with Sys_error _ -> ());
  try Sys.rmdir t.dir with Sys_error _ -> ()
