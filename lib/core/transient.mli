(** The paper's transient-response metrics (Section 3).

    - {e responsiveness}: RTTs of persistent congestion (one packet lost
      per RTT) until the sender halves its sending rate.  TCP's is 1; the
      paper quotes 4-6 for deployed TFRC.
    - {e aggressiveness}: maximum increase of the sending rate in one RTT,
      in packets per RTT, in the absence of congestion.  For AIMD(a, b)
      it is the constant [a]. *)

(** [responsiveness protocol] runs one flow to steady state under light
    loss, then applies one loss per RTT and returns the number of RTTs
    until the sending rate first falls to half its pre-congestion value
    ([None] if it never does within the horizon). *)
val responsiveness :
  ?seed:int -> ?bandwidth:float -> Protocol.t -> float option

(** [aggressiveness protocol] holds a flow at a loss-bound operating point,
    removes all losses, and returns the largest per-RTT increase of the
    sending rate (packets per RTT per RTT) over the recovery, measured
    outside slow-start. *)
val aggressiveness : ?seed:int -> ?bandwidth:float -> Protocol.t -> float

(** Table of both metrics across the paper's protocols.  The per-protocol
    measurements are independent jobs; [pool] fans them out across worker
    domains without changing the results. *)
val table : ?quick:bool -> ?pool:Engine.Pool.t -> unit -> Table.t
