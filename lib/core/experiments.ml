let fnum = Table.fnum
let fpct = Table.fpct

(* ------------------------------------------------------------------ *)
(* Parallel sweep plumbing                                             *)
(*                                                                     *)
(* Every sweep below is a list of closed, independently-seeded jobs:   *)
(* each job builds its own Sim.t and Rng.t from a fixed seed, so the   *)
(* tables are bit-identical whether the jobs run serially ([pool] is   *)
(* [None]) or on any number of worker domains.  Results are always     *)
(* reassembled in submission order.                                    *)
(* ------------------------------------------------------------------ *)

(* Timing scope of the experiment currently running, installed by
   [run_cached] around the dispatch.  When set, every batch wraps its jobs
   to measure wall time per job (recorded into the cache's timing store)
   and feeds the previous run's measurements to the pool as cost
   estimates, so batches execute longest-first.  Estimates are advisory:
   they order execution, never results, so a stale or racing read of this
   ref (nested batches run on worker domains) is harmless. *)
let current_scope : Result_cache.scope option ref = ref None

let with_scope scope f =
  current_scope := Some scope;
  Fun.protect ~finally:(fun () -> current_scope := None) f

(* Keyed form: run [(key, thunk)] jobs, get [(key, result)] in order. *)
let prun ?pool jobs =
  match (pool, !current_scope) with
  | None, _ -> List.map (fun (k, f) -> (k, f ())) jobs
  | Some pool, None -> Engine.Pool.run_jobs pool jobs
  | Some pool, Some scope ->
    let cache = Result_cache.scope_cache scope in
    let now = Result_cache.scope_now scope in
    let tkeys = Result_cache.alloc_keys scope (List.length jobs) in
    let timed =
      List.map2
        (fun tkey (k, f) ->
          ( (tkey, k),
            fun () ->
              let t0 = now () in
              let r = f () in
              Result_cache.record cache tkey (now () -. t0);
              r ))
        tkeys jobs
    in
    let cost (tkey, _) = Result_cache.estimate cache tkey in
    Engine.Pool.run_jobs pool ~cost timed
    |> List.map (fun ((_, k), r) -> (k, r))

let pmap ?pool f xs =
  List.map snd (prun ?pool (List.mapi (fun i x -> (i, fun () -> f x)) xs))

(* Scenario bandwidths.  The paper gives 15 Mbps for the 3:1 oscillation
   experiments; for the others we size the link so that steady-state
   per-flow windows land in the paper's regime (a few percent loss). *)
let bw_restart = 60e6 (* 20 flows + half-link CBR -> ~7 pkts/RTT each *)
let bw_flash = 10e6
let bw_wave_31 = 15e6
let bw_wave_101 = 10e6
let bw_fair = 10e6
let bw_double = 10e6
let bw_pattern = 10e6

let gammas_full = [ 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. ]
let gammas_quick = [ 2.; 16.; 256. ]
let gamma_sweep quick = if quick then gammas_quick else gammas_full

let restart_families =
  [
    ("TCP(1/g)", fun g -> Protocol.tcp ~gamma:g);
    ("RAP(1/g)", fun g -> Protocol.rap ~gamma:g);
    ("SQRT(1/g)", fun g -> Protocol.sqrt_ ~gamma:g);
    ("TFRC(g)", fun g -> Protocol.tfrc ~k:(int_of_float g) ());
    ( "TFRC(g)+SC",
      fun g -> Protocol.tfrc ~conservative:true ~k:(int_of_float g) () );
  ]

(* ------------------------------------------------------------------ *)
(* Figure 3: loss-rate time series around the CBR restart              *)
(* ------------------------------------------------------------------ *)

let fig3 ?(quick = false) ?pool () =
  let protocols =
    if quick then
      [
        ("TCP(1/2)", Protocol.tcp ~gamma:2.);
        ("TFRC(256)", Protocol.tfrc ~k:256 ());
        ("TFRC(256)+SC", Protocol.tfrc ~conservative:true ~k:256 ());
      ]
    else
      [
        ("TCP(1/2)", Protocol.tcp ~gamma:2.);
        ("TCP(1/256)", Protocol.tcp ~gamma:256.);
        ("SQRT(1/256)", Protocol.sqrt_ ~gamma:256.);
        ("RAP(1/256)", Protocol.rap ~gamma:256.);
        ("TFRC(256)", Protocol.tfrc ~k:256 ());
        ("TFRC(256)+SC", Protocol.tfrc ~conservative:true ~k:256 ());
      ]
  in
  let duration = if quick then 230. else 300. in
  let results =
    prun ?pool
      (List.map
         (fun (name, p) ->
           ( name,
             fun () ->
               Scenarios.cbr_restart ~duration ~protocol:p
                 ~bandwidth:bw_restart () ))
         protocols)
  in
  let sample_times =
    List.init 17 (fun i -> 175. +. (2.5 *. float_of_int i))
    |> List.filter (fun time -> time < duration)
  in
  let rows =
    List.map
      (fun time ->
        fnum time
        :: List.map
             (fun (_, (r : Scenarios.cbr_restart_result)) ->
               let v =
                 Metrics.mean_between r.Scenarios.loss_series ~lo:time
                   ~hi:(time +. 2.5)
               in
               fpct v)
             results)
      sample_times
  in
  let notes =
    List.map
      (fun (name, (r : Scenarios.cbr_restart_result)) ->
        Printf.sprintf "%s steady-state loss %s" name (fpct r.Scenarios.steady_loss))
      results
  in
  Table.make ~id:"fig3" ~title:"Drop rate after CBR restart at t=180s (2.5s bins)"
    ~columns:("time(s)" :: List.map fst results)
    ~notes rows

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5: stabilization time and cost vs gamma               *)
(* ------------------------------------------------------------------ *)

let stabilization_sweep ?(queue = Netsim.Dumbbell.Red) ?pool ~quick () =
  let gammas = gamma_sweep quick in
  (* One job per (family, gamma) cell — the full matrix fans out at once
     instead of nesting a serial gamma loop inside each family. *)
  let jobs =
    List.concat_map
      (fun (family, make) ->
        List.map
          (fun g ->
            ( (family, g),
              fun () ->
                let r =
                  Scenarios.cbr_restart ~queue ~protocol:(make g)
                    ~bandwidth:bw_restart ()
                in
                r.Scenarios.stab ))
          gammas)
      restart_families
  in
  let cells = prun ?pool jobs in
  List.map
    (fun (family, _) ->
      ( family,
        List.filter_map
          (fun ((family', g), stab) ->
            if String.equal family family' then Some (g, stab) else None)
          cells ))
    restart_families

let stab_tables ~id_time ~id_cost ~title_suffix sweep gammas =
  let col_names = "gamma" :: List.map fst sweep in
  let time_rows =
    List.map
      (fun g ->
        fnum g
        :: List.map
             (fun (_, cells) ->
               match List.assoc g (List.map (fun (g', s) -> (g', s)) cells) with
               | Some (s : Metrics.stabilization) -> fnum s.Metrics.time_rtts
               | None -> "-")
             sweep)
      gammas
  in
  let cost_rows =
    List.map
      (fun g ->
        fnum g
        :: List.map
             (fun (_, cells) ->
               match List.assoc g cells with
               | Some (s : Metrics.stabilization) -> fnum s.Metrics.cost
               | None -> "-")
             sweep)
      gammas
  in
  ( Table.make ~id:id_time
      ~title:("Stabilization time in RTTs vs gamma" ^ title_suffix)
      ~columns:col_names time_rows,
    Table.make ~id:id_cost
      ~title:("Stabilization cost vs gamma" ^ title_suffix)
      ~columns:col_names cost_rows )

let fig4_fig5 ?(quick = false) ?pool () =
  let sweep = stabilization_sweep ?pool ~quick () in
  stab_tables ~id_time:"fig4" ~id_cost:"fig5" ~title_suffix:" (RED)" sweep
    (gamma_sweep quick)

(* ------------------------------------------------------------------ *)
(* Figure 6: flash crowd                                               *)
(* ------------------------------------------------------------------ *)

let fig6 ?(quick = false) ?pool () =
  let protocols =
    [
      ("TCP(1/2)", Protocol.tcp ~gamma:2.);
      ("TFRC(256)", Protocol.tfrc ~k:256 ());
      ("TFRC(256)+SC", Protocol.tfrc ~conservative:true ~k:256 ());
    ]
  in
  let duration = if quick then 45. else 60. in
  let results =
    prun ?pool
      (List.map
         (fun (name, p) ->
           ( name,
             fun () ->
               Scenarios.flash_crowd ~duration ~protocol:p
                 ~bandwidth:bw_flash () ))
         protocols)
  in
  let times = List.init 21 (fun i -> 20. +. float_of_int i) in
  let mbps ts lo = Metrics.mean_between ts ~lo ~hi:(lo +. 1.) *. 8. /. 1e6 in
  let rows =
    List.map
      (fun time ->
        fnum time
        :: List.concat_map
             (fun (_, (r : Scenarios.flash_crowd_result)) ->
               [ fnum (mbps r.Scenarios.bg_rate time);
                 fnum (mbps r.Scenarios.crowd_rate time) ])
             results)
      (List.filter (fun time -> time +. 1. < duration) times)
  in
  let notes =
    List.map
      (fun (name, (r : Scenarios.flash_crowd_result)) ->
        Printf.sprintf "%s: crowd %d/%d flows done, mean completion %.2fs"
          name r.Scenarios.crowd_completed r.Scenarios.crowd_started
          r.Scenarios.mean_completion)
      results
  in
  Table.make ~id:"fig6"
    ~title:"Aggregate throughput (Mbps) around flash crowd at t=25s"
    ~columns:
      ("time(s)"
      :: List.concat_map
           (fun (name, _) -> [ name ^ " bg"; name ^ " crowd" ])
           results)
    ~notes rows

(* ------------------------------------------------------------------ *)
(* Figures 7-9: long-term fairness under a 3:1 square wave             *)
(* ------------------------------------------------------------------ *)

let periods_full = [ 0.2; 0.4; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 100. ]
let periods_quick = [ 0.4; 4.; 32. ]

let fairness_wave ~id ~quick ?pool ~other_name ~other () =
  let periods = if quick then periods_quick else periods_full in
  let tcp = Protocol.tcp ~gamma:2. in
  let rows =
    pmap ?pool
      (fun period ->
        let r =
          Scenarios.square_wave
            ~measure:(if quick then Float.max 60. (4. *. period) else Float.max 100. (8. *. period))
            ~flows:[ (tcp, 5); (other, 5) ]
            ~bandwidth:bw_wave_31 ~cbr_fraction:(2. /. 3.) ~period ()
        in
        [
          fnum period;
          fnum (r.Scenarios.group_mean (Protocol.name tcp));
          fnum (r.Scenarios.group_mean (Protocol.name other));
          fnum r.Scenarios.utilization;
          fpct r.Scenarios.drop_rate;
        ])
      periods
  in
  Table.make ~id
    ~title:
      (Printf.sprintf
         "Normalized throughput, 5 TCP vs 5 %s, 3:1 bandwidth oscillation"
         other_name)
    ~columns:[ "period(s)"; "TCP"; other_name; "util"; "drop rate" ]
    ~notes:
      [ "normalized: 1.0 = fair share of the average available bandwidth" ]
    rows

let fig7 ?(quick = false) ?pool () =
  fairness_wave ~id:"fig7" ~quick ?pool ~other_name:"TFRC(6)"
    ~other:(Protocol.tfrc ~k:6 ()) ()

let fig8 ?(quick = false) ?pool () =
  fairness_wave ~id:"fig8" ~quick ?pool ~other_name:"TCP(1/8)"
    ~other:(Protocol.tcp ~gamma:8.) ()

let fig9 ?(quick = false) ?pool () =
  fairness_wave ~id:"fig9" ~quick ?pool ~other_name:"SQRT(1/2)"
    ~other:(Protocol.sqrt_ ~gamma:2.) ()

(* ------------------------------------------------------------------ *)
(* Figures 10 and 12: delta-fair convergence times                     *)
(* ------------------------------------------------------------------ *)

let convergence_table ~id ~title ?pool ~protocol_of ~params ~quick () =
  let n_trials = if quick then 1 else 3 in
  let cap = if quick then 200. else 600. in
  (* Parallelism comes from the param sweep; the per-param trials also
     take the pool but run inline when already on a worker domain. *)
  let rows =
    pmap ?pool
      (fun param ->
        let time, converged =
          Scenarios.fair_convergence ?pool ~n_trials ~cap
            ~protocol:(protocol_of param) ~bandwidth:bw_fair ()
        in
        [
          fnum param;
          (if converged = 0 then Printf.sprintf ">%.0f" cap else fnum time);
          Printf.sprintf "%d/%d" converged n_trials;
        ])
      params
  in
  Table.make ~id ~title
    ~columns:[ "1/b"; "time to 0.1-fair (s)"; "converged" ]
    rows

let fig10 ?(quick = false) ?pool () =
  let params = if quick then [ 2.; 8.; 64. ] else [ 2.; 4.; 8.; 16.; 32.; 64.; 128. ] in
  convergence_table ~id:"fig10"
    ~title:"Time to 0.1-fairness for two TCP(b) flows, B = 10 Mbps"
    ?pool
    ~protocol_of:(fun g -> Protocol.tcp ~gamma:g)
    ~params ~quick ()

let fig12 ?(quick = false) ?pool () =
  let params = if quick then [ 2.; 8.; 64. ] else [ 2.; 4.; 8.; 16.; 32.; 64.; 256. ] in
  convergence_table ~id:"fig12"
    ~title:"Time to 0.1-fairness for two TFRC(b) flows, B = 10 Mbps"
    ?pool
    ~protocol_of:(fun g -> Protocol.tfrc ~k:(int_of_float g) ())
    ~params ~quick ()

(* ------------------------------------------------------------------ *)
(* Figure 11: analytical ACK count for 0.1-fairness                    *)
(* ------------------------------------------------------------------ *)

let fig11 ?quick:_ ?pool:_ () =
  let bs = [ 0.5; 0.25; 0.125; 1. /. 16.; 1. /. 32.; 1. /. 64.; 1. /. 128.; 1. /. 256. ] in
  let rows =
    List.map
      (fun b ->
        [
          fnum (1. /. b);
          Printf.sprintf "%.0f"
            (Analysis.Aimd_convergence.acks_to_fairness ~b ~p:0.1 ~delta:0.1);
        ])
      bs
  in
  Table.make ~id:"fig11"
    ~title:"Expected ACKs to 0.1-fairness, analytical, p = 0.1"
    ~columns:[ "1/b"; "acks" ]
    ~notes:[ "log(delta) / log(1 - b p) from Section 4.2.2" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 13: f(20) and f(200) after a bandwidth doubling              *)
(* ------------------------------------------------------------------ *)

let fig13 ?(quick = false) ?pool () =
  let params = if quick then [ 2.; 8.; 256. ] else [ 2.; 4.; 8.; 16.; 64.; 256. ] in
  let t_stop = if quick then 60. else 300. in
  let families =
    [
      ("TCP(1/b)", fun g -> Protocol.tcp ~gamma:g);
      ("SQRT(1/b)", fun g -> Protocol.sqrt_ ~gamma:g);
      ("TFRC(b)", fun g -> Protocol.tfrc ~k:(int_of_float g) ());
    ]
  in
  (* Flatten the params x families matrix into one job list. *)
  let cells =
    prun ?pool
      (List.concat_map
         (fun g ->
           List.map
             (fun (fam, make) ->
               ( (g, fam),
                 fun () ->
                   let r =
                     Scenarios.bandwidth_double ~t_stop ~protocol:(make g)
                       ~bandwidth:bw_double ()
                   in
                   (r.Scenarios.f20, r.Scenarios.f200) ))
             families)
         params)
  in
  let rows =
    List.map
      (fun g ->
        fnum g
        :: List.concat_map
             (fun (fam, _) ->
               let f20, f200 = List.assoc (g, fam) cells in
               [ fnum f20; fnum f200 ])
             families)
      params
  in
  Table.make ~id:"fig13"
    ~title:"Link utilization f(20), f(200) after the bandwidth doubles"
    ~columns:
      ("1/b"
      :: List.concat_map (fun (n, _) -> [ n ^ " f20"; n ^ " f200" ]) families)
    rows

(* ------------------------------------------------------------------ *)
(* Figures 14-16: utilization under homogeneous oscillating load       *)
(* ------------------------------------------------------------------ *)

let onoff_times_full = [ 0.05; 0.1; 0.2; 0.5; 1.; 2.; 5. ]
let onoff_times_quick = [ 0.05; 0.2; 1. ]

let homogeneous_wave ?pool ~quick ~bandwidth ~cbr_fraction () =
  let onoffs = if quick then onoff_times_quick else onoff_times_full in
  let protocols =
    [
      ("TCP(1/8)", Protocol.tcp ~gamma:8.);
      ("TCP", Protocol.tcp ~gamma:2.);
      ("TFRC(6)", Protocol.tfrc ~k:6 ());
    ]
  in
  (* One job per (on/off time, protocol) cell. *)
  let cells =
    prun ?pool
      (List.concat_map
         (fun onoff ->
           List.map
             (fun (name, p) ->
               ( (onoff, name),
                 fun () ->
                   Scenarios.square_wave
                     ~measure:(if quick then 60. else 120.)
                     ~flows:[ (p, 10) ] ~bandwidth ~cbr_fraction
                     ~period:(2. *. onoff) () ))
             protocols)
         onoffs)
  in
  List.map
    (fun onoff ->
      ( onoff,
        List.map
          (fun (name, _) -> (name, List.assoc (onoff, name) cells))
          protocols ))
    onoffs

let wave_util_tables ~id_util ~id_drop ~title results =
  let proto_names =
    match results with
    | (_, first) :: _ -> List.map fst first
    | [] -> []
  in
  let util_rows =
    List.map
      (fun (onoff, cells) ->
        fnum onoff
        :: List.map
             (fun (_, (r : Scenarios.square_wave_result)) ->
               fnum r.Scenarios.utilization)
             cells)
      results
  in
  let drop_rows =
    List.map
      (fun (onoff, cells) ->
        fnum onoff
        :: List.map
             (fun (_, (r : Scenarios.square_wave_result)) ->
               fpct r.Scenarios.drop_rate)
             cells)
      results
  in
  ( Table.make ~id:id_util ~title:(title ^ ": link utilization")
      ~columns:("on/off(s)" :: proto_names)
      util_rows,
    Table.make ~id:id_drop ~title:(title ^ ": packet drop rate")
      ~columns:("on/off(s)" :: proto_names)
      drop_rows )

let fig14_fig15 ?(quick = false) ?pool () =
  let results =
    homogeneous_wave ?pool ~quick ~bandwidth:bw_wave_31
      ~cbr_fraction:(2. /. 3.) ()
  in
  wave_util_tables ~id_util:"fig14" ~id_drop:"fig15"
    ~title:"3:1 oscillating bandwidth, 10 identical flows" results

let fig16 ?(quick = false) ?pool () =
  let results =
    homogeneous_wave ?pool ~quick ~bandwidth:bw_wave_101 ~cbr_fraction:0.9 ()
  in
  let util, _ =
    wave_util_tables ~id_util:"fig16" ~id_drop:"fig16-drop"
      ~title:"10:1 oscillating bandwidth, 10 identical flows" results
  in
  util

(* ------------------------------------------------------------------ *)
(* Figures 17-19: designed bursty loss patterns                        *)
(* ------------------------------------------------------------------ *)

let mild_pattern = Scenarios.Counts [ 50; 50; 50; 400; 400; 400 ]
let harsh_pattern = Scenarios.Phases [ (6.0, 200); (1.0, 4) ]

let pattern_table ~id ~title ?pool ~pattern ~protocols ~quick () =
  let duration = if quick then 40. else 60. in
  let results =
    prun ?pool
      (List.map
         (fun (name, p) ->
           ( name,
             fun () ->
               Scenarios.loss_pattern ~duration ~protocol:p ~pattern
                 ~bandwidth:bw_pattern () ))
         protocols)
  in
  let times =
    List.init 40 (fun i -> 30. +. (0.2 *. float_of_int i))
    |> List.filter (fun time -> time < duration)
  in
  let rows =
    List.map
      (fun time ->
        fnum time
        :: List.map
             (fun (_, (r : Scenarios.loss_pattern_result)) ->
               fnum
                 (Metrics.mean_between r.Scenarios.rate_02s ~lo:time
                    ~hi:(time +. 0.2)
                 *. 8. /. 1e6))
             results)
      times
  in
  let notes =
    List.map
      (fun (name, (r : Scenarios.loss_pattern_result)) ->
        Printf.sprintf "%s: avg throughput %.2f Mbps, smoothness %.2f" name
          (r.Scenarios.avg_throughput *. 8. /. 1e6)
          r.Scenarios.smoothness)
      results
  in
  Table.make ~id ~title
    ~columns:("time(s)" :: List.map (fun (n, _) -> n ^ " Mbps") results)
    ~notes rows

let fig17 ?(quick = false) ?pool () =
  pattern_table ~id:"fig17"
    ~title:"Sending rate under the mild bursty loss pattern (0.2s bins)"
    ?pool ~pattern:mild_pattern
    ~protocols:
      [
        ("TFRC(6)", Protocol.tfrc ~k:6 ());
        ("TCP(1/8)", Protocol.tcp ~gamma:8.);
      ]
    ~quick ()

let fig18 ?(quick = false) ?pool () =
  pattern_table ~id:"fig18"
    ~title:"Sending rate under the harsh bursty loss pattern (0.2s bins)"
    ?pool ~pattern:harsh_pattern
    ~protocols:
      [
        ("TFRC(6)", Protocol.tfrc ~k:6 ());
        ("TCP(1/8)", Protocol.tcp ~gamma:8.);
        ("TCP(1/2)", Protocol.tcp ~gamma:2.);
      ]
    ~quick ()

let fig19 ?(quick = false) ?pool () =
  pattern_table ~id:"fig19"
    ~title:"IIAD vs SQRT under the mild bursty loss pattern (0.2s bins)"
    ?pool ~pattern:mild_pattern
    ~protocols:
      [
        ("IIAD", Protocol.iiad ~gamma:2.);
        ("SQRT", Protocol.sqrt_ ~gamma:2.);
      ]
    ~quick ()

(* ------------------------------------------------------------------ *)
(* Figure 20: response functions with and without timeouts             *)
(* ------------------------------------------------------------------ *)

let fig20 ?quick:_ ?pool:_ () =
  let ps = [ 0.01; 0.03; 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ] in
  let rows =
    List.map
      (fun p ->
        [
          fnum p;
          fnum (Analysis.Response_function.reno_padhye ~p ());
          fnum (Analysis.Response_function.pure_aimd ~p ());
          fnum (Analysis.Response_function.aimd_with_timeouts ~p);
        ])
      ps
  in
  Table.make ~id:"fig20"
    ~title:"Throughput equations (packets/RTT) with and without timeouts"
    ~columns:[ "p"; "Reno (Padhye)"; "pure AIMD"; "AIMD w/ timeouts" ]
    ~notes:
      [
        "Reno lower-bounds TCP; AIMD-with-timeouts (Appendix A) upper-bounds it";
        "pure AIMD is only meaningful for p < ~1/3";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

(* Appendix A validation: measured TCP throughput across the whole loss
   range, overlaid on the three analytic curves of Figure 20.  The
   measured points must fall between the Reno lower bound and the
   AIMD-with-timeouts upper bound.  The minimum RTO is set to one RTT so
   the timeout backoff operates in RTT units, as the model assumes. *)
let ablation_response_sim ?(quick = false) ?pool () =
  let rtt = 0.05 in
  let drop_every = if quick then [ 100; 4 ] else [ 300; 100; 30; 10; 6; 4; 3; 2 ] in
  let measure ?(sack = false) n =
    let sim = Engine.Sim.create () in
    let rng = Engine.Rng.create ~seed:6 in
    let make_queue () =
      (* Random (Bernoulli) drops: the environment the analytic curves
         assume.  Deterministic every-n-th drops phase-lock with backoff
         retransmissions at high p. *)
      Netsim.Loss_pattern.bernoulli ~rng:(Engine.Rng.split rng)
        ~p:(1. /. float_of_int n)
        (Netsim.Droptail.make ~capacity:100000)
    in
    let config =
      {
        (Netsim.Dumbbell.default_config ~bandwidth:50e6) with
        Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
      }
    in
    let db = Netsim.Dumbbell.create ~sim ~rng config in
    let src, dst = Netsim.Dumbbell.add_host_pair db in
    let flow_id = Netsim.Dumbbell.fresh_flow db in
    let cfg =
      {
        (Cc.Window_cc.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5)) with
        Cc.Window_cc.min_rto = 4. *. rtt (* T0 = 4 RTT, as in the model *);
        sack;
      }
    in
    let tcp = Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg in
    let flow = Cc.Window_cc.flow tcp in
    flow.Cc.Flow.start ();
    let horizon = 120. in
    Engine.Sim.run ~until:horizon sim;
    flow.Cc.Flow.bytes_delivered () /. 1000. /. (horizon /. rtt)
  in
  let rows =
    pmap ?pool
      (fun n ->
        let p = 1. /. float_of_int n in
        [
          fnum p;
          fnum (measure n);
          fnum (measure ~sack:true n);
          fnum (Analysis.Response_function.reno_padhye ~p ());
          fnum (Analysis.Response_function.pure_aimd ~p ());
          fnum (Analysis.Response_function.aimd_with_timeouts ~p);
        ])
      drop_every
  in
  Table.make ~id:"ablation-response-sim"
    ~title:"Measured TCP vs the Figure 20 analytic curves (pkts/RTT)"
    ~columns:
      [ "p"; "Reno meas."; "SACK meas."; "Reno (lower)"; "pure AIMD";
        "timeouts (upper)" ]
    ~notes:
      [
        "random (Bernoulli) loss; min RTO = 4 RTT to match the model's T0";
        "measured points should track the Reno curve and sit below the \
         timeouts upper bound; Appendix A predicts SACK between the lines";
      ]
    rows

let ablation_self_clocking ?(quick = false) ?pool () =
  let gammas = if quick then [ 8.; 256. ] else [ 8.; 32.; 64.; 256. ] in
  (* One job per (gamma, conservative) run. *)
  let cells =
    prun ?pool
      (List.concat_map
         (fun g ->
           List.map
             (fun conservative ->
               ( (g, conservative),
                 fun () ->
                   let r =
                     Scenarios.cbr_restart
                       ~protocol:
                         (Protocol.tfrc ~conservative ~k:(int_of_float g) ())
                       ~bandwidth:bw_restart ()
                   in
                   match r.Scenarios.stab with
                   | Some s -> (s.Metrics.time_rtts, s.Metrics.cost)
                   | None -> (0., 0.) ))
             [ false; true ])
         gammas)
  in
  let rows =
    List.map
      (fun g ->
        let t_off, c_off = List.assoc (g, false) cells in
        let t_on, c_on = List.assoc (g, true) cells in
        [ fnum g; fnum t_off; fnum c_off; fnum t_on; fnum c_on ])
      gammas
  in
  Table.make ~id:"ablation-self-clocking"
    ~title:"TFRC(g) stabilization with and without self-clocking"
    ~columns:[ "g"; "time(RTT) off"; "cost off"; "time(RTT) on"; "cost on" ]
    rows

let ablation_conservative_c ?(quick = false) ?pool () =
  let cs = if quick then [ 1.1; 2.0 ] else [ 1.0; 1.1; 1.5; 2.0; 4.0 ] in
  let rows =
    pmap ?pool
      (fun c ->
        let r =
          Scenarios.cbr_restart
            ~protocol:
              (Protocol.tfrc ~conservative:true ~conservative_c:c ~k:256 ())
            ~bandwidth:bw_restart ()
        in
        match r.Scenarios.stab with
        | Some s -> [ fnum c; fnum s.Metrics.time_rtts; fnum s.Metrics.cost ]
        | None -> [ fnum c; "-"; "-" ])
      cs
  in
  Table.make ~id:"ablation-conservative-c"
    ~title:"Effect of the conservative option's C constant (TFRC(256)+SC)"
    ~columns:[ "C"; "stab time (RTT)"; "stab cost" ]
    rows

let ablation_sawtooth ?(quick = false) ?pool () =
  (* Section 4.2.1: sawtooth and reverse-sawtooth CBR patterns give
     "essentially the same" TCP-over-TFRC advantage as the square wave,
     only less pronounced.  Compare all three at the periods where the
     square wave separates them most. *)
  let periods = if quick then [ 4. ] else [ 2.; 4.; 8. ] in
  let tcp = Protocol.tcp ~gamma:2. and tfrc = Protocol.tfrc ~k:6 () in
  let shapes =
    [
      ("square", Scenarios.Square);
      ("sawtooth", Scenarios.Sawtooth);
      ("reverse sawtooth", Scenarios.Reverse_sawtooth);
    ]
  in
  let rows =
    pmap ?pool
      (fun (period, (shape_name, shape)) ->
        let r =
          Scenarios.square_wave ~shape
            ~measure:(if quick then 60. else 120.)
            ~flows:[ (tcp, 5); (tfrc, 5) ]
            ~bandwidth:bw_wave_31 ~cbr_fraction:(2. /. 3.) ~period ()
        in
        let m_tcp = r.Scenarios.group_mean (Protocol.name tcp) in
        let m_tfrc = r.Scenarios.group_mean (Protocol.name tfrc) in
        [
          fnum period;
          shape_name;
          fnum m_tcp;
          fnum m_tfrc;
          fnum (m_tcp /. Float.max 0.01 m_tfrc);
        ])
      (List.concat_map
         (fun period -> List.map (fun shape -> (period, shape)) shapes)
         periods)
  in
  Table.make ~id:"ablation-sawtooth"
    ~title:"TCP vs TFRC(6) under square, sawtooth and reverse-sawtooth CBR"
    ~columns:[ "period(s)"; "shape"; "TCP"; "TFRC(6)"; "TCP/TFRC" ]
    rows

let ablation_droptail ?(quick = false) ?pool () =
  let sweep =
    stabilization_sweep ~queue:Netsim.Dumbbell.Droptail ?pool ~quick:true ()
  in
  ignore quick;
  let _, cost = stab_tables ~id_time:"x" ~id_cost:"ablation-droptail"
      ~title_suffix:" (droptail)" sweep gammas_quick
  in
  cost

(* RTT unfairness (extension): the paper's introduction notes TCP does not
   equalize flows with different round-trip times.  Measure the throughput
   ratio of a short-RTT and a long-RTT flow of each protocol sharing one
   bottleneck; TCP's known bias is roughly RTT^-1..-2, while rate-based
   TFRC follows its equation's 1/R dependence. *)
let ablation_rtt_fairness ?(quick = false) ?pool () =
  let protocols =
    if quick then [ ("TCP", Protocol.tcp ~gamma:2.) ]
    else
      [
        ("TCP", Protocol.tcp ~gamma:2.);
        ("TCP(1/8)", Protocol.tcp ~gamma:8.);
        ("TFRC(6)", Protocol.tfrc ~k:6 ());
        ("SQRT(1/2)", Protocol.sqrt_ ~gamma:2.);
      ]
  in
  let rows =
    pmap ?pool
      (fun (name, p) ->
        let env = Scenarios.make_env ~seed:31 ~bandwidth:10e6 () in
        (* Base RTT 50 ms vs 150 ms (extra 25 ms per edge link). *)
        let short = Protocol.spawn p env.Scenarios.db in
        let long = Protocol.spawn ~extra_delay:0.025 p env.Scenarios.db in
        short.Cc.Flow.start ();
        long.Cc.Flow.start ();
        Engine.Sim.run ~until:120. env.Scenarios.sim;
        let ratio =
          short.Cc.Flow.bytes_delivered ()
          /. Float.max 1. (long.Cc.Flow.bytes_delivered ())
        in
        [ name; fnum ratio ])
      protocols
  in
  Table.make ~id:"ablation-rtt-fairness"
    ~title:"RTT bias: throughput(50ms flow) / throughput(150ms flow)"
    ~columns:[ "protocol"; "short/long ratio" ]
    ~notes:[ "1.0 would be RTT-independent sharing; TCP is known to be biased" ]
    rows

(* Binomial l-sweep (extension): k + l = 1 keeps TCP-compatibility; smaller
   l is more slowly-responsive (Section 2).  Sweep l and report smoothness
   under the mild bursty pattern and f(20) after a bandwidth doubling. *)
let ablation_binomial_l ?(quick = false) ?pool () =
  let ls = if quick then [ 0.; 1. ] else [ 0.; 0.25; 0.5; 0.75; 1. ] in
  let rows =
    pmap ?pool
      (fun l ->
        let k = 1. -. l in
        let b =
          (* Decrease equal to half the window at the reference point. *)
          (sqrt (1.5 /. 0.01) ** (1. -. l)) /. 2.
        in
        let a = Analysis.Binomial_calibration.calibrate_a ~k ~l ~b () in
        let rule = Cc.Window_cc.binomial ~k ~l ~a ~b in
        let spawn db =
          let sim = Netsim.Dumbbell.sim db in
          let src, dst = Netsim.Dumbbell.add_host_pair db in
          let flow_id = Netsim.Dumbbell.fresh_flow db in
          let cfg = Cc.Window_cc.default_config rule in
          Cc.Window_cc.flow (Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg)
        in
        (* Smoothness under the mild pattern. *)
        let sim = Engine.Sim.create () in
        let rng = Engine.Rng.create ~seed:8 in
        let make_queue () =
          Netsim.Loss_pattern.by_count ~pattern:[ 50; 50; 50; 400; 400; 400 ]
            (Netsim.Droptail.make ~capacity:1000)
        in
        let config =
          {
            (Netsim.Dumbbell.default_config ~bandwidth:bw_pattern) with
            Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
          }
        in
        let db = Netsim.Dumbbell.create ~sim ~rng config in
        let flow = spawn db in
        flow.Cc.Flow.start ();
        let rate =
          Engine.Probe.sample_rate sim ~every:0.2 (fun () ->
              flow.Cc.Flow.bytes_sent ())
        in
        Engine.Sim.run ~until:40. sim;
        let measured = Engine.Timeseries.create () in
        List.iter
          (fun (time, v) ->
            if time >= 10. then Engine.Timeseries.add measured ~time v)
          (Engine.Timeseries.to_list rate);
        let smooth = Metrics.smoothness ~floor:100. measured in
        let thr = flow.Cc.Flow.bytes_delivered () *. 8. /. 40. /. 1e6 in
        [ fnum l; fnum k; fnum a; fnum b; fnum smooth; fnum thr ])
      ls
  in
  Table.make ~id:"ablation-binomial-l"
    ~title:"Binomial family sweep along k + l = 1 (mild bursty pattern)"
    ~columns:[ "l"; "k"; "a"; "b"; "smoothness"; "Mbps" ]
    ~notes:
      [
        "l = 1 is AIMD (multiplicative decrease), l = 0 is IIAD-like";
        "smaller l reduces the rate by less per loss -> smoother";
      ]
    rows

(* Section 4.2.1's stronger claim: under 10:1 oscillations the TCP-over-
   TFRC throughput advantage is "significantly more prominent" than under
   3:1.  Compare the two directly at the worst-case periods. *)
let ablation_10to1_fairness ?(quick = false) ?pool () =
  let periods = if quick then [ 4. ] else [ 1.; 4.; 16. ] in
  let tcp = Protocol.tcp ~gamma:2. and tfrc = Protocol.tfrc ~k:6 () in
  let run ~bandwidth ~cbr_fraction period =
    let r =
      Scenarios.square_wave
        ~measure:(if quick then 60. else 120.)
        ~flows:[ (tcp, 5); (tfrc, 5) ]
        ~bandwidth ~cbr_fraction ~period ()
    in
    let m_tcp = r.Scenarios.group_mean (Protocol.name tcp) in
    let m_tfrc = r.Scenarios.group_mean (Protocol.name tfrc) in
    m_tcp /. Float.max 0.01 m_tfrc
  in
  (* One job per (period, oscillation depth) run. *)
  let cells =
    prun ?pool
      (List.concat_map
         (fun period ->
           [
             ( (period, `R31),
               fun () ->
                 run ~bandwidth:bw_wave_31 ~cbr_fraction:(2. /. 3.) period );
             ( (period, `R101),
               fun () -> run ~bandwidth:bw_wave_101 ~cbr_fraction:0.9 period );
           ])
         periods)
  in
  let rows =
    List.map
      (fun period ->
        [
          fnum period;
          fnum (List.assoc (period, `R31) cells);
          fnum (List.assoc (period, `R101) cells);
        ])
      periods
  in
  Table.make ~id:"ablation-10to1-fairness"
    ~title:"TCP/TFRC(6) throughput ratio: 3:1 vs 10:1 oscillations"
    ~columns:[ "period(s)"; "3:1 ratio"; "10:1 ratio" ]
    ~notes:[ "the paper reports the gap is markedly larger at 10:1" ]
    rows

(* Queue dynamics (extension, cf. the paper's reference [7]): average
   occupancy and variability of the bottleneck queue when all flows use
   one protocol, under RED and droptail.  SlowCC's gentler rate changes
   should show as a steadier queue. *)
let ablation_queue_dynamics ?(quick = false) ?pool () =
  let protocols =
    if quick then [ ("TCP", Protocol.tcp ~gamma:2.) ]
    else
      [
        ("TCP", Protocol.tcp ~gamma:2.);
        ("TCP(1/8)", Protocol.tcp ~gamma:8.);
        ("TFRC(6)", Protocol.tfrc ~k:6 ());
      ]
  in
  let queues = [ ("RED", Netsim.Dumbbell.Red); ("droptail", Netsim.Dumbbell.Droptail) ] in
  let rows =
    pmap ?pool
      (fun ((qname, queue), (pname, p)) ->
        let env = Scenarios.make_env ~seed:23 ~queue ~bandwidth:10e6 () in
            let flows = List.init 8 (fun _ -> Protocol.spawn p env.Scenarios.db) in
            List.iter (fun (f : Cc.Flow.t) -> f.Cc.Flow.start ()) flows;
            let link = Netsim.Dumbbell.bottleneck env.Scenarios.db in
            let qlen =
              Engine.Probe.sample_level env.Scenarios.sim ~every:0.05 (fun () ->
                  float_of_int ((Netsim.Link.queue link).Netsim.Queue_intf.pkts ()))
            in
            Engine.Sim.run ~until:60. env.Scenarios.sim;
            let stats = Engine.Stats.create () in
            List.iter
              (fun (time, v) -> if time > 20. then Engine.Stats.add stats v)
              (Engine.Timeseries.to_list qlen);
            [
              pname;
              qname;
              fnum (Engine.Stats.mean stats);
              fnum (Engine.Stats.stddev stats);
              fnum (Engine.Stats.cov stats);
            ])
      (List.concat_map
         (fun q -> List.map (fun p -> (q, p)) protocols)
         queues)
  in
  Table.make ~id:"ablation-queue-dynamics"
    ~title:"Bottleneck queue occupancy, 8 identical flows, 10 Mbps"
    ~columns:[ "protocol"; "queue"; "mean (pkts)"; "stddev"; "CoV" ]
    rows

(* Many-flow weak convergence (extension, cf. the paper's aggregate-regime
   discussion): an ensemble of N identical TCP flows shares a dumbbell
   sized at 16 kbit/s of fair share each, so the per-flow window sits
   below one packet per RTT and fairness is only meaningful as a
   distribution.  Runs on the struct-of-arrays engine; one run per N. *)
let manyflow_results ?(quick = false) ?pool () =
  pmap ?pool
    (fun n -> Manyflow.run (Manyflow.experiment_params ~quick n))
    (Manyflow.ns ~quick)

let manyflow_tables ?quick ?pool () =
  let results = manyflow_results ?quick ?pool () in
  let stats =
    Table.make ~id:"manyflow"
      ~title:"Many-flow weak convergence: normalized per-flow throughput"
      ~columns:
        [
          "flows"; "mean"; "CoV"; "CoV(sampled)"; "Jain"; "p10"; "p50"; "p90";
          "util"; "drop rate"; "events";
        ]
      ~notes:
        [
          "fair share = bottleneck/N = 16 kbit/s per flow at every N";
          "CoV(sampled) comes from a 256-flow deterministic reservoir";
        ]
      (List.map
         (fun (r : Manyflow.result) ->
           [
             string_of_int r.Manyflow.rn;
             fnum r.Manyflow.mean_norm;
             fnum r.Manyflow.cov;
             fnum r.Manyflow.cov_sampled;
             fnum r.Manyflow.jain;
             fnum r.Manyflow.p10;
             fnum r.Manyflow.p50;
             fnum r.Manyflow.p90;
             fpct r.Manyflow.utilization;
             fpct r.Manyflow.drop_rate;
             string_of_int r.Manyflow.events;
           ])
         results)
  in
  let hist =
    Table.make ~id:"manyflow-hist"
      ~title:"Many-flow throughput histogram (fraction of flows per bucket)"
      ~columns:
        ("flows"
        :: List.init Manyflow.hist_buckets (fun k -> Manyflow.bucket_label k))
      (List.map
         (fun (r : Manyflow.result) ->
           string_of_int r.Manyflow.rn
           :: Array.to_list (Array.map fnum r.Manyflow.hist))
         results)
  in
  (stats, hist)

(* ------------------------------------------------------------------ *)
(* Modern-CC protocol zoo: the dynamic gauntlet                        *)
(* ------------------------------------------------------------------ *)

(* The paper's question asked of today's controllers: the BBR-style and
   Vegas-style senders (plus standard TCP as the yardstick) run the four
   dynamic scenarios — CBR restart, oscillating bandwidth, flash crowd,
   designed loss pattern — and land in one digested table.  One closed
   job per (family, scenario) pair, so the sweep parallelizes and the
   table is bit-identical at any job count. *)

let bw_zoo = 15e6 (* 5 flows + half-link CBR -> ~9 pkts/RTT each *)

let zoo_families =
  [
    ("BBR", Protocol.bbr);
    ("VEGAS(2,4)", Protocol.vegas ());
    ("TCP(1/2)", Protocol.tcp ~gamma:2.);
  ]

let zoo_gauntlet ?(quick = false) ?pool () =
  let restart_duration = if quick then 230. else 300. in
  let wave_measure = if quick then 30. else 60. in
  let flash_duration = if quick then 45. else 60. in
  let pattern_duration = if quick then 40. else 60. in
  let jobs =
    List.concat_map
      (fun (fname, p) ->
        [
          ( (fname, "restart"),
            fun () ->
              let r =
                Scenarios.cbr_restart ~n_flows:5 ~duration:restart_duration
                  ~protocol:p ~bandwidth:bw_zoo ()
              in
              [
                r.Scenarios.steady_loss;
                (match r.Scenarios.stab with
                | Some s -> s.Metrics.time_rtts
                | None -> Float.nan);
              ] );
          ( (fname, "wave"),
            fun () ->
              let r =
                Scenarios.square_wave ~measure:wave_measure ~flows:[ (p, 4) ]
                  ~bandwidth:bw_zoo ~cbr_fraction:(2. /. 3.) ~period:4. ()
              in
              [ r.Scenarios.utilization; r.Scenarios.drop_rate ] );
          ( (fname, "flash"),
            fun () ->
              let r =
                Scenarios.flash_crowd ~duration:flash_duration ~protocol:p
                  ~bandwidth:bw_flash ()
              in
              [
                (if r.Scenarios.crowd_started = 0 then Float.nan
                 else
                   float_of_int r.Scenarios.crowd_completed
                   /. float_of_int r.Scenarios.crowd_started);
                r.Scenarios.mean_completion;
              ] );
          ( (fname, "pattern"),
            fun () ->
              let r =
                Scenarios.loss_pattern ~duration:pattern_duration ~protocol:p
                  ~pattern:mild_pattern ~bandwidth:bw_pattern ()
              in
              [
                r.Scenarios.avg_throughput *. 8. /. 1e6;
                r.Scenarios.smoothness;
              ] );
        ])
      zoo_families
  in
  let results = prun ?pool jobs in
  let metric fname scen i =
    match List.assoc_opt (fname, scen) results with
    | Some vs -> List.nth vs i
    | None -> Float.nan
  in
  let cell v = if Float.is_nan v then "-" else fnum v in
  let pcell v = if Float.is_nan v then "-" else fpct v in
  let rows =
    List.map
      (fun (fname, _) ->
        [
          fname;
          pcell (metric fname "restart" 0);
          cell (metric fname "restart" 1);
          pcell (metric fname "wave" 0);
          pcell (metric fname "wave" 1);
          pcell (metric fname "flash" 0);
          cell (metric fname "flash" 1);
          cell (metric fname "pattern" 0);
          cell (metric fname "pattern" 1);
        ])
      zoo_families
  in
  Table.make ~id:"zoo-gauntlet"
    ~title:
      "Protocol zoo through the dynamic gauntlet (CBR restart, oscillating \
       bandwidth, flash crowd, designed loss)"
    ~columns:
      [
        "protocol"; "restart loss"; "stab (RTTs)"; "wave util"; "wave drops";
        "crowd done"; "crowd mean (s)"; "pattern Mbps"; "smoothness";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let names =
  [
    "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11";
    "fig12"; "fig13"; "fig14"; "fig15"; "fig16"; "fig17"; "fig18"; "fig19";
    "fig20"; "table-transient"; "ablation-self-clocking";
    "ablation-conservative-c"; "ablation-droptail"; "ablation-sawtooth";
    "ablation-response-sim"; "ablation-rtt-fairness"; "ablation-binomial-l";
    "ablation-queue-dynamics"; "ablation-10to1-fairness"; "manyflow";
    "zoo-gauntlet";
  ]

let run_by_name ?(quick = false) ?pool name =
  match name with
  | "fig3" -> Some [ fig3 ~quick ?pool () ]
  | "fig4" | "fig5" ->
    let t4, t5 = fig4_fig5 ~quick ?pool () in
    Some [ t4; t5 ]
  | "fig6" -> Some [ fig6 ~quick ?pool () ]
  | "fig7" -> Some [ fig7 ~quick ?pool () ]
  | "fig8" -> Some [ fig8 ~quick ?pool () ]
  | "fig9" -> Some [ fig9 ~quick ?pool () ]
  | "fig10" -> Some [ fig10 ~quick ?pool () ]
  | "fig11" -> Some [ fig11 ~quick ?pool () ]
  | "fig12" -> Some [ fig12 ~quick ?pool () ]
  | "fig13" -> Some [ fig13 ~quick ?pool () ]
  | "fig14" | "fig15" ->
    let t14, t15 = fig14_fig15 ~quick ?pool () in
    Some [ t14; t15 ]
  | "fig16" -> Some [ fig16 ~quick ?pool () ]
  | "fig17" -> Some [ fig17 ~quick ?pool () ]
  | "fig18" -> Some [ fig18 ~quick ?pool () ]
  | "fig19" -> Some [ fig19 ~quick ?pool () ]
  | "fig20" -> Some [ fig20 ~quick ?pool () ]
  | "table-transient" -> Some [ Transient.table ~quick ?pool () ]
  | "ablation-self-clocking" -> Some [ ablation_self_clocking ~quick ?pool () ]
  | "ablation-conservative-c" -> Some [ ablation_conservative_c ~quick ?pool () ]
  | "ablation-droptail" -> Some [ ablation_droptail ~quick ?pool () ]
  | "ablation-sawtooth" -> Some [ ablation_sawtooth ~quick ?pool () ]
  | "ablation-response-sim" -> Some [ ablation_response_sim ~quick ?pool () ]
  | "ablation-rtt-fairness" -> Some [ ablation_rtt_fairness ~quick ?pool () ]
  | "ablation-binomial-l" -> Some [ ablation_binomial_l ~quick ?pool () ]
  | "ablation-queue-dynamics" -> Some [ ablation_queue_dynamics ~quick ?pool () ]
  | "ablation-10to1-fairness" -> Some [ ablation_10to1_fairness ~quick ?pool () ]
  | "manyflow" ->
    let stats, hist = manyflow_tables ~quick ?pool () in
    Some [ stats; hist ]
  | "zoo-gauntlet" -> Some [ zoo_gauntlet ~quick ?pool () ]
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Manifested and cached runs                                          *)
(* ------------------------------------------------------------------ *)

(* Scenario parameters recorded in run manifests.  Only the knobs that
   shape the named experiment are listed — everything else is a fixed
   constant of the scenario code, already pinned by the table digests. *)
let params_one ?(quick = false) name =
  let open Engine.Json in
  let floats xs = List (List.map (fun v -> Float v) xs) in
  let bw v = ("bandwidth_bps", Float v) in
  (* Hybrid fast-forward produces approximate (fluid-advanced) results,
     so the mode is part of what was computed: it joins the digested
     params — and through them the cache key — whenever it is ON.  It is
     deliberately ABSENT when off, keeping ff-off manifests and cache
     entries byte-identical with builds that predate the feature. *)
  let with_ff base =
    match Engine.Fastforward.get_default () with
    | Engine.Fastforward.Off -> base
    | Engine.Fastforward.On -> base @ [ ("fastforward", String "on") ]
  in
  with_ff
  @@
  match name with
  | "fig3" -> [ bw bw_restart ]
  | "fig4" | "fig5" -> [ bw bw_restart; ("gammas", floats (gamma_sweep quick)) ]
  | "fig6" -> [ bw bw_flash ]
  | "fig7" | "fig8" | "fig9" ->
    [ bw bw_wave_31; ("cbr_fraction", Float (2. /. 3.)) ]
  | "fig10" | "fig12" -> [ bw bw_fair ]
  | "fig11" | "fig20" -> [ ("analytic", Bool true) ]
  | "fig13" -> [ bw bw_double ]
  | "fig14" | "fig15" -> [ bw bw_wave_31 ]
  | "fig16" -> [ bw bw_wave_101; ("cbr_fraction", Float 0.9) ]
  | "fig17" | "fig18" | "fig19" -> [ bw bw_pattern ]
  | "ablation-self-clocking" | "ablation-conservative-c" -> [ bw bw_restart ]
  | "ablation-droptail" ->
    [ ("queue", String "droptail"); ("gammas", floats gammas_quick) ]
  | "ablation-sawtooth" ->
    [ bw bw_wave_31; ("cbr_fraction", Float (2. /. 3.)) ]
  | "ablation-10to1-fairness" ->
    [ ("bandwidths_bps", floats [ bw_wave_31; bw_wave_101 ]) ]
  | "manyflow" ->
    [
      ( "flows",
        List
          (List.map (fun n -> Float (float_of_int n)) (Manyflow.ns ~quick)) );
      ("per_flow_bw_bps", Float 16000.);
      ("engine", String "soa");
    ]
  | "zoo-gauntlet" ->
    [
      bw bw_zoo;
      ( "families",
        List (List.map (fun (n, _) -> String n) zoo_families) );
    ]
  | _ -> []

(* The combined run embeds every experiment's parameter record, so an
   "all" manifest carries the same provenance (and the cache the same key
   material) as the per-experiment manifests put together. *)
let params ?(quick = false) name =
  if String.equal name "all" then
    List.map
      (fun n -> (n, Engine.Json.Obj (params_one ~quick n)))
      names
  else params_one ~quick name

let scope_label ~quick name = if quick then name ^ ":quick" else name

(* Total measured wall seconds of one unit's jobs, from the timing store:
   the LPT seed estimate of the process backend.  [None] until the unit
   has run once under this binary (timing keys are fingerprint-scoped). *)
let unit_cost ~cache ~quick name =
  Result_cache.timing_sum cache ~label:(scope_label ~quick name)

let run_cached ?(quick = false) ?pool ?cache ?now name =
  if not (List.mem name names) then None
  else
    match cache with
    | None -> run_by_name ~quick ?pool name
    | Some cache -> (
      let key =
        Result_cache.key cache ~experiment:name ~quick
          ~params:(params ~quick name)
      in
      match Result_cache.lookup cache ~key with
      | Some tables -> Some tables
      | None ->
        let scope =
          Result_cache.scope ?now cache ~label:(scope_label ~quick name)
        in
        let tables = with_scope scope (fun () -> run_by_name ~quick ?pool name) in
        Option.iter
          (fun tables ->
            Result_cache.store cache ~key ~experiment:name ~quick tables;
            Result_cache.save_timings cache)
          tables;
        tables)

(* Units of computation for [all]: one entry per independently computed
   table group.  The figure pairs 4+5 and 14+15 come out of a single
   sweep, so only the first id of each pair appears (running it yields
   both tables — and both land in one cache entry). *)
let all_units = List.filter (fun n -> n <> "fig5" && n <> "fig15") names

let all ?emit ?(quick = false) ?pool ?cache ?now () =
  List.concat_map
    (fun name ->
      match run_cached ~quick ?pool ?cache ?now name with
      | Some tables ->
        (match emit with Some f -> List.iter f tables | None -> ());
        tables
      | None -> [])
    all_units

let cache_delta cache f =
  let before =
    Option.map (fun c -> (Result_cache.hits c, Result_cache.misses c)) cache
  in
  let result = f () in
  let info =
    Option.map
      (fun c ->
        let h0, m0 = Option.get before in
        ( Result_cache.hits c - h0,
          Result_cache.misses c - m0,
          Result_cache.fingerprint c ))
      cache
  in
  (result, info)

(* [now] supplies the wall clock for the manifest's (non-digested) timing
   section; it defaults to [Sys.time] so the core library stays free of a
   unix dependency — the CLI passes a real wall clock. *)
let run_to_dir ?(quick = false) ?pool ?cache ?backend ?(emit = Manifest.Both)
    ?(now = Sys.time) ~dir ~jobs name =
  let t0 = now () in
  let result, cache_info =
    cache_delta cache (fun () -> run_cached ~quick ?pool ?cache ~now name)
  in
  match result with
  | None -> None
  | Some tables ->
    let wall_s = now () -. t0 in
    let manifest_path =
      Manifest.write ?cache:cache_info ?backend ~dir ~experiment:name ~quick
        ~params:(params ~quick name) ~emit ~jobs ~wall_s tables
    in
    Some (manifest_path, tables)

let all_to_dir ?stream ?(quick = false) ?pool ?cache ?backend
    ?(emit = Manifest.Both) ?(now = Sys.time) ~dir ~jobs () =
  let t0 = now () in
  let tables, cache_info =
    cache_delta cache (fun () ->
        all ?emit:stream ~quick ?pool ?cache ~now ())
  in
  let wall_s = now () -. t0 in
  let manifest_path =
    Manifest.write ?cache:cache_info ?backend ~dir ~experiment:"all" ~quick
      ~params:(params ~quick "all") ~emit ~jobs ~wall_s tables
  in
  (manifest_path, tables)
