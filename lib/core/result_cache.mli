(** Disk-backed, content-addressed cache of experiment results, plus the
    per-job timing store that feeds the pool's cost-model (LPT)
    scheduling.

    {2 Keys}

    A cache key is the MD5 of a canonical JSON record of everything that
    determines the result bytes: the {e code fingerprint} (a digest of
    the running executable — any rebuild invalidates every entry), the
    experiment name, the [quick] flag and the experiment's parameter
    record ({!Experiments.params}).  Scheduler choice and [--jobs] are
    deliberately {e excluded}: the engine produces byte-identical tables
    under either scheduler at any worker count, so keying on them would
    split the cache without a correctness gain.  Hybrid fast-forward
    mode, by contrast, {e is} key material — it changes result bytes —
    and reaches the key through the parameter record, which carries a
    ["fastforward"] field whenever the mode is on (and no field when
    off, so ff-off entries keep their pre-feature keys).

    {2 Self-healing}

    Entries store a {!Manifest.table_digest} per table.  A lookup parses
    the stored JSONL back into {!Table.t} values and re-digests them; any
    mismatch (truncation, hand edits, bit rot) discards the entry and
    reports a miss, so stale bytes are never trusted.

    {2 Timings}

    [dir/timings.json] records measured per-job wall seconds keyed by
    ["<fp8>:<label>#<index>"], where [fp8] is the first 8 hex chars of
    the code fingerprint that measured them — so estimates recorded by a
    stale binary stop matching after a rebuild instead of misordering
    the new binary's jobs.  The store is advisory and deliberately
    outside the content-addressed scheme: estimates only order execution
    (longest-processing-time-first), they never change results. *)

type t

(** Hex MD5 of the running executable ([Sys.executable_name]), hashed
    once per process. *)
val self_fingerprint : unit -> string

(** [create ~dir ()] opens (and creates if needed) a cache directory and
    loads its timing store.  [fingerprint] overrides the executable
    digest — tests use this to simulate a code change. *)
val create : ?fingerprint:string -> dir:string -> unit -> t

val dir : t -> string
val fingerprint : t -> string

(** Hits/misses counted by {!lookup} over this instance's lifetime. *)
val hits : t -> int

val misses : t -> int

(** Content-addressed key for one experiment invocation. *)
val key :
  t ->
  experiment:string ->
  quick:bool ->
  params:(string * Engine.Json.t) list ->
  string

(** [lookup t ~key] returns the stored tables after verifying every
    per-table digest; a corrupt or truncated entry is deleted and
    reported as a miss. *)
val lookup : t -> key:string -> Table.t list option

(** [store t ~key ~experiment ~quick tables] (over)writes the entry
    atomically (write to a temp file, then rename). *)
val store :
  t -> key:string -> experiment:string -> quick:bool -> Table.t list -> unit

(** {2 Timing feedback} *)

(** Last measured wall seconds for a job key, if any. *)
val estimate : t -> string -> float option

(** Record a measured wall time (non-finite or negative values are
    ignored).  Safe to call from worker domains. *)
val record : t -> string -> float -> unit

(** [timing_sum t ~label] sums every recorded job timing of that label's
    namespace {e for this cache's fingerprint} — the total measured wall
    time of one experiment unit, used by the process backend to seed its
    work queue in LPT order.  [None] when no job of the label has a
    measurement (a rebuild intentionally loses coverage: a stale
    binary's numbers must not order the new binary's jobs). *)
val timing_sum : t -> label:string -> float option

(** Persist the timing store to [dir/timings.json] (sorted keys,
    deterministic bytes for a given content).  The on-disk file is
    re-read and merged first — this instance's entries win on conflict —
    so concurrent runs sharing a cache dir don't clobber each other's
    measurements; the write itself is atomic (unique temp + rename). *)
val save_timings : t -> unit

(** {2 Scopes}

    A scope is the job-timing namespace of one experiment run: batch
    submissions allocate contiguous key blocks ["<fp8>:<label>#<i>"], so
    a given experiment's jobs keep stable keys across runs of the same
    binary. *)

type scope

(** [scope t ~label] starts a namespace; [now] supplies the wall clock
    used by callers to measure job durations (defaults to [Sys.time] so
    the core library stays free of a unix dependency). *)
val scope : ?now:(unit -> float) -> t -> label:string -> scope

val scope_cache : scope -> t
val scope_now : scope -> unit -> float

(** Allocate [n] contiguous job keys. *)
val alloc_keys : scope -> int -> string list

(** {2 Directory maintenance} *)

type dir_stats = {
  entries : int;  (** number of [.entry] files *)
  entry_bytes : int;  (** their total size *)
  timing_entries : int;  (** recorded job timings, any fingerprint *)
  timing_entries_self : int;
      (** timings usable by [fingerprint] — the LPT coverage this binary
          actually gets (0 when no fingerprint was supplied) *)
}

(** Inspect a cache directory without opening it as a cache.  A missing
    directory reads as empty.  [fingerprint] (e.g. {!self_fingerprint})
    scopes the timing-coverage count. *)
val stats : ?fingerprint:string -> dir:string -> unit -> dir_stats

type prune_stats = { pruned : int; pruned_bytes : int; kept : int }

(** [prune ~dir ~older_than_s ~now ~mtime] deletes cache entries (and
    stranded [.tmp] files) whose modification time is more than
    [older_than_s] seconds before [now], bounding long-lived shared
    cache directories.  [mtime] supplies per-path modification times in
    the same clock as [now] (the CLI passes [Unix.stat]; the core
    library stays unix-free); paths it cannot stat are kept.  The
    timing store and foreign files are never touched. *)
val prune :
  dir:string ->
  older_than_s:float ->
  now:float ->
  mtime:(string -> float option) ->
  prune_stats

(** Delete every entry and the timing store.  Leaves foreign files (and
    the directory itself) alone. *)
val clear : dir:string -> unit
