(* Many-flow dumbbell harness around [Cc.Flow_soa]: N TCP flows between
   one shared host pair, sized so the per-flow share of the bottleneck is
   far below one packet per RTT — the "weak convergence" ensemble regime
   where fairness is a distributional property.  The same builder exists
   twice, once over the struct-of-arrays engine and once over per-object
   [Cc.Window_cc] senders, so the two can be checked digest-identical. *)

type params = {
  n : int;
  bandwidth : float;  (** bottleneck bits/s *)
  rtt : float;
  duration : float;
  warmup : float;  (** stats measured over [warmup, duration] *)
  stagger : float;  (** flow i starts at 0.01 + stagger * i / n *)
  queue : Netsim.Dumbbell.queue_kind;
  gamma : float;  (** TCP(1/gamma) increase/decrease rule *)
  seed : int;
  ack_batching : bool;
}

(* 16 kbit/s of bottleneck per flow: a fair share of two packets per
   second against a minimum window of one packet per 50 ms RTT, so the
   ensemble lives in the timeout/backoff regime the weak-convergence
   model describes. *)
let per_flow_bw = 16_000.

let default_params ~n =
  {
    n;
    bandwidth = per_flow_bw *. float_of_int n;
    rtt = 0.05;
    duration = 10.;
    warmup = 3.;
    stagger = 1.;
    queue = Netsim.Dumbbell.Red;
    gamma = 2.;
    seed = 42;
    ack_batching = false;
  }

let rule p = Cc.Window_cc.tcp_compatible_aimd ~b:(1. /. p.gamma)

let topology ?sched p =
  let sim = Engine.Sim.create ?sched () in
  let rng = Engine.Rng.create ~seed:p.seed in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:p.bandwidth) with
      Netsim.Dumbbell.rtt = p.rtt;
      queue = p.queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng:(Engine.Rng.split rng) config in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  for _ = 1 to p.n do
    ignore (Netsim.Dumbbell.fresh_flow db)
  done;
  (sim, db, src, dst)

(* Deterministic staggered starts as a chain of events (one closure total
   rather than one per flow — at 10⁵ flows, up-front scheduling would
   briefly cost more memory than the flow state itself).  Both engines
   use this helper, so their event patterns match exactly. *)
let start_time p i = 0.01 +. (p.stagger *. float_of_int i /. float_of_int p.n)

let schedule_starts sim p start =
  let k = ref 0 in
  let rec tick () =
    start !k;
    incr k;
    if !k < p.n then Engine.Sim.at sim (start_time p !k) tick
  in
  Engine.Sim.at sim (start_time p 0) tick

type built_soa = {
  sim : Engine.Sim.t;
  db : Netsim.Dumbbell.t;
  eng : Cc.Flow_soa.t;
}

let build_soa ?sched p =
  let sim, db, src, dst = topology ?sched p in
  let cfg =
    {
      (Cc.Flow_soa.default_config (rule p)) with
      Cc.Flow_soa.ack_batching = p.ack_batching;
    }
  in
  let eng = Cc.Flow_soa.create ~sim ~src ~dst ~base:0 ~n:p.n cfg in
  schedule_starts sim p (fun i -> Cc.Flow_soa.start eng i);
  { sim; db; eng }

let build_object ?sched p =
  if p.ack_batching then
    invalid_arg "Manyflow.build_object: ack batching is SoA-only";
  let sim, db, src, dst = topology ?sched p in
  let cfg = Cc.Window_cc.default_config (rule p) in
  let flows =
    Array.init p.n (fun i ->
        Cc.Window_cc.flow (Cc.Window_cc.create ~sim ~src ~dst ~flow:i cfg))
  in
  schedule_starts sim p (fun i -> flows.(i).Cc.Flow.start ());
  (sim, db, flows)

(* ------------------------------------------------------------------ *)
(* Differential digests: SoA vs per-object                             *)
(* ------------------------------------------------------------------ *)

(* Uid-free end state, as in [Fuzz.trace_of] but WITHOUT the processed-
   event count: consolidating per-flow timers into one wheel changes how
   many events exist without changing what any of them computes, so only
   flow stats, link counters and the final clock are compared. *)
let end_state_trace ~sim ~links flows =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i (f : Cc.Flow.t) ->
      let s = f.Cc.Flow.stats () in
      Printf.bprintf buf
        "flow %d %s sent=%d sbytes=%.17g dbytes=%.17g rtx=%d to=%d frtx=%d \
         srtt=%.17g\n"
        i f.Cc.Flow.protocol s.Cc.Flow.sent_pkts s.Cc.Flow.sent_bytes
        s.Cc.Flow.delivered_bytes s.Cc.Flow.rtx_pkts s.Cc.Flow.timeouts
        s.Cc.Flow.fast_rtx s.Cc.Flow.stat_srtt)
    flows;
  List.iteri
    (fun j l ->
      Printf.bprintf buf "link %d" j;
      List.iter
        (fun (k, v) -> Printf.bprintf buf " %s=%d" k v)
        (Netsim.Link.counters l);
      Buffer.add_char buf '\n')
    links;
  Printf.bprintf buf "now=%.17g\n" (Engine.Sim.now sim);
  Buffer.contents buf

let digest_soa ?sched p =
  let b = build_soa ?sched p in
  Engine.Sim.run ~until:p.duration b.sim;
  let flows = Array.init p.n (fun i -> Cc.Flow_soa.flow b.eng i) in
  Digest.to_hex
    (Digest.string
       (end_state_trace ~sim:b.sim ~links:(Netsim.Dumbbell.links b.db) flows))

let digest_object ?sched p =
  let sim, db, flows = build_object ?sched p in
  Engine.Sim.run ~until:p.duration sim;
  Digest.to_hex
    (Digest.string (end_state_trace ~sim ~links:(Netsim.Dumbbell.links db) flows))

(* [None] when the struct-of-arrays engine reproduces the per-object
   engine byte-for-byte, [Some msg] otherwise. *)
let check_equiv ?sched p =
  let soa = digest_soa ?sched p in
  let obj = digest_object ?sched p in
  if String.equal soa obj then None
  else
    Some
      (Printf.sprintf
         "SoA/object divergence (n=%d bw=%g rtt=%g dur=%g seed=%d): soa=%s \
          object=%s"
         p.n p.bandwidth p.rtt p.duration p.seed soa obj)

(* Randomized small instance for the fuzzer's SoA leg. *)
let fuzz_params ~quick seed =
  let rng = Engine.Rng.create ~seed:(seed lxor 0x50a50a) in
  let n = 2 + Engine.Rng.int rng 7 in
  let queue =
    match Engine.Rng.int rng 3 with
    | 0 -> Netsim.Dumbbell.Red
    | 1 -> Netsim.Dumbbell.Red_ecn
    | _ -> Netsim.Dumbbell.Droptail
  in
  let gamma = [| 2.; 4.; 8. |].(Engine.Rng.int rng 3) in
  let bandwidth = 0.5e6 *. float_of_int (1 + Engine.Rng.int rng 8) in
  let rtt = 0.02 +. (0.02 *. float_of_int (Engine.Rng.int rng 5)) in
  let duration =
    if quick then 1.5 +. float_of_int (Engine.Rng.int rng 2)
    else 2. +. float_of_int (Engine.Rng.int rng 4)
  in
  {
    n;
    bandwidth;
    rtt;
    duration;
    warmup = 0.;
    (* Dyadic staggers make start times and RTO deadlines collide at
       exact float timestamps with serialization-grid events — the
       hardest case for the wheel's explicit-seq ordering, so the
       fuzzer leans into it rather than avoiding it. *)
    stagger = 0.25 *. float_of_int (1 + Engine.Rng.int rng 8);
    queue;
    gamma;
    seed;
    ack_batching = false;
  }

let fuzz_check ?(quick = false) seed = check_equiv (fuzz_params ~quick seed)

(* ------------------------------------------------------------------ *)
(* Weak-convergence experiment: one run per N                          *)
(* ------------------------------------------------------------------ *)

(* Normalized-throughput histogram buckets: [0, 0.25), ..., [1.75, 2),
   [2, inf) in units of the fair share. *)
let hist_buckets = 9

let bucket_label k =
  if k = hist_buckets - 1 then ">=2.00"
  else Printf.sprintf "%.2f-%.2f" (0.25 *. float_of_int k)
      (0.25 *. float_of_int (k + 1))

type result = {
  rn : int;
  events : int;
  mean_norm : float;  (** mean normalized (fair-share = 1) throughput *)
  cov : float;
  cov_sampled : float;  (** reservoir estimate, O(reservoir) not O(n) *)
  jain : float;
  p10 : float;
  p50 : float;
  p90 : float;
  utilization : float;
  drop_rate : float;
  hist : float array;  (** fraction of flows per normalized bucket *)
}

let reservoir_k = 256

let run ?sched p =
  let b = build_soa ?sched p in
  Engine.Sim.run ~until:p.warmup b.sim;
  let before = Array.init p.n (fun i -> Cc.Flow_soa.delivered_pkts b.eng i) in
  Engine.Sim.run ~until:p.duration b.sim;
  let window = p.duration -. p.warmup in
  let fair_bps = p.bandwidth /. float_of_int p.n in
  let pkt_bits = 8000. in
  let norm i =
    float_of_int (Cc.Flow_soa.delivered_pkts b.eng i - before.(i))
    *. pkt_bits /. window /. fair_bps
  in
  (* Exhaustive stats: one O(n) pass at end of run. *)
  let stats = Engine.Stats.create () in
  let hist = Array.make hist_buckets 0 in
  let values = ref [] in
  for i = p.n - 1 downto 0 do
    let x = norm i in
    Engine.Stats.add stats x;
    let k = min (hist_buckets - 1) (int_of_float (x /. 0.25)) in
    hist.(k) <- hist.(k) + 1;
    values := x :: !values
  done;
  let values = !values in
  (* Sampled stats: a deterministic reservoir of flow indexes feeding a
     Metrics series — the snapshot path a live many-flow run would use,
     O(reservoir) per refresh instead of O(flows). *)
  let registry = Engine.Metrics.create () in
  let series = Engine.Metrics.series registry "manyflow.norm_throughput" in
  let sample =
    Engine.Reservoir.indices
      ~rng:(Engine.Rng.create ~seed:(p.seed + 1))
      ~k:(min reservoir_k p.n) p.n
  in
  Array.iter (fun i -> Engine.Metrics.observe series (norm i)) sample;
  let bottleneck = Netsim.Dumbbell.bottleneck b.db in
  {
    rn = p.n;
    events = Engine.Sim.events_processed b.sim;
    mean_norm = Engine.Stats.mean stats;
    cov = Engine.Stats.cov stats;
    cov_sampled = Engine.Stats.cov (Engine.Metrics.series_stats series);
    jain = Engine.Stats.jain_index values;
    p10 = Engine.Stats.percentile 0.1 values;
    p50 = Engine.Stats.percentile 0.5 values;
    p90 = Engine.Stats.percentile 0.9 values;
    utilization = Netsim.Link.utilization bottleneck ~elapsed:p.duration;
    drop_rate =
      (let a = Netsim.Link.arrivals bottleneck in
       if a = 0 then 0.
       else float_of_int (Netsim.Link.drops bottleneck) /. float_of_int a);
    hist =
      Array.map (fun c -> float_of_int c /. float_of_int p.n) hist;
  }

let ns ~quick =
  if quick then [ 100; 1_000; 10_000 ] else [ 100; 1_000; 10_000; 100_000 ]

let experiment_params ~quick n =
  let p = default_params ~n in
  if quick then { p with duration = 8.; warmup = 3. }
  else { p with duration = 30.; warmup = 5. }
