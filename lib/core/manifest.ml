module Json = Engine.Json

type emit = Csv | Jsonl | Both

let emit_of_string = function
  | "csv" -> Some Csv
  | "jsonl" -> Some Jsonl
  | "both" -> Some Both
  | _ -> None

let emit_to_string = function Csv -> "csv" | Jsonl -> "jsonl" | Both -> "both"

(* ------------------------------------------------------------------ *)
(* Table digests and JSONL rendering                                   *)
(* ------------------------------------------------------------------ *)

(* Content digest over everything that makes the table what it is: id,
   title, columns, rows and notes, with unambiguous separators so no two
   distinct tables can collide by concatenation. *)
let table_digest (t : Table.t) =
  let buf = Buffer.create 1024 in
  let field s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  field t.Table.id;
  field t.Table.title;
  List.iter field t.Table.columns;
  List.iter (fun row -> List.iter field row; field "|") t.Table.rows;
  List.iter field t.Table.notes;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* One JSON object per row: {"row": i, "cells": {"col": "raw cell", ...}}.
   The rendering lives in [Table] (shared with the result cache, whose
   [Table.of_jsonl] reader must invert these exact bytes). *)
let jsonl_of_table = Table.rows_to_jsonl

let save_jsonl ~dir (t : Table.t) =
  Table.ensure_dir dir;
  let path = Filename.concat dir (t.Table.id ^ ".jsonl") in
  let oc = open_out path in
  output_string oc (jsonl_of_table t);
  close_out oc;
  path

let save_table ~dir ~emit t =
  let paths = ref [] in
  (match emit with
  | Csv | Both -> paths := Table.save_csv ~dir t :: !paths
  | Jsonl -> ());
  (match emit with
  | Jsonl | Both -> paths := save_jsonl ~dir t :: !paths
  | Csv -> ());
  List.rev !paths

(* ------------------------------------------------------------------ *)
(* Run manifest                                                        *)
(* ------------------------------------------------------------------ *)

(* Everything that describes WHAT was computed — and must therefore be
   byte-identical at any worker count.  Wall-clock and job count live in
   the separate, non-digested "timing" section. *)
let run_section ~experiment ~quick ~params ~tables =
  (* Which engine mode produced each table.  Hybrid fast-forward changes
     result bytes, so when it is ON every table entry records it inside
     the digested section; when OFF the field is absent — ff-off
     manifests stay byte-identical with pre-feature builds, which CI
     asserts. *)
  let mode_fields =
    match Engine.Fastforward.get_default () with
    | Engine.Fastforward.Off -> []
    | Engine.Fastforward.On -> [ ("fastforward", Json.String "on") ]
  in
  let table_entry (t : Table.t) =
    Json.Obj
      ([
         ("id", Json.String t.Table.id);
         ("title", Json.String t.Table.title);
         ("columns", Json.List (List.map (fun c -> Json.String c) t.Table.columns));
         ("rows", Json.Int (List.length t.Table.rows));
         ("digest", Json.String (table_digest t));
         ("notes", Json.List (List.map (fun n -> Json.String n) t.Table.notes));
       ]
      @ mode_fields)
  in
  Json.Obj
    [
      ("experiment", Json.String experiment);
      ("quick", Json.Bool quick);
      (* Every scenario seeds its own Rng from a constant baked into the
         scenario definition, so the run section pins the whole stochastic
         state without a per-run seed input. *)
      ("seed_policy", Json.String "fixed-per-scenario");
      ("params", Json.Obj params);
      ("tables", Json.List (List.map table_entry tables));
    ]

let render ?cache ?backend ~experiment ~quick ~params ~emit ~jobs ~wall_s
    ~tables () =
  let run = run_section ~experiment ~quick ~params ~tables in
  let run_str = Json.to_string run in
  let digest = Digest.to_hex (Digest.string run_str) in
  (* Like sched: which pool backend executed the sweep (domains vs
     processes) is engine configuration — both produce identical bytes —
     so it is recorded for provenance in the timing section only.  Absent
     (the historical default) unless a caller names one, keeping old
     manifests byte-stable. *)
  let backend_fields =
    match backend with
    | None -> []
    | Some b -> [ ("backend", Json.String b) ]
  in
  (* Like sched/jobs, the cache record is engine configuration: hits vs
     misses change wall time only — a verified hit reproduces the same
     table bytes a fresh simulation would — so it stays out of the
     digested run section. *)
  let cache_fields =
    match cache with
    | None -> []
    | Some (hits, misses, fingerprint) ->
      [
        ( "cache",
          Json.Obj
            [
              ("hits", Json.Int hits);
              ("misses", Json.Int misses);
              ("fingerprint", Json.String fingerprint);
            ] );
      ]
  in
  let manifest =
    Json.Obj
      [
        ("schema", Json.String "slowcc-run-manifest/1");
        ("digest", Json.String digest);
        ("run", run);
        ( "timing",
          Json.Obj
            ([
               ("wall_s", Json.Float wall_s);
               ("jobs", Json.Int jobs);
               (* Engine configuration, not experiment identity: results are
                  byte-identical under either scheduler, so it stays out of
                  the digested run section. *)
               ( "sched",
                 Json.String
                   (Engine.Scheduler.to_string (Engine.Scheduler.get_default ()))
               );
               ("emit", Json.String (emit_to_string emit));
             ]
            @ backend_fields @ cache_fields) );
      ]
  in
  Json.to_string manifest ^ "\n"

let write ?cache ?backend ~dir ~experiment ~quick ~params ~emit ~jobs ~wall_s
    tables =
  Table.ensure_dir dir;
  List.iter (fun t -> ignore (save_table ~dir ~emit t)) tables;
  let path = Filename.concat dir "manifest.json" in
  let oc = open_out path in
  output_string oc
    (render ?cache ?backend ~experiment ~quick ~params ~emit ~jobs ~wall_s
       ~tables ());
  close_out oc;
  path

(* Naive single-field extraction, enough for tests and CI smoke checks
   without a JSON parser dependency. *)
let digest_of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let key = "\"digest\": \"" in
  match String.index_opt contents '{' with
  | None -> None
  | Some _ -> (
    let rec find from =
      if from >= String.length contents then None
      else
        match String.index_from_opt contents from '"' with
        | None -> None
        | Some i ->
          if
            i + String.length key <= String.length contents
            && String.sub contents i (String.length key) = key
          then
            let start = i + String.length key in
            String.index_from_opt contents start '"'
            |> Option.map (fun stop ->
                   String.sub contents start (stop - start))
          else find (i + 1)
    in
    find 0)
