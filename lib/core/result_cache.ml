module Json = Engine.Json

(* ------------------------------------------------------------------ *)
(* Cache instance                                                      *)
(* ------------------------------------------------------------------ *)

type t = {
  dir : string;
  fingerprint : string;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  (* Measured per-job wall seconds from previous runs, keyed by
     "<fp8>:<experiment>[:quick]#<job index>" where fp8 abbreviates the
     fingerprint of the binary that measured them.  Advisory only:
     estimates order the pool's execution (LPT), they never influence
     results, so a stale or missing entry is harmless — but scoping the
     keys by fingerprint keeps a rebuilt binary from ordering its jobs
     by a stale binary's clock. *)
  timings : (string, float) Hashtbl.t;
}

let schema = "slowcc-result-cache/1"
let timings_schema = "slowcc-timings/1"
let entry_suffix = ".entry"
let timings_file dir = Filename.concat dir "timings.json"

(* The code fingerprint: a digest of the running executable.  Any rebuild
   — engine change, scenario tweak, compiler upgrade — changes it, so no
   cache entry survives a code change.  Hashed once per process. *)
let self_fingerprint =
  let memo = lazy (
    try Digest.to_hex (Digest.file Sys.executable_name)
    with Sys_error _ -> "unknown-executable")
  in
  fun () -> Lazy.force memo

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Write-then-rename so a crashed or concurrent writer can never leave a
   torn entry under the final name.  (A torn entry would be detected by
   the digest check anyway; this just avoids churn.)  The temp name must
   be unique per writer: with a fixed [path ^ ".tmp"], two processes
   sharing a cache dir could interleave open/write/rename and publish a
   torn file.  [Filename.temp_file] creates the file exclusively. *)
let write_file_atomic path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc contents
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let load_timings dir tbl =
  let path = timings_file dir in
  if Sys.file_exists path then
    match Json.of_string (read_file path) with
    | Ok doc -> (
      match (Json.member "schema" doc, Json.member "wall_s" doc) with
      | Some (Json.String s), Some (Json.Obj fields) when s = timings_schema ->
        List.iter
          (fun (key, v) ->
            match v with
            | Json.Float w -> Hashtbl.replace tbl key w
            | Json.Int w -> Hashtbl.replace tbl key (float_of_int w)
            | _ -> ())
          fields
      | _ -> () (* unknown schema: ignore, it will be rewritten *))
    | Error _ -> () (* corrupt timings are advisory; start fresh *)

let create ?fingerprint ~dir () =
  Table.ensure_dir dir;
  let fingerprint =
    match fingerprint with Some f -> f | None -> self_fingerprint ()
  in
  let timings = Hashtbl.create 64 in
  load_timings dir timings;
  { dir; fingerprint; mutex = Mutex.create (); hits = 0; misses = 0; timings }

let dir t = t.dir
let fingerprint t = t.fingerprint

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)

(* ------------------------------------------------------------------ *)
(* Cache keys                                                          *)
(* ------------------------------------------------------------------ *)

(* The key pins everything that determines the tables' bytes: the code
   (via the executable fingerprint), the experiment, the quick flag and
   the experiment's parameter record.  Scheduler choice and --jobs are
   deliberately absent — the engine guarantees byte-identical results
   under either scheduler at any worker count, so including them would
   only split the cache for no correctness gain. *)
let key t ~experiment ~quick ~params =
  let doc =
    Json.Obj
      [
        ("fingerprint", Json.String t.fingerprint);
        ("experiment", Json.String experiment);
        ("quick", Json.Bool quick);
        ("params", Json.Obj params);
      ]
  in
  Digest.to_hex (Digest.string (Json.to_string ~minify:true doc))

let entry_path t key = Filename.concat t.dir (key ^ entry_suffix)

(* ------------------------------------------------------------------ *)
(* Entries                                                             *)
(* ------------------------------------------------------------------ *)

(* Entry layout: one meta line, then each table's full-fidelity JSONL
   (header line + one line per row):

     {"schema":"slowcc-result-cache/1","experiment":...,"quick":...,
      "fingerprint":...,"tables":[{"id":...,"lines":N,"digest":...},...]}
     {"id":...,"title":...,"columns":[...],"notes":[...]}
     {"row":0,"cells":{...}}
     ...

   The per-table digest is [Manifest.table_digest] of the table that was
   stored; a lookup recomputes it from the parsed bytes, so an entry that
   was truncated, hand-edited or bit-rotted is detected and discarded
   rather than trusted. *)

let render_entry t ~experiment ~quick tables =
  let buf = Buffer.create 4096 in
  let specs =
    List.map
      (fun (tbl : Table.t) ->
        Json.Obj
          [
            ("id", Json.String tbl.Table.id);
            ("lines", Json.Int (1 + List.length tbl.Table.rows));
            ("digest", Json.String (Manifest.table_digest tbl));
          ])
      tables
  in
  let meta =
    Json.Obj
      [
        ("schema", Json.String schema);
        ("experiment", Json.String experiment);
        ("quick", Json.Bool quick);
        ("fingerprint", Json.String t.fingerprint);
        ("tables", Json.List specs);
      ]
  in
  Buffer.add_string buf (Json.to_string ~minify:true meta);
  Buffer.add_char buf '\n';
  List.iter (fun tbl -> Buffer.add_string buf (Table.to_jsonl tbl)) tables;
  Buffer.contents buf

let store t ~key ~experiment ~quick tables =
  let contents = render_entry t ~experiment ~quick tables in
  write_file_atomic (entry_path t key) contents

(* Parse and verify one entry.  Any defect — unreadable file, wrong
   schema, bad table block, digest mismatch — yields [Error]. *)
let parse_entry contents =
  let ( let* ) = Result.bind in
  match String.index_opt contents '\n' with
  | None -> Error "no meta line"
  | Some nl ->
    let* meta =
      match Json.of_string (String.sub contents 0 nl) with
      | Ok m -> Ok m
      | Error e -> Error ("meta line: " ^ e)
    in
    let* () =
      match Json.member "schema" meta with
      | Some (Json.String s) when s = schema -> Ok ()
      | _ -> Error "schema tag missing or unknown"
    in
    let* specs =
      match Json.member "tables" meta with
      | Some (Json.List specs) -> Ok specs
      | _ -> Error "tables spec missing"
    in
    let body = String.sub contents (nl + 1) (String.length contents - nl - 1) in
    let lines = String.split_on_char '\n' body in
    let take n lines =
      let rec go acc n = function
        | rest when n = 0 -> Some (List.rev acc, rest)
        | [] -> None
        | l :: rest -> go (l :: acc) (n - 1) rest
      in
      go [] n lines
    in
    let* tables, leftover =
      List.fold_left
        (fun acc spec ->
          let* tables, lines = acc in
          let* n, recorded_digest =
            match
              (Json.member "lines" spec, Json.member "digest" spec)
            with
            | Some (Json.Int n), Some (Json.String d) when n > 0 -> Ok (n, d)
            | _ -> Error "bad table spec"
          in
          let* block, rest =
            match take n lines with
            | Some split -> Ok split
            | None -> Error "entry truncated"
          in
          let* table =
            Table.of_jsonl (String.concat "\n" block ^ "\n")
          in
          if Manifest.table_digest table <> recorded_digest then
            Error ("digest mismatch for table " ^ table.Table.id)
          else Ok (table :: tables, rest))
        (Ok ([], lines))
        specs
    in
    (match leftover with
    | [] | [ "" ] -> Ok (List.rev tables)
    | _ -> Error "trailing data after the last table")

let lookup t ~key =
  let path = entry_path t key in
  let verdict =
    if not (Sys.file_exists path) then None
    else
      match parse_entry (read_file path) with
      | Ok tables -> Some tables
      | Error _ | (exception Sys_error _) ->
        (* Self-healing: never trust stale bytes; drop the entry and let
           the caller re-simulate. *)
        (try Sys.remove path with Sys_error _ -> ());
        None
  in
  locked t (fun () ->
      match verdict with
      | Some _ -> t.hits <- t.hits + 1
      | None -> t.misses <- t.misses + 1);
  verdict

(* ------------------------------------------------------------------ *)
(* Timing feedback                                                     *)
(* ------------------------------------------------------------------ *)

let estimate t key = locked t (fun () -> Hashtbl.find_opt t.timings key)

(* Timing keys are namespaced by an 8-hex-char fingerprint abbreviation:
   long enough that two binaries colliding is a non-event (estimates are
   advisory), short enough to keep timings.json readable. *)
let fp8 fingerprint =
  if String.length fingerprint > 8 then String.sub fingerprint 0 8
  else fingerprint

let timing_key_prefix ~fingerprint ~label =
  Printf.sprintf "%s:%s#" (fp8 fingerprint) label

let timing_sum t ~label =
  let prefix = timing_key_prefix ~fingerprint:t.fingerprint ~label in
  locked t (fun () ->
      Hashtbl.fold
        (fun k v acc ->
          if String.starts_with ~prefix k then
            Some (v +. Option.value acc ~default:0.)
          else acc)
        t.timings None)

let record t key wall_s =
  if Float.is_finite wall_s && wall_s >= 0. then
    locked t (fun () -> Hashtbl.replace t.timings key wall_s)

(* Merge-on-save: concurrent processes sharing a cache dir each measure a
   disjoint (or overlapping) set of jobs.  Writing only the in-memory
   table would let the last writer discard everyone else's measurements
   (lost update), so re-read the file first and overlay our entries on
   top — ours win on conflict, foreign keys survive.  The window between
   load and rename can still lose a racing writer's very latest numbers,
   but timings are advisory (they only order execution), so a rare stale
   estimate is harmless; losing a whole experiment's keys on every run
   was not. *)
let save_timings t =
  let merged = Hashtbl.create 64 in
  load_timings t.dir merged;
  locked t (fun () ->
      Hashtbl.iter (fun k v -> Hashtbl.replace merged k v) t.timings);
  let fields =
    Hashtbl.fold (fun k v acc -> (k, Json.Float v) :: acc) merged []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String timings_schema); ("wall_s", Json.Obj fields);
      ]
  in
  write_file_atomic (timings_file t.dir) (Json.to_string doc ^ "\n")

(* ------------------------------------------------------------------ *)
(* Scopes: job-timing namespaces for one experiment run                *)
(* ------------------------------------------------------------------ *)

type scope = {
  cache : t;
  label : string;
  now : unit -> float;
  mutable next_job : int;
}

let scope ?(now = Sys.time) t ~label = { cache = t; label; now; next_job = 0 }
let scope_cache s = s.cache
let scope_now s = s.now

(* Contiguous key block for one batch.  Batches submitted sequentially
   from the coordinating domain get stable keys across runs; nested
   batches racing from worker domains may permute blocks, which only
   perturbs estimates, never results. *)
let alloc_keys s n =
  let start = locked s.cache (fun () ->
      let v = s.next_job in
      s.next_job <- v + n;
      v)
  in
  let prefix =
    timing_key_prefix ~fingerprint:s.cache.fingerprint ~label:s.label
  in
  List.init n (fun i -> Printf.sprintf "%s%d" prefix (start + i))

(* ------------------------------------------------------------------ *)
(* Directory maintenance (no instance needed)                          *)
(* ------------------------------------------------------------------ *)

type dir_stats = {
  entries : int;
  entry_bytes : int;
  timing_entries : int;
  timing_entries_self : int;
}

let is_entry name = Filename.check_suffix name entry_suffix

let stats ?fingerprint ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    { entries = 0; entry_bytes = 0; timing_entries = 0; timing_entries_self = 0 }
  else begin
    let entries = ref 0 and bytes = ref 0 in
    Array.iter
      (fun name ->
        if is_entry name then begin
          incr entries;
          let path = Filename.concat dir name in
          match open_in_bin path with
          | ic ->
            bytes := !bytes + in_channel_length ic;
            close_in_noerr ic
          | exception Sys_error _ -> ()
        end)
      (Sys.readdir dir);
    let tbl = Hashtbl.create 16 in
    load_timings dir tbl;
    let timing_entries_self =
      match fingerprint with
      | None -> 0
      | Some fp ->
        let prefix = fp8 fp ^ ":" in
        Hashtbl.fold
          (fun k _ acc -> if String.starts_with ~prefix k then acc + 1 else acc)
          tbl 0
    in
    {
      entries = !entries;
      entry_bytes = !bytes;
      timing_entries = Hashtbl.length tbl;
      timing_entries_self;
    }
  end

type prune_stats = { pruned : int; pruned_bytes : int; kept : int }

(* Age-based eviction for long-lived shared cache dirs.  Only entry files
   (and stranded atomic-write temps) are candidates; the timing store is
   tiny and always useful, and foreign files are none of our business.
   The mtime callback keeps this module unix-free — the CLI passes a
   Unix.stat wrapper — and a path that cannot be statted (or vanished
   under a concurrent prune) is simply kept/skipped. *)
let prune ~dir ~older_than_s ~now ~mtime =
  let acc = { pruned = 0; pruned_bytes = 0; kept = 0 } in
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Array.fold_left
      (fun acc name ->
        if not (is_entry name || Filename.check_suffix name ".tmp") then acc
        else begin
          let path = Filename.concat dir name in
          match mtime path with
          | Some m when now -. m > older_than_s ->
            let size =
              match open_in_bin path with
              | ic ->
                let n = in_channel_length ic in
                close_in_noerr ic;
                n
              | exception Sys_error _ -> 0
            in
            (match Sys.remove path with
            | () ->
              {
                acc with
                pruned = acc.pruned + 1;
                pruned_bytes = acc.pruned_bytes + size;
              }
            | exception Sys_error _ -> { acc with kept = acc.kept + 1 })
          | Some _ | None -> { acc with kept = acc.kept + 1 }
        end)
      acc (Sys.readdir dir)

let clear ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun name ->
        (* [.tmp] files are stranded atomic-write temps (a writer that
           crashed between create and rename); sweep them too. *)
        if
          is_entry name || name = "timings.json"
          || Filename.check_suffix name ".tmp"
        then try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (Sys.readdir dir)
