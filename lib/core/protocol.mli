(** The gamma-parameterized congestion-control families of the paper.

    gamma measures slowness: TCP(1/gamma) and RAP(1/gamma) reduce by a
    factor 1/gamma per loss event, SQRT(1/gamma) reduces by a 1/gamma
    fraction at the reference operating point, and TFRC(gamma) averages the
    loss rate over gamma loss intervals.  Standard TCP is [tcp ~gamma:2.]. *)

type t =
  | Tcp of float  (** TCP(1/gamma): windowed AIMD + slow-start + RTO *)
  | Tcp_sack of float  (** TCP(1/gamma) with selective acknowledgments *)
  | Rap of float  (** RAP(1/gamma): rate-based AIMD, no self-clocking *)
  | Sqrt of float  (** binomial k = l = 1/2, calibrated TCP-compatible *)
  | Iiad of float  (** binomial k = 1, l = 0, calibrated TCP-compatible *)
  | Tfrc of {
      k : int;
      conservative : bool;  (** the paper's self-clocking option *)
      conservative_c : float;  (** the C constant; the paper uses 1.1 *)
      history_discounting : bool;
    }
  | Tear of int  (** receiver-side TCP emulation, smoothing over n rounds *)
  | Bbr  (** model-based sender: bandwidth/RTT probing state machine, paced *)
  | Vegas of { alpha : float; beta : float }
      (** delay-based sender: standing-queue estimation with base-RTT
          aging and RTT-noise filtering *)

val tcp : gamma:float -> t
val tcp_sack : gamma:float -> t
val rap : gamma:float -> t
val sqrt_ : gamma:float -> t
val iiad : gamma:float -> t
val tfrc :
  ?conservative:bool ->
  ?conservative_c:float ->
  ?history_discounting:bool ->
  k:int ->
  unit ->
  t

(** TEAR with [rounds] smoothed windows (the report uses about 8). *)
val tear : rounds:int -> t

(** BBR-style model-based sender with default configuration. *)
val bbr : t

(** Vegas-style delay-based sender; [alpha]/[beta] bound the standing
    queue in packets (defaults 2 and 4). *)
val vegas : ?alpha:float -> ?beta:float -> unit -> t

val name : t -> string

(** Create a host pair on the dumbbell and a flow of this protocol from
    left to right ([reverse] for right to left).  The flow is not started.
    [total_pkts] makes it a finite transfer (windowed protocols only).
    [ca_start] makes windowed protocols begin in congestion avoidance at
    their initial window — the paper's "established flow at one packet per
    RTT" premise for transient-fairness experiments (no-op for rate-based
    protocols, which have no slow-start threshold). *)
val spawn :
  ?reverse:bool ->
  ?extra_delay:float ->
  ?pkt_size:int ->
  ?total_pkts:int ->
  ?ca_start:bool ->
  t ->
  Netsim.Dumbbell.t ->
  Cc.Flow.t

(** Build a flow of this protocol between two already-created,
    already-routed nodes — topology-agnostic core of {!spawn}; the fuzzer
    uses it to wire flows across a parking lot.  The caller supplies a
    fresh [flow] id. *)
val spawn_between :
  ?pkt_size:int ->
  ?total_pkts:int ->
  ?ca_start:bool ->
  t ->
  sim:Engine.Sim.t ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  flow:int ->
  Cc.Flow.t
