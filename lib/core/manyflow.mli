(** Many-flow dumbbell harness over {!Cc.Flow_soa}: weak-convergence
    throughput/fairness distributions for N ∈ 10²..10⁵ flows, plus the
    differential check that the struct-of-arrays engine is byte-identical
    to per-object {!Cc.Window_cc} senders at equal inputs. *)

type params = {
  n : int;
  bandwidth : float;  (** bottleneck bits/s *)
  rtt : float;
  duration : float;
  warmup : float;  (** stats measured over [warmup, duration] *)
  stagger : float;  (** flow i starts at 0.01 + stagger * i / n *)
  queue : Netsim.Dumbbell.queue_kind;
  gamma : float;  (** TCP(1/gamma) increase/decrease rule *)
  seed : int;
  ack_batching : bool;
}

(** 16 kbit/s of bottleneck per flow (sub-packet fair share per RTT):
    RED queue, 50 ms RTT, gamma = 2, batching off. *)
val default_params : n:int -> params

(** Experiment sweep sizes: quick [100;1k;10k], full adds 100k. *)
val ns : quick:bool -> int list

(** [default_params] with the experiment's duration/warmup for the
    given mode (quick: 8 s / 3 s; full: 30 s / 5 s). *)
val experiment_params : quick:bool -> int -> params

type built_soa = {
  sim : Engine.Sim.t;
  db : Netsim.Dumbbell.t;
  eng : Cc.Flow_soa.t;
}

(** Build (not run) the SoA engine instance with starts scheduled. *)
val build_soa : ?sched:Engine.Scheduler.kind -> params -> built_soa

(** Per-object twin: same topology, same start schedule, one
    {!Cc.Window_cc} sender per flow.  Requires [ack_batching = false]. *)
val build_object :
  ?sched:Engine.Scheduler.kind ->
  params ->
  Engine.Sim.t * Netsim.Dumbbell.t * Cc.Flow.t array

(** {2 Differential: SoA vs per-object} *)

(** Uid-free, event-count-free end-state trace (the digest input);
    exposed so tests can diff divergences field by field. *)
val end_state_trace :
  sim:Engine.Sim.t -> links:Netsim.Link.t list -> Cc.Flow.t array -> string

(** Uid-free, event-count-free end-state digest of a full run. *)
val digest_soa : ?sched:Engine.Scheduler.kind -> params -> string

val digest_object : ?sched:Engine.Scheduler.kind -> params -> string

(** [None] when both engines end byte-identical, [Some msg] otherwise.
    Requires [ack_batching = false]. *)
val check_equiv : ?sched:Engine.Scheduler.kind -> params -> string option

(** Randomized small instance derived from [seed]. *)
val fuzz_params : quick:bool -> int -> params

(** [check_equiv] on {!fuzz_params}; the fuzzer's SoA leg. *)
val fuzz_check : ?quick:bool -> int -> string option

(** {2 Weak-convergence experiment} *)

type result = {
  rn : int;
  events : int;  (** events processed by the whole run *)
  mean_norm : float;  (** mean normalized (fair-share = 1) throughput *)
  cov : float;  (** coefficient of variation across all flows *)
  cov_sampled : float;  (** reservoir estimate of [cov] *)
  jain : float;
  p10 : float;
  p50 : float;
  p90 : float;
  utilization : float;
  drop_rate : float;
  hist : float array;  (** fraction of flows per normalized bucket *)
}

val hist_buckets : int
val bucket_label : int -> string

(** Run one N: build, warm up, measure delivered throughput per flow over
    the measurement window, reduce to distributional stats. *)
val run : ?sched:Engine.Scheduler.kind -> params -> result
