(** Uniform handle over a running transport flow, regardless of protocol.

    Scenario code starts/stops flows and reads counters through this record;
    each agent module ({!Window_cc}, {!Rap}, {!Tfrc}, {!Tear}, {!Cbr})
    builds one. *)

(** Uniform per-flow statistics record every transport exports for the
    observability layer.  Transports without a loss-recovery machinery
    (rate-based and open-loop senders) report zero for [rtx_pkts],
    [timeouts] and [fast_rtx]. *)
type stats = {
  sent_pkts : int;
  sent_bytes : float;
  delivered_bytes : float;
  rtx_pkts : int;  (** retransmitted data packets *)
  timeouts : int;  (** retransmission-timer expiries *)
  fast_rtx : int;  (** fast-retransmit episodes *)
  stat_srtt : float;  (** smoothed RTT estimate at sampling time, seconds *)
}

(** Hooks a fluid fast-forward controller ([Slowcc.Fluid]) drives while
    packet-level simulation is frozen.  [ff_suspend] freezes the sender
    (in-flight packets drain, late acks are ignored); [ff_credit] folds
    whole fluid-model packets into the transport's counters and its
    receiver's byte count; [ff_resume ~p] re-seeds exact packet-level
    state (window, sequence/ack frontier) consistent with steady state at
    loss-event rate [p] and resumes sending.  [ff_rate_pps ~p] is the
    transport's analytic steady-state rate (AIMD sawtooth average for
    windowed senders, the TCP response function for TFRC).  Transports
    without a fluid model publish [None]. *)
type ff_ops = {
  ff_pkt_size : int;
  ff_rate_pps : p:float -> float;
  ff_suspend : unit -> unit;
  ff_credit : sent:int -> delivered:int -> unit;
  ff_resume : p:float -> unit;
}

type t = {
  id : int;  (** flow identifier, unique per topology *)
  protocol : string;  (** human-readable, e.g. "tcp(1/8)" *)
  start : unit -> unit;
  stop : unit -> unit;
  pkts_sent : unit -> int;
  bytes_sent : unit -> float;
  bytes_delivered : unit -> float;  (** received at the sink *)
  current_rate : unit -> float;  (** instantaneous send rate, bytes/s *)
  srtt : unit -> float;  (** smoothed RTT estimate, seconds *)
  stats : unit -> stats;  (** full statistics snapshot *)
  ff : ff_ops option;  (** fluid fast-forward hooks, if supported *)
}

(** Build a [stats] thunk from the four basic closures, with the
    loss-recovery counters pinned to zero — for transports that have no
    retransmission machinery. *)
val basic_stats :
  pkts_sent:(unit -> int) ->
  bytes_sent:(unit -> float) ->
  bytes_delivered:(unit -> float) ->
  srtt:(unit -> float) ->
  unit ->
  stats

(** Serialize a snapshot for manifests and benchmark reports. *)
val json_of_stats : stats -> Engine.Json.t

(** Mean goodput in bytes/s between two absolute times, from a closure
    sampling [bytes_delivered] — convenience for scenarios. *)
val throughput : t -> t0:float -> t1:float -> snapshot0:float -> float
