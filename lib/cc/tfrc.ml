let log_src =
  Logs.Src.create "slowcc.tfrc" ~doc:"TFRC sender/receiver events"

module Log = (val Logs.src_log log_src)

type config = {
  k : int;
  pkt_size : int;
  conservative : bool;
  conservative_c : float;
  history_discounting : bool;
  initial_rtt : float;
  initial_rate_pps : float;
  min_rate_pps : float;
}

let default_config ~k =
  {
    k;
    pkt_size = 1000;
    conservative = false;
    conservative_c = 1.1;
    history_discounting = false;
    initial_rtt = 0.2;
    initial_rate_pps = 2.;
    min_rate_pps = 1. /. 64.;
  }

(* ------------------------------------------------------------------ *)
(* Receiver                                                            *)
(* ------------------------------------------------------------------ *)

type receiver = {
  r_sim : Engine.Sim.t;
  r_node : Netsim.Node.t;
  r_flow : int;
  r_peer : int;
  r_cfg : config;
  history : Loss_history.t;
  mutable next_expected : int;
  mutable rtt_from_sender : float;
  mutable last_ts : float;  (* timestamp of last data packet *)
  mutable last_ts_arrival : float;  (* when it arrived here *)
  mutable bytes_since_fb : int;
  mutable last_fb_time : float;
  arrivals : (float * int) Queue.t;  (* recent (time, size), window of 16 *)
  mutable new_loss_pending : bool;
  mutable first_interval_seeded : bool;
  mutable recv_rate_estimate : float;  (* bytes/s over last fb interval *)
  mutable total_bytes : int;
  mutable fb_timer : Engine.Sim.timer;
}

let receiver_rtt r =
  if r.rtt_from_sender > 0. then r.rtt_from_sender else r.r_cfg.initial_rtt

(* Receive rate estimate.  The RFC measures bytes over the last RTT, which
   quantizes badly when an RTT holds zero or one packet; so we also rate
   the most recent few packets by their inter-arrival span and keep the
   larger of the two.  This stays current during ramps and never collapses
   from sampling noise. *)
let measured_recv_rate r ~now =
  let rtt = receiver_rtt r in
  let rate_over_last_rtt =
    let bytes =
      Queue.fold
        (fun acc (t, size) -> if t > now -. rtt then acc + size else acc)
        0 r.arrivals
    in
    if bytes > 0 then Some (float_of_int bytes /. rtt) else None
  in
  let rate_recent_packets =
    let newest_first = Queue.fold (fun acc x -> x :: acc) [] r.arrivals in
    match newest_first with
    | (t_new, _) :: _ when List.length newest_first >= 2 ->
      let recent = List.filteri (fun i _ -> i < 4) newest_first in
      let t_old = fst (List.nth recent (List.length recent - 1)) in
      (* Bytes of the packets after the oldest, over the span they took. *)
      let bytes =
        List.fold_left (fun acc (_, size) -> acc + size) 0 recent
        - snd (List.nth recent (List.length recent - 1))
      in
      let span = t_new -. t_old in
      if span > 0. then Some (float_of_int bytes /. span) else None
    | _ -> None
  in
  match (rate_over_last_rtt, rate_recent_packets) with
  | Some a, Some b -> Some (Float.max a b)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

(* Fallback receive-rate estimate when no per-packet measurement is
   available: bytes over the feedback interval.  A feedback fired exactly
   at a packet-arrival instant (dyadic timestamps make this reproducible)
   has [elapsed = 0.]; dividing would poison the estimate with inf/nan,
   so the previous estimate is kept instead. *)
let nofb_recv_rate ~bytes ~elapsed ~prev =
  if elapsed > 0. then float_of_int bytes /. elapsed else prev

let send_feedback r =
  let now = Engine.Sim.now r.r_sim in
  let elapsed = now -. r.last_fb_time in
  (match measured_recv_rate r ~now with
  | Some rate -> r.recv_rate_estimate <- rate
  | None ->
    r.recv_rate_estimate <-
      nofb_recv_rate ~bytes:r.bytes_since_fb ~elapsed
        ~prev:r.recv_rate_estimate);
  let p =
    Loss_history.loss_event_rate ~discounting:r.r_cfg.history_discounting
      r.history
  in
  (* Seed the first loss interval from the receive rate at the time of the
     first loss event (RFC 3448 s6.3.1). *)
  (if (not r.first_interval_seeded) && Loss_history.num_loss_events r.history > 0
   then begin
     let rate_pps =
       Float.max 1.
         (r.recv_rate_estimate /. float_of_int r.r_cfg.pkt_size)
     in
     let p0 = Tfrc_eq.invert ~rate_pps ~rtt:(receiver_rtt r) in
     Loss_history.seed_first_interval r.history (1. /. p0);
     r.first_interval_seeded <- true
   end);
  let p =
    if r.first_interval_seeded then
      Loss_history.loss_event_rate ~discounting:r.r_cfg.history_discounting
        r.history
    else p
  in
  let pkt =
    Netsim.Packet.alloc_tfrc_fb ~size:40 ~flow:r.r_flow
      ~src:(Netsim.Node.id r.r_node) ~dst:r.r_peer ~sent_at:now
      {
        Netsim.Packet.loss_event_rate = p;
        recv_rate = r.recv_rate_estimate;
        timestamp_echo = r.last_ts;
        delay_echo = now -. r.last_ts_arrival;
        new_loss = r.new_loss_pending;
      }
  in
  Netsim.Node.inject r.r_node pkt;
  r.new_loss_pending <- false;
  r.bytes_since_fb <- 0;
  r.last_fb_time <- now

let schedule_feedback r = Engine.Sim.arm_after r.fb_timer (receiver_rtt r)

let receiver_handle r (pkt : Netsim.Packet.t) =
  match pkt.Netsim.Packet.payload with
  | Netsim.Packet.Tfrc_data { timestamp; rtt_estimate } ->
    let now = Engine.Sim.now r.r_sim in
    if rtt_estimate > 0. then r.rtt_from_sender <- rtt_estimate;
    r.last_ts <- timestamp;
    r.last_ts_arrival <- now;
    r.total_bytes <- r.total_bytes + pkt.Netsim.Packet.size;
    r.bytes_since_fb <- r.bytes_since_fb + pkt.Netsim.Packet.size;
    Queue.add (now, pkt.Netsim.Packet.size) r.arrivals;
    while Queue.length r.arrivals > 16 do
      ignore (Queue.pop r.arrivals)
    done;
    let seq = pkt.Netsim.Packet.seq in
    if seq >= r.next_expected then begin
      (* Our FIFO paths never reorder, so a gap is a loss immediately. *)
      let had_new_event = ref false in
      for missing = r.next_expected to seq - 1 do
        if
          Loss_history.record_loss r.history ~seq:missing ~now
            ~rtt:(receiver_rtt r)
        then had_new_event := true
      done;
      (* An ECN congestion mark counts as a loss event without an actual
         loss (explicit-congestion treatment of the TFRC spec). *)
      if pkt.Netsim.Packet.ecn then
        if Loss_history.record_loss r.history ~seq ~now ~rtt:(receiver_rtt r)
        then had_new_event := true;
      Loss_history.note_progress r.history ~seq;
      r.next_expected <- seq + 1;
      if !had_new_event then begin
        r.new_loss_pending <- true;
        (* Expedite feedback on a new loss event. *)
        send_feedback r
      end
    end
  | Netsim.Packet.Plain | Netsim.Packet.Ack _ | Netsim.Packet.Rap_ack _
  | Netsim.Packet.Tfrc_fb _ | Netsim.Packet.Tear_fb _ ->
    ()

(* ------------------------------------------------------------------ *)
(* Sender                                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  sim : Engine.Sim.t;
  cfg : config;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  flow_id : int;
  receiver : receiver;
  mutable running : bool;
  mutable x : float;  (* allowed sending rate, packets/s *)
  mutable srtt : float;
  mutable rtt_valid : bool;
  mutable slow_start : bool;
  mutable last_p : float;
  mutable seq : int;
  mutable send_timer : Engine.Sim.timer;
  mutable nofb_timer : Engine.Sim.timer;
  mutable pkts_sent : int;
  mutable bytes_sent : int;
  (* --- fluid fast-forward --- *)
  mutable ff_suspended : bool;
  mutable ff_delivered : int;  (* fluid pkts credited since suspend *)
}

let sender_rtt t = if t.rtt_valid then t.srtt else t.cfg.initial_rtt

let send_next t =
  if t.running then begin
    let pkt =
      Netsim.Packet.make ~size:t.cfg.pkt_size ~seq:t.seq ~flow:t.flow_id
        ~src:(Netsim.Node.id t.src) ~dst:(Netsim.Node.id t.dst)
        ~sent_at:(Engine.Sim.now t.sim)
        ~payload:
          (Netsim.Packet.Tfrc_data
             {
               timestamp = Engine.Sim.now t.sim;
               rtt_estimate = (if t.rtt_valid then t.srtt else 0.);
             })
        ()
    in
    t.seq <- t.seq + 1;
    t.pkts_sent <- t.pkts_sent + 1;
    t.bytes_sent <- t.bytes_sent + t.cfg.pkt_size;
    Netsim.Node.inject t.src pkt;
    let gap = 1. /. Float.max t.cfg.min_rate_pps t.x in
    Engine.Sim.arm_after t.send_timer gap
  end

(* The no-feedback timer: halve the rate when feedback stops arriving
   (t_RTO = max(4 R, 2 packets at the current rate)). *)
let restart_nofb t =
  if t.running then begin
    let t_rto = Float.max (4. *. sender_rtt t) (2. /. Float.max 1e-6 t.x) in
    Engine.Sim.arm_after t.nofb_timer t_rto
  end
  else Engine.Sim.disarm t.nofb_timer

let on_feedback t (fb : Netsim.Packet.tfrc_feedback) =
  let now = Engine.Sim.now t.sim in
  let sample = now -. fb.Netsim.Packet.timestamp_echo -. fb.Netsim.Packet.delay_echo in
  if sample > 0. then
    if t.rtt_valid then t.srtt <- (0.9 *. t.srtt) +. (0.1 *. sample)
    else begin
      t.srtt <- sample;
      t.rtt_valid <- true
    end;
  let x_recv_pps = fb.Netsim.Packet.recv_rate /. float_of_int t.cfg.pkt_size in
  let p = fb.Netsim.Packet.loss_event_rate in
  t.last_p <- p;
  (if p > 0. then begin
     t.slow_start <- false;
     let x_calc = Tfrc_eq.rate_pps ~p ~rtt:(sender_rtt t) in
     let allowed =
       if t.cfg.conservative then
         if fb.Netsim.Packet.new_loss then Float.min x_calc x_recv_pps
         else Float.min x_calc (t.cfg.conservative_c *. x_recv_pps)
       else Float.min x_calc (2. *. x_recv_pps)
     in
     t.x <- Float.max t.cfg.min_rate_pps allowed;
     Log.debug (fun m ->
         m "t=%.3f flow=%d feedback: p=%.4f x_recv=%.1fpps -> x=%.1fpps%s"
           (Engine.Sim.now t.sim) t.flow_id p x_recv_pps t.x
           (if fb.Netsim.Packet.new_loss then " (new loss)" else ""))
   end
   else begin
     (* Slow-start: double per feedback, capped by twice the receive rate
        (and by the receive rate itself under the conservative option). *)
     let cap =
       if t.cfg.conservative then
         Float.max t.cfg.initial_rate_pps (2. *. x_recv_pps)
       else 2. *. x_recv_pps
     in
     t.x <-
       Float.max t.cfg.initial_rate_pps (Float.min (2. *. t.x) cap)
   end);
  restart_nofb t

let handle_fb t (pkt : Netsim.Packet.t) =
  (if t.running then
     match pkt.Netsim.Packet.payload with
     | Netsim.Packet.Tfrc_fb fb -> on_feedback t fb
     | Netsim.Packet.Plain | Netsim.Packet.Ack _ | Netsim.Packet.Rap_ack _
     | Netsim.Packet.Tfrc_data _ | Netsim.Packet.Tear_fb _ ->
       ());
  (* Sole consumer of the receiver's pooled feedback shells; the payload
     record itself is fresh per feedback and not recycled. *)
  Netsim.Packet.release pkt

let create ~sim ~src ~dst ~flow cfg =
  let receiver =
    {
      r_sim = sim;
      r_node = dst;
      r_flow = flow;
      r_peer = Netsim.Node.id src;
      r_cfg = cfg;
      history = Loss_history.create ~k:cfg.k;
      next_expected = 0;
      rtt_from_sender = 0.;
      last_ts = 0.;
      last_ts_arrival = 0.;
      bytes_since_fb = 0;
      last_fb_time = 0.;
      arrivals = Queue.create ();
      new_loss_pending = false;
      first_interval_seeded = false;
      recv_rate_estimate = 0.;
      total_bytes = 0;
      fb_timer = Engine.Sim.timer sim ignore;
    }
  in
  receiver.fb_timer <-
    Engine.Sim.timer sim (fun () ->
        (* Feedback is only sent while data keeps arriving (RFC 3448
           s6.2); an all-zero receive rate would otherwise collapse the
           sender's slow-start cap. *)
        if receiver.bytes_since_fb > 0 || receiver.new_loss_pending then
          send_feedback receiver;
        schedule_feedback receiver);
  Netsim.Node.attach dst ~flow (receiver_handle receiver);
  let t =
    {
      sim;
      cfg;
      src;
      dst;
      flow_id = flow;
      receiver;
      running = false;
      x = cfg.initial_rate_pps;
      srtt = 0.;
      rtt_valid = false;
      slow_start = true;
      last_p = 0.;
      seq = 0;
      send_timer = Engine.Sim.timer sim ignore;
      nofb_timer = Engine.Sim.timer sim ignore;
      pkts_sent = 0;
      bytes_sent = 0;
      ff_suspended = false;
      ff_delivered = 0;
    }
  in
  t.send_timer <- Engine.Sim.timer sim (fun () -> send_next t);
  t.nofb_timer <-
    Engine.Sim.timer sim (fun () ->
        t.x <- Float.max t.cfg.min_rate_pps (t.x /. 2.);
        restart_nofb t);
  Netsim.Node.attach src ~flow (handle_fb t);
  t

let start t =
  if not t.running then begin
    t.running <- true;
    t.receiver.last_fb_time <- Engine.Sim.now t.sim;
    send_next t;
    schedule_feedback t.receiver;
    restart_nofb t
  end

let stop t =
  t.running <- false;
  Engine.Sim.disarm t.send_timer;
  Engine.Sim.disarm t.nofb_timer;
  Engine.Sim.disarm t.receiver.fb_timer

(* --- fluid fast-forward ------------------------------------------------ *)

(* Freeze: stop the send clock, the no-feedback timer and the receiver's
   feedback clock.  In-flight data still drains to the receiver (its
   expedited-feedback path may fire once more; the frozen sender ignores
   and releases the shells). *)
let ff_suspend t =
  if t.running && not t.ff_suspended then begin
    t.ff_suspended <- true;
    stop t
  end

let ff_credit t ~sent ~delivered =
  if t.ff_suspended && sent >= 0 && delivered >= 0 then begin
    t.pkts_sent <- t.pkts_sent + sent;
    t.bytes_sent <- t.bytes_sent + (sent * t.cfg.pkt_size);
    t.ff_delivered <- t.ff_delivered + delivered;
    t.receiver.total_bytes <-
      t.receiver.total_bytes + (delivered * t.cfg.pkt_size)
  end

(* TFRC's fluid model IS its control law: the TCP response function at
   the measured loss-event rate (the same [Tfrc_eq.rate_pps] the sender
   applies to each feedback report). *)
let ff_rate_pps t ~p =
  if p > 0. then
    Float.max t.cfg.min_rate_pps (Tfrc_eq.rate_pps ~p ~rtt:(sender_rtt t))
  else t.x

(* Thaw: jump the data/receive frontier past the fluid packets (so the
   first resumed packet is gap-free and mints no phantom loss events),
   drop the stale receive-rate samples, pin the allowed rate to the
   equation at [p], and restart all three clocks. *)
let ff_resume t ~p =
  if t.ff_suspended then begin
    t.ff_suspended <- false;
    t.seq <- t.seq + t.ff_delivered;
    t.ff_delivered <- 0;
    t.receiver.next_expected <- max t.receiver.next_expected t.seq;
    t.seq <- t.receiver.next_expected;
    Queue.clear t.receiver.arrivals;
    t.receiver.bytes_since_fb <- 0;
    t.receiver.new_loss_pending <- false;
    if p > 0. then begin
      t.slow_start <- false;
      t.last_p <- p;
      t.x <- ff_rate_pps t ~p
    end;
    t.running <- true;
    t.receiver.last_fb_time <- Engine.Sim.now t.sim;
    send_next t;
    schedule_feedback t.receiver;
    restart_nofb t
  end

let ff_ops t =
  Some
    {
      Flow.ff_pkt_size = t.cfg.pkt_size;
      ff_rate_pps = (fun ~p -> ff_rate_pps t ~p);
      ff_suspend = (fun () -> ff_suspend t);
      ff_credit = (fun ~sent ~delivered -> ff_credit t ~sent ~delivered);
      ff_resume = (fun ~p -> ff_resume t ~p);
    }

let flow t =
  let name =
    Printf.sprintf "tfrc(%d)%s" t.cfg.k
      (if t.cfg.conservative then "+sc" else "")
  in
  {
    Flow.id = t.flow_id;
    protocol = name;
    start = (fun () -> start t);
    stop = (fun () -> stop t);
    pkts_sent = (fun () -> t.pkts_sent);
    bytes_sent = (fun () -> float_of_int t.bytes_sent);
    bytes_delivered = (fun () -> float_of_int t.receiver.total_bytes);
    current_rate = (fun () -> t.x *. float_of_int t.cfg.pkt_size);
    srtt = (fun () -> sender_rtt t);
    stats =
      Flow.basic_stats
        ~pkts_sent:(fun () -> t.pkts_sent)
        ~bytes_sent:(fun () -> float_of_int t.bytes_sent)
        ~bytes_delivered:(fun () -> float_of_int t.receiver.total_bytes)
        ~srtt:(fun () -> sender_rtt t);
    ff = ff_ops t;
  }

let rate_pps t = t.x
let srtt t = sender_rtt t
let loss_event_rate t = t.last_p
let in_slow_start t = t.slow_start
