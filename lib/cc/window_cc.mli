(** Self-clocked window-based congestion control.

    One sender implementation covers the paper's whole windowed family via a
    pluggable increase/decrease {!rule}:

    - TCP(b)   — AIMD with a = 4(2b - b^2)/3 (the paper's compatibility rule)
    - SQRT / IIAD — binomial algorithms (Bansal & Balakrishnan)

    Mechanisms included, per the paper's definition of TCP(b): slow-start,
    duplicate-ack fast retransmit with NewReno-style partial-ack recovery,
    retransmit timeouts with exponential backoff, Karn's algorithm for RTT
    sampling, and strict self-clocking (data leaves only on ack arrival or
    timer expiry — the packet-conservation principle of Section 4.1). *)

type rule = {
  name : string;
  increase : float -> float;  (** window -> additive per-RTT increment *)
  decrease : float -> float;  (** window -> new window after a loss event *)
}

(** Plain AIMD: increase a/RTT, multiply by (1-b) on loss. *)
val aimd : a:float -> b:float -> rule

(** TCP-compatible AIMD(b): a = 4(2b - b^2)/3 (Section 2). *)
val tcp_compatible_aimd : b:float -> rule

(** Binomial: increase a / w^k per RTT, decrease w - b w^l on loss. *)
val binomial : k:float -> l:float -> a:float -> b:float -> rule

type variant =
  | Reno  (** fast retransmit + NewReno fast recovery (default) *)
  | Tahoe  (** fast retransmit, then slow-start from one packet *)

type config = {
  rule : rule;
  variant : variant;
  sack : bool;
      (** selective acknowledgments: a scoreboard drives loss recovery
          (simplified RFC 3517); recovers multi-loss windows without
          timeouts *)
  pkt_size : int;  (** data bytes per packet *)
  initial_window : float;
  initial_ssthresh : float option;
      (** [Some s] starts in congestion avoidance once the window reaches
          [s]; [None] (default) slow-starts until the first loss *)
  max_window : float;
  min_rto : float;  (** seconds; ns-2-era default 0.2 *)
  max_rto : float;
  total_pkts : int option;  (** [Some n] for a short transfer of n packets *)
  react_to_ecn : bool;
  delayed_acks : bool;  (** receiver acks every other packet *)
  on_complete : (unit -> unit) option;
}

val default_config : rule -> config

type t

(** Build sender on [src] and its acking sink on [dst]; the flow does not
    transmit until [Flow.start]. *)
val create :
  sim:Engine.Sim.t ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  flow:int ->
  config ->
  t

val flow : t -> Flow.t

(** {2 Fluid fast-forward}

    Exposed so the hybrid engine's controller (and tests) can drive a
    sender directly; [flow] publishes the same hooks as {!Flow.ff_ops}
    for long-lived flows. *)

(** Steady-state sawtooth of [rule] at loss-event rate [p]: one loss
    event per [1/p] packets, per-RTT growth of [increase w].  Returns
    [(average packets per RTT, peak window)], or [None] for [p <= 0] or
    [p >= 1].  AIMD(1, 1/2) reproduces [sqrt(3/(2p))]. *)
val sawtooth_model :
  rule:rule -> max_window:float -> p:float -> (float * float) option

(** Freeze the sender (idempotent; no-op unless running). *)
val ff_suspend : t -> unit

(** Fold fluid-model packets into counters while suspended. *)
val ff_credit : t -> sent:int -> delivered:int -> unit

(** Analytic sawtooth rate at loss rate [p] over the measured RTT,
    packets/s; 0 until an RTT sample exists. *)
val ff_rate_pps : t -> p:float -> float

(** Re-seed exact packet state for steady state at loss rate [p] and
    resume (see the re-seed contract in DESIGN §11). *)
val ff_resume : t -> p:float -> unit

(** Sender-state snapshot: the slice the re-seed contract covers. *)
type state = {
  s_cwnd : float;
  s_ssthresh : float;
  s_snd_una : int;
  s_snd_nxt : int;
  s_high_water : int;
  s_srtt : float;
  s_rttvar : float;
  s_rtt_valid : bool;
  s_backoff : float;
}

val export_state : t -> state

(** Restore a snapshot; transient loss-recovery machinery is cleared. *)
val import_state : t -> state -> unit

(** Introspection for tests and instrumentation. *)
val cwnd : t -> float

(** Current retransmit timeout as the RTO timer would arm it: backoff
    applied to [srtt + 4*rttvar] (1 s before the first valid sample),
    floored at [cfg.min_rto] and capped at [cfg.max_rto]. *)
val rto : t -> float

val ssthresh : t -> float
val srtt : t -> float
val timeouts : t -> int
val fast_retransmits : t -> int
val retransmitted_pkts : t -> int
val inflight : t -> int
val finished : t -> bool
