type t = {
  sim : Engine.Sim.t;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  flow_id : int;
  pkt_size : int;
  mutable rate : float;
  mutable on : bool;
  mutable timer : Engine.Sim.handle option;
  mutable seq : int;
  mutable pkts_sent : int;
  mutable bytes_sent : float;
  mutable bytes_delivered : float;
  (* --- fluid fast-forward --- *)
  mutable ff_suspended : bool;
  mutable ff_was_on : bool;  (* on/off state captured at suspend *)
}

let interval t = float_of_int (t.pkt_size * 8) /. t.rate

let rec send_next t =
  t.timer <- None;
  if t.on && t.rate > 0. then begin
    let pkt =
      Netsim.Packet.make ~size:t.pkt_size ~seq:t.seq ~flow:t.flow_id
        ~src:(Netsim.Node.id t.src) ~dst:(Netsim.Node.id t.dst)
        ~sent_at:(Engine.Sim.now t.sim) ()
    in
    t.seq <- t.seq + 1;
    t.pkts_sent <- t.pkts_sent + 1;
    t.bytes_sent <- t.bytes_sent +. float_of_int t.pkt_size;
    Netsim.Node.inject t.src pkt;
    t.timer <-
      Some (Engine.Sim.after_cancellable t.sim (interval t) (fun () -> send_next t))
  end

let create ~sim ~src ~dst ~flow ~rate ~pkt_size =
  if rate <= 0. then invalid_arg "Cbr.create: rate must be positive";
  let t =
    {
      sim;
      src;
      dst;
      flow_id = flow;
      pkt_size;
      rate;
      on = false;
      timer = None;
      seq = 0;
      pkts_sent = 0;
      bytes_sent = 0.;
      bytes_delivered = 0.;
      ff_suspended = false;
      ff_was_on = false;
    }
  in
  Netsim.Node.attach dst ~flow (fun pkt ->
      t.bytes_delivered <-
        t.bytes_delivered +. float_of_int pkt.Netsim.Packet.size);
  t

let start t =
  if not t.on then begin
    t.on <- true;
    send_next t
  end

let stop t =
  t.on <- false;
  match t.timer with
  | Some h ->
    Engine.Sim.cancel h;
    t.timer <- None
  | None -> ()

(* --- fluid fast-forward ------------------------------------------------ *)

(* A CBR source is the trivial fluid: its analytic rate is its configured
   rate while on, zero while off.  Suspend captures the on/off state so a
   thaw restores exactly what the square-wave driver had set. *)
let ff_suspend t =
  if not t.ff_suspended then begin
    t.ff_suspended <- true;
    t.ff_was_on <- t.on;
    if t.on then stop t
  end

let ff_credit t ~sent ~delivered =
  if t.ff_suspended && sent >= 0 && delivered >= 0 then begin
    t.seq <- t.seq + sent;
    t.pkts_sent <- t.pkts_sent + sent;
    t.bytes_sent <- t.bytes_sent +. float_of_int (sent * t.pkt_size);
    t.bytes_delivered <-
      t.bytes_delivered +. float_of_int (delivered * t.pkt_size)
  end

let ff_rate_pps t ~p:_ =
  let on = if t.ff_suspended then t.ff_was_on else t.on in
  if on then t.rate /. float_of_int (t.pkt_size * 8) else 0.

let ff_resume t ~p:_ =
  if t.ff_suspended then begin
    t.ff_suspended <- false;
    if t.ff_was_on then start t
  end

let ff_ops t =
  Some
    {
      Flow.ff_pkt_size = t.pkt_size;
      ff_rate_pps = (fun ~p -> ff_rate_pps t ~p);
      ff_suspend = (fun () -> ff_suspend t);
      ff_credit = (fun ~sent ~delivered -> ff_credit t ~sent ~delivered);
      ff_resume = (fun ~p -> ff_resume t ~p);
    }

let flow t =
  {
    Flow.id = t.flow_id;
    protocol = "cbr";
    start = (fun () -> start t);
    stop = (fun () -> stop t);
    pkts_sent = (fun () -> t.pkts_sent);
    bytes_sent = (fun () -> t.bytes_sent);
    bytes_delivered = (fun () -> t.bytes_delivered);
    current_rate = (fun () -> if t.on then t.rate /. 8. else 0.);
    srtt = (fun () -> 0.);
    stats =
      Flow.basic_stats
        ~pkts_sent:(fun () -> t.pkts_sent)
        ~bytes_sent:(fun () -> t.bytes_sent)
        ~bytes_delivered:(fun () -> t.bytes_delivered)
        ~srtt:(fun () -> 0.);
    ff = ff_ops t;
  }

let set_rate t rate =
  if rate <= 0. then invalid_arg "Cbr.set_rate: rate must be positive";
  t.rate <- rate

let rate t = t.rate
let is_on t = t.on
