let log_src = Logs.Src.create "slowcc.rap" ~doc:"RAP events"

module Log = (val Logs.src_log log_src)

type config = {
  a : float;
  b : float;
  pkt_size : int;
  initial_rtt : float;
  max_rate_pps : float;
}

let tcp_compatible_config ~b =
  if b <= 0. || b >= 1. then invalid_arg "Rap.tcp_compatible_config";
  let a = 4. *. ((2. *. b) -. (b *. b)) /. 3. in
  { a; b; pkt_size = 1000; initial_rtt = 0.2; max_rate_pps = 1e6 }

type t = {
  sim : Engine.Sim.t;
  cfg : config;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  flow_id : int;
  mutable running : bool;
  mutable w : float;  (* packets per RTT *)
  mutable srtt : float;
  mutable rtt_valid : bool;
  mutable seq : int;
  mutable no_decrease_until : float;  (* at most one decrease per RTT *)
  outstanding : (int, float) Hashtbl.t;  (* seq -> send time *)
  mutable timer : Engine.Sim.handle option;
  mutable pkts_sent : int;
  mutable bytes_sent : float;
  mutable bytes_delivered : float;
  mutable n_loss_events : int;
}

let rtt t = if t.rtt_valid then t.srtt else t.cfg.initial_rtt

let rate_pps t = Float.min t.cfg.max_rate_pps (t.w /. rtt t)

let rec send_next t =
  t.timer <- None;
  if t.running then begin
    let pkt =
      Netsim.Packet.make ~size:t.cfg.pkt_size ~seq:t.seq ~flow:t.flow_id
        ~src:(Netsim.Node.id t.src) ~dst:(Netsim.Node.id t.dst)
        ~sent_at:(Engine.Sim.now t.sim) ()
    in
    Hashtbl.replace t.outstanding t.seq (Engine.Sim.now t.sim);
    t.seq <- t.seq + 1;
    t.pkts_sent <- t.pkts_sent + 1;
    t.bytes_sent <- t.bytes_sent +. float_of_int t.cfg.pkt_size;
    Netsim.Node.inject t.src pkt;
    let gap = 1. /. rate_pps t in
    t.timer <-
      Some (Engine.Sim.after_cancellable t.sim gap (fun () -> send_next t))
  end

let sample_rtt t sample =
  if t.rtt_valid then t.srtt <- (0.875 *. t.srtt) +. (0.125 *. sample)
  else begin
    t.srtt <- sample;
    t.rtt_valid <- true
  end

(* An ack for [s] implies everything <= s - 3 still outstanding was lost. *)
let detect_losses t ~acked_seq =
  let lost = ref false in
  let threshold = acked_seq - 3 in
  Hashtbl.iter
    (fun seq _ -> if seq <= threshold then lost := true)
    t.outstanding;
  if !lost then begin
    Hashtbl.reset t.outstanding;
    let now = Engine.Sim.now t.sim in
    if now >= t.no_decrease_until then begin
      t.n_loss_events <- t.n_loss_events + 1;
      Log.debug (fun m ->
          m "t=%.3f flow=%d loss event: w=%.1f -> %.1f" (Engine.Sim.now t.sim)
            t.flow_id t.w ((1. -. t.cfg.b) *. t.w));
      t.w <- Float.max 1. ((1. -. t.cfg.b) *. t.w);
      t.no_decrease_until <- now +. rtt t
    end
  end

let handle_ack t (pkt : Netsim.Packet.t) =
  if t.running then
    match pkt.Netsim.Packet.payload with
    | Netsim.Packet.Rap_ack { cum_seq = acked_seq; recv_rate = _ } ->
      (match Hashtbl.find_opt t.outstanding acked_seq with
      | Some sent ->
        Hashtbl.remove t.outstanding acked_seq;
        sample_rtt t (Engine.Sim.now t.sim -. sent)
      | None -> ());
      detect_losses t ~acked_seq;
      (* Per-ack additive increase a/w, suppressed during the one-RTT
         blackout that follows a decrease. *)
      if Engine.Sim.now t.sim >= t.no_decrease_until then
        t.w <- t.w +. (t.cfg.a /. t.w)
    | Netsim.Packet.Plain | Netsim.Packet.Ack _ | Netsim.Packet.Tfrc_data _
    | Netsim.Packet.Tfrc_fb _ | Netsim.Packet.Tear_fb _ ->
      ()

let attach_receiver t =
  let bytes = ref 0. in
  Netsim.Node.attach t.dst ~flow:t.flow_id (fun pkt ->
      bytes := !bytes +. float_of_int pkt.Netsim.Packet.size;
      t.bytes_delivered <- !bytes;
      let ack =
        Netsim.Packet.make ~size:40 ~flow:t.flow_id
          ~src:(Netsim.Node.id t.dst) ~dst:(Netsim.Node.id t.src)
          ~sent_at:pkt.Netsim.Packet.sent_at
          ~payload:
            (Netsim.Packet.Rap_ack
               { cum_seq = pkt.Netsim.Packet.seq; recv_rate = 0. })
          ()
      in
      Netsim.Node.inject t.dst ack)

let create ~sim ~src ~dst ~flow cfg =
  if cfg.a <= 0. || cfg.b <= 0. || cfg.b >= 1. then invalid_arg "Rap.create";
  let t =
    {
      sim;
      cfg;
      src;
      dst;
      flow_id = flow;
      running = false;
      w = 1.;
      srtt = 0.;
      rtt_valid = false;
      seq = 0;
      no_decrease_until = 0.;
      outstanding = Hashtbl.create 64;
      timer = None;
      pkts_sent = 0;
      bytes_sent = 0.;
      bytes_delivered = 0.;
      n_loss_events = 0;
    }
  in
  attach_receiver t;
  Netsim.Node.attach src ~flow (handle_ack t);
  t

let start t =
  if not t.running then begin
    t.running <- true;
    send_next t
  end

let stop t =
  t.running <- false;
  match t.timer with
  | Some h ->
    Engine.Sim.cancel h;
    t.timer <- None
  | None -> ()

let flow t =
  {
    Flow.id = t.flow_id;
    protocol = Printf.sprintf "rap(b=%g)" t.cfg.b;
    start = (fun () -> start t);
    stop = (fun () -> stop t);
    pkts_sent = (fun () -> t.pkts_sent);
    bytes_sent = (fun () -> t.bytes_sent);
    bytes_delivered = (fun () -> t.bytes_delivered);
    current_rate = (fun () -> rate_pps t *. float_of_int t.cfg.pkt_size);
    srtt = (fun () -> rtt t);
    stats =
      Flow.basic_stats
        ~pkts_sent:(fun () -> t.pkts_sent)
        ~bytes_sent:(fun () -> t.bytes_sent)
        ~bytes_delivered:(fun () -> t.bytes_delivered)
        ~srtt:(fun () -> rtt t);
    ff = None;
  }

let window t = t.w
let loss_events t = t.n_loss_events
