(** Many-flow execution path for windowed (TCP-style) senders and sinks.

    One value holds the state of [n] flows between a shared source and
    destination node, laid out struct-of-arrays: every per-flow mutable
    field lives in a parallel unboxed [floatarray] / [int array] slot
    indexed by dense flow index, so 10⁵+ flows fit in flat memory with
    no per-flow closures, timer objects or hash entries.  The congestion
    control is a field-for-field transliteration of {!Window_cc}
    restricted to its dominant configuration (Reno, no SACK, no delayed
    acks, unbounded transfer): at equal inputs the two engines produce
    byte-identical end states — the differential fuzzer checks this.

    Per-flow RTO timers are consolidated into a single calendar-queue
    timer wheel for the whole engine, with the same lazy-cancel /
    lazy-re-arm semantics as per-flow {!Engine.Sim.timer}s.  Wheel
    entries carry sequence numbers burned from the simulator's insertion
    counter ({!Engine.Sim.alloc_seq}), so RTO firings keep the exact
    (time, FIFO) position per-flow timers would have — byte-identical
    schedules even when deadlines collide with other events at exact
    float timestamps.

    Flow indexes are [0 .. n-1]; the wire-visible flow id of index [i]
    is [base + i]. *)

type config = {
  rule : Window_cc.rule;
  pkt_size : int;
  ack_size : int;
  initial_window : float;
  initial_ssthresh : float option;
  max_window : float;
  min_rto : float;
  max_rto : float;
  react_to_ecn : bool;
  ack_batching : bool;
      (** coalesce same-instant acks per flow at the sink.  Changes ack
          timing/count, so digest-equivalence with the per-object engine
          only holds when off (the default). *)
}

(** Same defaults as {!Window_cc.default_config}; batching off. *)
val default_config : Window_cc.rule -> config

type t

(** [create ~sim ~src ~dst ~base ~n cfg] attaches [n] sender/sink pairs
    for flow ids [base .. base+n-1] between [src] and [dst] (data flows
    [src] → [dst]).  Reserves dense dispatch slots on both nodes. *)
val create :
  sim:Engine.Sim.t ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  base:int ->
  n:int ->
  config ->
  t

val n : t -> int

(** Start/stop flow index [i] (mirrors {!Window_cc.start}/[stop]). *)
val start : t -> int -> unit

val stop : t -> int -> unit

(** {2 Per-flow observers} (index, not flow id) *)

val pkts_sent : t -> int -> int
val bytes_sent : t -> int -> float
val delivered_pkts : t -> int -> int
val bytes_delivered : t -> int -> float
val srtt : t -> int -> float
val cwnd : t -> int -> float
val timeouts : t -> int -> int
val fast_retransmits : t -> int -> int
val retransmitted_pkts : t -> int -> int
val stats : t -> int -> Flow.stats

(** Closure view of flow index [i], for code that consumes {!Flow.t}
    (tracing, digests).  Allocates; not for per-packet use. *)
val flow : t -> int -> Flow.t

(** {2 State snapshots}

    The same sender-state slice as {!Window_cc.export_state} — the
    fast-forward re-seed contract — so flows can be moved between the
    per-object and struct-of-arrays representations. *)

val export_state : t -> int -> Window_cc.state

(** Restore a snapshot into flow index [i]; transient loss-recovery
    machinery (dupacks, recovery mode, RTT probe) is cleared. *)
val import_state : t -> int -> Window_cc.state -> unit

(** {2 RTO-wheel introspection} (tests / instrumentation)

    The consolidated wheel lazily re-arms timers, stranding stale
    entries; a sweep bounds the total at [2 * tracked + 64] where
    [tracked] is the number of flows holding a live entry. *)

val wheel_size : t -> int

val wheel_tracked : t -> int
