type config = {
  pkt_size : int;
  smoothing_rounds : int;
  initial_rtt : float;
  initial_rate_pps : float;
  min_rate_pps : float;
}

let default_config =
  {
    pkt_size = 1000;
    smoothing_rounds = 8;
    initial_rtt = 0.2;
    initial_rate_pps = 2.;
    min_rate_pps = 1. /. 64.;
  }

(* ------------------------------------------------------------------ *)
(* Receiver: the emulated TCP window                                    *)
(* ------------------------------------------------------------------ *)

type receiver = {
  r_sim : Engine.Sim.t;
  r_node : Netsim.Node.t;
  r_flow : int;
  r_peer : int;
  r_cfg : config;
  (* emulated TCP state, driven by data arrivals *)
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable next_expected : int;
  mutable round_arrivals : int;  (* arrivals in the current round *)
  mutable round_start_cwnd : float;
  mutable rounds : float list;  (* per-round cwnd, most recent first *)
  mutable loss_round_guard : float;  (* time before which losses coalesce *)
  mutable rtt_from_sender : float;
  mutable last_ts : float;
  mutable last_ts_arrival : float;
  mutable last_data_time : float;
}

let receiver_rtt r =
  if r.rtt_from_sender > 0. then r.rtt_from_sender else r.r_cfg.initial_rtt

(* TEAR weights: like TFRC's WALI, flat over the newer half and linearly
   decaying over the older half. *)
let smoothed_cwnd r =
  let k = r.r_cfg.smoothing_rounds in
  let weight i =
    let half = k / 2 in
    if i < half || k = 1 then 1.
    else float_of_int (k - i) /. float_of_int (k - half + 1)
  in
  let rec go i num den = function
    | [] -> if den = 0. then r.cwnd else num /. den
    | w :: rest ->
      if i >= k then if den = 0. then r.cwnd else num /. den
      else go (i + 1) (num +. (weight i *. w)) (den +. weight i) rest
  in
  go 0 0. 0. r.rounds

let report_rate r =
  let now = Engine.Sim.now r.r_sim in
  let rate = Float.max 0.5 (smoothed_cwnd r /. receiver_rtt r) in
  let fb =
    Netsim.Packet.Tear_fb
      {
        rate_pps = rate;
        timestamp_echo = r.last_ts;
        delay_echo = now -. r.last_ts_arrival;
      }
  in
  Netsim.Node.inject r.r_node
    (Netsim.Packet.make ~size:40 ~flow:r.r_flow ~src:(Netsim.Node.id r.r_node)
       ~dst:r.r_peer ~sent_at:now ~payload:fb ())

let close_round r =
  r.rounds <- r.cwnd :: r.rounds;
  if List.length r.rounds > r.r_cfg.smoothing_rounds then
    r.rounds <-
      List.filteri (fun i _ -> i < r.r_cfg.smoothing_rounds) r.rounds;
  r.round_arrivals <- 0;
  r.round_start_cwnd <- r.cwnd;
  (* TEAR reports once per round (per emulated RTT), far less often than
     one ack per packet. *)
  report_rate r

let on_congestion r =
  let now = Engine.Sim.now r.r_sim in
  if now >= r.loss_round_guard then begin
    (* Emulated fast recovery: one halving per round of congestion. *)
    r.ssthresh <- Float.max 2. (r.cwnd /. 2.);
    r.cwnd <- r.ssthresh;
    r.loss_round_guard <- now +. receiver_rtt r;
    close_round r
  end

let on_in_order_arrival r =
  if r.cwnd < r.ssthresh then r.cwnd <- r.cwnd +. 1.
  else r.cwnd <- r.cwnd +. (1. /. r.cwnd);
  r.round_arrivals <- r.round_arrivals + 1;
  if float_of_int r.round_arrivals >= r.round_start_cwnd then close_round r

let receiver_handle r (pkt : Netsim.Packet.t) =
  match pkt.Netsim.Packet.payload with
  | Netsim.Packet.Tfrc_data { timestamp; rtt_estimate } ->
    let now = Engine.Sim.now r.r_sim in
    if rtt_estimate > 0. then r.rtt_from_sender <- rtt_estimate;
    r.last_ts <- timestamp;
    r.last_ts_arrival <- now;
    r.last_data_time <- now;
    let seq = pkt.Netsim.Packet.seq in
    if seq > r.next_expected then begin
      (* Holes are losses on our FIFO paths. *)
      on_congestion r;
      r.next_expected <- seq + 1
    end
    else if seq = r.next_expected then begin
      r.next_expected <- seq + 1;
      on_in_order_arrival r
    end
  | Netsim.Packet.Plain | Netsim.Packet.Ack _ | Netsim.Packet.Rap_ack _
  | Netsim.Packet.Tfrc_fb _ | Netsim.Packet.Tear_fb _ ->
    ()

(* Timeout emulation: when data stops arriving entirely for several
   emulated RTTs, collapse the window like TCP's RTO would. *)
let rec watchdog r =
  let rtt = receiver_rtt r in
  Engine.Sim.after r.r_sim (4. *. rtt) (fun () ->
      let now = Engine.Sim.now r.r_sim in
      if r.last_data_time > 0. && now -. r.last_data_time > 4. *. rtt then begin
        r.ssthresh <- Float.max 2. (r.cwnd /. 2.);
        r.cwnd <- 1.;
        close_round r
      end;
      watchdog r)

(* ------------------------------------------------------------------ *)
(* Sender: transmit at the reported rate                                *)
(* ------------------------------------------------------------------ *)

type t = {
  sim : Engine.Sim.t;
  cfg : config;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  flow_id : int;
  receiver : receiver;
  mutable running : bool;
  mutable x : float;  (* pkts/s *)
  mutable srtt : float;
  mutable rtt_valid : bool;
  mutable seq : int;
  mutable send_timer : Engine.Sim.handle option;
  mutable pkts_sent : int;
  mutable bytes_sent : float;
  mutable bytes_delivered : float;
}

let sender_rtt t = if t.rtt_valid then t.srtt else t.cfg.initial_rtt

let rec send_next t =
  t.send_timer <- None;
  if t.running then begin
    let pkt =
      Netsim.Packet.make ~size:t.cfg.pkt_size ~seq:t.seq ~flow:t.flow_id
        ~src:(Netsim.Node.id t.src) ~dst:(Netsim.Node.id t.dst)
        ~sent_at:(Engine.Sim.now t.sim)
        ~payload:
          (Netsim.Packet.Tfrc_data
             {
               timestamp = Engine.Sim.now t.sim;
               rtt_estimate = (if t.rtt_valid then t.srtt else 0.);
             })
        ()
    in
    t.seq <- t.seq + 1;
    t.pkts_sent <- t.pkts_sent + 1;
    t.bytes_sent <- t.bytes_sent +. float_of_int t.cfg.pkt_size;
    Netsim.Node.inject t.src pkt;
    let gap = 1. /. Float.max t.cfg.min_rate_pps t.x in
    t.send_timer <-
      Some (Engine.Sim.after_cancellable t.sim gap (fun () -> send_next t))
  end

let handle_fb t (pkt : Netsim.Packet.t) =
  if t.running then
    match pkt.Netsim.Packet.payload with
    | Netsim.Packet.Tear_fb { rate_pps; timestamp_echo; delay_echo } ->
      let now = Engine.Sim.now t.sim in
      let sample = now -. timestamp_echo -. delay_echo in
      if sample > 0. then
        if t.rtt_valid then t.srtt <- (0.9 *. t.srtt) +. (0.1 *. sample)
        else begin
          t.srtt <- sample;
          t.rtt_valid <- true
        end;
      t.x <- Float.max t.cfg.min_rate_pps rate_pps
    | Netsim.Packet.Plain | Netsim.Packet.Ack _ | Netsim.Packet.Rap_ack _
    | Netsim.Packet.Tfrc_data _ | Netsim.Packet.Tfrc_fb _ ->
      ()

let create ~sim ~src ~dst ~flow cfg =
  if cfg.smoothing_rounds < 1 then invalid_arg "Tear.create: smoothing_rounds";
  let receiver =
    {
      r_sim = sim;
      r_node = dst;
      r_flow = flow;
      r_peer = Netsim.Node.id src;
      r_cfg = cfg;
      cwnd = 2.;
      ssthresh = 1e9;
      next_expected = 0;
      round_arrivals = 0;
      round_start_cwnd = 2.;
      rounds = [];
      loss_round_guard = 0.;
      rtt_from_sender = 0.;
      last_ts = 0.;
      last_ts_arrival = 0.;
      last_data_time = 0.;
    }
  in
  Netsim.Node.attach dst ~flow (receiver_handle receiver);
  let t =
    {
      sim;
      cfg;
      src;
      dst;
      flow_id = flow;
      receiver;
      running = false;
      x = cfg.initial_rate_pps;
      srtt = 0.;
      rtt_valid = false;
      seq = 0;
      send_timer = None;
      pkts_sent = 0;
      bytes_sent = 0.;
      bytes_delivered = 0.;
    }
  in
  Netsim.Node.attach src ~flow (handle_fb t);
  (* Track delivery at the receiver for the Flow counters. *)
  let inner = receiver_handle receiver in
  Netsim.Node.attach dst ~flow (fun pkt ->
      (match pkt.Netsim.Packet.payload with
      | Netsim.Packet.Tfrc_data _ ->
        t.bytes_delivered <-
          t.bytes_delivered +. float_of_int pkt.Netsim.Packet.size
      | _ -> ());
      inner pkt);
  t

let start t =
  if not t.running then begin
    t.running <- true;
    send_next t;
    watchdog t.receiver
  end

let stop t =
  t.running <- false;
  match t.send_timer with
  | Some h ->
    Engine.Sim.cancel h;
    t.send_timer <- None
  | None -> ()

let flow t =
  {
    Flow.id = t.flow_id;
    protocol = Printf.sprintf "tear(%d)" t.cfg.smoothing_rounds;
    start = (fun () -> start t);
    stop = (fun () -> stop t);
    pkts_sent = (fun () -> t.pkts_sent);
    bytes_sent = (fun () -> t.bytes_sent);
    bytes_delivered = (fun () -> t.bytes_delivered);
    current_rate = (fun () -> t.x *. float_of_int t.cfg.pkt_size);
    srtt = (fun () -> sender_rtt t);
    stats =
      Flow.basic_stats
        ~pkts_sent:(fun () -> t.pkts_sent)
        ~bytes_sent:(fun () -> t.bytes_sent)
        ~bytes_delivered:(fun () -> t.bytes_delivered)
        ~srtt:(fun () -> sender_rtt t);
    ff = None;
  }

let rate_pps t = t.x
let emulated_cwnd t = t.receiver.cwnd
let srtt t = sender_rtt t
