let log_src =
  Logs.Src.create "slowcc.window_cc" ~doc:"Windowed congestion control events"

module Log = (val Logs.src_log log_src)

type rule = {
  name : string;
  increase : float -> float;
  decrease : float -> float;
}

let aimd ~a ~b =
  if a <= 0. || b <= 0. || b >= 1. then invalid_arg "Window_cc.aimd";
  {
    name = Printf.sprintf "aimd(a=%g,b=%g)" a b;
    increase = (fun _ -> a);
    decrease = (fun w -> (1. -. b) *. w);
  }

let tcp_compatible_aimd ~b =
  let a = 4. *. ((2. *. b) -. (b *. b)) /. 3. in
  { (aimd ~a ~b) with name = Printf.sprintf "tcp(%g)" b }

let binomial ~k ~l ~a ~b =
  if a <= 0. || b <= 0. then invalid_arg "Window_cc.binomial";
  {
    name = Printf.sprintf "binomial(k=%g,l=%g,a=%g,b=%g)" k l a b;
    increase = (fun w -> a /. (w ** k));
    decrease = (fun w -> w -. (b *. (w ** l)));
  }

(* Deterministic steady-state sawtooth of [rule] at loss-event rate [p]:
   one loss event every 1/p packets.  A cycle starts at w0 = decrease(W),
   grows by increase(w) per RTT (the amount grow_window's per-ack
   increments sum to over one window of acks), and ends at peak W once
   the cycle has carried 1/p packets.  The peak is the fixed point of
   that map; iterate it.  For AIMD(1, 1/2) this reproduces the classic
   sqrt(3/(2p)) packets-per-RTT average (Analysis.Response_function's
   [pure_aimd]); for the binomial rules it is the paper's generalized
   sawtooth.  Returns (average packets per RTT, peak window), or [None]
   when [p] gives no finite cycle. *)
let sawtooth_model ~rule ~max_window ~p =
  if (not (Float.is_finite p)) || p <= 0. || p >= 1. then None
  else begin
    let target = 1. /. p in
    let cycle w_peak =
      let w = ref (Float.max 1. (rule.decrease w_peak)) in
      let pkts = ref 0. and rtts = ref 0 in
      while !pkts < target && !rtts < 1_000_000 do
        pkts := !pkts +. !w;
        incr rtts;
        w := Float.min max_window (!w +. Float.max 0. (rule.increase !w))
      done;
      (!w, !pkts, !rtts)
    in
    let w = ref 10. in
    (try
       for _ = 1 to 64 do
         let w', _, _ = cycle !w in
         if Float.abs (w' -. !w) <= 1e-9 *. Float.max 1. !w then begin
           w := w';
           raise Exit
         end;
         w := w'
       done
     with Exit -> ());
    let w_peak, pkts, rtts = cycle !w in
    if rtts = 0 then None else Some (pkts /. float_of_int rtts, w_peak)
  end

type variant = Reno | Tahoe

module IntSet = Set.Make (Int)

type config = {
  rule : rule;
  variant : variant;
  sack : bool;
  pkt_size : int;
  initial_window : float;
  initial_ssthresh : float option;
  max_window : float;
  min_rto : float;
  max_rto : float;
  total_pkts : int option;
  react_to_ecn : bool;
  delayed_acks : bool;
  on_complete : (unit -> unit) option;
}

let default_config rule =
  {
    rule;
    variant = Reno;
    sack = false;
    pkt_size = 1000;
    initial_window = 2.;
    initial_ssthresh = None;
    max_window = 10000.;
    min_rto = 0.2;
    max_rto = 64.;
    total_pkts = None;
    react_to_ecn = true;
    delayed_acks = false;
    on_complete = None;
  }

type t = {
  sim : Engine.Sim.t;
  cfg : config;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  flow_id : int;
  sink : Sink.t;
  (* --- sender state --- *)
  mutable running : bool;
  mutable finished : bool;
  mutable snd_una : int;  (* lowest unacked sequence number *)
  mutable snd_nxt : int;  (* next new sequence number to send *)
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable high_water : int;  (* highest sequence ever transmitted + 1 *)
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;  (* fast-recovery exit point *)
  mutable first_partial_done : bool;  (* NewReno "Impatient" timer rule *)
  mutable no_fastrtx_until : float;  (* quiet period after a timeout *)
  mutable ecn_guard : int;  (* no new ECN reduction until acked past this *)
  (* --- SACK scoreboard (cfg.sack only) --- *)
  mutable sacked : IntSet.t;  (* selectively acked seqs above snd_una *)
  mutable hole_rtx : IntSet.t;  (* holes retransmitted this recovery *)
  (* --- RTT estimation --- *)
  mutable srtt : float;
  mutable rttvar : float;
  mutable rtt_valid : bool;
  mutable backoff : float;
  mutable rto_timer : Engine.Sim.timer;
      (* one reusable timer for the flow's lifetime: re-arming per ack
         allocates nothing, unlike an [after_cancellable] handle *)
  (* BSD-style RTT timing: one probe segment at a time, invalidated by any
     retransmission episode (Karn's algorithm).  Timing via cumulative
     acks of arbitrary segments would charge hole-recovery time to the
     path and blow up the estimate under heavy loss. *)
  mutable rtt_probe : (int * float) option;  (* seq, send time *)
  (* --- counters --- *)
  mutable pkts_sent : int;
  mutable bytes_sent : int;
  mutable n_timeouts : int;
  mutable n_fast_rtx : int;
  mutable n_rtx_pkts : int;
  (* --- fluid fast-forward --- *)
  mutable ff_suspended : bool;
  mutable ff_delivered : int;  (* fluid pkts credited since suspend *)
}

(* Reno-style inflation: each dupack during fast recovery signals a packet
   that left the network, allowing one transmission.  Outside recovery
   dupacks never widen the window (duplicate data after a go-back-N
   retransmission would otherwise snowball). *)
let effective_window t =
  if t.in_recovery && not t.cfg.sack then t.cwnd +. float_of_int t.dupacks
  else t.cwnd
let inflight t = t.snd_nxt - t.snd_una

(* RFC 3517-style pipe estimate: selectively acked segments are no longer
   in the network. *)
let pipe t =
  if t.cfg.sack then inflight t - IntSet.cardinal t.sacked else inflight t

let current_rto t =
  let base = if t.rtt_valid then t.srtt +. (4. *. t.rttvar) else 1.0 in
  (* Floor at the configured minimum *before* the exponential backoff
     multiplies in: a low-RTT path (srtt + 4*rttvar << min_rto) must not
     collapse the timer below [min_rto] and fire spurious retransmits. *)
  let floored = Float.max t.cfg.min_rto base in
  Float.min t.cfg.max_rto (floored *. t.backoff)

let transmit t ~seq =
  let pkt =
    Netsim.Packet.make ~size:t.cfg.pkt_size ~seq ~flow:t.flow_id
      ~src:(Netsim.Node.id t.src) ~dst:(Netsim.Node.id t.dst)
      ~sent_at:(Engine.Sim.now t.sim) ()
  in
  t.pkts_sent <- t.pkts_sent + 1;
  t.bytes_sent <- t.bytes_sent + t.cfg.pkt_size;
  if seq < t.high_water then begin
    (* Retransmission: never time it, and invalidate any probe it could
       overlap (Karn). *)
    t.n_rtx_pkts <- t.n_rtx_pkts + 1;
    (match t.rtt_probe with
    | Some (probe_seq, _) when probe_seq >= seq -> t.rtt_probe <- None
    | Some _ | None -> ())
  end
  else begin
    if t.rtt_probe = None then
      t.rtt_probe <- Some (seq, Engine.Sim.now t.sim);
    t.high_water <- seq + 1
  end;
  Netsim.Node.inject t.src pkt

(* Merge the ack's SACK blocks into the scoreboard, pruning below the
   cumulative point. *)
let merge_sack t blocks =
  List.iter
    (fun (lo, hi) ->
      for seq = lo to hi - 1 do
        if seq >= t.snd_una && seq < t.snd_nxt then
          t.sacked <- IntSet.add seq t.sacked
      done)
    blocks;
  t.sacked <- IntSet.filter (fun seq -> seq >= t.snd_una) t.sacked

(* A hole is deemed lost when at least three selectively acked segments
   lie above it (the SACK analogue of three dupacks). *)
let next_lost_hole t =
  if IntSet.is_empty t.sacked then None
  else begin
    let above seq =
      IntSet.cardinal (IntSet.filter (fun x -> x > seq) t.sacked)
    in
    let rec scan seq =
      if seq >= t.snd_nxt then None
      else if IntSet.mem seq t.sacked then scan (seq + 1)
      else if IntSet.mem seq t.hole_rtx then scan (seq + 1)
      else if above seq >= 3 then Some seq
      else None
    in
    scan t.snd_una
  end

let cancel_rto t = Engine.Sim.disarm t.rto_timer

let restart_rto t =
  if t.running && t.snd_una < t.snd_nxt then
    Engine.Sim.arm_after t.rto_timer (current_rto t)
  else cancel_rto t

let on_rto t =
  if t.running && t.snd_una < t.snd_nxt then begin
    t.n_timeouts <- t.n_timeouts + 1;
    Log.debug (fun m ->
        m "t=%.3f flow=%d rto: cwnd=%.1f backoff=%.0fx snd_una=%d"
          (Engine.Sim.now t.sim) t.flow_id t.cwnd t.backoff t.snd_una);
    t.ssthresh <- Float.max 2. (t.cfg.rule.decrease t.cwnd);
    t.cwnd <- 1.;
    t.backoff <- Float.min 64. (t.backoff *. 2.);
    t.in_recovery <- false;
    t.dupacks <- 0;
    (* Go-back-N: resume from the first hole; everything in flight is
       presumed lost (how ns-2's one-bit-ack TCPs behave on timeout). *)
    t.snd_nxt <- t.snd_una;
    (* Dupacks caused by pre-timeout duplicates must not trigger fast
       retransmit until the whole old window is acked (RFC 6582 s4). *)
    t.recover <- t.high_water;
    t.sacked <- IntSet.empty;
    t.hole_rtx <- IntSet.empty;
    t.no_fastrtx_until <-
      Engine.Sim.now t.sim +. (if t.rtt_valid then t.srtt else t.cfg.min_rto);
    transmit t ~seq:t.snd_nxt;
    t.snd_nxt <- t.snd_nxt + 1;
    restart_rto t
  end

let total_limit t =
  match t.cfg.total_pkts with Some n -> n | None -> max_int

let try_send t =
  if t.running then begin
    let limit = total_limit t in
    if t.cfg.sack then begin
      (* Fill the pipe: retransmit deemed-lost holes first, then new data. *)
      let progress = ref true in
      while !progress && float_of_int (pipe t) < Float.floor (effective_window t)
      do
        match next_lost_hole t with
        | Some hole ->
          transmit t ~seq:hole;
          t.hole_rtx <- IntSet.add hole t.hole_rtx
        | None ->
          if t.snd_nxt < limit then begin
            transmit t ~seq:t.snd_nxt;
            t.snd_nxt <- t.snd_nxt + 1
          end
          else progress := false
      done
    end
    else
      while
        t.snd_nxt < limit
        && float_of_int (inflight t) < Float.floor (effective_window t)
      do
        transmit t ~seq:t.snd_nxt;
        t.snd_nxt <- t.snd_nxt + 1
      done;
    if not (Engine.Sim.timer_armed t.rto_timer) then restart_rto t
  end

let sample_rtt t ~acked_up_to =
  match t.rtt_probe with
  | Some (seq, sent_at) when acked_up_to > seq ->
    t.rtt_probe <- None;
    let sample = Engine.Sim.now t.sim -. sent_at in
    if t.rtt_valid then begin
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. sample));
      t.srtt <- (0.875 *. t.srtt) +. (0.125 *. sample)
    end
    else begin
      t.srtt <- sample;
      t.rttvar <- sample /. 2.;
      t.rtt_valid <- true
    end
  | Some _ | None -> ()

let grow_window t ~acked_pkts =
  for _ = 1 to acked_pkts do
    if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
    else t.cwnd <- t.cwnd +. (t.cfg.rule.increase t.cwnd /. t.cwnd)
  done;
  t.cwnd <- Float.min t.cwnd t.cfg.max_window

let congestion_decrease t =
  t.ssthresh <- Float.max 2. (t.cfg.rule.decrease t.cwnd);
  t.cwnd <- t.ssthresh

let complete t =
  if not t.finished then begin
    t.finished <- true;
    t.running <- false;
    cancel_rto t;
    match t.cfg.on_complete with Some f -> f () | None -> ()
  end

let enter_fast_recovery t =
  t.n_fast_rtx <- t.n_fast_rtx + 1;
  Log.debug (fun m ->
      m "t=%.3f flow=%d fast retransmit: cwnd=%.1f snd_una=%d"
        (Engine.Sim.now t.sim) t.flow_id t.cwnd t.snd_una);
  (match t.cfg.variant with
  | Reno ->
    t.in_recovery <- true;
    t.recover <- t.snd_nxt;
    t.first_partial_done <- false;
    t.hole_rtx <- IntSet.empty;
    congestion_decrease t
  | Tahoe ->
    (* Tahoe: retransmit, then slow-start from scratch. *)
    t.ssthresh <- Float.max 2. (t.cfg.rule.decrease t.cwnd);
    t.cwnd <- 1.;
    t.recover <- t.high_water;
    t.snd_nxt <- t.snd_una;
    t.dupacks <- 0);
  transmit t ~seq:t.snd_una;
  (match t.cfg.variant with Tahoe -> t.snd_nxt <- t.snd_una + 1 | Reno -> ());
  restart_rto t

let on_new_ack t cum =
  let acked = cum - t.snd_una in
  sample_rtt t ~acked_up_to:cum;
  t.snd_una <- cum;
  t.backoff <- 1.;
  if t.cfg.sack then begin
    t.sacked <- IntSet.filter (fun seq -> seq >= cum) t.sacked;
    t.hole_rtx <- IntSet.filter (fun seq -> seq >= cum) t.hole_rtx
  end;
  if t.in_recovery then begin
    if cum > t.recover then begin
      (* Full ack: recovery over; window already set by the decrease. *)
      t.in_recovery <- false;
      t.dupacks <- 0;
      t.hole_rtx <- IntSet.empty;
      restart_rto t
    end
    else begin
      (* Partial ack: the next hole is lost too.  With SACK the scoreboard
         drives retransmissions from try_send; without it, retransmit the
         hole directly (NewReno).  Per NewReno's "Impatient" variant only
         the first partial ack restarts the retransmit timer, so recovery
         from a large loss burst ends in a timeout instead of dragging on
         for one hole per RTT. *)
      if not t.cfg.sack then transmit t ~seq:t.snd_una;
      t.dupacks <- max 0 (t.dupacks - acked);
      if not t.first_partial_done then begin
        t.first_partial_done <- true;
        restart_rto t
      end
    end
  end
  else begin
    t.dupacks <- 0;
    grow_window t ~acked_pkts:acked;
    restart_rto t
  end;
  if t.snd_una >= total_limit t then complete t else try_send t

let on_dup_ack t =
  if not t.finished then begin
    t.dupacks <- t.dupacks + 1;
    if
      (not t.in_recovery)
      && t.dupacks = 3
      && t.snd_una > t.recover
      && Engine.Sim.now t.sim >= t.no_fastrtx_until
    then enter_fast_recovery t
    else try_send t
  end

let on_ecn t =
  if t.cfg.react_to_ecn && t.snd_una > t.ecn_guard then begin
    congestion_decrease t;
    t.ecn_guard <- t.snd_nxt
  end

let handle_ack t (pkt : Netsim.Packet.t) =
  (if t.running then
     match pkt.Netsim.Packet.payload with
     | Netsim.Packet.Ack { cum_seq; sack } ->
       if t.cfg.sack then merge_sack t sack;
       if pkt.Netsim.Packet.ecn then on_ecn t;
       if cum_seq > t.snd_una then on_new_ack t cum_seq
       else if cum_seq = t.snd_una && t.snd_una < t.snd_nxt then on_dup_ack t
       (* cum_seq < snd_una: a stale ack from before a timeout's go-back-N
          rewind.  It carries no information about the current window and
          must not count towards the three-dupack threshold. *)
     | Netsim.Packet.Plain | Netsim.Packet.Rap_ack _ | Netsim.Packet.Tfrc_data _
     | Netsim.Packet.Tfrc_fb _ | Netsim.Packet.Tear_fb _ ->
       ());
  (* This sender is the sole consumer of its sink's pooled acks; nothing
     above retains the packet or its sack list past this point. *)
  Netsim.Packet.release pkt

let create ~sim ~src ~dst ~flow cfg =
  if cfg.initial_window < 1. then invalid_arg "Window_cc: initial_window";
  let sink =
    Sink.attach ~sack:cfg.sack ~delayed_acks:cfg.delayed_acks ~sim ~node:dst
      ~flow ~peer:(Netsim.Node.id src) ()
  in
  let t =
    {
      sim;
      cfg;
      src;
      dst;
      flow_id = flow;
      sink;
      running = false;
      finished = false;
      snd_una = 0;
      snd_nxt = 0;
      high_water = 0;
      cwnd = cfg.initial_window;
      ssthresh =
        (match cfg.initial_ssthresh with
        | Some s -> s
        | None -> cfg.max_window);
      dupacks = 0;
      in_recovery = false;
      recover = -1;
      first_partial_done = false;
      no_fastrtx_until = 0.;
      ecn_guard = 0;
      sacked = IntSet.empty;
      hole_rtx = IntSet.empty;
      srtt = 0.;
      rttvar = 0.;
      rtt_valid = false;
      backoff = 1.;
      rto_timer = Engine.Sim.timer sim ignore;
      rtt_probe = None;
      pkts_sent = 0;
      bytes_sent = 0;
      n_timeouts = 0;
      n_fast_rtx = 0;
      n_rtx_pkts = 0;
      ff_suspended = false;
      ff_delivered = 0;
    }
  in
  t.rto_timer <- Engine.Sim.timer sim (fun () -> on_rto t);
  Netsim.Node.attach src ~flow (handle_ack t);
  t

let start t =
  if not (t.running || t.finished) then begin
    t.running <- true;
    try_send t
  end

let stop t =
  t.running <- false;
  cancel_rto t

(* --- fluid fast-forward ------------------------------------------------ *)

(* Freeze the sender.  In-flight data drains to the sink (whose acks the
   non-running sender ignores and releases); the RTO must not fire while
   frozen.  Idempotent; a no-op unless the flow is actively running. *)
let ff_suspend t =
  if t.running && not t.ff_suspended then begin
    t.ff_suspended <- true;
    t.running <- false;
    cancel_rto t;
    t.rtt_probe <- None
  end

(* Fold fluid-model packets into the counters: [sent] offered to the
   path, [delivered] of them carried to the sink.  The seq frontier moves
   at resume, in one jump. *)
let ff_credit t ~sent ~delivered =
  if t.ff_suspended && sent >= 0 && delivered >= 0 then begin
    t.pkts_sent <- t.pkts_sent + sent;
    t.bytes_sent <- t.bytes_sent + (sent * t.cfg.pkt_size);
    t.ff_delivered <- t.ff_delivered + delivered;
    Sink.ff_credit t.sink ~pkts:delivered ~pkt_size:t.cfg.pkt_size
  end

(* Analytic steady-state rate at loss-event rate [p], packets/s: the
   rule's sawtooth average over the flow's measured RTT.  0 until an RTT
   sample exists (the controller will not credit such a flow). *)
let ff_rate_pps t ~p =
  if t.rtt_valid && t.srtt > 0. then
    match sawtooth_model ~rule:t.cfg.rule ~max_window:t.cfg.max_window ~p with
    | Some (pkts_per_rtt, _) -> pkts_per_rtt /. t.srtt
    | None -> t.cwnd /. t.srtt  (* p = 0: keep the current window's rate *)
  else 0.

(* Thaw: re-seed exact packet-level state consistent with steady state at
   loss-event rate [p] and resume transmission.  The re-seed contract:
   the window is set to the sawtooth average (ssthresh to the
   post-decrease peak, as if a loss event had just ended a cycle); the
   seq/ack frontier jumps past everything ever transmitted plus the
   credited fluid packets, and the sink's receive frontier jumps with it,
   so the resumed exchange is hole-free; all loss-recovery machinery is
   cleared.  The bottleneck queue refills within the first RTT of
   resumed packet traffic. *)
let ff_resume t ~p =
  if t.ff_suspended then begin
    t.ff_suspended <- false;
    (match sawtooth_model ~rule:t.cfg.rule ~max_window:t.cfg.max_window ~p with
    | Some (avg, peak) when t.rtt_valid ->
      t.cwnd <- Float.min t.cfg.max_window (Float.max 1. avg);
      t.ssthresh <- Float.max 2. (t.cfg.rule.decrease peak)
    | Some _ | None -> ());
    let s = max t.high_water (Sink.cumulative t.sink) + t.ff_delivered in
    t.ff_delivered <- 0;
    t.snd_una <- s;
    t.snd_nxt <- s;
    t.high_water <- s;
    t.dupacks <- 0;
    t.in_recovery <- false;
    t.recover <- s - 1;
    t.first_partial_done <- false;
    t.sacked <- IntSet.empty;
    t.hole_rtx <- IntSet.empty;
    t.rtt_probe <- None;
    t.backoff <- 1.;
    t.ecn_guard <- s - 1;
    Sink.fast_forward t.sink ~next_expected:s;
    if not t.finished then begin
      t.running <- true;
      try_send t
    end
  end

(* Short transfers have a completion point the fluid model would blow
   through; only long-lived flows publish fast-forward hooks. *)
let ff_ops t =
  if t.cfg.total_pkts <> None then None
  else
    Some
      {
        Flow.ff_pkt_size = t.cfg.pkt_size;
        ff_rate_pps = (fun ~p -> ff_rate_pps t ~p);
        ff_suspend = (fun () -> ff_suspend t);
        ff_credit = (fun ~sent ~delivered -> ff_credit t ~sent ~delivered);
        ff_resume = (fun ~p -> ff_resume t ~p);
      }

(* --- state export/import ----------------------------------------------- *)

(* The slice of sender state the fast-forward re-seed contract covers;
   shared with [Flow_soa] so hybrid tests can compare the two engines
   field by field. *)
type state = {
  s_cwnd : float;
  s_ssthresh : float;
  s_snd_una : int;
  s_snd_nxt : int;
  s_high_water : int;
  s_srtt : float;
  s_rttvar : float;
  s_rtt_valid : bool;
  s_backoff : float;
}

let export_state t =
  {
    s_cwnd = t.cwnd;
    s_ssthresh = t.ssthresh;
    s_snd_una = t.snd_una;
    s_snd_nxt = t.snd_nxt;
    s_high_water = t.high_water;
    s_srtt = t.srtt;
    s_rttvar = t.rttvar;
    s_rtt_valid = t.rtt_valid;
    s_backoff = t.backoff;
  }

(* Import clears the transient loss-recovery machinery: an imported
   state is by definition between recovery episodes. *)
let import_state t s =
  t.cwnd <- s.s_cwnd;
  t.ssthresh <- s.s_ssthresh;
  t.snd_una <- s.s_snd_una;
  t.snd_nxt <- s.s_snd_nxt;
  t.high_water <- s.s_high_water;
  t.srtt <- s.s_srtt;
  t.rttvar <- s.s_rttvar;
  t.rtt_valid <- s.s_rtt_valid;
  t.backoff <- s.s_backoff;
  t.dupacks <- 0;
  t.in_recovery <- false;
  t.recover <- s.s_snd_una - 1;
  t.first_partial_done <- false;
  t.sacked <- IntSet.empty;
  t.hole_rtx <- IntSet.empty;
  t.rtt_probe <- None

let flow t =
  {
    Flow.id = t.flow_id;
    protocol = t.cfg.rule.name;
    start = (fun () -> start t);
    stop = (fun () -> stop t);
    pkts_sent = (fun () -> t.pkts_sent);
    bytes_sent = (fun () -> float_of_int t.bytes_sent);
    bytes_delivered = (fun () -> Sink.bytes_received t.sink);
    current_rate =
      (fun () ->
        if t.rtt_valid && t.srtt > 0. then
          t.cwnd *. float_of_int t.cfg.pkt_size /. t.srtt
        else 0.);
    srtt = (fun () -> t.srtt);
    stats =
      (fun () ->
        {
          Flow.sent_pkts = t.pkts_sent;
          sent_bytes = float_of_int t.bytes_sent;
          delivered_bytes = Sink.bytes_received t.sink;
          rtx_pkts = t.n_rtx_pkts;
          timeouts = t.n_timeouts;
          fast_rtx = t.n_fast_rtx;
          stat_srtt = t.srtt;
        });
    ff = ff_ops t;
  }

let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let srtt t = t.srtt
let rto t = current_rto t
let timeouts t = t.n_timeouts
let fast_retransmits t = t.n_fast_rtx
let retransmitted_pkts t = t.n_rtx_pkts
let finished t = t.finished
