(** Data receiver that generates an immediate cumulative ACK per data
    packet (no delayed acks, matching the paper's TCP model).

    Out-of-order arrivals are buffered logically; the cumulative ack always
    names the lowest sequence number not yet received, so duplicate acks
    signal holes to the sender.  ECN marks on data are echoed on acks. *)

type t

(** [attach ~sim ~node ~flow ~peer] registers the sink on [node] for
    [flow]; acks are addressed to node id [peer].  [ack_size] defaults to
    40 bytes.

    [sack] (default true) controls whether each ack carries SACK blocks.
    Senders that don't implement SACK ignore the blocks, so disabling it
    is behavior-identical for them while skipping the per-ack fold over
    the out-of-order set — the single largest allocation on the TCP hot
    path.  [Window_cc] passes its own [cfg.sack] through.

    [delayed_acks] enables RFC-1122-style delayed acks: one ack per two
    in-order packets, or after [delack_timeout] (default 200 ms), with
    immediate acks for out-of-order data.  The paper's TCP is modeled
    *without* delayed acks (its AIMD has a = 1); this option exists to
    explore the variant. *)
val attach :
  ?ack_size:int ->
  ?sack:bool ->
  ?delayed_acks:bool ->
  ?delack_timeout:float ->
  sim:Engine.Sim.t ->
  node:Netsim.Node.t ->
  flow:int ->
  peer:int ->
  unit ->
  t

(** Total data bytes delivered (including duplicates). *)
val bytes_received : t -> float

(** Distinct in-order data packets delivered so far. *)
val pkts_received : t -> int

(** Lowest sequence number not yet received. *)
val cumulative : t -> int

(** {2 Fluid fast-forward hooks}

    Used by the hybrid fluid/packet engine while the peer sender is
    frozen; never called in pure packet mode. *)

(** Fold [pkts] fluid-model packets of [pkt_size] bytes into the delivery
    counters without generating acks. *)
val ff_credit : t -> pkts:int -> pkt_size:int -> unit

(** Jump the receive frontier forward to [next_expected] (dropping the
    out-of-order buffer) so the resumed sender's new frontier is
    in-order.  Raises [Invalid_argument] on a backwards jump. *)
val fast_forward : t -> next_expected:int -> unit
