(** BBR-style model-based sender.

    Keeps an explicit path model — bottleneck bandwidth as a windowed
    maximum of delivery-rate samples, propagation RTT as a windowed
    minimum of RTT samples — and paces packets through {!Pacing} at
    [pacing_gain * btl_bw], with an inflight cap of
    [cwnd_gain * btl_bw * rtprop].  Runs the classic
    STARTUP/DRAIN/PROBE_BW/PROBE_RTT machine: exponential startup until
    the delivery rate plateaus, a drain phase, an 8-phase
    probe/drain/cruise gain cycle, and periodic window collapses to
    re-measure the propagation delay.  The PROBE_BW cycle starts at a
    fixed phase so runs are deterministic.

    Loss does not alter the model (BBR v1): recovery is 3-dupack
    retransmit plus go-back-N on a [min_rto]-floored, backed-off timeout,
    with the bandwidth/RTT filters preserved across both. *)

type config = {
  pkt_size : int;
  initial_cwnd : float;
  initial_rtt : float;  (** seeds the pacing rate before any sample *)
  min_rto : float;
  max_rto : float;
  bw_filter_rounds : int;
  rtprop_window : float;
  probe_rtt_duration : float;
  startup_full_rounds : int;
}

val default_config : config
(** 1000-byte packets, initial cwnd 4, 100 ms initial-RTT guess, min_rto
    0.2 s, 10-round bandwidth filter, 10 s rtprop window, 200 ms
    PROBE_RTT, pipe full after 3 flat rounds. *)

type t

val create :
  sim:Engine.Sim.t ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  flow:int ->
  config ->
  t
(** Attach a sender at [src] (with its own pacer) and a cumulative-ack
    sink at [dst]. *)

val start : t -> unit
val stop : t -> unit

val flow : t -> Flow.t
(** Uniform flow handle ([ff = None]: rate-paced senders have no fluid
    fast-forward model yet). *)

(** {2 Introspection (tests, experiments)} *)

val mode : t -> string
(** Current mode name: ["STARTUP"], ["DRAIN"], ["PROBE_BW"] or
    ["PROBE_RTT"]. *)

val btl_bw_pps : t -> float
(** Bottleneck-bandwidth estimate in packets per second (0 until the
    first delivery-rate sample). *)

val rtprop : t -> float
(** Propagation-RTT estimate in seconds (0 until the first sample). *)

val rto : t -> float
(** Current retransmit timeout, including backoff; never below
    [cfg.min_rto]. *)

val pacing_rate : t -> float
(** Current pacing rate in packets per second. *)

val timeouts : t -> int
val fast_retransmits : t -> int
