(* BBR-style model-based sender.

   Instead of a loss- or delay-triggered window rule, the sender keeps an
   explicit model of the path — bottleneck bandwidth [btl_bw] (windowed
   maximum of per-ack delivery-rate samples, over ~[bw_filter_rounds]
   round trips) and propagation delay [rtprop] (windowed minimum of RTT
   samples over [rtprop_window] seconds) — and paces transmissions at
   [pacing_gain * btl_bw] through a [Pacing] token bucket, capped by an
   inflight ceiling of [cwnd_gain * btl_bw * rtprop].

   The classic four-mode machine:
   - STARTUP: pacing_gain 2/ln2 (~2.885) doubles the rate each RTT until
     the delivery rate stops growing (>= 25% over the best) for
     [startup_full_rounds] consecutive rounds — the pipe is full.
   - DRAIN: pacing_gain 1/2.885 until inflight <= BDP, bleeding off the
     queue startup built.
   - PROBE_BW: an 8-phase gain cycle (1.25, 0.75, then six 1.0 phases),
     one phase per rtprop, probing for more bandwidth and then draining
     what the probe queued.  The cycle starts at a fixed phase index so
     runs are deterministic.
   - PROBE_RTT: when the rtprop filter has gone [rtprop_window] without a
     new minimum, cap the window at [probe_rtt_cwnd] packets for
     [probe_rtt_duration] so the real propagation delay shows through.

   Delivery-rate samples follow the rate-estimation draft in miniature:
   each first transmission records (send time, packets delivered so far);
   when it is cumulatively acked the sample is
   (delivered_now - delivered_then) / (now - sent_then).  Retransmitted
   sequences never produce samples (Karn, as everywhere else in lib/cc).

   Loss does not change the model (BBR v1 behavior): recovery is a
   3-dupack retransmit and go-back-N on RTO — with the timer floored at
   [min_rto] and exponentially backed off — but btl_bw/rtprop survive. *)

module Log = (val Logs.src_log (Logs.Src.create "cc.bbr") : Logs.LOG)

type mode = Startup | Drain | Probe_bw | Probe_rtt

let mode_name = function
  | Startup -> "STARTUP"
  | Drain -> "DRAIN"
  | Probe_bw -> "PROBE_BW"
  | Probe_rtt -> "PROBE_RTT"

type config = {
  pkt_size : int;
  initial_cwnd : float; (* pkts; also seeds the pre-sample pacing rate *)
  initial_rtt : float; (* pacing seed before the first RTT sample *)
  min_rto : float;
  max_rto : float;
  bw_filter_rounds : int; (* max-filter horizon, round trips *)
  rtprop_window : float; (* min-filter horizon, seconds *)
  probe_rtt_duration : float;
  startup_full_rounds : int; (* flat rounds before the pipe is "full" *)
}

let default_config =
  {
    pkt_size = 1000;
    initial_cwnd = 4.;
    initial_rtt = 0.1;
    min_rto = 0.2;
    max_rto = 64.;
    bw_filter_rounds = 10;
    rtprop_window = 10.;
    probe_rtt_duration = 0.2;
    startup_full_rounds = 3;
  }

let startup_gain = 2.885 (* 2 / ln 2 *)
let drain_gain = 1. /. 2.885
let probe_bw_cwnd_gain = 2.0
let startup_cwnd_gain = 2.885
let probe_rtt_cwnd = 4.
let gain_cycle = [| 1.25; 0.75; 1.; 1.; 1.; 1.; 1.; 1. |]
let initial_cycle_index = 2 (* fixed, deterministic: start in cruise *)

type t = {
  sim : Engine.Sim.t;
  cfg : config;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  flow_id : int;
  sink : Sink.t;
  mutable pacer : Pacing.t;
  mutable running : bool;
  (* sequence space *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable high_water : int;
  (* model *)
  mutable delivered : int; (* cumulatively acked first transmissions *)
  send_info : (int, float * int) Hashtbl.t; (* seq -> sent_at, delivered *)
  mutable btl_bw : float; (* pkts/s, 0 until the first sample *)
  mutable bw_cur : float; (* current half-window max bucket *)
  mutable bw_prev : float;
  mutable bw_rotate_round : int;
  mutable rtprop : float; (* seconds, infinity until the first sample *)
  mutable rt_cur : float;
  mutable rt_prev : float;
  mutable rt_rotate_at : float;
  mutable rtprop_stamp : float; (* last time the min was refreshed *)
  (* rounds *)
  mutable round_count : int;
  mutable round_end : int; (* snd_nxt when the current round started *)
  (* mode machine *)
  mutable mode : mode;
  mutable pacing_gain : float;
  mutable cwnd_gain : float;
  mutable filled_pipe : bool;
  mutable full_bw : float;
  mutable full_bw_rounds : int;
  mutable cycle_index : int;
  mutable cycle_stamp : float;
  mutable probe_rtt_done_at : float; (* nan until inflight has drained *)
  (* loss recovery *)
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  mutable backoff : float;
  mutable rto_timer : Engine.Sim.timer;
  mutable srtt : float;
  mutable rttvar : float;
  mutable rtt_valid : bool;
  (* diagnostics *)
  mutable pkts_sent : int;
  mutable bytes_sent : int;
  mutable n_timeouts : int;
  mutable n_fast_rtx : int;
  mutable n_rtx_pkts : int;
}

let inflight t = t.snd_nxt - t.snd_una

let current_rto t =
  let base = if t.rtt_valid then t.srtt +. (4. *. t.rttvar) else 1.0 in
  Float.min t.cfg.max_rto (Float.max t.cfg.min_rto base *. t.backoff)

let bdp_pkts t =
  if t.btl_bw > 0. && Float.is_finite t.rtprop then t.btl_bw *. t.rtprop
  else t.cfg.initial_cwnd

let cwnd_pkts t =
  if t.mode = Probe_rtt then probe_rtt_cwnd
  else Float.max probe_rtt_cwnd (t.cwnd_gain *. bdp_pkts t)

let pacing_rate_pps t =
  if t.btl_bw > 0. then t.pacing_gain *. t.btl_bw
  else
    (* No sample yet: pace the initial window out over the RTT guess. *)
    t.pacing_gain *. t.cfg.initial_cwnd /. t.cfg.initial_rtt

let transmit t ~seq =
  let now = Engine.Sim.now t.sim in
  let pkt =
    Netsim.Packet.make ~size:t.cfg.pkt_size ~seq ~flow:t.flow_id
      ~src:(Netsim.Node.id t.src) ~dst:(Netsim.Node.id t.dst) ~sent_at:now ()
  in
  t.pkts_sent <- t.pkts_sent + 1;
  t.bytes_sent <- t.bytes_sent + t.cfg.pkt_size;
  if seq < t.high_water then begin
    t.n_rtx_pkts <- t.n_rtx_pkts + 1;
    Hashtbl.remove t.send_info seq (* Karn *)
  end
  else begin
    Hashtbl.replace t.send_info seq (now, t.delivered);
    t.high_water <- seq + 1
  end;
  Netsim.Node.inject t.src pkt

let cancel_rto t = Engine.Sim.disarm t.rto_timer

let restart_rto t =
  if t.running && t.snd_una < t.snd_nxt then
    Engine.Sim.arm_after t.rto_timer (current_rto t)
  else cancel_rto t

(* The pacer's emit callback: one new packet if the inflight cap allows. *)
let emit t () =
  if
    t.running
    && (not t.in_recovery)
    && float_of_int (inflight t) < Float.floor (cwnd_pkts t)
  then begin
    transmit t ~seq:t.snd_nxt;
    t.snd_nxt <- t.snd_nxt + 1;
    if not (Engine.Sim.timer_armed t.rto_timer) then restart_rto t;
    true
  end
  else false

(* --- model filters ---------------------------------------------------- *)

let btl_bw_update t =
  let m = Float.max t.bw_cur t.bw_prev in
  t.btl_bw <- (if Float.is_finite m then m else 0.)

let bw_sample t sample =
  if sample > t.bw_cur then t.bw_cur <- sample;
  if t.round_count - t.bw_rotate_round >= t.cfg.bw_filter_rounds / 2 then begin
    t.bw_prev <- t.bw_cur;
    t.bw_cur <- sample;
    t.bw_rotate_round <- t.round_count
  end;
  btl_bw_update t

let rtprop_update t =
  let m = Float.min t.rt_cur t.rt_prev in
  t.rtprop <- m

let rtt_sample t sample =
  let now = Engine.Sim.now t.sim in
  (* Strictly-lower samples refresh the staleness stamp.  Ties do not:
     the simulator is noiseless, so every PROBE_BW drain phase touches
     the propagation floor *exactly* and [<=] would postpone PROBE_RTT
     forever — where real BBR, with microsecond ties being rare, dips to
     re-measure about every [rtprop_window] just as this does. *)
  if sample < t.rtprop || not (Float.is_finite t.rtprop) then
    t.rtprop_stamp <- now;
  if sample < t.rt_cur then t.rt_cur <- sample;
  if now >= t.rt_rotate_at then begin
    t.rt_prev <- t.rt_cur;
    t.rt_cur <- sample;
    t.rt_rotate_at <- now +. (t.cfg.rtprop_window /. 2.)
  end;
  rtprop_update t;
  (* srtt/rttvar only feed the RTO. *)
  if t.rtt_valid then begin
    let err = sample -. t.srtt in
    t.srtt <- t.srtt +. (0.125 *. err);
    t.rttvar <- t.rttvar +. (0.25 *. (Float.abs err -. t.rttvar))
  end
  else begin
    t.srtt <- sample;
    t.rttvar <- sample /. 2.;
    t.rtt_valid <- true
  end

(* --- mode machine ------------------------------------------------------ *)

let set_gains t =
  match t.mode with
  | Startup ->
    t.pacing_gain <- startup_gain;
    t.cwnd_gain <- startup_cwnd_gain
  | Drain ->
    t.pacing_gain <- drain_gain;
    t.cwnd_gain <- startup_cwnd_gain
  | Probe_bw ->
    t.pacing_gain <- gain_cycle.(t.cycle_index);
    t.cwnd_gain <- probe_bw_cwnd_gain
  | Probe_rtt ->
    t.pacing_gain <- 1.;
    t.cwnd_gain <- 1.

let enter t mode =
  if t.mode <> mode then
    Log.debug (fun m ->
        m "t=%.3f flow=%d bbr: %s -> %s (btl_bw=%.0f pps rtprop=%.4f)"
          (Engine.Sim.now t.sim) t.flow_id (mode_name t.mode) (mode_name mode)
          t.btl_bw t.rtprop);
  t.mode <- mode;
  (match mode with
  | Probe_bw ->
    t.cycle_index <- initial_cycle_index;
    t.cycle_stamp <- Engine.Sim.now t.sim
  | Probe_rtt -> t.probe_rtt_done_at <- Float.nan
  | Startup | Drain -> ());
  set_gains t

(* Per-round startup check: has the delivery rate plateaued? *)
let check_full_pipe t =
  if (not t.filled_pipe) && t.btl_bw > 0. then begin
    if t.btl_bw >= t.full_bw *. 1.25 then begin
      t.full_bw <- t.btl_bw;
      t.full_bw_rounds <- 0
    end
    else begin
      t.full_bw_rounds <- t.full_bw_rounds + 1;
      if t.full_bw_rounds >= t.cfg.startup_full_rounds then
        t.filled_pipe <- true
    end
  end

let update_mode t =
  let now = Engine.Sim.now t.sim in
  (* PROBE_RTT preempts every other mode when the min filter goes stale. *)
  if
    t.mode <> Probe_rtt
    && Float.is_finite t.rtprop
    && now -. t.rtprop_stamp > t.cfg.rtprop_window
  then enter t Probe_rtt;
  (match t.mode with
  | Startup -> if t.filled_pipe then enter t Drain
  | Drain ->
    if float_of_int (inflight t) <= bdp_pkts t then enter t Probe_bw
  | Probe_bw ->
    if
      Float.is_finite t.rtprop
      && now -. t.cycle_stamp > Float.max t.rtprop 0.001
    then begin
      t.cycle_index <- (t.cycle_index + 1) mod Array.length gain_cycle;
      t.cycle_stamp <- now;
      set_gains t
    end
  | Probe_rtt ->
    if Float.is_nan t.probe_rtt_done_at then begin
      if float_of_int (inflight t) <= probe_rtt_cwnd then
        t.probe_rtt_done_at <-
          now +. Float.max t.cfg.probe_rtt_duration t.rtprop
    end
    else if now >= t.probe_rtt_done_at then begin
      t.rtprop_stamp <- now;
      enter t (if t.filled_pipe then Probe_bw else Startup)
    end);
  Pacing.set_rate_pps t.pacer (pacing_rate_pps t)

(* --- ack path ----------------------------------------------------------- *)

let on_new_ack t cum =
  let now = Engine.Sim.now t.sim in
  let old_una = t.snd_una in
  t.snd_una <- cum;
  t.backoff <- 1.;
  t.delivered <- t.delivered + (cum - old_una);
  (* Sample bandwidth/RTT from the newest acked first transmission; drop
     the bookkeeping for the rest. *)
  (match Hashtbl.find_opt t.send_info (cum - 1) with
  | Some (sent_at, delivered_then) when now > sent_at ->
    rtt_sample t (now -. sent_at);
    bw_sample t (float_of_int (t.delivered - delivered_then) /. (now -. sent_at))
  | Some _ | None -> ());
  for seq = old_una to cum - 1 do
    Hashtbl.remove t.send_info seq
  done;
  (* Round accounting. *)
  if cum > t.round_end then begin
    t.round_count <- t.round_count + 1;
    t.round_end <- t.snd_nxt;
    check_full_pipe t
  end;
  if t.in_recovery then begin
    if cum > t.recover then begin
      t.in_recovery <- false;
      t.dupacks <- 0
    end
    else transmit t ~seq:t.snd_una (* next hole is lost too *)
  end
  else t.dupacks <- 0;
  update_mode t;
  restart_rto t;
  Pacing.kick t.pacer

let on_dup_ack t =
  t.dupacks <- t.dupacks + 1;
  if (not t.in_recovery) && t.dupacks = 3 && t.snd_una > t.recover then begin
    t.n_fast_rtx <- t.n_fast_rtx + 1;
    t.in_recovery <- true;
    t.recover <- t.snd_nxt;
    transmit t ~seq:t.snd_una;
    restart_rto t
  end

let on_rto t =
  if t.running && t.snd_una < t.snd_nxt then begin
    t.n_timeouts <- t.n_timeouts + 1;
    t.backoff <- Float.min 64. (t.backoff *. 2.);
    t.in_recovery <- false;
    t.dupacks <- 0;
    t.snd_nxt <- t.snd_una;
    t.recover <- t.high_water;
    t.round_end <- t.snd_nxt;
    transmit t ~seq:t.snd_nxt;
    t.snd_nxt <- t.snd_nxt + 1;
    restart_rto t;
    Pacing.kick t.pacer
  end

let handle_ack t (pkt : Netsim.Packet.t) =
  (if t.running then
     match pkt.Netsim.Packet.payload with
     | Netsim.Packet.Ack { cum_seq; sack = _ } ->
       if cum_seq > t.snd_una then on_new_ack t cum_seq
       else if cum_seq = t.snd_una && t.snd_una < t.snd_nxt then on_dup_ack t
     | Netsim.Packet.Plain | Netsim.Packet.Rap_ack _ | Netsim.Packet.Tfrc_data _
     | Netsim.Packet.Tfrc_fb _ | Netsim.Packet.Tear_fb _ ->
       ());
  Netsim.Packet.release pkt

let create ~sim ~src ~dst ~flow cfg =
  if cfg.initial_cwnd < 1. then invalid_arg "Bbr: initial_cwnd";
  if cfg.initial_rtt <= 0. then invalid_arg "Bbr: initial_rtt";
  let sink =
    Sink.attach ~sim ~node:dst ~flow ~peer:(Netsim.Node.id src) ()
  in
  let t =
    {
      sim;
      cfg;
      src;
      dst;
      flow_id = flow;
      sink;
      pacer = Pacing.create ~sim ~emit:(fun () -> false) ();
      running = false;
      snd_una = 0;
      snd_nxt = 0;
      high_water = 0;
      delivered = 0;
      send_info = Hashtbl.create 64;
      btl_bw = 0.;
      bw_cur = 0.;
      bw_prev = 0.;
      bw_rotate_round = 0;
      rtprop = infinity;
      rt_cur = infinity;
      rt_prev = infinity;
      rt_rotate_at = Engine.Sim.now sim +. (cfg.rtprop_window /. 2.);
      rtprop_stamp = Engine.Sim.now sim;
      round_count = 0;
      round_end = 0;
      mode = Startup;
      pacing_gain = startup_gain;
      cwnd_gain = startup_cwnd_gain;
      filled_pipe = false;
      full_bw = 0.;
      full_bw_rounds = 0;
      cycle_index = initial_cycle_index;
      cycle_stamp = 0.;
      dupacks = 0;
      in_recovery = false;
      recover = -1;
      backoff = 1.;
      rto_timer = Engine.Sim.timer sim ignore;
      srtt = 0.;
      rttvar = 0.;
      rtt_valid = false;
      probe_rtt_done_at = Float.nan;
      pkts_sent = 0;
      bytes_sent = 0;
      n_timeouts = 0;
      n_fast_rtx = 0;
      n_rtx_pkts = 0;
    }
  in
  t.pacer <- Pacing.create ~sim ~emit:(fun () -> emit t ()) ();
  t.rto_timer <- Engine.Sim.timer sim (fun () -> on_rto t);
  Netsim.Node.attach src ~flow (handle_ack t);
  t

let start t =
  if not t.running then begin
    t.running <- true;
    Pacing.set_rate_pps t.pacer (pacing_rate_pps t);
    Pacing.start t.pacer
  end

let stop t =
  t.running <- false;
  Pacing.stop t.pacer;
  cancel_rto t

let flow t =
  {
    Flow.id = t.flow_id;
    protocol = "BBR";
    start = (fun () -> start t);
    stop = (fun () -> stop t);
    pkts_sent = (fun () -> t.pkts_sent);
    bytes_sent = (fun () -> float_of_int t.bytes_sent);
    bytes_delivered = (fun () -> Sink.bytes_received t.sink);
    current_rate =
      (fun () ->
        if t.btl_bw > 0. then t.btl_bw *. float_of_int t.cfg.pkt_size
        else 0.);
    srtt = (fun () -> t.srtt);
    stats =
      (fun () ->
        {
          Flow.sent_pkts = t.pkts_sent;
          sent_bytes = float_of_int t.bytes_sent;
          delivered_bytes = Sink.bytes_received t.sink;
          rtx_pkts = t.n_rtx_pkts;
          timeouts = t.n_timeouts;
          fast_rtx = t.n_fast_rtx;
          stat_srtt = t.srtt;
        });
    ff = None;
  }

let mode t = mode_name t.mode
let btl_bw_pps t = t.btl_bw
let rtprop t = if Float.is_finite t.rtprop then t.rtprop else 0.
let rto t = current_rto t
let pacing_rate t = pacing_rate_pps t
let timeouts t = t.n_timeouts
let fast_retransmits t = t.n_fast_rtx
