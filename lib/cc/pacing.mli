(** Token-bucket packet pacer on a single reusable simulator timer.

    A pacer spaces packet emissions [1 /. rate] apart.  The owning
    transport supplies an [emit] callback: transmit one packet and return
    [true], or return [false] when nothing is sendable (window full, no
    data).  After a [false] the pacer goes idle — no armed timer, no
    events — until the transport calls {!kick} (typically from its ack
    handler).

    Emissions always run as their own scheduler event ({!kick} never
    invokes [emit] on the caller's stack), so send ordering is
    deterministic and byte-identical across heap and calendar
    schedulers. *)

type t

val create :
  sim:Engine.Sim.t -> ?burst:float -> emit:(unit -> bool) -> unit -> t
(** [create ~sim ~emit ()] makes a stopped pacer with rate 0.  [burst]
    (default [1.], must be [>= 1.]) caps how many whole-packet tokens can
    accumulate while the transport has nothing to send. *)

val start : t -> unit
(** Begin pacing (idempotent).  Tokens do not accrue while stopped. *)

val stop : t -> unit
(** Stop pacing and disarm the timer (idempotent). *)

val kick : t -> unit
(** Wake an idle running pacer: if tokens are available, [emit] runs as a
    fresh event at the current simulated time; otherwise the timer is
    armed for the next token.  No-op when stopped, rate is 0, or a
    wake-up is already pending. *)

val set_rate_pps : t -> float -> unit
(** Change the pacing rate (packets per simulated second).  Tokens
    accrued under the old rate are credited first; a pending wake-up is
    re-derived from the new rate.  Rate [0.] pauses emission until a
    positive rate is set and {!kick} is called.  Raises [Invalid_argument]
    on negative or non-finite rates. *)

val rate_pps : t -> float
(** Current rate in packets per simulated second. *)

val tokens : t -> float
(** Tokens available right now (after refill); for tests. *)

val sends : t -> int
(** Total successful emissions ([emit] returned [true]). *)

val idle : t -> bool
(** [true] when no wake-up is armed (stopped, rate 0, or waiting for
    {!kick}). *)
