module IntSet = Set.Make (Int)

type t = {
  sim : Engine.Sim.t;
  node : Netsim.Node.t;
  flow : int;
  peer : int;
  ack_size : int;
  sack : bool;  (* compute SACK blocks on each ack (senders without SACK
                   ignore them, so skipping the per-ack fold over the
                   out-of-order set is behavior-identical and removes the
                   sink from the allocation profile entirely) *)
  delayed_acks : bool;
  delack_timeout : float;
  mutable next_expected : int;
  mutable out_of_order : IntSet.t;
  mutable bytes : int;
  mutable pkts : int;
  mutable unacked_pkts : int;  (* in-order packets not yet acked (delack) *)
  mutable delack_timer : Engine.Sim.handle option;
  mutable last_ecn : bool;
}

(* Contiguous runs of the out-of-order set as SACK blocks [lo, hi),
   highest (most useful) first, at most three. *)
let sack_blocks t =
  let runs, current =
    IntSet.fold
      (fun seq (runs, current) ->
        match current with
        | Some (lo, hi) when seq = hi -> (runs, Some (lo, hi + 1))
        | Some run -> (run :: runs, Some (seq, seq + 1))
        | None -> (runs, Some (seq, seq + 1)))
      t.out_of_order ([], None)
  in
  let runs = match current with Some run -> run :: runs | None -> runs in
  List.filteri (fun i _ -> i < 3) runs

let send_ack t =
  (match t.delack_timer with
  | Some h ->
    Engine.Sim.cancel h;
    t.delack_timer <- None
  | None -> ());
  t.unacked_pkts <- 0;
  let sack = if t.sack then sack_blocks t else [] in
  let ack =
    Netsim.Packet.alloc_ack ~size:t.ack_size ~flow:t.flow
      ~src:(Netsim.Node.id t.node) ~dst:t.peer
      ~sent_at:(Engine.Sim.now t.sim)
      ~cum_seq:t.next_expected ~sack
  in
  ack.Netsim.Packet.ecn <- t.last_ecn;
  t.last_ecn <- false;
  Netsim.Node.inject t.node ack

let arm_delack t =
  if t.delack_timer = None then
    t.delack_timer <-
      Some
        (Engine.Sim.after_cancellable t.sim t.delack_timeout (fun () ->
             t.delack_timer <- None;
             if t.unacked_pkts > 0 then send_ack t))

let handle t (pkt : Netsim.Packet.t) =
  match pkt.Netsim.Packet.payload with
  | Netsim.Packet.Plain | Netsim.Packet.Tfrc_data _ ->
    t.bytes <- t.bytes + pkt.Netsim.Packet.size;
    t.pkts <- t.pkts + 1;
    t.last_ecn <- t.last_ecn || pkt.Netsim.Packet.ecn;
    let seq = pkt.Netsim.Packet.seq in
    let in_order = seq = t.next_expected in
    if in_order then begin
      t.next_expected <- seq + 1;
      while IntSet.mem t.next_expected t.out_of_order do
        t.out_of_order <- IntSet.remove t.next_expected t.out_of_order;
        t.next_expected <- t.next_expected + 1
      done
    end
    else if seq > t.next_expected then
      t.out_of_order <- IntSet.add seq t.out_of_order;
    if t.delayed_acks && in_order && IntSet.is_empty t.out_of_order then begin
      (* Delay the ack unless this is the second unacked packet. *)
      t.unacked_pkts <- t.unacked_pkts + 1;
      if t.unacked_pkts >= 2 then send_ack t else arm_delack t
    end
    else
      (* Immediate ack: no delack, out-of-order data, or a hole just
         filled — the sender needs prompt feedback. *)
      send_ack t
  | Netsim.Packet.Ack _ | Netsim.Packet.Rap_ack _ | Netsim.Packet.Tfrc_fb _
  | Netsim.Packet.Tear_fb _ ->
    ()

let attach ?(ack_size = 40) ?(sack = true) ?(delayed_acks = false)
    ?(delack_timeout = 0.2) ~sim ~node ~flow ~peer () =
  let t =
    {
      sim;
      node;
      flow;
      peer;
      ack_size;
      sack;
      delayed_acks;
      delack_timeout;
      next_expected = 0;
      out_of_order = IntSet.empty;
      bytes = 0;
      pkts = 0;
      unacked_pkts = 0;
      delack_timer = None;
      last_ecn = false;
    }
  in
  Netsim.Node.attach node ~flow (handle t);
  t

let bytes_received t = float_of_int t.bytes
let pkts_received t = t.pkts
let cumulative t = t.next_expected

(* Fluid fast-forward support: [ff_credit] folds packets carried by the
   fluid model into the delivery counters (no acks are generated — the
   frozen sender would ignore them); [fast_forward] jumps the receive
   frontier to [next_expected] on thaw so the resumed sender's first
   packet at its new frontier looks in-order.  The out-of-order buffer is
   dropped: anything buffered predates the jump. *)
let ff_credit t ~pkts ~pkt_size =
  if pkts < 0 then invalid_arg "Sink.ff_credit: negative credit";
  t.bytes <- t.bytes + (pkts * pkt_size);
  t.pkts <- t.pkts + pkts

let fast_forward t ~next_expected =
  if next_expected < t.next_expected then
    invalid_arg "Sink.fast_forward: frontier moves forward only";
  t.next_expected <- next_expected;
  t.out_of_order <- IntSet.empty;
  t.unacked_pkts <- 0
