type stats = {
  sent_pkts : int;
  sent_bytes : float;
  delivered_bytes : float;
  rtx_pkts : int;
  timeouts : int;
  fast_rtx : int;
  stat_srtt : float;
}

(* Hooks a fluid fast-forward controller drives while packet-level
   simulation is frozen.  Transports that cannot be advanced analytically
   publish [None] and keep running packet-by-packet. *)
type ff_ops = {
  ff_pkt_size : int;
  ff_rate_pps : p:float -> float;
      (* analytic steady-state sending rate at loss-event rate [p],
         packets/s; the transport's own fluid model *)
  ff_suspend : unit -> unit;  (* freeze the sender (idempotent) *)
  ff_credit : sent:int -> delivered:int -> unit;
      (* fold whole packets carried by the fluid model into counters *)
  ff_resume : p:float -> unit;
      (* re-seed exact packet state for loss rate [p] and resume *)
}

type t = {
  id : int;
  protocol : string;
  start : unit -> unit;
  stop : unit -> unit;
  pkts_sent : unit -> int;
  bytes_sent : unit -> float;
  bytes_delivered : unit -> float;
  current_rate : unit -> float;
  srtt : unit -> float;
  stats : unit -> stats;
  ff : ff_ops option;
}

(* Default stats for rate-based/open-loop transports: loss-recovery
   counters pinned to zero, the rest read through the flow's closures. *)
let basic_stats ~pkts_sent ~bytes_sent ~bytes_delivered ~srtt () =
  {
    sent_pkts = pkts_sent ();
    sent_bytes = bytes_sent ();
    delivered_bytes = bytes_delivered ();
    rtx_pkts = 0;
    timeouts = 0;
    fast_rtx = 0;
    stat_srtt = srtt ();
  }

let json_of_stats s =
  Engine.Json.Obj
    [
      ("sent_pkts", Engine.Json.Int s.sent_pkts);
      ("sent_bytes", Engine.Json.Float s.sent_bytes);
      ("delivered_bytes", Engine.Json.Float s.delivered_bytes);
      ("rtx_pkts", Engine.Json.Int s.rtx_pkts);
      ("timeouts", Engine.Json.Int s.timeouts);
      ("fast_rtx", Engine.Json.Int s.fast_rtx);
      ("srtt", Engine.Json.Float s.stat_srtt);
    ]

let throughput t ~t0 ~t1 ~snapshot0 =
  if t1 <= t0 then invalid_arg "Flow.throughput: empty interval";
  (t.bytes_delivered () -. snapshot0) /. (t1 -. t0)
