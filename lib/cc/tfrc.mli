(** TCP-Friendly Rate Control (Floyd, Handley, Padhye, Widmer 2000).

    Equation-based, rate-driven congestion control: the receiver measures
    the loss event rate over the most recent [k] loss intervals (TFRC(k),
    deployed default about 6) and its receive rate each RTT; the sender
    sets its transmission rate to the TCP response function of that loss
    rate, capped at twice the receive rate.

    The [conservative] flag implements the paper's self-clocking extension
    (Section 4.1.1 pseudo-code): for the RTT after a reported loss the rate
    is capped at the receive rate itself, and otherwise at C times the
    receive rate (C = 1.1), restoring the packet-conservation principle. *)

type config = {
  k : int;  (** number of loss intervals averaged *)
  pkt_size : int;
  conservative : bool;  (** the paper's self-clocking option *)
  conservative_c : float;  (** C in the pseudo-code; paper uses 1.1 *)
  history_discounting : bool;  (** RFC 3448 s5.5; off in the paper's runs *)
  initial_rtt : float;
  initial_rate_pps : float;
  min_rate_pps : float;  (** one packet per t_mbi = 64 s *)
}

val default_config : k:int -> config

type t

val create :
  sim:Engine.Sim.t ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  flow:int ->
  config ->
  t

val flow : t -> Flow.t

(** Introspection. *)
val rate_pps : t -> float

val srtt : t -> float

(** Last loss event rate reported by the receiver. *)
val loss_event_rate : t -> float

val in_slow_start : t -> bool

(** The receiver's fallback receive-rate estimate when no per-packet
    measurement is available: [bytes /. elapsed], except that a feedback
    interval of exactly zero (a feedback timer firing at a packet-arrival
    instant, reproducible with dyadic timestamps) keeps [prev] rather
    than producing inf/nan.  Exposed pure so the guard stays pinned by a
    regression test. *)
val nofb_recv_rate : bytes:int -> elapsed:float -> prev:float -> float
