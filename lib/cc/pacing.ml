(* Token-bucket packet pacer on a single reusable [Engine.Sim.timer].

   Rate-paced senders (BBR-style, and eventually Tfrc/Cbr) hand the pacer
   an [emit] callback that transmits one packet and returns [true], or
   returns [false] when the transport has nothing to send right now.  The
   pacer spaces emissions [1 /. rate_pps] apart (with a small configurable
   burst allowance), re-arming one timer instead of allocating a fresh
   event per packet, and goes idle — timer disarmed, zero events — when
   [emit] declines.  The transport calls [kick] when data (or window)
   becomes available again.

   Determinism: [kick] never calls [emit] inline from the caller's stack
   (an ack handler would otherwise recurse into the send path mid-event);
   it arms the timer for *now*, so the emission runs as its own scheduler
   event with a stable allocation order.  All arithmetic is plain float
   work on simulated time, so traces are byte-identical across heap and
   calendar schedulers. *)

type t = {
  sim : Engine.Sim.t;
  burst : float; (* max accumulated tokens, >= 1 *)
  mutable rate_pps : float; (* tokens (packets) per simulated second *)
  mutable tokens : float;
  mutable last_refill : float;
  mutable running : bool;
  mutable timer : Engine.Sim.timer;
  mutable emit : unit -> bool;
  mutable sends : int;
}

let refill t =
  let now = Engine.Sim.now t.sim in
  if now > t.last_refill then begin
    t.tokens <-
      Float.min t.burst (t.tokens +. ((now -. t.last_refill) *. t.rate_pps));
    t.last_refill <- now
  end

(* Timer body: emit while whole tokens remain, then either sleep until the
   next token accrues (transport still hungry) or go idle until [kick].
   The starved branch must strictly advance simulated time: at high clock
   values the deficit [1 - tokens] can be so small that
   [now +. delay = now], and arming the timer for that degenerate instant
   would re-fire it forever without [refill] ever adding a token.  When
   the wake-up cannot advance the clock we forgive the sub-resolution
   deficit (snap to one whole token) and emit now instead. *)
let pump t =
  if t.running && t.rate_pps > 0. then begin
    refill t;
    let continue = ref true in
    while !continue do
      if t.tokens >= 1. then begin
        if t.emit () then begin
          t.tokens <- t.tokens -. 1.;
          t.sends <- t.sends + 1
        end
        else continue := false (* idle, timer disarmed, until [kick] *)
      end
      else begin
        let now = Engine.Sim.now t.sim in
        let delay = (1. -. t.tokens) /. t.rate_pps in
        if now +. delay > now then begin
          Engine.Sim.arm_after t.timer delay;
          continue := false
        end
        else t.tokens <- 1. (* deficit below float resolution at [now] *)
      end
    done
  end

let create ~sim ?(burst = 1.) ~emit () =
  if burst < 1. then invalid_arg "Pacing.create: burst must be >= 1";
  let t =
    {
      sim;
      burst;
      rate_pps = 0.;
      tokens = burst;
      last_refill = Engine.Sim.now sim;
      running = false;
      timer = Engine.Sim.timer sim ignore;
      emit;
      sends = 0;
    }
  in
  t.timer <- Engine.Sim.timer sim (fun () -> pump t);
  t

let kick t =
  if t.running && t.rate_pps > 0. && not (Engine.Sim.timer_armed t.timer) then
    Engine.Sim.arm_after t.timer 0.

let set_rate_pps t rate =
  if rate < 0. || not (Float.is_finite rate) then
    invalid_arg "Pacing.set_rate_pps: rate must be finite and >= 0";
  (* Credit tokens accrued at the old rate before swapping. *)
  refill t;
  t.rate_pps <- rate;
  if t.running then
    if rate = 0. then Engine.Sim.disarm t.timer
    else if Engine.Sim.timer_armed t.timer then
      (* A pending wake-up was computed from the old rate; re-derive it.
         An idle pacer (timer disarmed because [emit] declined) is left
         idle — only [kick] wakes it. *)
      Engine.Sim.arm_after t.timer
        (if t.tokens >= 1. then 0. else (1. -. t.tokens) /. rate)

let start t =
  if not t.running then begin
    t.running <- true;
    t.last_refill <- Engine.Sim.now t.sim;
    kick t
  end

let stop t =
  if t.running then begin
    t.running <- false;
    Engine.Sim.disarm t.timer
  end

let rate_pps t = t.rate_pps
let tokens t = refill t; t.tokens
let sends t = t.sends
let idle t = not (Engine.Sim.timer_armed t.timer)
