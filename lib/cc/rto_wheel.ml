(* Calendar wheel specialized to the consolidated RTO timer.

   [Engine.Calendar_queue] is generic: four parallel pool arrays
   ([times]/[seqs]/[vals]/[nexts]) at 32 bytes per node, with the
   payload behind an [Obj.t].  The RTO wheel's payload is just a flow
   index, and its seqs are burned from the *simulator's* insertion
   counter, so both fit one word: [packed = seq lsl flow_bits lor flow].
   That shrinks a node to three arrays — [times]/[packed]/[nexts],
   24 bytes — and drops the [Obj] indirection from every comparison.

   Ordering is still lexicographic on (time, seq): simulator seqs are
   unique, so at equal times comparing the packed words directly is
   equivalent to comparing seqs (the flow bits only break ties between
   identical seqs, which cannot occur).  Bucketing, width estimation,
   resize hysteresis, and the Audit FIFO check are the same as
   [Calendar_queue] — any divergence would reorder timer pops and break
   the SoA engine's digest equivalence with the per-object engine.

   [filter] exists for the stale-entry bound: lazy deadline-chasing
   leaves orphaned entries behind, and a caller that tracks its live
   count can sweep them without touching pop order of the survivors. *)

let flow_bits = 20
let max_flows = 1 lsl flow_bits
let flow_mask = max_flows - 1

type t = {
  (* node pool: 3 parallel arrays, 24 B/node *)
  mutable times : float array;
  mutable packed : int array;  (* seq lsl flow_bits lor flow *)
  mutable nexts : int array;
  mutable free : int;  (* free-list head, -1 when the pool is full *)
  (* calendar *)
  mutable buckets : int array;  (* per-bucket list head, -1 when empty *)
  mutable mask : int;  (* nbuckets - 1; nbuckets is a power of two *)
  mutable width : float;  (* seconds covered by one bucket *)
  mutable cur : int;  (* absolute bucket number of the search cursor *)
  mutable size : int;
  (* Last (time, packed) handed out by [take]; only touched under
     [Audit.invariants_on] to assert (time, insertion-order) pop order. *)
  mutable last_pop_time : float;
  mutable last_pop_packed : int;
}

let initial_nodes = 256
let initial_buckets = 8
let min_buckets = 8

let create () =
  {
    times = [||];
    packed = [||];
    nexts = [||];
    free = -1;
    buckets = Array.make initial_buckets (-1);
    mask = initial_buckets - 1;
    width = 0.01;
    cur = 0;
    size = 0;
    last_pop_time = Float.neg_infinity;
    last_pop_packed = -1;
  }

let is_empty t = t.size = 0
let size t = t.size
let buckets t = t.mask + 1

let grow_pool t =
  let cap = Array.length t.times in
  let new_cap = if cap = 0 then initial_nodes else cap * 2 in
  let times = Array.make new_cap 0. in
  let packed = Array.make new_cap 0 in
  let nexts = Array.make new_cap (-1) in
  Array.blit t.times 0 times 0 cap;
  Array.blit t.packed 0 packed 0 cap;
  Array.blit t.nexts 0 nexts 0 cap;
  for i = cap to new_cap - 2 do
    nexts.(i) <- i + 1
  done;
  nexts.(new_cap - 1) <- t.free;
  t.free <- cap;
  t.times <- times;
  t.packed <- packed;
  t.nexts <- nexts

let[@inline] bucket_number t time = int_of_float (time /. t.width)

(* Insert node [n] (fields already set) into its bucket's sorted list;
   sort key is (time, packed), which equals (time, seq). *)
let insert_node t n =
  let time = Array.unsafe_get t.times n in
  let pk = Array.unsafe_get t.packed n in
  let bn = bucket_number t time in
  if bn < t.cur then t.cur <- bn;
  let b = bn land t.mask in
  let head = Array.unsafe_get t.buckets b in
  if
    head < 0
    || time < Array.unsafe_get t.times head
    || (time = Array.unsafe_get t.times head
        && pk < Array.unsafe_get t.packed head)
  then begin
    Array.unsafe_set t.nexts n head;
    Array.unsafe_set t.buckets b n
  end
  else begin
    let prev = ref head in
    let continue_ = ref true in
    while !continue_ do
      let nx = Array.unsafe_get t.nexts !prev in
      if nx < 0 then continue_ := false
      else begin
        let tx = Array.unsafe_get t.times nx in
        if tx < time || (tx = time && Array.unsafe_get t.packed nx < pk) then
          prev := nx
        else continue_ := false
      end
    done;
    Array.unsafe_set t.nexts n (Array.unsafe_get t.nexts !prev);
    Array.unsafe_set t.nexts !prev n
  end

(* Same width heuristic as [Calendar_queue.estimate_width]. *)
let estimate_width t live =
  let n = Array.length live in
  if n < 2 then t.width
  else begin
    Array.sort Float.compare live;
    let k = min n 32 in
    let front = live.(k - 1) -. live.(0) in
    let gap =
      if front > 0. then front /. float_of_int (k - 1)
      else begin
        let range = live.(n - 1) -. live.(0) in
        if range > 0. then range /. float_of_int n else 0.
      end
    in
    if gap > 0. then Float.max 1e-12 (3. *. gap) else t.width
  end

let resize t nb =
  let live = Array.make t.size 0. in
  let nodes = Array.make t.size 0 in
  let j = ref 0 in
  Array.iter
    (fun head ->
      let n = ref head in
      while !n >= 0 do
        live.(!j) <- Array.unsafe_get t.times !n;
        nodes.(!j) <- !n;
        incr j;
        n := Array.unsafe_get t.nexts !n
      done)
    t.buckets;
  t.width <- estimate_width t live;
  t.buckets <- Array.make nb (-1);
  t.mask <- nb - 1;
  t.cur <- (if t.size = 0 then 0 else bucket_number t live.(0));
  Array.iter (fun n -> insert_node t n) nodes

let add t ~time ~seq ~flow =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Rto_wheel.add: time must be finite and non-negative";
  if seq < 0 then invalid_arg "Rto_wheel.add: negative seq";
  if flow < 0 || flow >= max_flows then
    invalid_arg "Rto_wheel.add: flow out of range";
  if t.free < 0 then grow_pool t;
  let n = t.free in
  t.free <- Array.unsafe_get t.nexts n;
  Array.unsafe_set t.times n time;
  Array.unsafe_set t.packed n ((seq lsl flow_bits) lor flow);
  insert_node t n;
  t.size <- t.size + 1;
  if t.size > 2 * (t.mask + 1) then resize t (2 * (t.mask + 1))

let direct_search t =
  let nb = t.mask + 1 in
  let best_b = ref (-1) in
  let best_n = ref (-1) in
  for b = 0 to nb - 1 do
    let h = Array.unsafe_get t.buckets b in
    if
      h >= 0
      && (!best_n < 0
         || Array.unsafe_get t.times h < Array.unsafe_get t.times !best_n
         || (Array.unsafe_get t.times h = Array.unsafe_get t.times !best_n
             && Array.unsafe_get t.packed h < Array.unsafe_get t.packed !best_n
            ))
    then begin
      best_b := b;
      best_n := h
    end
  done;
  t.cur <- bucket_number t (Array.unsafe_get t.times !best_n);
  !best_b

let find_min_bucket t =
  let nb = t.mask + 1 in
  let c = ref t.cur in
  let k = ref 0 in
  let found = ref (-1) in
  while !found < 0 && !k < nb do
    let b = !c land t.mask in
    let h = Array.unsafe_get t.buckets b in
    if h >= 0 && Array.unsafe_get t.times h /. t.width < float_of_int (!c + 1)
    then begin
      t.cur <- !c;
      found := b
    end
    else begin
      incr c;
      incr k
    end
  done;
  if !found >= 0 then !found else direct_search t

let remove_head t b =
  let n = Array.unsafe_get t.buckets b in
  Array.unsafe_set t.buckets b (Array.unsafe_get t.nexts n);
  Array.unsafe_set t.nexts n t.free;
  t.free <- n;
  t.size <- t.size - 1;
  let pk = Array.unsafe_get t.packed n in
  let nb = t.mask + 1 in
  if nb > min_buckets && t.size < nb / 4 then resize t (nb / 2);
  pk

let take t =
  if t.size = 0 then invalid_arg "Rto_wheel.take: empty queue";
  let b = find_min_bucket t in
  if Engine.Audit.invariants_on () then begin
    let n = Array.unsafe_get t.buckets b in
    let time = Array.unsafe_get t.times n
    and pk = Array.unsafe_get t.packed n in
    if
      time < t.last_pop_time
      || (time = t.last_pop_time && pk < t.last_pop_packed)
    then
      Engine.Audit.fail
        "Rto_wheel.take: popped (t=%.17g, seq=%d) after (t=%.17g, seq=%d) — \
         FIFO order at equal timestamps broken"
        time (pk lsr flow_bits) t.last_pop_time
        (t.last_pop_packed lsr flow_bits);
    t.last_pop_time <- time;
    t.last_pop_packed <- pk
  end;
  remove_head t b land flow_mask

let[@inline] min_time t =
  if t.size = 0 then Float.nan
  else begin
    let b = find_min_bucket t in
    Array.unsafe_get t.times (Array.unsafe_get t.buckets b)
  end

let min_seq t =
  if t.size = 0 then invalid_arg "Rto_wheel.min_seq: empty queue"
  else begin
    let b = find_min_bucket t in
    Array.unsafe_get t.packed (Array.unsafe_get t.buckets b) lsr flow_bits
  end

(* Drop every entry for which [keep ~flow ~time] is false, in one O(size)
   rebuild.  Survivors keep their (time, seq) keys, so relative pop order
   is untouched; the minimum can only move later, which lazy service
   entries already tolerate.  Does not reset the Audit pop watermark —
   sweeps remove only entries that would have popped as no-ops. *)
let filter t ~keep =
  let live = Array.make t.size 0. in
  let nodes = Array.make t.size 0 in
  let kept = ref 0 in
  Array.iter
    (fun head ->
      let n = ref head in
      while !n >= 0 do
        let nx = Array.unsafe_get t.nexts !n in
        let time = Array.unsafe_get t.times !n in
        if keep ~flow:(Array.unsafe_get t.packed !n land flow_mask) ~time
        then begin
          live.(!kept) <- time;
          nodes.(!kept) <- !n;
          incr kept
        end
        else begin
          Array.unsafe_set t.nexts !n t.free;
          t.free <- !n
        end;
        n := nx
      done)
    t.buckets;
  t.size <- !kept;
  (* Re-bucket the survivors with a width fitted to what remains, sized
     by the same 2x growth threshold [add] uses. *)
  let nb = ref initial_buckets in
  while t.size > 2 * !nb do
    nb := 2 * !nb
  done;
  let live = Array.sub live 0 !kept in
  t.width <- estimate_width t live;
  t.buckets <- Array.make !nb (-1);
  t.mask <- !nb - 1;
  Array.sort Float.compare live;
  t.cur <- (if t.size = 0 then 0 else bucket_number t live.(0));
  for j = 0 to !kept - 1 do
    insert_node t nodes.(j)
  done

let clear t =
  let cap = Array.length t.nexts in
  for i = 0 to cap - 2 do
    t.nexts.(i) <- i + 1
  done;
  if cap > 0 then t.nexts.(cap - 1) <- -1;
  t.free <- (if cap > 0 then 0 else -1);
  Array.fill t.buckets 0 (Array.length t.buckets) (-1);
  t.size <- 0;
  t.cur <- 0;
  t.last_pop_time <- Float.neg_infinity;
  t.last_pop_packed <- -1
