(** Vegas-style delay-based sender.

    Estimates the standing queue it keeps at the bottleneck as
    [diff = cwnd * (rtt - base_rtt) / rtt] and, once per RTT, adjusts the
    window to hold [alpha < diff < beta] (+1 packet below [alpha], −1
    above [beta]).  Slow start doubles every other RTT and exits as soon
    as [diff > gamma].

    Robustness fixes from the delay-CC literature: per-RTT decisions use
    the minimum RTT sample of the epoch (noise filtering), and the
    propagation-RTT estimate is a windowed minimum aged over
    [base_rtt_window] seconds (two rotating half-window buckets), so it
    recovers from route changes and persistent standing queues.  RTT
    samples obey Karn's rule, and the retransmit timer is floored at
    [min_rto].  Loss recovery is 3-dupack retransmit with a 3/4 decrease
    and go-back-N on timeout. *)

type config = {
  alpha : float;
  beta : float;
  gamma : float;
  pkt_size : int;
  initial_window : float;
  max_window : float;
  min_rto : float;
  max_rto : float;
  base_rtt_window : float;
}

val default_config : config
(** alpha 2, beta 4, gamma 1 (packets of standing queue), 1000-byte
    packets, initial window 2, min_rto 0.2 s, base-RTT aging over 10 s. *)

type t

val create :
  sim:Engine.Sim.t ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  flow:int ->
  config ->
  t
(** Attach a sender at [src] and its cumulative-ack sink at [dst].
    Raises [Invalid_argument] unless [initial_window >= 1] and
    [0 <= alpha <= beta]. *)

val start : t -> unit
val stop : t -> unit

val flow : t -> Flow.t
(** Uniform flow handle ([ff = None]: delay-based senders have no fluid
    fast-forward model yet). *)

(** {2 Introspection (tests, experiments)} *)

val cwnd : t -> float
val srtt : t -> float

val rto : t -> float
(** Current retransmit timeout, including backoff; never below
    [cfg.min_rto]. *)

val in_slow_start : t -> bool

val standing_queue : t -> float
(** Most recent per-epoch [diff] estimate, in packets. *)

val base_rtt_estimate : t -> float
(** Current aged base-RTT estimate (0 until the first sample). *)

val timeouts : t -> int
val fast_retransmits : t -> int
