(* Vegas-style delay-based sender.

   The controller estimates the standing queue it keeps at the bottleneck
   from the gap between the measured RTT and the propagation RTT:

     diff = cwnd * (rtt - base_rtt) / rtt        (packets queued)

   and once per RTT nudges the window to keep alpha < diff < beta
   (Brakmo & Peterson's alpha/beta rule; +1 below alpha, -1 above beta,
   hold in between), with a gamma threshold that exits the
   double-every-other-RTT slow start the moment a standing queue forms.

   Two classic delay-CC pathologies are addressed the way the "gallery of
   solutions" survey recommends:
   - RTT noise: decisions use the *minimum* RTT sample of each RTT epoch,
     not individual (ack-compression-prone) samples.
   - Base-RTT drift: base_rtt is a windowed minimum over two rotating
     half-window buckets (~[base_rtt_window] seconds), so a route change
     or a long-lived standing queue cannot pin base_rtt to a stale value
     forever.

   RTT samples are per-sequence send timestamps, discarded when a
   sequence is retransmitted (Karn's rule: an ack for a retransmitted
   segment is ambiguous and is never timed).  Loss handling is
   deliberately plain — 3-dupack retransmit with a 3/4 window decrease,
   go-back-N on RTO with the usual exponential backoff floored at
   [min_rto] — because congestion avoidance is supposed to come from
   delay, not loss.  ECN marks are ignored for the same reason: the
   standing-queue estimate already sees the queue the marks advertise.

   The sender is ack-clocked (window-based), so it needs no pacer; the
   BBR-style sender in [Bbr] is the rate-paced one. *)

module Log = (val Logs.src_log (Logs.Src.create "cc.vegas") : Logs.LOG)

type config = {
  alpha : float; (* grow while the standing queue is below this (pkts) *)
  beta : float; (* shrink once it exceeds this (pkts) *)
  gamma : float; (* leave slow start once diff exceeds this (pkts) *)
  pkt_size : int;
  initial_window : float;
  max_window : float;
  min_rto : float;
  max_rto : float;
  base_rtt_window : float; (* base-RTT aging horizon, seconds *)
}

let default_config =
  {
    alpha = 2.;
    beta = 4.;
    gamma = 1.;
    pkt_size = 1000;
    initial_window = 2.;
    max_window = 10000.;
    min_rto = 0.2;
    max_rto = 64.;
    base_rtt_window = 10.;
  }

type t = {
  sim : Engine.Sim.t;
  cfg : config;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  flow_id : int;
  sink : Sink.t;
  mutable running : bool;
  (* sequence space *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable high_water : int;
  (* window *)
  mutable cwnd : float;
  mutable in_slow_start : bool;
  mutable ss_grow : bool; (* slow start doubles every *other* RTT *)
  (* loss recovery *)
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  mutable backoff : float;
  mutable rto_timer : Engine.Sim.timer;
  (* RTT measurement: send time per (first-transmission) sequence *)
  send_times : (int, float) Hashtbl.t;
  mutable srtt : float;
  mutable rttvar : float;
  mutable rtt_valid : bool;
  (* per-RTT epoch, min-filtered *)
  mutable epoch_end : int; (* decide when snd_una passes this *)
  mutable epoch_min_rtt : float;
  mutable epoch_samples : int;
  (* base-RTT aging: two rotating half-window minima *)
  mutable base_cur : float;
  mutable base_prev : float;
  mutable base_rotate_at : float;
  (* diagnostics *)
  mutable last_diff : float;
  mutable pkts_sent : int;
  mutable bytes_sent : int;
  mutable n_timeouts : int;
  mutable n_fast_rtx : int;
  mutable n_rtx_pkts : int;
}

let inflight t = t.snd_nxt - t.snd_una

let current_rto t =
  let base = if t.rtt_valid then t.srtt +. (4. *. t.rttvar) else 1.0 in
  (* Clamp to the configured floor *before* applying backoff, exactly as
     [Window_cc.rto]: a low-RTT path must never push the timer below
     [min_rto]. *)
  Float.min t.cfg.max_rto (Float.max t.cfg.min_rto base *. t.backoff)

let transmit t ~seq =
  let now = Engine.Sim.now t.sim in
  let pkt =
    Netsim.Packet.make ~size:t.cfg.pkt_size ~seq ~flow:t.flow_id
      ~src:(Netsim.Node.id t.src) ~dst:(Netsim.Node.id t.dst) ~sent_at:now ()
  in
  t.pkts_sent <- t.pkts_sent + 1;
  t.bytes_sent <- t.bytes_sent + t.cfg.pkt_size;
  if seq < t.high_water then begin
    t.n_rtx_pkts <- t.n_rtx_pkts + 1;
    (* Karn: a retransmitted sequence can never yield an unambiguous
       sample. *)
    Hashtbl.remove t.send_times seq
  end
  else begin
    Hashtbl.replace t.send_times seq now;
    t.high_water <- seq + 1
  end;
  Netsim.Node.inject t.src pkt

let cancel_rto t = Engine.Sim.disarm t.rto_timer

let restart_rto t =
  if t.running && t.snd_una < t.snd_nxt then
    Engine.Sim.arm_after t.rto_timer (current_rto t)
  else cancel_rto t

let try_send t =
  if t.running then begin
    while
      float_of_int (inflight t) < Float.floor t.cwnd
      && (not t.in_recovery)
    do
      transmit t ~seq:t.snd_nxt;
      t.snd_nxt <- t.snd_nxt + 1
    done;
    if not (Engine.Sim.timer_armed t.rto_timer) then restart_rto t
  end

let base_rtt t = Float.min t.base_cur t.base_prev

let rotate_base t =
  let now = Engine.Sim.now t.sim in
  if now >= t.base_rotate_at then begin
    t.base_prev <- t.base_cur;
    t.base_cur <- infinity;
    t.base_rotate_at <- now +. (t.cfg.base_rtt_window /. 2.)
  end

let srtt_update t sample =
  if t.rtt_valid then begin
    let err = sample -. t.srtt in
    t.srtt <- t.srtt +. (0.125 *. err);
    t.rttvar <- t.rttvar +. (0.25 *. (Float.abs err -. t.rttvar))
  end
  else begin
    t.srtt <- sample;
    t.rttvar <- sample /. 2.;
    t.rtt_valid <- true
  end

(* Every newly cum-acked first transmission yields a sample; the epoch
   keeps only the minimum (ack-compression noise filter), base_rtt keeps
   the windowed minimum, srtt/rttvar feed the RTO. *)
let sample_rtts t ~old_una ~cum =
  let now = Engine.Sim.now t.sim in
  for seq = old_una to cum - 1 do
    match Hashtbl.find_opt t.send_times seq with
    | None -> ()
    | Some sent_at ->
      Hashtbl.remove t.send_times seq;
      let sample = now -. sent_at in
      if t.epoch_samples = 0 || sample < t.epoch_min_rtt then
        t.epoch_min_rtt <- sample;
      t.epoch_samples <- t.epoch_samples + 1;
      if sample < t.base_cur then t.base_cur <- sample;
      srtt_update t sample
  done

(* Once-per-RTT window decision at the epoch boundary. *)
let vegas_update t =
  rotate_base t;
  if t.epoch_samples > 0 && Float.is_finite (base_rtt t) then begin
    let rtt = t.epoch_min_rtt in
    (* Samples feed the base filter first, so base <= rtt always; the min
       guards the instant right after a bucket rotation. *)
    let base = Float.min (base_rtt t) rtt in
    let diff = t.cwnd *. (rtt -. base) /. rtt in
    t.last_diff <- diff;
    if t.in_slow_start then begin
      if diff > t.cfg.gamma then begin
        (* A standing queue has formed: drain it and switch to the linear
           regime. *)
        t.in_slow_start <- false;
        t.cwnd <- Float.max 2. (t.cwnd *. base /. rtt)
      end
      else begin
        if t.ss_grow then t.cwnd <- Float.min t.cfg.max_window (t.cwnd *. 2.);
        t.ss_grow <- not t.ss_grow
      end
    end
    else if diff < t.cfg.alpha then
      t.cwnd <- Float.min t.cfg.max_window (t.cwnd +. 1.)
    else if diff > t.cfg.beta then t.cwnd <- Float.max 2. (t.cwnd -. 1.);
    Log.debug (fun m ->
        m "t=%.3f flow=%d vegas: rtt=%.4f base=%.4f diff=%.2f cwnd=%.1f%s"
          (Engine.Sim.now t.sim) t.flow_id rtt base diff t.cwnd
          (if t.in_slow_start then " (ss)" else ""))
  end;
  t.epoch_samples <- 0;
  t.epoch_min_rtt <- infinity;
  t.epoch_end <- t.snd_nxt

let on_rto t =
  if t.running && t.snd_una < t.snd_nxt then begin
    t.n_timeouts <- t.n_timeouts + 1;
    t.cwnd <- 2.;
    t.in_slow_start <- true;
    t.ss_grow <- false;
    t.backoff <- Float.min 64. (t.backoff *. 2.);
    t.in_recovery <- false;
    t.dupacks <- 0;
    (* Go-back-N: everything in flight is presumed lost. *)
    t.snd_nxt <- t.snd_una;
    t.recover <- t.high_water;
    transmit t ~seq:t.snd_nxt;
    t.snd_nxt <- t.snd_nxt + 1;
    t.epoch_samples <- 0;
    t.epoch_min_rtt <- infinity;
    t.epoch_end <- t.snd_nxt;
    restart_rto t
  end

let on_new_ack t cum =
  let old_una = t.snd_una in
  sample_rtts t ~old_una ~cum;
  t.snd_una <- cum;
  t.backoff <- 1.;
  if t.in_recovery && cum > t.recover then begin
    t.in_recovery <- false;
    t.dupacks <- 0
  end
  else if not t.in_recovery then t.dupacks <- 0;
  if t.in_recovery then
    (* Partial ack during recovery: the next hole is lost too. *)
    transmit t ~seq:t.snd_una
  else if cum >= t.epoch_end then vegas_update t;
  restart_rto t;
  try_send t

let on_dup_ack t =
  t.dupacks <- t.dupacks + 1;
  if (not t.in_recovery) && t.dupacks = 3 && t.snd_una > t.recover then begin
    t.n_fast_rtx <- t.n_fast_rtx + 1;
    t.in_recovery <- true;
    t.recover <- t.snd_nxt;
    (* Vegas's gentler-than-halving decrease. *)
    t.cwnd <- Float.max 2. (t.cwnd *. 0.75);
    t.in_slow_start <- false;
    transmit t ~seq:t.snd_una;
    restart_rto t
  end

let handle_ack t (pkt : Netsim.Packet.t) =
  (if t.running then
     match pkt.Netsim.Packet.payload with
     | Netsim.Packet.Ack { cum_seq; sack = _ } ->
       if cum_seq > t.snd_una then on_new_ack t cum_seq
       else if cum_seq = t.snd_una && t.snd_una < t.snd_nxt then on_dup_ack t
       (* cum_seq < snd_una: stale ack from before a go-back-N rewind. *)
     | Netsim.Packet.Plain | Netsim.Packet.Rap_ack _ | Netsim.Packet.Tfrc_data _
     | Netsim.Packet.Tfrc_fb _ | Netsim.Packet.Tear_fb _ ->
       ());
  Netsim.Packet.release pkt

let create ~sim ~src ~dst ~flow cfg =
  if cfg.initial_window < 1. then invalid_arg "Vegas: initial_window";
  if cfg.alpha < 0. || cfg.beta < cfg.alpha then
    invalid_arg "Vegas: need 0 <= alpha <= beta";
  let sink =
    Sink.attach ~sim ~node:dst ~flow ~peer:(Netsim.Node.id src) ()
  in
  let t =
    {
      sim;
      cfg;
      src;
      dst;
      flow_id = flow;
      sink;
      running = false;
      snd_una = 0;
      snd_nxt = 0;
      high_water = 0;
      cwnd = cfg.initial_window;
      in_slow_start = true;
      ss_grow = true;
      dupacks = 0;
      in_recovery = false;
      recover = -1;
      backoff = 1.;
      rto_timer = Engine.Sim.timer sim ignore;
      send_times = Hashtbl.create 64;
      srtt = 0.;
      rttvar = 0.;
      rtt_valid = false;
      epoch_end = 0;
      epoch_min_rtt = infinity;
      epoch_samples = 0;
      base_cur = infinity;
      base_prev = infinity;
      base_rotate_at = Engine.Sim.now sim +. (cfg.base_rtt_window /. 2.);
      last_diff = 0.;
      pkts_sent = 0;
      bytes_sent = 0;
      n_timeouts = 0;
      n_fast_rtx = 0;
      n_rtx_pkts = 0;
    }
  in
  t.rto_timer <- Engine.Sim.timer sim (fun () -> on_rto t);
  Netsim.Node.attach src ~flow (handle_ack t);
  t

let start t =
  if not t.running then begin
    t.running <- true;
    t.epoch_end <- t.snd_nxt;
    try_send t
  end

let stop t =
  t.running <- false;
  cancel_rto t

let flow t =
  {
    Flow.id = t.flow_id;
    protocol = "VEGAS";
    start = (fun () -> start t);
    stop = (fun () -> stop t);
    pkts_sent = (fun () -> t.pkts_sent);
    bytes_sent = (fun () -> float_of_int t.bytes_sent);
    bytes_delivered = (fun () -> Sink.bytes_received t.sink);
    current_rate =
      (fun () ->
        if t.rtt_valid && t.srtt > 0. then
          t.cwnd *. float_of_int t.cfg.pkt_size /. t.srtt
        else 0.);
    srtt = (fun () -> t.srtt);
    stats =
      (fun () ->
        {
          Flow.sent_pkts = t.pkts_sent;
          sent_bytes = float_of_int t.bytes_sent;
          delivered_bytes = Sink.bytes_received t.sink;
          rtx_pkts = t.n_rtx_pkts;
          timeouts = t.n_timeouts;
          fast_rtx = t.n_fast_rtx;
          stat_srtt = t.srtt;
        });
    ff = None;
  }

let cwnd t = t.cwnd
let srtt t = t.srtt
let rto t = current_rto t
let in_slow_start t = t.in_slow_start
let standing_queue t = t.last_diff
let base_rtt_estimate t = if Float.is_finite (base_rtt t) then base_rtt t else 0.
let timeouts t = t.n_timeouts
let fast_retransmits t = t.n_fast_rtx
