module IntSet = Set.Make (Int)

type config = {
  rule : Window_cc.rule;
  pkt_size : int;
  ack_size : int;
  initial_window : float;
  initial_ssthresh : float option;
  max_window : float;
  min_rto : float;
  max_rto : float;
  react_to_ecn : bool;
  ack_batching : bool;
}

let default_config rule =
  {
    rule;
    pkt_size = 1000;
    ack_size = 40;
    initial_window = 2.;
    initial_ssthresh = None;
    max_window = 10000.;
    min_rto = 0.2;
    max_rto = 64.;
    react_to_ecn = true;
    ack_batching = false;
  }

(* Per-flow booleans, the RTO backoff exponent and the dupack count share
   one int cell ([misc]): many-flow state has to stay close to the ~200
   bytes/flow budget, and none of these fields needs more than a few
   bits.  The backoff multiplier is always an exact power of two in
   [1, 64] (it doubles per timeout and resets to 1 on any new ack), so
   three bits of exponent reproduce the per-object float exactly. *)
let f_running = 1
let f_recovery = 2
let f_partial = 4 (* NewReno "Impatient": first partial ack seen *)
let f_rttvalid = 8
let f_ecn = 16 (* sink: CE seen since last ack *)
let f_apending = 32 (* sink: coalesced ack queued (batching mode) *)
let backoff_shift = 6
let backoff_mask = 7 lsl backoff_shift
let dup_shift = 9
let dup_lo_mask = (1 lsl dup_shift) - 1

type t = {
  sim : Engine.Sim.t;
  cfg : config;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  src_id : int;
  dst_id : int;
  base : int; (* first flow id; flow id of index i is base + i *)
  n : int;
  (* --- sender state, one slot per flow --- *)
  cwnd : floatarray;
  ssthresh : floatarray;
  srtt : floatarray;
  rttvar : floatarray;
  rto_deadline : floatarray; (* infinity = timer disarmed *)
  slot : floatarray; (* tracked wheel-entry time; infinity = none *)
  no_fastrtx_until : floatarray;
  probe_time : floatarray;
  snd_una : int array;
  snd_nxt : int array;
  high_water : int array;
  recover : int array;
  probe_seq : int array; (* -1 = no RTT probe in flight *)
  n_rtx : int array;
  n_to : int array;
  n_frtx : int array;
  misc : int array;
  ecn_guard : int array;
  (* --- sink state --- *)
  next_expected : int array;
  rcv_pkts : int array;
  (* Out-of-order buffer, small-case inlined: in the many-flow overload
     regime most flows buffer at most ONE segment at a time, and a
     one-element [IntSet] costs five boxed words per flow.  [ooo1.(i)]
     holds that single seq (-1 = empty); flows that accumulate a second
     one spill the whole set to [ooo_more] (ooo1 = -2 marks the spill).
     Same set semantics as the per-object sink, ~28 fewer bytes/flow. *)
  ooo1 : int array;
  ooo_more : (int, IntSet.t) Hashtbl.t;
  (* --- consolidated RTO timer wheel ---
     One calendar queue of flow indexes replaces n per-flow [Sim.timer]s.
     Every wheel entry carries a seq burned from the *simulator's*
     insertion counter ([Sim.alloc_seq]) at exactly the point a per-flow
     timer would have inserted a queue entry, so the wheel is a
     bit-exact mirror of the timer subset of the per-object engine's
     event queue.  A single shared [service] closure is kept scheduled
     at the wheel minimum via [Sim.at_seq] — same (time, seq) position,
     so firing order interleaves with non-timer events exactly as the
     per-object engine's would, including at exact-float-time
     collisions.  [out_*] is a tiny min-heap of the (time, seq) pairs of
     outstanding [service] entries: when the wheel minimum drops, a new
     entry is scheduled and the old one is orphaned; on fire, the
     outstanding minimum IS the firing entry (the simulator pops in
     (time, seq) order), and it is live iff it equals the wheel min. *)
  wheel : Rto_wheel.t;
  (* Flows with a tracked wheel entry (slot < infinity).  Lazy
     deadline-chasing strands orphaned entries in the wheel; when the
     wheel grows past [2 * tracked + 64] a sweep drops every entry whose
     time no longer matches its flow's [slot], bounding stale
     accumulation without touching the survivors' pop order. *)
  mutable tracked : int;
  mutable out_times : floatarray;
  mutable out_seqs : int array;
  mutable out_n : int;
  mutable service_fn : unit -> unit;
  (* --- ack batching (cfg.ack_batching only) --- *)
  pending : int array; (* flow indexes with a coalesced ack queued *)
  mutable pending_n : int;
  mutable flush_at : float; (* instant of the queued flush event; nan = none *)
  mutable flush_fn : unit -> unit;
}

let n t = t.n
let[@inline] flow_id t i = t.base + i
let[@inline] get_flag t i bit = t.misc.(i) land bit <> 0

let[@inline] set_flag t i bit v =
  if v then t.misc.(i) <- t.misc.(i) lor bit
  else t.misc.(i) <- t.misc.(i) land lnot bit

let[@inline] dupacks t i = t.misc.(i) lsr dup_shift

let[@inline] set_dupacks t i d =
  t.misc.(i) <- t.misc.(i) land dup_lo_mask lor (d lsl dup_shift)

let[@inline] backoff t i =
  float_of_int (1 lsl ((t.misc.(i) land backoff_mask) lsr backoff_shift))

let[@inline] set_backoff_exp t i e =
  t.misc.(i) <- t.misc.(i) land lnot backoff_mask lor (e lsl backoff_shift)

let[@inline] double_backoff t i =
  let e = (t.misc.(i) land backoff_mask) lsr backoff_shift in
  set_backoff_exp t i (min 6 (e + 1))

let[@inline] inflight t i = t.snd_nxt.(i) - t.snd_una.(i)

let effective_window t i =
  if get_flag t i f_recovery then
    Float.Array.get t.cwnd i +. float_of_int (dupacks t i)
  else Float.Array.get t.cwnd i

let current_rto t i =
  let base =
    if get_flag t i f_rttvalid then
      Float.Array.get t.srtt i +. (4. *. Float.Array.get t.rttvar i)
    else 1.0
  in
  Float.min t.cfg.max_rto (Float.max t.cfg.min_rto base *. backoff t i)

let transmit t i ~seq =
  let pkt =
    Netsim.Packet.make ~size:t.cfg.pkt_size ~seq ~flow:(flow_id t i)
      ~src:t.src_id ~dst:t.dst_id ~sent_at:(Engine.Sim.now t.sim) ()
  in
  if seq < t.high_water.(i) then begin
    t.n_rtx.(i) <- t.n_rtx.(i) + 1;
    (* Karn: a retransmission episode invalidates any probe it overlaps. *)
    if t.probe_seq.(i) >= seq then t.probe_seq.(i) <- -1
  end
  else begin
    if t.probe_seq.(i) < 0 then begin
      t.probe_seq.(i) <- seq;
      Float.Array.set t.probe_time i (Engine.Sim.now t.sim)
    end;
    t.high_water.(i) <- seq + 1
  end;
  Netsim.Node.inject t.src pkt

(* --- consolidated RTO wheel ------------------------------------------- *)

let cancel_rto t i = Float.Array.set t.rto_deadline i Float.infinity

(* Every [slot] write goes through here so [tracked] counts exactly the
   flows holding a live wheel entry. *)
let[@inline] set_slot t i v =
  let old = Float.Array.get t.slot i in
  if old = Float.infinity then begin
    if v < Float.infinity then t.tracked <- t.tracked + 1
  end
  else if v = Float.infinity then t.tracked <- t.tracked - 1;
  Float.Array.set t.slot i v

(* Outstanding-entry min-heap: (time, seq) pairs, lexicographic. *)

let out_push t time seq =
  (if t.out_n = Float.Array.length t.out_times then begin
     let cap = 2 * t.out_n in
     let nt = Float.Array.make cap 0. in
     Float.Array.blit t.out_times 0 nt 0 t.out_n;
     let ns = Array.make cap 0 in
     Array.blit t.out_seqs 0 ns 0 t.out_n;
     t.out_times <- nt;
     t.out_seqs <- ns
   end);
  let i = ref t.out_n in
  t.out_n <- t.out_n + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let p = (!i - 1) / 2 in
    let tp = Float.Array.get t.out_times p in
    if time < tp || (time = tp && seq < t.out_seqs.(p)) then begin
      Float.Array.set t.out_times !i tp;
      t.out_seqs.(!i) <- t.out_seqs.(p);
      i := p
    end
    else continue_ := false
  done;
  Float.Array.set t.out_times !i time;
  t.out_seqs.(!i) <- seq

let out_drop_min t =
  let last = t.out_n - 1 in
  t.out_n <- last;
  if last > 0 then begin
    let time = Float.Array.get t.out_times last in
    let seq = t.out_seqs.(last) in
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 in
      if l >= last then continue_ := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < last
            && (Float.Array.get t.out_times r < Float.Array.get t.out_times l
               || (Float.Array.get t.out_times r = Float.Array.get t.out_times l
                  && t.out_seqs.(r) < t.out_seqs.(l)))
          then r
          else l
        in
        let tc = Float.Array.get t.out_times c in
        if tc < time || (tc = time && t.out_seqs.(c) < seq) then begin
          Float.Array.set t.out_times !i tc;
          t.out_seqs.(!i) <- t.out_seqs.(c);
          i := c
        end
        else continue_ := false
      end
    done;
    Float.Array.set t.out_times !i time;
    t.out_seqs.(!i) <- seq
  end

(* Insert flow [i]'s wheel entry at [time], burning the simulator seq a
   per-flow timer's [q_add] would have burned here.  A freshly allocated
   seq exceeds every outstanding one, so the entry is the new minimum
   (and needs a physical [service] entry) iff its time is strictly
   earlier than the outstanding minimum's. *)
let wheel_insert t i time =
  let seq = Engine.Sim.alloc_seq t.sim in
  Rto_wheel.add t.wheel ~time ~seq ~flow:i;
  if t.out_n = 0 || time < Float.Array.get t.out_times 0 then begin
    Engine.Sim.at_seq t.sim time ~seq t.service_fn;
    out_push t time seq
  end;
  (* Stale-entry bound: sweep orphans once they outnumber live entries.
     Entries removed here would pop as no-ops (their time no longer
     matches [slot]), so pruning them cannot change any firing; at worst
     an outstanding [service] entry finds a later minimum and re-arms. *)
  if Rto_wheel.size t.wheel > (2 * t.tracked) + 64 then
    Rto_wheel.filter t.wheel ~keep:(fun ~flow ~time ->
        Float.Array.get t.slot flow = time)

(* Arm flow [i]'s RTO at absolute [time].  Like the lazy [Sim.timer],
   each flow keeps at most one tracked wheel entry ([slot]); arming
   later than the pending entry just moves the deadline cell and the
   entry chases it when it pops.  Invariant while armed: slot <=
   deadline. *)
let arm_rto t i time =
  Float.Array.set t.rto_deadline i time;
  if Float.Array.get t.slot i > time then begin
    set_slot t i time;
    wheel_insert t i time
  end

let restart_rto t i =
  if get_flag t i f_running && t.snd_una.(i) < t.snd_nxt.(i) then
    arm_rto t i (Engine.Sim.now t.sim +. current_rto t i)
  else cancel_rto t i

let on_rto t i =
  if get_flag t i f_running && t.snd_una.(i) < t.snd_nxt.(i) then begin
    t.n_to.(i) <- t.n_to.(i) + 1;
    Float.Array.set t.ssthresh i
      (Float.max 2. (t.cfg.rule.Window_cc.decrease (Float.Array.get t.cwnd i)));
    Float.Array.set t.cwnd i 1.;
    double_backoff t i;
    set_flag t i f_recovery false;
    set_dupacks t i 0;
    (* Go-back-N, as in the per-object sender. *)
    t.snd_nxt.(i) <- t.snd_una.(i);
    t.recover.(i) <- t.high_water.(i);
    Float.Array.set t.no_fastrtx_until i
      (Engine.Sim.now t.sim
      +.
      if get_flag t i f_rttvalid then Float.Array.get t.srtt i
      else t.cfg.min_rto);
    transmit t i ~seq:t.snd_nxt.(i);
    t.snd_nxt.(i) <- t.snd_nxt.(i) + 1;
    restart_rto t i
  end

(* Keep one physical [service] entry at the wheel minimum's exact
   (time, seq) position.  If the outstanding minimum is already at or
   before it, that entry covers the wheel min (it fires first, no-ops if
   stale, and re-ensures). *)
let ensure_service t =
  if not (Rto_wheel.is_empty t.wheel) then begin
    let tm = Rto_wheel.min_time t.wheel in
    let sm = Rto_wheel.min_seq t.wheel in
    if
      t.out_n = 0
      || tm < Float.Array.get t.out_times 0
      || (tm = Float.Array.get t.out_times 0 && sm < t.out_seqs.(0))
    then begin
      Engine.Sim.at_seq t.sim tm ~seq:sm t.service_fn;
      out_push t tm sm
    end
  end

(* A [service] entry fired.  The firing entry is the outstanding
   minimum; it is live iff its (time, seq) equals the wheel minimum's,
   in which case exactly ONE wheel entry pops — one logical timer entry
   per simulator event, exactly as per-flow timers behave, so same-time
   non-timer events with in-between seqs run in between.  A popped entry
   is live for its flow iff its time matches [slot] (time-only, the same
   test the lazy [Sim.timer] applies to its tracked entry); a live entry
   whose deadline moved later chases it with a fresh (time, seq), and
   stale entries and disarmed flows fall through. *)
let service t =
  let tf = Float.Array.get t.out_times 0 in
  let sf = t.out_seqs.(0) in
  out_drop_min t;
  (if not (Rto_wheel.is_empty t.wheel) then begin
     let tm = Rto_wheel.min_time t.wheel in
     let sm = Rto_wheel.min_seq t.wheel in
     if tm = tf && sm = sf then begin
       let i = Rto_wheel.take t.wheel in
       if Float.Array.get t.slot i = tf then begin
         set_slot t i Float.infinity;
         let d = Float.Array.get t.rto_deadline i in
         if d = tf then begin
           Float.Array.set t.rto_deadline i Float.infinity;
           on_rto t i
         end
         else if d < Float.infinity then begin
           set_slot t i d;
           wheel_insert t i d
         end
       end
     end
   end);
  ensure_service t

(* --- sender ----------------------------------------------------------- *)

let try_send t i =
  if get_flag t i f_running then begin
    while
      float_of_int (inflight t i) < Float.floor (effective_window t i)
    do
      transmit t i ~seq:t.snd_nxt.(i);
      t.snd_nxt.(i) <- t.snd_nxt.(i) + 1
    done;
    if Float.Array.get t.rto_deadline i = Float.infinity then restart_rto t i
  end

let sample_rtt t i ~acked_up_to =
  let ps = t.probe_seq.(i) in
  if ps >= 0 && acked_up_to > ps then begin
    t.probe_seq.(i) <- -1;
    let sample = Engine.Sim.now t.sim -. Float.Array.get t.probe_time i in
    if get_flag t i f_rttvalid then begin
      let srtt = Float.Array.get t.srtt i in
      Float.Array.set t.rttvar i
        ((0.75 *. Float.Array.get t.rttvar i)
        +. (0.25 *. Float.abs (srtt -. sample)));
      Float.Array.set t.srtt i ((0.875 *. srtt) +. (0.125 *. sample))
    end
    else begin
      Float.Array.set t.srtt i sample;
      Float.Array.set t.rttvar i (sample /. 2.);
      set_flag t i f_rttvalid true
    end
  end

let grow_window t i ~acked_pkts =
  let w = ref (Float.Array.get t.cwnd i) in
  let ss = Float.Array.get t.ssthresh i in
  for _ = 1 to acked_pkts do
    if !w < ss then w := !w +. 1.
    else w := !w +. (t.cfg.rule.Window_cc.increase !w /. !w)
  done;
  Float.Array.set t.cwnd i (Float.min !w t.cfg.max_window)

let congestion_decrease t i =
  let ss =
    Float.max 2. (t.cfg.rule.Window_cc.decrease (Float.Array.get t.cwnd i))
  in
  Float.Array.set t.ssthresh i ss;
  Float.Array.set t.cwnd i ss

let enter_fast_recovery t i =
  t.n_frtx.(i) <- t.n_frtx.(i) + 1;
  set_flag t i f_recovery true;
  t.recover.(i) <- t.snd_nxt.(i);
  set_flag t i f_partial false;
  congestion_decrease t i;
  transmit t i ~seq:t.snd_una.(i);
  restart_rto t i

let on_new_ack t i cum =
  let acked = cum - t.snd_una.(i) in
  sample_rtt t i ~acked_up_to:cum;
  t.snd_una.(i) <- cum;
  set_backoff_exp t i 0;
  if get_flag t i f_recovery then begin
    if cum > t.recover.(i) then begin
      set_flag t i f_recovery false;
      set_dupacks t i 0;
      restart_rto t i
    end
    else begin
      (* Partial ack: retransmit the next hole (NewReno); only the first
         partial ack restarts the retransmit timer ("Impatient"). *)
      transmit t i ~seq:t.snd_una.(i);
      set_dupacks t i (max 0 (dupacks t i - acked));
      if not (get_flag t i f_partial) then begin
        set_flag t i f_partial true;
        restart_rto t i
      end
    end
  end
  else begin
    set_dupacks t i 0;
    grow_window t i ~acked_pkts:acked;
    restart_rto t i
  end;
  try_send t i

let on_dup_ack t i =
  set_dupacks t i (dupacks t i + 1);
  if
    (not (get_flag t i f_recovery))
    && dupacks t i = 3
    && t.snd_una.(i) > t.recover.(i)
    && Engine.Sim.now t.sim >= Float.Array.get t.no_fastrtx_until i
  then enter_fast_recovery t i
  else try_send t i

let on_ecn t i =
  if t.cfg.react_to_ecn && t.snd_una.(i) > t.ecn_guard.(i) then begin
    congestion_decrease t i;
    t.ecn_guard.(i) <- t.snd_nxt.(i)
  end

let handle_ack t (pkt : Netsim.Packet.t) =
  let i = pkt.Netsim.Packet.flow - t.base in
  (if get_flag t i f_running then
     match pkt.Netsim.Packet.payload with
     | Netsim.Packet.Ack { cum_seq; sack = _ } ->
       if pkt.Netsim.Packet.ecn then on_ecn t i;
       if cum_seq > t.snd_una.(i) then on_new_ack t i cum_seq
       else if cum_seq = t.snd_una.(i) && t.snd_una.(i) < t.snd_nxt.(i) then
         on_dup_ack t i
       (* cum_seq < snd_una: stale ack from before a go-back-N rewind. *)
     | Netsim.Packet.Plain | Netsim.Packet.Rap_ack _
     | Netsim.Packet.Tfrc_data _ | Netsim.Packet.Tfrc_fb _
     | Netsim.Packet.Tear_fb _ ->
       ());
  Netsim.Packet.release pkt

(* --- sink ------------------------------------------------------------- *)

let send_ack t i =
  let ack =
    Netsim.Packet.alloc_ack ~size:t.cfg.ack_size ~flow:(flow_id t i)
      ~src:t.dst_id ~dst:t.src_id ~sent_at:(Engine.Sim.now t.sim)
      ~cum_seq:t.next_expected.(i) ~sack:[]
  in
  ack.Netsim.Packet.ecn <- get_flag t i f_ecn;
  set_flag t i f_ecn false;
  Netsim.Node.inject t.dst ack

(* Batching: acks generated within one event-loop instant coalesce per
   flow.  The flush event is scheduled at the current instant, so FIFO
   ordering runs it after every already-queued same-instant delivery but
   before the clock advances — one ack per flow per instant, carrying
   the fully advanced cumulative point and the OR of CE marks. *)
let flush_acks t =
  t.flush_at <- Float.nan;
  let count = t.pending_n in
  t.pending_n <- 0;
  for k = 0 to count - 1 do
    let i = t.pending.(k) in
    set_flag t i f_apending false;
    send_ack t i
  done

let queue_ack t i =
  if not (get_flag t i f_apending) then begin
    set_flag t i f_apending true;
    t.pending.(t.pending_n) <- i;
    t.pending_n <- t.pending_n + 1;
    let tnow = Engine.Sim.now t.sim in
    if t.flush_at <> tnow then begin
      t.flush_at <- tnow;
      Engine.Sim.at t.sim tnow t.flush_fn
    end
  end

let handle_data t (pkt : Netsim.Packet.t) =
  match pkt.Netsim.Packet.payload with
  | Netsim.Packet.Plain ->
    let i = pkt.Netsim.Packet.flow - t.base in
    t.rcv_pkts.(i) <- t.rcv_pkts.(i) + 1;
    if pkt.Netsim.Packet.ecn then set_flag t i f_ecn true;
    let seq = pkt.Netsim.Packet.seq in
    if seq = t.next_expected.(i) then begin
      t.next_expected.(i) <- seq + 1;
      (match t.ooo1.(i) with
      | -1 -> ()
      | -2 ->
        let ooo = ref (Hashtbl.find t.ooo_more i) in
        while IntSet.mem t.next_expected.(i) !ooo do
          ooo := IntSet.remove t.next_expected.(i) !ooo;
          t.next_expected.(i) <- t.next_expected.(i) + 1
        done;
        (match IntSet.cardinal !ooo with
        | 0 ->
          Hashtbl.remove t.ooo_more i;
          t.ooo1.(i) <- -1
        | 1 ->
          Hashtbl.remove t.ooo_more i;
          t.ooo1.(i) <- IntSet.min_elt !ooo
        | _ -> Hashtbl.replace t.ooo_more i !ooo)
      | s ->
        if s = t.next_expected.(i) then begin
          t.ooo1.(i) <- -1;
          t.next_expected.(i) <- s + 1
        end)
    end
    else if seq > t.next_expected.(i) then begin
      match t.ooo1.(i) with
      | -1 -> t.ooo1.(i) <- seq
      | -2 ->
        Hashtbl.replace t.ooo_more i
          (IntSet.add seq (Hashtbl.find t.ooo_more i))
      | s ->
        if s <> seq then begin
          t.ooo1.(i) <- -2;
          Hashtbl.replace t.ooo_more i (IntSet.add seq (IntSet.singleton s))
        end
    end;
    if t.cfg.ack_batching then queue_ack t i else send_ack t i
  | Netsim.Packet.Ack _ | Netsim.Packet.Rap_ack _ | Netsim.Packet.Tfrc_data _
  | Netsim.Packet.Tfrc_fb _ | Netsim.Packet.Tear_fb _ ->
    ()

(* --- construction / control ------------------------------------------- *)

let create ~sim ~src ~dst ~base ~n cfg =
  if n < 1 then invalid_arg "Flow_soa.create: n >= 1 required";
  if n > Rto_wheel.max_flows then
    invalid_arg "Flow_soa.create: n exceeds Rto_wheel.max_flows";
  if base < 0 then invalid_arg "Flow_soa.create: base >= 0 required";
  if cfg.initial_window < 1. then invalid_arg "Flow_soa: initial_window";
  let ssthresh0 =
    match cfg.initial_ssthresh with Some s -> s | None -> cfg.max_window
  in
  let t =
    {
      sim;
      cfg;
      src;
      dst;
      src_id = Netsim.Node.id src;
      dst_id = Netsim.Node.id dst;
      base;
      n;
      cwnd = Float.Array.make n cfg.initial_window;
      ssthresh = Float.Array.make n ssthresh0;
      srtt = Float.Array.make n 0.;
      rttvar = Float.Array.make n 0.;
      rto_deadline = Float.Array.make n Float.infinity;
      slot = Float.Array.make n Float.infinity;
      no_fastrtx_until = Float.Array.make n 0.;
      probe_time = Float.Array.make n 0.;
      snd_una = Array.make n 0;
      snd_nxt = Array.make n 0;
      high_water = Array.make n 0;
      recover = Array.make n (-1);
      probe_seq = Array.make n (-1);
      n_rtx = Array.make n 0;
      n_to = Array.make n 0;
      n_frtx = Array.make n 0;
      misc = Array.make n 0;
      ecn_guard = Array.make n 0;
      next_expected = Array.make n 0;
      rcv_pkts = Array.make n 0;
      ooo1 = Array.make n (-1);
      ooo_more = Hashtbl.create 16;
      wheel = Rto_wheel.create ();
      tracked = 0;
      out_times = Float.Array.make 8 0.;
      out_seqs = Array.make 8 0;
      out_n = 0;
      service_fn = ignore;
      pending = Array.make (if cfg.ack_batching then n else 1) 0;
      pending_n = 0;
      flush_at = Float.nan;
      flush_fn = ignore;
    }
  in
  t.service_fn <- (fun () -> service t);
  t.flush_fn <- (fun () -> flush_acks t);
  Netsim.Node.reserve src ~flows:(base + n);
  Netsim.Node.reserve dst ~flows:(base + n);
  let acks = handle_ack t and data = handle_data t in
  for i = 0 to n - 1 do
    Netsim.Node.attach src ~flow:(base + i) acks;
    Netsim.Node.attach dst ~flow:(base + i) data
  done;
  t

let start t i =
  if not (get_flag t i f_running) then begin
    set_flag t i f_running true;
    try_send t i
  end

let stop t i =
  set_flag t i f_running false;
  cancel_rto t i

(* --- stats ------------------------------------------------------------ *)

(* Derived rather than stored: every transmit either advances high_water
   by exactly one (new data) or bumps n_rtx (retransmission), so the
   struct-of-arrays layout drops two counters per flow. *)
let pkts_sent t i = t.high_water.(i) + t.n_rtx.(i)
let bytes_sent t i = float_of_int (pkts_sent t i * t.cfg.pkt_size)
let delivered_pkts t i = t.rcv_pkts.(i)
let bytes_delivered t i = float_of_int (t.rcv_pkts.(i) * t.cfg.pkt_size)
let srtt t i = Float.Array.get t.srtt i
let cwnd t i = Float.Array.get t.cwnd i
let timeouts t i = t.n_to.(i)
let fast_retransmits t i = t.n_frtx.(i)
let retransmitted_pkts t i = t.n_rtx.(i)

let stats t i =
  {
    Flow.sent_pkts = pkts_sent t i;
    sent_bytes = bytes_sent t i;
    delivered_bytes = bytes_delivered t i;
    rtx_pkts = t.n_rtx.(i);
    timeouts = t.n_to.(i);
    fast_rtx = t.n_frtx.(i);
    stat_srtt = Float.Array.get t.srtt i;
  }

(* --- wheel introspection (tests) -------------------------------------- *)

let wheel_size t = Rto_wheel.size t.wheel
let wheel_tracked t = t.tracked

(* --- state snapshot ----------------------------------------------------
   Same slice of sender state as [Window_cc.export_state]/[import_state]
   (the fast-forward re-seed contract), so hybrid-engine code and tests
   can move a flow between the two engines' representations. *)

let export_state t i =
  {
    Window_cc.s_cwnd = Float.Array.get t.cwnd i;
    s_ssthresh = Float.Array.get t.ssthresh i;
    s_snd_una = t.snd_una.(i);
    s_snd_nxt = t.snd_nxt.(i);
    s_high_water = t.high_water.(i);
    s_srtt = Float.Array.get t.srtt i;
    s_rttvar = Float.Array.get t.rttvar i;
    s_rtt_valid = get_flag t i f_rttvalid;
    s_backoff = backoff t i;
  }

let import_state t i (s : Window_cc.state) =
  Float.Array.set t.cwnd i s.Window_cc.s_cwnd;
  Float.Array.set t.ssthresh i s.s_ssthresh;
  t.snd_una.(i) <- s.s_snd_una;
  t.snd_nxt.(i) <- s.s_snd_nxt;
  t.high_water.(i) <- s.s_high_water;
  Float.Array.set t.srtt i s.s_srtt;
  Float.Array.set t.rttvar i s.s_rttvar;
  set_flag t i f_rttvalid s.s_rtt_valid;
  (let e = ref 0 in
   while !e < 6 && float_of_int (1 lsl !e) < s.s_backoff do
     incr e
   done;
   set_backoff_exp t i !e);
  (* Transient loss-recovery machinery is cleared, as in Window_cc. *)
  set_flag t i f_recovery false;
  set_flag t i f_partial false;
  set_dupacks t i 0;
  t.recover.(i) <- s.s_snd_una - 1;
  t.probe_seq.(i) <- -1;
  Float.Array.set t.no_fastrtx_until i 0.

let flow t i =
  {
    Flow.id = flow_id t i;
    protocol = t.cfg.rule.Window_cc.name;
    start = (fun () -> start t i);
    stop = (fun () -> stop t i);
    pkts_sent = (fun () -> pkts_sent t i);
    bytes_sent = (fun () -> bytes_sent t i);
    bytes_delivered = (fun () -> bytes_delivered t i);
    current_rate =
      (fun () ->
        let srtt = Float.Array.get t.srtt i in
        if get_flag t i f_rttvalid && srtt > 0. then
          Float.Array.get t.cwnd i *. float_of_int t.cfg.pkt_size /. srtt
        else 0.);
    srtt = (fun () -> Float.Array.get t.srtt i);
    stats = (fun () -> stats t i);
    (* SoA flows are driven in bulk by [ff_advance]/[export_state]; the
       per-flow closure interface stays fluid-free. *)
    ff = None;
  }
