(** Calendar wheel specialized to the consolidated RTO timer.

    A clone of {!Engine.Calendar_queue} whose payload (a flow index) and
    insertion seq share one word — [packed = seq lsl flow_bits lor flow]
    — so a pooled node is three parallel array slots (24 bytes) instead
    of four (32 bytes).  Ordering, bucketing, width estimation, and
    resize hysteresis are identical: simulator seqs are unique, so
    comparing packed words at equal times is exactly the (time, seq)
    order the per-object engine's timers pop in.

    [filter] supports the stale-entry bound: a caller that lazily
    re-arms timers (leaving orphaned entries behind) can sweep entries
    that no longer match its tracked deadline without perturbing the
    pop order of the survivors. *)

type t

(** Bits reserved for the flow index in the packed word. *)
val flow_bits : int

(** Exclusive upper bound on flow indexes: [1 lsl flow_bits]. *)
val max_flows : int

val create : unit -> t
val is_empty : t -> bool
val size : t -> int

(** Number of buckets currently in the ring (introspection / tests). *)
val buckets : t -> int

(** Insert an entry.  [seq] must come from the simulator's insertion
    counter ({!Engine.Sim.alloc_seq}); [flow] must be in
    [0 .. max_flows - 1].
    @raise Invalid_argument on a non-finite or negative time, a negative
    seq, or an out-of-range flow. *)
val add : t -> time:float -> seq:int -> flow:int -> unit

(** Earliest entry's time; NaN if empty (callers check {!is_empty}). *)
val min_time : t -> float

(** Earliest entry's seq. @raise Invalid_argument when empty. *)
val min_seq : t -> int

(** Remove the earliest entry and return its flow index.
    @raise Invalid_argument when empty. *)
val take : t -> int

(** Keep only entries satisfying [keep ~flow ~time]; O(size) rebuild.
    Survivors retain their (time, seq) keys and relative order. *)
val filter : t -> keep:(flow:int -> time:float -> bool) -> unit

val clear : t -> unit
