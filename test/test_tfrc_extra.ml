(* Additional TFRC behaviors: conservative cap after loss, history
   discounting end-to-end, expedited feedback, RTT heterogeneity. *)

let phased_fixture ?(seed = 7) ?(bandwidth = 20e6) ~phases ~cfg_of () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let make_queue () =
    Netsim.Loss_pattern.by_phase ~sim ~phases
      (Netsim.Droptail.make ~capacity:10000)
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let tfrc =
    Cc.Tfrc.create ~sim ~src ~dst ~flow:flow_id (cfg_of (Cc.Tfrc.default_config ~k:6))
  in
  (sim, tfrc)

let test_conservative_caps_after_loss_burst () =
  (* During a heavy-loss second, the conservative sender's allowed rate
     must immediately track the receive rate; without the option it may
     exceed it by up to 2x.  Compare the peak sending rates during the
     burst window. *)
  let run conservative =
    let sim, tfrc =
      phased_fixture
        ~phases:[ (20.0, 0); (2.0, 3); (100.0, 0) ]
        ~cfg_of:(fun c -> { c with Cc.Tfrc.conservative })
        ()
    in
    let flow = Cc.Tfrc.flow tfrc in
    flow.Cc.Flow.start ();
    let rate =
      Engine.Probe.sample_rate sim ~every:0.1 (fun () ->
          flow.Cc.Flow.bytes_sent ())
    in
    Engine.Sim.run ~until:23. sim;
    (* Peak sending rate during the burst (losses start at t=20). *)
    List.fold_left
      (fun acc (t, v) -> if t >= 20.5 && t < 22. then Float.max acc v else acc)
      0.
      (Engine.Timeseries.to_list rate)
  in
  let peak_cons = run true and peak_plain = run false in
  Alcotest.(check bool)
    (Printf.sprintf "conservative peak %.0f <= plain peak %.0f" peak_cons
       peak_plain)
    true
    (peak_cons <= peak_plain *. 1.05)

let test_history_discounting_speeds_recovery () =
  (* After a lossy phase ends, discounting lets the rate climb back
     faster. *)
  let run history_discounting =
    let sim, tfrc =
      phased_fixture
        ~phases:[ (15.0, 30); (200.0, 0) ]
        ~cfg_of:(fun c -> { c with Cc.Tfrc.history_discounting })
        ()
    in
    let flow = Cc.Tfrc.flow tfrc in
    flow.Cc.Flow.start ();
    Engine.Sim.run ~until:15. sim;
    let b0 = flow.Cc.Flow.bytes_delivered () in
    Engine.Sim.run ~until:45. sim;
    flow.Cc.Flow.bytes_delivered () -. b0
  in
  let with_disc = run true and plain = run false in
  Alcotest.(check bool)
    (Printf.sprintf "discounting %.0f >= plain %.0f" with_disc plain)
    true
    (with_disc >= plain *. 0.98)

let test_feedback_expedited_on_loss () =
  (* A new loss event triggers an immediate feedback packet rather than
     waiting for the next per-RTT report: the sender learns p quickly. *)
  let sim, tfrc =
    phased_fixture
      ~phases:[ (10.0, 0); (1.0, 5); (100.0, 0) ]
      ~cfg_of:Fun.id ()
  in
  (Cc.Tfrc.flow tfrc).Cc.Flow.start ();
  Engine.Sim.run ~until:10.3 sim;
  (* Within ~2 RTTs of the burst starting, the sender's estimate is
     already nonzero. *)
  Alcotest.(check bool) "sender knows about the loss" true
    (Cc.Tfrc.loss_event_rate tfrc > 0.)

let test_rtt_scaling () =
  (* Throughput of TFRC follows the equation's 1/R dependence: a flow
     with triple the RTT gets roughly a third of the rate at the same
     loss environment.  Run both against the same periodic loss. *)
  let run extra_delay =
    let sim = Engine.Sim.create () in
    let rng = Engine.Rng.create ~seed:7 in
    let make_queue () =
      Netsim.Loss_pattern.by_count ~pattern:[ 100 ]
        (Netsim.Droptail.make ~capacity:10000)
    in
    let config =
      {
        (Netsim.Dumbbell.default_config ~bandwidth:30e6) with
        Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
      }
    in
    let db = Netsim.Dumbbell.create ~sim ~rng config in
    let flow =
      Slowcc.Protocol.spawn ~extra_delay (Slowcc.Protocol.tfrc ~k:6 ()) db
    in
    flow.Cc.Flow.start ();
    Engine.Sim.run ~until:60. sim;
    flow.Cc.Flow.bytes_delivered ()
  in
  let short = run 0. and long = run 0.025 in
  let ratio = short /. Float.max 1. long in
  Alcotest.(check bool)
    (Printf.sprintf "50ms/150ms ratio %.2f in [1.5, 5]" ratio)
    true
    (ratio > 1.5 && ratio < 5.)

let test_nofb_recv_rate_dyadic_guard () =
  (* Regression pin for the no-feedback receive-rate computation: two
     feedback timers can fire at the same simulated instant (dyadic
     timestamps collide exactly, not approximately), making the elapsed
     window 0.  The rate must hold its previous value, never divide by
     zero into inf/nan. *)
  Alcotest.(check (float 0.)) "zero elapsed keeps previous" 123.
    (Cc.Tfrc.nofb_recv_rate ~bytes:4000 ~elapsed:0. ~prev:123.);
  Alcotest.(check bool) "never non-finite" true
    (Float.is_finite (Cc.Tfrc.nofb_recv_rate ~bytes:4000 ~elapsed:0. ~prev:0.));
  Alcotest.(check (float 1e-9)) "positive elapsed divides" 2000.
    (Cc.Tfrc.nofb_recv_rate ~bytes:4000 ~elapsed:2. ~prev:123.)

let suite =
  [
    Alcotest.test_case "no-feedback rate dyadic guard" `Quick
      test_nofb_recv_rate_dyadic_guard;
    Alcotest.test_case "conservative caps burst rate" `Slow
      test_conservative_caps_after_loss_burst;
    Alcotest.test_case "history discounting" `Slow
      test_history_discounting_speeds_recovery;
    Alcotest.test_case "feedback expedited on loss" `Quick
      test_feedback_expedited_on_loss;
    Alcotest.test_case "rtt scaling" `Slow test_rtt_scaling;
  ]
