(* The modern-CC protocol zoo: registration of the new families, spawn
   plumbing, and a directed differential-fuzz campaign that pushes BBR
   and Vegas flows through both topologies. *)

module Fuzz = Slowcc.Fuzz
module Protocol = Slowcc.Protocol
module Experiments = Slowcc.Experiments

let test_registered () =
  Alcotest.(check bool) "zoo-gauntlet in names" true
    (List.mem "zoo-gauntlet" Experiments.names);
  Alcotest.(check bool) "zoo-gauntlet is a unit" true
    (List.mem "zoo-gauntlet" Experiments.all_units);
  Alcotest.(check bool) "manifest params recorded" true
    (Experiments.params ~quick:true "zoo-gauntlet" <> [])

let test_protocol_names () =
  Alcotest.(check string) "bbr" "BBR" (Protocol.name Protocol.bbr);
  Alcotest.(check string) "vegas defaults" "VEGAS(2,4)"
    (Protocol.name (Protocol.vegas ()));
  Alcotest.(check string) "vegas custom" "VEGAS(1,3)"
    (Protocol.name (Protocol.vegas ~alpha:1. ~beta:3. ()))

let test_vegas_validation () =
  Alcotest.check_raises "beta < alpha"
    (Invalid_argument "Protocol.vegas: need 0 <= alpha <= beta") (fun () ->
      ignore (Protocol.vegas ~alpha:5. ~beta:2. ()))

let db_fixture () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:7 in
  let db =
    Netsim.Dumbbell.create ~sim ~rng
      (Netsim.Dumbbell.default_config ~bandwidth:8e6)
  in
  (sim, db)

let test_spawn_both_families () =
  let sim, db = db_fixture () in
  let b = Protocol.spawn Protocol.bbr db in
  let v = Protocol.spawn (Protocol.vegas ()) db in
  Alcotest.(check string) "bbr flow label" "BBR" b.Cc.Flow.protocol;
  Alcotest.(check string) "vegas flow label" "VEGAS" v.Cc.Flow.protocol;
  b.Cc.Flow.start ();
  v.Cc.Flow.start ();
  Engine.Sim.run ~until:5. sim;
  Alcotest.(check bool) "bbr delivers" true
    (b.Cc.Flow.bytes_delivered () > 100_000.);
  Alcotest.(check bool) "vegas delivers" true
    (v.Cc.Flow.bytes_delivered () > 100_000.)

let test_no_finite_transfers () =
  let _, db = db_fixture () in
  Alcotest.check_raises "bbr finite transfer"
    (Invalid_argument "Protocol.spawn: BBR flows are long-lived only")
    (fun () -> ignore (Protocol.spawn ~total_pkts:5 Protocol.bbr db));
  Alcotest.check_raises "vegas finite transfer"
    (Invalid_argument "Protocol.spawn: Vegas flows are long-lived only")
    (fun () -> ignore (Protocol.spawn ~total_pkts:5 (Protocol.vegas ()) db))

(* Directed scenarios: every seed carries one BBR and one Vegas flow
   (plus a TCP cross-flow on half of them), alternating dumbbell and
   parking-lot topologies and cycling the queue disciplines.  Each runs
   the fuzzer's full differential check — audited baseline vs the other
   event queue vs fresh shells — so byte-identical digests and zero
   audit violations across 100 seeds. *)
let zoo_scenario seed =
  let hops = 1 + (seed mod 3) in
  let topology =
    if seed mod 2 = 0 then Fuzz.Dumbbell else Fuzz.Parking_lot hops
  in
  let queue =
    match seed mod 3 with
    | 0 -> Netsim.Dumbbell.Red
    | 1 -> Netsim.Dumbbell.Droptail
    | _ -> Netsim.Dumbbell.Red_ecn
  in
  let flow proto rev src_site dst_site =
    { Fuzz.proto; rev; src_site; dst_site }
  in
  let flows =
    [
      flow Protocol.bbr false 0 hops;
      flow (Protocol.vegas ()) (seed mod 4 = 1) hops 0;
    ]
    @ (if seed mod 2 = 1 then [ flow (Protocol.tcp ~gamma:2.) false 0 hops ]
       else [])
  in
  {
    Fuzz.seed;
    topology;
    queue;
    bandwidth = 2e6 +. (float_of_int (seed mod 4) *. 2e6);
    rtt = 0.04 +. (0.02 *. float_of_int (seed mod 3));
    duration = 2.0;
    flows;
  }

let test_directed_fuzz_campaign () =
  Engine.Audit.reset_violations ();
  for seed = 0 to 99 do
    let sc = zoo_scenario seed in
    match Fuzz.check sc with
    | None -> ()
    | Some failure ->
      Alcotest.failf "seed %d (%s): %s" seed (Fuzz.describe sc) failure
  done;
  Alcotest.(check int) "no audit violations" 0
    (Engine.Audit.violation_count ())

let suite =
  [
    Alcotest.test_case "experiment registered" `Quick test_registered;
    Alcotest.test_case "protocol names" `Quick test_protocol_names;
    Alcotest.test_case "vegas parameter validation" `Quick
      test_vegas_validation;
    Alcotest.test_case "spawn both families" `Quick test_spawn_both_families;
    Alcotest.test_case "finite transfers rejected" `Quick
      test_no_finite_transfers;
    Alcotest.test_case "directed fuzz campaign (100 seeds)" `Slow
      test_directed_fuzz_campaign;
  ]
