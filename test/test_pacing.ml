(* The token-bucket pacer: emission spacing, idle/kick, live rate
   changes, scheduler identity, and the progress guarantee that fixed the
   sub-float-resolution re-arm loop. *)

type fixture = {
  sim : Engine.Sim.t;
  pacer : Cc.Pacing.t;
  times : float list ref;  (** emission instants, reverse order *)
  limit : int ref;  (** emit declines once this many packets went out *)
}

let mk ?(sched = Engine.Scheduler.Heap) ?(burst = 1.) ?(limit = max_int) () =
  let sim = Engine.Sim.create ~sched () in
  let times = ref [] in
  let limit = ref limit in
  let count = ref 0 in
  let emit () =
    if !count < !limit then begin
      incr count;
      times := Engine.Sim.now sim :: !times;
      true
    end
    else false
  in
  let pacer = Cc.Pacing.create ~sim ~burst ~emit () in
  { sim; pacer; times; limit }

let gaps times =
  match List.rev times with
  | [] | [ _ ] -> []
  | first :: rest ->
    let _, acc =
      List.fold_left (fun (prev, acc) t -> (t, (t -. prev) :: acc)) (first, [])
        rest
    in
    List.rev acc

let test_rate_spacing () =
  let f = mk () in
  Cc.Pacing.set_rate_pps f.pacer 100.;
  Cc.Pacing.start f.pacer;
  Engine.Sim.run ~until:0.995 f.sim;
  let n = Cc.Pacing.sends f.pacer in
  Alcotest.(check bool) (Printf.sprintf "%d sends in 1 s at 100 pps" n) true
    (n >= 99 && n <= 101);
  List.iter
    (fun g -> Alcotest.(check (float 1e-9)) "10 ms spacing" 0.01 g)
    (gaps !(f.times))

let test_idle_until_kick () =
  let f = mk ~limit:3 () in
  Cc.Pacing.set_rate_pps f.pacer 1000.;
  Cc.Pacing.start f.pacer;
  Engine.Sim.run ~until:1. f.sim;
  Alcotest.(check int) "emits until transport declines" 3
    (Cc.Pacing.sends f.pacer);
  Alcotest.(check bool) "idle after decline" true (Cc.Pacing.idle f.pacer);
  (* More data shows up: only [kick] wakes the pacer. *)
  f.limit := 5;
  Engine.Sim.run ~until:2. f.sim;
  Alcotest.(check int) "still asleep without a kick" 3
    (Cc.Pacing.sends f.pacer);
  Engine.Sim.at f.sim 2.5 (fun () -> Cc.Pacing.kick f.pacer);
  Engine.Sim.run ~until:3. f.sim;
  Alcotest.(check int) "kick resumes emission" 5 (Cc.Pacing.sends f.pacer)

let test_set_rate_rearms () =
  let f = mk () in
  Cc.Pacing.set_rate_pps f.pacer 100.;
  Cc.Pacing.start f.pacer;
  (* Double the rate halfway: ~50 + ~100 emissions over the second. *)
  Engine.Sim.at f.sim 0.5 (fun () -> Cc.Pacing.set_rate_pps f.pacer 200.);
  Engine.Sim.run ~until:0.995 f.sim;
  let n = Cc.Pacing.sends f.pacer in
  Alcotest.(check bool) (Printf.sprintf "%d sends across rate change" n) true
    (n >= 148 && n <= 152)

let test_rate_zero_disarms () =
  let f = mk () in
  Cc.Pacing.set_rate_pps f.pacer 100.;
  Cc.Pacing.start f.pacer;
  Engine.Sim.at f.sim 0.5 (fun () -> Cc.Pacing.set_rate_pps f.pacer 0.);
  Engine.Sim.run ~until:2. f.sim;
  let n = Cc.Pacing.sends f.pacer in
  Alcotest.(check bool) "stops near the cut" true (n >= 49 && n <= 52);
  Alcotest.(check bool) "timer disarmed" true (Cc.Pacing.idle f.pacer)

let test_stop_silences () =
  let f = mk () in
  Cc.Pacing.set_rate_pps f.pacer 100.;
  Cc.Pacing.start f.pacer;
  Engine.Sim.at f.sim 0.25 (fun () -> Cc.Pacing.stop f.pacer);
  Engine.Sim.run ~until:1. f.sim;
  Alcotest.(check bool) "no sends after stop" true
    (Cc.Pacing.sends f.pacer <= 26)

let run_trace sched =
  let f = mk ~sched () in
  Cc.Pacing.set_rate_pps f.pacer 237.;
  Cc.Pacing.start f.pacer;
  Engine.Sim.at f.sim 0.3 (fun () -> Cc.Pacing.set_rate_pps f.pacer 41.);
  Engine.Sim.at f.sim 0.7 (fun () -> Cc.Pacing.set_rate_pps f.pacer 512.);
  Engine.Sim.run ~until:1. f.sim;
  List.rev !(f.times)

let test_scheduler_identity () =
  (* Same emission instants, bit for bit, under both event queues —
     disarm/re-arm across calendar bucket boundaries included (the rate
     changes re-derive a pending wake-up in place). *)
  let heap = run_trace Engine.Scheduler.Heap in
  let calendar = run_trace Engine.Scheduler.Calendar in
  Alcotest.(check int) "same emission count" (List.length heap)
    (List.length calendar);
  List.iter2
    (fun a b -> Alcotest.(check (float 0.)) "identical instant" a b)
    heap calendar

let test_progress_at_float_resolution () =
  (* Regression: with tokens fractionally below 1, the wake-up delay
     [(1 - tokens) / rate] can be smaller than the float resolution at
     the current clock, so arming the timer for [now + delay] re-fires
     it at the same instant with nothing accrued — an infinite
     zero-advance loop.  The pacer must forgive sub-resolution deficits
     and emit instead of spinning. *)
  let f = mk ~limit:0 () in
  Cc.Pacing.set_rate_pps f.pacer 1e18;
  Engine.Sim.at f.sim 1.0 (fun () ->
      f.limit := 500;
      Cc.Pacing.start f.pacer);
  Engine.Sim.run ~until:2. f.sim;
  Alcotest.(check int) "all packets emitted" 500 (Cc.Pacing.sends f.pacer);
  Alcotest.(check bool) "then idle" true (Cc.Pacing.idle f.pacer)

let test_burst_validation () =
  let sim = Engine.Sim.create () in
  Alcotest.check_raises "burst < 1"
    (Invalid_argument "Pacing.create: burst must be >= 1") (fun () ->
      ignore (Cc.Pacing.create ~sim ~burst:0.5 ~emit:(fun () -> false) ()))

let suite =
  [
    Alcotest.test_case "rate spacing" `Quick test_rate_spacing;
    Alcotest.test_case "idle until kick" `Quick test_idle_until_kick;
    Alcotest.test_case "set_rate re-arms pending wakeup" `Quick
      test_set_rate_rearms;
    Alcotest.test_case "rate zero disarms" `Quick test_rate_zero_disarms;
    Alcotest.test_case "stop silences" `Quick test_stop_silences;
    Alcotest.test_case "heap/calendar identity" `Quick test_scheduler_identity;
    Alcotest.test_case "progress at float resolution" `Quick
      test_progress_at_float_resolution;
    Alcotest.test_case "burst validation" `Quick test_burst_validation;
  ]
