(* Unit and property tests for the event heap. *)

let check_float = Alcotest.(check (float 1e-9))

let test_empty () =
  let h = Engine.Event_heap.create () in
  Alcotest.(check bool) "empty" true (Engine.Event_heap.is_empty h);
  Alcotest.(check int) "size" 0 (Engine.Event_heap.size h);
  Alcotest.(check bool) "pop none" true (Engine.Event_heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Engine.Event_heap.peek_time h = None)

let test_ordering () =
  let h = Engine.Event_heap.create () in
  List.iter
    (fun t -> Engine.Event_heap.add h ~time:t t)
    [ 5.; 1.; 3.; 2.; 4. ];
  let rec drain acc =
    match Engine.Event_heap.pop h with
    | None -> List.rev acc
    | Some (t, _) -> drain (t :: acc)
  in
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 2.; 3.; 4.; 5. ] (drain [])

let test_fifo_ties () =
  let h = Engine.Event_heap.create () in
  List.iter (fun v -> Engine.Event_heap.add h ~time:1. v) [ "a"; "b"; "c" ];
  Engine.Event_heap.add h ~time:0.5 "first";
  let pop () =
    match Engine.Event_heap.pop h with
    | Some (_, v) -> v
    | None -> Alcotest.fail "unexpected empty heap"
  in
  Alcotest.(check string) "earliest" "first" (pop ());
  Alcotest.(check string) "fifo a" "a" (pop ());
  Alcotest.(check string) "fifo b" "b" (pop ());
  Alcotest.(check string) "fifo c" "c" (pop ())

let test_peek () =
  let h = Engine.Event_heap.create () in
  Engine.Event_heap.add h ~time:7. ();
  Engine.Event_heap.add h ~time:3. ();
  (match Engine.Event_heap.peek_time h with
  | Some t -> check_float "peek min" 3. t
  | None -> Alcotest.fail "peek");
  Alcotest.(check int) "peek does not remove" 2 (Engine.Event_heap.size h)

let test_clear () =
  let h = Engine.Event_heap.create () in
  for i = 1 to 10 do
    Engine.Event_heap.add h ~time:(float_of_int i) i
  done;
  Engine.Event_heap.clear h;
  Alcotest.(check bool) "cleared" true (Engine.Event_heap.is_empty h)

let test_take_min_time () =
  let h = Engine.Event_heap.create () in
  Alcotest.(check bool) "min_time empty is nan" true
    (Float.is_nan (Engine.Event_heap.min_time h));
  Alcotest.check_raises "take empty" (Invalid_argument "Event_heap.take: empty heap")
    (fun () -> ignore (Engine.Event_heap.take h));
  List.iter
    (fun (t, v) -> Engine.Event_heap.add h ~time:t v)
    [ (2., "b"); (1., "a"); (3., "c") ];
  check_float "min_time" 1. (Engine.Event_heap.min_time h);
  Alcotest.(check string) "take min" "a" (Engine.Event_heap.take h);
  check_float "min_time after take" 2. (Engine.Event_heap.min_time h);
  Alcotest.(check string) "take next" "b" (Engine.Event_heap.take h);
  Alcotest.(check string) "take last" "c" (Engine.Event_heap.take h);
  Alcotest.(check bool) "empty again" true (Engine.Event_heap.is_empty h)

let test_float_payloads () =
  (* Payloads of any type, including floats, survive the uniform value
     array underneath. *)
  let h = Engine.Event_heap.create () in
  List.iter (fun t -> Engine.Event_heap.add h ~time:t (t *. 10.)) [ 3.; 1.; 2. ];
  Alcotest.(check (list (float 0.)))
    "float values in order" [ 10.; 20.; 30. ]
    (List.init 3 (fun _ -> Engine.Event_heap.take h))

let test_rejects_nan () =
  let h = Engine.Event_heap.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_heap.add: non-finite time")
    (fun () -> Engine.Event_heap.add h ~time:Float.nan ())

let test_growth () =
  let h = Engine.Event_heap.create () in
  for i = 1000 downto 1 do
    Engine.Event_heap.add h ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "size" 1000 (Engine.Event_heap.size h);
  (match Engine.Event_heap.pop h with
  | Some (t, _) -> check_float "min after growth" 1. t
  | None -> Alcotest.fail "pop")

let prop_pop_sorted =
  QCheck2.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck2.Gen.(list (float_range 0. 1000.))
    (fun times ->
      let h = Engine.Event_heap.create () in
      List.iter (fun t -> Engine.Event_heap.add h ~time:t t) times;
      let rec drain acc =
        match Engine.Event_heap.pop h with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare times)

let prop_size_tracks =
  QCheck2.Test.make ~name:"heap size tracks adds and pops" ~count:100
    QCheck2.Gen.(list (float_range 0. 10.))
    (fun times ->
      let h = Engine.Event_heap.create () in
      List.iter (fun t -> Engine.Event_heap.add h ~time:t ()) times;
      let n = List.length times in
      let ok_after_add = Engine.Event_heap.size h = n in
      let rec pop_k k = if k > 0 then begin ignore (Engine.Event_heap.pop h); pop_k (k - 1) end in
      let half = n / 2 in
      pop_k half;
      ok_after_add && Engine.Event_heap.size h = n - half)

(* Explicit sequence numbers: the aggregating RTO wheel burns seqs with
   [alloc_seq] and inserts them later with [add_with_seq]; at equal
   timestamps entries must pop in burned-seq order regardless of the
   order the inserts actually happened. *)
let test_explicit_seq_order () =
  let h = Engine.Event_heap.create () in
  let s1 = Engine.Event_heap.alloc_seq h in
  let s2 = Engine.Event_heap.alloc_seq h in
  Engine.Event_heap.add_with_seq h ~time:1. ~seq:s2 "second";
  Engine.Event_heap.add h ~time:1. "third";
  Engine.Event_heap.add_with_seq h ~time:1. ~seq:s1 "first";
  Alcotest.(check int) "min_seq" s1 (Engine.Event_heap.min_seq h);
  let pop () =
    match Engine.Event_heap.pop h with
    | Some (_, v) -> v
    | None -> Alcotest.fail "unexpected empty heap"
  in
  Alcotest.(check string) "seq order 1" "first" (pop ());
  Alcotest.(check string) "seq order 2" "second" (pop ());
  Alcotest.(check string) "seq order 3" "third" (pop ())

let test_explicit_seq_rejects_unallocated () =
  let h = Engine.Event_heap.create () in
  Alcotest.check_raises "unallocated"
    (Invalid_argument "Event_heap.add_with_seq: seq was not allocated")
    (fun () -> Engine.Event_heap.add_with_seq h ~time:1. ~seq:7 ());
  Alcotest.check_raises "min_seq empty"
    (Invalid_argument "Event_heap.min_seq: empty heap") (fun () ->
      ignore (Engine.Event_heap.min_seq h))

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "explicit seq order" `Quick test_explicit_seq_order;
    Alcotest.test_case "explicit seq validation" `Quick
      test_explicit_seq_rejects_unallocated;
    Alcotest.test_case "time ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO tie-break" `Quick test_fifo_ties;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "take and min_time" `Quick test_take_min_time;
    Alcotest.test_case "float payloads" `Quick test_float_payloads;
    Alcotest.test_case "rejects NaN" `Quick test_rejects_nan;
    Alcotest.test_case "growth" `Quick test_growth;
    QCheck_alcotest.to_alcotest prop_pop_sorted;
    QCheck_alcotest.to_alcotest prop_size_tracks;
  ]
