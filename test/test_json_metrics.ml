(* Engine.Json emitter and Engine.Metrics registry. *)

module Json = Engine.Json
module Metrics = Engine.Metrics

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_scalars () =
  let check expected v =
    Alcotest.(check string) expected expected (Json.to_string ~minify:true v)
  in
  check "null" Json.Null;
  check "true" (Json.Bool true);
  check "false" (Json.Bool false);
  check "42" (Json.Int 42);
  check "-7" (Json.Int (-7));
  check "1.5" (Json.Float 1.5);
  check "3" (Json.Float 3.);
  check "\"hi\"" (Json.String "hi")

let test_json_nonfinite_floats () =
  (* NaN and infinities have no JSON representation; they degrade to null
     rather than emitting unparseable tokens. *)
  List.iter
    (fun v ->
      Alcotest.(check string) "non-finite -> null" "null"
        (Json.to_string ~minify:true (Json.Float v)))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_json_escaping () =
  let cases =
    [
      ("plain", "plain");
      ("with \"quotes\"", "with \\\"quotes\\\"");
      ("back\\slash", "back\\\\slash");
      ("line\nbreak", "line\\nbreak");
      ("tab\there", "tab\\there");
      ("cr\rhere", "cr\\rhere");
      ("bell\007", "bell\\u0007");
    ]
  in
  List.iter
    (fun (raw, escaped) ->
      Alcotest.(check string) raw escaped (Json.escape raw);
      Alcotest.(check string) ("quoted " ^ raw)
        ("\"" ^ escaped ^ "\"")
        (Json.to_string ~minify:true (Json.String raw)))
    cases

let test_json_nested () =
  let doc =
    Json.Obj
      [
        ("a", Json.List [ Json.Int 1; Json.Int 2 ]);
        ("b", Json.Obj [ ("c", Json.Null); ("d", Json.List []) ]);
      ]
  in
  Alcotest.(check string) "minified nesting"
    "{\"a\":[1,2],\"b\":{\"c\":null,\"d\":[]}}"
    (Json.to_string ~minify:true doc);
  (* Pretty mode carries the same content, just with layout. *)
  let strip s =
    String.concat ""
      (String.split_on_char '\n'
         (String.concat "" (String.split_on_char ' ' s)))
  in
  Alcotest.(check string) "pretty matches minified modulo whitespace"
    (strip (Json.to_string ~minify:true doc))
    (strip (Json.to_string doc))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "pkts" in
  Metrics.incr c;
  Metrics.incr ~by:9 c;
  Alcotest.(check int) "counted" 10 (Metrics.value c);
  (* Same name -> same cell. *)
  Metrics.incr (Metrics.counter reg "pkts");
  Alcotest.(check int) "get-or-create aliases" 11 (Metrics.value c)

let test_counter_saturates () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "big" in
  Metrics.incr ~by:max_int c;
  Metrics.incr ~by:max_int c;
  Alcotest.(check int) "saturates instead of wrapping" max_int
    (Metrics.value c);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Metrics.incr ~by:(-1) c)

let test_kind_collision () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "x");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: x already registered as a counter")
    (fun () -> ignore (Metrics.gauge reg "x"))

let test_snapshot_sorted_and_deterministic () =
  (* Two registries fed the same data in opposite registration order must
     serialize identically. *)
  let fill names reg =
    List.iter (fun n -> Metrics.incr ~by:3 (Metrics.counter reg n)) names;
    Metrics.set (Metrics.gauge reg "util") 0.5;
    Metrics.observe (Metrics.series reg "occ") 2.
  in
  let a = Metrics.create () and b = Metrics.create () in
  fill [ "zeta"; "alpha"; "mid" ] a;
  fill [ "mid"; "alpha"; "zeta" ] b;
  Alcotest.(check string) "order-independent bytes"
    (Json.to_string (Metrics.snapshot a))
    (Json.to_string (Metrics.snapshot b))

let test_snapshot_omits_unset () =
  let reg = Metrics.create () in
  ignore (Metrics.gauge reg "never-set");
  ignore (Metrics.series reg "never-observed");
  Metrics.incr (Metrics.counter reg "c");
  Alcotest.(check string) "only the counter appears"
    "{\"counters\":{\"c\":1},\"gauges\":{},\"series\":{}}"
    (Json.to_string ~minify:true (Metrics.snapshot reg))

(* ------------------------------------------------------------------ *)
(* Json parser                                                         *)
(* ------------------------------------------------------------------ *)

let json_testable =
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Json.to_string ~minify:true v))
    ( = )

let parse_ok s =
  match Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse of %S failed: %s" s e

let test_parse_scalars () =
  let check expected s =
    Alcotest.check json_testable s expected (parse_ok s)
  in
  check Json.Null "null";
  check (Json.Bool true) "true";
  check (Json.Bool false) " false ";
  check (Json.Int 42) "42";
  check (Json.Int (-7)) "-7";
  check (Json.Float 1.5) "1.5";
  check (Json.Float 2e3) "2e3";
  check (Json.Float (-0.25)) "-2.5e-1";
  check (Json.String "hi") "\"hi\"";
  check (Json.List []) "[]";
  check (Json.Obj []) "{}"

let test_parse_escapes () =
  Alcotest.check json_testable "escapes"
    (Json.String "a\"b\\c\nd\te/")
    (parse_ok "\"a\\\"b\\\\c\\nd\\te\\/\"");
  Alcotest.check json_testable "unicode bmp"
    (Json.String "\xc2\xb5 \xe2\x82\xac")
    (parse_ok "\"\\u00b5 \\u20ac\"")

let test_parse_nested () =
  Alcotest.check json_testable "nested"
    (Json.Obj
       [
         ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
         ("b", Json.Obj [ ("c", Json.Bool true) ]);
       ])
    (parse_ok {| { "a": [1, 2.5, null], "b": {"c": true} } |})

let test_parse_errors () =
  let rejects s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "expected %S to be rejected" s
    | Error _ -> ()
  in
  List.iter rejects
    [ ""; "{"; "[1,]"; "nul"; "\"unterminated"; "{\"a\" 1}"; "1 2"; "{1: 2}" ]

let test_parse_roundtrip () =
  (* Documents the emitter produces must parse back to themselves.  The
     one deliberate asymmetry: an integer-valued Float emits without a
     fraction, so it reparses as Int — hence the textual check for the
     whole doc and a structural check on a fraction-carrying subset. *)
  let doc =
    Json.Obj
      [
        ("schema", Json.String "slowcc-bench-engine/2");
        ( "micro_ns_per_run",
          Json.Obj [ ("a b", Json.Float 1234.5); ("c", Json.Null) ] );
        ("alloc_minor_words_per_sim_s", Json.Float 154905.);
        ("list", Json.List [ Json.Int 1; Json.Bool false; Json.String "x\n" ]);
      ]
  in
  let reprint s = Json.to_string ~minify:true (parse_ok s) in
  Alcotest.(check string)
    "textual fixpoint (pretty)"
    (Json.to_string ~minify:true doc)
    (reprint (Json.to_string doc));
  Alcotest.(check string)
    "textual fixpoint (minified)"
    (Json.to_string ~minify:true doc)
    (reprint (Json.to_string ~minify:true doc));
  let fractional =
    Json.Obj [ ("a", Json.Float 1234.5); ("b", Json.Float 1e-7) ]
  in
  Alcotest.check json_testable "structural on fractional floats" fractional
    (parse_ok (Json.to_string fractional))

let test_member () =
  let doc = parse_ok {| {"x": 1, "y": {"z": 2}} |} in
  Alcotest.check
    Alcotest.(option json_testable)
    "present" (Some (Json.Int 1)) (Json.member "x" doc);
  Alcotest.check Alcotest.(option json_testable) "absent" None
    (Json.member "q" doc);
  Alcotest.check
    Alcotest.(option json_testable)
    "non-object" None
    (Json.member "x" (Json.Int 3))

let test_series_stats () =
  let reg = Metrics.create () in
  let s = Metrics.series ~keep:2 reg "q" in
  List.iter (Metrics.observe s) [ 1.; 2.; 3.; 4. ];
  let st = Metrics.series_stats s in
  Alcotest.(check int) "count" 4 (Engine.Stats.count st);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Engine.Stats.mean st)

let suite =
  [
    Alcotest.test_case "json scalars" `Quick test_json_scalars;
    Alcotest.test_case "json non-finite floats" `Quick
      test_json_nonfinite_floats;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "json nesting" `Quick test_json_nested;
    Alcotest.test_case "parse scalars" `Quick test_parse_scalars;
    Alcotest.test_case "parse escapes" `Quick test_parse_escapes;
    Alcotest.test_case "parse nesting" `Quick test_parse_nested;
    Alcotest.test_case "parse rejects malformed" `Quick test_parse_errors;
    Alcotest.test_case "emit/parse round-trip" `Quick test_parse_roundtrip;
    Alcotest.test_case "member lookup" `Quick test_member;
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "counter saturation" `Quick test_counter_saturates;
    Alcotest.test_case "kind collision" `Quick test_kind_collision;
    Alcotest.test_case "snapshot determinism" `Quick
      test_snapshot_sorted_and_deterministic;
    Alcotest.test_case "snapshot omits unset" `Quick test_snapshot_omits_unset;
    Alcotest.test_case "series stats" `Quick test_series_stats;
  ]
