(* Hybrid fluid/packet fast-forward: mode plumbing, steady-state
   detector, analytic models, re-seed round-trips, and the controller's
   behavior on the quick scenario suite (never frozen across a scheduled
   transient; skips real simulated time when steady). *)

let tcp = Slowcc.Protocol.tcp ~gamma:2.

(* Run [f] with the process-wide fast-forward default forced to [mode],
   restoring the previous default afterwards (other suites depend on
   ff-off). *)
let with_ff mode f =
  let saved = Engine.Fastforward.get_default () in
  Engine.Fastforward.set_default mode;
  Fun.protect ~finally:(fun () -> Engine.Fastforward.set_default saved) f

(* --- mode gate --- *)

let test_mode_parse () =
  let open Engine.Fastforward in
  List.iter
    (fun (s, m) -> Alcotest.(check bool) s true (of_string s = Some m))
    [ ("off", Off); ("0", Off); ("false", Off); ("on", On); ("1", On);
      ("true", On); ("ff", On); ("ON", On) ];
  Alcotest.(check bool) "garbage" true (of_string "fast" = None);
  Alcotest.(check string) "to_string off" "off" (to_string Off);
  Alcotest.(check string) "to_string on" "on" (to_string On)

let test_mode_gates_sim () =
  with_ff Engine.Fastforward.Off (fun () ->
      let sim = Engine.Sim.create () in
      Alcotest.(check bool) "default off" true
        (Engine.Sim.fastforward sim = Engine.Fastforward.Off);
      let sim_on = Engine.Sim.create ~fastforward:Engine.Fastforward.On () in
      Alcotest.(check bool) "explicit on" true
        (Engine.Sim.fastforward sim_on = Engine.Fastforward.On));
  with_ff Engine.Fastforward.On (fun () ->
      let sim = Engine.Sim.create () in
      Alcotest.(check bool) "default follows global" true
        (Engine.Sim.fastforward sim = Engine.Fastforward.On))

(* --- detector --- *)

let observe_n det n ~loss ~occupancy ~rate =
  for _ = 1 to n do
    Engine.Fastforward.Detector.observe det ~loss ~occupancy ~rate
  done

let test_detector_stable_window () =
  let open Engine.Fastforward.Detector in
  let det = create () in
  Alcotest.(check bool) "empty unstable" false (stable det);
  observe_n det (default_config.window - 1) ~loss:0.02 ~occupancy:12.
    ~rate:4e5;
  Alcotest.(check bool) "partial window unstable" false (stable det);
  observe_n det 1 ~loss:0.02 ~occupancy:12. ~rate:4e5;
  Alcotest.(check bool) "full flat window stable" true (stable det);
  Alcotest.(check (float 1e-9)) "mean loss" 0.02 (mean_loss det);
  Alcotest.(check (float 1e-9)) "mean occupancy" 12. (mean_occupancy det);
  reset det;
  Alcotest.(check int) "reset drops samples" 0 (samples det);
  Alcotest.(check bool) "reset unstable" false (stable det)

let test_detector_rate_band_blocks_growth () =
  (* Slow-start shape: zero loss, empty queue, delivered rate doubling
     every sample.  Loss and occupancy are trivially flat; the rate band
     must keep the detector from arming. *)
  let open Engine.Fastforward.Detector in
  let det = create () in
  let rate = ref 1e4 in
  for _ = 1 to 2 * default_config.window do
    observe det ~loss:0. ~occupancy:0. ~rate:!rate;
    Alcotest.(check bool) "growth never stable" false (stable det);
    rate := !rate *. 2.
  done;
  (* Once the rate flattens out, the same detector may arm. *)
  observe_n det default_config.window ~loss:0. ~occupancy:0. ~rate:!rate;
  Alcotest.(check bool) "flat rate stable" true (stable det)

let test_detector_loss_band () =
  let open Engine.Fastforward.Detector in
  let det = create () in
  observe_n det (default_config.window - 1) ~loss:0.02 ~occupancy:10.
    ~rate:4e5;
  (* A loss spike far outside the relative band breaks stability. *)
  observe det ~loss:0.5 ~occupancy:10. ~rate:4e5;
  Alcotest.(check bool) "loss spike unstable" false (stable det)

(* --- analytic sawtooth --- *)

let test_sawtooth_matches_closed_form () =
  (* AIMD(1, 1/2) steady state: average window = sqrt(3/(2p)). *)
  List.iter
    (fun p ->
      match
        Cc.Window_cc.sawtooth_model
          ~rule:(Cc.Window_cc.aimd ~a:1. ~b:0.5)
          ~max_window:1e9 ~p
      with
      | None -> Alcotest.fail "sawtooth_model returned None"
      | Some (avg, peak) ->
        let expect = sqrt (3. /. (2. *. p)) in
        Alcotest.(check bool)
          (Printf.sprintf "avg near sqrt(3/2p) at p=%g" p)
          true
          (Float.abs (avg -. expect) /. expect < 0.15);
        Alcotest.(check bool) "peak above average" true (peak > avg))
    [ 0.001; 0.01; 0.05 ];
  Alcotest.(check bool) "p=0 undefined" true
    (Cc.Window_cc.sawtooth_model
       ~rule:(Cc.Window_cc.aimd ~a:1. ~b:0.5)
       ~max_window:1e9 ~p:0.
    = None)

(* --- re-seed round-trips --- *)

let db_fixture ?(bandwidth = 4e6) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:7 in
  let config = Netsim.Dumbbell.default_config ~bandwidth in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  (sim, db)

let test_window_cc_state_roundtrip () =
  let sim, db = db_fixture () in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let cfg =
    Cc.Window_cc.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5)
  in
  let a = Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg in
  (Cc.Window_cc.flow a).Cc.Flow.start ();
  Engine.Sim.run ~until:3. sim;
  let s = Cc.Window_cc.export_state a in
  Alcotest.(check bool) "snapshot progressed" true (s.Cc.Window_cc.s_snd_una > 0);
  Cc.Window_cc.import_state a s;
  let s' = Cc.Window_cc.export_state a in
  Alcotest.(check bool) "import/export fixpoint" true (s = s')

let test_flow_soa_state_roundtrip () =
  (* Export from the per-object engine's twin, import into SoA slot 0,
     and read it back: the re-seed slice must survive the transfer. *)
  let p = { (Slowcc.Manyflow.default_params ~n:4) with
            Slowcc.Manyflow.duration = 2.; warmup = 0. } in
  let b = Slowcc.Manyflow.build_soa p in
  Engine.Sim.run ~until:2. b.Slowcc.Manyflow.sim;
  let eng = b.Slowcc.Manyflow.eng in
  let s = Cc.Flow_soa.export_state eng 0 in
  Alcotest.(check bool) "soa snapshot progressed" true
    (s.Cc.Window_cc.s_snd_una > 0);
  Cc.Flow_soa.import_state eng 1 s;
  let s' = Cc.Flow_soa.export_state eng 1 in
  Alcotest.(check bool) "soa import/export fixpoint" true (s = s')

(* --- controller on the quick scenarios --- *)

(* No armed interval may contain a scheduled transient: each Arm's
   matching Thaw must land at or before the next transient after the
   arm (the controller aims [guard] seconds earlier; allow the guard as
   slack, not more). *)
let check_freeze_intervals ~what ~transients ff =
  let next_after t =
    List.fold_left
      (fun acc x -> if x > t && x < acc then x else acc)
      Float.infinity transients
  in
  let rec walk = function
    | (ta, Slowcc.Fluid.Arm) :: ((tt, Slowcc.Fluid.Thaw) :: _ as rest) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: thaw %.2f before transient after arm %.2f" what
           tt ta)
        true
        (tt <= next_after ta +. 1e-9);
      walk rest
    | _ :: rest -> walk rest
    | [] -> ()
  in
  walk (Slowcc.Fluid.events ff);
  (* A controller must never still be armed when the run ends mid-freeze
     counts as one open interval at most. *)
  Alcotest.(check bool) (what ^ ": entries >= exits") true
    (Slowcc.Fluid.entries ff >= Slowcc.Fluid.exits ff
    && Slowcc.Fluid.entries ff - Slowcc.Fluid.exits ff <= 1)

let test_square_wave_ff_arms () =
  with_ff Engine.Fastforward.On (fun () ->
      let r =
        Slowcc.Scenarios.square_wave ~measure:80. ~flows:[ (tcp, 4) ]
          ~bandwidth:4e6 ~cbr_fraction:(2. /. 3.) ~period:40. ()
      in
      match r.Slowcc.Scenarios.sw_ff with
      | None -> Alcotest.fail "ff-on run has no controller"
      | Some ff ->
        Alcotest.(check bool) "arms at least once" true
          (Slowcc.Fluid.entries ff >= 1);
        Alcotest.(check bool) "skips simulated time" true
          (Slowcc.Fluid.skipped_sim_seconds ff > 1.);
        let edges = [ 20.; 40.; 60.; 80.; 100. ] in
        check_freeze_intervals ~what:"square" ~transients:edges ff;
        (* Fidelity: the hybrid answer stays in the same regime as the
           exact one (loose tolerance; the digest policy only promises
           weak convergence). *)
        Alcotest.(check bool) "utilization sane" true
          (r.Slowcc.Scenarios.utilization > 0.3
          && r.Slowcc.Scenarios.utilization < 1.2))

let test_square_wave_ff_off_inert () =
  with_ff Engine.Fastforward.Off (fun () ->
      let r =
        Slowcc.Scenarios.square_wave ~measure:20. ~flows:[ (tcp, 2) ]
          ~bandwidth:4e6 ~cbr_fraction:(2. /. 3.) ~period:10. ()
      in
      Alcotest.(check bool) "no controller when off" true
        (r.Slowcc.Scenarios.sw_ff = None))

let test_cbr_restart_ff_respects_transients () =
  with_ff Engine.Fastforward.On (fun () ->
      let r =
        Slowcc.Scenarios.cbr_restart ~n_flows:4 ~duration:220. ~protocol:tcp
          ~bandwidth:6e6 ()
      in
      match r.Slowcc.Scenarios.ff with
      | None -> Alcotest.fail "ff-on run has no controller"
      | Some ff ->
        check_freeze_intervals ~what:"cbr_restart"
          ~transients:[ 0.; 150.; 180. ] ff;
        Alcotest.(check bool) "arms in the long steady phases" true
          (Slowcc.Fluid.entries ff >= 1))

let test_flash_crowd_ff_respects_transients () =
  with_ff Engine.Fastforward.On (fun () ->
      let r =
        Slowcc.Scenarios.flash_crowd ~n_bg:4 ~duration:60. ~protocol:tcp
          ~bandwidth:6e6 ()
      in
      match r.Slowcc.Scenarios.fc_ff with
      | None -> Alcotest.fail "ff-on run has no controller"
      | Some ff ->
        check_freeze_intervals ~what:"flash_crowd" ~transients:[ 25. ] ff)

(* --- speed: ff-on must process far fewer events when steady --- *)

let test_ff_reduces_events () =
  let run mode =
    with_ff mode (fun () ->
        let sim = Engine.Sim.create () in
        let rng = Engine.Rng.create ~seed:11 in
        let db =
          Netsim.Dumbbell.create ~sim ~rng
            (Netsim.Dumbbell.default_config ~bandwidth:4e6)
        in
        let cfg =
          Cc.Window_cc.default_config
            (Cc.Window_cc.tcp_compatible_aimd ~b:0.5)
        in
        let flows =
          List.init 4 (fun _ ->
              let src, dst = Netsim.Dumbbell.add_host_pair db in
              let flow_id = Netsim.Dumbbell.fresh_flow db in
              let t = Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg in
              let f = Cc.Window_cc.flow t in
              f.Cc.Flow.start ();
              f)
        in
        let ff =
          Slowcc.Fluid.maybe_attach ~sim
            ~link:(Netsim.Dumbbell.bottleneck db)
            ~flows ~transients:[] ()
        in
        Engine.Sim.run ~until:300. sim;
        (Engine.Sim.events_processed sim, ff))
  in
  let exact, _ = run Engine.Fastforward.Off in
  let hybrid, ff = run Engine.Fastforward.On in
  (match ff with
  | None -> Alcotest.fail "no controller attached"
  | Some ff ->
    Alcotest.(check bool) "controller armed" true (Slowcc.Fluid.entries ff >= 1);
    Alcotest.(check bool) "most sim time skipped" true
      (Slowcc.Fluid.skipped_sim_seconds ff > 150.));
  Alcotest.(check bool)
    (Printf.sprintf "hybrid processes <40%% of events (%d vs %d)" hybrid exact)
    true
    (float_of_int hybrid < 0.4 *. float_of_int exact)

(* --- cache keys (ff mode is key material) --- *)

let test_ff_mode_changes_cache_key () =
  let params mode =
    with_ff mode (fun () -> Slowcc.Experiments.params ~quick:true "fig7")
  in
  let p_off = params Engine.Fastforward.Off in
  let p_on = params Engine.Fastforward.On in
  Alcotest.(check bool) "off params carry no ff field" false
    (List.mem_assoc "fastforward" p_off);
  Alcotest.(check bool) "on params carry ff field" true
    (List.mem_assoc "fastforward" p_on);
  let dir = Filename.temp_file "slowcc_ffkey" "" in
  Sys.remove dir;
  let cache = Slowcc.Result_cache.create ~fingerprint:"fixed" ~dir () in
  let key params =
    Slowcc.Result_cache.key cache ~experiment:"fig7" ~quick:true ~params
  in
  Alcotest.(check bool) "distinct cache keys" true (key p_off <> key p_on);
  Slowcc.Result_cache.clear ~dir

let suite =
  [
    Alcotest.test_case "mode parse" `Quick test_mode_parse;
    Alcotest.test_case "mode gates sim" `Quick test_mode_gates_sim;
    Alcotest.test_case "detector window" `Quick test_detector_stable_window;
    Alcotest.test_case "detector rate band" `Quick
      test_detector_rate_band_blocks_growth;
    Alcotest.test_case "detector loss band" `Quick test_detector_loss_band;
    Alcotest.test_case "sawtooth closed form" `Quick
      test_sawtooth_matches_closed_form;
    Alcotest.test_case "window_cc state roundtrip" `Quick
      test_window_cc_state_roundtrip;
    Alcotest.test_case "flow_soa state roundtrip" `Quick
      test_flow_soa_state_roundtrip;
    Alcotest.test_case "square wave arms" `Slow test_square_wave_ff_arms;
    Alcotest.test_case "square wave ff-off inert" `Quick
      test_square_wave_ff_off_inert;
    Alcotest.test_case "cbr restart transients" `Slow
      test_cbr_restart_ff_respects_transients;
    Alcotest.test_case "flash crowd transients" `Slow
      test_flash_crowd_ff_respects_transients;
    Alcotest.test_case "ff reduces events" `Slow test_ff_reduces_events;
    Alcotest.test_case "ff mode changes cache key" `Quick
      test_ff_mode_changes_cache_key;
  ]
