(* Link transmission timing, pipelining, counters, drops. *)

let mk_pkt ?(size = 1000) seq =
  Netsim.Packet.make ~size ~seq ~flow:0 ~src:0 ~dst:1 ~sent_at:0. ()

let fixture ?(bandwidth = 8e6) ?(delay = 0.01) ?(capacity = 100) () =
  let sim = Engine.Sim.create () in
  let link =
    Netsim.Link.make ~sim ~bandwidth ~delay
      ~queue:(Netsim.Droptail.make ~capacity)
  in
  (sim, link)

let test_tx_time () =
  let _, link = fixture ~bandwidth:8e6 () in
  (* 1000 bytes at 8 Mbps = 1 ms. *)
  Alcotest.(check (float 1e-12)) "serialization" 0.001
    (Netsim.Link.tx_time link ~bytes:1000)

let test_delivery_time () =
  let sim, link = fixture ~bandwidth:8e6 ~delay:0.01 () in
  let arrival = ref 0. in
  Netsim.Link.connect link (fun _ -> arrival := Engine.Sim.now sim);
  Netsim.Link.send link (mk_pkt 1);
  Engine.Sim.run sim;
  (* tx 1ms + prop 10ms. *)
  Alcotest.(check (float 1e-9)) "arrival" 0.011 !arrival

let test_pipelining () =
  let sim, link = fixture ~bandwidth:8e6 ~delay:0.1 () in
  let arrivals = ref [] in
  Netsim.Link.connect link (fun pkt ->
      arrivals := (pkt.Netsim.Packet.seq, Engine.Sim.now sim) :: !arrivals);
  Netsim.Link.send link (mk_pkt 1);
  Netsim.Link.send link (mk_pkt 2);
  Engine.Sim.run sim;
  (* Second packet rides the wire behind the first: arrivals 1 tx apart,
     not 1 tx + 1 prop. *)
  match List.rev !arrivals with
  | [ (1, t1); (2, t2) ] ->
    Alcotest.(check (float 1e-9)) "first" 0.101 t1;
    Alcotest.(check (float 1e-9)) "pipelined second" 0.102 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_ordering_preserved () =
  let sim, link = fixture () in
  let seqs = ref [] in
  Netsim.Link.connect link (fun pkt ->
      seqs := pkt.Netsim.Packet.seq :: !seqs);
  for i = 1 to 20 do
    Netsim.Link.send link (mk_pkt i)
  done;
  Engine.Sim.run sim;
  Alcotest.(check (list int)) "fifo" (List.init 20 (fun i -> i + 1))
    (List.rev !seqs)

let test_counters_and_drops () =
  let sim, link = fixture ~capacity:5 () in
  Netsim.Link.connect link (fun _ -> ());
  let dropped = ref [] in
  Netsim.Link.on_drop link (fun pkt ->
      dropped := pkt.Netsim.Packet.seq :: !dropped);
  for i = 1 to 10 do
    Netsim.Link.send link (mk_pkt i)
  done;
  Engine.Sim.run sim;
  Alcotest.(check int) "arrivals" 10 (Netsim.Link.arrivals link);
  (* One packet goes straight to the transmitter; 5 queue; the rest drop. *)
  Alcotest.(check int) "drops" 4 (Netsim.Link.drops link);
  Alcotest.(check int) "departures" 6 (Netsim.Link.departures link);
  Alcotest.(check (float 0.)) "bytes out" 6000. (Netsim.Link.bytes_out link);
  Alcotest.(check int) "drop hook saw them" 4 (List.length !dropped)

let test_throughput_matches_bandwidth () =
  let sim, link = fixture ~bandwidth:1e6 ~delay:0. ~capacity:10000 () in
  Netsim.Link.connect link (fun _ -> ());
  (* Offer 2x the link rate for 10 seconds. *)
  Engine.Sim.every sim ~interval:0.004 ~stop:10. (fun () ->
      Netsim.Link.send link (mk_pkt 0));
  Engine.Sim.run ~until:10. sim;
  let mbps = Netsim.Link.bytes_out link *. 8. /. 10. /. 1e6 in
  Alcotest.(check bool) "saturated at capacity" true
    (mbps > 0.95 && mbps <= 1.001)

let test_validation () =
  let sim = Engine.Sim.create () in
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Link.make: bandwidth must be positive") (fun () ->
      ignore
        (Netsim.Link.make ~sim ~bandwidth:0. ~delay:0.
           ~queue:(Netsim.Droptail.make ~capacity:1)))

let test_counters_and_metrics () =
  (* A 2-packet queue fed 10 back-to-back packets drops the overflow; the
     link's counters and a Metrics registry snapshot agree. *)
  let sim, link = fixture ~bandwidth:8e6 ~delay:0.001 ~capacity:2 () in
  Netsim.Link.connect link ignore;
  let registry = Engine.Metrics.create () in
  let refresh = Netsim.Link.register_metrics link registry ~prefix:"btl" in
  for i = 1 to 10 do
    Netsim.Link.send link (mk_pkt i)
  done;
  Engine.Sim.run sim;
  refresh ();
  let counters = Netsim.Link.counters link in
  let get k = List.assoc k counters in
  Alcotest.(check int) "arrivals" 10 (get "arrivals");
  Alcotest.(check int) "conservation" 10 (get "departures" + get "drops");
  Alcotest.(check bool) "drops happened" true (get "drops" > 0);
  Alcotest.(check int) "queue discipline counted enqueues"
    (get "departures") (get "droptail.enqueued");
  Alcotest.(check int) "registry mirrors the link" (get "drops")
    (Engine.Metrics.value (Engine.Metrics.counter registry "btl.drops"));
  let util =
    Engine.Metrics.level (Engine.Metrics.gauge registry "btl.utilization")
  in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f sane" util)
    true
    (util > 0.5 && util <= 1.0)

let test_flow_stats_record () =
  (* The uniform per-flow stats record: a clean TCP run delivers what it
     sends (minus in-flight), retransmits nothing, and reports its srtt. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  let db =
    Netsim.Dumbbell.create ~sim ~rng
      (Netsim.Dumbbell.default_config ~bandwidth:50e6)
  in
  let flow = Slowcc.Protocol.spawn (Slowcc.Protocol.tcp ~gamma:2.) db in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:2. sim;
  let s = flow.Cc.Flow.stats () in
  Alcotest.(check bool) "sent packets" true (s.Cc.Flow.sent_pkts > 100);
  Alcotest.(check bool) "delivered most of what was sent" true
    (s.Cc.Flow.delivered_bytes > 0.9 *. s.Cc.Flow.sent_bytes);
  Alcotest.(check bool) "srtt near the 50 ms base RTT" true
    (s.Cc.Flow.stat_srtt > 0.04 && s.Cc.Flow.stat_srtt < 0.1);
  (* json_of_stats emits every field as a finite number. *)
  match Cc.Flow.json_of_stats s with
  | Engine.Json.Obj fields ->
    Alcotest.(check int) "seven fields" 7 (List.length fields)
  | _ -> Alcotest.fail "stats must serialize to an object"

let test_queue_delay_exact () =
  (* 1000 bytes at 8 Mbps = 1 ms serialization.  Three back-to-back
     packets wait 0, 1 and 2 ms behind each other; FIFO order plus
     drop-at-enqueue makes the hook's samples exact, not estimates. *)
  let sim, link = fixture ~bandwidth:8e6 () in
  Netsim.Link.connect link ignore;
  let samples = ref [] in
  Netsim.Link.on_queue_delay link (fun pkt d ->
      samples := (pkt.Netsim.Packet.seq, d) :: !samples);
  for i = 1 to 3 do
    Netsim.Link.send link (mk_pkt i)
  done;
  Engine.Sim.run sim;
  (match List.rev !samples with
  | [ (1, d1); (2, d2); (3, d3) ] ->
    Alcotest.(check (float 1e-12)) "head of line" 0. d1;
    Alcotest.(check (float 1e-12)) "one serialization" 0.001 d2;
    Alcotest.(check (float 1e-12)) "two serializations" 0.002 d3
  | l -> Alcotest.failf "expected 3 samples, got %d" (List.length l));
  Netsim.Link.check_conservation link

let test_queue_delay_midstream_registration () =
  (* Packets already queued when the hook registers have no recorded
     enqueue time; they must be skipped, and every later packet must
     still line up with its own timestamp. *)
  let sim, link = fixture ~bandwidth:8e6 () in
  Netsim.Link.connect link ignore;
  Netsim.Link.send link (mk_pkt 1);
  Netsim.Link.send link (mk_pkt 2);
  (* seq 1 is on the wire, seq 2 is sitting in the queue. *)
  let samples = ref [] in
  Netsim.Link.on_queue_delay link (fun pkt d ->
      samples := (pkt.Netsim.Packet.seq, d) :: !samples);
  Netsim.Link.send link (mk_pkt 3);
  Engine.Sim.run sim;
  (match List.rev !samples with
  | [ (3, d3) ] ->
    (* Enqueued at t=0 behind 2 ms of backlog. *)
    Alcotest.(check (float 1e-12)) "post-registration packet" 0.002 d3
  | l -> Alcotest.failf "expected 1 sample, got %d" (List.length l));
  Netsim.Link.check_conservation link

let test_queue_delay_hook_is_neutral () =
  (* The hook observes; it must not perturb the simulation.  Identical
     seeds with and without a registered hook deliver identical bytes. *)
  let run_once ~hook =
    let sim = Engine.Sim.create () in
    let rng = Engine.Rng.create ~seed:11 in
    let db =
      Netsim.Dumbbell.create ~sim ~rng
        (Netsim.Dumbbell.default_config ~bandwidth:8e6)
    in
    if hook then
      Netsim.Link.on_queue_delay (Netsim.Dumbbell.bottleneck db) (fun _ _ ->
          ());
    let flow = Slowcc.Protocol.spawn (Slowcc.Protocol.tcp ~gamma:2.) db in
    flow.Cc.Flow.start ();
    Engine.Sim.run ~until:5. sim;
    (flow.Cc.Flow.bytes_delivered (), Engine.Sim.events_processed sim)
  in
  let bare = run_once ~hook:false and hooked = run_once ~hook:true in
  Alcotest.(check (float 0.)) "same delivery" (fst bare) (fst hooked);
  Alcotest.(check int) "same event count" (snd bare) (snd hooked)

let suite =
  [
    Alcotest.test_case "serialization time" `Quick test_tx_time;
    Alcotest.test_case "queue delay samples exact" `Quick
      test_queue_delay_exact;
    Alcotest.test_case "queue delay mid-stream registration" `Quick
      test_queue_delay_midstream_registration;
    Alcotest.test_case "queue delay hook is neutral" `Quick
      test_queue_delay_hook_is_neutral;
    Alcotest.test_case "counters and metrics registry" `Quick
      test_counters_and_metrics;
    Alcotest.test_case "per-flow stats record" `Quick test_flow_stats_record;
    Alcotest.test_case "delivery time" `Quick test_delivery_time;
    Alcotest.test_case "pipelined propagation" `Quick test_pipelining;
    Alcotest.test_case "ordering preserved" `Quick test_ordering_preserved;
    Alcotest.test_case "counters and drops" `Quick test_counters_and_drops;
    Alcotest.test_case "throughput at capacity" `Quick
      test_throughput_matches_bandwidth;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
