(* Deterministic reservoir sampling: fixed-seed reproducibility, uniform
   inclusion, and independence from worker-pool width (each sampler owns
   its Rng, so --jobs must never change a sample). *)

module R = Engine.Reservoir

let offer_range r n =
  for i = 0 to n - 1 do
    R.offer r i
  done

let sample ~seed ~k n =
  let r = R.create ~rng:(Engine.Rng.create ~seed) ~k in
  offer_range r n;
  List.sort compare (R.to_list r)

let test_fixed_seed_deterministic () =
  let a = sample ~seed:42 ~k:16 1000 in
  let b = sample ~seed:42 ~k:16 1000 in
  Alcotest.(check (list int)) "same seed, same sample" a b;
  let c = sample ~seed:43 ~k:16 1000 in
  Alcotest.(check bool) "different seed, different sample" true (a <> c)

let test_size_and_seen () =
  let r = R.create ~rng:(Engine.Rng.create ~seed:1) ~k:5 in
  offer_range r 3;
  Alcotest.(check int) "partial fill size" 3 (R.size r);
  Alcotest.(check int) "partial fill seen" 3 (R.seen r);
  Alcotest.(check (list int))
    "short stream kept verbatim" [ 0; 1; 2 ]
    (List.sort compare (R.to_list r));
  offer_range r 97;
  Alcotest.(check int) "capped at k" 5 (R.size r);
  Alcotest.(check int) "seen counts every offer" 100 (R.seen r)

let test_create_rejects_bad_k () =
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Reservoir.create: k >= 1 required") (fun () ->
      ignore (R.create ~rng:(Engine.Rng.create ~seed:1) ~k:0))

let test_indices_shape () =
  let idx = R.indices ~rng:(Engine.Rng.create ~seed:7) ~k:32 1000 in
  Alcotest.(check int) "k indices" 32 (Array.length idx);
  Array.iter
    (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 1000))
    idx;
  let sorted = Array.to_list idx in
  Alcotest.(check (list int)) "sorted ascending" (List.sort compare sorted)
    sorted;
  Alcotest.(check int) "distinct"
    (List.length (List.sort_uniq compare sorted))
    (List.length sorted)

let test_indices_small_n () =
  let idx = R.indices ~rng:(Engine.Rng.create ~seed:7) ~k:32 5 in
  Alcotest.(check (list int))
    "k >= n keeps everything" [ 0; 1; 2; 3; 4 ] (Array.to_list idx)

(* Uniformity: over many independent seeds, every index of [0, n) must
   be included with empirical frequency close to k/n.  With 2000 trials,
   n = 20, k = 5, each index is a Binomial(2000, 0.25): mean 500,
   sigma ~ 19.4; a +-100 band is > 5 sigma, so a correct implementation
   fails with negligible probability while an off-by-one in Algorithm R's
   acceptance bound (the classic bug, biasing early or late elements)
   shifts some count by ~10 sigma. *)
let test_uniform_inclusion () =
  let n = 20 and k = 5 and trials = 2000 in
  let counts = Array.make n 0 in
  for seed = 0 to trials - 1 do
    Array.iter
      (fun i -> counts.(i) <- counts.(i) + 1)
      (R.indices ~rng:(Engine.Rng.create ~seed) ~k n)
  done;
  let expected = trials * k / n in
  Array.iteri
    (fun i c ->
      if abs (c - expected) > 100 then
        Alcotest.failf "index %d included %d times (expected %d +- 100)" i c
          expected)
    counts

let prop_indices_well_formed =
  QCheck2.Test.make ~name:"indices are sorted distinct in-range" ~count:100
    QCheck2.Gen.(triple (int_range 1 64) (int_range 1 200) (int_range 0 9999))
    (fun (k, n, seed) ->
      let idx = R.indices ~rng:(Engine.Rng.create ~seed) ~k n in
      let l = Array.to_list idx in
      Array.length idx = min k n
      && List.sort_uniq compare l = l
      && List.for_all (fun i -> i >= 0 && i < n) l)

(* The property the sampled many-flow stats rely on: the sample is a
   function of the seed alone, so computing it inside a worker pool at
   any width gives the byte-identical result. *)
let test_stable_across_jobs () =
  let job seed () = sample ~seed ~k:16 1000 in
  let serial = List.map (fun s -> job s ()) [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let pooled =
    Engine.Pool.with_pool ~jobs:4 (fun pool ->
        Engine.Pool.map_list pool (fun s -> job s ()) [ 1; 2; 3; 4; 5; 6; 7; 8 ])
  in
  Alcotest.(check (list (list int))) "jobs=1 equals jobs=4" serial pooled

let suite =
  [
    Alcotest.test_case "fixed seed determinism" `Quick
      test_fixed_seed_deterministic;
    Alcotest.test_case "size and seen" `Quick test_size_and_seen;
    Alcotest.test_case "rejects k < 1" `Quick test_create_rejects_bad_k;
    Alcotest.test_case "indices shape" `Quick test_indices_shape;
    Alcotest.test_case "indices with k >= n" `Quick test_indices_small_n;
    Alcotest.test_case "uniform inclusion" `Quick test_uniform_inclusion;
    QCheck_alcotest.to_alcotest prop_indices_well_formed;
    Alcotest.test_case "stable across pool widths" `Quick
      test_stable_across_jobs;
  ]
