(* The audit layer: flag machinery, pooled-shell lifetime checking
   (double release, use-after-release, dirty reuse), drop-site and
   discard-site release regressions, and link conservation under a real
   workload. *)

module Audit = Engine.Audit
module Packet = Netsim.Packet

(* Every test leaves the global switches off. *)
let with_audit ~lifetime ~invariants f = Audit.with_flags ~lifetime ~invariants f

let expect_violation name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Audit.Violation" name
  | exception Audit.Violation _ -> ()

let fresh_ack () =
  Packet.alloc_ack ~size:40 ~flow:1 ~src:2 ~dst:3 ~sent_at:1. ~cum_seq:7
    ~sack:[ (9, 11) ]

(* --- flag machinery ------------------------------------------------ *)

let test_flags_default_off () =
  Alcotest.(check bool) "lifetime off" false (Audit.lifetime_on ());
  Alcotest.(check bool) "invariants off" false (Audit.invariants_on ())

let test_apply_spec () =
  Audit.apply_spec "all";
  Alcotest.(check bool) "all->lifetime" true (Audit.lifetime_on ());
  Alcotest.(check bool) "all->invariants" true (Audit.invariants_on ());
  Audit.apply_spec "off";
  Alcotest.(check bool) "off" false
    (Audit.lifetime_on () || Audit.invariants_on ());
  Audit.apply_spec "lifetime";
  Alcotest.(check (pair bool bool))
    "subset" (true, false)
    (Audit.lifetime_on (), Audit.invariants_on ());
  Audit.apply_spec " invariants , lifetime ";
  Alcotest.(check (pair bool bool))
    "both tokens, spaces" (true, true)
    (Audit.lifetime_on (), Audit.invariants_on ());
  Audit.apply_spec "0";
  (* Unknown tokens warn but neither raise nor flip switches. *)
  Audit.apply_spec "bogus,invariants";
  Alcotest.(check (pair bool bool))
    "unknown token ignored" (false, true)
    (Audit.lifetime_on (), Audit.invariants_on ());
  Audit.disable_all ()

let test_with_flags_restores () =
  Audit.set_lifetime true;
  with_audit ~lifetime:false ~invariants:true (fun () ->
      Alcotest.(check (pair bool bool))
        "inside" (false, true)
        (Audit.lifetime_on (), Audit.invariants_on ()));
  Alcotest.(check (pair bool bool))
    "restored" (true, false)
    (Audit.lifetime_on (), Audit.invariants_on ());
  (* Exception-safe restore. *)
  (try
     with_audit ~lifetime:false ~invariants:false (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" true (Audit.lifetime_on ());
  Audit.disable_all ()

let test_violation_counter () =
  Audit.reset_violations ();
  expect_violation "fail" (fun () -> Audit.fail "synthetic %d" 1);
  expect_violation "fail again" (fun () -> Audit.fail "synthetic %d" 2);
  Alcotest.(check int) "two violations counted" 2 (Audit.violation_count ());
  Audit.reset_violations ();
  Alcotest.(check int) "reset" 0 (Audit.violation_count ())

(* --- pooled-shell lifetime ----------------------------------------- *)

let test_double_release_detected () =
  with_audit ~lifetime:true ~invariants:false (fun () ->
      let p = fresh_ack () in
      Packet.release p;
      expect_violation "double release" (fun () -> Packet.release p))

let test_double_release_noop_when_off () =
  let p = fresh_ack () in
  Packet.release p;
  (* Historical contract: without auditing a double release is a no-op. *)
  Packet.release p

let test_use_after_release_detected () =
  with_audit ~lifetime:true ~invariants:false (fun () ->
      let p = fresh_ack () in
      Packet.check_live p;
      Packet.release p;
      expect_violation "use after release" (fun () -> Packet.check_live p))

let test_dirty_reuse_is_flagged () =
  with_audit ~lifetime:true ~invariants:false (fun () ->
      let p = fresh_ack () in
      Packet.release p;
      (* Simulate the bug the checker exists for: a stale owner
         resurrects the shell without going through an allocator, so the
         release-time poison is still in place. *)
      p.Packet.pooled <- true;
      expect_violation "poisoned seq" (fun () -> Packet.check_live p))

let test_clean_reuse_resets_everything () =
  with_audit ~lifetime:true ~invariants:false (fun () ->
      let a = fresh_ack () in
      Packet.release a;
      (* The freelist hands the same physical shell back... *)
      let b =
        Packet.alloc_ack ~size:40 ~flow:5 ~src:6 ~dst:7 ~sent_at:2. ~cum_seq:0
          ~sack:[]
      in
      Alcotest.(check bool) "same shell recycled" true (a == b);
      (* ...with every poisoned field rewritten. *)
      Packet.check_live b;
      Alcotest.(check int) "seq reset" 0 b.Packet.seq;
      Alcotest.(check bool) "ecn reset" false b.Packet.ecn;
      (match b.Packet.payload with
      | Packet.Ack { cum_seq; sack } ->
        Alcotest.(check int) "cum_seq reset" 0 cum_seq;
        Alcotest.(check bool) "sack reset" true (sack = [])
      | _ -> Alcotest.fail "expected Ack payload");
      Packet.release b)

let test_cross_payload_reuse () =
  with_audit ~lifetime:true ~invariants:false (fun () ->
      let a = fresh_ack () in
      Packet.release a;
      (* An ack shell reused as TFRC feedback must not leak the Ack
         payload or the poison. *)
      let fb =
        Packet.alloc_tfrc_fb ~size:40 ~flow:9 ~src:1 ~dst:2 ~sent_at:3.
          {
            Packet.loss_event_rate = 0.01;
            recv_rate = 1e5;
            timestamp_echo = 2.5;
            delay_echo = 0.;
            new_loss = true;
          }
      in
      Alcotest.(check bool) "same shell recycled" true (a == fb);
      Packet.check_live fb;
      (match fb.Packet.payload with
      | Packet.Tfrc_fb f ->
        Alcotest.(check (float 0.)) "payload rewritten" 0.01
          f.Packet.loss_event_rate
      | _ -> Alcotest.fail "expected Tfrc_fb payload");
      Packet.release fb)

let test_pooling_switch () =
  let saved = Packet.pooling () in
  Fun.protect
    ~finally:(fun () -> Packet.set_pooling saved)
    (fun () ->
      Packet.set_pooling false;
      let a = fresh_ack () in
      Alcotest.(check bool) "unpooled shell" false a.Packet.pooled;
      Packet.release a;
      let b = fresh_ack () in
      Alcotest.(check bool) "no recycling when off" true (a != b);
      Packet.set_pooling true;
      let c = fresh_ack () in
      Alcotest.(check bool) "pooled again" true c.Packet.pooled;
      Packet.release c)

(* --- release sites -------------------------------------------------- *)

(* Regression: a packet dropped at the link queue is the link's to
   release.  Before the fix, dropped pooled shells leaked to the GC and
   the freelist drained under reverse-path congestion. *)
let test_drop_site_releases () =
  let sim = Engine.Sim.create () in
  let link =
    Netsim.Link.make ~sim ~bandwidth:8000. ~delay:0.001
      ~queue:(Netsim.Droptail.make ~capacity:1)
  in
  Netsim.Link.connect link (fun pkt -> Packet.release pkt);
  let dropped = ref [] in
  Netsim.Link.on_drop link (fun pkt -> dropped := pkt :: !dropped);
  (* 1000-byte packets serialize in 1 s: the first occupies the
     transmitter, the second the 1-slot queue, the third must drop. *)
  let send () =
    Netsim.Link.send link
      (Packet.alloc_ack ~size:1000 ~flow:0 ~src:0 ~dst:1 ~sent_at:0.
         ~cum_seq:0 ~sack:[])
  in
  send ();
  send ();
  send ();
  (match !dropped with
  | [ p ] ->
    Alcotest.(check bool) "dropped shell released to the pool" false
      p.Packet.pooled
  | l -> Alcotest.failf "expected exactly 1 drop, got %d" (List.length l));
  Alcotest.(check int) "link counted the drop" 1 (Netsim.Link.drops link);
  Engine.Sim.run sim

let test_discard_site_releases () =
  (* A node with no route and no local handler discards — and owns —
     the packet. *)
  let node = Netsim.Node.create ~id:7 in
  let seen = ref [] in
  Netsim.Node.on_discard node (fun pkt -> seen := pkt :: !seen);
  let p =
    Packet.alloc_ack ~size:40 ~flow:3 ~src:0 ~dst:99 ~sent_at:0. ~cum_seq:0
      ~sack:[]
  in
  Netsim.Node.receive node p;
  (match !seen with
  | [ q ] ->
    Alcotest.(check bool) "hook saw the packet" true (p == q);
    Alcotest.(check bool) "discarded shell released" false q.Packet.pooled
  | l -> Alcotest.failf "expected exactly 1 discard, got %d" (List.length l));
  Alcotest.(check int) "discard counted" 1 (Netsim.Node.discarded node)

(* --- invariants under a real workload ------------------------------ *)

(* A dumbbell run with both audit families on: per-packet conservation
   checks at every send/tx-done, the monotone-clock check at every event,
   and lifetime checks at every link entry.  Completing without
   [Violation] is the assertion. *)
let test_dumbbell_run_clean_under_audit () =
  with_audit ~lifetime:true ~invariants:true (fun () ->
      let sim = Engine.Sim.create () in
      let rng = Engine.Rng.create ~seed:5 in
      let config =
        {
          (Netsim.Dumbbell.default_config ~bandwidth:1e6) with
          Netsim.Dumbbell.queue = Netsim.Dumbbell.Droptail;
        }
      in
      let db = Netsim.Dumbbell.create ~sim ~rng config in
      let f1 = Slowcc.Protocol.spawn (Slowcc.Protocol.tcp ~gamma:2.) db in
      let f2 =
        Slowcc.Protocol.spawn ~reverse:true (Slowcc.Protocol.tfrc ~k:6 ()) db
      in
      Engine.Sim.at sim 0.0 f1.Cc.Flow.start;
      Engine.Sim.at sim 0.1 f2.Cc.Flow.start;
      Engine.Sim.run ~until:3. sim;
      List.iter Netsim.Link.check_conservation (Netsim.Dumbbell.links db);
      let s = f1.Cc.Flow.stats () in
      Alcotest.(check bool) "tcp flow made progress" true
        (s.Cc.Flow.sent_pkts > 10))

let test_conservation_accessors_consistent () =
  let sim = Engine.Sim.create () in
  let link =
    Netsim.Link.make ~sim ~bandwidth:1e6 ~delay:0.01
      ~queue:(Netsim.Droptail.make ~capacity:10)
  in
  let delivered = ref 0 in
  Netsim.Link.connect link (fun pkt ->
      incr delivered;
      Packet.release pkt);
  for i = 1 to 5 do
    Netsim.Link.send link
      (Packet.make ~flow:0 ~src:0 ~dst:1 ~sent_at:(float_of_int i) ())
  done;
  Netsim.Link.check_conservation link;
  Engine.Sim.run sim;
  Netsim.Link.check_conservation link;
  Alcotest.(check int) "all delivered" 5 (Netsim.Link.delivered link);
  Alcotest.(check int) "receiver agrees" 5 !delivered;
  Alcotest.(check int) "nothing in flight" 0 (Netsim.Link.in_flight link);
  Alcotest.(check bool) "idle" false (Netsim.Link.busy link);
  Alcotest.(check bool) "counters expose delivered" true
    (List.mem_assoc "delivered" (Netsim.Link.counters link))

let suite =
  [
    Alcotest.test_case "flags default off" `Quick test_flags_default_off;
    Alcotest.test_case "apply_spec" `Quick test_apply_spec;
    Alcotest.test_case "with_flags restores" `Quick test_with_flags_restores;
    Alcotest.test_case "violation counter" `Quick test_violation_counter;
    Alcotest.test_case "double release detected" `Quick
      test_double_release_detected;
    Alcotest.test_case "double release no-op when off" `Quick
      test_double_release_noop_when_off;
    Alcotest.test_case "use-after-release detected" `Quick
      test_use_after_release_detected;
    Alcotest.test_case "dirty reuse flagged" `Quick test_dirty_reuse_is_flagged;
    Alcotest.test_case "clean reuse resets fields" `Quick
      test_clean_reuse_resets_everything;
    Alcotest.test_case "cross-payload reuse" `Quick test_cross_payload_reuse;
    Alcotest.test_case "pooling switch" `Quick test_pooling_switch;
    Alcotest.test_case "drop site releases shell" `Quick
      test_drop_site_releases;
    Alcotest.test_case "discard site releases shell" `Quick
      test_discard_site_releases;
    Alcotest.test_case "dumbbell clean under full audit" `Quick
      test_dumbbell_run_clean_under_audit;
    Alcotest.test_case "conservation accessors" `Quick
      test_conservation_accessors_consistent;
  ]
