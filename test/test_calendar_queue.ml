(* Calendar-queue unit tests plus the heap/calendar equivalence suite
   that gates the default-scheduler flip: both queues must pop the same
   (time, id) stream in the identical order, FIFO ties included. *)

module Cq = Engine.Calendar_queue
module Eh = Engine.Event_heap

let check_float = Alcotest.(check (float 1e-9))

let test_empty () =
  let q = Cq.create () in
  Alcotest.(check bool) "empty" true (Cq.is_empty q);
  Alcotest.(check int) "size" 0 (Cq.size q);
  Alcotest.(check bool) "pop none" true (Cq.pop q = None);
  Alcotest.(check bool) "peek none" true (Cq.peek_time q = None);
  Alcotest.(check bool) "min_time empty is nan" true
    (Float.is_nan (Cq.min_time q));
  Alcotest.check_raises "take empty"
    (Invalid_argument "Calendar_queue.take: empty queue") (fun () ->
      ignore (Cq.take q))

let test_ordering () =
  let q = Cq.create () in
  List.iter (fun t -> Cq.add q ~time:t t) [ 5.; 1.; 3.; 2.; 4. ];
  let rec drain acc =
    match Cq.pop q with
    | None -> List.rev acc
    | Some (t, _) -> drain (t :: acc)
  in
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 2.; 3.; 4.; 5. ] (drain [])

let test_fifo_ties () =
  let q = Cq.create () in
  List.iter (fun v -> Cq.add q ~time:1. v) [ "a"; "b"; "c" ];
  Cq.add q ~time:0.5 "first";
  let pop () =
    match Cq.pop q with
    | Some (_, v) -> v
    | None -> Alcotest.fail "unexpected empty queue"
  in
  Alcotest.(check string) "earliest" "first" (pop ());
  Alcotest.(check string) "fifo a" "a" (pop ());
  Alcotest.(check string) "fifo b" "b" (pop ());
  Alcotest.(check string) "fifo c" "c" (pop ())

let test_take_min_time () =
  let q = Cq.create () in
  List.iter
    (fun (t, v) -> Cq.add q ~time:t v)
    [ (2., "b"); (1., "a"); (3., "c") ];
  check_float "min_time" 1. (Cq.min_time q);
  Alcotest.(check string) "take min" "a" (Cq.take q);
  check_float "min_time after take" 2. (Cq.min_time q);
  Alcotest.(check string) "take next" "b" (Cq.take q);
  Alcotest.(check string) "take last" "c" (Cq.take q);
  Alcotest.(check bool) "empty again" true (Cq.is_empty q)

let test_rejects_bad_times () =
  let q = Cq.create () in
  let exn =
    Invalid_argument "Calendar_queue.add: time must be finite and non-negative"
  in
  Alcotest.check_raises "nan" exn (fun () -> Cq.add q ~time:Float.nan ());
  Alcotest.check_raises "inf" exn (fun () -> Cq.add q ~time:Float.infinity ());
  Alcotest.check_raises "negative" exn (fun () -> Cq.add q ~time:(-1.) ())

let test_clear () =
  let q = Cq.create () in
  for i = 1 to 100 do
    Cq.add q ~time:(float_of_int i *. 0.25) i
  done;
  Cq.clear q;
  Alcotest.(check bool) "cleared" true (Cq.is_empty q);
  (* Reusable after clear. *)
  Cq.add q ~time:2. 2;
  Cq.add q ~time:1. 1;
  Alcotest.(check int) "first after clear" 1 (Cq.take q);
  Alcotest.(check int) "second after clear" 2 (Cq.take q)

let test_resize_grows_and_shrinks () =
  let q = Cq.create () in
  let nb0 = Cq.buckets q in
  for i = 0 to 9999 do
    Cq.add q ~time:(float_of_int i *. 1e-4) i
  done;
  Alcotest.(check bool) "buckets grew" true (Cq.buckets q > nb0);
  Alcotest.(check bool) "width adapted" true (Cq.width q > 0.);
  let prev = ref (-1.) in
  for i = 0 to 9999 do
    let t = Cq.min_time q in
    Alcotest.(check bool) "monotone" true (t >= !prev);
    prev := t;
    let v = Cq.take q in
    Alcotest.(check int) "payload order survives resizes" i v
  done;
  Alcotest.(check bool) "buckets shrank back" true (Cq.buckets q <= nb0 * 2)

let test_sparse_horizon () =
  (* Events much farther apart than a bucket year: the direct-search
     fallback must still find the minimum. *)
  let q = Cq.create () in
  List.iter
    (fun t -> Cq.add q ~time:t t)
    [ 1000.; 0.001; 500.; 0.002; 250. ];
  let rec drain acc =
    match Cq.pop q with
    | None -> List.rev acc
    | Some (t, _) -> drain (t :: acc)
  in
  Alcotest.(check (list (float 0.)))
    "sparse sorted"
    [ 0.001; 0.002; 250.; 500.; 1000. ]
    (drain [])

(* Drive both queues with one randomized (add | pop) stream obeying the
   simulator's contract (never add behind the last popped time), with
   times quantized so FIFO ties are frequent, and assert identical pop
   sequences. *)
let equivalence_run ~seed ~ops ~quantum =
  let st = Random.State.make [| seed |] in
  let h = Eh.create () in
  let c = Cq.create () in
  let last = ref 0. in
  let next_id = ref 0 in
  let check_pop () =
    match (Eh.pop h, Cq.pop c) with
    | None, None -> ()
    | Some (th, vh), Some (tc, vc) ->
        if th <> tc || vh <> vc then
          Alcotest.failf "pop mismatch: heap (%g, %d) vs calendar (%g, %d)" th
            vh tc vc;
        last := th
    | Some _, None -> Alcotest.fail "calendar empty while heap is not"
    | None, Some _ -> Alcotest.fail "heap empty while calendar is not"
  in
  for _ = 1 to ops do
    if Random.State.int st 3 < 2 || Eh.is_empty h then begin
      let dt = float_of_int (Random.State.int st 50) *. quantum in
      let time = !last +. dt in
      let id = !next_id in
      incr next_id;
      Eh.add h ~time id;
      Cq.add c ~time id
    end
    else check_pop ();
    if Eh.size h <> Cq.size c then Alcotest.fail "size mismatch"
  done;
  while not (Eh.is_empty h) || not (Cq.is_empty c) do
    check_pop ()
  done

let test_equivalence_dense () = equivalence_run ~seed:7 ~ops:20_000 ~quantum:1e-4

let test_equivalence_ties () =
  (* quantum 0 degenerates every add to the same timestamp: a pure FIFO
     stress across resizes. *)
  equivalence_run ~seed:11 ~ops:5_000 ~quantum:0.

let test_equivalence_sparse () =
  equivalence_run ~seed:13 ~ops:5_000 ~quantum:10.

let prop_equivalence =
  QCheck2.Test.make ~name:"calendar pops exactly like heap" ~count:50
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 1_000))
    (fun (seed, ops) ->
      equivalence_run ~seed ~ops ~quantum:1e-3;
      true)

(* The user-facing property the tentpole promises: a Sim behaves
   identically whichever queue backs it. *)
let run_schedule sched times until =
  let sim = Engine.Sim.create ~sched () in
  let order = ref [] in
  List.iteri
    (fun i t -> Engine.Sim.at sim t (fun () -> order := i :: !order))
    times;
  Engine.Sim.run ~until sim;
  (Engine.Sim.now sim, Engine.Sim.events_processed sim, List.rev !order)

let prop_sim_parks_identically =
  QCheck2.Test.make ~name:"Sim.run ~until parks clock identically" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 50)
           (map (fun k -> float_of_int k *. 0.05) (int_range 0 400)))
        (map (fun k -> float_of_int k *. 0.05) (int_range 0 500)))
    (fun (times, until) ->
      run_schedule Engine.Scheduler.Heap times until
      = run_schedule Engine.Scheduler.Calendar times until)

let test_sim_scheduler_selection () =
  let heap = Engine.Sim.create ~sched:Engine.Scheduler.Heap () in
  let cal = Engine.Sim.create ~sched:Engine.Scheduler.Calendar () in
  Alcotest.(check bool)
    "explicit heap" true
    (Engine.Sim.scheduler heap = Engine.Scheduler.Heap);
  Alcotest.(check bool)
    "explicit calendar" true
    (Engine.Sim.scheduler cal = Engine.Scheduler.Calendar);
  let dflt = Engine.Sim.create () in
  Alcotest.(check bool)
    "default follows Scheduler.get_default" true
    (Engine.Sim.scheduler dflt = Engine.Scheduler.get_default ())

(* --- timer cancellation at bucket boundaries ----------------------- *)

(* Sim-level cancellation is lazy (tombstones pop and are skipped), so a
   disarm/rearm storm leaves dead entries sitting exactly where resizes
   move buckets around.  Run the identical timer program under both
   schedulers — arming at dyadic times that land on bucket edges, with a
   load spike to force a grow and a drain to force the shrink back — and
   require the identical firing log. *)
let timer_program sched =
  let sim = Engine.Sim.create ~sched () in
  let log = ref [] in
  let n = 8 in
  let timers =
    Array.init n (fun i ->
        Engine.Sim.timer sim (fun () ->
            log := (i, Engine.Sim.now sim) :: !log))
  in
  let q = 1. /. 1024. in
  (* Load spike: thousands of events on a dyadic lattice, each one
     toggling a timer — rearming moves entries across bucket edges while
     the ring is growing. *)
  for k = 1 to 4000 do
    Engine.Sim.at sim
      (float_of_int k *. q)
      (fun () ->
        let i = k mod n in
        if Engine.Sim.timer_armed timers.(i) then Engine.Sim.disarm timers.(i)
        else
          Engine.Sim.arm_after timers.(i)
            (float_of_int ((k land 7) + 1) *. q))
  done;
  (* Sparse tail after the spike: the ring shrinks while late-armed
     timers are still pending. *)
  for k = 0 to 7 do
    Engine.Sim.at sim
      (8. +. float_of_int k)
      (fun () -> Engine.Sim.arm_at timers.(k) (16. +. float_of_int k))
  done;
  Engine.Sim.run sim;
  (Engine.Sim.events_processed sim, List.rev !log)

let test_timer_cancellation_equivalence () =
  let h = timer_program Engine.Scheduler.Heap in
  let c = timer_program Engine.Scheduler.Calendar in
  Alcotest.(check bool) "identical firing logs" true (h = c);
  let _, log = c in
  Alcotest.(check bool) "timers actually fired" true (List.length log > 100)

let test_disarm_on_bucket_edge_never_fires () =
  List.iter
    (fun sched ->
      let sim = Engine.Sim.create ~sched () in
      let fired = ref false in
      let tm = Engine.Sim.timer sim (fun () -> fired := true) in
      (* Arm exactly on a dyadic bucket edge, then grow the ring past it
         with a burst of later events before cancelling. *)
      Engine.Sim.arm_at tm 1.;
      for k = 1 to 5000 do
        Engine.Sim.at sim (2. +. (float_of_int k /. 512.)) (fun () -> ())
      done;
      Engine.Sim.at sim 0.5 (fun () -> Engine.Sim.disarm tm);
      Engine.Sim.run sim;
      Alcotest.(check bool)
        (Engine.Scheduler.to_string sched ^ ": cancelled alarm silent")
        false !fired;
      Alcotest.(check bool) "disarmed" false (Engine.Sim.timer_armed tm))
    [ Engine.Scheduler.Heap; Engine.Scheduler.Calendar ]

let test_rearm_same_instant_fifo () =
  (* Disarm + rearm at the same timestamp: the lazy-cancel guard keys on
     [deadline = now], which cannot tell the stale entry from the rearm,
     so the timer fires exactly once at its *original* FIFO position —
     before events queued in between — and the rearm's own entry no-ops.
     What matters is that both queues implement this identically. *)
  let program sched =
    let sim = Engine.Sim.create ~sched () in
    let order = ref [] in
    let tm = Engine.Sim.timer sim (fun () -> order := "timer" :: !order) in
    Engine.Sim.arm_at tm 1.;
    Engine.Sim.at sim 0.5 (fun () ->
        Engine.Sim.disarm tm;
        Engine.Sim.at sim 1. (fun () -> order := "plain" :: !order);
        Engine.Sim.arm_at tm 1.);
    Engine.Sim.run sim;
    List.rev !order
  in
  let h = program Engine.Scheduler.Heap in
  Alcotest.(check (list string)) "fires once, original position"
    [ "timer"; "plain" ] h;
  Alcotest.(check (list string))
    "calendar agrees"
    h
    (program Engine.Scheduler.Calendar)

let test_scheduler_strings () =
  Alcotest.(check string) "heap" "heap"
    (Engine.Scheduler.to_string Engine.Scheduler.Heap);
  Alcotest.(check string) "calendar" "calendar"
    (Engine.Scheduler.to_string Engine.Scheduler.Calendar);
  Alcotest.(check bool) "parse heap" true
    (Engine.Scheduler.of_string "Heap" = Some Engine.Scheduler.Heap);
  Alcotest.(check bool) "parse cal" true
    (Engine.Scheduler.of_string "cal" = Some Engine.Scheduler.Calendar);
  Alcotest.(check bool) "parse junk" true
    (Engine.Scheduler.of_string "splay" = None)

(* Explicit sequence numbers, mirrored from the heap: burned-seq order
   must survive bucket placement and resizes. *)
let test_explicit_seq_order () =
  let q = Cq.create () in
  let s1 = Cq.alloc_seq q in
  let s2 = Cq.alloc_seq q in
  Cq.add_with_seq q ~time:1. ~seq:s2 "second";
  Cq.add q ~time:1. "third";
  Cq.add_with_seq q ~time:1. ~seq:s1 "first";
  Alcotest.(check int) "min_seq" s1 (Cq.min_seq q);
  let pop () =
    match Cq.pop q with
    | Some (_, v) -> v
    | None -> Alcotest.fail "unexpected empty queue"
  in
  Alcotest.(check string) "seq order 1" "first" (pop ());
  Alcotest.(check string) "seq order 2" "second" (pop ());
  Alcotest.(check string) "seq order 3" "third" (pop ())

let test_explicit_seq_validation () =
  let q = Cq.create () in
  Alcotest.check_raises "negative seq"
    (Invalid_argument "Calendar_queue.add_with_seq: negative seq") (fun () ->
      Cq.add_with_seq q ~time:1. ~seq:(-1) ());
  Alcotest.check_raises "min_seq empty"
    (Invalid_argument "Calendar_queue.min_seq: empty queue") (fun () ->
      ignore (Cq.min_seq q))

let test_explicit_seq_across_resize () =
  (* Foreign seqs (a second queue's counter, as the wheel does with the
     simulator's) stay FIFO-consistent through grow and shrink. *)
  let master = Cq.create () in
  let q = Cq.create () in
  let n = 5000 in
  for i = 0 to n - 1 do
    let seq = Cq.alloc_seq master in
    Cq.add_with_seq q ~time:(float_of_int (i mod 7)) ~seq i
  done;
  let last = ref (-1., -1) in
  for _ = 1 to n do
    let tm = Cq.min_time q in
    let sm = Cq.min_seq q in
    if (tm, sm) <= !last then Alcotest.fail "pop order not (time, seq)";
    last := (tm, sm);
    ignore (Cq.take q)
  done;
  Alcotest.(check bool) "drained" true (Cq.is_empty q)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "explicit seq order" `Quick test_explicit_seq_order;
    Alcotest.test_case "explicit seq validation" `Quick
      test_explicit_seq_validation;
    Alcotest.test_case "explicit seq across resize" `Quick
      test_explicit_seq_across_resize;
    Alcotest.test_case "time ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO tie-break" `Quick test_fifo_ties;
    Alcotest.test_case "take and min_time" `Quick test_take_min_time;
    Alcotest.test_case "rejects bad times" `Quick test_rejects_bad_times;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "resize policy" `Quick test_resize_grows_and_shrinks;
    Alcotest.test_case "sparse horizon fallback" `Quick test_sparse_horizon;
    Alcotest.test_case "equivalence: dense" `Quick test_equivalence_dense;
    Alcotest.test_case "equivalence: all ties" `Quick test_equivalence_ties;
    Alcotest.test_case "equivalence: sparse" `Quick test_equivalence_sparse;
    QCheck_alcotest.to_alcotest prop_equivalence;
    QCheck_alcotest.to_alcotest prop_sim_parks_identically;
    Alcotest.test_case "timer cancel/rearm equivalence" `Quick
      test_timer_cancellation_equivalence;
    Alcotest.test_case "disarm on bucket edge" `Quick
      test_disarm_on_bucket_edge_never_fires;
    Alcotest.test_case "rearm at same instant is FIFO" `Quick
      test_rearm_same_instant_fifo;
    Alcotest.test_case "Sim scheduler selection" `Quick
      test_sim_scheduler_selection;
    Alcotest.test_case "Scheduler string round-trip" `Quick
      test_scheduler_strings;
  ]
