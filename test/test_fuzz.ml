(* The differential fuzzer: deterministic generation, reproducer JSON
   round-trips, and a small live campaign (which doubles as the
   audit-on = audit-off digest-equality check, since the baseline leg is
   fully audited and the comparison legs are not). *)

module Fuzz = Slowcc.Fuzz

let test_generate_deterministic () =
  for seed = 0 to 9 do
    let a = Fuzz.generate ~quick:true seed in
    let b = Fuzz.generate ~quick:true seed in
    Alcotest.(check string)
      (Printf.sprintf "seed %d stable" seed)
      (Fuzz.describe a) (Fuzz.describe b)
  done;
  let distinct =
    List.init 20 (fun s -> Fuzz.describe (Fuzz.generate ~quick:true s))
    |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check bool) "seeds explore the space" true (distinct > 10)

let test_generate_well_formed () =
  for seed = 0 to 49 do
    let sc = Fuzz.generate ~quick:true seed in
    Alcotest.(check bool) "has flows" true (sc.Fuzz.flows <> []);
    Alcotest.(check bool) "positive duration" true (sc.Fuzz.duration > 0.);
    (match sc.Fuzz.topology with
    | Fuzz.Dumbbell -> ()
    | Fuzz.Parking_lot h ->
      Alcotest.(check bool) "hops in range" true (h >= 1);
      List.iter
        (fun fs ->
          Alcotest.(check bool) "sites distinct" true
            (fs.Fuzz.src_site <> fs.Fuzz.dst_site);
          Alcotest.(check bool) "sites in range" true
            (fs.Fuzz.src_site >= 0 && fs.Fuzz.src_site <= h
            && fs.Fuzz.dst_site >= 0 && fs.Fuzz.dst_site <= h))
        sc.Fuzz.flows)
  done

let test_json_roundtrip () =
  for seed = 0 to 19 do
    let sc = Fuzz.generate ~quick:false seed in
    match Fuzz.scenario_of_json (Fuzz.scenario_to_json sc) with
    | Ok sc' ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d round-trips" seed)
        true (sc = sc')
    | Error msg -> Alcotest.failf "seed %d: %s" seed msg
  done

let test_json_rejects_garbage () =
  let bad j =
    match Fuzz.scenario_of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "accepted malformed reproducer"
  in
  bad (Engine.Json.Obj [ ("schema", Engine.Json.String "nope/9") ]);
  bad (Engine.Json.Obj []);
  let doc = Fuzz.scenario_to_json (Fuzz.generate ~quick:true 0) in
  (match doc with
  | Engine.Json.Obj fields ->
    bad (Engine.Json.Obj (List.remove_assoc "flows" fields))
  | _ -> Alcotest.fail "scenario_to_json did not produce an object")

let test_repro_file_roundtrip () =
  let dir = "tmp-fuzz/repro" in
  let sc = Fuzz.generate ~quick:true 3 in
  let path = Fuzz.save_repro ~dir ~failure:"synthetic failure" sc in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  (match Fuzz.load_repro path with
  | Ok sc' -> Alcotest.(check bool) "file round-trips" true (sc = sc')
  | Error msg -> Alcotest.failf "load_repro: %s" msg);
  Sys.remove path

let test_shrink_keeps_passing_scenario () =
  (* shrink only accepts candidates that still fail; on a healthy
     scenario it must return the input unchanged. *)
  let sc = Fuzz.generate ~quick:true 0 in
  let sc', msg = Fuzz.shrink sc "original" in
  Alcotest.(check bool) "unchanged" true (sc = sc');
  Alcotest.(check string) "message kept" "original" msg

(* A miniature live campaign.  The baseline leg runs with lifetime and
   invariant auditing on while the scheduler/allocation legs run with it
   off, so zero divergences here also proves auditing does not perturb
   results. *)
let test_aux_flow_model_gate () =
  (* Regression (found by the fuzzer, seed 7 of the quick campaign): the
     hybrid fast-forward leg froze auxiliary (reverse-path) flows at
     their p=0 analytic rate without passing them through the
     model-agreement gate, so a reverse TFRC flow still ramping up was
     frozen at ~1/7th of its real rate and the hybrid leg delivered
     48 kB where the pure run delivered 332 kB.  With aux slots held to
     the same per-flow agreement band, every leg agrees again. *)
  let mk proto rev = { Fuzz.proto; rev; src_site = 0; dst_site = 0 } in
  let sc =
    {
      Fuzz.seed = 7;
      topology = Fuzz.Dumbbell;
      queue = Netsim.Dumbbell.Red;
      bandwidth = 3e6;
      rtt = 0.02;
      duration = 3.;
      flows =
        [
          mk (Slowcc.Protocol.tcp ~gamma:2.) false;
          mk (Slowcc.Protocol.tfrc ~k:2 ()) true;
          mk (Slowcc.Protocol.iiad ~gamma:4.) false;
        ];
    }
  in
  match Fuzz.check sc with
  | None -> ()
  | Some msg -> Alcotest.failf "legs diverge: %s" msg

let test_small_campaign_clean () =
  Engine.Audit.reset_violations ();
  let report = Fuzz.run_seeds ~quick:true ~seeds:4 () in
  Alcotest.(check int) "seeds run" 4 report.Fuzz.seeds_run;
  (match report.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "seed %d failed: %s" f.Fuzz.scenario.Fuzz.seed
      f.Fuzz.first_failure);
  (match report.Fuzz.soa_failures with
  | [] -> ()
  | (seed, msg) :: _ -> Alcotest.failf "seed %d SoA leg failed: %s" seed msg);
  Alcotest.(check int) "no violations recorded" 0
    (Engine.Audit.violation_count ())

let suite =
  [
    Alcotest.test_case "generation is deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "generation is well-formed" `Quick
      test_generate_well_formed;
    Alcotest.test_case "scenario JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "malformed reproducers rejected" `Quick
      test_json_rejects_garbage;
    Alcotest.test_case "reproducer file round-trip" `Quick
      test_repro_file_roundtrip;
    Alcotest.test_case "shrink keeps passing scenario" `Quick
      test_shrink_keeps_passing_scenario;
    Alcotest.test_case "aux flows pass the model gate" `Quick
      test_aux_flow_model_gate;
    Alcotest.test_case "small campaign clean" `Quick test_small_campaign_clean;
  ]
