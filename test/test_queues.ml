(* DropTail and RED queue disciplines. *)

let mk_pkt ?(size = 1000) seq =
  Netsim.Packet.make ~size ~seq ~flow:0 ~src:0 ~dst:1 ~sent_at:0. ()

let test_droptail_fifo () =
  let q = Netsim.Droptail.make ~capacity:3 in
  List.iter
    (fun seq ->
      match q.Netsim.Queue_intf.enqueue (mk_pkt seq) with
      | Netsim.Queue_intf.Enqueued -> ()
      | _ -> Alcotest.fail "unexpected drop")
    [ 1; 2; 3 ];
  let deq () =
    match q.Netsim.Queue_intf.dequeue () with
    | Some p -> p.Netsim.Packet.seq
    | None -> Alcotest.fail "empty"
  in
  Alcotest.(check int) "fifo 1" 1 (deq ());
  Alcotest.(check int) "fifo 2" 2 (deq ());
  Alcotest.(check int) "fifo 3" 3 (deq ())

let test_droptail_capacity () =
  let q = Netsim.Droptail.make ~capacity:2 in
  ignore (q.Netsim.Queue_intf.enqueue (mk_pkt 1));
  ignore (q.Netsim.Queue_intf.enqueue (mk_pkt 2));
  (match q.Netsim.Queue_intf.enqueue (mk_pkt 3) with
  | Netsim.Queue_intf.Dropped -> ()
  | _ -> Alcotest.fail "expected drop at capacity");
  Alcotest.(check int) "len" 2 (q.Netsim.Queue_intf.pkts ())

let test_droptail_bytes () =
  let q = Netsim.Droptail.make ~capacity:10 in
  ignore (q.Netsim.Queue_intf.enqueue (mk_pkt ~size:500 1));
  ignore (q.Netsim.Queue_intf.enqueue (mk_pkt ~size:700 2));
  Alcotest.(check int) "bytes" 1200 (q.Netsim.Queue_intf.bytes ());
  ignore (q.Netsim.Queue_intf.dequeue ());
  Alcotest.(check int) "bytes after deq" 700 (q.Netsim.Queue_intf.bytes ())

let test_droptail_rejects_zero_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Droptail.make: capacity must be positive") (fun () ->
      ignore (Netsim.Droptail.make ~capacity:0))

let red_fixture ?(ecn = false) ?(gentle = true) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:11 in
  let params =
    {
      Netsim.Red.default_params with
      Netsim.Red.min_th = 5.;
      max_th = 15.;
      capacity = 40;
      ecn;
      gentle;
      mean_pkt_tx_time = 0.001;
    }
  in
  let q, avg = Netsim.Red.make_with_introspection ~sim ~rng params in
  (sim, q, avg)

let test_red_no_drops_below_min () =
  let _, q, _ = red_fixture () in
  (* Keep the instantaneous queue low: alternate enqueue/dequeue. *)
  for i = 1 to 100 do
    (match q.Netsim.Queue_intf.enqueue (mk_pkt i) with
    | Netsim.Queue_intf.Enqueued -> ()
    | _ -> Alcotest.fail "drop below min_th");
    ignore (q.Netsim.Queue_intf.dequeue ())
  done

let test_red_drops_under_overload () =
  let _, q, _ = red_fixture () in
  let drops = ref 0 in
  (* Enqueue far beyond capacity without draining. *)
  for i = 1 to 200 do
    match q.Netsim.Queue_intf.enqueue (mk_pkt i) with
    | Netsim.Queue_intf.Dropped -> incr drops
    | _ -> ()
  done;
  Alcotest.(check bool) "many drops" true (!drops > 100);
  Alcotest.(check bool) "capacity respected" true
    (q.Netsim.Queue_intf.pkts () <= 40)

let test_red_average_tracks () =
  let _, q, avg = red_fixture () in
  for i = 1 to 30 do
    ignore (q.Netsim.Queue_intf.enqueue (mk_pkt i))
  done;
  Alcotest.(check bool) "avg rose" true (avg () > 0.);
  Alcotest.(check bool) "avg lags instantaneous" true
    (avg () < float_of_int (q.Netsim.Queue_intf.pkts ()))

let test_red_idle_decay () =
  let sim, q, avg = red_fixture () in
  for i = 1 to 30 do
    ignore (q.Netsim.Queue_intf.enqueue (mk_pkt i))
  done;
  while q.Netsim.Queue_intf.dequeue () <> None do
    ()
  done;
  let before = avg () in
  (* Advance the clock by scheduling a far event, then trigger the decay
     with one arrival. *)
  Engine.Sim.at sim 10. (fun () ->
      ignore (q.Netsim.Queue_intf.enqueue (mk_pkt 31)));
  Engine.Sim.run sim;
  Alcotest.(check bool) "avg decayed toward zero" true (avg () < before /. 100.)

(* Hold the instantaneous queue near 10 (between min_th 5 and max_th 15)
   long enough for the slow EWMA to cross min_th, then collect verdicts. *)
let drive_red_to_marking q ~rounds ~f =
  for i = 1 to 10 do
    ignore (q.Netsim.Queue_intf.enqueue (mk_pkt i))
  done;
  for i = 1 to rounds do
    let pkt = mk_pkt (10 + i) in
    let verdict = q.Netsim.Queue_intf.enqueue pkt in
    f pkt verdict;
    ignore (q.Netsim.Queue_intf.dequeue ())
  done

let test_red_ecn_marks () =
  let _, q, _ = red_fixture ~ecn:true () in
  let marks = ref 0 and drops = ref 0 in
  drive_red_to_marking q ~rounds:5000 ~f:(fun _ verdict ->
      match verdict with
      | Netsim.Queue_intf.Marked -> incr marks
      | Netsim.Queue_intf.Dropped -> incr drops
      | Netsim.Queue_intf.Enqueued -> ());
  Alcotest.(check bool) "some marks" true (!marks > 0);
  Alcotest.(check int) "ecn marks instead of dropping" 0 !drops

let test_red_marked_packet_has_ecn_bit () =
  let _, q, _ = red_fixture ~ecn:true () in
  let found = ref false in
  drive_red_to_marking q ~rounds:5000 ~f:(fun pkt verdict ->
      match verdict with
      | Netsim.Queue_intf.Marked -> if pkt.Netsim.Packet.ecn then found := true
      | _ -> ());
  Alcotest.(check bool) "ecn bit set" true !found

let test_red_param_validation () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  Alcotest.check_raises "bad thresholds"
    (Invalid_argument "Red.make: need 0 < min_th < max_th") (fun () ->
      ignore
        (Netsim.Red.make ~sim ~rng
           { Netsim.Red.default_params with Netsim.Red.min_th = 10.; max_th = 5. }))

let prop_red_never_exceeds_capacity =
  QCheck2.Test.make ~name:"red queue never exceeds capacity" ~count:50
    QCheck2.Gen.(int_range 1 500)
    (fun n ->
      let _, q, _ = red_fixture () in
      let ok = ref true in
      for i = 1 to n do
        ignore (q.Netsim.Queue_intf.enqueue (mk_pkt i));
        if q.Netsim.Queue_intf.pkts () > 40 then ok := false
      done;
      !ok)

let test_pktq_growth_wrapped () =
  (* Drive the ring through growth while head is mid-array: interleaved
     add/take leaves head offset, then a burst forces the re-linearizing
     resize.  FIFO order must survive, across several growth doublings. *)
  let q = Netsim.Pktq.create () in
  let next_in = ref 0 and next_out = ref 0 in
  let add () =
    Netsim.Pktq.add q (mk_pkt !next_in);
    incr next_in
  in
  let take () =
    match Netsim.Pktq.take_opt q with
    | Some p ->
      Alcotest.(check int) "fifo order" !next_out p.Netsim.Packet.seq;
      incr next_out
    | None -> Alcotest.fail "unexpected empty"
  in
  for _ = 1 to 10 do
    add ()
  done;
  for _ = 1 to 7 do
    take ()
  done;
  (* head is now 7 in a 16-slot ring; this burst wraps and then grows. *)
  for _ = 1 to 200 do
    add ()
  done;
  while not (Netsim.Pktq.is_empty q) do
    take ()
  done;
  Alcotest.(check int) "drained everything" !next_in !next_out;
  match Netsim.Pktq.take_opt q with
  | None -> ()
  | Some _ -> Alcotest.fail "take on empty ring returned a packet"

let suite =
  [
    Alcotest.test_case "pktq growth with wrapped head" `Quick
      test_pktq_growth_wrapped;
    Alcotest.test_case "droptail fifo" `Quick test_droptail_fifo;
    Alcotest.test_case "droptail capacity" `Quick test_droptail_capacity;
    Alcotest.test_case "droptail byte accounting" `Quick test_droptail_bytes;
    Alcotest.test_case "droptail rejects zero capacity" `Quick
      test_droptail_rejects_zero_capacity;
    Alcotest.test_case "red no drops below min_th" `Quick
      test_red_no_drops_below_min;
    Alcotest.test_case "red drops under overload" `Quick
      test_red_drops_under_overload;
    Alcotest.test_case "red average tracks occupancy" `Quick
      test_red_average_tracks;
    Alcotest.test_case "red idle decay" `Quick test_red_idle_decay;
    Alcotest.test_case "red ecn marks" `Quick test_red_ecn_marks;
    Alcotest.test_case "red sets ecn bit" `Quick test_red_marked_packet_has_ecn_bit;
    Alcotest.test_case "red param validation" `Quick test_red_param_validation;
    QCheck_alcotest.to_alcotest prop_red_never_exceeds_capacity;
  ]
