(* The content-addressed result cache: key sensitivity, digest-verified
   round-trips, self-healing on corruption, the timing store, directory
   maintenance, and the end-to-end guarantee that a warm run reproduces a
   cold run's manifest byte-for-byte. *)

module Json = Engine.Json
module Cache = Slowcc.Result_cache
module Manifest = Slowcc.Manifest
module Table = Slowcc.Table

let sample =
  Table.make ~id:"fig0" ~title:"sample"
    ~columns:[ "x"; "y" ]
    ~notes:[ "a note" ]
    [ [ "1"; "2" ]; [ "3"; "4,5" ] ]

let second =
  Table.make ~id:"fig0b" ~title:"second table" ~columns:[ "z" ] [ [ "9" ] ]

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir = Printf.sprintf "tmp-result-cache/case%d" !n in
    Cache.clear ~dir;
    dir

let params = [ ("alpha", Json.Float 0.5); ("n", Json.Int 4) ]

let tables_digests ts = List.map Manifest.table_digest ts

let test_store_lookup_roundtrip () =
  let c = Cache.create ~dir:(fresh_dir ()) () in
  let key = Cache.key c ~experiment:"fig0" ~quick:true ~params in
  Alcotest.(check (option (list string))) "empty cache misses" None
    (Option.map tables_digests (Cache.lookup c ~key));
  Cache.store c ~key ~experiment:"fig0" ~quick:true [ sample; second ];
  (match Cache.lookup c ~key with
  | None -> Alcotest.fail "stored entry not found"
  | Some ts ->
    Alcotest.(check (list string))
      "tables round-trip digest-identical"
      (tables_digests [ sample; second ])
      (tables_digests ts));
  Alcotest.(check (pair int int)) "one miss then one hit" (1, 1)
    (Cache.hits c, Cache.misses c)

let test_key_sensitivity () =
  let c = Cache.create ~dir:(fresh_dir ()) () in
  let base = Cache.key c ~experiment:"fig0" ~quick:true ~params in
  Alcotest.(check string) "key is deterministic" base
    (Cache.key c ~experiment:"fig0" ~quick:true ~params);
  Alcotest.(check int) "key is md5 hex" 32 (String.length base);
  let different =
    [
      Cache.key c ~experiment:"fig1" ~quick:true ~params;
      Cache.key c ~experiment:"fig0" ~quick:false ~params;
      Cache.key c ~experiment:"fig0" ~quick:true
        ~params:[ ("alpha", Json.Float 0.6); ("n", Json.Int 4) ];
      Cache.key c ~experiment:"fig0" ~quick:true ~params:[];
    ]
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) "name/quick/params all flip the key" true
        (k <> base))
    different

let test_fingerprint_invalidates () =
  (* Same directory, different code fingerprint: the old entry must not
     be served.  [create ?fingerprint] stands in for a rebuild. *)
  let dir = fresh_dir () in
  let v1 = Cache.create ~fingerprint:"code-v1" ~dir () in
  let k1 = Cache.key v1 ~experiment:"fig0" ~quick:true ~params in
  Cache.store v1 ~key:k1 ~experiment:"fig0" ~quick:true [ sample ];
  let v2 = Cache.create ~fingerprint:"code-v2" ~dir () in
  let k2 = Cache.key v2 ~experiment:"fig0" ~quick:true ~params in
  Alcotest.(check bool) "fingerprint flips the key" true (k1 <> k2);
  Alcotest.(check bool) "new code misses" true (Cache.lookup v2 ~key:k2 = None);
  Alcotest.(check bool) "old entry still served to old code" true
    (Cache.lookup v1 ~key:k1 <> None)

(* First index of [needle] in [haystack]; -1 when absent. *)
let find_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then -1
    else if String.sub haystack i n = needle then i
    else go (i + 1)
  in
  go 0

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".entry")
  |> List.map (Filename.concat dir)

let test_corruption_self_heals () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir () in
  let key = Cache.key c ~experiment:"fig0" ~quick:true ~params in
  Cache.store c ~key ~experiment:"fig0" ~quick:true [ sample ];
  let path =
    match entry_files dir with
    | [ p ] -> p
    | l -> Alcotest.failf "expected one entry file, found %d" (List.length l)
  in
  (* Flip one byte of a stored cell ("4,5" -> "4,6"): the per-table
     digest check must reject, delete the entry and re-simulate. *)
  let bytes =
    In_channel.with_open_bin path In_channel.input_all |> Bytes.of_string
  in
  let pos = find_sub (Bytes.to_string bytes) "4,5" in
  Alcotest.(check bool) "cell present in entry" true (pos >= 0);
  Bytes.set bytes (pos + 2) '6';
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc bytes);
  Alcotest.(check bool) "corrupt entry reads as a miss" true
    (Cache.lookup c ~key = None);
  Alcotest.(check (list string)) "corrupt entry deleted" []
    (entry_files dir);
  (* Truncation is likewise caught. *)
  Cache.store c ~key ~experiment:"fig0" ~quick:true [ sample; second ];
  let path = List.hd (entry_files dir) in
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full - 10)));
  Alcotest.(check bool) "truncated entry reads as a miss" true
    (Cache.lookup c ~key = None);
  (* After healing, a store works again. *)
  Cache.store c ~key ~experiment:"fig0" ~quick:true [ sample ];
  Alcotest.(check bool) "re-stored entry hits" true
    (Cache.lookup c ~key <> None)

let test_timing_store () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir () in
  Alcotest.(check (option (float 0.))) "no estimate yet" None
    (Cache.estimate c "fig7#0");
  Cache.record c "fig7#0" 1.5;
  Cache.record c "fig7#1" 0.25;
  Cache.record c "fig7#0" 2.0 (* latest wins *);
  Cache.record c "bad" nan;
  Cache.record c "bad" infinity;
  Cache.record c "bad" (-1.);
  Alcotest.(check (option (float 1e-9))) "latest measurement" (Some 2.0)
    (Cache.estimate c "fig7#0");
  Alcotest.(check (option (float 1e-9))) "non-finite ignored" None
    (Cache.estimate c "bad");
  Cache.save_timings c;
  let reloaded = Cache.create ~dir () in
  Alcotest.(check (option (float 1e-9))) "timings survive reload" (Some 0.25)
    (Cache.estimate reloaded "fig7#1");
  let s = Cache.stats ~dir () in
  Alcotest.(check int) "two persisted timings" 2 s.Cache.timing_entries

(* Satellite regression: timing keys carry the code fingerprint, so a
   stale binary's measurements cannot misorder a rebuilt binary's jobs —
   the rebuild simply starts with no estimates. *)
let test_timing_keys_fingerprint_scoped () =
  let dir = fresh_dir () in
  let v1 = Cache.create ~fingerprint:"0123456789abcdef" ~dir () in
  (match Cache.alloc_keys (Cache.scope v1 ~label:"fig7:quick") 2 with
  | [ k0; k1 ] ->
    Alcotest.(check string) "keys carry the fp8 prefix"
      "01234567:fig7:quick#0" k0;
    Alcotest.(check string) "block is contiguous" "01234567:fig7:quick#1" k1;
    Cache.record v1 k0 1.5;
    Cache.record v1 k1 0.5
  | _ -> Alcotest.fail "expected two keys");
  Alcotest.(check (option (float 1e-9))) "timing_sum totals the unit"
    (Some 2.0)
    (Cache.timing_sum v1 ~label:"fig7:quick");
  Alcotest.(check (option (float 1e-9))) "other labels stay empty" None
    (Cache.timing_sum v1 ~label:"fig7");
  Cache.save_timings v1;
  let v2 = Cache.create ~fingerprint:"fedcba9876543210" ~dir () in
  Alcotest.(check (option (float 1e-9))) "a rebuild starts cold" None
    (Cache.timing_sum v2 ~label:"fig7:quick");
  (match Cache.alloc_keys (Cache.scope v2 ~label:"fig7:quick") 1 with
  | [ k ] ->
    Alcotest.(check (option (float 1e-9)))
      "no stale estimate under the new fingerprint" None (Cache.estimate v2 k)
  | _ -> Alcotest.fail "expected one key");
  let s = Cache.stats ~fingerprint:"0123456789abcdef" ~dir () in
  Alcotest.(check int) "both timings persisted" 2 s.Cache.timing_entries;
  Alcotest.(check int) "full coverage for the measuring binary" 2
    s.Cache.timing_entries_self;
  let s' = Cache.stats ~fingerprint:"fedcba9876543210" ~dir () in
  Alcotest.(check int) "zero coverage for the rebuild" 0
    s'.Cache.timing_entries_self

(* Satellite: age-based pruning deletes only entries past the cutoff and
   never touches the timing store. *)
let test_prune_by_age () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir () in
  let key_a = Cache.key c ~experiment:"figA" ~quick:true ~params in
  let key_b = Cache.key c ~experiment:"figB" ~quick:true ~params in
  Cache.store c ~key:key_a ~experiment:"figA" ~quick:true [ sample ];
  Cache.store c ~key:key_b ~experiment:"figB" ~quick:true [ second ];
  Cache.record c "figA#0" 1.0;
  Cache.save_timings c;
  (* Simulated clock: A is 100 s old, B is 10 s old; cutoff at 50 s. *)
  let now = 1000. in
  let mtime path =
    if find_sub path key_a >= 0 then Some (now -. 100.)
    else if find_sub path key_b >= 0 then Some (now -. 10.)
    else Some now
  in
  let s = Cache.prune ~dir ~older_than_s:50. ~now ~mtime in
  Alcotest.(check int) "one entry pruned" 1 s.Cache.pruned;
  Alcotest.(check bool) "pruned bytes counted" true (s.Cache.pruned_bytes > 0);
  Alcotest.(check int) "one entry kept" 1 s.Cache.kept;
  Alcotest.(check bool) "old entry gone" true (Cache.lookup c ~key:key_a = None);
  Alcotest.(check bool) "young entry survives" true
    (Cache.lookup c ~key:key_b <> None);
  Alcotest.(check int) "timing store untouched" 1
    (Cache.stats ~dir ()).Cache.timing_entries

(* Regression: two runs sharing a cache dir used to lose timings — each
   [save_timings] wrote only its own in-memory table, so the second save
   clobbered the first's measurements (and both used the same temp file
   name, racing the rename).  Saves now merge with the on-disk store. *)
let test_timing_saves_merge () =
  let dir = fresh_dir () in
  let a = Cache.create ~dir () in
  let b = Cache.create ~dir () in
  Cache.record a "fig1#0" 1.0;
  Cache.record a "shared#0" 1.0;
  Cache.record b "fig2#0" 2.0;
  Cache.record b "shared#0" 3.0;
  Cache.save_timings a;
  Cache.save_timings b;
  let c = Cache.create ~dir () in
  Alcotest.(check (option (float 1e-9))) "a's entry survives b's save"
    (Some 1.0) (Cache.estimate c "fig1#0");
  Alcotest.(check (option (float 1e-9))) "b's entry present" (Some 2.0)
    (Cache.estimate c "fig2#0");
  Alcotest.(check (option (float 1e-9))) "later saver wins on conflict"
    (Some 3.0) (Cache.estimate c "shared#0");
  (* No temp droppings left behind. *)
  Array.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "no stray temp file %s" f)
        false
        (Filename.check_suffix f ".tmp"))
    (Sys.readdir dir)

let test_stats_and_clear () =
  let dir = fresh_dir () in
  let s0 = Cache.stats ~dir () in
  Alcotest.(check int) "missing dir reads empty" 0 s0.Cache.entries;
  let c = Cache.create ~dir () in
  let key = Cache.key c ~experiment:"fig0" ~quick:true ~params in
  Cache.store c ~key ~experiment:"fig0" ~quick:true [ sample ];
  Cache.record c "fig0#0" 1.0;
  Cache.save_timings c;
  (* A foreign file must survive [clear]. *)
  Out_channel.with_open_bin (Filename.concat dir "README") (fun oc ->
      Out_channel.output_string oc "not a cache entry\n");
  let s1 = Cache.stats ~dir () in
  Alcotest.(check int) "one entry" 1 s1.Cache.entries;
  Alcotest.(check bool) "entry bytes counted" true (s1.Cache.entry_bytes > 0);
  Alcotest.(check int) "one timing" 1 s1.Cache.timing_entries;
  Cache.clear ~dir;
  let s2 = Cache.stats ~dir () in
  Alcotest.(check int) "entries cleared" 0 s2.Cache.entries;
  Alcotest.(check int) "timings cleared" 0 s2.Cache.timing_entries;
  Alcotest.(check bool) "foreign file kept" true
    (Sys.file_exists (Filename.concat dir "README"))

(* Satellite regression: the combined "all" record embeds one parameter
   object per experiment, so per-figure provenance (e.g. fig7's scenario
   parameters) survives into a combined manifest instead of the former
   empty [params: {}]. *)
let test_all_params_embed_figures () =
  let all = Slowcc.Experiments.params ~quick:true "all" in
  Alcotest.(check bool) "one record per experiment" true
    (List.length all = List.length Slowcc.Experiments.names);
  (match List.assoc_opt "fig7" all with
  | Some (Json.Obj fields) ->
    Alcotest.(check bool) "fig7 params are embedded, not empty" true
      (List.mem_assoc "bandwidth_bps" fields)
  | _ -> Alcotest.fail "fig7 record missing from the combined params");
  let rendered =
    Json.to_string
      (Manifest.run_section ~experiment:"all" ~quick:true ~params:all
         ~tables:[ sample ])
  in
  Alcotest.(check bool) "fig7 params visible in an 'all' manifest" true
    (find_sub rendered "bandwidth_bps" >= 0)

(* End to end: running the same experiment twice against one cache
   directory must (a) hit on the second run, (b) write byte-identical
   run sections and manifest digests, and (c) match a --no-cache run. *)
let test_warm_run_reproduces_cold () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let run ~cache ~out =
    Engine.Pool.with_pool ~jobs:2 (fun pool ->
        match
          Slowcc.Experiments.run_to_dir ~quick:true ~pool ?cache
            ~emit:Manifest.Both ~dir:out ~jobs:2 "fig20"
        with
        | Some (manifest, tables) -> (manifest, tables)
        | None -> Alcotest.fail "fig20 not found")
  in
  let m_cold, t_cold = run ~cache:(Some cache) ~out:"tmp-result-cache/cold" in
  Alcotest.(check (pair int int)) "cold run misses" (0, 1)
    (Cache.hits cache, Cache.misses cache);
  let m_warm, t_warm = run ~cache:(Some cache) ~out:"tmp-result-cache/warm" in
  Alcotest.(check (pair int int)) "warm run all-hits" (1, 1)
    (Cache.hits cache, Cache.misses cache);
  let m_fresh, t_fresh = run ~cache:None ~out:"tmp-result-cache/fresh" in
  let section tables =
    Json.to_string
      (Manifest.run_section ~experiment:"fig20" ~quick:true
         ~params:(Slowcc.Experiments.params ~quick:true "fig20")
         ~tables)
  in
  Alcotest.(check string) "warm run section byte-identical"
    (section t_cold) (section t_warm);
  Alcotest.(check string) "uncached run section byte-identical"
    (section t_cold) (section t_fresh);
  match
    ( Manifest.digest_of_file m_cold,
      Manifest.digest_of_file m_warm,
      Manifest.digest_of_file m_fresh )
  with
  | Some d1, Some d2, Some d3 ->
    Alcotest.(check string) "warm manifest digest identical" d1 d2;
    Alcotest.(check string) "uncached manifest digest identical" d1 d3
  | _ -> Alcotest.fail "digest missing from a manifest"

(* Property: [Table.of_jsonl] inverts [Table.to_jsonl] exactly —
   [Manifest.table_digest] is preserved byte-for-byte — over randomized
   tables, including awkward cell contents (commas, quotes, newlines,
   backslashes), duplicate column names and rows narrower than the
   column list. *)
let cell_gen =
  QCheck2.Gen.(
    string_size ~gen:(oneofl [ 'a'; '0'; ','; '"'; '\\'; '\n'; ' '; '{' ])
      (int_range 0 8))

let table_gen =
  QCheck2.Gen.(
    let* n_cols = int_range 1 5 in
    (* A small name alphabet makes duplicate column names common. *)
    let* columns =
      list_repeat n_cols (oneofl [ "a"; "b"; "c"; "x"; "row"; "cells" ])
    in
    let* rows =
      list_size (int_range 0 6)
        (let* width = int_range 0 n_cols in
         list_repeat width cell_gen)
    in
    let* id = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
    let* title = cell_gen in
    let* notes = list_size (int_range 0 3) cell_gen in
    return (Table.make ~id ~title ~columns ~notes rows))

let prop_jsonl_roundtrip_digest =
  QCheck2.Test.make ~name:"to_jsonl/of_jsonl preserves the table digest"
    ~count:200 table_gen (fun t ->
      match Table.of_jsonl (Table.to_jsonl t) with
      | Error e -> QCheck2.Test.fail_reportf "of_jsonl failed: %s" e
      | Ok t' ->
        String.equal (Manifest.table_digest t) (Manifest.table_digest t')
        && String.equal (Table.rows_to_jsonl t) (Table.rows_to_jsonl t'))

let suite =
  [
    Alcotest.test_case "store/lookup round-trip" `Quick
      test_store_lookup_roundtrip;
    Alcotest.test_case "key sensitivity" `Quick test_key_sensitivity;
    Alcotest.test_case "fingerprint invalidates" `Quick
      test_fingerprint_invalidates;
    Alcotest.test_case "corruption self-heals" `Quick
      test_corruption_self_heals;
    Alcotest.test_case "timing store" `Quick test_timing_store;
    Alcotest.test_case "timing keys fingerprint-scoped" `Quick
      test_timing_keys_fingerprint_scoped;
    Alcotest.test_case "prune by age" `Quick test_prune_by_age;
    Alcotest.test_case "timing saves merge" `Quick test_timing_saves_merge;
    Alcotest.test_case "stats and clear" `Quick test_stats_and_clear;
    Alcotest.test_case "'all' params embed figures" `Quick
      test_all_params_embed_figures;
    Alcotest.test_case "warm run reproduces cold" `Quick
      test_warm_run_reproduces_cold;
    QCheck_alcotest.to_alcotest prop_jsonl_roundtrip_digest;
  ]
