(* Determinism and distribution sanity of the SplitMix64 generator. *)

let test_determinism () =
  let a = Engine.Rng.create ~seed:42 and b = Engine.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Engine.Rng.float a)
      (Engine.Rng.float b)
  done

let test_seeds_differ () =
  let a = Engine.Rng.create ~seed:1 and b = Engine.Rng.create ~seed:2 in
  let va = List.init 10 (fun _ -> Engine.Rng.float a) in
  let vb = List.init 10 (fun _ -> Engine.Rng.float b) in
  Alcotest.(check bool) "different streams" true (va <> vb)

let test_split_independent () =
  let a = Engine.Rng.create ~seed:42 in
  let child = Engine.Rng.split a in
  let first_child_value = Engine.Rng.float child in
  (* Re-derive: the child stream must be a function of the parent state at
     split time only. *)
  let a2 = Engine.Rng.create ~seed:42 in
  let child2 = Engine.Rng.split a2 in
  ignore (Engine.Rng.float a2);
  Alcotest.(check (float 0.)) "child reproducible" first_child_value
    (Engine.Rng.float child2)

let test_int_bounds () =
  let rng = Engine.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Engine.Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_int_rejects_nonpositive () =
  let rng = Engine.Rng.create ~seed:3 in
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Engine.Rng.int rng 0))

let test_int_unbiased () =
  (* Regression for the modulo-bias bug: [int] used to map the raw draw
     with a plain [mod], over-weighting small residues for bounds that do
     not divide 2^63.  With rejection sampling every bucket of a small
     bound must land within a few percent of n/bound. *)
  let rng = Engine.Rng.create ~seed:11 in
  let bound = 7 and n = 35_000 in
  let buckets = Array.make bound 0 in
  for _ = 1 to n do
    let v = Engine.Rng.int rng bound in
    buckets.(v) <- buckets.(v) + 1
  done;
  let expected = float_of_int n /. float_of_int bound in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 10%% (got %d, want ~%.0f)" i c
           expected)
        true (dev < 0.1))
    buckets

let test_uniform_bounds () =
  let rng = Engine.Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let v = Engine.Rng.uniform rng ~lo:2. ~hi:5. in
    Alcotest.(check bool) "in range" true (v >= 2. && v < 5.)
  done

let test_float_mean () =
  let rng = Engine.Rng.create ~seed:5 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Engine.Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_exponential_mean () =
  let rng = Engine.Rng.create ~seed:6 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Engine.Rng.exponential rng ~mean:2.5
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 2.5" true (Float.abs (mean -. 2.5) < 0.15)

let test_bernoulli_rate () =
  let rng = Engine.Rng.create ~seed:7 in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Engine.Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let prop_float_unit_interval =
  QCheck2.Test.make ~name:"float stays in [0,1)" ~count:100
    QCheck2.Gen.(int_range 1 1000000)
    (fun seed ->
      let rng = Engine.Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Engine.Rng.float rng in
        if not (v >= 0. && v < 1.) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects non-positive" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int distribution unbiased" `Quick test_int_unbiased;
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    QCheck_alcotest.to_alcotest prop_float_unit_interval;
  ]
