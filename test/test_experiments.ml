(* Experiment runners: analytic figures exactly, table plumbing, naming. *)

let test_fig11_values () =
  let t = Slowcc.Experiments.fig11 () in
  Alcotest.(check int) "rows" 8 (List.length t.Slowcc.Table.rows);
  (* First row: b = 1/2, acks = log(0.1)/log(0.95) = 44.89 -> "45". *)
  match t.Slowcc.Table.rows with
  | (gamma :: acks :: _) :: _ ->
    Alcotest.(check string) "gamma" "2" gamma;
    Alcotest.(check string) "acks" "45" acks
  | _ -> Alcotest.fail "unexpected shape"

let test_fig20_values () =
  let t = Slowcc.Experiments.fig20 () in
  (* Row for p = 0.5 must show the Appendix A value 2/3 = 0.6667. *)
  let row =
    List.find (fun row -> List.hd row = "0.5000") t.Slowcc.Table.rows
  in
  match row with
  | [ _; _reno; _pure; timeouts ] ->
    Alcotest.(check string) "2/3 pkt/rtt" "0.6667" timeouts
  | _ -> Alcotest.fail "unexpected row shape"

let test_table_print_no_crash () =
  let t =
    Slowcc.Table.make ~id:"t" ~title:"test" ~columns:[ "a"; "b" ]
      ~notes:[ "n" ]
      [ [ "1"; "2" ]; [ "3" ] (* ragged on purpose *) ]
  in
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Slowcc.Table.print fmt t;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "printed something" true (Buffer.length buf > 0)

let test_fnum () =
  Alcotest.(check string) "integer" "42" (Slowcc.Table.fnum 42.);
  Alcotest.(check string) "small" "0.1235" (Slowcc.Table.fnum 0.12345);
  Alcotest.(check string) "mid" "3.14" (Slowcc.Table.fnum 3.14159);
  Alcotest.(check string) "pct" "12.30%" (Slowcc.Table.fpct 0.123)

let test_to_csv () =
  let t =
    Slowcc.Table.make ~id:"x" ~title:"t" ~columns:[ "a"; "b" ]
      ~notes:[ "hello" ]
      [ [ "1"; "2,3" ]; [ "q\"uote"; "4" ] ]
  in
  let csv = Slowcc.Table.to_csv t in
  (* Notes are no longer embedded as "# ..." comment lines: the body is
     strict CSV, notes travel in the manifest / sidecar instead. *)
  Alcotest.(check string) "csv" "a,b\n1,\"2,3\"\n\"q\"\"uote\",4\n" csv

let test_save_csv () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "slowcc_csv_test" in
  let t = Slowcc.Table.make ~id:"unit" ~title:"t" ~columns:[ "a" ] [ [ "1" ] ] in
  let path = Slowcc.Table.save_csv ~dir t in
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Alcotest.(check string) "header" "a" first

let test_run_by_name_unknown () =
  Alcotest.(check bool) "unknown name" true
    (Slowcc.Experiments.run_by_name "nope" = None)

let test_names_resolvable_analytic () =
  (* Every name is in the dispatch table; only run the analytic ones. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) name true
        (List.mem name Slowcc.Experiments.names))
    [ "fig11"; "fig20" ];
  Alcotest.(check bool) "fig11 runs" true
    (Slowcc.Experiments.run_by_name "fig11" <> None);
  Alcotest.(check bool) "fig20 runs" true
    (Slowcc.Experiments.run_by_name "fig20" <> None)

let suite =
  [
    Alcotest.test_case "fig11 analytic values" `Quick test_fig11_values;
    Alcotest.test_case "fig20 analytic values" `Quick test_fig20_values;
    Alcotest.test_case "table printing" `Quick test_table_print_no_crash;
    Alcotest.test_case "number formatting" `Quick test_fnum;
    Alcotest.test_case "to_csv" `Quick test_to_csv;
    Alcotest.test_case "save_csv" `Quick test_save_csv;
    Alcotest.test_case "unknown experiment" `Quick test_run_by_name_unknown;
    Alcotest.test_case "names table" `Quick test_names_resolvable_analytic;
  ]
