(* Struct-of-arrays many-flow engine: digest equivalence with the
   per-object senders (both schedulers, collision-heavy parameters), RTO
   wheel semantics, and ack batching. *)

module Mf = Slowcc.Manyflow

let small n = { (Mf.default_params ~n) with Mf.duration = 2.; warmup = 0. }

let check_none what = function
  | None -> ()
  | Some msg -> Alcotest.failf "%s: %s" what msg

(* n = 64 puts the bottleneck at 16000 * 64 = 2^10 * 10^3 bits/s, so
   1000-byte packets serialize in exactly 2^-7 s: RTO deadlines land on
   the same dyadic timestamps as deliveries about once per 3k events.
   This is the regression input that caught a wheel that preserved
   firing times but not same-instant FIFO positions. *)
let test_equiv_dyadic_collisions () =
  check_none "calendar" (Mf.check_equiv ~sched:Engine.Scheduler.Calendar (small 64))

let test_equiv_heap_sched () =
  check_none "heap" (Mf.check_equiv ~sched:Engine.Scheduler.Heap (small 64))

let test_equiv_across_queue_kinds () =
  List.iter
    (fun queue ->
      check_none "queue kind"
        (Mf.check_equiv { (small 12) with Mf.queue; stagger = 0.5 }))
    [ Netsim.Dumbbell.Red; Netsim.Dumbbell.Red_ecn; Netsim.Dumbbell.Droptail ]

(* A handful of the fuzzer's own randomized instances, pinned as
   regressions (dyadic staggers, mixed queue kinds and gammas). *)
let test_equiv_fuzz_seeds () =
  List.iter
    (fun seed ->
      check_none
        (Printf.sprintf "fuzz seed %d" seed)
        (Mf.fuzz_check ~quick:true seed))
    [ 1; 2; 3; 4; 5 ]

(* Both schedulers must agree on the SoA engine itself, not just each
   scheduler's SoA against its own per-object twin. *)
let test_soa_digest_sched_independent () =
  let p = small 32 in
  Alcotest.(check string)
    "calendar = heap"
    (Mf.digest_soa ~sched:Engine.Scheduler.Calendar p)
    (Mf.digest_soa ~sched:Engine.Scheduler.Heap p)

(* Ack batching coalesces same-instant acks per flow.  On a dumbbell a
   flow's data packets serialize at distinct times, so no two deliveries
   of one flow share an instant and batching is digest-safe: identical
   end state with it on or off. *)
let test_ack_batching_digest_safe () =
  let p = small 16 in
  Alcotest.(check string)
    "batching preserves the digest"
    (Mf.digest_soa { p with Mf.ack_batching = true })
    (Mf.digest_soa p)

let test_build_object_rejects_batching () =
  Alcotest.check_raises "object engine has no batching"
    (Invalid_argument "Manyflow.build_object: ack batching is SoA-only")
    (fun () ->
      ignore (Mf.build_object { (small 2) with Mf.ack_batching = true }))

(* Sender counters freeze on [stop]: the wheel must not fire RTOs for a
   stopped flow (lazy cancellation), and late acks are ignored. *)
let test_stop_freezes_senders () =
  (* Short stagger so every flow has started before the stop at 0.7 s. *)
  let p = { (small 8) with Mf.stagger = 0.1 } in
  let b = Mf.build_soa p in
  Engine.Sim.run ~until:0.7 b.Mf.sim;
  for i = 0 to 7 do
    Cc.Flow_soa.stop b.Mf.eng i
  done;
  let sent = Array.init 8 (fun i -> Cc.Flow_soa.pkts_sent b.Mf.eng i) in
  Alcotest.(check bool)
    "ran long enough to send" true
    (Array.exists (fun s -> s > 0) sent);
  Engine.Sim.run ~until:p.Mf.duration b.Mf.sim;
  for i = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "flow %d sent no packets after stop" i)
      sent.(i)
      (Cc.Flow_soa.pkts_sent b.Mf.eng i)
  done

(* The [Flow.t] closure view must agree with the direct accessors. *)
let test_flow_view_consistent () =
  let p = small 4 in
  let b = Mf.build_soa p in
  Engine.Sim.run ~until:p.Mf.duration b.Mf.sim;
  for i = 0 to 3 do
    let f = Cc.Flow_soa.flow b.Mf.eng i in
    Alcotest.(check int) "id" i f.Cc.Flow.id;
    let s = f.Cc.Flow.stats () in
    Alcotest.(check int) "sent" (Cc.Flow_soa.pkts_sent b.Mf.eng i)
      s.Cc.Flow.sent_pkts;
    Alcotest.(check int) "timeouts" (Cc.Flow_soa.timeouts b.Mf.eng i)
      s.Cc.Flow.timeouts;
    Alcotest.(check (float 0.)) "delivered bytes"
      (Cc.Flow_soa.bytes_delivered b.Mf.eng i)
      s.Cc.Flow.delivered_bytes
  done

let test_create_validation () =
  let sim = Engine.Sim.create () in
  let src = Netsim.Node.create ~id:0 and dst = Netsim.Node.create ~id:1 in
  let cfg =
    Cc.Flow_soa.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5)
  in
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Flow_soa.create: n >= 1 required") (fun () ->
      ignore (Cc.Flow_soa.create ~sim ~src ~dst ~base:0 ~n:0 cfg));
  Alcotest.check_raises "negative base"
    (Invalid_argument "Flow_soa.create: base >= 0 required") (fun () ->
      ignore (Cc.Flow_soa.create ~sim ~src ~dst ~base:(-1) ~n:1 cfg))

(* --- consolidated RTO wheel (packed seq+flow nodes) --- *)

let test_rto_wheel_order () =
  let w = Cc.Rto_wheel.create () in
  Alcotest.(check bool) "fresh empty" true (Cc.Rto_wheel.is_empty w);
  (* Insertion order deliberately scrambled; seqs are unique and
     monotone within each time, as Sim.alloc_seq guarantees. *)
  let entries =
    [ (0.5, 3, 1); (0.25, 1, 0); (0.5, 2, 7); (1.0, 4, 2); (0.25, 0, 5) ]
  in
  List.iter (fun (time, seq, flow) -> Cc.Rto_wheel.add w ~time ~seq ~flow)
    entries;
  Alcotest.(check int) "size" 5 (Cc.Rto_wheel.size w);
  let popped = ref [] in
  while not (Cc.Rto_wheel.is_empty w) do
    let tm = Cc.Rto_wheel.min_time w in
    let sq = Cc.Rto_wheel.min_seq w in
    popped := (tm, sq, Cc.Rto_wheel.take w) :: !popped
  done;
  Alcotest.(check bool)
    "pops in (time, seq) order" true
    (List.rev !popped
    = [ (0.25, 0, 5); (0.25, 1, 0); (0.5, 2, 7); (0.5, 3, 1); (1.0, 4, 2) ])

let test_rto_wheel_filter () =
  let w = Cc.Rto_wheel.create () in
  for i = 0 to 99 do
    Cc.Rto_wheel.add w ~time:(float_of_int (i mod 10) *. 0.1) ~seq:i ~flow:i
  done;
  (* Keep only flows under 50 — mimics sweeping stale entries. *)
  Cc.Rto_wheel.filter w ~keep:(fun ~flow ~time:_ -> flow < 50);
  Alcotest.(check int) "filtered size" 50 (Cc.Rto_wheel.size w);
  let last = ref (-1., -1) in
  while not (Cc.Rto_wheel.is_empty w) do
    let tm = Cc.Rto_wheel.min_time w in
    let sq = Cc.Rto_wheel.min_seq w in
    let fl = Cc.Rto_wheel.take w in
    Alcotest.(check bool) "survivor" true (fl < 50);
    Alcotest.(check bool) "order preserved" true ((tm, sq) > !last);
    last := (tm, sq)
  done

let test_rto_wheel_validation () =
  let w = Cc.Rto_wheel.create () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Rto_wheel.add: time must be finite and non-negative")
    (fun () -> Cc.Rto_wheel.add w ~time:(-1.) ~seq:0 ~flow:0);
  Alcotest.check_raises "flow out of range"
    (Invalid_argument "Rto_wheel.add: flow out of range") (fun () ->
      Cc.Rto_wheel.add w ~time:0. ~seq:0 ~flow:Cc.Rto_wheel.max_flows)

(* Lazy re-arming strands stale wheel entries; the sweep in the SoA
   engine must keep the total bounded by 2 * live + 64 whatever the
   deadline churn.  Checked mid-run (several probe points) and at the
   end of a collision-heavy instance. *)
let test_wheel_size_bounded () =
  let p = { (small 64) with Mf.duration = 4. } in
  let b = Mf.build_soa p in
  let bound_ok () =
    let size = Cc.Flow_soa.wheel_size b.Mf.eng in
    let tracked = Cc.Flow_soa.wheel_tracked b.Mf.eng in
    if size > (2 * tracked) + 64 then
      Alcotest.failf "wheel size %d exceeds 2*%d + 64" size tracked
  in
  for k = 1 to 8 do
    Engine.Sim.run ~until:(0.5 *. float_of_int k) b.Mf.sim;
    bound_ok ()
  done;
  Alcotest.(check bool)
    "wheel saw traffic" true
    (Cc.Flow_soa.wheel_tracked b.Mf.eng > 0)

let suite =
  [
    Alcotest.test_case "equiv at n=64 (dyadic collisions, calendar)" `Quick
      test_equiv_dyadic_collisions;
    Alcotest.test_case "equiv at n=64 (heap)" `Quick test_equiv_heap_sched;
    Alcotest.test_case "equiv across queue kinds" `Quick
      test_equiv_across_queue_kinds;
    Alcotest.test_case "equiv on fuzz seeds" `Quick test_equiv_fuzz_seeds;
    Alcotest.test_case "SoA digest scheduler-independent" `Quick
      test_soa_digest_sched_independent;
    Alcotest.test_case "ack batching digest-safe on dumbbell" `Quick
      test_ack_batching_digest_safe;
    Alcotest.test_case "object engine rejects batching" `Quick
      test_build_object_rejects_batching;
    Alcotest.test_case "stop freezes senders" `Quick test_stop_freezes_senders;
    Alcotest.test_case "Flow.t view consistent" `Quick test_flow_view_consistent;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "RTO wheel (time, seq) order" `Quick
      test_rto_wheel_order;
    Alcotest.test_case "RTO wheel filter" `Quick test_rto_wheel_filter;
    Alcotest.test_case "RTO wheel validation" `Quick
      test_rto_wheel_validation;
    Alcotest.test_case "wheel size bounded by live entries" `Quick
      test_wheel_size_bounded;
  ]
