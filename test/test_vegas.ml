(* The Vegas-style sender: delay-based convergence, standing-queue
   control checked against ground-truth queueing delay from the link
   hook, base-RTT accuracy, and the RTO floor. *)

let fixture ?(seed = 1) ?(bandwidth = 8e6) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth)
  in
  (sim, db)

let spawn ?(cfg = Cc.Vegas.default_config) sim db =
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow = Netsim.Dumbbell.fresh_flow db in
  Cc.Vegas.create ~sim ~src ~dst ~flow cfg

let test_converges_without_loss () =
  (* 8 Mbps / 50 ms = 50-packet BDP.  Vegas should fill the pipe, hold
     alpha..beta packets of standing queue, and stay out of slow start —
     all with (near) zero drops, the defining delay-based property. *)
  let sim, db = fixture () in
  let v = spawn sim db in
  Cc.Vegas.start v;
  Engine.Sim.run ~until:20. sim;
  let delivered = (Cc.Vegas.flow v).Cc.Flow.bytes_delivered () in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f%% utilization"
       (delivered /. (8e6 /. 8. *. 20.) *. 100.))
    true
    (delivered > 0.7 *. (8e6 /. 8. *. 20.));
  Alcotest.(check bool) "out of slow start" true
    (not (Cc.Vegas.in_slow_start v));
  let drops = Netsim.Link.drops (Netsim.Dumbbell.bottleneck db) in
  Alcotest.(check bool)
    (Printf.sprintf "%d drops (delay-based, not loss-based)" drops)
    true (drops < 20)

let test_standing_queue_ground_truth () =
  (* The link's queueing-delay hook gives exact per-packet ground truth;
     in steady state Vegas targets alpha..beta packets of standing queue
     (1..4 ms at 1 ms/packet), so the measured mean must sit well below
     what a loss-based sender would pile up (the 2.5x-BDP buffer is
     ~125 ms deep). *)
  let sim, db = fixture () in
  let v = spawn sim db in
  let sum = ref 0. and n = ref 0 in
  Netsim.Link.on_queue_delay (Netsim.Dumbbell.bottleneck db) (fun _ d ->
      if Engine.Sim.now sim > 10. then begin
        sum := !sum +. d;
        incr n
      end);
  Cc.Vegas.start v;
  Engine.Sim.run ~until:20. sim;
  Alcotest.(check bool) "steady-state samples" true (!n > 1000);
  let mean = !sum /. float_of_int !n in
  Alcotest.(check bool)
    (Printf.sprintf "mean queueing delay %.2f ms" (mean *. 1e3))
    true
    (mean > 0. && mean < 0.012);
  let sq = Cc.Vegas.standing_queue v in
  Alcotest.(check bool)
    (Printf.sprintf "diff estimate %.1f pkts inside the band" sq)
    true
    (sq >= 0. && sq <= 8.)

let test_base_rtt_accuracy () =
  let sim, db = fixture () in
  let v = spawn sim db in
  Cc.Vegas.start v;
  Engine.Sim.run ~until:20. sim;
  let base = Cc.Vegas.base_rtt_estimate v in
  (* Base two-way propagation is 50 ms plus one serialization. *)
  Alcotest.(check bool)
    (Printf.sprintf "base RTT %.4f near propagation" base)
    true
    (base > 0.045 && base < 0.06);
  let srtt = Cc.Vegas.srtt v in
  Alcotest.(check bool)
    (Printf.sprintf "srtt %.4f >= base" srtt)
    true (srtt >= 0.045 && srtt < 0.1)

let test_rto_floor () =
  let sim, db = fixture () in
  let v = spawn sim db in
  Alcotest.(check bool) "floored before any sample" true
    (Cc.Vegas.rto v >= 0.2);
  Cc.Vegas.start v;
  Engine.Sim.run ~until:5. sim;
  (* A clean 50 ms path: srtt + 4*rttvar lands far below 200 ms. *)
  Alcotest.(check bool) "floored after samples" true (Cc.Vegas.rto v >= 0.2)

let test_config_validation () =
  let sim, db = fixture () in
  Alcotest.check_raises "beta < alpha"
    (Invalid_argument "Vegas: need 0 <= alpha <= beta") (fun () ->
      ignore
        (spawn
           ~cfg:{ Cc.Vegas.default_config with Cc.Vegas.alpha = 5.; beta = 2. }
           sim db))

let test_recovers_from_loss () =
  (* A deterministic single drop: Vegas retransmits (fast or RTO), keeps
     its srtt honest under Karn's rule, and finishes the run healthy. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:3 in
  let make_queue () =
    Netsim.Loss_pattern.one_per_interval ~sim ~interval:1e9 ~start:0.
      (Netsim.Droptail.make ~capacity:1000)
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:8e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let v = spawn sim db in
  Cc.Vegas.start v;
  Engine.Sim.run ~until:10. sim;
  Alcotest.(check bool) "recovered and kept sending" true
    ((Cc.Vegas.flow v).Cc.Flow.bytes_delivered () > 0.5 *. (8e6 /. 8. *. 10.));
  Alcotest.(check bool) "srtt not inflated by the retransmit" true
    (Cc.Vegas.srtt v < 0.2)

let suite =
  [
    Alcotest.test_case "converges without loss" `Slow
      test_converges_without_loss;
    Alcotest.test_case "standing queue vs ground truth" `Slow
      test_standing_queue_ground_truth;
    Alcotest.test_case "base RTT accuracy" `Slow test_base_rtt_accuracy;
    Alcotest.test_case "rto floor" `Quick test_rto_floor;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "recovers from a designed loss" `Slow
      test_recovers_from_loss;
  ]
