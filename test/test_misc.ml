(* Odds and ends: engine stress, Flow helpers, metric edge cases. *)

let test_heap_stress () =
  (* A million mixed operations stay fast and ordered. *)
  let h = Engine.Event_heap.create () in
  let rng = Engine.Rng.create ~seed:99 in
  for i = 1 to 500_000 do
    Engine.Event_heap.add h ~time:(Engine.Rng.float rng) i
  done;
  let last = ref neg_infinity in
  let ok = ref true in
  let rec drain () =
    match Engine.Event_heap.pop h with
    | None -> ()
    | Some (t, _) ->
      if t < !last then ok := false;
      last := t;
      drain ()
  in
  drain ();
  Alcotest.(check bool) "ordered under stress" true !ok

let test_sim_event_storm () =
  (* 100k self-rescheduling events complete and count correctly. *)
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 100_000 then Engine.Sim.after sim 1e-4 tick
  in
  Engine.Sim.at sim 0. tick;
  Engine.Sim.run sim;
  Alcotest.(check int) "all events ran" 100_000 !count;
  Alcotest.(check int) "processed counter" 100_000
    (Engine.Sim.events_processed sim)

let test_flow_throughput_helper () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth:10e6)
  in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let cbr =
    Cc.Cbr.create ~sim ~src ~dst ~flow:flow_id ~rate:2e6 ~pkt_size:1000
  in
  let flow = Cc.Cbr.flow cbr in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:5. sim;
  let snapshot0 = flow.Cc.Flow.bytes_delivered () in
  Engine.Sim.run ~until:10. sim;
  let thr = Cc.Flow.throughput flow ~t0:5. ~t1:10. ~snapshot0 in
  (* 2 Mbps = 250 kB/s. *)
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f B/s" thr)
    true
    (Float.abs (thr -. 250_000.) < 10_000.)

let test_flow_throughput_validates_interval () =
  let dummy =
    {
      Cc.Flow.id = 0;
      protocol = "x";
      start = ignore;
      stop = ignore;
      pkts_sent = (fun () -> 0);
      bytes_sent = (fun () -> 0.);
      bytes_delivered = (fun () -> 0.);
      current_rate = (fun () -> 0.);
      srtt = (fun () -> 0.);
      stats =
        Cc.Flow.basic_stats
          ~pkts_sent:(fun () -> 0)
          ~bytes_sent:(fun () -> 0.)
          ~bytes_delivered:(fun () -> 0.)
          ~srtt:(fun () -> 0.);
      ff = None;
    }
  in
  Alcotest.check_raises "empty interval"
    (Invalid_argument "Flow.throughput: empty interval") (fun () ->
      ignore (Cc.Flow.throughput dummy ~t0:1. ~t1:1. ~snapshot0:0.))

let test_stabilization_threshold_floor () =
  (* With zero steady loss the 1.5x threshold would be zero; the floor
     keeps the metric usable. *)
  let ts = Engine.Timeseries.create () in
  List.iteri
    (fun i v -> Engine.Timeseries.add ts ~time:(float_of_int i) v)
    [ 0.; 0.; 0.2; 0.2; 0.; 0. ];
  match
    Slowcc.Metrics.stabilization ~loss_series:ts ~t_event:1. ~steady_loss:0.
      ~rtt:0.05
  with
  | Some s ->
    Alcotest.(check bool) "finite time" true (s.Slowcc.Metrics.time_seconds > 0.)
  | None -> Alcotest.fail "spike not detected with zero steady loss"

let test_protocol_name_roundtrip () =
  List.iter
    (fun (p, expected) ->
      Alcotest.(check string) expected expected (Slowcc.Protocol.name p))
    [
      (Slowcc.Protocol.tcp_sack ~gamma:2., "TCP-SACK(1/2)");
      (Slowcc.Protocol.tear ~rounds:8, "TEAR(8)");
      (Slowcc.Protocol.iiad ~gamma:4., "IIAD(1/4)");
    ]

let test_spawn_ca_start () =
  (* A CA-start flow grows additively: after 10 RTTs without loss the
     window is near iw + 10a, far below what slow-start would reach. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth:50e6)
  in
  let flow = Slowcc.Protocol.spawn ~ca_start:true (Slowcc.Protocol.tcp ~gamma:2.) db in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:0.55 sim;
  (* ~10 RTTs: slow-start would deliver ~2^10 packets; CA delivers ~70. *)
  let pkts = flow.Cc.Flow.bytes_delivered () /. 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f pkts delivered (CA pace)" pkts)
    true
    (pkts > 20. && pkts < 200.)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let sample_table =
  Slowcc.Table.make ~id:"t1" ~title:"sample"
    ~columns:[ "a"; "b" ]
    ~notes:[ "first note"; "second note" ]
    [ [ "1"; "2" ] ]

let test_save_csv_nested_dir () =
  (* save_csv used to require the parent to exist; now it creates the
     whole chain. *)
  let dir = "tmp-misc/deeply/nested/dir" in
  let path = Slowcc.Table.save_csv ~dir sample_table in
  Alcotest.(check bool) "csv written" true (Sys.file_exists path);
  Alcotest.(check string) "strict csv body" "a,b\n1,2\n" (read_file path)

let test_save_csv_dir_is_file () =
  (* A path component that exists as a regular file must fail loudly, not
     with an opaque Sys_error from open_out. *)
  Slowcc.Table.ensure_dir "tmp-misc";
  let blocker = "tmp-misc/blocker" in
  let oc = open_out blocker in
  close_out oc;
  Alcotest.check_raises "clear error"
    (Invalid_argument
       "Table.ensure_dir: tmp-misc/blocker exists and is not a directory")
    (fun () -> ignore (Slowcc.Table.save_csv ~dir:blocker sample_table))

let test_save_csv_notes_sidecar () =
  (* Notes used to be embedded as "# ..." lines inside the CSV, corrupting
     strict parsers; they now live in a sidecar. *)
  let dir = "tmp-misc/sidecar" in
  let path = Slowcc.Table.save_csv ~dir sample_table in
  let body = read_file path in
  Alcotest.(check bool) "no comment lines in csv" false
    (String.exists (fun c -> c = '#') body);
  Alcotest.(check string) "sidecar holds the notes"
    "first note\nsecond note\n"
    (read_file (Filename.concat dir "t1.notes.txt"))

let suite =
  [
    Alcotest.test_case "heap stress" `Slow test_heap_stress;
    Alcotest.test_case "sim event storm" `Slow test_sim_event_storm;
    Alcotest.test_case "flow throughput helper" `Quick
      test_flow_throughput_helper;
    Alcotest.test_case "flow throughput validation" `Quick
      test_flow_throughput_validates_interval;
    Alcotest.test_case "stabilization zero-loss floor" `Quick
      test_stabilization_threshold_floor;
    Alcotest.test_case "protocol names" `Quick test_protocol_name_roundtrip;
    Alcotest.test_case "ca_start paces additively" `Quick test_spawn_ca_start;
    Alcotest.test_case "save_csv creates nested dirs" `Quick
      test_save_csv_nested_dir;
    Alcotest.test_case "save_csv rejects file-as-dir" `Quick
      test_save_csv_dir_is_file;
    Alcotest.test_case "save_csv notes go to sidecar" `Quick
      test_save_csv_notes_sidecar;
  ]
