(* Scheduler semantics: ordering, cancellation, periodic events. *)

let check_float = Alcotest.(check (float 1e-9))

let test_run_order () =
  let sim = Engine.Sim.create () in
  let log = ref [] in
  Engine.Sim.at sim 2. (fun () -> log := "b" :: !log);
  Engine.Sim.at sim 1. (fun () -> log := "a" :: !log);
  Engine.Sim.at sim 3. (fun () -> log := "c" :: !log);
  Engine.Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let test_now_advances () =
  let sim = Engine.Sim.create () in
  let seen = ref [] in
  Engine.Sim.at sim 1.5 (fun () -> seen := Engine.Sim.now sim :: !seen);
  Engine.Sim.after sim 0.5 (fun () -> seen := Engine.Sim.now sim :: !seen);
  Engine.Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "times" [ 0.5; 1.5 ] (List.rev !seen)

let test_past_rejected () =
  let sim = Engine.Sim.create () in
  Engine.Sim.at sim 1. (fun () ->
      try
        Engine.Sim.at sim 0.5 (fun () -> ());
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ());
  Engine.Sim.run sim

let test_until () =
  let sim = Engine.Sim.create () in
  let fired = ref false in
  Engine.Sim.at sim 10. (fun () -> fired := true);
  Engine.Sim.run ~until:5. sim;
  Alcotest.(check bool) "not fired" false !fired;
  check_float "clock at horizon" 5. (Engine.Sim.now sim)

let test_cancel () =
  let sim = Engine.Sim.create () in
  let fired = ref false in
  let h = Engine.Sim.at_cancellable sim 1. (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Engine.Sim.pending h);
  Engine.Sim.cancel h;
  Engine.Sim.run sim;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check bool) "not pending" false (Engine.Sim.pending h)

let test_handle_fires_once () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  let h = Engine.Sim.after_cancellable sim 1. (fun () -> incr count) in
  Engine.Sim.run sim;
  Alcotest.(check int) "fired" 1 !count;
  Alcotest.(check bool) "consumed" false (Engine.Sim.pending h)

let test_every () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  Engine.Sim.every sim ~interval:1. ~stop:5.5 (fun () -> incr count);
  Engine.Sim.run sim;
  Alcotest.(check int) "five ticks" 5 !count

let test_every_bad_interval () =
  let sim = Engine.Sim.create () in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Sim.every: non-positive interval") (fun () ->
      Engine.Sim.every sim ~interval:0. (fun () -> ()))

let test_stop () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  Engine.Sim.every sim ~interval:1. (fun () ->
      incr count;
      if !count = 3 then Engine.Sim.stop sim);
  Engine.Sim.run sim;
  Alcotest.(check int) "stopped after 3" 3 !count

let test_nested_scheduling () =
  let sim = Engine.Sim.create () in
  let depth = ref 0 in
  let rec nest n =
    if n > 0 then
      Engine.Sim.after sim 0.1 (fun () ->
          incr depth;
          nest (n - 1))
  in
  nest 10;
  Engine.Sim.run sim;
  Alcotest.(check int) "all nested events ran" 10 !depth;
  check_float "clock" 1.0 (Engine.Sim.now sim);
  Alcotest.(check int) "processed" 10 (Engine.Sim.events_processed sim)

let test_resume_after_until () =
  (* Regression: run ~until must not consume the first event beyond the
     horizon; a resumed run must still fire it. *)
  let sim = Engine.Sim.create () in
  let fired = ref false in
  Engine.Sim.at sim 2. (fun () -> fired := true);
  Engine.Sim.run ~until:1. sim;
  Alcotest.(check bool) "not yet" false !fired;
  Engine.Sim.run ~until:3. sim;
  Alcotest.(check bool) "fired on resume" true !fired

let test_every_no_drift () =
  (* Regression: ticks must land exactly on base +. k *. interval.  The old
     accumulated form (next <- next +. interval) drifts by ~1e-8 over 1e6
     ticks of 1e-3, which the exact float equality below would catch. *)
  let sim = Engine.Sim.create () in
  let interval = 1e-3 in
  let ticks = 1_000_000 in
  let k = ref 0 in
  let exact = ref true in
  Engine.Sim.every sim ~interval ~stop:(float_of_int ticks *. interval)
    (fun () ->
      incr k;
      if Engine.Sim.now sim <> float_of_int !k *. interval then exact := false);
  Engine.Sim.run sim;
  Alcotest.(check bool) "every tick on the exact grid" true !exact;
  Alcotest.(check int) "tick count" ticks !k

let test_same_time_fifo () =
  let sim = Engine.Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.Sim.at sim 1. (fun () -> log := i :: !log)
  done;
  Engine.Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let suite =
  [
    Alcotest.test_case "run order" `Quick test_run_order;
    Alcotest.test_case "clock advances" `Quick test_now_advances;
    Alcotest.test_case "past scheduling rejected" `Quick test_past_rejected;
    Alcotest.test_case "run until horizon" `Quick test_until;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "handle fires once" `Quick test_handle_fires_once;
    Alcotest.test_case "every" `Quick test_every;
    Alcotest.test_case "every rejects bad interval" `Quick test_every_bad_interval;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "every stays on grid over 1e6 ticks" `Slow
      test_every_no_drift;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "resume after until" `Quick test_resume_after_until;
    Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
  ]
