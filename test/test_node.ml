(* Node routing and agent dispatch. *)

let mk_pkt ~flow ~dst = Netsim.Packet.make ~flow ~src:0 ~dst ~sent_at:0. ()

let test_local_dispatch () =
  let node = Netsim.Node.create ~id:5 in
  let got = ref [] in
  Netsim.Node.attach node ~flow:7 (fun pkt ->
      got := pkt.Netsim.Packet.flow :: !got);
  Netsim.Node.receive node (mk_pkt ~flow:7 ~dst:5);
  Alcotest.(check (list int)) "dispatched" [ 7 ] !got

let test_unknown_flow_discarded () =
  let node = Netsim.Node.create ~id:5 in
  Netsim.Node.receive node (mk_pkt ~flow:9 ~dst:5);
  Alcotest.(check int) "discarded" 1 (Netsim.Node.discarded node)

let test_detach () =
  let node = Netsim.Node.create ~id:5 in
  Netsim.Node.attach node ~flow:7 (fun _ -> ());
  Netsim.Node.detach node ~flow:7;
  Netsim.Node.receive node (mk_pkt ~flow:7 ~dst:5);
  Alcotest.(check int) "discarded after detach" 1 (Netsim.Node.discarded node)

let link_fixture sim =
  Netsim.Link.make ~sim ~bandwidth:1e9 ~delay:0.001
    ~queue:(Netsim.Droptail.make ~capacity:100)

let test_routing () =
  let sim = Engine.Sim.create () in
  let node = Netsim.Node.create ~id:0 in
  let l1 = link_fixture sim and l2 = link_fixture sim in
  let via1 = ref 0 and via2 = ref 0 in
  Netsim.Link.connect l1 (fun _ -> incr via1);
  Netsim.Link.connect l2 (fun _ -> incr via2);
  Netsim.Node.add_route node ~dst:1 l1;
  Netsim.Node.set_default_route node l2;
  Netsim.Node.receive node (mk_pkt ~flow:0 ~dst:1);
  Netsim.Node.receive node (mk_pkt ~flow:0 ~dst:42);
  Engine.Sim.run sim;
  Alcotest.(check int) "explicit route" 1 !via1;
  Alcotest.(check int) "default route" 1 !via2

let test_no_route_discards () =
  let node = Netsim.Node.create ~id:0 in
  Netsim.Node.receive node (mk_pkt ~flow:0 ~dst:99);
  Alcotest.(check int) "discarded" 1 (Netsim.Node.discarded node)

(* Dense dispatch: small non-negative flow ids live in an array, huge or
   negative ids fall back to the hash table, and the two behave
   identically through attach/detach/reserve. *)
let sparse_flow = 1 lsl 21 (* beyond the dense table's id ceiling *)

let test_dense_and_sparse_dispatch () =
  let node = Netsim.Node.create ~id:5 in
  let got = ref [] in
  let record pkt = got := pkt.Netsim.Packet.flow :: !got in
  Netsim.Node.attach node ~flow:3 record;
  Netsim.Node.attach node ~flow:sparse_flow record;
  Netsim.Node.attach node ~flow:(-2) record;
  Netsim.Node.receive node (mk_pkt ~flow:3 ~dst:5);
  Netsim.Node.receive node (mk_pkt ~flow:sparse_flow ~dst:5);
  Netsim.Node.receive node (mk_pkt ~flow:(-2) ~dst:5);
  Alcotest.(check (list int))
    "all three paths dispatch"
    [ 3; sparse_flow; -2 ]
    (List.rev !got);
  Alcotest.(check int) "nothing discarded" 0 (Netsim.Node.discarded node)

let test_detach_both_paths () =
  let node = Netsim.Node.create ~id:5 in
  Netsim.Node.attach node ~flow:3 (fun _ -> Alcotest.fail "detached dense");
  Netsim.Node.attach node ~flow:sparse_flow (fun _ ->
      Alcotest.fail "detached sparse");
  Netsim.Node.detach node ~flow:3;
  Netsim.Node.detach node ~flow:sparse_flow;
  Netsim.Node.receive node (mk_pkt ~flow:3 ~dst:5);
  Netsim.Node.receive node (mk_pkt ~flow:sparse_flow ~dst:5);
  Alcotest.(check int) "both discarded" 2 (Netsim.Node.discarded node)

let test_attach_replaces () =
  let node = Netsim.Node.create ~id:5 in
  let hits = ref 0 in
  Netsim.Node.attach node ~flow:3 (fun _ -> Alcotest.fail "stale handler");
  Netsim.Node.attach node ~flow:3 (fun _ -> incr hits);
  Netsim.Node.receive node (mk_pkt ~flow:3 ~dst:5);
  Alcotest.(check int) "replacement handler ran" 1 !hits

let test_reserve_bulk_attach () =
  let node = Netsim.Node.create ~id:5 in
  let n = 10_000 in
  Netsim.Node.reserve node ~flows:n;
  let hits = Array.make n 0 in
  for f = 0 to n - 1 do
    Netsim.Node.attach node ~flow:f (fun pkt ->
        let i = pkt.Netsim.Packet.flow in
        hits.(i) <- hits.(i) + 1)
  done;
  for f = 0 to n - 1 do
    Netsim.Node.receive node (mk_pkt ~flow:f ~dst:5)
  done;
  Alcotest.(check bool)
    "every reserved flow dispatched exactly once" true
    (Array.for_all (fun c -> c = 1) hits);
  Alcotest.(check int) "no discards" 0 (Netsim.Node.discarded node)

let test_unattached_dense_id_discarded () =
  let node = Netsim.Node.create ~id:5 in
  Netsim.Node.reserve node ~flows:100;
  Netsim.Node.receive node (mk_pkt ~flow:50 ~dst:5);
  Alcotest.(check int)
    "reserved but unattached id discards" 1
    (Netsim.Node.discarded node)

let suite =
  [
    Alcotest.test_case "local dispatch" `Quick test_local_dispatch;
    Alcotest.test_case "dense and sparse dispatch" `Quick
      test_dense_and_sparse_dispatch;
    Alcotest.test_case "detach on both paths" `Quick test_detach_both_paths;
    Alcotest.test_case "attach replaces handler" `Quick test_attach_replaces;
    Alcotest.test_case "reserve + bulk attach" `Quick test_reserve_bulk_attach;
    Alcotest.test_case "unattached dense id discarded" `Quick
      test_unattached_dense_id_discarded;
    Alcotest.test_case "unknown flow discarded" `Quick
      test_unknown_flow_discarded;
    Alcotest.test_case "detach" `Quick test_detach;
    Alcotest.test_case "routing" `Quick test_routing;
    Alcotest.test_case "no route discards" `Quick test_no_route_discards;
  ]
