(* Tests for the domain worker pool and the determinism of parallel
   experiment sweeps. *)

let test_map_order () =
  (* Results come back in submission order even with many workers racing
     over a shared queue. *)
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      let ys = Engine.Pool.map_list pool (fun x -> x * x) xs in
      Alcotest.(check (list int)) "squares in order"
        (List.map (fun x -> x * x) xs)
        ys)

let test_run_jobs_keys () =
  Engine.Pool.with_pool ~jobs:3 (fun pool ->
      let jobs =
        List.map (fun k -> (k, fun () -> String.length k)) [ "a"; "bb"; "ccc" ]
      in
      Alcotest.(check (list (pair string int)))
        "keys and results in order"
        [ ("a", 1); ("bb", 2); ("ccc", 3) ]
        (Engine.Pool.run_jobs pool jobs))

let test_exception_propagation () =
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "worker exception reaches the submitter"
        (Failure "job 5 exploded") (fun () ->
          ignore
            (Engine.Pool.map_list pool
               (fun i -> if i = 5 then failwith "job 5 exploded" else i)
               (List.init 10 Fun.id))))

let test_jobs1_degenerate () =
  (* jobs = 1 spawns no domains and runs inline; results and exceptions
     behave exactly as at higher worker counts. *)
  let pool = Engine.Pool.create ~jobs:1 in
  Alcotest.(check int) "jobs clamped to >= 1" 1 (Engine.Pool.jobs pool);
  Alcotest.(check (list int))
    "inline map" [ 2; 4; 6 ]
    (Engine.Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.check_raises "inline exception" (Failure "boom") (fun () ->
      ignore (Engine.Pool.map_list pool (fun () -> failwith "boom") [ () ]));
  Engine.Pool.shutdown pool

let test_nested_map () =
  (* A job that itself submits a batch must not deadlock: nested batches
     run inline on the worker. *)
  Engine.Pool.with_pool ~jobs:2 (fun pool ->
      let ys =
        Engine.Pool.map_list pool
          (fun i ->
            List.fold_left ( + ) 0
              (Engine.Pool.map_list pool (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
          [ 1; 2 ]
      in
      Alcotest.(check (list int)) "nested results" [ 36; 66 ] ys)

let test_empty_and_shutdown () =
  let pool = Engine.Pool.create ~jobs:2 in
  Alcotest.(check (list int)) "empty batch" []
    (Engine.Pool.map_list pool Fun.id []);
  Engine.Pool.shutdown pool;
  Engine.Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool: submission after shutdown") (fun () ->
      ignore (Engine.Pool.map_list pool Fun.id [ 1; 2 ]))

(* Cost-model (LPT) scheduling only reorders execution; the returned
   (key, result) list must stay in submission order for any cost
   function, including adversarial ones (ties, zeros, missing and
   non-finite estimates), at jobs=1 and jobs=4. *)
let run_with_cost ~jobs ?cost kjobs =
  Engine.Pool.with_pool ~jobs (fun pool ->
      Engine.Pool.run_jobs pool ?cost kjobs)

let test_lpt_submission_order () =
  let kjobs = List.init 40 (fun i -> (i, fun () -> i * i)) in
  let expected = List.map (fun (k, f) -> (k, f ())) kjobs in
  let costs =
    [
      ("reverse", fun k -> Some (float_of_int k));
      ("uniform ties", fun _ -> Some 1.0);
      ("all zero", fun _ -> Some 0.0);
      ("missing", fun k -> if k mod 3 = 0 then Some 2.0 else None);
      ("nan and inf", fun k ->
        Some (if k mod 2 = 0 then Float.nan else Float.infinity));
      ("negative", fun k -> Some (-.float_of_int k));
    ]
  in
  List.iter
    (fun (name, cost) ->
      List.iter
        (fun jobs ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s cost at jobs=%d" name jobs)
            expected
            (run_with_cost ~jobs ~cost kjobs))
        [ 1; 4 ])
    costs

let test_lpt_randomized_determinism () =
  (* Random batch sizes, results and costs: with and without a cost
     model, serial and parallel, the output list never changes. *)
  let rng = Engine.Rng.create ~seed:7 in
  for _ = 1 to 25 do
    let n = 1 + Engine.Rng.int rng 30 in
    let payload = Array.init n (fun _ -> Engine.Rng.int rng 1000) in
    let kjobs =
      List.init n (fun i -> (Printf.sprintf "job%d" i, fun () -> payload.(i)))
    in
    let cost_table =
      Array.init n (fun _ ->
          match Engine.Rng.int rng 4 with
          | 0 -> None
          | 1 -> Some 0.
          | 2 -> Some Float.nan
          | _ -> Some (Engine.Rng.float rng))
    in
    let cost k = cost_table.(int_of_string (String.sub k 3 (String.length k - 3))) in
    let baseline = run_with_cost ~jobs:1 kjobs in
    Alcotest.(check (list (pair string int)))
      "costed serial = uncosted serial" baseline
      (run_with_cost ~jobs:1 ~cost kjobs);
    Alcotest.(check (list (pair string int)))
      "costed parallel = uncosted serial" baseline
      (run_with_cost ~jobs:4 ~cost kjobs)
  done

(* The acceptance bar for the parallel runner: a figure's rendered table
   must be byte-identical at --jobs 1 and --jobs 4. *)
let render_figure ~jobs name =
  Engine.Pool.with_pool ~jobs (fun pool ->
      match Slowcc.Experiments.run_by_name ~quick:true ~pool name with
      | Some tables ->
        String.concat "\n"
          (List.map (fun t -> Format.asprintf "%a" Slowcc.Table.print t) tables)
      | None -> Alcotest.failf "unknown experiment %s" name)

let test_figure_determinism () =
  let serial = render_figure ~jobs:1 "fig17" in
  let parallel = render_figure ~jobs:4 "fig17" in
  Alcotest.(check string) "fig17 identical at jobs=1 and jobs=4" serial
    parallel

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "run_jobs keeps keys" `Quick test_run_jobs_keys;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "jobs=1 degenerate" `Quick test_jobs1_degenerate;
    Alcotest.test_case "nested map runs inline" `Quick test_nested_map;
    Alcotest.test_case "empty batch and shutdown" `Quick test_empty_and_shutdown;
    Alcotest.test_case "lpt keeps submission order" `Quick
      test_lpt_submission_order;
    Alcotest.test_case "lpt randomized determinism" `Quick
      test_lpt_randomized_determinism;
    Alcotest.test_case "figure table determinism" `Slow test_figure_determinism;
  ]
