(* Tests for the domain worker pool and the determinism of parallel
   experiment sweeps. *)

let test_map_order () =
  (* Results come back in submission order even with many workers racing
     over a shared queue. *)
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      let ys = Engine.Pool.map_list pool (fun x -> x * x) xs in
      Alcotest.(check (list int)) "squares in order"
        (List.map (fun x -> x * x) xs)
        ys)

let test_run_jobs_keys () =
  Engine.Pool.with_pool ~jobs:3 (fun pool ->
      let jobs =
        List.map (fun k -> (k, fun () -> String.length k)) [ "a"; "bb"; "ccc" ]
      in
      Alcotest.(check (list (pair string int)))
        "keys and results in order"
        [ ("a", 1); ("bb", 2); ("ccc", 3) ]
        (Engine.Pool.run_jobs pool jobs))

let test_exception_propagation () =
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "worker exception reaches the submitter"
        (Failure "job 5 exploded") (fun () ->
          ignore
            (Engine.Pool.map_list pool
               (fun i -> if i = 5 then failwith "job 5 exploded" else i)
               (List.init 10 Fun.id))))

let test_jobs1_degenerate () =
  (* jobs = 1 spawns no domains and runs inline; results and exceptions
     behave exactly as at higher worker counts. *)
  let pool = Engine.Pool.create ~jobs:1 in
  Alcotest.(check int) "jobs clamped to >= 1" 1 (Engine.Pool.jobs pool);
  Alcotest.(check (list int))
    "inline map" [ 2; 4; 6 ]
    (Engine.Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.check_raises "inline exception" (Failure "boom") (fun () ->
      ignore (Engine.Pool.map_list pool (fun () -> failwith "boom") [ () ]));
  Engine.Pool.shutdown pool

let test_nested_map () =
  (* A job that itself submits a batch must not deadlock: nested batches
     run inline on the worker. *)
  Engine.Pool.with_pool ~jobs:2 (fun pool ->
      let ys =
        Engine.Pool.map_list pool
          (fun i ->
            List.fold_left ( + ) 0
              (Engine.Pool.map_list pool (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
          [ 1; 2 ]
      in
      Alcotest.(check (list int)) "nested results" [ 36; 66 ] ys)

let test_empty_and_shutdown () =
  let pool = Engine.Pool.create ~jobs:2 in
  Alcotest.(check (list int)) "empty batch" []
    (Engine.Pool.map_list pool Fun.id []);
  Engine.Pool.shutdown pool;
  Engine.Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool: submission after shutdown") (fun () ->
      ignore (Engine.Pool.map_list pool Fun.id [ 1; 2 ]))

(* The acceptance bar for the parallel runner: a figure's rendered table
   must be byte-identical at --jobs 1 and --jobs 4. *)
let render_figure ~jobs name =
  Engine.Pool.with_pool ~jobs (fun pool ->
      match Slowcc.Experiments.run_by_name ~quick:true ~pool name with
      | Some tables ->
        String.concat "\n"
          (List.map (fun t -> Format.asprintf "%a" Slowcc.Table.print t) tables)
      | None -> Alcotest.failf "unknown experiment %s" name)

let test_figure_determinism () =
  let serial = render_figure ~jobs:1 "fig17" in
  let parallel = render_figure ~jobs:4 "fig17" in
  Alcotest.(check string) "fig17 identical at jobs=1 and jobs=4" serial
    parallel

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "run_jobs keeps keys" `Quick test_run_jobs_keys;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "jobs=1 degenerate" `Quick test_jobs1_degenerate;
    Alcotest.test_case "nested map runs inline" `Quick test_nested_map;
    Alcotest.test_case "empty batch and shutdown" `Quick test_empty_and_shutdown;
    Alcotest.test_case "figure table determinism" `Slow test_figure_determinism;
  ]
