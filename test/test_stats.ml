(* Online statistics and fairness helpers. *)

let feed xs =
  let s = Engine.Stats.create () in
  List.iter (Engine.Stats.add s) xs;
  s

let test_mean_var () =
  let s = feed [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check (float 1e-9)) "mean" 5. (Engine.Stats.mean s);
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Engine.Stats.variance s);
  Alcotest.(check (float 1e-9)) "sum" 40. (Engine.Stats.sum s);
  Alcotest.(check int) "count" 8 (Engine.Stats.count s)

let test_min_max () =
  let s = feed [ 3.; -1.; 7. ] in
  Alcotest.(check (float 0.)) "min" (-1.) (Engine.Stats.min s);
  Alcotest.(check (float 0.)) "max" 7. (Engine.Stats.max s)

let test_empty () =
  let s = Engine.Stats.create () in
  Alcotest.(check (float 0.)) "mean of empty" 0. (Engine.Stats.mean s);
  Alcotest.(check (float 0.)) "variance of empty" 0. (Engine.Stats.variance s)

let test_single () =
  let s = feed [ 42. ] in
  Alcotest.(check (float 0.)) "variance of one" 0. (Engine.Stats.variance s)

let test_cov () =
  let s = feed [ 1.; 1.; 1. ] in
  Alcotest.(check (float 1e-12)) "cov of constant" 0. (Engine.Stats.cov s)

let test_cov_negative_mean () =
  (* Regression: cov divided by the signed mean, so series with negative
     means got a negative coefficient of variation.  CoV is defined over
     |mean|. *)
  let pos = feed [ 1.; 2.; 3. ] and neg = feed [ -1.; -2.; -3. ] in
  Alcotest.(check bool) "cov non-negative" true (Engine.Stats.cov neg >= 0.);
  Alcotest.(check (float 1e-12)) "mirrored series, same cov"
    (Engine.Stats.cov pos) (Engine.Stats.cov neg)

let test_jain_equal () =
  Alcotest.(check (float 1e-9)) "equal shares" 1.
    (Engine.Stats.jain_index [ 3.; 3.; 3.; 3. ])

let test_jain_skewed () =
  (* One user takes everything among n: index = 1/n. *)
  Alcotest.(check (float 1e-9)) "monopoly" 0.25
    (Engine.Stats.jain_index [ 10.; 0.; 0.; 0. ])

let test_jain_empty () =
  Alcotest.(check (float 0.)) "empty" 1. (Engine.Stats.jain_index [])

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check (float 1e-9)) "median" 3. (Engine.Stats.percentile 0.5 xs);
  Alcotest.(check (float 1e-9)) "min" 1. (Engine.Stats.percentile 0. xs);
  Alcotest.(check (float 1e-9)) "max" 5. (Engine.Stats.percentile 1. xs);
  Alcotest.(check (float 1e-9)) "interpolated" 1.5
    (Engine.Stats.percentile 0.125 xs)

let test_percentile_float_compare () =
  (* Regression: sorting with polymorphic [compare] is fragile for float
     lists (and wrong for NaN-laden ones); [Float.compare] gives a total
     order with NaN sorted first, so finite quantiles stay sensible. *)
  let xs = [ 5.; Float.nan; 1.; 3. ] in
  Alcotest.(check (float 1e-9)) "max ignores NaN position" 5.
    (Engine.Stats.percentile 1. xs);
  let mixed = [ -0.; 2.; 0.; -1. ] in
  Alcotest.(check (float 1e-9)) "signed zeros ordered" 2.
    (Engine.Stats.percentile 1. mixed)

let prop_welford_matches_naive =
  QCheck2.Test.make ~name:"welford variance matches two-pass" ~count:100
    QCheck2.Gen.(list_size (int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = feed xs in
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        /. (n -. 1.)
      in
      Float.abs (Engine.Stats.variance s -. var) < 1e-6 *. (1. +. var))

let prop_jain_bounds =
  QCheck2.Test.make ~name:"jain index lies in [1/n, 1]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.0 100.))
    (fun xs ->
      let j = Engine.Stats.jain_index xs in
      let n = float_of_int (List.length xs) in
      j >= (1. /. n) -. 1e-9 && j <= 1. +. 1e-9)

let suite =
  [
    Alcotest.test_case "mean and variance" `Quick test_mean_var;
    Alcotest.test_case "min max" `Quick test_min_max;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "single sample" `Quick test_single;
    Alcotest.test_case "cov" `Quick test_cov;
    Alcotest.test_case "cov with negative mean" `Quick test_cov_negative_mean;
    Alcotest.test_case "jain equal" `Quick test_jain_equal;
    Alcotest.test_case "jain skewed" `Quick test_jain_skewed;
    Alcotest.test_case "jain empty" `Quick test_jain_empty;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile float ordering" `Quick
      test_percentile_float_compare;
    QCheck_alcotest.to_alcotest prop_welford_matches_naive;
    QCheck_alcotest.to_alcotest prop_jain_bounds;
  ]
