(* Additional Window_cc edge cases: caps, guards, probe RTT behavior. *)

let db_fixture ?(seed = 5) ?(bandwidth = 50e6) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth)
  in
  (sim, db)

let spawn ?(cfg_of = Fun.id) sim db =
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let cfg =
    cfg_of
      (Cc.Window_cc.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5))
  in
  Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg

let test_max_window_cap () =
  let sim, db = db_fixture () in
  let tcp =
    spawn ~cfg_of:(fun c -> { c with Cc.Window_cc.max_window = 20. }) sim db
  in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  Engine.Sim.run ~until:10. sim;
  Alcotest.(check bool) "cwnd capped" true (Cc.Window_cc.cwnd tcp <= 20.)

let test_max_window_bounds_rate () =
  (* Window 10 on a 50 ms RTT = at most ~200 pkt/s regardless of link. *)
  let sim, db = db_fixture () in
  let tcp =
    spawn ~cfg_of:(fun c -> { c with Cc.Window_cc.max_window = 10. }) sim db
  in
  let flow = Cc.Window_cc.flow tcp in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:20. sim;
  let pps = flow.Cc.Flow.bytes_delivered () /. 1000. /. 20. in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f pps <= window/rtt" pps)
    true (pps < 215.)

let test_initial_window_respected () =
  let sim, db = db_fixture () in
  let tcp =
    spawn ~cfg_of:(fun c -> { c with Cc.Window_cc.initial_window = 4. }) sim db
  in
  let flow = Cc.Window_cc.flow tcp in
  flow.Cc.Flow.start ();
  (* Before any ack can return (RTT 50 ms), exactly IW packets go out. *)
  Engine.Sim.run ~until:0.04 sim;
  Alcotest.(check int) "initial burst" 4 (flow.Cc.Flow.pkts_sent ())

let test_initial_window_validated () =
  let sim, db = db_fixture () in
  Alcotest.check_raises "iw < 1" (Invalid_argument "Window_cc: initial_window")
    (fun () ->
      ignore
        (spawn
           ~cfg_of:(fun c -> { c with Cc.Window_cc.initial_window = 0.5 })
           sim db))

let test_no_ecn_reaction_when_disabled () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:5 in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:4e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Red_ecn;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let tcp =
    spawn ~cfg_of:(fun c -> { c with Cc.Window_cc.react_to_ecn = false }) sim db
  in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  Engine.Sim.run ~until:30. sim;
  (* Ignoring marks, the flow only backs off on physical drops (buffer
     overflow), so its window rides far above the marking region. *)
  let link = Netsim.Dumbbell.bottleneck db in
  Alcotest.(check bool) "forced drops occurred" true
    (Netsim.Link.drops link > 0)

let test_finished_flow_ignores_acks () =
  let sim, db = db_fixture () in
  let tcp =
    spawn ~cfg_of:(fun c -> { c with Cc.Window_cc.total_pkts = Some 5 }) sim db
  in
  let flow = Cc.Window_cc.flow tcp in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:10. sim;
  Alcotest.(check bool) "finished" true (Cc.Window_cc.finished tcp);
  let sent = flow.Cc.Flow.pkts_sent () in
  Engine.Sim.run ~until:20. sim;
  Alcotest.(check int) "stays quiet" sent (flow.Cc.Flow.pkts_sent ())

let test_srtt_stable_under_heavy_loss () =
  (* Regression for the RTT-probe fix: srtt must stay near the propagation
     RTT even at 20% random loss (naive cumulative-ack sampling inflated
     it by 10x or more). *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:9 in
  let make_queue () =
    Netsim.Loss_pattern.bernoulli ~rng:(Engine.Rng.split rng) ~p:0.2
      (Netsim.Droptail.make ~capacity:1000)
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:10e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let tcp = spawn sim db in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  Engine.Sim.run ~until:60. sim;
  let srtt = Cc.Window_cc.srtt tcp in
  Alcotest.(check bool)
    (Printf.sprintf "srtt %.3f under 3x the base RTT" srtt)
    true
    (srtt > 0.04 && srtt < 0.15)

let test_stale_acks_are_not_dupacks () =
  (* Regression: an ack with cum_seq strictly below snd_una (stale
     duplicate from before a timeout's go-back-N rewind, or reordered in
     the network) used to count towards the three-dupack threshold and
     trigger a spurious fast retransmit with a window halving.  Only an
     ack for exactly snd_una is a duplicate. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:5 in
  let db =
    Netsim.Dumbbell.create ~sim ~rng
      (Netsim.Dumbbell.default_config ~bandwidth:50e6)
  in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let cfg =
    Cc.Window_cc.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5)
  in
  let tcp = Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  (* A clean 50 Mbps path: after 0.3 s snd_una is far beyond seq 1. *)
  Engine.Sim.run ~until:0.3 sim;
  let cwnd_before = Cc.Window_cc.cwnd tcp in
  let fast_rtx_before = Cc.Window_cc.fast_retransmits tcp in
  for _ = 1 to 3 do
    Netsim.Node.receive src
      (Netsim.Packet.make ~size:40 ~flow:flow_id ~src:(Netsim.Node.id dst)
         ~dst:(Netsim.Node.id src) ~sent_at:(Engine.Sim.now sim)
         ~payload:(Netsim.Packet.Ack { cum_seq = 1; sack = [] })
         ())
  done;
  Alcotest.(check int) "no spurious fast retransmit" fast_rtx_before
    (Cc.Window_cc.fast_retransmits tcp);
  Alcotest.(check (float 1e-9)) "cwnd untouched by stale acks" cwnd_before
    (Cc.Window_cc.cwnd tcp)

let test_two_flows_share_fairly () =
  let sim, db = db_fixture ~bandwidth:8e6 () in
  let a = spawn sim db and b = spawn sim db in
  (Cc.Window_cc.flow a).Cc.Flow.start ();
  Engine.Sim.at sim 0.5 (Cc.Window_cc.flow b).Cc.Flow.start;
  Engine.Sim.run ~until:60. sim;
  let da = (Cc.Window_cc.flow a).Cc.Flow.bytes_delivered () in
  let db_ = (Cc.Window_cc.flow b).Cc.Flow.bytes_delivered () in
  let ratio = da /. Float.max 1. db_ in
  Alcotest.(check bool)
    (Printf.sprintf "share ratio %.2f" ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

let test_rto_min_floor_and_backoff_order () =
  (* Regression pin for the RTO clamp: a low-RTT path (srtt + 4*rttvar
     far below min_rto) must floor at min_rto, and exponential backoff
     multiplies the *floored* value — clamping after backoff would leave
     a backed-off timer stuck at 200 ms. *)
  let sim, db = db_fixture () in
  let tcp = spawn sim db in
  let st = Cc.Window_cc.export_state tcp in
  Cc.Window_cc.import_state tcp
    {
      st with
      Cc.Window_cc.s_srtt = 0.001;
      s_rttvar = 0.;
      s_rtt_valid = true;
      s_backoff = 1.;
    };
  Alcotest.(check (float 1e-12)) "floored at min_rto" 0.2
    (Cc.Window_cc.rto tcp);
  Cc.Window_cc.import_state tcp
    {
      st with
      Cc.Window_cc.s_srtt = 0.001;
      s_rttvar = 0.;
      s_rtt_valid = true;
      s_backoff = 4.;
    };
  Alcotest.(check (float 1e-12)) "backoff scales the floored value" 0.8
    (Cc.Window_cc.rto tcp)

let test_karn_rule_on_first_loss () =
  (* Karn regression: the very first data packet is dropped, so its
     retransmission goes out ~1 s later (initial RTO).  A sampler that
     ignored Karn's rule would time the retransmit's ack against the
     original send and push srtt towards a second; the real estimator
     must stay pinned near the 50 ms path. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:2 in
  let make_queue () =
    Netsim.Loss_pattern.one_per_interval ~sim ~interval:1e9 ~start:0.
      (Netsim.Droptail.make ~capacity:1000)
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:10e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let tcp = spawn sim db in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  Engine.Sim.run ~until:5. sim;
  let srtt = Cc.Window_cc.srtt tcp in
  Alcotest.(check bool)
    (Printf.sprintf "srtt %.3f not inflated by the retransmit" srtt)
    true
    (srtt > 0.04 && srtt < 0.2)

let suite =
  [
    Alcotest.test_case "rto min floor and backoff order" `Quick
      test_rto_min_floor_and_backoff_order;
    Alcotest.test_case "karn rule on first loss" `Quick
      test_karn_rule_on_first_loss;
    Alcotest.test_case "max window cap" `Quick test_max_window_cap;
    Alcotest.test_case "max window bounds rate" `Quick
      test_max_window_bounds_rate;
    Alcotest.test_case "initial window respected" `Quick
      test_initial_window_respected;
    Alcotest.test_case "initial window validated" `Quick
      test_initial_window_validated;
    Alcotest.test_case "ecn reaction can be disabled" `Slow
      test_no_ecn_reaction_when_disabled;
    Alcotest.test_case "finished flow stays quiet" `Quick
      test_finished_flow_ignores_acks;
    Alcotest.test_case "srtt stable under heavy loss" `Slow
      test_srtt_stable_under_heavy_loss;
    Alcotest.test_case "stale acks are not dupacks" `Quick
      test_stale_acks_are_not_dupacks;
    Alcotest.test_case "two flows share fairly" `Slow
      test_two_flows_share_fairly;
  ]
