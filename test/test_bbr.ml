(* The BBR-style sender: state machine progression, model accuracy
   against the known path, RTO floor, and coexistence. *)

let fixture ?(seed = 1) ?(bandwidth = 10e6) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth)
  in
  (sim, db)

let spawn sim db =
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow = Netsim.Dumbbell.fresh_flow db in
  Cc.Bbr.create ~sim ~src ~dst ~flow Cc.Bbr.default_config

let test_model_converges () =
  (* 10 Mbps bottleneck, 1000-byte packets, 50 ms base RTT: the model
     should learn ~1250 pkt/s and ~50 ms, settle in PROBE_BW, and keep
     the pipe well utilized. *)
  let sim, db = fixture () in
  let b = spawn sim db in
  Cc.Bbr.start b;
  Engine.Sim.run ~until:15. sim;
  Alcotest.(check string) "settled in PROBE_BW" "PROBE_BW" (Cc.Bbr.mode b);
  let bw = Cc.Bbr.btl_bw_pps b in
  Alcotest.(check bool)
    (Printf.sprintf "btl_bw %.0f pps within 20%% of the link" bw)
    true
    (bw > 1000. && bw < 1500.);
  let rtprop = Cc.Bbr.rtprop b in
  Alcotest.(check bool)
    (Printf.sprintf "rtprop %.3f near the base RTT" rtprop)
    true
    (rtprop > 0.045 && rtprop < 0.08);
  let delivered = (Cc.Bbr.flow b).Cc.Flow.bytes_delivered () in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f%% utilization"
       (delivered /. (10e6 /. 8. *. 15.) *. 100.))
    true
    (delivered > 0.6 *. (10e6 /. 8. *. 15.))

let test_probe_rtt_visits () =
  (* The rtprop filter ages over 10 s, so a 25 s run must collapse the
     window to re-measure at least once. *)
  let sim, db = fixture () in
  let b = spawn sim db in
  let seen = ref false in
  Cc.Bbr.start b;
  Engine.Sim.every sim ~interval:0.02 ~stop:25. (fun () ->
      if Cc.Bbr.mode b = "PROBE_RTT" then seen := true);
  Engine.Sim.run ~until:25. sim;
  Alcotest.(check bool) "entered PROBE_RTT" true !seen

let test_rto_floor () =
  let sim, db = fixture () in
  let b = spawn sim db in
  Alcotest.(check bool) "floored before any sample" true (Cc.Bbr.rto b >= 0.2);
  Cc.Bbr.start b;
  Engine.Sim.run ~until:5. sim;
  (* srtt ~50 ms with small rttvar: the raw formula would sit near 60 ms,
     an order below the floor. *)
  Alcotest.(check bool) "floored after samples" true (Cc.Bbr.rto b >= 0.2)

let test_two_flows_coexist () =
  let sim, db = fixture ~bandwidth:8e6 () in
  let a = spawn sim db and b = spawn sim db in
  Cc.Bbr.start a;
  Engine.Sim.at sim 1. (fun () -> Cc.Bbr.start b);
  Engine.Sim.run ~until:30. sim;
  let da = (Cc.Bbr.flow a).Cc.Flow.bytes_delivered ()
  and db_ = (Cc.Bbr.flow b).Cc.Flow.bytes_delivered () in
  let capacity = 8e6 /. 8. *. 30. in
  Alcotest.(check bool) "both make progress" true
    (da > 0.15 *. capacity && db_ > 0.15 *. capacity);
  Alcotest.(check bool) "sum bounded by the link" true
    (da +. db_ <= 1.02 *. capacity)

let test_paced_not_bursty () =
  (* In PROBE_BW the pacer spaces packets near 1/btl_bw: departures from
     the source should never burst the whole window at once.  Proxy: the
     bottleneck queue never holds more than a fraction of the BDP. *)
  let sim, db = fixture () in
  let b = spawn sim db in
  let link = Netsim.Dumbbell.bottleneck db in
  let max_q = ref 0 in
  Cc.Bbr.start b;
  Engine.Sim.every sim ~interval:0.005 ~stop:15. (fun () ->
      if Engine.Sim.now sim > 5. then
        max_q := max !max_q ((Netsim.Link.queue link).Netsim.Queue_intf.pkts ()));
  Engine.Sim.run ~until:15. sim;
  (* BDP is ~62 packets; steady-state PROBE_BW keeps the standing queue
     around the 1.25x probe overshoot, far below a full window burst. *)
  Alcotest.(check bool)
    (Printf.sprintf "max steady queue %d pkts" !max_q)
    true (!max_q < 62)

let suite =
  [
    Alcotest.test_case "model converges in PROBE_BW" `Slow test_model_converges;
    Alcotest.test_case "PROBE_RTT visits" `Slow test_probe_rtt_visits;
    Alcotest.test_case "rto floor" `Quick test_rto_floor;
    Alcotest.test_case "two flows coexist" `Slow test_two_flows_coexist;
    Alcotest.test_case "paced, not bursty" `Slow test_paced_not_bursty;
  ]
