(* Run manifests: table digests, JSONL rendering, and the end-to-end
   guarantee that the digested portion is byte-identical at any --jobs. *)

module Json = Engine.Json
module Manifest = Slowcc.Manifest
module Table = Slowcc.Table

let sample =
  Table.make ~id:"fig0" ~title:"sample"
    ~columns:[ "x"; "y" ]
    ~notes:[ "a note" ]
    [ [ "1"; "2" ]; [ "3"; "4,5" ] ]

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_emit_roundtrip () =
  List.iter
    (fun e ->
      match Manifest.emit_of_string (Manifest.emit_to_string e) with
      | Some e' when e' = e -> ()
      | _ -> Alcotest.fail "emit roundtrip")
    [ Manifest.Csv; Manifest.Jsonl; Manifest.Both ];
  Alcotest.(check bool) "unknown rejected" true
    (Manifest.emit_of_string "xml" = None)

let test_table_digest_sensitivity () =
  let d = Manifest.table_digest sample in
  Alcotest.(check int) "md5 hex" 32 (String.length d);
  Alcotest.(check string) "digest is stable" d (Manifest.table_digest sample);
  let changed_cell =
    Table.make ~id:"fig0" ~title:"sample" ~columns:[ "x"; "y" ]
      ~notes:[ "a note" ]
      [ [ "1"; "2" ]; [ "3"; "4,6" ] ]
  in
  Alcotest.(check bool) "cell change alters digest" true
    (d <> Manifest.table_digest changed_cell);
  (* Length-prefixed fields: moving a boundary between adjacent fields
     must not collide. *)
  let shifted =
    Table.make ~id:"fig0" ~title:"sample" ~columns:[ "x"; "y" ]
      ~notes:[ "a note" ]
      [ [ "12"; "" ]; [ "3"; "4,5" ] ]
  in
  Alcotest.(check bool) "field boundary matters" true
    (d <> Manifest.table_digest shifted)

let test_jsonl_rendering () =
  Alcotest.(check string) "one object per row"
    "{\"row\":0,\"cells\":{\"x\":\"1\",\"y\":\"2\"}}\n\
     {\"row\":1,\"cells\":{\"x\":\"3\",\"y\":\"4,5\"}}\n"
    (Manifest.jsonl_of_table sample)

let test_write_and_digest_extraction () =
  let dir = "tmp-manifest/unit" in
  let path =
    Manifest.write ~dir ~experiment:"fig0" ~quick:true ~params:[]
      ~emit:Manifest.Both ~jobs:3 ~wall_s:1.25 [ sample ]
  in
  Alcotest.(check bool) "manifest written" true (Sys.file_exists path);
  Alcotest.(check bool) "csv written" true
    (Sys.file_exists (Filename.concat dir "fig0.csv"));
  Alcotest.(check bool) "jsonl written" true
    (Sys.file_exists (Filename.concat dir "fig0.jsonl"));
  let expected =
    let run =
      Manifest.run_section ~experiment:"fig0" ~quick:true ~params:[]
        ~tables:[ sample ]
    in
    Digest.to_hex (Digest.string (Json.to_string run))
  in
  match Manifest.digest_of_file path with
  | Some d -> Alcotest.(check string) "digest field = md5(run)" expected d
  | None -> Alcotest.fail "digest field missing"

let test_timing_not_digested () =
  (* Different wall-clock and job count, same digest. *)
  let render ~jobs ~wall_s =
    Manifest.render ~experiment:"fig0" ~quick:false ~params:[]
      ~emit:Manifest.Csv ~jobs ~wall_s ~tables:[ sample ]
      ~cache:(3, 1, "fingerprint") ()
  in
  let digest_of s =
    let dir = "tmp-manifest/timing" in
    Table.ensure_dir dir;
    let path = Filename.concat dir "manifest.json" in
    let oc = open_out path in
    output_string oc s;
    close_out oc;
    Manifest.digest_of_file path
  in
  Alcotest.(check bool) "digest ignores timing" true
    (digest_of (render ~jobs:1 ~wall_s:10.) = digest_of (render ~jobs:8 ~wall_s:0.5))

(* End to end: fig7 --quick at jobs=1 and jobs=4 must agree on every
   digested byte and on the tables themselves. *)
let test_fig7_jobs_invariance () =
  let run ~jobs ~dir =
    Engine.Pool.with_pool ~jobs (fun pool ->
        match
          Slowcc.Experiments.run_to_dir ~quick:true ~pool
            ~emit:Manifest.Both ~dir ~jobs "fig7"
        with
        | Some (manifest_path, tables) -> (manifest_path, tables)
        | None -> Alcotest.fail "fig7 not found")
  in
  let m1, t1 = run ~jobs:1 ~dir:"tmp-manifest/jobs1" in
  let m4, t4 = run ~jobs:4 ~dir:"tmp-manifest/jobs4" in
  let section tables =
    Json.to_string
      (Manifest.run_section ~experiment:"fig7" ~quick:true
         ~params:(Slowcc.Experiments.params ~quick:true "fig7")
         ~tables)
  in
  Alcotest.(check string) "run section bytes identical"
    (section t1) (section t4);
  (match (Manifest.digest_of_file m1, Manifest.digest_of_file m4) with
  | Some d1, Some d4 -> Alcotest.(check string) "manifest digests equal" d1 d4
  | _ -> Alcotest.fail "digest missing from a manifest");
  Alcotest.(check string) "csv bytes identical"
    (read_file "tmp-manifest/jobs1/fig7.csv")
    (read_file "tmp-manifest/jobs4/fig7.csv");
  Alcotest.(check string) "jsonl bytes identical"
    (read_file "tmp-manifest/jobs1/fig7.jsonl")
    (read_file "tmp-manifest/jobs4/fig7.jsonl")

let suite =
  [
    Alcotest.test_case "emit roundtrip" `Quick test_emit_roundtrip;
    Alcotest.test_case "table digest sensitivity" `Quick
      test_table_digest_sensitivity;
    Alcotest.test_case "jsonl rendering" `Quick test_jsonl_rendering;
    Alcotest.test_case "write + digest extraction" `Quick
      test_write_and_digest_extraction;
    Alcotest.test_case "timing not digested" `Quick test_timing_not_digested;
    Alcotest.test_case "fig7 manifest jobs-invariant" `Slow
      test_fig7_jobs_invariance;
  ]
