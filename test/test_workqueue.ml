(* The persistent work queue behind the process-pool sweep backend:
   seed/load round-trips, LPT claim ordering, atomic claim races across
   real worker processes, lease-expiry crash recovery (a worker killed
   mid-job), failed-job semantics, and the end-to-end guarantee that a
   sweep assembled from worker-published cache entries is byte-identical
   to a serial run. *)

module Wq = Slowcc.Workqueue

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir = Printf.sprintf "tmp-workqueue/case%d" !n in
    rm_rf dir;
    dir

(* Real worker processes.  [Unix.fork] is off-limits in OCaml 5 once any
   domain has been spawned (the pool suite runs earlier), so workers are
   fresh invocations of this very test binary: the dispatcher at the
   bottom of this module intercepts SLOWCC_WQ_CHILD during module init —
   before Alcotest ever runs — performs the requested role, and exits. *)
let spawn_child ~mode ~dir ~aux ~id =
  let env =
    Array.append (Unix.environment ())
      [|
        "SLOWCC_WQ_CHILD=" ^ mode;
        "SLOWCC_WQ_DIR=" ^ dir;
        "SLOWCC_WQ_AUX=" ^ aux;
        "SLOWCC_WQ_ID=" ^ id;
      |]
  in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name |]
    env Unix.stdin Unix.stdout Unix.stderr

let job_names jobs = List.map (fun (j : Wq.job) -> j.Wq.name) jobs

let sample_jobs =
  [ ("a", Some 1.); ("b", Some 5.); ("c", None); ("d", Some 5.) ]

let test_seed_load_lpt () =
  let dir = fresh_dir () in
  let q = Wq.seed ~dir ~fingerprint:"fp" ~quick:true ~jobs:sample_jobs in
  (match Wq.load ~dir with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok q' ->
    Alcotest.(check string) "fingerprint round-trips" "fp" (Wq.fingerprint q');
    Alcotest.(check bool) "quick round-trips" true (Wq.quick q');
    Alcotest.(check (list string))
      "jobs stay in submission order"
      [ "a"; "b"; "c"; "d" ]
      (job_names (Wq.jobs q'));
    Alcotest.(check (list int))
      "submission indices" [ 0; 1; 2; 3 ]
      (List.map (fun (j : Wq.job) -> j.Wq.index) (Wq.jobs q')));
  (* Sorted readdir of todo/ IS the LPT schedule: longest first, ties and
     missing estimates in submission order. *)
  let todo = Sys.readdir (Filename.concat dir "todo") in
  Array.sort String.compare todo;
  Alcotest.(check (list string))
    "todo files encode LPT rank"
    [ "000-b"; "001-d"; "002-a"; "003-c" ]
    (Array.to_list todo);
  Alcotest.(check bool) "reseeding an existing queue refuses" true
    (match Wq.seed ~dir ~fingerprint:"fp" ~quick:true ~jobs:[] with
    | exception Sys_error _ -> true
    | _ -> false);
  Wq.delete q;
  Alcotest.(check bool) "delete removes the queue dir" false
    (Sys.file_exists dir)

let test_sequential_claims () =
  let dir = fresh_dir () in
  let q = Wq.seed ~dir ~fingerprint:"fp" ~quick:false ~jobs:sample_jobs in
  let order = ref [] in
  let rec drain () =
    match Wq.try_claim q ~worker:"w 1" ~now:100. ~lease_s:60. with
    | Some c ->
      order := (Wq.claimed_job c).Wq.name :: !order;
      Wq.finish q c ~wall_s:0.1 ~result:(Ok ());
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string))
    "claims follow LPT order" [ "b"; "d"; "a"; "c" ]
    (List.rev !order);
  Alcotest.(check bool) "queue drained" true (Wq.drained q);
  let s = Wq.status q in
  Alcotest.(check int) "all complete" 4 s.Wq.complete;
  Alcotest.(check int) "total preserved" 4 s.Wq.total;
  Alcotest.(check (list string)) "no failures" [] (Wq.failed_units q)

let test_lease_expiry_requeue () =
  let dir = fresh_dir () in
  let q =
    Wq.seed ~dir ~fingerprint:"fp" ~quick:false
      ~jobs:[ ("a", None); ("b", None) ]
  in
  (match Wq.try_claim q ~worker:"dying" ~now:0. ~lease_s:1. with
  | None -> Alcotest.fail "first claim failed"
  | Some _abandoned_claim -> ());
  Alcotest.(check int) "live lease is not requeued" 0
    (Wq.requeue_expired q ~now:0.5);
  Alcotest.(check bool) "claim keeps the queue undrained" false
    (Wq.drained q);
  Alcotest.(check int) "expired lease is requeued" 1
    (Wq.requeue_expired q ~now:2.);
  match Wq.try_claim q ~worker:"rescuer" ~now:2. ~lease_s:60. with
  | Some c ->
    Alcotest.(check string) "the abandoned job is claimable again" "a"
      (Wq.claimed_job c).Wq.name
  | None -> Alcotest.fail "revived job not claimable"

let test_failed_jobs_not_retried () =
  let dir = fresh_dir () in
  let q =
    Wq.seed ~dir ~fingerprint:"fp" ~quick:false
      ~jobs:[ ("boom", None); ("ok", None) ]
  in
  let runs = ref 0 in
  let completed =
    Wq.worker_loop q ~worker:"w" ~now:Unix.gettimeofday ~sleep:Unix.sleepf
      ~lease_s:60. ~poll_s:0.01
      ~run:(fun (j : Wq.job) ->
        incr runs;
        if String.equal j.Wq.name "boom" then failwith "kaput")
  in
  (* A deterministic failure reaches a done marker (ok = false) and is
     NOT retried — only crashed workers' jobs are, via lease expiry. *)
  Alcotest.(check int) "both jobs reached done" 2 completed;
  Alcotest.(check int) "each job ran exactly once" 2 !runs;
  Alcotest.(check bool) "drained despite the failure" true (Wq.drained q);
  Alcotest.(check (list string)) "failure is reported" [ "boom" ]
    (Wq.failed_units q)

(* Satellite: >= 4 real worker processes racing on one queue — every job
   claimed and executed exactly once (enforced with O_EXCL marker files),
   no worker errors, queue drained. *)
let test_concurrent_claims_exactly_once () =
  let dir = fresh_dir () in
  let ran = dir ^ "-ran" in
  rm_rf ran;
  Slowcc.Table.ensure_dir ran;
  let jobs =
    List.init 12 (fun i ->
        ( Printf.sprintf "j%02d" i,
          if i mod 2 = 0 then Some (float_of_int i) else None ))
  in
  let q = Wq.seed ~dir ~fingerprint:"fp" ~quick:false ~jobs in
  let pids =
    List.init 4 (fun i ->
        spawn_child ~mode:"race" ~dir ~aux:ran ~id:(Printf.sprintf "w%d" i))
  in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "a worker process exited abnormally")
    pids;
  Alcotest.(check bool) "queue drained" true (Wq.drained q);
  Alcotest.(check (list string)) "every job executed exactly once" []
    (Wq.failed_units q);
  Alcotest.(check int) "all done markers present" 12 (Wq.status q).Wq.complete;
  Alcotest.(check int) "all run markers present" 12
    (Array.length (Sys.readdir ran))

(* Satellite: a worker killed mid-job (claim held, no done marker) is
   recovered — its lease expires, a healthy worker requeues and re-runs
   the job, and nothing is lost or duplicated in the final state. *)
let test_killed_worker_recovered () =
  let dir = fresh_dir () in
  let q =
    Wq.seed ~dir ~fingerprint:"fp" ~quick:false
      ~jobs:[ ("poison", Some 10.); ("a", None); ("b", None) ]
  in
  let victim = spawn_child ~mode:"victim" ~dir ~aux:"" ~id:"victim" in
  let claims = Filename.concat dir "claims" in
  let deadline = Unix.gettimeofday () +. 10. in
  while
    Array.length (try Sys.readdir claims with Sys_error _ -> [||]) = 0
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  Alcotest.(check int) "victim holds the poison claim" 1
    (Wq.status q).Wq.claimed;
  Unix.kill victim Sys.sigkill;
  ignore (Unix.waitpid [] victim);
  let seen = ref [] in
  let completed =
    Wq.worker_loop q ~worker:"rescuer" ~now:Unix.gettimeofday
      ~sleep:Unix.sleepf ~lease_s:60. ~poll_s:0.02
      ~run:(fun (j : Wq.job) -> seen := j.Wq.name :: !seen)
  in
  Alcotest.(check int) "rescuer completed everything" 3 completed;
  Alcotest.(check bool) "queue drained" true (Wq.drained q);
  Alcotest.(check (list string)) "no failures recorded" []
    (Wq.failed_units q);
  Alcotest.(check (list string))
    "the poison job was re-run"
    [ "a"; "b"; "poison" ]
    (List.sort String.compare !seen)

(* Tentpole guarantee, end to end: two worker processes execute real
   experiment units into a shared cache; reassembling by cache lookup is
   pure hits and byte-identical (per-table digests) to a serial run. *)
let test_proc_sweep_byte_identical () =
  let dir = fresh_dir () in
  Slowcc.Table.ensure_dir dir;
  let fp = "wq-e2e" in
  let units = [ "fig11"; "fig20" ] in
  let serial =
    List.concat_map
      (fun u -> Option.get (Slowcc.Experiments.run_by_name ~quick:true u))
      units
  in
  let qdir = Filename.concat dir "queue" in
  let q =
    Wq.seed ~dir:qdir ~fingerprint:fp ~quick:true
      ~jobs:(List.map (fun u -> (u, None)) units)
  in
  let pids =
    List.init 2 (fun i ->
        spawn_child ~mode:"e2e" ~dir:qdir ~aux:dir
          ~id:(Printf.sprintf "e2e%d" i))
  in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "a worker process exited abnormally")
    pids;
  Alcotest.(check bool) "queue drained" true (Wq.drained q);
  Alcotest.(check (list string)) "no worker-side failures" []
    (Wq.failed_units q);
  let cache = Slowcc.Result_cache.create ~fingerprint:fp ~dir () in
  let assembled =
    List.concat_map
      (fun u ->
        Option.get
          (Slowcc.Experiments.run_cached ~quick:true ~cache
             ~now:Unix.gettimeofday u))
      units
  in
  Alcotest.(check (pair int int)) "assembly is pure cache hits" (2, 0)
    (Slowcc.Result_cache.hits cache, Slowcc.Result_cache.misses cache);
  Alcotest.(check (list string))
    "assembled tables byte-identical to serial"
    (List.map Slowcc.Manifest.table_digest serial)
    (List.map Slowcc.Manifest.table_digest assembled);
  Wq.delete q

let test_sanitize_worker () =
  Alcotest.(check string) "unsafe chars mapped" "host-example-com-1234"
    (Wq.sanitize_worker "host.example.com:1234");
  Alcotest.(check string) "empty falls back" "worker" (Wq.sanitize_worker "")

let suite =
  [
    Alcotest.test_case "seed/load round-trip and LPT order" `Quick
      test_seed_load_lpt;
    Alcotest.test_case "sequential claims, exactly once" `Quick
      test_sequential_claims;
    Alcotest.test_case "lease expiry requeues" `Quick test_lease_expiry_requeue;
    Alcotest.test_case "failed jobs are not retried" `Quick
      test_failed_jobs_not_retried;
    Alcotest.test_case "4-process claim race, exactly once" `Quick
      test_concurrent_claims_exactly_once;
    Alcotest.test_case "killed worker recovered via lease" `Quick
      test_killed_worker_recovered;
    Alcotest.test_case "proc sweep byte-identical to serial" `Quick
      test_proc_sweep_byte_identical;
    Alcotest.test_case "worker id sanitization" `Quick test_sanitize_worker;
  ]

(* Child-process dispatcher.  When the test binary is re-executed with
   SLOWCC_WQ_CHILD set, this module-init hook performs the requested
   worker role and exits before Alcotest starts. *)
let run_child mode =
  let getenv name =
    match Sys.getenv_opt name with
    | Some v -> v
    | None -> failwith ("missing " ^ name)
  in
  let dir = getenv "SLOWCC_WQ_DIR" in
  let aux = getenv "SLOWCC_WQ_AUX" in
  let id = getenv "SLOWCC_WQ_ID" in
  let q =
    match Wq.load ~dir with Ok q -> q | Error e -> failwith e
  in
  match mode with
  | "race" ->
    ignore
      (Wq.worker_loop q ~worker:id ~now:Unix.gettimeofday ~sleep:Unix.sleepf
         ~lease_s:60. ~poll_s:0.005
         ~run:(fun (j : Wq.job) ->
           (* O_EXCL: a second execution of the same job would fail the
              create and mark the job failed. *)
           Unix.close
             (Unix.openfile
                (Filename.concat aux j.Wq.name)
                [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ]
                0o644)))
  | "victim" -> (
    (* Claim the LPT-first job with a short lease, then hang —
       simulating a crash mid-execution. *)
    match
      Wq.try_claim q ~worker:id ~now:(Unix.gettimeofday ()) ~lease_s:0.5
    with
    | Some _ -> Unix.sleep 600
    | None -> failwith "victim claimed nothing")
  | "e2e" ->
    let cache =
      Slowcc.Result_cache.create ~fingerprint:(Wq.fingerprint q) ~dir:aux ()
    in
    ignore
      (Wq.worker_loop q ~worker:id ~now:Unix.gettimeofday ~sleep:Unix.sleepf
         ~lease_s:60. ~poll_s:0.01
         ~run:(fun (j : Wq.job) ->
           match
             Slowcc.Experiments.run_cached ~quick:(Wq.quick q) ~cache
               ~now:Unix.gettimeofday j.Wq.name
           with
           | Some _ -> ()
           | None -> failwith ("unknown unit " ^ j.Wq.name)))
  | m -> failwith ("unknown child mode " ^ m)

let () =
  match Sys.getenv_opt "SLOWCC_WQ_CHILD" with
  | None -> ()
  | Some mode -> (
    try
      run_child mode;
      exit 0
    with e ->
      prerr_endline ("workqueue child: " ^ Printexc.to_string e);
      exit 1)
