(* Reproduction harness: regenerates every table/figure of the paper.

   dune exec bench/main.exe                 -- all figures, full sweeps
   dune exec bench/main.exe -- --quick      -- shrunk sweeps (minutes)
   dune exec bench/main.exe -- --only fig7  -- a single figure
   dune exec bench/main.exe -- --jobs 8     -- sweeps on 8 worker domains
   dune exec bench/main.exe -- --sched heap -- force the heap scheduler
   dune exec bench/main.exe -- --perf       -- micro-benchmarks + BENCH_engine.json
   dune exec bench/main.exe -- --perf --quick-micro -- CI smoke (seconds)
   dune exec bench/main.exe -- --validate   -- schema-check BENCH_engine.json *)

let () =
  (* Re-invocations of this binary as process-pool sweep workers (see
     Perf.proc_backend_ab) are routed by env var and never parse args. *)
  Perf.maybe_worker_child ();
  let quick = ref false and only = ref [] and perf = ref false in
  let quick_micro = ref false and validate = ref false in
  let outdir = ref "" in
  let cache_dir = ref "" and no_cache = ref false in
  let jobs = ref (Engine.Pool.default_jobs ()) in
  let args =
    [
      ("--quick", Arg.Set quick, "shrink sweeps and durations");
      ( "--only",
        Arg.String (fun s -> only := s :: !only),
        "run a single experiment id (repeatable)" );
      ( "--jobs",
        Arg.Set_int jobs,
        Printf.sprintf
          "N worker domains for the sweeps (default %d, this machine's \
           recommended domain count; 1 = serial)"
          (Engine.Pool.default_jobs ()) );
      ( "--sched",
        Arg.String
          (fun s ->
            match Engine.Scheduler.of_string s with
            | Some k -> Engine.Scheduler.set_default k
            | None ->
              raise (Arg.Bad ("unknown scheduler " ^ s ^ " (heap|calendar)"))),
        "event-queue implementation: heap or calendar (default calendar)" );
      ( "--ff",
        Arg.String
          (fun s ->
            match Engine.Fastforward.of_string s with
            | Some m -> Engine.Fastforward.set_default m
            | None ->
              raise (Arg.Bad ("unknown fast-forward mode " ^ s ^ " (on|off)"))),
        "hybrid fluid/packet fast-forward: on or off (default off; on \
         makes results approximate and changes cache keys)" );
      ("--perf", Arg.Set perf, "run simulator micro-benchmarks instead");
      ( "--quick-micro",
        Arg.Set quick_micro,
        "with --perf: short measurement quota, skip the suite timing \
         (CI smoke)" );
      ( "--validate",
        Arg.Set validate,
        "schema-check an existing BENCH_engine.json and exit" );
      ( "--outdir",
        Arg.Set_string outdir,
        "also write each table as <dir>/<id>.csv" );
      ( "--cache-dir",
        Arg.Set_string cache_dir,
        "DIR reuse results from (and store new results into) a \
         content-addressed cache under DIR" );
      ( "--no-cache",
        Arg.Set no_cache,
        "ignore --cache-dir: simulate everything from scratch" );
    ]
  in
  Arg.parse args
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "bench/main.exe [--quick] [--only figN]... [--jobs N] [--sched S] [--perf]";
  let fmt = Format.std_formatter in
  if !validate then
    exit (if Perf.validate ~path:"BENCH_engine.json" then 0 else 1)
  else if !perf || !quick_micro then
    Perf.run ~suite_jobs:!jobs ~suite:(not !quick_micro) ~quick:!quick_micro ()
  else begin
    let t0 = Unix.gettimeofday () in
    let failed = ref false in
    let emit table =
      Slowcc.Table.print fmt table;
      Format.pp_print_flush fmt ();
      if !outdir <> "" then
        ignore (Slowcc.Table.save_csv ~dir:!outdir table)
    in
    let cache =
      if !cache_dir = "" || !no_cache then None
      else Some (Slowcc.Result_cache.create ~dir:!cache_dir ())
    in
    Engine.Pool.with_pool ~jobs:!jobs (fun pool ->
        match !only with
        | [] ->
          ignore
            (Slowcc.Experiments.all ~emit ~quick:!quick ~pool ?cache
               ~now:Unix.gettimeofday ())
        | names ->
          List.iter
            (fun name ->
              match
                Slowcc.Experiments.run_cached ~quick:!quick ~pool ?cache
                  ~now:Unix.gettimeofday name
              with
              | Some tables -> List.iter emit tables
              | None ->
                failed := true;
                Format.eprintf "unknown experiment %s (known: %s)@." name
                  (String.concat ", " Slowcc.Experiments.names))
            (List.rev names));
    Option.iter
      (fun c ->
        Format.fprintf fmt "@.cache: %d hit(s), %d miss(es) under %s@."
          (Slowcc.Result_cache.hits c)
          (Slowcc.Result_cache.misses c)
          !cache_dir)
      cache;
    Format.fprintf fmt "@.total wall time: %.1f s (jobs=%d)@."
      (Unix.gettimeofday () -. t0)
      (Engine.Pool.clamp_jobs !jobs);
    if !failed then exit 1
  end
