bench/main.mli:
