bench/perf.ml: Analyze Bechamel Benchmark Cc Engine Hashtbl Instance List Measure Netsim Printf Slowcc Staged Test Time Toolkit
