bench/main.ml: Arg Format List Perf Slowcc String Unix
