(* Reproduction harness: regenerates every table/figure of the paper.

   dune exec bench/main.exe                 -- all figures, full sweeps
   dune exec bench/main.exe -- --quick      -- shrunk sweeps (minutes)
   dune exec bench/main.exe -- --only fig7  -- a single figure
   dune exec bench/main.exe -- --perf       -- bechamel micro-benchmarks *)

let () =
  let quick = ref false and only = ref [] and perf = ref false in
  let outdir = ref "" in
  let args =
    [
      ("--quick", Arg.Set quick, "shrink sweeps and durations");
      ( "--only",
        Arg.String (fun s -> only := s :: !only),
        "run a single experiment id (repeatable)" );
      ("--perf", Arg.Set perf, "run simulator micro-benchmarks instead");
      ( "--outdir",
        Arg.Set_string outdir,
        "also write each table as <dir>/<id>.csv" );
    ]
  in
  Arg.parse args
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "bench/main.exe [--quick] [--only figN]... [--perf]";
  let fmt = Format.std_formatter in
  if !perf then Perf.run ()
  else begin
    let t0 = Unix.gettimeofday () in
    let emit table =
      Slowcc.Table.print fmt table;
      Format.pp_print_flush fmt ();
      if !outdir <> "" then
        ignore (Slowcc.Table.save_csv ~dir:!outdir table)
    in
    (match !only with
    | [] -> ignore (Slowcc.Experiments.all ~emit ~quick:!quick ())
    | names ->
      List.iter
        (fun name ->
          match Slowcc.Experiments.run_by_name ~quick:!quick name with
          | Some tables -> List.iter emit tables
          | None ->
            Format.eprintf "unknown experiment %s (known: %s)@." name
              (String.concat ", " Slowcc.Experiments.names))
        (List.rev names));
    Format.fprintf fmt "@.total wall time: %.1f s@."
      (Unix.gettimeofday () -. t0)
  end
