(** Constant-bit-rate source (no congestion control).

    Used as the orchestrated competing traffic in the paper's dynamic
    scenarios; pair with {!Onoff} to build square waves and sawtooths. *)

type t

(** The destination counts delivered bytes but sends no acks. *)
val create :
  sim:Engine.Sim.t ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  flow:int ->
  rate:float (** bits/s *) ->
  pkt_size:int ->
  t

val flow : t -> Flow.t
val set_rate : t -> float -> unit
val rate : t -> float
val is_on : t -> bool
