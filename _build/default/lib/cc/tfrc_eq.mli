(** The TCP response function of Padhye et al. used by TFRC.

    [rate_pps ~p ~rtt] is the TCP-friendly sending rate in packets/s for
    loss event rate [p] and round-trip time [rtt], with the retransmit
    timeout approximated as t_RTO = 4 RTT:

    X = 1 / (R (sqrt(2p/3) + 12 sqrt(3p/8) p (1 + 32 p^2))) *)

val rate_pps : p:float -> rtt:float -> float

(** Inverse of {!rate_pps} in [p] (bisection): the loss event rate at which
    the equation yields [rate_pps].  Used to seed TFRC's first loss
    interval from the observed receive rate.  Result clamped to
    [\[1e-8, 1\]]. *)
val invert : rate_pps:float -> rtt:float -> float
