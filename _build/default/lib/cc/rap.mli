(** Rate Adaptation Protocol (Rejaie et al.) — rate-based AIMD.

    RAP(1/gamma) is the paper's example of AIMD *without* self-clocking:
    the sender transmits on a rate timer (inter-packet gap = srtt / w),
    regardless of ack arrivals.  The receiver acks every packet; the sender
    infers losses from ack sequence holes (3-packet reordering rule) and
    applies at most one multiplicative decrease per RTT.  Lost packets are
    never retransmitted (RAP targets real-time streams). *)

type config = {
  a : float;  (** additive increase, packets per RTT *)
  b : float;  (** multiplicative decrease factor *)
  pkt_size : int;
  initial_rtt : float;  (** used until the first sample; default 0.2 s *)
  max_rate_pps : float;  (** safety cap on the sending rate *)
}

(** TCP-compatible RAP with decrease factor [b]: a = 4(2b - b^2)/3. *)
val tcp_compatible_config : b:float -> config

type t

val create :
  sim:Engine.Sim.t ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  flow:int ->
  config ->
  t

val flow : t -> Flow.t

(** Current rate expressed in packets per RTT. *)
val window : t -> float

val loss_events : t -> int
