type config = {
  arrival_rate : float;
  duration : float;
  transfer_pkts : int;
  pkt_size : int;
  pool_size : int;
}

let default_config =
  {
    arrival_rate = 200.;
    duration = 5.;
    transfer_pkts = 10;
    pkt_size = 1000;
    pool_size = 20;
  }

type t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  dumbbell : Netsim.Dumbbell.t;
  cfg : config;
  pool : (Netsim.Node.t * Netsim.Node.t) array;
  mutable next_pair : int;
  mutable started : int;
  mutable completed : int;
  mutable bytes : float;
  completion_times : Engine.Stats.t;
  senders : (int, Window_cc.t * float) Hashtbl.t;  (* flow -> sender, t0 *)
}

let launch_flow t =
  let src, dst = t.pool.(t.next_pair) in
  t.next_pair <- (t.next_pair + 1) mod Array.length t.pool;
  let flow_id = Netsim.Dumbbell.fresh_flow t.dumbbell in
  let t0 = Engine.Sim.now t.sim in
  let cfg =
    {
      (Window_cc.default_config (Window_cc.tcp_compatible_aimd ~b:0.5)) with
      Window_cc.pkt_size = t.cfg.pkt_size;
      total_pkts = Some t.cfg.transfer_pkts;
      on_complete =
        Some
          (fun () ->
            t.completed <- t.completed + 1;
            Engine.Stats.add t.completion_times (Engine.Sim.now t.sim -. t0);
            match Hashtbl.find_opt t.senders flow_id with
            | Some (sender, _) ->
              t.bytes <- t.bytes +. (Window_cc.flow sender).Flow.bytes_delivered ();
              Hashtbl.remove t.senders flow_id;
              Netsim.Node.detach src ~flow:flow_id;
              Netsim.Node.detach dst ~flow:flow_id
            | None -> ());
    }
  in
  let sender = Window_cc.create ~sim:t.sim ~src ~dst ~flow:flow_id cfg in
  Hashtbl.replace t.senders flow_id (sender, t0);
  t.started <- t.started + 1;
  (Window_cc.flow sender).Flow.start ()

let rec schedule_arrival t ~deadline =
  let gap = Engine.Rng.exponential t.rng ~mean:(1. /. t.cfg.arrival_rate) in
  let when_ = Engine.Sim.now t.sim +. gap in
  if when_ < deadline then
    Engine.Sim.at t.sim when_ (fun () ->
        launch_flow t;
        schedule_arrival t ~deadline)

let create ~sim ~rng ~dumbbell ~start cfg =
  if cfg.arrival_rate <= 0. || cfg.duration <= 0. then
    invalid_arg "Flash_crowd.create";
  let pool =
    Array.init cfg.pool_size (fun _ -> Netsim.Dumbbell.add_host_pair dumbbell)
  in
  let t =
    {
      sim;
      rng;
      dumbbell;
      cfg;
      pool;
      next_pair = 0;
      started = 0;
      completed = 0;
      bytes = 0.;
      completion_times = Engine.Stats.create ();
      senders = Hashtbl.create 256;
    }
  in
  Engine.Sim.at sim start (fun () ->
      schedule_arrival t ~deadline:(start +. cfg.duration));
  t

let flows_started t = t.started
let flows_completed t = t.completed

let bytes_delivered t =
  (* Completed flows contributed on completion; add live flows' progress. *)
  Hashtbl.fold
    (fun _ (sender, _) acc ->
      acc +. (Window_cc.flow sender).Flow.bytes_delivered ())
    t.senders t.bytes

let mean_completion_time t = Engine.Stats.mean t.completion_times
