(** Uniform handle over a running transport flow, regardless of protocol.

    Scenario code starts/stops flows and reads counters through this record;
    each agent module ({!Window_cc}, {!Rap}, {!Tfrc}, {!Cbr}) builds one. *)

type t = {
  id : int;  (** flow identifier, unique per topology *)
  protocol : string;  (** human-readable, e.g. "tcp(1/8)" *)
  start : unit -> unit;
  stop : unit -> unit;
  pkts_sent : unit -> int;
  bytes_sent : unit -> float;
  bytes_delivered : unit -> float;  (** received at the sink *)
  current_rate : unit -> float;  (** instantaneous send rate, bytes/s *)
  srtt : unit -> float;  (** smoothed RTT estimate, seconds *)
}

(** Mean goodput in bytes/s between two absolute times, from a closure
    sampling [bytes_delivered] — convenience for scenarios. *)
val throughput : t -> t0:float -> t1:float -> snapshot0:float -> float
