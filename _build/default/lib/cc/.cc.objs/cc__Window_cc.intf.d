lib/cc/window_cc.mli: Engine Flow Netsim
