lib/cc/tear.ml: Engine Float Flow List Netsim Printf
