lib/cc/tear.mli: Engine Flow Netsim
