lib/cc/loss_history.mli:
