lib/cc/tfrc_eq.mli:
