lib/cc/sink.ml: Engine Int List Netsim Set
