lib/cc/loss_history.ml: Float List
