lib/cc/flow.mli:
