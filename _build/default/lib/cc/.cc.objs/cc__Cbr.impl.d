lib/cc/cbr.ml: Engine Flow Netsim
