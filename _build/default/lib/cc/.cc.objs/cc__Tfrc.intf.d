lib/cc/tfrc.mli: Engine Flow Netsim
