lib/cc/window_cc.ml: Engine Float Flow Int List Logs Netsim Printf Set Sink
