lib/cc/rap.ml: Engine Float Flow Hashtbl Logs Netsim Printf
