lib/cc/sink.mli: Engine Netsim
