lib/cc/tfrc_eq.ml: Float
