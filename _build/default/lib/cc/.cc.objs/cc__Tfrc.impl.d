lib/cc/tfrc.ml: Engine Float Flow List Logs Loss_history Netsim Printf Queue Tfrc_eq
