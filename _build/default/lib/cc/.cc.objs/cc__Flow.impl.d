lib/cc/flow.ml:
