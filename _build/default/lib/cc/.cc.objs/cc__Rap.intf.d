lib/cc/rap.mli: Engine Flow Netsim
