lib/cc/flash_crowd.mli: Engine Netsim
