lib/cc/flash_crowd.ml: Array Engine Flow Hashtbl Netsim Window_cc
