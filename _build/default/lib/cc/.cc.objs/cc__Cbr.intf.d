lib/cc/cbr.mli: Engine Flow Netsim
