(** Flash crowd of short TCP transfers (Section 4.1.2).

    During [\[start, start + duration)], new short {!Window_cc} flows of
    [transfer_pkts] packets each arrive at [arrival_rate] flows per second
    (Poisson arrivals).  Flows are spread round-robin over a pool of host
    pairs so node fan-in stays realistic. *)

type config = {
  arrival_rate : float;  (** flows per second; paper uses 200 *)
  duration : float;  (** seconds; paper uses 5 *)
  transfer_pkts : int;  (** packets per flow; paper uses 10 *)
  pkt_size : int;
  pool_size : int;  (** host pairs to spread flows over *)
}

val default_config : config

type t

(** [create ~sim ~rng ~dumbbell ~start config] schedules the crowd. *)
val create :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  dumbbell:Netsim.Dumbbell.t ->
  start:float ->
  config ->
  t

val flows_started : t -> int
val flows_completed : t -> int

(** Aggregate bytes delivered to all crowd sinks. *)
val bytes_delivered : t -> float

(** Mean completion time of finished flows, seconds. *)
val mean_completion_time : t -> float
