type t = {
  k : int;
  mutable closed : float list;  (* most recent first, length <= k *)
  mutable n_events : int;
  mutable event_start_time : float;  (* of the current (latest) loss event *)
  mutable event_start_seq : int;
  mutable highest_seq : int;
}

let create ~k =
  if k < 1 then invalid_arg "Loss_history.create: k >= 1 required";
  {
    k;
    closed = [];
    n_events = 0;
    event_start_time = neg_infinity;
    event_start_seq = 0;
    highest_seq = -1;
  }

let note_progress t ~seq = if seq > t.highest_seq then t.highest_seq <- seq

let record_loss t ~seq ~now ~rtt =
  note_progress t ~seq;
  if now > t.event_start_time +. rtt then begin
    (* New loss event: close the running interval. *)
    if t.n_events > 0 then begin
      let interval = float_of_int (max 1 (seq - t.event_start_seq)) in
      t.closed <- interval :: t.closed;
      if List.length t.closed > t.k then
        t.closed <- List.filteri (fun i _ -> i < t.k) t.closed
    end;
    t.n_events <- t.n_events + 1;
    t.event_start_time <- now;
    t.event_start_seq <- seq;
    true
  end
  else false

let seed_first_interval t interval =
  if t.n_events = 0 then
    invalid_arg "Loss_history.seed_first_interval: no loss event yet";
  if t.closed = [] then t.closed <- [ Float.max 1. interval ]
  else t.closed <- Float.max 1. interval :: List.tl t.closed

(* Weight of the i-th most recent interval among k: 1 for the newer half,
   linearly decaying for the older half (RFC 3448 weights for k = 8:
   1,1,1,1,0.8,0.6,0.4,0.2). *)
let weight ~k i =
  let half = k / 2 in
  if i < half || k = 1 then 1.
  else float_of_int (k - i) /. float_of_int (k - half + 1)

let weighted_average ~k intervals =
  let rec go i num den = function
    | [] -> if den = 0. then 0. else num /. den
    | x :: rest ->
      if i >= k then if den = 0. then 0. else num /. den
      else begin
        let w = weight ~k i in
        go (i + 1) (num +. (w *. x)) (den +. w) rest
      end
  in
  go 0 0. 0. intervals

let open_interval t =
  if t.n_events = 0 then 0.
  else float_of_int (max 0 (t.highest_seq - t.event_start_seq))

let loss_event_rate ?(discounting = false) t =
  if t.n_events = 0 || t.closed = [] then 0.
  else begin
    let avg_closed = weighted_average ~k:t.k t.closed in
    let current = open_interval t in
    let avg_with_open = weighted_average ~k:t.k (current :: t.closed) in
    let avg =
      if discounting && avg_closed > 0. && current > 2. *. avg_closed then begin
        (* Simplified history discounting (RFC 3448 s5.5): when the open
           interval has grown well past the average, shrink the *weights*
           of the closed intervals so the long loss-free run dominates and
           the loss rate estimate drops faster. *)
        let df = Float.max 0.5 (2. *. avg_closed /. current) in
        let num = ref (weight ~k:t.k 0 *. current) in
        let den = ref (weight ~k:t.k 0) in
        List.iteri
          (fun i x ->
            if i + 1 < t.k then begin
              let w = df *. weight ~k:t.k (i + 1) in
              num := !num +. (w *. x);
              den := !den +. w
            end)
          t.closed;
        Float.max avg_closed (!num /. !den)
      end
      else Float.max avg_closed avg_with_open
    in
    if avg <= 0. then 0. else 1. /. avg
  end

let num_loss_events t = t.n_events
let intervals t = t.closed
