let rate_pps ~p ~rtt =
  if p <= 0. then infinity
  else if rtt <= 0. then invalid_arg "Tfrc_eq.rate_pps: rtt must be positive"
  else begin
    let p = Float.min p 1. in
    let term_fast = sqrt (2. *. p /. 3.) in
    let term_timeout =
      (* t_RTO = 4 RTT, hence the factor 12 = 4 * 3. *)
      12. *. sqrt (3. *. p /. 8.) *. p *. (1. +. (32. *. p *. p))
    in
    1. /. (rtt *. (term_fast +. term_timeout))
  end

let invert ~rate_pps:target ~rtt =
  if target <= 0. then 1.
  else begin
    let lo = ref 1e-8 and hi = ref 1. in
    (* rate_pps is decreasing in p; find p with rate_pps p = target. *)
    if rate_pps ~p:!hi ~rtt >= target then 1.
    else if rate_pps ~p:!lo ~rtt <= target then 1e-8
    else begin
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if rate_pps ~p:mid ~rtt > target then lo := mid else hi := mid
      done;
      0.5 *. (!lo +. !hi)
    end
  end
