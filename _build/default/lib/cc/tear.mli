(** TCP Emulation At Receivers (Rhee, Ozdemir, Yi 2000) — extension.

    The *receiver* runs TCP's window computation (slow-start, congestion
    avoidance, one halving per congestion round, timeout emulation when
    losses persist), driven by data arrivals instead of acks.  Instead of
    transmitting with that window, it smooths the per-round windows with a
    weighted moving average and reports [avg_cwnd / rtt] to the sender,
    which simply transmits at the reported rate.  The result is
    TCP-compatible long-term behavior with a much smoother sending rate
    and feedback only once per round — the property that makes TEAR
    attractive for multicast.

    Simplifications vs the TEAR report, documented in DESIGN.md: round
    boundaries are counted in arrivals of one emulated window; the RTT the
    receiver divides by is the sender's smoothed estimate echoed in data
    packets (as in our TFRC). *)

type config = {
  pkt_size : int;
  smoothing_rounds : int;  (** windows averaged; TEAR uses about 8 *)
  initial_rtt : float;
  initial_rate_pps : float;
  min_rate_pps : float;
}

val default_config : config

type t

val create :
  sim:Engine.Sim.t ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  flow:int ->
  config ->
  t

val flow : t -> Flow.t

(** Introspection. *)
val rate_pps : t -> float

val emulated_cwnd : t -> float
val srtt : t -> float
