type t = {
  id : int;
  protocol : string;
  start : unit -> unit;
  stop : unit -> unit;
  pkts_sent : unit -> int;
  bytes_sent : unit -> float;
  bytes_delivered : unit -> float;
  current_rate : unit -> float;
  srtt : unit -> float;
}

let throughput t ~t0 ~t1 ~snapshot0 =
  if t1 <= t0 then invalid_arg "Flow.throughput: empty interval";
  (t.bytes_delivered () -. snapshot0) /. (t1 -. t0)
