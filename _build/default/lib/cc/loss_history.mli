(** TFRC receiver-side loss-interval history (WALI).

    Maintains the lengths (in packets of sequence space) of the intervals
    between consecutive *loss events*; losses within one RTT of the start
    of a loss event belong to that event.  The loss event rate is the
    inverse of the weighted average of the most recent [k] intervals, where
    the open (current) interval is counted when doing so raises the
    average.  TFRC(k) varies [k]; the deployed default is about 6–8. *)

type t

val create : k:int -> t

(** Sequence-number bookkeeping: call when data seq [seq] arrives in order
    or fills a hole. *)
val note_progress : t -> seq:int -> unit

(** [record_loss t ~seq ~now ~rtt] reports the loss of packet [seq]
    detected at time [now].  Returns [true] when this starts a new loss
    event (i.e. [now] is more than [rtt] past the current event start). *)
val record_loss : t -> seq:int -> now:float -> rtt:float -> bool

(** Replace the (single) first interval with a synthetic length derived by
    inverting the throughput equation — RFC 3448 s6.3.1. *)
val seed_first_interval : t -> float -> unit

(** Current loss event rate estimate; 0 when no loss event yet.
    [discounting] enables history discounting for long loss-free runs. *)
val loss_event_rate : ?discounting:bool -> t -> float

val num_loss_events : t -> int

(** Closed intervals, most recent first (tests). *)
val intervals : t -> float list
