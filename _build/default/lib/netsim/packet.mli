(** Simulated packets.

    Packets are immutable apart from ECN marking; transport-specific control
    information rides in [payload]. *)

type tfrc_feedback = {
  loss_event_rate : float;  (** receiver's current loss-event rate estimate *)
  recv_rate : float;  (** bytes/s received over the last RTT *)
  timestamp_echo : float;  (** sender timestamp being echoed, for RTT *)
  delay_echo : float;  (** receiver-side hold time to subtract *)
  new_loss : bool;  (** a new loss event occurred since the last feedback *)
}

type payload =
  | Plain
  | Ack of {
      cum_seq : int;  (** cumulative: all seq < cum_seq received *)
      sack : (int * int) list;
          (** selective-ack blocks [lo, hi), newest first, at most 3 *)
    }
  | Rap_ack of { cum_seq : int; recv_rate : float }
  | Tfrc_data of { timestamp : float; rtt_estimate : float }
  | Tfrc_fb of tfrc_feedback
  | Tear_fb of {
      rate_pps : float;  (** receiver-computed TCP-fair rate *)
      timestamp_echo : float;
      delay_echo : float;
    }

type t = {
  uid : int;  (** globally unique *)
  flow : int;  (** flow identifier; sinks dispatch on this *)
  src : int;  (** source node id *)
  dst : int;  (** destination node id *)
  size : int;  (** bytes on the wire *)
  seq : int;  (** data sequence number, in packets *)
  sent_at : float;  (** transport send time (for RTT sampling) *)
  payload : payload;
  mutable ecn : bool;  (** congestion-experienced mark *)
}

(** [make ()] allocates a fresh uid.  Defaults: [size = 1000] bytes,
    [payload = Plain], [seq = 0]. *)
val make :
  ?size:int ->
  ?seq:int ->
  ?payload:payload ->
  flow:int ->
  src:int ->
  dst:int ->
  sent_at:float ->
  unit ->
  t

val is_ack : t -> bool
val pp : Format.formatter -> t -> unit

(** Reset the uid counter (tests only). *)
val reset_uids : unit -> unit
