(** Random Early Detection queue (Floyd & Jacobson 1993), with the ns-2
    "gentle" extension and optional ECN marking.

    The average queue size is an EWMA over instantaneous length sampled at
    each arrival; during idle periods the average decays as if small packets
    had been arriving back-to-back. *)

type params = {
  min_th : float;  (** packets *)
  max_th : float;  (** packets *)
  w_q : float;  (** EWMA weight, ns-2 default 0.002 *)
  max_p : float;  (** marking probability at [max_th], ns-2 default 0.1 *)
  capacity : int;  (** physical buffer limit in packets *)
  gentle : bool;  (** linear ramp from [max_p] to 1 between max_th, 2max_th *)
  ecn : bool;  (** mark instead of dropping for probabilistic congestion *)
  mean_pkt_tx_time : float;  (** seconds to transmit a typical packet *)
}

val default_params : params

val make : sim:Engine.Sim.t -> rng:Engine.Rng.t -> params -> Queue_intf.t

(** Current average queue estimate, for instrumentation/tests. *)
val make_with_introspection :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  params ->
  Queue_intf.t * (unit -> float)
