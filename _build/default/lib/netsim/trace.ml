type t = {
  sim : Engine.Sim.t;
  out : Format.formatter;
  mutable active : bool;
  mutable events : int;
}

let log t tag (pkt : Packet.t) =
  if t.active then begin
    t.events <- t.events + 1;
    Format.fprintf t.out "%s %.6f %d %d %d %d@." tag (Engine.Sim.now t.sim)
      pkt.Packet.flow pkt.Packet.seq pkt.Packet.size pkt.Packet.uid
  end

let attach ~sim ~out link =
  let t = { sim; out; active = true; events = 0 } in
  Link.on_departure link (log t "d");
  Link.on_drop link (log t "x");
  t

let events t = t.events
let stop t = t.active <- false
