type t = {
  sim : Engine.Sim.t;
  bandwidth : float;
  delay : float;
  queue : Queue_intf.t;
  mutable busy : bool;
  mutable deliver : Packet.t -> unit;
  mutable arrivals : int;
  mutable drops : int;
  mutable departures : int;
  mutable bytes_out : float;
  mutable drop_hooks : (Packet.t -> unit) list;
  mutable departure_hooks : (Packet.t -> unit) list;
}

let make ~sim ~bandwidth ~delay ~queue =
  if bandwidth <= 0. then invalid_arg "Link.make: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.make: negative delay";
  {
    sim;
    bandwidth;
    delay;
    queue;
    busy = false;
    deliver = (fun _ -> ());
    arrivals = 0;
    drops = 0;
    departures = 0;
    bytes_out = 0.;
    drop_hooks = [];
    departure_hooks = [];
  }

let connect t deliver = t.deliver <- deliver
let bandwidth t = t.bandwidth
let delay t = t.delay
let queue t = t.queue
let tx_time t ~bytes = float_of_int (bytes * 8) /. t.bandwidth

let rec transmit_next t =
  match t.queue.Queue_intf.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    let tx = tx_time t ~bytes:pkt.Packet.size in
    Engine.Sim.after t.sim tx (fun () ->
        t.departures <- t.departures + 1;
        t.bytes_out <- t.bytes_out +. float_of_int pkt.Packet.size;
        List.iter (fun hook -> hook pkt) t.departure_hooks;
        let deliver () = t.deliver pkt in
        if t.delay > 0. then Engine.Sim.after t.sim t.delay deliver
        else deliver ();
        transmit_next t)

let send t pkt =
  t.arrivals <- t.arrivals + 1;
  match t.queue.Queue_intf.enqueue pkt with
  | Queue_intf.Dropped ->
    t.drops <- t.drops + 1;
    List.iter (fun hook -> hook pkt) t.drop_hooks
  | Queue_intf.Enqueued | Queue_intf.Marked ->
    if not t.busy then transmit_next t

let arrivals t = t.arrivals
let drops t = t.drops
let departures t = t.departures
let bytes_out t = t.bytes_out
let on_drop t hook = t.drop_hooks <- hook :: t.drop_hooks
let on_departure t hook = t.departure_hooks <- hook :: t.departure_hooks
