(** FIFO queue with a hard capacity in packets. *)

val make : capacity:int -> Queue_intf.t
