(** ns-2-style packet event traces.

    Attach a trace to a link and every departure ("+" would be enqueue in
    ns-2; we log the observable events: departure [d] and drop [x]) is
    written as a text line:

    {v <event> <time> <flow> <seq> <size> <uid> v}

    Useful for debugging protocol dynamics and for piping into external
    plotting. *)

type t

(** [attach ~sim ~out link] starts tracing [link] onto formatter [out]. *)
val attach : sim:Engine.Sim.t -> out:Format.formatter -> Link.t -> t

(** Number of events written so far. *)
val events : t -> int

(** Stop writing further events (hooks stay registered but inert). *)
val stop : t -> unit
