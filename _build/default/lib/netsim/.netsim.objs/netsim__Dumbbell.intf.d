lib/netsim/dumbbell.mli: Engine Link Node Queue_intf
