lib/netsim/red.mli: Engine Queue_intf
