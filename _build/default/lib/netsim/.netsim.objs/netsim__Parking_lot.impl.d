lib/netsim/parking_lot.ml: Array Droptail Dumbbell Engine Float Link Node Red
