lib/netsim/dumbbell.ml: Droptail Engine Float Link Node Queue_intf Red
