lib/netsim/node.mli: Link Packet
