lib/netsim/trace.ml: Engine Format Link Packet
