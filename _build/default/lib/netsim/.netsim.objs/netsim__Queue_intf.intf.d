lib/netsim/queue_intf.mli: Packet
