lib/netsim/red.ml: Engine Float Packet Queue Queue_intf
