lib/netsim/droptail.mli: Queue_intf
