lib/netsim/droptail.ml: Packet Queue Queue_intf
