lib/netsim/queue_intf.ml: Packet
