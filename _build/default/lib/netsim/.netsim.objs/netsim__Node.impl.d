lib/netsim/node.ml: Hashtbl Link Packet
