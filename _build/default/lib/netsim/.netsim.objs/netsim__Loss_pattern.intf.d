lib/netsim/loss_pattern.mli: Engine Queue_intf
