lib/netsim/loss_pattern.ml: Array Engine List Packet Queue_intf
