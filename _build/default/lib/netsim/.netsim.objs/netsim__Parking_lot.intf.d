lib/netsim/parking_lot.mli: Dumbbell Engine Link Node
