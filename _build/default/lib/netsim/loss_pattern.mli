(** Deterministic drop patterns layered over an inner queue.

    Used for the paper's designed bursty-loss experiments (Figures 17–19),
    where losses are a fixed function of arrival counts or wall-clock
    phases rather than queue dynamics. *)

(** [by_count ~pattern inner]: cycling through [pattern], let [n - 1]
    packets pass and drop the [n]-th, for each [n] in the list.  Example
    from Figure 17: [pattern = [50; 50; 50; 400; 400; 400]] is three losses
    each after 50 arrivals, then three each after 400 arrivals, repeating. *)
val by_count : pattern:int list -> Queue_intf.t -> Queue_intf.t

(** [by_phase ~sim ~phases inner]: [phases] is a cycling list of
    [(duration, drop_every_n)]; during each phase every [n]-th arrival is
    dropped.  [drop_every_n = 0] means no drops in that phase.  Example from
    Figure 18: [[ (6.0, 200); (1.0, 4) ]]. *)
val by_phase :
  sim:Engine.Sim.t ->
  phases:(float * int) list ->
  Queue_intf.t ->
  Queue_intf.t

(** [bernoulli ~rng ~p inner] drops each data packet independently with
    probability [p] — the random-loss environment assumed by the analytic
    response functions. *)
val bernoulli : rng:Engine.Rng.t -> p:float -> Queue_intf.t -> Queue_intf.t

(** [one_per_interval ~sim ~interval ~start inner] drops the first data
    packet arriving in each window [\[start + k interval, start + (k+1)
    interval)] — the paper's "persistent congestion" of one loss per RTT
    used to define responsiveness (Section 3). *)
val one_per_interval :
  sim:Engine.Sim.t ->
  interval:float ->
  start:float ->
  Queue_intf.t ->
  Queue_intf.t
