(** Analytical model of transient fairness for two AIMD(a, b) flows
    (Section 4.2.2, Figure 11).

    With a steady-state mark probability [p], the expected window gap of
    two flows sharing an ack stream contracts by a factor [(1 - bp)] per
    ack, so reaching a delta-fair allocation from a fully skewed start
    takes about [log delta / log (1 - bp)] acks. *)

(** Expected number of acks for the window difference to fall to a
    fraction [delta] of its initial value. *)
val acks_to_fairness : b:float -> p:float -> delta:float -> float

(** Simulate the expected-value recurrence of Section 4.2.2 directly:
    windows [(x1, x2)] evolve per ack by the AIMD expectations.  Returns
    the number of acks until [|x1 - x2| / (x1 + x2) <= delta], capped at
    [max_acks]. *)
val simulate_recurrence :
  a:float ->
  b:float ->
  p:float ->
  delta:float ->
  x1:float ->
  x2:float ->
  max_acks:int ->
  int option
