(** Numeric TCP-compatibility calibration for binomial algorithms.

    The paper defines SQRT(1/gamma) and IIAD as "the TCP-compatible
    instances" of the binomial family but gives no constants.  We pick the
    decrease constant [b] so that the window reduction at the reference
    operating point equals a [1/gamma] fraction of the window, then
    calibrate the increase constant [a] so that the deterministic
    steady-state sawtooth matches TCP's [sqrt(1.5/p)] average window at a
    reference loss rate (default [p_ref = 0.01]). *)

(** Average window (packets/RTT) of the deterministic sawtooth of
    binomial(k, l, a, b) when one packet in [1/p] is dropped. *)
val average_window :
  k:float -> l:float -> a:float -> b:float -> p:float -> float

(** The increase constant [a] making binomial(k, l, _, b) match TCP's
    average window at [p_ref]. *)
val calibrate_a : ?p_ref:float -> k:float -> l:float -> b:float -> unit -> float

(** [(a, b)] for SQRT(1/gamma): k = l = 1/2. *)
val sqrt_params : ?p_ref:float -> gamma:float -> unit -> float * float

(** [(a, b)] for IIAD with relative decrease [1/gamma] at the reference
    window: k = 1, l = 0. *)
val iiad_params : ?p_ref:float -> gamma:float -> unit -> float * float
