let reno_padhye ?(t_rto_rtts = 4.) ~p () =
  if p <= 0. then infinity
  else if p >= 1. then 0.
  else begin
    let term_fast = sqrt (2. *. p /. 3.) in
    let term_timeout =
      t_rto_rtts
      *. Float.min 1. (3. *. sqrt (3. *. p /. 8.))
      *. p
      *. (1. +. (32. *. p *. p))
    in
    1. /. (term_fast +. term_timeout)
  end

let pure_aimd ?(a = 1.) ?(b = 0.5) ~p () =
  if p <= 0. then infinity
  else if p >= 1. then 0.
  else
    (* Deterministic sawtooth: W_max = sqrt(2a / (b(2-b)p)); the average
       window is W_max (2-b)/2, giving sqrt(a(2-b)/(2b)) / sqrt(p). *)
    sqrt (a *. (2. -. b) /. (2. *. b)) /. sqrt p

let aimd_with_timeouts ~p =
  if p <= 0. || p >= 1. then invalid_arg "aimd_with_timeouts: p in (0,1)";
  let n1 = 1. /. (1. -. p) in
  n1 /. ((2. ** n1) -. 1.)

let compatible_a_of_b b =
  if b <= 0. || b >= 1. then invalid_arg "compatible_a_of_b: b in (0,1)";
  4. *. ((2. *. b) -. (b *. b)) /. 3.
