(** Analytical approximation of the f(k) link-utilization metric
    (Section 4.2.3).

    After the available bandwidth doubles from [lambda] to [2 lambda]
    packets/s, an AIMD(a, b) flow raises its rate by [a/R] packets/s per
    RTT, so the utilization of the first [k] RTTs is approximately
    [1/2 + k a / (4 R lambda)], capped at 1. *)

val f_k :
  a:float ->
  k:int ->
  rtt:float ->
  lambda:float (** pre-doubling rate, packets/s *) ->
  float
