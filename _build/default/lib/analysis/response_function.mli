(** TCP response functions: sending rate (packets per RTT) as a function of
    the packet drop rate [p].  These generate Figure 20 and Appendix A.

    - {!reno_padhye}: the full Padhye et al. formula including retransmit
      timeouts (Reno without delayed acks), a lower bound on TCP behavior;
    - {!pure_aimd}: the deterministic AIMD model [sqrt(1.5/p)], valid up to
      p of about 1/3, no timeouts;
    - {!aimd_with_timeouts}: Appendix A's extension of AIMD below one
      packet per RTT, where halving the rate equals exponential backoff of
      the retransmit timer — an upper bound for p >= 0.5. *)

(** Packets per RTT under the full Padhye model; [t_rto_rtts] is the
    retransmit timeout in units of RTT (default 4). *)
val reno_padhye : ?t_rto_rtts:float -> p:float -> unit -> float

(** Deterministic pure-AIMD rate [sqrt(3/(2p))] packets/RTT for the general
    AIMD(a, b); TCP's constants by default. *)
val pure_aimd : ?a:float -> ?b:float -> p:float -> unit -> float

(** Appendix A model: with [p = n/(n+1)], the sender delivers [n + 1]
    packets per [2^(n+1) - 1] RTTs.  Defined for [p >= 0.5]; this
    implementation evaluates the closed form
    [(1/(1-p)) / (2^(1/(1-p)) - 1)] for any [0 < p < 1]. *)
val aimd_with_timeouts : p:float -> float

(** The paper's TCP-compatible AIMD increase rule: a = 4(2b - b^2)/3. *)
val compatible_a_of_b : float -> float
