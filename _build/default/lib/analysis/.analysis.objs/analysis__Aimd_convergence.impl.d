lib/analysis/aimd_convergence.ml: Float
