lib/analysis/binomial_calibration.mli:
