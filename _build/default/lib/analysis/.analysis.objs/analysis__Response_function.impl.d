lib/analysis/response_function.ml: Float
