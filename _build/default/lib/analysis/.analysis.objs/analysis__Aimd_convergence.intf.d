lib/analysis/aimd_convergence.mli:
