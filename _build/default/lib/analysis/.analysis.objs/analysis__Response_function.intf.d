lib/analysis/response_function.mli:
