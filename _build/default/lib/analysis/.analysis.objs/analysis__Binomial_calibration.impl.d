lib/analysis/binomial_calibration.ml: Float
