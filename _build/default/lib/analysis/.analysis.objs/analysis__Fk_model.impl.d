lib/analysis/fk_model.ml:
