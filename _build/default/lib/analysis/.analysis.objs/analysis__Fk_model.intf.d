lib/analysis/fk_model.mli:
