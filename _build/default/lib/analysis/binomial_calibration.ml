let tcp_average_window p = sqrt (1.5 /. p)

let average_window ~k ~l ~a ~b ~p =
  if p <= 0. || p >= 1. then invalid_arg "average_window: p in (0,1)";
  if a <= 0. || b <= 0. then invalid_arg "average_window: a, b positive";
  let pkts_per_cycle = 1. /. p in
  (* Iterate drop cycles until the peak window converges; each cycle grows
     the window by a/w^k per RTT until 1/p packets have been sent, then
     applies one decrease. *)
  let w = ref (tcp_average_window p) in
  let total_pkts = ref 0. and total_rtts = ref 0. in
  let cycles = 60 and warmup = 20 in
  for cycle = 1 to cycles do
    let sent = ref 0. and rtts = ref 0. in
    while !sent < pkts_per_cycle do
      sent := !sent +. !w;
      rtts := !rtts +. 1.;
      w := !w +. (a /. (!w ** k))
    done;
    w := Float.max 1. (!w -. (b *. (!w ** l)));
    if cycle > warmup then begin
      total_pkts := !total_pkts +. !sent;
      total_rtts := !total_rtts +. !rtts
    end
  done;
  !total_pkts /. !total_rtts

let calibrate_a ?(p_ref = 0.01) ~k ~l ~b () =
  let target = tcp_average_window p_ref in
  let avg a = average_window ~k ~l ~a ~b ~p:p_ref in
  (* average_window is increasing in a; bisection on a generous bracket. *)
  let lo = ref 1e-6 and hi = ref 1e4 in
  for _ = 1 to 80 do
    let mid = sqrt (!lo *. !hi) in
    if avg mid < target then lo := mid else hi := mid
  done;
  sqrt (!lo *. !hi)

(* Decrease constant giving a relative reduction of 1/gamma at the
   reference operating window W_ref: b W^l = W/gamma. *)
let decrease_constant ~l ~gamma ~p_ref =
  let w_ref = tcp_average_window p_ref in
  (w_ref ** (1. -. l)) /. gamma

let sqrt_params ?(p_ref = 0.01) ~gamma () =
  if gamma < 1. then invalid_arg "sqrt_params: gamma >= 1";
  let k = 0.5 and l = 0.5 in
  let b = decrease_constant ~l ~gamma ~p_ref in
  (calibrate_a ~p_ref ~k ~l ~b (), b)

let iiad_params ?(p_ref = 0.01) ~gamma () =
  if gamma < 1. then invalid_arg "iiad_params: gamma >= 1";
  let k = 1.0 and l = 0.0 in
  let b = decrease_constant ~l ~gamma ~p_ref in
  (calibrate_a ~p_ref ~k ~l ~b (), b)
