let f_k ~a ~k ~rtt ~lambda =
  if k <= 0 then invalid_arg "Fk_model.f_k: k must be positive";
  if rtt <= 0. || lambda <= 0. then invalid_arg "Fk_model.f_k";
  (* The ramp a/R per RTT fills the freed half in k* = 2 R lambda / a RTTs;
     beyond that the extra capacity is fully used. *)
  let k = float_of_int k in
  let k_star = 2. *. rtt *. lambda /. a in
  if k <= k_star then 0.5 +. (k *. a /. (4. *. rtt *. lambda))
  else begin
    (* Average of the ramp phase and the saturated phase. *)
    let ramp_avg = 0.5 +. (k_star *. a /. (4. *. rtt *. lambda)) in
    ((ramp_avg *. k_star) +. (k -. k_star)) /. k
  end
