let acks_to_fairness ~b ~p ~delta =
  if b <= 0. || b >= 1. then invalid_arg "acks_to_fairness: b in (0,1)";
  if p <= 0. || p >= 1. then invalid_arg "acks_to_fairness: p in (0,1)";
  if delta <= 0. || delta >= 1. then
    invalid_arg "acks_to_fairness: delta in (0,1)";
  log delta /. log (1. -. (b *. p))

let simulate_recurrence ~a ~b ~p ~delta ~x1 ~x2 ~max_acks =
  if x1 <= 0. || x2 <= 0. then invalid_arg "simulate_recurrence: windows";
  let x1 = ref x1 and x2 = ref x2 in
  let rec go i =
    if Float.abs (!x1 -. !x2) /. (!x1 +. !x2) <= delta then Some i
    else if i >= max_acks then None
    else begin
      let total = !x1 +. !x2 in
      let step x = (a *. (1. -. p) /. x) -. (b *. p *. x) in
      let d1 = !x1 /. total *. step !x1 in
      let d2 = !x2 /. total *. step !x2 in
      x1 := Float.max 1e-9 (!x1 +. d1);
      x2 := Float.max 1e-9 (!x2 +. d2);
      go (i + 1)
    end
  in
  go 0
