(** Append-only time series of (time, value) samples with windowed queries. *)

type t

val create : unit -> t
val add : t -> time:float -> float -> unit
val length : t -> int
val is_empty : t -> bool

(** All samples in chronological order. *)
val to_list : t -> (float * float) list

(** Samples with [lo <= time < hi]. *)
val between : t -> lo:float -> hi:float -> (float * float) list

(** Mean of values with [lo <= time < hi]; [None] if no samples. *)
val mean_between : t -> lo:float -> hi:float -> float option

val last : t -> (float * float) option

(** Largest ratio between consecutive values, ignoring pairs where either
    value is below [floor] (to avoid division blow-ups near zero).  This is
    the paper's smoothness metric when values are per-RTT sending rates. *)
val max_consecutive_ratio : ?floor:float -> t -> float

(** Fold left over samples. *)
val fold : t -> init:'a -> f:('a -> float -> float -> 'a) -> 'a
