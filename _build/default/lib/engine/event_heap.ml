type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let initial_capacity = 256

let create () = { arr = [||]; len = 0; next_seq = 0 }

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.arr in
  let new_cap = if cap = 0 then initial_capacity else cap * 2 in
  let dummy = t.arr.(0) in
  let arr = Array.make new_cap dummy in
  Array.blit t.arr 0 arr 0 t.len;
  t.arr <- arr

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.arr.(i) t.arr.(parent) then begin
      let tmp = t.arr.(i) in
      t.arr.(i) <- t.arr.(parent);
      t.arr.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && lt t.arr.(left) t.arr.(!smallest) then smallest := left;
  if right < t.len && lt t.arr.(right) t.arr.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = t.arr.(i) in
    t.arr.(i) <- t.arr.(!smallest);
    t.arr.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~time value =
  if not (Float.is_finite time) then
    invalid_arg "Event_heap.add: non-finite time";
  let entry = { time; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.len = 0 && Array.length t.arr = 0 then
    t.arr <- Array.make initial_capacity entry
  else if t.len = Array.length t.arr then grow t;
  t.arr.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.arr.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.arr.(0) <- t.arr.(t.len);
      sift_down t 0
    end;
    Some (top.time, top.value)
  end

let peek_time t = if t.len = 0 then None else Some t.arr.(0).time
let size t = t.len
let is_empty t = t.len = 0
let clear t = t.len <- 0
