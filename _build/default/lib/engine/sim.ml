type handle = { mutable live : bool }

type t = {
  heap : (unit -> unit) Event_heap.t;
  mutable now : float;
  mutable running : bool;
  mutable processed : int;
}

let create () =
  { heap = Event_heap.create (); now = 0.; running = false; processed = 0 }

let now t = t.now

let at t time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is in the past (now %g)" time t.now);
  Event_heap.add t.heap ~time f

let after t delay f = at t (t.now +. delay) f

let at_cancellable t time f =
  let handle = { live = true } in
  let guarded () =
    if handle.live then begin
      handle.live <- false;
      f ()
    end
  in
  at t time guarded;
  handle

let after_cancellable t delay f = at_cancellable t (t.now +. delay) f

let cancel handle = handle.live <- false
let pending handle = handle.live

let every ?(stop = Float.infinity) t ~interval f =
  if interval <= 0. then invalid_arg "Sim.every: non-positive interval";
  let rec tick () =
    if t.now <= stop then begin
      f ();
      let next = t.now +. interval in
      if next <= stop then at t next tick
    end
  in
  let first = t.now +. interval in
  if first <= stop then at t first tick

let stop t = t.running <- false

let run ?(until = Float.infinity) t =
  t.running <- true;
  let rec loop () =
    if t.running then
      match Event_heap.peek_time t.heap with
      | None -> t.running <- false
      | Some time when time > until ->
        (* Leave the event in the heap so the simulation can resume from
           this clock later; park the clock at the horizon. *)
        t.now <- until;
        t.running <- false
      | Some _ ->
        (match Event_heap.pop t.heap with
        | Some (time, f) ->
          t.now <- time;
          t.processed <- t.processed + 1;
          f ()
        | None -> t.running <- false);
        loop ()
  in
  loop ();
  if Event_heap.is_empty t.heap && t.now < until && Float.is_finite until then
    t.now <- until

let events_processed t = t.processed
