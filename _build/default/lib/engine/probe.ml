let sample_level ?stop sim ~every f =
  let ts = Timeseries.create () in
  Sim.every ?stop sim ~interval:every (fun () ->
      Timeseries.add ts ~time:(Sim.now sim) (f ()));
  ts

let sample_rate ?stop sim ~every f =
  let ts = Timeseries.create () in
  let prev = ref (f ()) in
  Sim.every ?stop sim ~interval:every (fun () ->
      let cur = f () in
      Timeseries.add ts ~time:(Sim.now sim) ((cur -. !prev) /. every);
      prev := cur);
  ts

let sample_ratio ?stop sim ~every ~num ~den =
  let ts = Timeseries.create () in
  let prev_num = ref (num ()) and prev_den = ref (den ()) in
  Sim.every ?stop sim ~interval:every (fun () ->
      let n = num () and d = den () in
      let dn = n -. !prev_num and dd = d -. !prev_den in
      Timeseries.add ts ~time:(Sim.now sim) (if dd > 0. then dn /. dd else 0.);
      prev_num := n;
      prev_den := d);
  ts
