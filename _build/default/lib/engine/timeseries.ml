type t = {
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create () = { times = [||]; values = [||]; len = 0 }

let grow t =
  let cap = Array.length t.times in
  let new_cap = if cap = 0 then 64 else cap * 2 in
  let times = Array.make new_cap 0. and values = Array.make new_cap 0. in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.values 0 values 0 t.len;
  t.times <- times;
  t.values <- values

let add t ~time v =
  if t.len > 0 && time < t.times.(t.len - 1) then
    invalid_arg "Timeseries.add: non-monotonic time";
  if t.len = Array.length t.times then grow t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- v;
  t.len <- t.len + 1

let length t = t.len
let is_empty t = t.len = 0

let to_list t =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) ((t.times.(i), t.values.(i)) :: acc)
  in
  build (t.len - 1) []

let between t ~lo ~hi =
  let rec build i acc =
    if i < 0 then acc
    else begin
      let time = t.times.(i) in
      if time < lo then acc
      else if time >= hi then build (i - 1) acc
      else build (i - 1) ((time, t.values.(i)) :: acc)
    end
  in
  build (t.len - 1) []

let mean_between t ~lo ~hi =
  let n = ref 0 and sum = ref 0. in
  for i = 0 to t.len - 1 do
    let time = t.times.(i) in
    if time >= lo && time < hi then begin
      incr n;
      sum := !sum +. t.values.(i)
    end
  done;
  if !n = 0 then None else Some (!sum /. float_of_int !n)

let last t =
  if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

let max_consecutive_ratio ?(floor = 1e-9) t =
  let worst = ref 1. in
  for i = 1 to t.len - 1 do
    let a = t.values.(i - 1) and b = t.values.(i) in
    if a > floor && b > floor then begin
      let ratio = if a > b then a /. b else b /. a in
      if ratio > !worst then worst := ratio
    end
  done;
  !worst

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.times.(i) t.values.(i)
  done;
  !acc
