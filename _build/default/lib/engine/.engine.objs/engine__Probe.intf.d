lib/engine/probe.mli: Sim Timeseries
