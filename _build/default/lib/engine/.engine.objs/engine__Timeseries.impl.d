lib/engine/timeseries.ml: Array
