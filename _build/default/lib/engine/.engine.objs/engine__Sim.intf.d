lib/engine/sim.mli:
