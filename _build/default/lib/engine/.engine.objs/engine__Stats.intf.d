lib/engine/stats.mli:
