lib/engine/timeseries.mli:
