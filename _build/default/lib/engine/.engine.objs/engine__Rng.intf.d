lib/engine/rng.mli:
