lib/engine/event_heap.mli:
