lib/engine/event_heap.ml: Array Float
