lib/engine/probe.ml: Sim Timeseries
