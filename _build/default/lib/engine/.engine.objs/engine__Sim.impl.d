lib/engine/sim.ml: Event_heap Float Printf
