(** Discrete-event simulation clock and scheduler.

    A [Sim.t] owns the virtual clock and an event heap of thunks.  All
    simulated components schedule closures through it; [run] drains events
    in time order until the heap is empty or a stop condition fires. *)

type t

(** A handle to a scheduled event that can be cancelled. *)
type handle

val create : unit -> t

(** Current virtual time in seconds. *)
val now : t -> float

(** [at t time f] runs [f] at absolute [time].  Scheduling in the past
    raises [Invalid_argument]. *)
val at : t -> float -> (unit -> unit) -> unit

(** [after t delay f] runs [f] at [now t +. delay]. *)
val after : t -> float -> (unit -> unit) -> unit

(** Cancellable variants. *)
val at_cancellable : t -> float -> (unit -> unit) -> handle

val after_cancellable : t -> float -> (unit -> unit) -> handle

(** Cancel an event; a no-op if already fired or cancelled. *)
val cancel : handle -> unit

(** True if the handle has neither fired nor been cancelled. *)
val pending : handle -> bool

(** [every t ~interval ~stop f] runs [f] every [interval] seconds starting
    at [now +. interval] until [stop] (absolute time, default: forever). *)
val every : ?stop:float -> t -> interval:float -> (unit -> unit) -> unit

(** Drain events until the heap is empty, [until] is reached (the clock is
    then left at [until]), or [stop] is called. *)
val run : ?until:float -> t -> unit

(** Stop [run] after the current event completes. *)
val stop : t -> unit

(** Number of events processed so far. *)
val events_processed : t -> int
