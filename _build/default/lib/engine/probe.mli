(** Periodic samplers turning instantaneous readings into time series. *)

(** [sample_level sim ~every f] records [f ()] every [every] seconds. *)
val sample_level :
  ?stop:float -> Sim.t -> every:float -> (unit -> float) -> Timeseries.t

(** [sample_rate sim ~every f] treats [f ()] as a cumulative counter and
    records its per-second rate of change over each interval. *)
val sample_rate :
  ?stop:float -> Sim.t -> every:float -> (unit -> float) -> Timeseries.t

(** [sample_ratio sim ~every ~num ~den] records the ratio of the increments
    of two cumulative counters over each interval (e.g. drops / arrivals),
    or 0 when the denominator did not advance. *)
val sample_ratio :
  ?stop:float ->
  Sim.t ->
  every:float ->
  num:(unit -> float) ->
  den:(unit -> float) ->
  Timeseries.t
