(** The paper's evaluation metrics (Section 3). *)

type stabilization = {
  time_seconds : float;  (** from the congestion onset *)
  time_rtts : float;
  cost : float;
      (** stabilization time (RTTs) x average loss fraction during the
          stabilization interval; 1 = one full RTT of packets dropped *)
  avg_loss : float;  (** average loss fraction during the interval *)
  steady_loss : float;  (** the reference steady-state loss fraction *)
}

(** [stabilization ~loss_series ~t_event ~steady_loss ~rtt] measures how
    long after [t_event] the loss rate stays above 1.5 x [steady_loss].
    [loss_series] holds per-bin loss fractions (bins of about 10 RTTs, as
    in the paper).  Returns [None] when the loss rate never exceeded the
    threshold after [t_event]. *)
val stabilization :
  loss_series:Engine.Timeseries.t ->
  t_event:float ->
  steady_loss:float ->
  rtt:float ->
  stabilization option

(** [fair_convergence ~rate1 ~rate2 ~t_start ~delta] is the paper's
    delta-fair convergence time: the first time at/after [t_start] when the
    allocation [(x1, x2)] satisfies [min x / (x1 + x2) >= (1 - delta)/2],
    i.e. lies within the delta-fair band.  [rate1]/[rate2] are throughput
    time series on a common sampling grid.  [None] if never reached. *)
val fair_convergence :
  rate1:Engine.Timeseries.t ->
  rate2:Engine.Timeseries.t ->
  t_start:float ->
  delta:float ->
  float option

(** [f_k ~delivered_bytes ~t_event ~k ~rtt ~bandwidth] is Section 4.2.3's
    utilization metric: the fraction of the link capacity used during the
    first [k] RTTs after [t_event].  [delivered_bytes] is a cumulative
    counter closure sampled now and scheduled at [t_event + k rtt] — here
    we take the two snapshots as arguments instead. *)
val f_k :
  bytes_at_event:float ->
  bytes_after:float ->
  k:int ->
  rtt:float ->
  bandwidth:float ->
  float

(** Largest ratio between consecutive bins of a sending-rate series — the
    paper's smoothness metric when the bin is one RTT.  Bins where either
    value is below [floor] bytes/s are skipped. *)
val smoothness : ?floor:float -> Engine.Timeseries.t -> float

(** Mean of a series between two times; 0 when empty. *)
val mean_between : Engine.Timeseries.t -> lo:float -> hi:float -> float

(** Utilization of a link over a window given its cumulative bytes-out
    snapshots. *)
val utilization :
  bytes0:float -> bytes1:float -> dt:float -> bandwidth:float -> float
