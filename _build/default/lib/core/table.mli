(** Plain-text result tables: every experiment renders one (or more) of
    these, mirroring a figure of the paper. *)

type t = {
  id : string;  (** e.g. "fig4" *)
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string ->
  title:string ->
  columns:string list ->
  ?notes:string list ->
  string list list ->
  t

val print : Format.formatter -> t -> unit

(** CSV rendering: header line, data rows, notes as trailing [# ] comment
    lines.  Cells containing commas or quotes are quoted. *)
val to_csv : t -> string

(** [save_csv ~dir t] writes [dir/<id>.csv]; creates [dir] if needed. *)
val save_csv : dir:string -> t -> string

(** Formatting helpers. *)
val fnum : float -> string

val fpct : float -> string
