type t = {
  id : string;
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~columns ?(notes = []) rows =
  { id; title; columns; rows; notes }

let fnum v =
  if Float.is_integer v && Float.abs v < 1e6 then
    Printf.sprintf "%.0f" v
  else if Float.abs v >= 100. then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1. then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4f" v

let fpct v = Printf.sprintf "%.2f%%" (100. *. v)

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

let to_csv t =
  let buf = Buffer.create 1024 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  line t.columns;
  List.iter line t.rows;
  List.iter
    (fun note ->
      Buffer.add_string buf ("# " ^ note);
      Buffer.add_char buf '\n')
    t.notes;
  Buffer.contents buf

let save_csv ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (t.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc;
  path

let print fmt t =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length col) t.rows)
      t.columns
  in
  let pad width s = s ^ String.make (max 0 (width - String.length s)) ' ' in
  let line cells =
    let padded = List.map2 pad widths cells in
    Format.fprintf fmt "  %s@." (String.concat "  " padded)
  in
  Format.fprintf fmt "@.== %s: %s ==@." (String.uppercase_ascii t.id) t.title;
  line t.columns;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter
    (fun row ->
      (* Ragged rows are padded with empties so print never raises. *)
      let n = List.length t.columns in
      let row =
        if List.length row >= n then List.filteri (fun i _ -> i < n) row
        else row @ List.init (n - List.length row) (fun _ -> "")
      in
      line row)
    t.rows;
  List.iter (fun note -> Format.fprintf fmt "  note: %s@." note) t.notes
