type stabilization = {
  time_seconds : float;
  time_rtts : float;
  cost : float;
  avg_loss : float;
  steady_loss : float;
}

let stabilization ~loss_series ~t_event ~steady_loss ~rtt =
  let threshold = Float.max (1.5 *. steady_loss) 1e-4 in
  let samples =
    Engine.Timeseries.between loss_series ~lo:t_event ~hi:Float.infinity
  in
  match samples with
  | [] -> None
  | _ ->
    (* The loss rate must first exceed the threshold (there was a transient
       at all), then we find the first sample back at/below it. *)
    let rec find_spike = function
      | [] -> None
      | (_, v) :: rest -> if v > threshold then Some rest else find_spike rest
    in
    (match find_spike samples with
    | None -> None
    | Some after_spike ->
      let rec find_settle = function
        | [] -> None
        | (time, v) :: rest ->
          if v <= threshold then Some time else find_settle rest
      in
      let t_settle =
        match find_settle after_spike with
        | Some time -> time
        | None ->
          (* Never settled within the simulation: charge the whole tail. *)
          (match Engine.Timeseries.last loss_series with
          | Some (time, _) -> time
          | None -> t_event)
      in
      let time_seconds = t_settle -. t_event in
      let time_rtts = time_seconds /. rtt in
      let avg_loss =
        match
          Engine.Timeseries.mean_between loss_series ~lo:t_event ~hi:t_settle
        with
        | Some m -> m
        | None -> 0.
      in
      Some
        {
          time_seconds;
          time_rtts;
          cost = time_rtts *. avg_loss;
          avg_loss;
          steady_loss;
        })

let fair_convergence ~rate1 ~rate2 ~t_start ~delta =
  let l1 = Engine.Timeseries.between rate1 ~lo:t_start ~hi:Float.infinity in
  let l2 = Engine.Timeseries.between rate2 ~lo:t_start ~hi:Float.infinity in
  let fair_share_floor = (1. -. delta) /. 2. in
  let rec scan l1 l2 =
    match (l1, l2) with
    | (t1, x1) :: r1, (_, x2) :: r2 ->
      let total = x1 +. x2 in
      if total > 0. && Float.min x1 x2 /. total >= fair_share_floor then
        Some (t1 -. t_start)
      else scan r1 r2
    | _, [] | [], _ -> None
  in
  scan l1 l2

let f_k ~bytes_at_event ~bytes_after ~k ~rtt ~bandwidth =
  if k <= 0 || rtt <= 0. || bandwidth <= 0. then invalid_arg "Metrics.f_k";
  let dt = float_of_int k *. rtt in
  (bytes_after -. bytes_at_event) *. 8. /. (bandwidth *. dt)

let smoothness ?(floor = 1.) series =
  Engine.Timeseries.max_consecutive_ratio ~floor series

let mean_between series ~lo ~hi =
  match Engine.Timeseries.mean_between series ~lo ~hi with
  | Some m -> m
  | None -> 0.

let utilization ~bytes0 ~bytes1 ~dt ~bandwidth =
  if dt <= 0. || bandwidth <= 0. then invalid_arg "Metrics.utilization";
  (bytes1 -. bytes0) *. 8. /. (dt *. bandwidth)
