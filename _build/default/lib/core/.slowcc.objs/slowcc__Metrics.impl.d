lib/core/metrics.ml: Engine Float
