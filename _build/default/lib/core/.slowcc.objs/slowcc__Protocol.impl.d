lib/core/protocol.ml: Analysis Cc Hashtbl Netsim Printf
