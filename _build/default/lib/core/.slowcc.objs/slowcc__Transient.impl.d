lib/core/transient.ml: Cc Engine Float List Metrics Netsim Protocol Table
