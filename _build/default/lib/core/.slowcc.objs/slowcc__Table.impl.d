lib/core/table.ml: Buffer Filename Float Format List Printf String Sys
