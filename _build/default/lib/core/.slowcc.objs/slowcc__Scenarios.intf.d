lib/core/scenarios.mli: Cc Engine Metrics Netsim Protocol
