lib/core/protocol.mli: Cc Netsim
