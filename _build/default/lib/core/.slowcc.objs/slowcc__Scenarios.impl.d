lib/core/scenarios.ml: Cc Engine Float Fun List Metrics Netsim Protocol
