lib/core/metrics.mli: Engine
