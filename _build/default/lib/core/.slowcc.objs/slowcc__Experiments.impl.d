lib/core/experiments.ml: Analysis Cc Engine Float List Metrics Netsim Printf Protocol Scenarios Table Transient
