lib/core/transient.mli: Protocol Table
