(* Streaming video: why a SlowCC sender is worth having.

   Run with:  dune exec examples/streaming_video.exe

   A video server needs a *smooth* sending rate: every halving of the rate
   forces a visible quality switch.  This example subjects TCP, TCP(1/8)
   and TFRC(6) to the same periodic loss environment and compares the
   smoothness of their sending rates (Section 4.3 of the paper). *)

let run_one protocol =
  let r =
    Slowcc.Scenarios.loss_pattern ~seed:3 ~duration:60. ~protocol
      ~pattern:(Slowcc.Scenarios.Counts [ 100 ])
      ~bandwidth:10e6 ()
  in
  (* Coefficient of variation of the rate over the steady part. *)
  let stats = Engine.Stats.create () in
  List.iter
    (fun (t, v) -> if t > 10. then Engine.Stats.add stats v)
    (Engine.Timeseries.to_list r.Slowcc.Scenarios.rate_02s);
  ( r.Slowcc.Scenarios.avg_throughput *. 8. /. 1e6,
    r.Slowcc.Scenarios.smoothness,
    Engine.Stats.cov stats )

let () =
  Printf.printf
    "One flow, periodic loss (1 in 100 packets), 10 Mbps path, 60 s.\n\n";
  Printf.printf "%-10s %12s %12s %14s\n" "protocol" "Mbps" "smoothness"
    "rate CoV";
  List.iter
    (fun (name, protocol) ->
      let mbps, smooth, cov = run_one protocol in
      Printf.printf "%-10s %12.2f %12.2f %14.3f\n" name mbps smooth cov)
    [
      ("TCP", Slowcc.Protocol.tcp ~gamma:2.);
      ("TCP(1/8)", Slowcc.Protocol.tcp ~gamma:8.);
      ("TFRC(6)", Slowcc.Protocol.tfrc ~k:6 ());
    ];
  Printf.printf
    "\nsmoothness = worst ratio between consecutive 0.2 s rate bins\n\
     (1.0 is perfectly smooth); TFRC trades agility for steadiness,\n\
     which is exactly what a streaming codec wants.\n"
