(* Flash crowd: the safety case for self-clocking (Section 4.1).

   Run with:  dune exec examples/flash_crowd_response.exe

   A very slowly responsive TFRC(256) background faces a flash crowd of
   1000 short web transfers.  Without the conservative (self-clocking)
   option it keeps pushing packets into a collapsing link; with it, the
   background yields within a couple of RTTs, like TCP would. *)

let timeline name (r : Slowcc.Scenarios.flash_crowd_result) =
  Printf.printf "\n-- background: %s --\n" name;
  Printf.printf "%8s %12s %12s\n" "t(s)" "bg Mbps" "crowd Mbps";
  List.iter
    (fun t ->
      let mbps ts =
        Slowcc.Metrics.mean_between ts ~lo:t ~hi:(t +. 2.) *. 8. /. 1e6
      in
      Printf.printf "%8.0f %12.2f %12.2f\n" t
        (mbps r.Slowcc.Scenarios.bg_rate)
        (mbps r.Slowcc.Scenarios.crowd_rate))
    [ 20.; 23.; 25.; 27.; 29.; 31.; 35.; 40. ];
  Printf.printf "crowd: %d/%d transfers finished, mean completion %.2f s\n"
    r.Slowcc.Scenarios.crowd_completed r.Slowcc.Scenarios.crowd_started
    r.Slowcc.Scenarios.mean_completion

let () =
  Printf.printf
    "Flash crowd of 10-packet transfers at 200 flows/s during t = [25, 30) s\n\
     against 10 long-lived background flows on a 10 Mbps link.\n";
  List.iter
    (fun (name, protocol) ->
      timeline name
        (Slowcc.Scenarios.flash_crowd ~seed:4 ~duration:45. ~protocol
           ~bandwidth:10e6 ()))
    [
      ("TFRC(256), no self-clocking", Slowcc.Protocol.tfrc ~k:256 ());
      ( "TFRC(256) with self-clocking",
        Slowcc.Protocol.tfrc ~conservative:true ~k:256 () );
    ];
  Printf.printf
    "\nwith self-clocking the background vacates the link for the crowd\n\
     (faster completions), which is the paper's deployment-safety fix.\n"
