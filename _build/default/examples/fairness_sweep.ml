(* Long-term fairness under dynamic bandwidth (Section 4.2.1).

   Run with:  dune exec examples/fairness_sweep.exe

   Five TCP and five TFRC(6) flows compete under a square-wave CBR that
   removes two thirds of a 15 Mbps bottleneck half the time.  Statically
   the two protocols are TCP-compatible; dynamically, TCP collects more
   bandwidth at oscillation periods of a few seconds — the paper's core
   "bad news" result (Figure 7). *)

let () =
  Printf.printf
    "5 TCP vs 5 TFRC(6), 15 Mbps link, 3:1 square-wave available bandwidth\n\n";
  Printf.printf "%12s %10s %10s %12s\n" "period(s)" "TCP" "TFRC(6)" "link util";
  List.iter
    (fun period ->
      let r =
        Slowcc.Scenarios.square_wave ~seed:5
          ~measure:(Float.max 80. (6. *. period))
          ~flows:
            [ (Slowcc.Protocol.tcp ~gamma:2., 5); (Slowcc.Protocol.tfrc ~k:6 (), 5) ]
          ~bandwidth:15e6 ~cbr_fraction:(2. /. 3.) ~period ()
      in
      Printf.printf "%12.1f %10.2f %10.2f %12.2f\n" period
        (r.Slowcc.Scenarios.group_mean "TCP(1/2)")
        (r.Slowcc.Scenarios.group_mean "TFRC(6)")
        r.Slowcc.Scenarios.utilization)
    [ 0.4; 2.; 8.; 32. ];
  Printf.printf
    "\nthroughput normalized to the fair share (1.0 = equitable).\n\
     TCP pulls ahead at periods of a few seconds: slowly-responsive flows\n\
     are slow to reclaim bandwidth each time the CBR goes quiet.\n"
