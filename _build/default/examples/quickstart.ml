(* Quickstart: a TCP flow and a TFRC flow sharing a 10 Mbps RED dumbbell.

   Run with:  dune exec examples/quickstart.exe

   Demonstrates the three steps of the public API: build an environment,
   spawn protocol flows, run the clock and read the counters. *)

let () =
  (* 1. A 10 Mbps RED dumbbell with the paper's 50 ms RTT dimensioning. *)
  let env = Slowcc.Scenarios.make_env ~seed:42 ~bandwidth:10e6 () in

  (* 2. One standard TCP and one TFRC(6) flow, left to right. *)
  let tcp = Slowcc.Protocol.spawn (Slowcc.Protocol.tcp ~gamma:2.) env.Slowcc.Scenarios.db in
  let tfrc = Slowcc.Protocol.spawn (Slowcc.Protocol.tfrc ~k:6 ()) env.Slowcc.Scenarios.db in
  tcp.Cc.Flow.start ();
  tfrc.Cc.Flow.start ();

  (* 3. Sixty simulated seconds, then read the counters. *)
  let horizon = 60. in
  Engine.Sim.run ~until:horizon env.Slowcc.Scenarios.sim;

  let mbps (flow : Cc.Flow.t) =
    flow.Cc.Flow.bytes_delivered () *. 8. /. horizon /. 1e6
  in
  Printf.printf "after %.0f simulated seconds on a 10 Mbps bottleneck:\n" horizon;
  Printf.printf "  %-8s %.2f Mbps (srtt %.0f ms)\n" tcp.Cc.Flow.protocol
    (mbps tcp) (1000. *. tcp.Cc.Flow.srtt ());
  Printf.printf "  %-8s %.2f Mbps (srtt %.0f ms)\n" tfrc.Cc.Flow.protocol
    (mbps tfrc) (1000. *. tfrc.Cc.Flow.srtt ());
  let link = Netsim.Dumbbell.bottleneck env.Slowcc.Scenarios.db in
  Printf.printf "  bottleneck: %d arrivals, %d drops (%.2f%%)\n"
    (Netsim.Link.arrivals link) (Netsim.Link.drops link)
    (100. *. float_of_int (Netsim.Link.drops link)
    /. float_of_int (max 1 (Netsim.Link.arrivals link)));
  Printf.printf
    "the two TCP-compatible flows share the link roughly equally.\n"
