examples/flash_crowd_response.mli:
