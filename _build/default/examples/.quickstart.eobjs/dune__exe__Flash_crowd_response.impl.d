examples/flash_crowd_response.ml: List Printf Slowcc
