examples/quickstart.mli:
