examples/streaming_video.mli:
