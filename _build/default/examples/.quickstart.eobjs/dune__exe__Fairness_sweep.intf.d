examples/fairness_sweep.mli:
