examples/streaming_video.ml: Engine List Printf Slowcc
