examples/fairness_sweep.ml: Float List Printf Slowcc
