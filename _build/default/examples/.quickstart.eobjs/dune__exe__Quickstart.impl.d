examples/quickstart.ml: Cc Engine Netsim Printf Slowcc
