(* RAP: rate-based AIMD without self-clocking. *)

let fixture ?(seed = 3) ?(bandwidth = 4e6) ?(b = 0.5) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth)
  in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let rap =
    Cc.Rap.create ~sim ~src ~dst ~flow:flow_id (Cc.Rap.tcp_compatible_config ~b)
  in
  (sim, db, src, dst, flow_id, rap)

let test_rate_increases_without_loss () =
  let sim, _, _, _, _, rap = fixture ~bandwidth:50e6 () in
  (Cc.Rap.flow rap).Cc.Flow.start ();
  Engine.Sim.run ~until:5. sim;
  Alcotest.(check bool) "window grew" true (Cc.Rap.window rap > 10.)

let test_fills_link () =
  let sim, _, _, _, _, rap = fixture () in
  let flow = Cc.Rap.flow rap in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:40. sim;
  let mbps = flow.Cc.Flow.bytes_delivered () *. 8. /. 40. /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.2f of 4 Mbps" mbps)
    true (mbps > 2.4)

let test_decreases_on_loss () =
  let sim, _, _, _, _, rap = fixture () in
  (Cc.Rap.flow rap).Cc.Flow.start ();
  Engine.Sim.run ~until:60. sim;
  (* On a 4 Mbps RED bottleneck, RAP must have hit losses and reacted. *)
  Alcotest.(check bool) "saw loss events" true (Cc.Rap.loss_events rap > 3);
  (* And the window stays bounded near the BDP (25 packets). *)
  Alcotest.(check bool) "window bounded" true (Cc.Rap.window rap < 100.)

let test_no_self_clocking () =
  (* The paper's central observation: RAP keeps transmitting at its current
     rate even when ALL feedback stops; TCP in the same situation stalls. *)
  let sim, _, _, dst, flow_id, rap = fixture () in
  let flow = Cc.Rap.flow rap in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:10. sim;
  (* Kill the receiver: no more acks at all. *)
  Netsim.Node.detach dst ~flow:flow_id;
  let sent_at_cut = flow.Cc.Flow.pkts_sent () in
  Engine.Sim.run ~until:15. sim;
  let sent_after = flow.Cc.Flow.pkts_sent () - sent_at_cut in
  (* 5 seconds at the pre-cut rate (tens of pkts/RTT) means hundreds of
     packets blindly transmitted. *)
  Alcotest.(check bool)
    (Printf.sprintf "kept sending (%d pkts)" sent_after)
    true (sent_after > 200)

let test_at_most_one_decrease_per_rtt () =
  let sim, _, _, _, _, rap = fixture ~bandwidth:2e6 () in
  (Cc.Rap.flow rap).Cc.Flow.start ();
  Engine.Sim.run ~until:30. sim;
  (* 30 s / 50 ms = 600 RTTs is a hard upper bound on decreases. *)
  Alcotest.(check bool) "decreases bounded by RTT count" true
    (Cc.Rap.loss_events rap < 600)

let test_config_validation () =
  Alcotest.check_raises "bad b" (Invalid_argument "Rap.tcp_compatible_config")
    (fun () -> ignore (Cc.Rap.tcp_compatible_config ~b:0.))

let test_stop () =
  let sim, _, _, _, _, rap = fixture () in
  let flow = Cc.Rap.flow rap in
  flow.Cc.Flow.start ();
  Engine.Sim.at sim 5. flow.Cc.Flow.stop;
  Engine.Sim.run ~until:6. sim;
  let sent = flow.Cc.Flow.pkts_sent () in
  Engine.Sim.run ~until:10. sim;
  Alcotest.(check int) "silent after stop" sent (flow.Cc.Flow.pkts_sent ())

let suite =
  [
    Alcotest.test_case "additive increase" `Quick test_rate_increases_without_loss;
    Alcotest.test_case "fills the link" `Slow test_fills_link;
    Alcotest.test_case "multiplicative decrease on loss" `Slow
      test_decreases_on_loss;
    Alcotest.test_case "no self-clocking (keeps sending)" `Quick
      test_no_self_clocking;
    Alcotest.test_case "one decrease per RTT" `Slow
      test_at_most_one_decrease_per_rtt;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "stop" `Quick test_stop;
  ]
