(* SACK: scoreboard-driven loss recovery (simplified RFC 3517). *)

let spawn ?(sack = true) ?(cfg_of = Fun.id) sim db =
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let cfg =
    cfg_of
      {
        (Cc.Window_cc.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5)) with
        Cc.Window_cc.sack;
      }
  in
  Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg

let burst_loss_fixture ~sack ~burst =
  (* Drop [burst] consecutive packets once, early in the flow. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:3 in
  let make_queue () =
    let inner = Netsim.Droptail.make ~capacity:10000 in
    let count = ref 0 in
    {
      inner with
      Netsim.Queue_intf.enqueue =
        (fun pkt ->
          if Netsim.Packet.is_ack pkt then inner.Netsim.Queue_intf.enqueue pkt
          else begin
            incr count;
            if !count > 50 && !count <= 50 + burst then
              Netsim.Queue_intf.Dropped
            else inner.Netsim.Queue_intf.enqueue pkt
          end);
    }
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:20e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let tcp = spawn ~sack sim db in
  (sim, tcp)

let test_sack_blocks_generated () =
  (* Receiver-side check: holes produce SACK blocks on duplicate acks. *)
  let sim = Engine.Sim.create () in
  let node = Netsim.Node.create ~id:1 in
  let sender = Netsim.Node.create ~id:0 in
  let link =
    Netsim.Link.make ~sim ~bandwidth:1e9 ~delay:0.
      ~queue:(Netsim.Droptail.make ~capacity:1000)
  in
  Netsim.Link.connect link (Netsim.Node.receive sender);
  Netsim.Node.set_default_route node link;
  let sacks = ref [] in
  Netsim.Node.attach sender ~flow:1 (fun pkt ->
      match pkt.Netsim.Packet.payload with
      | Netsim.Packet.Ack { sack; _ } -> sacks := sack :: !sacks
      | _ -> ());
  ignore (Cc.Sink.attach ~sim ~node ~flow:1 ~peer:0 ());
  let send seq =
    Netsim.Node.receive node
      (Netsim.Packet.make ~seq ~flow:1 ~src:0 ~dst:1 ~sent_at:0. ())
  in
  (* Deliver 0, skip 1-2, deliver 3-4, skip 5, deliver 6. *)
  List.iter send [ 0; 3; 4; 6 ];
  Engine.Sim.run sim;
  match !sacks with
  | last :: _ ->
    Alcotest.(check (list (pair int int))) "blocks, newest-high first"
      [ (6, 7); (3, 5) ]
      last
  | [] -> Alcotest.fail "no acks observed"

let test_sack_recovers_burst_without_timeout () =
  let sim, tcp = burst_loss_fixture ~sack:true ~burst:15 in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  Engine.Sim.run ~until:5. sim;
  Alcotest.(check int) "no timeouts" 0 (Cc.Window_cc.timeouts tcp);
  Alcotest.(check bool) "made progress" true
    ((Cc.Window_cc.flow tcp).Cc.Flow.bytes_delivered () > 1e6)

let test_newreno_needs_timeout_on_same_burst () =
  (* The same burst without SACK must be visibly costlier: either a
     timeout or clearly less delivered data. *)
  let run sack =
    let sim, tcp = burst_loss_fixture ~sack ~burst:15 in
    (Cc.Window_cc.flow tcp).Cc.Flow.start ();
    Engine.Sim.run ~until:5. sim;
    (Cc.Window_cc.timeouts tcp, (Cc.Window_cc.flow tcp).Cc.Flow.bytes_delivered ())
  in
  let to_sack, bytes_sack = run true in
  let to_plain, bytes_plain = run false in
  Alcotest.(check bool)
    (Printf.sprintf "sack (%d timeouts, %.0f B) beats newreno (%d, %.0f B)"
       to_sack bytes_sack to_plain bytes_plain)
    true
    (to_plain > to_sack || bytes_sack > 1.2 *. bytes_plain)

let test_sack_steady_state_unchanged () =
  (* In ordinary single-loss operation SACK and NewReno behave alike. *)
  let run sack =
    let sim = Engine.Sim.create () in
    let rng = Engine.Rng.create ~seed:4 in
    let db =
      Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth:8e6)
    in
    let tcp = spawn ~sack sim db in
    (Cc.Window_cc.flow tcp).Cc.Flow.start ();
    Engine.Sim.run ~until:30. sim;
    (Cc.Window_cc.flow tcp).Cc.Flow.bytes_delivered ()
  in
  let with_sack = run true and plain = run false in
  Alcotest.(check bool)
    (Printf.sprintf "within 15%% (%.0f vs %.0f)" with_sack plain)
    true
    (with_sack > 0.85 *. plain && with_sack < 1.15 *. plain)

let test_sack_between_appendix_bounds () =
  (* Appendix A: "TCPs with Selective Acknowledgements ... should fall
     somewhere between the two lines."  Check at p = 0.1. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:6 in
  let make_queue () =
    Netsim.Loss_pattern.bernoulli ~rng:(Engine.Rng.split rng) ~p:0.1
      (Netsim.Droptail.make ~capacity:100000)
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:50e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let tcp = spawn ~sack:true sim db in
  let flow = Cc.Window_cc.flow tcp in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:120. sim;
  let pkts_per_rtt = flow.Cc.Flow.bytes_delivered () /. 1000. /. 2400. in
  let lower = Analysis.Response_function.reno_padhye ~p:0.1 () in
  let upper = Analysis.Response_function.aimd_with_timeouts ~p:0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.2f in [%.2f x 0.8, %.2f x 4]" pkts_per_rtt
       lower upper)
    true
    (* SACK should be at or above plain Reno; generous band. *)
    (pkts_per_rtt > 0.8 *. lower && pkts_per_rtt < 4. *. upper)

let suite =
  [
    Alcotest.test_case "sack blocks generated" `Quick test_sack_blocks_generated;
    Alcotest.test_case "burst recovery without timeout" `Quick
      test_sack_recovers_burst_without_timeout;
    Alcotest.test_case "beats newreno on bursts" `Quick
      test_newreno_needs_timeout_on_same_burst;
    Alcotest.test_case "steady state unchanged" `Slow
      test_sack_steady_state_unchanged;
    Alcotest.test_case "within appendix bounds" `Slow
      test_sack_between_appendix_bounds;
  ]
