(* Packet construction and classification. *)

let test_unique_uids () =
  let a = Netsim.Packet.make ~flow:0 ~src:0 ~dst:1 ~sent_at:0. () in
  let b = Netsim.Packet.make ~flow:0 ~src:0 ~dst:1 ~sent_at:0. () in
  Alcotest.(check bool) "uids differ" true (a.Netsim.Packet.uid <> b.Netsim.Packet.uid)

let test_defaults () =
  let p = Netsim.Packet.make ~flow:3 ~src:1 ~dst:2 ~sent_at:1.5 () in
  Alcotest.(check int) "size" 1000 p.Netsim.Packet.size;
  Alcotest.(check int) "seq" 0 p.Netsim.Packet.seq;
  Alcotest.(check bool) "payload plain" true
    (p.Netsim.Packet.payload = Netsim.Packet.Plain);
  Alcotest.(check bool) "no ecn" false p.Netsim.Packet.ecn

let test_is_ack () =
  let mk payload = Netsim.Packet.make ~flow:0 ~src:0 ~dst:1 ~sent_at:0. ~payload () in
  Alcotest.(check bool) "plain" false (Netsim.Packet.is_ack (mk Netsim.Packet.Plain));
  Alcotest.(check bool) "ack" true
    (Netsim.Packet.is_ack (mk (Netsim.Packet.Ack { cum_seq = 1; sack = [] })));
  Alcotest.(check bool) "rap ack" true
    (Netsim.Packet.is_ack (mk (Netsim.Packet.Rap_ack { cum_seq = 1; recv_rate = 0. })));
  Alcotest.(check bool) "tfrc data" false
    (Netsim.Packet.is_ack
       (mk (Netsim.Packet.Tfrc_data { timestamp = 0.; rtt_estimate = 0. })));
  Alcotest.(check bool) "tfrc feedback" true
    (Netsim.Packet.is_ack
       (mk
          (Netsim.Packet.Tfrc_fb
             {
               Netsim.Packet.loss_event_rate = 0.;
               recv_rate = 0.;
               timestamp_echo = 0.;
               delay_echo = 0.;
               new_loss = false;
             })))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_pp () =
  let p = Netsim.Packet.make ~flow:3 ~src:1 ~dst:2 ~sent_at:0. () in
  let s = Format.asprintf "%a" Netsim.Packet.pp p in
  Alcotest.(check bool) "mentions flow" true (contains_sub s "flow=3")

let suite =
  [
    Alcotest.test_case "unique uids" `Quick test_unique_uids;
    Alcotest.test_case "defaults" `Quick test_defaults;
    Alcotest.test_case "is_ack" `Quick test_is_ack;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
