(* CBR source: rate accuracy, on/off, rate changes. *)

let fixture ?(rate = 1e6) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth:10e6)
  in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let cbr = Cc.Cbr.create ~sim ~src ~dst ~flow:flow_id ~rate ~pkt_size:1000 in
  (sim, cbr)

let test_rate_accuracy () =
  let sim, cbr = fixture ~rate:1e6 () in
  let flow = Cc.Cbr.flow cbr in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:10. sim;
  let mbps = flow.Cc.Flow.bytes_sent () *. 8. /. 10. /. 1e6 in
  Alcotest.(check bool) "1 Mbps" true (Float.abs (mbps -. 1.) < 0.02)

let test_delivery () =
  let sim, cbr = fixture () in
  let flow = Cc.Cbr.flow cbr in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:5. sim;
  let sent = flow.Cc.Flow.bytes_sent () in
  let delivered = flow.Cc.Flow.bytes_delivered () in
  (* Uncongested path: everything but the in-flight tail arrives. *)
  Alcotest.(check bool) "delivered" true (delivered > 0.95 *. sent)

let test_on_off () =
  let sim, cbr = fixture () in
  let flow = Cc.Cbr.flow cbr in
  flow.Cc.Flow.start ();
  Engine.Sim.at sim 2. flow.Cc.Flow.stop;
  Engine.Sim.run ~until:4. sim;
  let at_stop = flow.Cc.Flow.pkts_sent () in
  Engine.Sim.at sim 4. flow.Cc.Flow.start;
  Engine.Sim.run ~until:6. sim;
  Alcotest.(check bool) "resumed" true (flow.Cc.Flow.pkts_sent () > at_stop);
  Alcotest.(check bool) "was silent while off" true
    (at_stop <= int_of_float (2. /. 0.008) + 1)

let test_set_rate () =
  let sim, cbr = fixture ~rate:1e6 () in
  let flow = Cc.Cbr.flow cbr in
  flow.Cc.Flow.start ();
  Engine.Sim.at sim 5. (fun () -> Cc.Cbr.set_rate cbr 2e6);
  Engine.Sim.run ~until:10. sim;
  let mbps = flow.Cc.Flow.bytes_sent () *. 8. /. 10. /. 1e6 in
  (* 5 s at 1 Mbps + 5 s at 2 Mbps = 1.5 Mbps average. *)
  Alcotest.(check bool)
    (Printf.sprintf "avg %.2f" mbps)
    true
    (Float.abs (mbps -. 1.5) < 0.05)

let test_double_start_harmless () =
  let sim, cbr = fixture () in
  let flow = Cc.Cbr.flow cbr in
  flow.Cc.Flow.start ();
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:1. sim;
  let expected = int_of_float (1. /. 0.008) in
  Alcotest.(check bool) "not doubled" true
    (flow.Cc.Flow.pkts_sent () <= expected + 2)

let test_validation () =
  let sim = Engine.Sim.create () in
  let node = Netsim.Node.create ~id:0 in
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Cbr.create: rate must be positive") (fun () ->
      ignore (Cc.Cbr.create ~sim ~src:node ~dst:node ~flow:0 ~rate:0. ~pkt_size:1000))

let suite =
  [
    Alcotest.test_case "rate accuracy" `Quick test_rate_accuracy;
    Alcotest.test_case "delivery" `Quick test_delivery;
    Alcotest.test_case "on/off" `Quick test_on_off;
    Alcotest.test_case "set_rate" `Quick test_set_rate;
    Alcotest.test_case "double start harmless" `Quick test_double_start_harmless;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
