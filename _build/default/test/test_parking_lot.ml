(* Multi-bottleneck parking-lot topology (extension). *)

let fixture ?(hops = 3) ?(bandwidth = 6e6) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:17 in
  let pl =
    Netsim.Parking_lot.create ~sim ~rng
      (Netsim.Parking_lot.default_config ~hops ~bandwidth)
  in
  (sim, pl)

let tcp_flow sim pl ~from_site ~to_site =
  let src = Netsim.Parking_lot.add_host pl ~site:from_site in
  let dst = Netsim.Parking_lot.add_host pl ~site:to_site in
  let flow_id = Netsim.Parking_lot.fresh_flow pl in
  let cfg =
    Cc.Window_cc.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5)
  in
  Cc.Window_cc.flow (Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg)

let test_end_to_end_path () =
  let sim, pl = fixture () in
  let flow = tcp_flow sim pl ~from_site:0 ~to_site:3 in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:20. sim;
  let mbps = flow.Cc.Flow.bytes_delivered () *. 8. /. 20. /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "long path fills chain (%.2f Mbps)" mbps)
    true (mbps > 3.5);
  (* Data crossed every forward bottleneck. *)
  for i = 0 to 2 do
    Alcotest.(check bool) "hop carried data" true
      (Netsim.Link.departures (Netsim.Parking_lot.bottleneck pl i) > 1000)
  done

let test_reverse_path () =
  let sim, pl = fixture () in
  let flow = tcp_flow sim pl ~from_site:3 ~to_site:0 in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:10. sim;
  Alcotest.(check bool) "reverse direction works" true
    (flow.Cc.Flow.bytes_delivered () > 100000.)

let test_local_hop () =
  let sim, pl = fixture () in
  let flow = tcp_flow sim pl ~from_site:1 ~to_site:2 in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:10. sim;
  Alcotest.(check bool) "single-hop flow works" true
    (flow.Cc.Flow.bytes_delivered () > 100000.);
  (* Only the middle bottleneck carried the data. *)
  Alcotest.(check bool) "hop 0 idle" true
    (Netsim.Link.departures (Netsim.Parking_lot.bottleneck pl 0) < 10)

let test_long_flow_disadvantaged () =
  (* The classic parking-lot result: a flow crossing all hops gets less
     than single-hop cross traffic on the shared links. *)
  let sim, pl = fixture () in
  let long = tcp_flow sim pl ~from_site:0 ~to_site:3 in
  let crossers =
    List.init 3 (fun i -> tcp_flow sim pl ~from_site:i ~to_site:(i + 1))
  in
  long.Cc.Flow.start ();
  List.iter (fun (f : Cc.Flow.t) -> f.Cc.Flow.start ()) crossers;
  Engine.Sim.run ~until:60. sim;
  let thr (f : Cc.Flow.t) = f.Cc.Flow.bytes_delivered () in
  let cross_avg =
    List.fold_left (fun acc f -> acc +. thr f) 0. crossers /. 3.
  in
  Alcotest.(check bool)
    (Printf.sprintf "long %.0f < crossers %.0f" (thr long) cross_avg)
    true
    (thr long < cross_avg);
  Alcotest.(check bool) "long flow not starved" true
    (thr long > 0.05 *. cross_avg)

let test_validation () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  Alcotest.check_raises "bad hops"
    (Invalid_argument "Parking_lot.create: hops >= 1") (fun () ->
      ignore
        (Netsim.Parking_lot.create ~sim ~rng
           (Netsim.Parking_lot.default_config ~hops:0 ~bandwidth:1e6)));
  let _, pl = fixture () in
  Alcotest.check_raises "bad site"
    (Invalid_argument "Parking_lot.add_host: site out of range") (fun () ->
      ignore (Netsim.Parking_lot.add_host pl ~site:9))

let suite =
  [
    Alcotest.test_case "end-to-end path" `Quick test_end_to_end_path;
    Alcotest.test_case "reverse path" `Quick test_reverse_path;
    Alcotest.test_case "local hop" `Quick test_local_hop;
    Alcotest.test_case "long flow disadvantaged" `Slow
      test_long_flow_disadvantaged;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
