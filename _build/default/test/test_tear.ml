(* TEAR: receiver-emulated TCP window, rate-driven sender. *)

let fixture ?(seed = 13) ?(bandwidth = 4e6) ?(rounds = 8) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth)
  in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let tear =
    Cc.Tear.create ~sim ~src ~dst ~flow:flow_id
      { Cc.Tear.default_config with Cc.Tear.smoothing_rounds = rounds }
  in
  (sim, db, tear)

let test_ramps_up () =
  let sim, _, tear = fixture ~bandwidth:20e6 () in
  (Cc.Tear.flow tear).Cc.Flow.start ();
  Engine.Sim.run ~until:10. sim;
  Alcotest.(check bool) "window grew" true (Cc.Tear.emulated_cwnd tear > 5.);
  Alcotest.(check bool) "rate grew" true (Cc.Tear.rate_pps tear > 20.)

let test_fills_link () =
  let sim, _, tear = fixture () in
  let flow = Cc.Tear.flow tear in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:40. sim;
  let mbps = flow.Cc.Flow.bytes_delivered () *. 8. /. 40. /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.2f of 4 Mbps" mbps)
    true (mbps > 2.0)

let test_reacts_to_congestion () =
  (* The emulated window must stay bounded on a congested link (losses
     halve it), not grow without limit. *)
  let sim, _, tear = fixture ~bandwidth:2e6 () in
  (Cc.Tear.flow tear).Cc.Flow.start ();
  Engine.Sim.run ~until:60. sim;
  (* BDP at 2 Mbps is ~12.5 packets; queue adds 2.5x. *)
  Alcotest.(check bool) "window bounded" true (Cc.Tear.emulated_cwnd tear < 120.)

let test_smoother_than_tcp () =
  (* Under identical periodic loss, TEAR's sending rate must be smoother
     than TCP's (that is its whole point). *)
  let run protocol =
    let r =
      Slowcc.Scenarios.loss_pattern ~seed:5 ~duration:50. ~protocol
        ~pattern:(Slowcc.Scenarios.Counts [ 100 ])
        ~bandwidth:10e6 ()
    in
    r.Slowcc.Scenarios.smoothness
  in
  let s_tear = run (Slowcc.Protocol.tear ~rounds:8) in
  let s_tcp = run (Slowcc.Protocol.tcp ~gamma:2.) in
  Alcotest.(check bool)
    (Printf.sprintf "tear %.2f vs tcp %.2f" s_tear s_tcp)
    true (s_tear < s_tcp)

let test_roughly_tcp_compatible () =
  (* TEAR vs TCP on one bottleneck: long-term shares within a factor ~2.5
     (TEAR is an emulation, not an exact clone). *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:11 in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth:8e6)
  in
  let tear = Slowcc.Protocol.spawn (Slowcc.Protocol.tear ~rounds:8) db in
  let tcp = Slowcc.Protocol.spawn (Slowcc.Protocol.tcp ~gamma:2.) db in
  tear.Cc.Flow.start ();
  tcp.Cc.Flow.start ();
  Engine.Sim.run ~until:120. sim;
  let r =
    tear.Cc.Flow.bytes_delivered () /. Float.max 1. (tcp.Cc.Flow.bytes_delivered ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "share ratio %.2f" r)
    true
    (r > 0.4 && r < 2.5)

let test_stop () =
  let sim, _, tear = fixture () in
  let flow = Cc.Tear.flow tear in
  flow.Cc.Flow.start ();
  Engine.Sim.at sim 5. flow.Cc.Flow.stop;
  Engine.Sim.run ~until:6. sim;
  let sent = flow.Cc.Flow.pkts_sent () in
  Engine.Sim.run ~until:10. sim;
  Alcotest.(check int) "silent after stop" sent (flow.Cc.Flow.pkts_sent ())

let test_validation () =
  let sim = Engine.Sim.create () in
  let node = Netsim.Node.create ~id:0 in
  Alcotest.check_raises "bad rounds"
    (Invalid_argument "Tear.create: smoothing_rounds") (fun () ->
      ignore
        (Cc.Tear.create ~sim ~src:node ~dst:node ~flow:0
           { Cc.Tear.default_config with Cc.Tear.smoothing_rounds = 0 }))

let suite =
  [
    Alcotest.test_case "ramps up" `Quick test_ramps_up;
    Alcotest.test_case "fills the link" `Slow test_fills_link;
    Alcotest.test_case "reacts to congestion" `Slow test_reacts_to_congestion;
    Alcotest.test_case "smoother than tcp" `Slow test_smoother_than_tcp;
    Alcotest.test_case "roughly tcp-compatible" `Slow test_roughly_tcp_compatible;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
