(* Protocol variants: Tahoe, delayed acks, ECN. *)

let db_fixture ?(seed = 5) ?(bandwidth = 8e6) ?(queue = Netsim.Dumbbell.Red) ()
    =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let config =
    { (Netsim.Dumbbell.default_config ~bandwidth) with Netsim.Dumbbell.queue }
  in
  (sim, Netsim.Dumbbell.create ~sim ~rng config)

let spawn_wcc ?(cfg_of = Fun.id) sim db =
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let cfg =
    cfg_of
      (Cc.Window_cc.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5))
  in
  Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg

(* --- Tahoe --- *)

let single_drop_fixture variant =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:2 in
  let make_queue () =
    Netsim.Loss_pattern.by_count ~pattern:[ 40; 1000000 ]
      (Netsim.Droptail.make ~capacity:10000)
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:20e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let tcp =
    spawn_wcc ~cfg_of:(fun c -> { c with Cc.Window_cc.variant }) sim db
  in
  (sim, tcp)

let min_cwnd_after_first_frtx sim tcp ~until =
  let min_seen = ref infinity in
  Engine.Sim.every sim ~interval:0.005 ~stop:until (fun () ->
      if Cc.Window_cc.fast_retransmits tcp >= 1 then
        min_seen := Float.min !min_seen (Cc.Window_cc.cwnd tcp));
  Engine.Sim.run ~until sim;
  !min_seen

let test_tahoe_slow_starts_after_loss () =
  let sim, tcp = single_drop_fixture Cc.Window_cc.Tahoe in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  (* The 40th packet is dropped early in slow-start; Tahoe must rebuild
     from one packet where Reno would sit at ssthresh. *)
  let min_cwnd = min_cwnd_after_first_frtx sim tcp ~until:0.8 in
  Alcotest.(check bool) "fast rtx fired" true
    (Cc.Window_cc.fast_retransmits tcp >= 1);
  Alcotest.(check (float 1e-9)) "collapsed to one packet" 1. min_cwnd;
  let sim_r, tcp_r = single_drop_fixture Cc.Window_cc.Reno in
  (Cc.Window_cc.flow tcp_r).Cc.Flow.start ();
  let min_cwnd_reno = min_cwnd_after_first_frtx sim_r tcp_r ~until:0.8 in
  Alcotest.(check bool)
    (Printf.sprintf "reno floor %.1f stays above 1" min_cwnd_reno)
    true (min_cwnd_reno > 2.)

let test_tahoe_vs_reno_recovery () =
  let run variant =
    let sim, tcp = single_drop_fixture variant in
    let flow = Cc.Window_cc.flow tcp in
    flow.Cc.Flow.start ();
    Engine.Sim.run ~until:5. sim;
    flow.Cc.Flow.bytes_delivered ()
  in
  let reno = run Cc.Window_cc.Reno and tahoe = run Cc.Window_cc.Tahoe in
  (* Reno recovers a single loss without collapsing: at least as fast. *)
  Alcotest.(check bool)
    (Printf.sprintf "reno %.0f >= tahoe %.0f" reno tahoe)
    true
    (reno >= tahoe *. 0.95)

(* --- delayed acks --- *)

let test_delack_halves_ack_count () =
  let count_acks delayed_acks =
    let sim, db = db_fixture () in
    let tcp =
      spawn_wcc
        ~cfg_of:(fun c -> { c with Cc.Window_cc.delayed_acks })
        sim db
    in
    (Cc.Window_cc.flow tcp).Cc.Flow.start ();
    Engine.Sim.run ~until:20. sim;
    (* Count ack arrivals on the reverse bottleneck. *)
    let rev = Netsim.Dumbbell.bottleneck_rev db in
    ( Netsim.Link.departures rev,
      (Cc.Window_cc.flow tcp).Cc.Flow.bytes_delivered () )
  in
  let acks_plain, bytes_plain = count_acks false in
  let acks_delack, bytes_delack = count_acks true in
  let per_kb n bytes = float_of_int n /. (bytes /. 1000.) in
  Alcotest.(check bool)
    (Printf.sprintf "acks/pkt %.2f vs %.2f" (per_kb acks_plain bytes_plain)
       (per_kb acks_delack bytes_delack))
    true
    (per_kb acks_delack bytes_delack < 0.7 *. per_kb acks_plain bytes_plain)

let test_delack_still_fills_link () =
  let sim, db = db_fixture () in
  let tcp =
    spawn_wcc ~cfg_of:(fun c -> { c with Cc.Window_cc.delayed_acks = true }) sim db
  in
  let flow = Cc.Window_cc.flow tcp in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:30. sim;
  let mbps = flow.Cc.Flow.bytes_delivered () *. 8. /. 30. /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.2f" mbps)
    true (mbps > 4.)

(* --- ECN --- *)

let test_tcp_reduces_on_ecn_without_loss () =
  let sim, db = db_fixture ~queue:Netsim.Dumbbell.Red_ecn ~bandwidth:4e6 () in
  let tcp = spawn_wcc sim db in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  (* Skip the slow-start overshoot (marking cannot prevent a buffer
     overflow burst); steady state must be purely mark-driven. *)
  Engine.Sim.run ~until:10. sim;
  let link = Netsim.Dumbbell.bottleneck db in
  let drops10 = Netsim.Link.drops link in
  let rtx10 = Cc.Window_cc.retransmitted_pkts tcp in
  Engine.Sim.run ~until:40. sim;
  Alcotest.(check int) "no steady-state drops" drops10 (Netsim.Link.drops link);
  Alcotest.(check int) "no steady-state retransmissions" rtx10
    (Cc.Window_cc.retransmitted_pkts tcp);
  Alcotest.(check bool) "window bounded" true (Cc.Window_cc.cwnd tcp < 120.);
  let mbps =
    (Cc.Window_cc.flow tcp).Cc.Flow.bytes_delivered () *. 8. /. 40. /. 1e6
  in
  Alcotest.(check bool) "still fills link" true (mbps > 2.8)

let test_tfrc_reacts_to_ecn_marks () =
  let sim, db = db_fixture ~queue:Netsim.Dumbbell.Red_ecn ~bandwidth:4e6 () in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let tfrc =
    Cc.Tfrc.create ~sim ~src ~dst ~flow:flow_id (Cc.Tfrc.default_config ~k:6)
  in
  (Cc.Tfrc.flow tfrc).Cc.Flow.start ();
  Engine.Sim.run ~until:40. sim;
  (* Marks, not drops, must still produce a positive loss-event estimate
     and a bounded rate. *)
  Alcotest.(check bool) "loss event rate from marks" true
    (Cc.Tfrc.loss_event_rate tfrc > 0.);
  let mbps =
    (Cc.Tfrc.flow tfrc).Cc.Flow.bytes_delivered () *. 8. /. 40. /. 1e6
  in
  Alcotest.(check bool)
    (Printf.sprintf "rate bounded near link (%.2f)" mbps)
    true
    (mbps > 2. && mbps < 4.2)

(* --- one-per-interval dropper --- *)

let test_one_per_interval () =
  let sim = Engine.Sim.create () in
  let q =
    Netsim.Loss_pattern.one_per_interval ~sim ~interval:1. ~start:2.
      (Netsim.Droptail.make ~capacity:1000)
  in
  let dropped = ref [] in
  (* Offer a packet every 0.2 s for 5 s. *)
  Engine.Sim.every sim ~interval:0.2 ~stop:4.99 (fun () ->
      let pkt = Netsim.Packet.make ~flow:0 ~src:0 ~dst:1 ~sent_at:0. () in
      match q.Netsim.Queue_intf.enqueue pkt with
      | Netsim.Queue_intf.Dropped ->
        dropped := Engine.Sim.now sim :: !dropped
      | _ -> ignore (q.Netsim.Queue_intf.dequeue ()));
  Engine.Sim.run sim;
  let drops = List.rev !dropped in
  (* One drop per 1s window after t=2: windows [2,3), [3,4), [4,5). *)
  Alcotest.(check int) "three drops" 3 (List.length drops);
  List.iter
    (fun t -> Alcotest.(check bool) "after start" true (t >= 2.))
    drops

let suite =
  [
    Alcotest.test_case "tahoe slow-starts after loss" `Quick
      test_tahoe_slow_starts_after_loss;
    Alcotest.test_case "tahoe vs reno recovery" `Quick
      test_tahoe_vs_reno_recovery;
    Alcotest.test_case "delack halves ack count" `Slow
      test_delack_halves_ack_count;
    Alcotest.test_case "delack still fills link" `Slow
      test_delack_still_fills_link;
    Alcotest.test_case "tcp reduces on ecn" `Slow
      test_tcp_reduces_on_ecn_without_loss;
    Alcotest.test_case "tfrc reacts to ecn marks" `Slow
      test_tfrc_reacts_to_ecn_marks;
    Alcotest.test_case "one-per-interval dropper" `Quick test_one_per_interval;
  ]
