(* Analytical models: response functions, convergence, f(k), calibration. *)

let test_pure_aimd_tcp () =
  (* sqrt(1.5/p) at p = 0.01 is 12.247. *)
  Alcotest.(check (float 1e-3)) "pure aimd" 12.247
    (Analysis.Response_function.pure_aimd ~p:0.01 ())

let test_aimd_with_timeouts_half () =
  (* Paper: p = 1/2 -> 2 packets every 3 RTTs. *)
  Alcotest.(check (float 1e-9)) "p=1/2" (2. /. 3.)
    (Analysis.Response_function.aimd_with_timeouts ~p:0.5)

let test_aimd_with_timeouts_three_quarters () =
  (* p = 3/4 -> n = 3: 4 packets every 15 RTTs. *)
  Alcotest.(check (float 1e-9)) "p=3/4" (4. /. 15.)
    (Analysis.Response_function.aimd_with_timeouts ~p:0.75)

let test_reno_below_pure_aimd () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "reno is the lower bound" true
        (Analysis.Response_function.reno_padhye ~p ()
        < Analysis.Response_function.pure_aimd ~p ()))
    [ 0.01; 0.05; 0.1; 0.3 ]

let test_bounds_ordering_high_loss () =
  (* At high loss, AIMD-with-timeouts upper-bounds Reno. *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "upper bound" true
        (Analysis.Response_function.aimd_with_timeouts ~p
        > Analysis.Response_function.reno_padhye ~p ()))
    [ 0.5; 0.6; 0.7; 0.8 ]

let test_compatible_a_of_b () =
  Alcotest.(check (float 1e-9)) "b=1/2" 1.
    (Analysis.Response_function.compatible_a_of_b 0.5);
  Alcotest.(check bool) "slower is gentler" true
    (Analysis.Response_function.compatible_a_of_b 0.125 < 1.)

let test_acks_to_fairness_formula () =
  let b = 0.5 and p = 0.1 and delta = 0.1 in
  let expected = log delta /. log (1. -. (b *. p)) in
  Alcotest.(check (float 1e-9)) "formula" expected
    (Analysis.Aimd_convergence.acks_to_fairness ~b ~p ~delta)

let test_acks_monotone_in_b () =
  let acks b = Analysis.Aimd_convergence.acks_to_fairness ~b ~p:0.1 ~delta:0.1 in
  Alcotest.(check bool) "smaller b converges slower" true
    (acks 0.01 > acks 0.1 && acks 0.1 > acks 0.5)

let test_recurrence_converges () =
  match
    Analysis.Aimd_convergence.simulate_recurrence ~a:1. ~b:0.5 ~p:0.1
      ~delta:0.1 ~x1:100. ~x2:1. ~max_acks:100000
  with
  | Some n ->
    let formula =
      Analysis.Aimd_convergence.acks_to_fairness ~b:0.5 ~p:0.1 ~delta:0.1
    in
    (* The recurrence includes window dynamics, so only the order of
       magnitude must agree. *)
    Alcotest.(check bool)
      (Printf.sprintf "recurrence %d vs formula %.0f" n formula)
      true
      (float_of_int n > formula /. 10. && float_of_int n < formula *. 10.)
  | None -> Alcotest.fail "did not converge"

let test_recurrence_slow_b_slower () =
  let run b =
    Analysis.Aimd_convergence.simulate_recurrence ~a:1. ~b ~p:0.1 ~delta:0.1
      ~x1:100. ~x2:1. ~max_acks:10000000
  in
  match (run 0.5, run 0.05) with
  | Some fast, Some slow -> Alcotest.(check bool) "ordering" true (slow > fast)
  | _ -> Alcotest.fail "convergence expected"

let test_fk_model () =
  (* f(k) = 1/2 + k a/(4 R lambda), capped by the ramp end. *)
  let f = Analysis.Fk_model.f_k ~a:1. ~k:20 ~rtt:0.05 ~lambda:1000. in
  Alcotest.(check (float 1e-9)) "ramp regime" (0.5 +. (20. /. 200.)) f;
  let f_long = Analysis.Fk_model.f_k ~a:1. ~k:100000 ~rtt:0.05 ~lambda:1000. in
  Alcotest.(check bool) "approaches 1" true (f_long > 0.97 && f_long <= 1.)

let test_fk_monotone_in_a () =
  let f a = Analysis.Fk_model.f_k ~a ~k:50 ~rtt:0.05 ~lambda:500. in
  Alcotest.(check bool) "faster increase fills faster" true (f 2. > f 0.1)

let test_calibration_matches_tcp () =
  let a, b = Analysis.Binomial_calibration.sqrt_params ~gamma:2. () in
  let w = Analysis.Binomial_calibration.average_window ~k:0.5 ~l:0.5 ~a ~b ~p:0.01 in
  Alcotest.(check bool) "matches tcp window at p_ref" true
    (Float.abs (w -. sqrt 150.) /. sqrt 150. < 0.02)

let test_calibration_slower_gamma_smaller_a () =
  let a2, _ = Analysis.Binomial_calibration.sqrt_params ~gamma:2. () in
  let a64, _ = Analysis.Binomial_calibration.sqrt_params ~gamma:64. () in
  Alcotest.(check bool) "slower decrease needs gentler increase" true
    (a64 < a2)

let test_iiad_params () =
  let a, b = Analysis.Binomial_calibration.iiad_params ~gamma:2. () in
  let w = Analysis.Binomial_calibration.average_window ~k:1. ~l:0. ~a ~b ~p:0.01 in
  Alcotest.(check bool) "iiad calibrated" true
    (Float.abs (w -. sqrt 150.) /. sqrt 150. < 0.02)

let prop_average_window_monotone_in_p =
  QCheck2.Test.make ~name:"binomial average window decreases with p" ~count:20
    QCheck2.Gen.(pair (float_range 0.002 0.02) (float_range 1.5 4.))
    (fun (p, ratio) ->
      let a, b = Analysis.Binomial_calibration.sqrt_params ~gamma:2. () in
      let w1 = Analysis.Binomial_calibration.average_window ~k:0.5 ~l:0.5 ~a ~b ~p in
      let w2 =
        Analysis.Binomial_calibration.average_window ~k:0.5 ~l:0.5 ~a ~b
          ~p:(Float.min 0.9 (p *. ratio))
      in
      w2 <= w1 +. 1e-6)

let suite =
  [
    Alcotest.test_case "pure aimd closed form" `Quick test_pure_aimd_tcp;
    Alcotest.test_case "timeouts model p=1/2" `Quick test_aimd_with_timeouts_half;
    Alcotest.test_case "timeouts model p=3/4" `Quick
      test_aimd_with_timeouts_three_quarters;
    Alcotest.test_case "reno below pure aimd" `Quick test_reno_below_pure_aimd;
    Alcotest.test_case "bounds ordering at high loss" `Quick
      test_bounds_ordering_high_loss;
    Alcotest.test_case "compatible a(b)" `Quick test_compatible_a_of_b;
    Alcotest.test_case "acks formula" `Quick test_acks_to_fairness_formula;
    Alcotest.test_case "acks monotone in b" `Quick test_acks_monotone_in_b;
    Alcotest.test_case "recurrence converges" `Quick test_recurrence_converges;
    Alcotest.test_case "recurrence slower for small b" `Quick
      test_recurrence_slow_b_slower;
    Alcotest.test_case "fk model" `Quick test_fk_model;
    Alcotest.test_case "fk monotone in a" `Quick test_fk_monotone_in_a;
    Alcotest.test_case "sqrt calibration" `Quick test_calibration_matches_tcp;
    Alcotest.test_case "calibration ordering" `Quick
      test_calibration_slower_gamma_smaller_a;
    Alcotest.test_case "iiad calibration" `Quick test_iiad_params;
    QCheck_alcotest.to_alcotest prop_average_window_monotone_in_p;
  ]
