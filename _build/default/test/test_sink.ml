(* Cumulative-ack sink behavior. *)

let fixture () =
  let sim = Engine.Sim.create () in
  let node = Netsim.Node.create ~id:1 in
  (* Capture acks the sink sends back by registering the peer flow handler
     on the same node: inject routes by dst, so attach a fake route. *)
  let acks = ref [] in
  let sender = Netsim.Node.create ~id:0 in
  let link =
    Netsim.Link.make ~sim ~bandwidth:1e9 ~delay:0.
      ~queue:(Netsim.Droptail.make ~capacity:1000)
  in
  Netsim.Link.connect link (Netsim.Node.receive sender);
  Netsim.Node.set_default_route node link;
  Netsim.Node.attach sender ~flow:3 (fun pkt ->
      match pkt.Netsim.Packet.payload with
      | Netsim.Packet.Ack { cum_seq; sack = _ } ->
        acks := (cum_seq, pkt.Netsim.Packet.ecn) :: !acks
      | _ -> ());
  let sink = Cc.Sink.attach ~sim ~node ~flow:3 ~peer:0 () in
  let send ?(ecn = false) seq =
    let pkt =
      Netsim.Packet.make ~seq ~flow:3 ~src:0 ~dst:1 ~sent_at:0. ()
    in
    pkt.Netsim.Packet.ecn <- ecn;
    Netsim.Node.receive node pkt
  in
  (sim, sink, send, acks)

let run_and_acks sim acks =
  Engine.Sim.run sim;
  List.rev_map fst !acks

let test_in_order () =
  let sim, sink, send, acks = fixture () in
  List.iter send [ 0; 1; 2 ];
  Alcotest.(check (list int)) "cumulative" [ 1; 2; 3 ] (run_and_acks sim acks);
  Alcotest.(check int) "next expected" 3 (Cc.Sink.cumulative sink);
  Alcotest.(check int) "pkts" 3 (Cc.Sink.pkts_received sink)

let test_gap_dupacks () =
  let sim, _, send, acks = fixture () in
  List.iter send [ 0; 2; 3 ];
  (* Missing 1: acks are 1, then duplicate 1s. *)
  Alcotest.(check (list int)) "dupacks" [ 1; 1; 1 ] (run_and_acks sim acks)

let test_hole_filled () =
  let sim, sink, send, acks = fixture () in
  List.iter send [ 0; 2; 3; 1 ];
  (* Filling seq 1 jumps the cumulative ack to 4. *)
  Alcotest.(check (list int)) "fill" [ 1; 1; 1; 4 ] (run_and_acks sim acks);
  Alcotest.(check int) "cumulative" 4 (Cc.Sink.cumulative sink)

let test_bytes_counted () =
  let sim, sink, send, _ = fixture () in
  List.iter send [ 0; 1 ];
  Engine.Sim.run sim;
  Alcotest.(check (float 0.)) "bytes" 2000. (Cc.Sink.bytes_received sink)

let test_ecn_echoed () =
  let sim, _, send, acks = fixture () in
  send ~ecn:true 0;
  Engine.Sim.run sim;
  match !acks with
  | [ (_, ecn) ] -> Alcotest.(check bool) "ecn echoed" true ecn
  | _ -> Alcotest.fail "expected one ack"

let suite =
  [
    Alcotest.test_case "in-order acks" `Quick test_in_order;
    Alcotest.test_case "gap produces dupacks" `Quick test_gap_dupacks;
    Alcotest.test_case "hole fill jumps ack" `Quick test_hole_filled;
    Alcotest.test_case "bytes counted" `Quick test_bytes_counted;
    Alcotest.test_case "ecn echoed" `Quick test_ecn_echoed;
  ]
