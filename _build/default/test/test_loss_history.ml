(* TFRC loss-interval history (WALI). *)

(* Generate loss events separated by the given packet counts; each event is
   spaced well beyond one RTT so no coalescing occurs.  The (seq, clock)
   state is explicit so successive feeds continue the same stream. *)
type feed_state = { mutable seq : int; mutable now : float }

let new_stream () = { seq = 0; now = 0. }

let feed_intervals ?(state = new_stream ()) h ~rtt lengths =
  List.iter
    (fun len ->
      state.seq <- state.seq + len;
      state.now <- state.now +. (10. *. rtt);
      ignore (Cc.Loss_history.record_loss h ~seq:state.seq ~now:state.now ~rtt))
    lengths

let test_no_loss_rate_zero () =
  let h = Cc.Loss_history.create ~k:8 in
  Cc.Loss_history.note_progress h ~seq:100;
  Alcotest.(check (float 0.)) "no events" 0. (Cc.Loss_history.loss_event_rate h)

let test_single_event_needs_interval () =
  let h = Cc.Loss_history.create ~k:8 in
  ignore (Cc.Loss_history.record_loss h ~seq:10 ~now:1. ~rtt:0.05);
  (* One event but no closed interval yet: rate undefined -> 0. *)
  Alcotest.(check (float 0.)) "one event" 0. (Cc.Loss_history.loss_event_rate h);
  Alcotest.(check int) "counted" 1 (Cc.Loss_history.num_loss_events h)

let test_uniform_intervals () =
  let h = Cc.Loss_history.create ~k:8 in
  feed_intervals h ~rtt:0.05 [ 100; 100; 100; 100; 100; 100; 100; 100; 100 ];
  Cc.Loss_history.note_progress h ~seq:810;
  let p = Cc.Loss_history.loss_event_rate h in
  Alcotest.(check (float 1e-9)) "p = 1/interval" 0.01 p

let test_coalescing_within_rtt () =
  let h = Cc.Loss_history.create ~k:8 in
  let rtt = 0.05 in
  ignore (Cc.Loss_history.record_loss h ~seq:10 ~now:1.0 ~rtt);
  (* Losses 10..13 in the same RTT are one event. *)
  Alcotest.(check bool) "same event" false
    (Cc.Loss_history.record_loss h ~seq:11 ~now:1.01 ~rtt);
  Alcotest.(check bool) "same event 2" false
    (Cc.Loss_history.record_loss h ~seq:13 ~now:1.04 ~rtt);
  Alcotest.(check int) "one event" 1 (Cc.Loss_history.num_loss_events h);
  (* A loss beyond one RTT starts a new event. *)
  Alcotest.(check bool) "new event" true
    (Cc.Loss_history.record_loss h ~seq:50 ~now:1.2 ~rtt);
  Alcotest.(check int) "two events" 2 (Cc.Loss_history.num_loss_events h)

let test_weights_recency () =
  (* Recent short intervals must dominate old long ones eventually. *)
  let h = Cc.Loss_history.create ~k:4 in
  let stream = new_stream () in
  feed_intervals ~state:stream h ~rtt:0.05 [ 1000; 1000; 1000; 1000; 1000 ];
  let p_good = Cc.Loss_history.loss_event_rate h in
  feed_intervals ~state:stream h ~rtt:0.05 [ 10; 10; 10; 10; 10 ];
  let p_bad = Cc.Loss_history.loss_event_rate h in
  Alcotest.(check bool) "rate worsened" true (p_bad > 10. *. p_good)

let test_k_limits_memory () =
  (* With k = 2, two fresh intervals erase the past completely. *)
  let h = Cc.Loss_history.create ~k:2 in
  let stream = new_stream () in
  feed_intervals ~state:stream h ~rtt:0.05 [ 1000; 1000; 1000 ];
  feed_intervals ~state:stream h ~rtt:0.05 [ 10; 10; 10 ];
  let p = Cc.Loss_history.loss_event_rate h in
  Alcotest.(check (float 0.02)) "only recent intervals" 0.1 p

let test_open_interval_lowers_rate () =
  let h = Cc.Loss_history.create ~k:8 in
  feed_intervals h ~rtt:0.05 [ 10; 10; 10; 10 ];
  let p_before = Cc.Loss_history.loss_event_rate h in
  (* A long loss-free run: the open interval grows and p must fall. *)
  let last_seq = 10 + 10 + 10 + 10 in
  Cc.Loss_history.note_progress h ~seq:(last_seq + 500);
  let p_after = Cc.Loss_history.loss_event_rate h in
  Alcotest.(check bool) "p fell" true (p_after < p_before)

let test_seed_first_interval () =
  let h = Cc.Loss_history.create ~k:8 in
  ignore (Cc.Loss_history.record_loss h ~seq:5 ~now:1. ~rtt:0.05);
  Cc.Loss_history.seed_first_interval h 200.;
  Cc.Loss_history.note_progress h ~seq:6;
  let p = Cc.Loss_history.loss_event_rate h in
  Alcotest.(check (float 1e-9)) "seeded" (1. /. 200.) p

let test_seed_requires_event () =
  let h = Cc.Loss_history.create ~k:8 in
  Alcotest.check_raises "no event"
    (Invalid_argument "Loss_history.seed_first_interval: no loss event yet")
    (fun () -> Cc.Loss_history.seed_first_interval h 100.)

let test_discounting_accelerates_recovery () =
  let h = Cc.Loss_history.create ~k:8 in
  feed_intervals h ~rtt:0.05 [ 10; 10; 10; 10; 10; 10; 10; 10; 10 ];
  let last_seq = 90 in
  Cc.Loss_history.note_progress h ~seq:(last_seq + 2000);
  let p_plain = Cc.Loss_history.loss_event_rate ~discounting:false h in
  let p_disc = Cc.Loss_history.loss_event_rate ~discounting:true h in
  Alcotest.(check bool)
    (Printf.sprintf "discounted %.5f < plain %.5f" p_disc p_plain)
    true (p_disc < p_plain)

let test_validation () =
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Loss_history.create: k >= 1 required") (fun () ->
      ignore (Cc.Loss_history.create ~k:0))

let prop_rate_in_unit_interval =
  QCheck2.Test.make ~name:"loss event rate lies in [0, 1]" ~count:100
    QCheck2.Gen.(list_size (int_range 1 20) (int_range 1 500))
    (fun intervals ->
      let h = Cc.Loss_history.create ~k:8 in
      feed_intervals h ~rtt:0.05 intervals;
      let p = Cc.Loss_history.loss_event_rate h in
      p >= 0. && p <= 1.)

let suite =
  [
    Alcotest.test_case "no loss" `Quick test_no_loss_rate_zero;
    Alcotest.test_case "single event" `Quick test_single_event_needs_interval;
    Alcotest.test_case "uniform intervals" `Quick test_uniform_intervals;
    Alcotest.test_case "coalescing within rtt" `Quick test_coalescing_within_rtt;
    Alcotest.test_case "recency weighting" `Quick test_weights_recency;
    Alcotest.test_case "k bounds memory" `Quick test_k_limits_memory;
    Alcotest.test_case "open interval counts" `Quick
      test_open_interval_lowers_rate;
    Alcotest.test_case "seed first interval" `Quick test_seed_first_interval;
    Alcotest.test_case "seed requires event" `Quick test_seed_requires_event;
    Alcotest.test_case "history discounting" `Quick
      test_discounting_accelerates_recovery;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_rate_in_unit_interval;
  ]
