(* Link transmission timing, pipelining, counters, drops. *)

let mk_pkt ?(size = 1000) seq =
  Netsim.Packet.make ~size ~seq ~flow:0 ~src:0 ~dst:1 ~sent_at:0. ()

let fixture ?(bandwidth = 8e6) ?(delay = 0.01) ?(capacity = 100) () =
  let sim = Engine.Sim.create () in
  let link =
    Netsim.Link.make ~sim ~bandwidth ~delay
      ~queue:(Netsim.Droptail.make ~capacity)
  in
  (sim, link)

let test_tx_time () =
  let _, link = fixture ~bandwidth:8e6 () in
  (* 1000 bytes at 8 Mbps = 1 ms. *)
  Alcotest.(check (float 1e-12)) "serialization" 0.001
    (Netsim.Link.tx_time link ~bytes:1000)

let test_delivery_time () =
  let sim, link = fixture ~bandwidth:8e6 ~delay:0.01 () in
  let arrival = ref 0. in
  Netsim.Link.connect link (fun _ -> arrival := Engine.Sim.now sim);
  Netsim.Link.send link (mk_pkt 1);
  Engine.Sim.run sim;
  (* tx 1ms + prop 10ms. *)
  Alcotest.(check (float 1e-9)) "arrival" 0.011 !arrival

let test_pipelining () =
  let sim, link = fixture ~bandwidth:8e6 ~delay:0.1 () in
  let arrivals = ref [] in
  Netsim.Link.connect link (fun pkt ->
      arrivals := (pkt.Netsim.Packet.seq, Engine.Sim.now sim) :: !arrivals);
  Netsim.Link.send link (mk_pkt 1);
  Netsim.Link.send link (mk_pkt 2);
  Engine.Sim.run sim;
  (* Second packet rides the wire behind the first: arrivals 1 tx apart,
     not 1 tx + 1 prop. *)
  match List.rev !arrivals with
  | [ (1, t1); (2, t2) ] ->
    Alcotest.(check (float 1e-9)) "first" 0.101 t1;
    Alcotest.(check (float 1e-9)) "pipelined second" 0.102 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_ordering_preserved () =
  let sim, link = fixture () in
  let seqs = ref [] in
  Netsim.Link.connect link (fun pkt ->
      seqs := pkt.Netsim.Packet.seq :: !seqs);
  for i = 1 to 20 do
    Netsim.Link.send link (mk_pkt i)
  done;
  Engine.Sim.run sim;
  Alcotest.(check (list int)) "fifo" (List.init 20 (fun i -> i + 1))
    (List.rev !seqs)

let test_counters_and_drops () =
  let sim, link = fixture ~capacity:5 () in
  Netsim.Link.connect link (fun _ -> ());
  let dropped = ref [] in
  Netsim.Link.on_drop link (fun pkt ->
      dropped := pkt.Netsim.Packet.seq :: !dropped);
  for i = 1 to 10 do
    Netsim.Link.send link (mk_pkt i)
  done;
  Engine.Sim.run sim;
  Alcotest.(check int) "arrivals" 10 (Netsim.Link.arrivals link);
  (* One packet goes straight to the transmitter; 5 queue; the rest drop. *)
  Alcotest.(check int) "drops" 4 (Netsim.Link.drops link);
  Alcotest.(check int) "departures" 6 (Netsim.Link.departures link);
  Alcotest.(check (float 0.)) "bytes out" 6000. (Netsim.Link.bytes_out link);
  Alcotest.(check int) "drop hook saw them" 4 (List.length !dropped)

let test_throughput_matches_bandwidth () =
  let sim, link = fixture ~bandwidth:1e6 ~delay:0. ~capacity:10000 () in
  Netsim.Link.connect link (fun _ -> ());
  (* Offer 2x the link rate for 10 seconds. *)
  Engine.Sim.every sim ~interval:0.004 ~stop:10. (fun () ->
      Netsim.Link.send link (mk_pkt 0));
  Engine.Sim.run ~until:10. sim;
  let mbps = Netsim.Link.bytes_out link *. 8. /. 10. /. 1e6 in
  Alcotest.(check bool) "saturated at capacity" true
    (mbps > 0.95 && mbps <= 1.001)

let test_validation () =
  let sim = Engine.Sim.create () in
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Link.make: bandwidth must be positive") (fun () ->
      ignore
        (Netsim.Link.make ~sim ~bandwidth:0. ~delay:0.
           ~queue:(Netsim.Droptail.make ~capacity:1)))

let suite =
  [
    Alcotest.test_case "serialization time" `Quick test_tx_time;
    Alcotest.test_case "delivery time" `Quick test_delivery_time;
    Alcotest.test_case "pipelined propagation" `Quick test_pipelining;
    Alcotest.test_case "ordering preserved" `Quick test_ordering_preserved;
    Alcotest.test_case "counters and drops" `Quick test_counters_and_drops;
    Alcotest.test_case "throughput at capacity" `Quick
      test_throughput_matches_bandwidth;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
