test/test_scenarios.ml: Alcotest Engine List Printf Slowcc
