test/test_packet.ml: Alcotest Format Netsim String
