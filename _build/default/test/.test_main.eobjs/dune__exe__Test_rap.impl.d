test/test_rap.ml: Alcotest Cc Engine Netsim Printf
