test/test_experiments.ml: Alcotest Buffer Filename Format List Slowcc
