test/test_trace.ml: Alcotest Buffer Engine Format List Netsim String
