test/test_window_cc.ml: Alcotest Analysis Cc Engine Fun Netsim Printf QCheck2 QCheck_alcotest
