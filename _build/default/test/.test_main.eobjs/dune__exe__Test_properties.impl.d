test/test_properties.ml: Cc Engine List Netsim QCheck2 QCheck_alcotest Slowcc
