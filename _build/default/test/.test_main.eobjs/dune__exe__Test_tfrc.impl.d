test/test_tfrc.ml: Alcotest Cc Engine Fun Netsim Printf
