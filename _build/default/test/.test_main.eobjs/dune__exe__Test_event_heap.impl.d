test/test_event_heap.ml: Alcotest Engine Float List QCheck2 QCheck_alcotest
