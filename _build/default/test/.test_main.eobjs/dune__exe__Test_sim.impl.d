test/test_sim.ml: Alcotest Engine List
