test/test_dumbbell.ml: Alcotest Engine Netsim
