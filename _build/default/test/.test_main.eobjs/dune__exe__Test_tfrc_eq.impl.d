test/test_tfrc_eq.ml: Alcotest Cc Float List Printf QCheck2 QCheck_alcotest
