test/test_sack.ml: Alcotest Analysis Cc Engine Fun List Netsim Printf
