test/test_window_cc_extra.ml: Alcotest Cc Engine Float Fun Netsim Printf
