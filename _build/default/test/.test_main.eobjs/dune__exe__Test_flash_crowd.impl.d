test/test_flash_crowd.ml: Alcotest Cc Engine Netsim Printf
