test/test_parking_lot.ml: Alcotest Cc Engine List Netsim Printf
