test/test_timeseries.ml: Alcotest Engine List QCheck2 QCheck_alcotest
