test/test_probe.ml: Alcotest Engine Float List
