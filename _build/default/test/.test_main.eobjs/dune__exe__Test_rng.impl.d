test/test_rng.ml: Alcotest Engine Float List QCheck2 QCheck_alcotest
