test/test_metrics.ml: Alcotest Engine List Slowcc
