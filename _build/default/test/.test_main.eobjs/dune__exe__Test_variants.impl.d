test/test_variants.ml: Alcotest Cc Engine Float Fun List Netsim Printf
