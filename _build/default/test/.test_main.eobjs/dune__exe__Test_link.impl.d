test/test_link.ml: Alcotest Engine List Netsim
