test/test_paper_claims.ml: Alcotest Float List Printf Slowcc
