test/test_cbr.ml: Alcotest Cc Engine Float Netsim Printf
