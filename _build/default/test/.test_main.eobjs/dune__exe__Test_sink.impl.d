test/test_sink.ml: Alcotest Cc Engine List Netsim
