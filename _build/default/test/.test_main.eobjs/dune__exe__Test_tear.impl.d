test/test_tear.ml: Alcotest Cc Engine Float Netsim Printf Slowcc
