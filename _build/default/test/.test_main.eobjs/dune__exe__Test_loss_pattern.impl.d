test/test_loss_pattern.ml: Alcotest Engine List Netsim
