test/test_analysis.ml: Alcotest Analysis Float List Printf QCheck2 QCheck_alcotest
