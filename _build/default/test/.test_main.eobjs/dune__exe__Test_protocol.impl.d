test/test_protocol.ml: Alcotest Cc Engine List Netsim Slowcc
