test/test_loss_history.ml: Alcotest Cc List Printf QCheck2 QCheck_alcotest
