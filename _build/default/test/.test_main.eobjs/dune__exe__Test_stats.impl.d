test/test_stats.ml: Alcotest Engine Float List QCheck2 QCheck_alcotest
