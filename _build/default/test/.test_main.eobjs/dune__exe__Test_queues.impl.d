test/test_queues.ml: Alcotest Engine List Netsim QCheck2 QCheck_alcotest
