test/test_tfrc_extra.ml: Alcotest Cc Engine Float Fun List Netsim Printf Slowcc
