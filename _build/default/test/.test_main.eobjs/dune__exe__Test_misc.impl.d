test/test_misc.ml: Alcotest Cc Engine Float List Netsim Printf Slowcc
