test/test_transient.ml: Alcotest List Printf Slowcc
