test/test_node.ml: Alcotest Engine Netsim
