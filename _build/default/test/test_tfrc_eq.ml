(* The TCP response function used by TFRC. *)

let test_known_point () =
  (* At p = 0.01 and rtt = 1: X = 1/(sqrt(2/300) + 12 sqrt(3/800) * .01 * (1+.0032)). *)
  let x = Cc.Tfrc_eq.rate_pps ~p:0.01 ~rtt:1. in
  Alcotest.(check bool) "plausible magnitude" true (x > 10. && x < 13.)

let test_monotone_in_p () =
  let rtt = 0.05 in
  let last = ref infinity in
  List.iter
    (fun p ->
      let x = Cc.Tfrc_eq.rate_pps ~p ~rtt in
      Alcotest.(check bool) "decreasing" true (x <= !last);
      last := x)
    [ 0.001; 0.01; 0.05; 0.1; 0.3; 0.5; 0.9 ]

let test_scales_with_rtt () =
  let x1 = Cc.Tfrc_eq.rate_pps ~p:0.01 ~rtt:0.05 in
  let x2 = Cc.Tfrc_eq.rate_pps ~p:0.01 ~rtt:0.1 in
  Alcotest.(check (float 1e-6)) "inverse in rtt" (x1 /. 2.) x2

let test_zero_loss_infinite () =
  Alcotest.(check bool) "no loss, no limit" true
    (Cc.Tfrc_eq.rate_pps ~p:0. ~rtt:0.05 = infinity)

let test_invert_roundtrip () =
  List.iter
    (fun p ->
      let x = Cc.Tfrc_eq.rate_pps ~p ~rtt:0.05 in
      let p' = Cc.Tfrc_eq.invert ~rate_pps:x ~rtt:0.05 in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip at p=%g got %g" p p')
        true
        (Float.abs (p' -. p) /. p < 0.01))
    [ 0.001; 0.01; 0.1; 0.4 ]

let test_invert_extremes () =
  Alcotest.(check (float 1e-12)) "zero rate" 1.
    (Cc.Tfrc_eq.invert ~rate_pps:0. ~rtt:0.05);
  Alcotest.(check bool) "huge rate -> tiny p" true
    (Cc.Tfrc_eq.invert ~rate_pps:1e12 ~rtt:0.05 <= 1e-7)

let prop_invert_consistent =
  QCheck2.Test.make ~name:"invert is the inverse of rate_pps" ~count:100
    QCheck2.Gen.(float_range 0.001 0.5)
    (fun p ->
      let x = Cc.Tfrc_eq.rate_pps ~p ~rtt:0.08 in
      let p' = Cc.Tfrc_eq.invert ~rate_pps:x ~rtt:0.08 in
      Float.abs (p' -. p) /. p < 0.05)

let suite =
  [
    Alcotest.test_case "known point" `Quick test_known_point;
    Alcotest.test_case "monotone in p" `Quick test_monotone_in_p;
    Alcotest.test_case "scales with rtt" `Quick test_scales_with_rtt;
    Alcotest.test_case "zero loss" `Quick test_zero_loss_infinite;
    Alcotest.test_case "invert roundtrip" `Quick test_invert_roundtrip;
    Alcotest.test_case "invert extremes" `Quick test_invert_extremes;
    QCheck_alcotest.to_alcotest prop_invert_consistent;
  ]
