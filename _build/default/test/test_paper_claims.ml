(* The paper's headline findings, pinned at reduced scale so they run in
   CI.  Each test is one qualitative claim from the abstract/conclusions. *)

let small_restart ?(n_flows = 8) ~protocol () =
  Slowcc.Scenarios.cbr_restart ~n_flows ~duration:260. ~protocol
    ~bandwidth:24e6 ()

let cost_of (r : Slowcc.Scenarios.cbr_restart_result) =
  match r.Slowcc.Scenarios.stab with
  | Some s -> s.Slowcc.Metrics.cost
  | None -> 0.

let time_of (r : Slowcc.Scenarios.cbr_restart_result) =
  match r.Slowcc.Scenarios.stab with
  | Some s -> s.Slowcc.Metrics.time_rtts
  | None -> 0.

(* "Incorporating self-clocking overcomes persistent overload even for
   very slow variants" (Section 4.1). *)
let test_self_clocking_cuts_stabilization_cost () =
  let without =
    small_restart ~protocol:(Slowcc.Protocol.tfrc ~k:64 ()) ()
  in
  let with_sc =
    small_restart ~protocol:(Slowcc.Protocol.tfrc ~conservative:true ~k:64 ()) ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "cost %.1f (no SC) vs %.1f (SC)" (cost_of without)
       (cost_of with_sc))
    true
    (cost_of with_sc <= cost_of without)

(* "Longer stabilization for slower mechanisms" (Figure 4). *)
let test_slower_gamma_slower_stabilization () =
  let fast = small_restart ~protocol:(Slowcc.Protocol.tcp ~gamma:2.) () in
  let slow = small_restart ~protocol:(Slowcc.Protocol.tcp ~gamma:64.) () in
  Alcotest.(check bool)
    (Printf.sprintf "tcp %.0f RTTs vs tcp(1/64) %.0f RTTs" (time_of fast)
       (time_of slow))
    true
    (time_of slow >= time_of fast)

(* "TCP receives more throughput than competing TFRC flows when the
   available bandwidth varies with a period of one to ten seconds"
   (Section 4.2.1 / Figure 7). *)
let test_tcp_beats_tfrc_under_oscillation () =
  let r =
    Slowcc.Scenarios.square_wave ~measure:100.
      ~flows:
        [ (Slowcc.Protocol.tcp ~gamma:2., 5); (Slowcc.Protocol.tfrc ~k:6 (), 5) ]
      ~bandwidth:15e6 ~cbr_fraction:(2. /. 3.) ~period:4. ()
  in
  let tcp = r.Slowcc.Scenarios.group_mean "TCP(1/2)" in
  let tfrc = r.Slowcc.Scenarios.group_mean "TFRC(6)" in
  Alcotest.(check bool)
    (Printf.sprintf "tcp %.2f > tfrc %.2f x 1.2" tcp tfrc)
    true
    (tcp > 1.2 *. tfrc)

(* "...but SlowCC does not take throughput away from TCP" — the converse
   direction of safety: TFRC never ends up *above* fair share at TCP's
   expense in the long run (Section 4.2.1). *)
let test_tfrc_never_exceeds_tcp_long_term () =
  let ratios =
    List.map
      (fun period ->
        let r =
          Slowcc.Scenarios.square_wave ~measure:80.
            ~flows:
              [ (Slowcc.Protocol.tcp ~gamma:2., 5);
                (Slowcc.Protocol.tfrc ~k:6 (), 5) ]
            ~bandwidth:15e6 ~cbr_fraction:(2. /. 3.) ~period ()
        in
        r.Slowcc.Scenarios.group_mean "TFRC(6)"
        /. Float.max 0.01 (r.Slowcc.Scenarios.group_mean "TCP(1/2)"))
      [ 0.5; 2.; 8. ]
  in
  List.iter
    (fun ratio ->
      Alcotest.(check bool)
        (Printf.sprintf "tfrc/tcp %.2f <= 1.15" ratio)
        true (ratio <= 1.15))
    ratios

(* "Slowly-responsive algorithms lose throughput under a sudden bandwidth
   increase" (Figure 13): f(20) decreases with slowness. *)
let test_fk_decreases_with_slowness () =
  let f p =
    (Slowcc.Scenarios.bandwidth_double ~t_stop:80. ~protocol:p ~bandwidth:10e6 ())
      .Slowcc.Scenarios.f20
  in
  let tcp = f (Slowcc.Protocol.tcp ~gamma:2.) in
  let slow = f (Slowcc.Protocol.tcp ~gamma:64.) in
  Alcotest.(check bool)
    (Printf.sprintf "f20: tcp %.2f > tcp(1/64) %.2f" tcp slow)
    true (tcp > slow)

(* "TFRC performs considerably worse than TCP(1/8) in both smoothness and
   throughput under the harsh bursty loss pattern" (Figure 18). *)
let test_harsh_pattern_hurts_tfrc () =
  let run p =
    let r =
      Slowcc.Scenarios.loss_pattern ~duration:45. ~protocol:p
        ~pattern:(Slowcc.Scenarios.Phases [ (6.0, 200); (1.0, 4) ])
        ~bandwidth:10e6 ()
    in
    r.Slowcc.Scenarios.avg_throughput
  in
  let tfrc = run (Slowcc.Protocol.tfrc ~k:6 ()) in
  let tcp18 = run (Slowcc.Protocol.tcp ~gamma:8.) in
  Alcotest.(check bool)
    (Printf.sprintf "tfrc %.0f < tcp(1/8) %.0f under harsh pattern" tfrc tcp18)
    true (tfrc < tcp18)

(* Figure 17's counterpart: under the mild pattern TFRC is smoother than
   TCP(1/8). *)
let test_mild_pattern_tfrc_smoother () =
  let run p =
    let r =
      Slowcc.Scenarios.loss_pattern ~duration:45. ~protocol:p
        ~pattern:(Slowcc.Scenarios.Counts [ 50; 50; 50; 400; 400; 400 ])
        ~bandwidth:10e6 ()
    in
    r.Slowcc.Scenarios.smoothness
  in
  let tfrc = run (Slowcc.Protocol.tfrc ~k:6 ()) in
  let tcp18 = run (Slowcc.Protocol.tcp ~gamma:8.) in
  Alcotest.(check bool)
    (Printf.sprintf "tfrc %.2f <= tcp(1/8) %.2f" tfrc tcp18)
    true (tfrc <= tcp18 +. 0.05)

let suite =
  [
    Alcotest.test_case "self-clocking cuts stabilization cost" `Slow
      test_self_clocking_cuts_stabilization_cost;
    Alcotest.test_case "slower gamma stabilizes slower" `Slow
      test_slower_gamma_slower_stabilization;
    Alcotest.test_case "tcp beats tfrc under oscillation" `Slow
      test_tcp_beats_tfrc_under_oscillation;
    Alcotest.test_case "tfrc never exceeds tcp long-term" `Slow
      test_tfrc_never_exceeds_tcp_long_term;
    Alcotest.test_case "f(k) decreases with slowness" `Slow
      test_fk_decreases_with_slowness;
    Alcotest.test_case "harsh pattern hurts tfrc" `Slow
      test_harsh_pattern_hurts_tfrc;
    Alcotest.test_case "mild pattern: tfrc smoother" `Slow
      test_mild_pattern_tfrc_smoother;
  ]
