(* Deterministic loss-pattern wrappers. *)

let data seq = Netsim.Packet.make ~seq ~flow:0 ~src:0 ~dst:1 ~sent_at:0. ()

let ack seq =
  Netsim.Packet.make ~seq ~flow:0 ~src:1 ~dst:0 ~sent_at:0.
    ~payload:(Netsim.Packet.Ack { cum_seq = seq; sack = [] })
    ()

let drops_of q pkts =
  List.filter_map
    (fun pkt ->
      match q.Netsim.Queue_intf.enqueue pkt with
      | Netsim.Queue_intf.Dropped -> Some pkt.Netsim.Packet.seq
      | _ ->
        ignore (q.Netsim.Queue_intf.dequeue ());
        None)
    pkts

let test_by_count_positions () =
  let q =
    Netsim.Loss_pattern.by_count ~pattern:[ 3; 5 ]
      (Netsim.Droptail.make ~capacity:10)
  in
  let dropped = drops_of q (List.init 20 data) in
  (* Drop the 3rd, then the 5th after that (8th), then 3rd after (11th)... *)
  Alcotest.(check (list int)) "positions" [ 2; 7; 10; 15; 18 ] dropped

let test_by_count_skips_acks () =
  let q =
    Netsim.Loss_pattern.by_count ~pattern:[ 2 ]
      (Netsim.Droptail.make ~capacity:10)
  in
  (* Interleave acks: they must neither drop nor advance the counter. *)
  let outcomes =
    List.map
      (fun pkt -> q.Netsim.Queue_intf.enqueue pkt)
      [ data 0; ack 100; data 1; ack 101; data 2; data 3 ]
  in
  let dropped =
    List.filteri (fun _ a -> a = Netsim.Queue_intf.Dropped) outcomes
  in
  Alcotest.(check int) "two drops among data only" 2 (List.length dropped)

let test_by_count_validation () =
  Alcotest.check_raises "empty pattern"
    (Invalid_argument "Loss_pattern.by_count: pattern must be positive counts")
    (fun () ->
      ignore
        (Netsim.Loss_pattern.by_count ~pattern:[]
           (Netsim.Droptail.make ~capacity:1)))

let test_by_phase () =
  let sim = Engine.Sim.create () in
  let q =
    Netsim.Loss_pattern.by_phase ~sim
      ~phases:[ (1.0, 2); (1.0, 0) ]
      (Netsim.Droptail.make ~capacity:100)
  in
  let dropped_in_phase = ref 0 and dropped_in_quiet = ref 0 in
  (* Phase 1 (t<1): every 2nd drops.  Phase 2 (1<=t<2): none. *)
  Engine.Sim.every sim ~interval:0.05 ~stop:1.99 (fun () ->
      let pkt = data 0 in
      match q.Netsim.Queue_intf.enqueue pkt with
      | Netsim.Queue_intf.Dropped ->
        if Engine.Sim.now sim < 1. then incr dropped_in_phase
        else incr dropped_in_quiet
      | _ -> ());
  Engine.Sim.run sim;
  Alcotest.(check bool) "drops during lossy phase" true (!dropped_in_phase > 5);
  Alcotest.(check int) "no drops during quiet phase" 0 !dropped_in_quiet

let test_by_phase_cycles () =
  let sim = Engine.Sim.create () in
  let q =
    Netsim.Loss_pattern.by_phase ~sim
      ~phases:[ (0.5, 1); (0.5, 0) ]
      (Netsim.Droptail.make ~capacity:100)
  in
  (* In the second lossy phase (t in [1.0, 1.5)) every packet drops. *)
  let dropped = ref 0 in
  Engine.Sim.at sim 1.2 (fun () ->
      match q.Netsim.Queue_intf.enqueue (data 0) with
      | Netsim.Queue_intf.Dropped -> incr dropped
      | _ -> ());
  Engine.Sim.run sim;
  Alcotest.(check int) "cycled back to lossy" 1 !dropped

let suite =
  [
    Alcotest.test_case "by_count positions" `Quick test_by_count_positions;
    Alcotest.test_case "by_count ignores acks" `Quick test_by_count_skips_acks;
    Alcotest.test_case "by_count validation" `Quick test_by_count_validation;
    Alcotest.test_case "by_phase phases" `Quick test_by_phase;
    Alcotest.test_case "by_phase cycles" `Quick test_by_phase_cycles;
  ]
