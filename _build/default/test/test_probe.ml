(* Periodic samplers. *)

let test_level () =
  let sim = Engine.Sim.create () in
  let x = ref 0. in
  (* Increment times (0.3, 0.6, 0.9, ...) never coincide with sampling
     times (1, 2, 3), so the expected levels are unambiguous. *)
  Engine.Sim.every sim ~interval:0.3 (fun () -> x := !x +. 1.);
  let ts = Engine.Probe.sample_level sim ~every:1. (fun () -> !x) in
  Engine.Sim.run ~until:2.5 sim;
  let values = List.map snd (Engine.Timeseries.to_list ts) in
  Alcotest.(check (list (float 0.))) "levels" [ 3.; 6. ] values

let test_rate () =
  let sim = Engine.Sim.create () in
  let counter = ref 0. in
  Engine.Sim.every sim ~interval:0.03 (fun () -> counter := !counter +. 1.5);
  let ts = Engine.Probe.sample_rate sim ~every:1. (fun () -> !counter) in
  Engine.Sim.run ~until:2.5 sim;
  let values = List.map snd (Engine.Timeseries.to_list ts) in
  (* 1.5 units per 0.03 s = 50 per second, within one tick of jitter. *)
  List.iter
    (fun v -> Alcotest.(check bool) "rate near 50" true (Float.abs (v -. 50.) < 2.))
    values;
  Alcotest.(check int) "two samples" 2 (List.length values)

let test_ratio () =
  let sim = Engine.Sim.create () in
  let num = ref 0. and den = ref 0. in
  Engine.Sim.every sim ~interval:0.1 (fun () ->
      den := !den +. 10.;
      num := !num +. 1.);
  let ts =
    Engine.Probe.sample_ratio sim ~every:1.
      ~num:(fun () -> !num)
      ~den:(fun () -> !den)
  in
  Engine.Sim.run ~until:2.5 sim;
  List.iter
    (fun (_, v) -> Alcotest.(check (float 1e-9)) "ratio" 0.1 v)
    (Engine.Timeseries.to_list ts)

let test_ratio_zero_denominator () =
  let sim = Engine.Sim.create () in
  let ts =
    Engine.Probe.sample_ratio sim ~every:1.
      ~num:(fun () -> 0.)
      ~den:(fun () -> 0.)
  in
  (* The sampler reschedules forever; bound the run with a horizon. *)
  Engine.Sim.run ~until:3.5 sim;
  List.iter
    (fun (_, v) -> Alcotest.(check (float 0.)) "zero" 0. v)
    (Engine.Timeseries.to_list ts)

let test_stop () =
  let sim = Engine.Sim.create () in
  let ts = Engine.Probe.sample_level ~stop:2.5 sim ~every:1. (fun () -> 1.) in
  Engine.Sim.at sim 10. (fun () -> ());
  Engine.Sim.run sim;
  Alcotest.(check int) "stopped sampling" 2 (Engine.Timeseries.length ts)

let suite =
  [
    Alcotest.test_case "level sampling" `Quick test_level;
    Alcotest.test_case "rate sampling" `Quick test_rate;
    Alcotest.test_case "ratio sampling" `Quick test_ratio;
    Alcotest.test_case "ratio with zero denominator" `Quick
      test_ratio_zero_denominator;
    Alcotest.test_case "stop bound" `Quick test_stop;
  ]
