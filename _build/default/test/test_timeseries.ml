(* Time series container and windowed queries. *)

let series pts =
  let ts = Engine.Timeseries.create () in
  List.iter (fun (t, v) -> Engine.Timeseries.add ts ~time:t v) pts;
  ts

let test_roundtrip () =
  let pts = [ (0., 1.); (1., 2.); (2., 3.) ] in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "to_list" pts
    (Engine.Timeseries.to_list (series pts))

let test_monotonic_guard () =
  let ts = series [ (1., 0.) ] in
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Timeseries.add: non-monotonic time") (fun () ->
      Engine.Timeseries.add ts ~time:0.5 0.)

let test_between () =
  let ts = series [ (0., 10.); (1., 20.); (2., 30.); (3., 40.) ] in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "window" [ (1., 20.); (2., 30.) ]
    (Engine.Timeseries.between ts ~lo:1. ~hi:3.)

let test_mean_between () =
  let ts = series [ (0., 10.); (1., 20.); (2., 30.) ] in
  (match Engine.Timeseries.mean_between ts ~lo:0. ~hi:2. with
  | Some m -> Alcotest.(check (float 1e-9)) "mean" 15. m
  | None -> Alcotest.fail "expected Some");
  Alcotest.(check bool) "empty window" true
    (Engine.Timeseries.mean_between ts ~lo:5. ~hi:6. = None)

let test_last () =
  let ts = series [ (0., 1.); (5., 9.) ] in
  match Engine.Timeseries.last ts with
  | Some (t, v) ->
    Alcotest.(check (float 0.)) "time" 5. t;
    Alcotest.(check (float 0.)) "value" 9. v
  | None -> Alcotest.fail "expected last"

let test_max_ratio () =
  let ts = series [ (0., 100.); (1., 200.); (2., 100.); (3., 105.) ] in
  Alcotest.(check (float 1e-9)) "worst doubling" 2.
    (Engine.Timeseries.max_consecutive_ratio ts)

let test_max_ratio_floor () =
  (* Pairs touching zero are skipped to avoid infinite ratios. *)
  let ts = series [ (0., 100.); (1., 0.); (2., 100.); (3., 110.) ] in
  Alcotest.(check (float 1e-9)) "floored" 1.1
    (Engine.Timeseries.max_consecutive_ratio ~floor:1. ts)

let test_fold () =
  let ts = series [ (0., 1.); (1., 2.); (2., 3.) ] in
  let sum = Engine.Timeseries.fold ts ~init:0. ~f:(fun acc _ v -> acc +. v) in
  Alcotest.(check (float 0.)) "fold sum" 6. sum

let prop_between_subset =
  QCheck2.Test.make ~name:"between returns a sorted subset in range" ~count:100
    QCheck2.Gen.(list_size (int_range 0 50) (float_range 0. 100.))
    (fun values ->
      let ts = Engine.Timeseries.create () in
      List.iteri
        (fun i v -> Engine.Timeseries.add ts ~time:(float_of_int i) v)
        values;
      let got = Engine.Timeseries.between ts ~lo:10. ~hi:30. in
      List.for_all (fun (t, _) -> t >= 10. && t < 30.) got
      && List.sort compare got = got)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "monotonic guard" `Quick test_monotonic_guard;
    Alcotest.test_case "between" `Quick test_between;
    Alcotest.test_case "mean between" `Quick test_mean_between;
    Alcotest.test_case "last" `Quick test_last;
    Alcotest.test_case "max consecutive ratio" `Quick test_max_ratio;
    Alcotest.test_case "ratio floor" `Quick test_max_ratio_floor;
    Alcotest.test_case "fold" `Quick test_fold;
    QCheck_alcotest.to_alcotest prop_between_subset;
  ]
