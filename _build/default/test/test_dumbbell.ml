(* Dumbbell topology wiring: RTT budget, routing both ways, dimensioning. *)

let fixture ?(bandwidth = 10e6) ?(queue = Netsim.Dumbbell.Red) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  let config =
    { (Netsim.Dumbbell.default_config ~bandwidth) with Netsim.Dumbbell.queue }
  in
  (sim, Netsim.Dumbbell.create ~sim ~rng config)

let test_bdp () =
  let c = Netsim.Dumbbell.default_config ~bandwidth:10e6 in
  (* 10 Mbps x 50 ms / 8000 bits = 62.5 packets. *)
  Alcotest.(check (float 1e-9)) "bdp" 62.5 (Netsim.Dumbbell.bdp_packets c)

let measure_rtt sim db =
  (* Ping: send a 0-byte-ish packet right and echo it back. *)
  let left, right = Netsim.Dumbbell.add_host_pair db in
  let flow = Netsim.Dumbbell.fresh_flow db in
  let t_sent = ref 0. and t_back = ref 0. in
  Netsim.Node.attach right ~flow (fun pkt ->
      let echo =
        Netsim.Packet.make ~size:pkt.Netsim.Packet.size ~flow
          ~src:(Netsim.Node.id right) ~dst:(Netsim.Node.id left)
          ~sent_at:0. ()
      in
      Netsim.Node.inject right echo);
  Netsim.Node.attach left ~flow (fun _ -> t_back := Engine.Sim.now sim);
  Engine.Sim.at sim 0. (fun () ->
      t_sent := 0.;
      let probe =
        Netsim.Packet.make ~size:40 ~flow ~src:(Netsim.Node.id left)
          ~dst:(Netsim.Node.id right) ~sent_at:0. ()
      in
      Netsim.Node.inject left probe);
  Engine.Sim.run sim;
  !t_back -. !t_sent

let test_rtt_budget () =
  let sim, db = fixture () in
  let rtt = measure_rtt sim db in
  (* Propagation-only RTT should be 50 ms up to serialization epsilon. *)
  Alcotest.(check bool) "rtt near 50ms" true
    (rtt > 0.049 && rtt < 0.053)

let test_forward_and_reverse_paths () =
  let sim, db = fixture () in
  let left, right = Netsim.Dumbbell.add_host_pair db in
  let flow = Netsim.Dumbbell.fresh_flow db in
  let at_right = ref 0 and at_left = ref 0 in
  Netsim.Node.attach right ~flow (fun _ -> incr at_right);
  Netsim.Node.attach left ~flow (fun _ -> incr at_left);
  Engine.Sim.at sim 0. (fun () ->
      Netsim.Node.inject left
        (Netsim.Packet.make ~flow ~src:(Netsim.Node.id left)
           ~dst:(Netsim.Node.id right) ~sent_at:0. ());
      Netsim.Node.inject right
        (Netsim.Packet.make ~flow ~src:(Netsim.Node.id right)
           ~dst:(Netsim.Node.id left) ~sent_at:0. ()));
  Engine.Sim.run sim;
  Alcotest.(check int) "right got it" 1 !at_right;
  Alcotest.(check int) "left got it" 1 !at_left

let test_host_pairs_isolated () =
  let sim, db = fixture () in
  let l1, r1 = Netsim.Dumbbell.add_host_pair db in
  let _, r2 = Netsim.Dumbbell.add_host_pair db in
  let flow = Netsim.Dumbbell.fresh_flow db in
  let at_r1 = ref 0 and at_r2 = ref 0 in
  Netsim.Node.attach r1 ~flow (fun _ -> incr at_r1);
  Netsim.Node.attach r2 ~flow (fun _ -> incr at_r2);
  Engine.Sim.at sim 0. (fun () ->
      Netsim.Node.inject l1
        (Netsim.Packet.make ~flow ~src:(Netsim.Node.id l1)
           ~dst:(Netsim.Node.id r1) ~sent_at:0. ()));
  Engine.Sim.run sim;
  Alcotest.(check int) "addressed host" 1 !at_r1;
  Alcotest.(check int) "other host untouched" 0 !at_r2

let test_fresh_flow_unique () =
  let _, db = fixture () in
  let a = Netsim.Dumbbell.fresh_flow db in
  let b = Netsim.Dumbbell.fresh_flow db in
  Alcotest.(check bool) "unique" true (a <> b)

let test_droptail_variant () =
  let _, db = fixture ~queue:Netsim.Dumbbell.Droptail () in
  let q = Netsim.Link.queue (Netsim.Dumbbell.bottleneck db) in
  Alcotest.(check string) "droptail queue" "droptail" q.Netsim.Queue_intf.name

let test_red_variant () =
  let _, db = fixture () in
  let q = Netsim.Link.queue (Netsim.Dumbbell.bottleneck db) in
  Alcotest.(check string) "red queue" "red" q.Netsim.Queue_intf.name

let test_validation () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Dumbbell.create: bandwidth") (fun () ->
      ignore
        (Netsim.Dumbbell.create ~sim ~rng
           (Netsim.Dumbbell.default_config ~bandwidth:(-1.))))

let suite =
  [
    Alcotest.test_case "bdp packets" `Quick test_bdp;
    Alcotest.test_case "rtt budget" `Quick test_rtt_budget;
    Alcotest.test_case "both directions routed" `Quick
      test_forward_and_reverse_paths;
    Alcotest.test_case "host pairs isolated" `Quick test_host_pairs_isolated;
    Alcotest.test_case "fresh flows unique" `Quick test_fresh_flow_unique;
    Alcotest.test_case "droptail variant" `Quick test_droptail_variant;
    Alcotest.test_case "red variant" `Quick test_red_variant;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
