(* System-level property tests: protocol invariants under randomized
   loss environments and seeds. *)

let run_tcp_under_loss ~seed ~p ~horizon =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let make_queue () =
    Netsim.Loss_pattern.bernoulli ~rng:(Engine.Rng.split rng) ~p
      (Netsim.Droptail.make ~capacity:1000)
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:10e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let tcp =
    Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id
      (Cc.Window_cc.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5))
  in
  let flow = Cc.Window_cc.flow tcp in
  flow.Cc.Flow.start ();
  let violations = ref [] in
  Engine.Sim.every sim ~interval:0.05 ~stop:horizon (fun () ->
      if Cc.Window_cc.cwnd tcp < 1. then
        violations := "cwnd below 1" :: !violations;
      if Cc.Window_cc.inflight tcp < 0 then
        violations := "negative inflight" :: !violations;
      if Cc.Window_cc.srtt tcp > 5. then
        violations := "absurd srtt" :: !violations);
  Engine.Sim.run ~until:horizon sim;
  (tcp, flow, !violations)

let prop_tcp_invariants_under_random_loss =
  QCheck2.Test.make ~name:"tcp invariants hold under random loss" ~count:12
    QCheck2.Gen.(pair (int_range 1 10000) (float_range 0.0 0.2))
    (fun (seed, p) ->
      let _, flow, violations = run_tcp_under_loss ~seed ~p ~horizon:20. in
      violations = []
      && flow.Cc.Flow.bytes_delivered () <= flow.Cc.Flow.bytes_sent ())

let prop_tcp_progress_under_moderate_loss =
  QCheck2.Test.make ~name:"tcp makes progress when p <= 0.1" ~count:8
    QCheck2.Gen.(pair (int_range 1 10000) (float_range 0.0 0.1))
    (fun (seed, p) ->
      let _, flow, _ = run_tcp_under_loss ~seed ~p ~horizon:20. in
      (* At least ~1 pkt/RTT of goodput. *)
      flow.Cc.Flow.bytes_delivered () > 20. /. 0.05 *. 1000. *. 0.5)

let prop_short_transfers_complete =
  QCheck2.Test.make ~name:"short transfers complete under light loss"
    ~count:10
    QCheck2.Gen.(pair (int_range 1 10000) (int_range 1 50))
    (fun (seed, npkts) ->
      let sim = Engine.Sim.create () in
      let rng = Engine.Rng.create ~seed in
      let make_queue () =
        Netsim.Loss_pattern.bernoulli ~rng:(Engine.Rng.split rng) ~p:0.02
          (Netsim.Droptail.make ~capacity:1000)
      in
      let config =
        {
          (Netsim.Dumbbell.default_config ~bandwidth:10e6) with
          Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
        }
      in
      let db = Netsim.Dumbbell.create ~sim ~rng config in
      let src, dst = Netsim.Dumbbell.add_host_pair db in
      let flow_id = Netsim.Dumbbell.fresh_flow db in
      let done_ = ref false in
      let tcp =
        Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id
          {
            (Cc.Window_cc.default_config
               (Cc.Window_cc.tcp_compatible_aimd ~b:0.5))
            with
            Cc.Window_cc.total_pkts = Some npkts;
            on_complete = Some (fun () -> done_ := true);
          }
      in
      (Cc.Window_cc.flow tcp).Cc.Flow.start ();
      Engine.Sim.run ~until:120. sim;
      !done_)

let prop_scenario_determinism =
  QCheck2.Test.make ~name:"scenarios are deterministic per seed" ~count:5
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let run () =
        let r =
          Slowcc.Scenarios.square_wave ~seed ~measure:20.
            ~flows:[ (Slowcc.Protocol.tcp ~gamma:2., 2) ]
            ~bandwidth:5e6 ~cbr_fraction:0.5 ~period:1. ()
        in
        ( List.map snd r.Slowcc.Scenarios.per_flow,
          r.Slowcc.Scenarios.drop_rate )
      in
      run () = run ())

let prop_tfrc_rate_bounded_by_link =
  QCheck2.Test.make ~name:"tfrc long-term goodput bounded by link rate"
    ~count:6
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let sim = Engine.Sim.create () in
      let rng = Engine.Rng.create ~seed in
      let db =
        Netsim.Dumbbell.create ~sim ~rng
          (Netsim.Dumbbell.default_config ~bandwidth:4e6)
      in
      let flow = Slowcc.Protocol.spawn (Slowcc.Protocol.tfrc ~k:6 ()) db in
      flow.Cc.Flow.start ();
      Engine.Sim.run ~until:30. sim;
      flow.Cc.Flow.bytes_delivered () *. 8. /. 30. <= 4e6 *. 1.01)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_tcp_invariants_under_random_loss;
    QCheck_alcotest.to_alcotest prop_tcp_progress_under_moderate_loss;
    QCheck_alcotest.to_alcotest prop_short_transfers_complete;
    QCheck_alcotest.to_alcotest prop_scenario_determinism;
    QCheck_alcotest.to_alcotest prop_tfrc_rate_bounded_by_link;
  ]
