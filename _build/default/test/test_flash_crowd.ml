(* Flash crowd generator. *)

let fixture ?(cfg = Cc.Flash_crowd.default_config) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:21 in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth:10e6)
  in
  let crowd =
    Cc.Flash_crowd.create ~sim ~rng:(Engine.Rng.split rng) ~dumbbell:db
      ~start:1. cfg
  in
  (sim, crowd)

let test_arrival_count () =
  let sim, crowd = fixture () in
  Engine.Sim.run ~until:30. sim;
  let n = Cc.Flash_crowd.flows_started crowd in
  (* Poisson with mean 1000 over 5 s. *)
  Alcotest.(check bool)
    (Printf.sprintf "started %d" n)
    true
    (n > 850 && n < 1150)

let test_no_arrivals_before_start () =
  let sim, crowd = fixture () in
  Engine.Sim.run ~until:0.99 sim;
  Alcotest.(check int) "quiet before start" 0
    (Cc.Flash_crowd.flows_started crowd)

let test_completion () =
  let cfg = { Cc.Flash_crowd.default_config with Cc.Flash_crowd.arrival_rate = 20.; duration = 2. } in
  let sim, crowd = fixture ~cfg () in
  Engine.Sim.run ~until:60. sim;
  let started = Cc.Flash_crowd.flows_started crowd in
  let completed = Cc.Flash_crowd.flows_completed crowd in
  Alcotest.(check bool) "nearly all complete" true
    (completed >= started - 2 && started > 20);
  Alcotest.(check bool) "bytes counted" true
    (Cc.Flash_crowd.bytes_delivered crowd >= float_of_int (completed * 10000));
  Alcotest.(check bool) "mean completion sane" true
    (Cc.Flash_crowd.mean_completion_time crowd > 0.05
    && Cc.Flash_crowd.mean_completion_time crowd < 10.)

let test_validation () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth:1e6)
  in
  Alcotest.check_raises "bad rate" (Invalid_argument "Flash_crowd.create")
    (fun () ->
      ignore
        (Cc.Flash_crowd.create ~sim ~rng ~dumbbell:db ~start:0.
           { Cc.Flash_crowd.default_config with Cc.Flash_crowd.arrival_rate = 0. }))

let suite =
  [
    Alcotest.test_case "arrival count" `Slow test_arrival_count;
    Alcotest.test_case "quiet before start" `Quick test_no_arrivals_before_start;
    Alcotest.test_case "flows complete" `Quick test_completion;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
