(* Responsiveness and aggressiveness metrics (Section 3). *)

let test_tcp_responsiveness_fast () =
  match Slowcc.Transient.responsiveness (Slowcc.Protocol.tcp ~gamma:2.) with
  | Some r ->
    Alcotest.(check bool)
      (Printf.sprintf "tcp halves within a few RTTs (%.0f)" r)
      true (r <= 6.)
  | None -> Alcotest.fail "tcp never halved"

let test_slower_protocols_slower () =
  let get p =
    match Slowcc.Transient.responsiveness p with
    | Some r -> r
    | None -> 1e9
  in
  let tcp = get (Slowcc.Protocol.tcp ~gamma:2.) in
  let tfrc256 = get (Slowcc.Protocol.tfrc ~k:256 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "tcp %.0f << tfrc256 %.0f" tcp tfrc256)
    true
    (tfrc256 > 5. *. tcp)

let test_tfrc_responsiveness_band () =
  match Slowcc.Transient.responsiveness (Slowcc.Protocol.tfrc ~k:6 ()) with
  | Some r ->
    (* The paper quotes 4-6 RTTs; allow simulation slack. *)
    Alcotest.(check bool)
      (Printf.sprintf "tfrc(6) responsiveness %.0f in [3, 15]" r)
      true
      (r >= 3. && r <= 15.)
  | None -> Alcotest.fail "tfrc never halved"

let test_tcp_aggressiveness_is_a () =
  let a = Slowcc.Transient.aggressiveness (Slowcc.Protocol.tcp ~gamma:2.) in
  Alcotest.(check bool)
    (Printf.sprintf "tcp aggressiveness %.2f near 1" a)
    true
    (a > 0.6 && a < 1.4)

let test_aggressiveness_ordering () =
  let a_tcp = Slowcc.Transient.aggressiveness (Slowcc.Protocol.tcp ~gamma:2.) in
  let a_18 = Slowcc.Transient.aggressiveness (Slowcc.Protocol.tcp ~gamma:8.) in
  let a_tfrc = Slowcc.Transient.aggressiveness (Slowcc.Protocol.tfrc ~k:6 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "tcp %.2f > tcp(1/8) %.2f > 0" a_tcp a_18)
    true
    (a_tcp > a_18 && a_18 > 0.);
  Alcotest.(check bool)
    (Printf.sprintf "tfrc %.2f < tcp %.2f" a_tfrc a_tcp)
    true (a_tfrc < a_tcp)

let test_table_shape () =
  let t = Slowcc.Transient.table ~quick:true () in
  Alcotest.(check int) "two quick rows" 2 (List.length t.Slowcc.Table.rows);
  Alcotest.(check int) "three columns" 3 (List.length t.Slowcc.Table.columns)

let suite =
  [
    Alcotest.test_case "tcp responsiveness" `Slow test_tcp_responsiveness_fast;
    Alcotest.test_case "slower protocols respond slower" `Slow
      test_slower_protocols_slower;
    Alcotest.test_case "tfrc responsiveness band" `Slow
      test_tfrc_responsiveness_band;
    Alcotest.test_case "tcp aggressiveness = a" `Slow
      test_tcp_aggressiveness_is_a;
    Alcotest.test_case "aggressiveness ordering" `Slow
      test_aggressiveness_ordering;
    Alcotest.test_case "table shape" `Slow test_table_shape;
  ]
