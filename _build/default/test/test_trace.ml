(* Packet trace facility. *)

let fixture () =
  let sim = Engine.Sim.create () in
  let link =
    Netsim.Link.make ~sim ~bandwidth:8e6 ~delay:0.001
      ~queue:(Netsim.Droptail.make ~capacity:2)
  in
  Netsim.Link.connect link (fun _ -> ());
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  let trace = Netsim.Trace.attach ~sim ~out link in
  (sim, link, buf, out, trace)

let send link seq =
  Netsim.Link.send link
    (Netsim.Packet.make ~seq ~flow:7 ~src:0 ~dst:1 ~sent_at:0. ())

let test_departures_and_drops_logged () =
  let sim, link, buf, out, trace = fixture () in
  (* Capacity 2 + 1 in transmission: the 4th packet drops. *)
  for i = 1 to 4 do
    send link i
  done;
  Engine.Sim.run sim;
  Format.pp_print_flush out ();
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  let count prefix =
    List.length
      (List.filter (fun l -> String.length l > 0 && l.[0] = prefix.[0]) lines)
  in
  Alcotest.(check int) "three departures" 3 (count "d");
  Alcotest.(check int) "one drop" 1 (count "x");
  Alcotest.(check int) "event counter" 4 (Netsim.Trace.events trace)

let test_line_format () =
  let sim, link, buf, out, _ = fixture () in
  send link 42;
  Engine.Sim.run sim;
  Format.pp_print_flush out ();
  let first_line = List.hd (String.split_on_char '\n' (Buffer.contents buf)) in
  (match String.split_on_char ' ' first_line with
  | [ "d"; _time; "7"; "42"; "1000"; _uid ] -> ()
  | _ -> Alcotest.failf "unexpected trace line %S" first_line)

let test_stop () =
  let sim, link, buf, out, trace = fixture () in
  Netsim.Trace.stop trace;
  send link 1;
  Engine.Sim.run sim;
  Format.pp_print_flush out ();
  Alcotest.(check int) "no events after stop" 0 (Buffer.length buf)

let suite =
  [
    Alcotest.test_case "departures and drops logged" `Quick
      test_departures_and_drops_logged;
    Alcotest.test_case "line format" `Quick test_line_format;
    Alcotest.test_case "stop" `Quick test_stop;
  ]
