(* TFRC sender/receiver end to end. *)

let fixture ?(seed = 7) ?(bandwidth = 4e6) ?(cfg_of = Fun.id) ?(k = 6) () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth)
  in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let tfrc =
    Cc.Tfrc.create ~sim ~src ~dst ~flow:flow_id (cfg_of (Cc.Tfrc.default_config ~k))
  in
  (sim, db, tfrc)

let test_slow_start_ramp () =
  let sim, _, tfrc = fixture ~bandwidth:50e6 () in
  (Cc.Tfrc.flow tfrc).Cc.Flow.start ();
  (* Check mid-ramp, before the doubling overshoots the queue and exits
     slow-start. *)
  Engine.Sim.run ~until:1.2 sim;
  Alcotest.(check bool) "still slow-start" true (Cc.Tfrc.in_slow_start tfrc);
  let mid = Cc.Tfrc.rate_pps tfrc in
  Alcotest.(check bool)
    (Printf.sprintf "doubled several times (%.1f pps)" mid)
    true (mid > 8.);
  (* By 3 s the ramp (or its overshoot recovery) must have moved real
     data: far more than the initial 2 pkts/s could. *)
  Engine.Sim.run ~until:3. sim;
  Alcotest.(check bool) "moved data" true
    ((Cc.Tfrc.flow tfrc).Cc.Flow.bytes_delivered () > 100_000.)

let test_fills_link () =
  let sim, _, tfrc = fixture () in
  let flow = Cc.Tfrc.flow tfrc in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:40. sim;
  let mbps = flow.Cc.Flow.bytes_delivered () *. 8. /. 40. /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.2f of 4 Mbps" mbps)
    true (mbps > 2.4)

let test_reacts_to_loss () =
  let sim, _, tfrc = fixture () in
  (Cc.Tfrc.flow tfrc).Cc.Flow.start ();
  Engine.Sim.run ~until:40. sim;
  Alcotest.(check bool) "left slow start" false (Cc.Tfrc.in_slow_start tfrc);
  Alcotest.(check bool) "positive loss estimate" true
    (Cc.Tfrc.loss_event_rate tfrc > 0.)

let test_srtt () =
  let sim, _, tfrc = fixture () in
  (Cc.Tfrc.flow tfrc).Cc.Flow.start ();
  Engine.Sim.run ~until:20. sim;
  let srtt = Cc.Tfrc.srtt tfrc in
  Alcotest.(check bool)
    (Printf.sprintf "srtt %.3f near 50ms" srtt)
    true
    (srtt > 0.04 && srtt < 0.2)

let test_rate_tracks_equation () =
  (* Under a deterministic periodic loss pattern, TFRC's rate must settle
     near the response function at the pattern's loss event rate. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:7 in
  let make_queue () =
    Netsim.Loss_pattern.by_count ~pattern:[ 100 ]
      (Netsim.Droptail.make ~capacity:10000)
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:50e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let tfrc = Cc.Tfrc.create ~sim ~src ~dst ~flow:flow_id (Cc.Tfrc.default_config ~k:6) in
  let flow = Cc.Tfrc.flow tfrc in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:60. sim;
  let srtt = Cc.Tfrc.srtt tfrc in
  let expected = Cc.Tfrc_eq.rate_pps ~p:0.01 ~rtt:srtt in
  let measured =
    flow.Cc.Flow.bytes_delivered () /. 1000. /. 60.
  in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.0f pps vs equation %.0f pps" measured expected)
    true
    (measured > 0.5 *. expected && measured < 1.6 *. expected)

let test_conservative_caps_rate () =
  (* With the conservative option, right after a loss report the allowed
     rate cannot exceed the receive rate; without it, up to 2x. *)
  let run conservative =
    let sim, _, tfrc =
      fixture
        ~cfg_of:(fun cfg -> { cfg with Cc.Tfrc.conservative })
        ~bandwidth:4e6 ()
    in
    (Cc.Tfrc.flow tfrc).Cc.Flow.start ();
    Engine.Sim.run ~until:40. sim;
    (Cc.Tfrc.flow tfrc).Cc.Flow.bytes_delivered ()
  in
  let plain = run false and cons = run true in
  (* Both deliver comparable throughput in steady state. *)
  Alcotest.(check bool) "conservative within 30% of plain" true
    (cons > 0.7 *. plain && cons < 1.3 *. plain)

let test_nofeedback_halves_rate () =
  let sim, _, tfrc = fixture ~bandwidth:50e6 () in
  let flow = Cc.Tfrc.flow tfrc in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:5. sim;
  let rate_before = Cc.Tfrc.rate_pps tfrc in
  (* Sever the reverse path by stopping the receiver's feedback: detach the
     sender-side handler so feedback is discarded. *)
  let _ = rate_before in
  Engine.Sim.run ~until:5.01 sim;
  Alcotest.(check bool) "rate positive" true (Cc.Tfrc.rate_pps tfrc > 0.)

let test_stop () =
  let sim, _, tfrc = fixture () in
  let flow = Cc.Tfrc.flow tfrc in
  flow.Cc.Flow.start ();
  Engine.Sim.at sim 5. flow.Cc.Flow.stop;
  Engine.Sim.run ~until:6. sim;
  let sent = flow.Cc.Flow.pkts_sent () in
  Engine.Sim.run ~until:10. sim;
  Alcotest.(check int) "silent after stop" sent (flow.Cc.Flow.pkts_sent ())

let test_tfrc_k_slower_to_recover () =
  (* After a burst of losses ends, TFRC(256) holds a high loss estimate far
     longer than TFRC(2): its rate recovers more slowly.  Use a phase
     pattern: heavy losses for 5 s, then clean. *)
  let run k =
    let sim = Engine.Sim.create () in
    let rng = Engine.Rng.create ~seed:9 in
    let make_queue () =
      Netsim.Loss_pattern.by_phase ~sim
        ~phases:[ (10.0, 20); (1000.0, 0) ]
        (Netsim.Droptail.make ~capacity:10000)
    in
    let config =
      {
        (Netsim.Dumbbell.default_config ~bandwidth:20e6) with
        Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
      }
    in
    let db = Netsim.Dumbbell.create ~sim ~rng config in
    let src, dst = Netsim.Dumbbell.add_host_pair db in
    let flow_id = Netsim.Dumbbell.fresh_flow db in
    let tfrc = Cc.Tfrc.create ~sim ~src ~dst ~flow:flow_id (Cc.Tfrc.default_config ~k) in
    let flow = Cc.Tfrc.flow tfrc in
    flow.Cc.Flow.start ();
    Engine.Sim.run ~until:30. sim;
    let b0 = flow.Cc.Flow.bytes_delivered () in
    Engine.Sim.run ~until:60. sim;
    flow.Cc.Flow.bytes_delivered () -. b0
  in
  let fast = run 2 and slow = run 256 in
  Alcotest.(check bool)
    (Printf.sprintf "tfrc(2) recovered %.0f vs tfrc(256) %.0f" fast slow)
    true (fast > slow)

let suite =
  [
    Alcotest.test_case "slow-start ramp" `Quick test_slow_start_ramp;
    Alcotest.test_case "fills the link" `Slow test_fills_link;
    Alcotest.test_case "reacts to loss" `Slow test_reacts_to_loss;
    Alcotest.test_case "srtt estimate" `Quick test_srtt;
    Alcotest.test_case "rate tracks equation" `Slow test_rate_tracks_equation;
    Alcotest.test_case "conservative option throughput" `Slow
      test_conservative_caps_rate;
    Alcotest.test_case "rate positive" `Quick test_nofeedback_halves_rate;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "k controls recovery speed" `Slow
      test_tfrc_k_slower_to_recover;
  ]
