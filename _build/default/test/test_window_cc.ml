(* Windowed congestion control: rules, slow-start, loss response,
   timeouts, completion, and static TCP-compatibility end to end. *)

let db_fixture ?(seed = 5) ?(bandwidth = 4e6) ?(queue = Netsim.Dumbbell.Red) ()
    =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let config =
    { (Netsim.Dumbbell.default_config ~bandwidth) with Netsim.Dumbbell.queue }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  (sim, db)

let spawn_tcp ?(cfg_of = Fun.id) sim db =
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let cfg =
    cfg_of (Cc.Window_cc.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5))
  in
  Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg

(* --- rules --- *)

let test_aimd_rule () =
  let r = Cc.Window_cc.aimd ~a:1. ~b:0.5 in
  Alcotest.(check (float 1e-9)) "increase" 1. (r.Cc.Window_cc.increase 10.);
  Alcotest.(check (float 1e-9)) "decrease" 5. (r.Cc.Window_cc.decrease 10.)

let test_tcp_compatible_a () =
  (* a = 4(2b - b^2)/3; at b = 1/2 this is 1 (standard TCP). *)
  let r = Cc.Window_cc.tcp_compatible_aimd ~b:0.5 in
  Alcotest.(check (float 1e-9)) "a at b=1/2" 1. (r.Cc.Window_cc.increase 99.);
  let r8 = Cc.Window_cc.tcp_compatible_aimd ~b:0.125 in
  let expected = 4. *. ((2. *. 0.125) -. (0.125 ** 2.)) /. 3. in
  Alcotest.(check (float 1e-9)) "a at b=1/8" expected
    (r8.Cc.Window_cc.increase 99.)

let test_binomial_rule () =
  let r = Cc.Window_cc.binomial ~k:0.5 ~l:0.5 ~a:1. ~b:1. in
  Alcotest.(check (float 1e-9)) "increase 1/sqrt(w)" 0.25
    (r.Cc.Window_cc.increase 16.);
  Alcotest.(check (float 1e-9)) "decrease w - sqrt(w)" 12.
    (r.Cc.Window_cc.decrease 16.)

let test_rule_validation () =
  Alcotest.check_raises "bad b" (Invalid_argument "Window_cc.aimd") (fun () ->
      ignore (Cc.Window_cc.aimd ~a:1. ~b:1.5))

(* --- behavior --- *)

let test_slow_start_growth () =
  let sim, db = db_fixture ~bandwidth:50e6 () in
  let tcp = spawn_tcp sim db in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  (* After ~6 RTTs without loss, the window should have grown far beyond
     linear: 2 -> ~2^6. *)
  Engine.Sim.run ~until:0.32 sim;
  Alcotest.(check bool) "exponential growth" true (Cc.Window_cc.cwnd tcp > 30.)

let test_self_clocking_idle () =
  (* With the destination handler removed, no acks return: the sender must
     send exactly its initial window and then stall until RTO. *)
  let sim, db = db_fixture () in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let cfg =
    Cc.Window_cc.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5)
  in
  let tcp = Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg in
  Netsim.Node.detach dst ~flow:flow_id;
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  Engine.Sim.run ~until:0.15 sim;
  Alcotest.(check int) "only initial window sent" 2
    ((Cc.Window_cc.flow tcp).Cc.Flow.pkts_sent ())

let test_rto_backoff () =
  let sim, db = db_fixture () in
  let src, dst = Netsim.Dumbbell.add_host_pair db in
  let flow_id = Netsim.Dumbbell.fresh_flow db in
  let cfg =
    Cc.Window_cc.default_config (Cc.Window_cc.tcp_compatible_aimd ~b:0.5)
  in
  let tcp = Cc.Window_cc.create ~sim ~src ~dst ~flow:flow_id cfg in
  Netsim.Node.detach dst ~flow:flow_id;
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  Engine.Sim.run ~until:10. sim;
  let n = Cc.Window_cc.timeouts tcp in
  (* Exponential backoff: 1, 2, 4, ... seconds from the initial RTO, so
     roughly log2(10) timeouts, certainly under 10 and at least 3. *)
  Alcotest.(check bool) "backoff bounded timeouts" true (n >= 3 && n <= 8);
  Alcotest.(check (float 1e-9)) "window collapsed" 1. (Cc.Window_cc.cwnd tcp)

let test_fast_retransmit () =
  (* A single forced drop must trigger fast retransmit, not a timeout. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:2 in
  let make_queue () =
    Netsim.Loss_pattern.by_count ~pattern:[ 30; 1000000 ]
      (Netsim.Droptail.make ~capacity:1000)
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:10e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let tcp = spawn_tcp sim db in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  Engine.Sim.run ~until:5. sim;
  Alcotest.(check bool) "fast rtx happened" true
    (Cc.Window_cc.fast_retransmits tcp >= 1);
  Alcotest.(check int) "no timeout" 0 (Cc.Window_cc.timeouts tcp)

let test_decrease_applied_on_loss () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:2 in
  let make_queue () =
    Netsim.Loss_pattern.by_count ~pattern:[ 100 ]
      (Netsim.Droptail.make ~capacity:10000)
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:20e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let tcp = spawn_tcp sim db in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  Engine.Sim.run ~until:30. sim;
  (* Periodic 1% loss: the window must oscillate around sqrt(1.5/p) ~ 12,
     never collapsing to 1 nor blowing up. *)
  let w = Cc.Window_cc.cwnd tcp in
  Alcotest.(check bool) "window in AIMD band" true (w > 4. && w < 40.)

let test_completion_callback () =
  let sim, db = db_fixture () in
  let done_ = ref false in
  let tcp =
    spawn_tcp
      ~cfg_of:(fun cfg ->
        {
          cfg with
          Cc.Window_cc.total_pkts = Some 10;
          on_complete = Some (fun () -> done_ := true);
        })
      sim db
  in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  Engine.Sim.run ~until:5. sim;
  Alcotest.(check bool) "completed" true !done_;
  Alcotest.(check bool) "flagged" true (Cc.Window_cc.finished tcp);
  Alcotest.(check (float 0.)) "all bytes delivered" 10000.
    ((Cc.Window_cc.flow tcp).Cc.Flow.bytes_delivered ())

let test_srtt_estimate () =
  let sim, db = db_fixture () in
  let tcp = spawn_tcp sim db in
  (Cc.Window_cc.flow tcp).Cc.Flow.start ();
  Engine.Sim.run ~until:5. sim;
  let srtt = Cc.Window_cc.srtt tcp in
  Alcotest.(check bool) "srtt near topology rtt" true
    (srtt > 0.045 && srtt < 0.15)

let test_throughput_near_formula () =
  (* Deterministic periodic loss p = 1/150: TCP throughput should be near
     sqrt(1.5/p) packets per RTT. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:2 in
  let make_queue () =
    Netsim.Loss_pattern.by_count ~pattern:[ 150 ]
      (Netsim.Droptail.make ~capacity:10000)
  in
  let config =
    {
      (Netsim.Dumbbell.default_config ~bandwidth:50e6) with
      Netsim.Dumbbell.queue = Netsim.Dumbbell.Custom make_queue;
    }
  in
  let db = Netsim.Dumbbell.create ~sim ~rng config in
  let tcp = spawn_tcp sim db in
  let flow = Cc.Window_cc.flow tcp in
  flow.Cc.Flow.start ();
  Engine.Sim.run ~until:60. sim;
  let pkts_per_rtt = flow.Cc.Flow.bytes_delivered () /. 1000. /. (60. /. 0.05) in
  let expected = sqrt (1.5 *. 150.) in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.1f vs formula %.1f pkt/RTT" pkts_per_rtt
       expected)
    true
    (pkts_per_rtt > 0.6 *. expected && pkts_per_rtt < 1.4 *. expected)

let test_stop_silences_flow () =
  let sim, db = db_fixture () in
  let tcp = spawn_tcp sim db in
  let flow = Cc.Window_cc.flow tcp in
  flow.Cc.Flow.start ();
  Engine.Sim.at sim 2. flow.Cc.Flow.stop;
  Engine.Sim.run ~until:2.5 sim;
  let sent_at_stop = flow.Cc.Flow.pkts_sent () in
  Engine.Sim.run ~until:4. sim;
  Alcotest.(check int) "no sends after stop" sent_at_stop
    (flow.Cc.Flow.pkts_sent ())

let prop_decrease_never_negative =
  QCheck2.Test.make ~name:"tcp-compatible decrease stays positive" ~count:200
    QCheck2.Gen.(pair (float_range 0.01 0.99) (float_range 1. 1000.))
    (fun (b, w) ->
      let r = Cc.Window_cc.tcp_compatible_aimd ~b in
      r.Cc.Window_cc.decrease w >= 0.)

let prop_binomial_compat_k_plus_l =
  (* For calibrated SQRT params, the deterministic average window must be
     close to TCP's across a band of loss rates (k + l = 1 property). *)
  QCheck2.Test.make ~name:"calibrated sqrt tracks tcp response" ~count:8
    QCheck2.Gen.(float_range 0.005 0.03)
    (fun p ->
      let a, b = Analysis.Binomial_calibration.sqrt_params ~gamma:2. () in
      let w =
        Analysis.Binomial_calibration.average_window ~k:0.5 ~l:0.5 ~a ~b ~p
      in
      let tcp = sqrt (1.5 /. p) in
      w > 0.7 *. tcp && w < 1.4 *. tcp)

let suite =
  [
    Alcotest.test_case "aimd rule" `Quick test_aimd_rule;
    Alcotest.test_case "tcp-compatible a(b)" `Quick test_tcp_compatible_a;
    Alcotest.test_case "binomial rule" `Quick test_binomial_rule;
    Alcotest.test_case "rule validation" `Quick test_rule_validation;
    Alcotest.test_case "slow-start growth" `Quick test_slow_start_growth;
    Alcotest.test_case "self-clocking stalls without acks" `Quick
      test_self_clocking_idle;
    Alcotest.test_case "rto exponential backoff" `Quick test_rto_backoff;
    Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit;
    Alcotest.test_case "decrease on loss" `Quick test_decrease_applied_on_loss;
    Alcotest.test_case "completion callback" `Quick test_completion_callback;
    Alcotest.test_case "srtt estimate" `Quick test_srtt_estimate;
    Alcotest.test_case "throughput near response function" `Slow
      test_throughput_near_formula;
    Alcotest.test_case "stop silences flow" `Quick test_stop_silences_flow;
    QCheck_alcotest.to_alcotest prop_decrease_never_negative;
    QCheck_alcotest.to_alcotest prop_binomial_compat_k_plus_l;
  ]
