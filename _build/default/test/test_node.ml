(* Node routing and agent dispatch. *)

let mk_pkt ~flow ~dst = Netsim.Packet.make ~flow ~src:0 ~dst ~sent_at:0. ()

let test_local_dispatch () =
  let node = Netsim.Node.create ~id:5 in
  let got = ref [] in
  Netsim.Node.attach node ~flow:7 (fun pkt ->
      got := pkt.Netsim.Packet.flow :: !got);
  Netsim.Node.receive node (mk_pkt ~flow:7 ~dst:5);
  Alcotest.(check (list int)) "dispatched" [ 7 ] !got

let test_unknown_flow_discarded () =
  let node = Netsim.Node.create ~id:5 in
  Netsim.Node.receive node (mk_pkt ~flow:9 ~dst:5);
  Alcotest.(check int) "discarded" 1 (Netsim.Node.discarded node)

let test_detach () =
  let node = Netsim.Node.create ~id:5 in
  Netsim.Node.attach node ~flow:7 (fun _ -> ());
  Netsim.Node.detach node ~flow:7;
  Netsim.Node.receive node (mk_pkt ~flow:7 ~dst:5);
  Alcotest.(check int) "discarded after detach" 1 (Netsim.Node.discarded node)

let link_fixture sim =
  Netsim.Link.make ~sim ~bandwidth:1e9 ~delay:0.001
    ~queue:(Netsim.Droptail.make ~capacity:100)

let test_routing () =
  let sim = Engine.Sim.create () in
  let node = Netsim.Node.create ~id:0 in
  let l1 = link_fixture sim and l2 = link_fixture sim in
  let via1 = ref 0 and via2 = ref 0 in
  Netsim.Link.connect l1 (fun _ -> incr via1);
  Netsim.Link.connect l2 (fun _ -> incr via2);
  Netsim.Node.add_route node ~dst:1 l1;
  Netsim.Node.set_default_route node l2;
  Netsim.Node.receive node (mk_pkt ~flow:0 ~dst:1);
  Netsim.Node.receive node (mk_pkt ~flow:0 ~dst:42);
  Engine.Sim.run sim;
  Alcotest.(check int) "explicit route" 1 !via1;
  Alcotest.(check int) "default route" 1 !via2

let test_no_route_discards () =
  let node = Netsim.Node.create ~id:0 in
  Netsim.Node.receive node (mk_pkt ~flow:0 ~dst:99);
  Alcotest.(check int) "discarded" 1 (Netsim.Node.discarded node)

let suite =
  [
    Alcotest.test_case "local dispatch" `Quick test_local_dispatch;
    Alcotest.test_case "unknown flow discarded" `Quick
      test_unknown_flow_discarded;
    Alcotest.test_case "detach" `Quick test_detach;
    Alcotest.test_case "routing" `Quick test_routing;
    Alcotest.test_case "no route discards" `Quick test_no_route_discards;
  ]
