(* Paper metrics on synthetic series. *)

let series pts =
  let ts = Engine.Timeseries.create () in
  List.iter (fun (t, v) -> Engine.Timeseries.add ts ~time:t v) pts;
  ts

let test_stabilization_basic () =
  (* Steady loss 1%, spike to 20% at t=10, back under 1.5% at t=14. *)
  let pts =
    List.init 40 (fun i ->
        let t = float_of_int i in
        let v = if t >= 10. && t < 14. then 0.2 else 0.01 in
        (t, v))
  in
  match
    Slowcc.Metrics.stabilization ~loss_series:(series pts) ~t_event:10.
      ~steady_loss:0.01 ~rtt:0.05
  with
  | Some s ->
    Alcotest.(check (float 1e-9)) "time" 4. s.Slowcc.Metrics.time_seconds;
    Alcotest.(check (float 1e-9)) "rtts" 80. s.Slowcc.Metrics.time_rtts;
    (* Mean over [10, 14) is 0.2; cost = 80 x 0.2 = 16. *)
    Alcotest.(check (float 1e-6)) "cost" 16. s.Slowcc.Metrics.cost
  | None -> Alcotest.fail "expected stabilization"

let test_stabilization_no_spike () =
  let pts = List.init 20 (fun i -> (float_of_int i, 0.01)) in
  Alcotest.(check bool) "no spike -> None" true
    (Slowcc.Metrics.stabilization ~loss_series:(series pts) ~t_event:10.
       ~steady_loss:0.01 ~rtt:0.05
    = None)

let test_stabilization_never_settles () =
  let pts =
    List.init 20 (fun i ->
        let t = float_of_int i in
        (t, if t >= 10. then 0.5 else 0.01))
  in
  match
    Slowcc.Metrics.stabilization ~loss_series:(series pts) ~t_event:10.
      ~steady_loss:0.01 ~rtt:0.05
  with
  | Some s ->
    (* Charged to the end of the series. *)
    Alcotest.(check (float 1e-9)) "whole tail" 9. s.Slowcc.Metrics.time_seconds
  | None -> Alcotest.fail "expected Some (charged tail)"

let test_fair_convergence () =
  (* Flow 2 ramps linearly; fairness window (delta = 0.1) entered when
     x2/(x1+x2) >= 0.45. *)
  let r1 = series (List.init 20 (fun i -> (float_of_int i, 10.))) in
  let r2 = series (List.init 20 (fun i -> (float_of_int i, float_of_int i))) in
  match
    Slowcc.Metrics.fair_convergence ~rate1:r1 ~rate2:r2 ~t_start:0. ~delta:0.1
  with
  | Some t ->
    (* x2 = t: need t/(10+t) >= 0.45 -> t >= 8.18 -> first sample at 9. *)
    Alcotest.(check (float 1e-9)) "time" 9. t
  | None -> Alcotest.fail "expected convergence"

let test_fair_convergence_never () =
  let r1 = series (List.init 10 (fun i -> (float_of_int i, 10.))) in
  let r2 = series (List.init 10 (fun i -> (float_of_int i, 1.))) in
  Alcotest.(check bool) "never" true
    (Slowcc.Metrics.fair_convergence ~rate1:r1 ~rate2:r2 ~t_start:0.
       ~delta:0.1
    = None)

let test_f_k () =
  (* 10 Mbps link, 20 RTTs of 50 ms = 1 s window; 0.75 MB delivered = 60%. *)
  let f =
    Slowcc.Metrics.f_k ~bytes_at_event:0. ~bytes_after:750000. ~k:20 ~rtt:0.05
      ~bandwidth:10e6
  in
  Alcotest.(check (float 1e-9)) "f(20)" 0.6 f

let test_smoothness () =
  let ts = series [ (0., 1000.); (1., 3000.); (2., 1500.) ] in
  Alcotest.(check (float 1e-9)) "ratio" 3. (Slowcc.Metrics.smoothness ts)

let test_utilization () =
  let u =
    Slowcc.Metrics.utilization ~bytes0:0. ~bytes1:1.25e6 ~dt:1. ~bandwidth:10e6
  in
  Alcotest.(check (float 1e-9)) "full" 1. u

let test_validation () =
  Alcotest.check_raises "bad fk" (Invalid_argument "Metrics.f_k") (fun () ->
      ignore
        (Slowcc.Metrics.f_k ~bytes_at_event:0. ~bytes_after:0. ~k:0 ~rtt:0.05
           ~bandwidth:1e6))

let suite =
  [
    Alcotest.test_case "stabilization basic" `Quick test_stabilization_basic;
    Alcotest.test_case "stabilization no spike" `Quick
      test_stabilization_no_spike;
    Alcotest.test_case "stabilization never settles" `Quick
      test_stabilization_never_settles;
    Alcotest.test_case "fair convergence" `Quick test_fair_convergence;
    Alcotest.test_case "fair convergence never" `Quick
      test_fair_convergence_never;
    Alcotest.test_case "f(k)" `Quick test_f_k;
    Alcotest.test_case "smoothness" `Quick test_smoothness;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
