(* Integration tests: small, fast instances of each paper scenario. *)

let tcp = Slowcc.Protocol.tcp ~gamma:2.

let test_cbr_restart_small () =
  (* Shrunk timeline variant is not exposed; instead use few flows and a
     small link so the full 300 s run still finishes quickly. *)
  let r =
    Slowcc.Scenarios.cbr_restart ~n_flows:4 ~duration:220. ~protocol:tcp
      ~bandwidth:6e6 ()
  in
  Alcotest.(check bool) "positive steady loss" true
    (r.Slowcc.Scenarios.steady_loss > 0.001);
  (match r.Slowcc.Scenarios.stab with
  | Some s ->
    Alcotest.(check bool) "tcp stabilizes fast" true
      (s.Slowcc.Metrics.time_rtts < 400.)
  | None -> ());
  (* The loss series must cover the full run. *)
  match Engine.Timeseries.last r.Slowcc.Scenarios.loss_series with
  | Some (t, _) -> Alcotest.(check bool) "series spans run" true (t > 210.)
  | None -> Alcotest.fail "empty series"

let test_square_wave_homogeneous_fair () =
  let r =
    Slowcc.Scenarios.square_wave ~measure:40. ~flows:[ (tcp, 4) ]
      ~bandwidth:8e6 ~cbr_fraction:(2. /. 3.) ~period:2. ()
  in
  (* Four identical flows: each near the fair share of what TCP achieves. *)
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "near fair" true (v > 0.3 && v < 1.7))
    r.Slowcc.Scenarios.per_flow;
  Alcotest.(check bool) "utilization sane" true
    (r.Slowcc.Scenarios.utilization > 0.4
    && r.Slowcc.Scenarios.utilization < 1.1);
  Alcotest.(check bool) "drops occur" true (r.Slowcc.Scenarios.drop_rate > 0.)

let test_square_wave_group_mean () =
  let tfrc = Slowcc.Protocol.tfrc ~k:6 () in
  let r =
    Slowcc.Scenarios.square_wave ~measure:40.
      ~flows:[ (tcp, 2); (tfrc, 2) ]
      ~bandwidth:8e6 ~cbr_fraction:(2. /. 3.) ~period:2. ()
  in
  let m_tcp = r.Slowcc.Scenarios.group_mean "TCP(1/2)" in
  let m_tfrc = r.Slowcc.Scenarios.group_mean "TFRC(6)" in
  Alcotest.(check bool) "groups positive" true (m_tcp > 0. && m_tfrc > 0.);
  Alcotest.(check (float 0.)) "unknown group" 0.
    (r.Slowcc.Scenarios.group_mean "nope")

let test_square_wave_validation () =
  Alcotest.check_raises "fraction"
    (Invalid_argument "square_wave: cbr_fraction in (0,1)") (fun () ->
      ignore
        (Slowcc.Scenarios.square_wave ~flows:[ (tcp, 1) ] ~bandwidth:1e6
           ~cbr_fraction:1.5 ~period:1. ()))

let test_fair_convergence_returns () =
  let time, converged =
    Slowcc.Scenarios.fair_convergence ~n_trials:1 ~cap:120. ~protocol:tcp
      ~bandwidth:4e6 ()
  in
  Alcotest.(check int) "converged" 1 converged;
  Alcotest.(check bool) "quick for standard tcp" true (time < 60.)

let test_bandwidth_double () =
  let r =
    Slowcc.Scenarios.bandwidth_double ~t_stop:40. ~protocol:tcp
      ~bandwidth:8e6 ()
  in
  Alcotest.(check bool) "f20 in (0.4, 1.05)" true
    (r.Slowcc.Scenarios.f20 > 0.4 && r.Slowcc.Scenarios.f20 < 1.05);
  Alcotest.(check bool) "f200 >= f20 roughly" true
    (r.Slowcc.Scenarios.f200 > r.Slowcc.Scenarios.f20 -. 0.15)

let test_loss_pattern () =
  let r =
    Slowcc.Scenarios.loss_pattern ~duration:30. ~protocol:tcp
      ~pattern:(Slowcc.Scenarios.Counts [ 100 ])
      ~bandwidth:10e6 ()
  in
  Alcotest.(check bool) "throughput positive" true
    (r.Slowcc.Scenarios.avg_throughput > 10000.);
  Alcotest.(check bool) "smoothness >= 1" true
    (r.Slowcc.Scenarios.smoothness >= 1.);
  Alcotest.(check bool) "series populated" true
    (Engine.Timeseries.length r.Slowcc.Scenarios.rate_02s > 100)

let test_flash_crowd_scenario () =
  let r =
    Slowcc.Scenarios.flash_crowd ~n_bg:3 ~duration:40. ~protocol:tcp
      ~bandwidth:6e6 ()
  in
  Alcotest.(check bool) "crowd launched" true
    (r.Slowcc.Scenarios.crowd_started > 500);
  (* Background throughput before the crowd exceeds during-crowd level. *)
  let before =
    Slowcc.Metrics.mean_between r.Slowcc.Scenarios.bg_rate ~lo:15. ~hi:24.
  in
  let during =
    Slowcc.Metrics.mean_between r.Slowcc.Scenarios.bg_rate ~lo:26. ~hi:30.
  in
  Alcotest.(check bool)
    (Printf.sprintf "crowd displaced bg (%.0f -> %.0f)" before during)
    true (during < before)

let test_sawtooth_shapes () =
  (* All three CBR shapes drive the scenario sanely; sawtooth averages the
     same duty cycle so utilization stays comparable. *)
  let run shape =
    let r =
      Slowcc.Scenarios.square_wave ~shape ~measure:30. ~flows:[ (tcp, 3) ]
        ~bandwidth:8e6 ~cbr_fraction:(2. /. 3.) ~period:2. ()
    in
    r.Slowcc.Scenarios.utilization
  in
  List.iter
    (fun shape ->
      let u = run shape in
      Alcotest.(check bool)
        (Printf.sprintf "utilization %.2f sane" u)
        true
        (u > 0.3 && u < 1.2))
    [ Slowcc.Scenarios.Square; Slowcc.Scenarios.Sawtooth;
      Slowcc.Scenarios.Reverse_sawtooth ]

let test_determinism () =
  let run () =
    let r =
      Slowcc.Scenarios.square_wave ~seed:9 ~measure:30. ~flows:[ (tcp, 2) ]
        ~bandwidth:6e6 ~cbr_fraction:0.5 ~period:2. ()
    in
    List.map snd r.Slowcc.Scenarios.per_flow
  in
  Alcotest.(check (list (float 0.))) "bit-identical reruns" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "cbr restart" `Slow test_cbr_restart_small;
    Alcotest.test_case "square wave homogeneous" `Slow
      test_square_wave_homogeneous_fair;
    Alcotest.test_case "square wave group means" `Slow
      test_square_wave_group_mean;
    Alcotest.test_case "square wave validation" `Quick
      test_square_wave_validation;
    Alcotest.test_case "fair convergence" `Slow test_fair_convergence_returns;
    Alcotest.test_case "bandwidth double" `Slow test_bandwidth_double;
    Alcotest.test_case "loss pattern" `Slow test_loss_pattern;
    Alcotest.test_case "flash crowd" `Slow test_flash_crowd_scenario;
    Alcotest.test_case "sawtooth shapes" `Slow test_sawtooth_shapes;
    Alcotest.test_case "determinism" `Slow test_determinism;
  ]
