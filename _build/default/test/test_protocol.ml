(* Protocol family constructors and spawning. *)

let test_names () =
  Alcotest.(check string) "tcp" "TCP(1/2)"
    (Slowcc.Protocol.name (Slowcc.Protocol.tcp ~gamma:2.));
  Alcotest.(check string) "rap" "RAP(1/8)"
    (Slowcc.Protocol.name (Slowcc.Protocol.rap ~gamma:8.));
  Alcotest.(check string) "sqrt" "SQRT(1/2)"
    (Slowcc.Protocol.name (Slowcc.Protocol.sqrt_ ~gamma:2.));
  Alcotest.(check string) "tfrc" "TFRC(6)"
    (Slowcc.Protocol.name (Slowcc.Protocol.tfrc ~k:6 ()));
  Alcotest.(check string) "tfrc sc" "TFRC(256)+SC"
    (Slowcc.Protocol.name (Slowcc.Protocol.tfrc ~conservative:true ~k:256 ()))

let test_gamma_validation () =
  Alcotest.check_raises "gamma too small"
    (Invalid_argument
       "Protocol: gamma >= 1.5 required (gamma = 2 is standard TCP)")
    (fun () -> ignore (Slowcc.Protocol.tcp ~gamma:1.))

let test_k_validation () =
  Alcotest.check_raises "bad k" (Invalid_argument "Protocol.tfrc: k >= 1")
    (fun () -> ignore (Slowcc.Protocol.tfrc ~k:0 ()))

let env () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  let db =
    Netsim.Dumbbell.create ~sim ~rng (Netsim.Dumbbell.default_config ~bandwidth:4e6)
  in
  (sim, db)

let test_spawn_all_kinds () =
  let sim, db = env () in
  let flows =
    List.map
      (fun p -> Slowcc.Protocol.spawn p db)
      [
        Slowcc.Protocol.tcp ~gamma:2.;
        Slowcc.Protocol.rap ~gamma:2.;
        Slowcc.Protocol.sqrt_ ~gamma:2.;
        Slowcc.Protocol.iiad ~gamma:2.;
        Slowcc.Protocol.tfrc ~k:6 ();
      ]
  in
  List.iter (fun (f : Cc.Flow.t) -> f.Cc.Flow.start ()) flows;
  Engine.Sim.run ~until:10. sim;
  List.iter
    (fun (f : Cc.Flow.t) ->
      Alcotest.(check bool)
        (f.Cc.Flow.protocol ^ " delivered data")
        true
        (f.Cc.Flow.bytes_delivered () > 10000.))
    flows

let test_spawn_reverse () =
  let sim, db = env () in
  let fwd = Slowcc.Protocol.spawn (Slowcc.Protocol.tcp ~gamma:2.) db in
  let rev = Slowcc.Protocol.spawn ~reverse:true (Slowcc.Protocol.tcp ~gamma:2.) db in
  fwd.Cc.Flow.start ();
  rev.Cc.Flow.start ();
  Engine.Sim.run ~until:10. sim;
  Alcotest.(check bool) "both directions flow" true
    (fwd.Cc.Flow.bytes_delivered () > 10000.
    && rev.Cc.Flow.bytes_delivered () > 10000.)

let test_short_transfer () =
  let sim, db = env () in
  let f =
    Slowcc.Protocol.spawn ~total_pkts:10 (Slowcc.Protocol.tcp ~gamma:2.) db
  in
  f.Cc.Flow.start ();
  Engine.Sim.run ~until:5. sim;
  Alcotest.(check (float 0.)) "exactly 10 packets" 10000.
    (f.Cc.Flow.bytes_delivered ())

let test_rap_rejects_short () =
  let _, db = env () in
  Alcotest.check_raises "rap short"
    (Invalid_argument "Protocol.spawn: RAP flows are long-lived only")
    (fun () ->
      ignore
        (Slowcc.Protocol.spawn ~total_pkts:5 (Slowcc.Protocol.rap ~gamma:2.) db))

let suite =
  [
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "gamma validation" `Quick test_gamma_validation;
    Alcotest.test_case "k validation" `Quick test_k_validation;
    Alcotest.test_case "spawn all kinds" `Slow test_spawn_all_kinds;
    Alcotest.test_case "spawn reverse" `Quick test_spawn_reverse;
    Alcotest.test_case "short transfer" `Quick test_short_transfer;
    Alcotest.test_case "rap rejects short transfers" `Quick
      test_rap_rejects_short;
  ]
